(* YCSB-style serving benchmark: N closed-loop clients drive zipfian
   put/get/overwrite mixes through Serve's windowed scheduler, and the
   summary (throughput, p50/p95/p99 latency, coalescing and rejection
   counts) lands in BENCH_serve.json.

     dune exec bench/bench_serve.exe                 # full run, writes
                                                     # BENCH_serve.json in CWD
     dune exec bench/bench_serve.exe -- --out-dir d  # write elsewhere
     dune exec bench/bench_serve.exe -- --seed 7     # reseed the workload
     dune exec bench/bench_serve.exe -- --smoke      # tiny workload: checks the
                                                     # harness and JSON, not timing *)

let smoke = ref false
let out_dir = ref "."
let seed = ref 42

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out-dir" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | "--seed" :: s :: rest ->
        seed := int_of_string s;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: bench_serve [--smoke] [--out-dir DIR] [--seed N] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let ok_or_die label = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "bench_serve: %s: %s\n" label (Store.error_message e);
      exit 1

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let () =
  let n_keys = if !smoke then 4 else 8 in
  let object_bytes = if !smoke then 70 else 110 in
  let n_ops = if !smoke then 20 else 120 in
  let n_clients = 4 in
  let zipf_s = 0.99 in
  let mixes =
    [
      { Serve.Workload.label = "read95"; Serve.Workload.read_pct = 0.95 };
      { Serve.Workload.label = "read50"; Serve.Workload.read_pct = 0.50 };
    ]
  in
  (* Each mix runs against a fresh store so its numbers are comparable
     run to run, not colored by the previous mix's overwrites. *)
  let run_mix i mix =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dnastore_serve_bench_%d_%d" (Unix.getpid ()) i)
    in
    if Sys.file_exists dir then rm_rf dir;
    let store = ok_or_die "init" (Store.init ~dir ~seed:!seed ()) in
    let r = Dna.Rng.create (!seed * 1001) in
    let keys = List.init n_keys (fun k -> Printf.sprintf "obj%d" k) in
    List.iter
      (fun key ->
        let data = Bytes.init object_bytes (fun _ -> Char.chr (Dna.Rng.int r 256)) in
        ok_or_die ("put " ^ key) (Store.put store ~key data))
      keys;
    let summary, _ =
      Serve.Workload.run ~mix ~n_clients ~n_ops ~zipf_s ~seed:(!seed + i) ~keys store
    in
    print_string (Serve.Workload.render summary);
    rm_rf dir;
    summary
  in
  let summaries = List.mapi run_mix mixes in
  let j =
    Store.Json.Obj
      [
        ( "config",
          Store.Json.Obj
            [
              ("smoke", Store.Json.Bool !smoke);
              ("seed", Store.Json.Int !seed);
              ("hardware_domains", Store.Json.Int (Domain.recommended_domain_count ()));
              ("n_keys", Store.Json.Int n_keys);
              ("object_bytes", Store.Json.Int object_bytes);
              ("n_ops", Store.Json.Int n_ops);
              ("n_clients", Store.Json.Int n_clients);
              ("zipf_s", Store.Json.Float zipf_s);
              ("window", Store.Json.Int Serve.default_config.Serve.window);
              ("max_queue", Store.Json.Int Serve.default_config.Serve.max_queue);
            ] );
        ("mixes", Store.Json.List (List.map Serve.Workload.summary_json summaries));
      ]
  in
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  let path = Filename.concat !out_dir "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Store.Json.to_string j);
  close_out oc;
  Printf.printf "wrote %s\n" path
