(* Experiment E5 — Figure 6 (Section VII).

   Per-index consensus error of the three trace-reconstruction
   algorithms on the wetlab channel: single-sided BMA propagates errors
   rightward, double-sided BMA concentrates them in the middle with a
   lower peak, and the Needleman-Wunsch consensus outperforms both. *)

open Exp_common

let n_clusters = pick ~fast:60 ~full:250
let coverage = 10
let len = 110

let run () =
  print_string (section "Figure 6: per-index error of reconstruction algorithms");
  Printf.printf "setting: wetlab channel, %d clusters, coverage %d, length %d\n" n_clusters coverage
    len;
  let summary = ref [] in
  List.iter
    (fun algo ->
      let rng = Dna.Rng.create 2002 in
      let channel = Simulator.Wetlab_channel.create () in
      let pairs =
        reconstruct_clusters rng channel ~recon:(reconstruct_of algo) ~n_clusters ~coverage ~len
      in
      let prof = Reconstruction.Recon_metrics.per_index_error pairs in
      let avg = Reconstruction.Recon_metrics.average_error prof in
      let peak = Array.fold_left max 0.0 prof in
      let perfect = Reconstruction.Recon_metrics.perfect_count pairs in
      summary := (recon_name algo, avg, peak, perfect) :: !summary;
      Printf.printf "\n[%s] avg error %s, peak %s, perfect %d/%d\n" (recon_name algo) (pct avg)
        (pct peak) perfect n_clusters;
      print_string (profile ~height:8 prof))
    [ `Bma; `Dbma; `Nw; `Ensemble ];
  print_string "\nsummary\n";
  print_string
    (table
       ([ [ "algorithm"; "avg error"; "peak error"; "perfect strands" ] ]
       @ List.rev_map
           (fun (name, avg, peak, perfect) ->
             [ name; pct avg; pct peak; Printf.sprintf "%d/%d" perfect n_clusters ])
           !summary));
  print_newline ()
