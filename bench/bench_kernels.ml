(* The bench-regression harness: times the edit-distance kernels per
   backend (micro) and a clustering-scale workload (macro), and writes
   the results as JSON so future changes have a perf trajectory to
   regress against.

     dune exec bench/bench_kernels.exe                 # full run, writes
                                                       # BENCH_micro.json and
                                                       # BENCH_cluster.json in CWD
     dune exec bench/bench_kernels.exe -- --out-dir d  # write elsewhere
     dune exec bench/bench_kernels.exe -- --smoke      # tiny budget: checks the
                                                       # harness and JSON, not timing

   Each JSON entry records the case name, ns/op (micro and per-call
   macro) or seconds total (whole clustering runs), and the speedup
   against the scalar oracle on the same workload. *)

let smoke = ref false
let out_dir = ref "."
let seed = ref 1
let scale_reads = ref 0 (* 0: pick by mode (smoke 6k, full 1M) *)

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out-dir" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | "--seed" :: s :: rest ->
        seed := int_of_string s;
        parse rest
    | "--scale-reads" :: s :: rest ->
        scale_reads := int_of_string s;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: bench_kernels [--smoke] [--out-dir DIR] [--seed N] [--scale-reads N] (got %S)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ---------- Timing ---------- *)

(* ns per call of [f], by doubling the batch size until it fills
   [min_time] of wall clock. The smoke budget only proves the harness
   runs and the JSON is well-formed. *)
let ns_per_op f =
  let min_time = if !smoke then 0.002 else 0.25 in
  ignore (f ());
  let rec calibrate n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time || n >= 1_000_000_000 then dt *. 1e9 /. float_of_int n else calibrate (n * 4)
  in
  calibrate 1

(* ---------- JSON ---------- *)

type entry = {
  name : string;
  ns_per_op : float option;
  s_total : float option;
  speedup : float;
  extra : (string * float) list;  (* accuracy, peak RSS, words/read, ... *)
}

let entry ?ns ?s ?(extra = []) ~speedup name =
  { name; ns_per_op = ns; s_total = s; speedup; extra }

let json_entry e =
  let fields =
    [ Printf.sprintf "\"name\": %S" e.name ]
    @ (match e.ns_per_op with
      | Some ns -> [ Printf.sprintf "\"ns_per_op\": %.1f" ns ]
      | None -> [])
    @ (match e.s_total with
      | Some s -> [ Printf.sprintf "\"s_total\": %.4f" s ]
      | None -> [])
    @ [ Printf.sprintf "\"speedup_vs_scalar\": %.2f" e.speedup ]
    @ List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.6g" k v) e.extra
  in
  "    {" ^ String.concat ", " fields ^ "}"

let write_json path ~config entries =
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      output_string oc
        ("  \"config\": {"
        ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) config)
        ^ "},\n");
      output_string oc "  \"entries\": [\n";
      output_string oc (String.concat ",\n" (List.map json_entry entries));
      output_string oc "\n  ]\n}\n");
  Printf.printf "wrote %s\n" path

(* ---------- Workloads ---------- *)

let read_len = 120
let error_rate = 0.06

let sibling rng s =
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  Simulator.Channel.transmit ch rng s

(* Per-case micro workloads; each is timed under both backends and the
   myers entry carries its speedup over the scalar one. *)
let micro_cases rng =
  let a = Dna.Strand.random rng read_len in
  let b = sibling rng a in
  let c = Dna.Strand.random rng read_len in
  let la = Dna.Strand.random rng 300 in
  let lb = sibling rng la in
  let bound = 40 in
  [
    ("levenshtein/siblings-120nt", fun backend () -> Dna.Distance.levenshtein ~backend a b);
    ("levenshtein/unrelated-120nt", fun backend () -> Dna.Distance.levenshtein ~backend a c);
    ("levenshtein/siblings-300nt", fun backend () -> Dna.Distance.levenshtein ~backend la lb);
    ( "levenshtein_leq/bound-40-siblings-120nt",
      fun backend () -> match Dna.Distance.levenshtein_leq ~backend ~bound a b with
        | Some d -> d
        | None -> -1 );
    ( "levenshtein_leq/bound-40-unrelated-120nt",
      fun backend () -> match Dna.Distance.levenshtein_leq ~backend ~bound a c with
        | Some d -> d
        | None -> -1 );
  ]

let run_micro () =
  let rng = Dna.Rng.create 123 in
  let entries =
    List.concat_map
      (fun (name, f) ->
        let ns_scalar = ns_per_op (f Dna.Distance.Scalar) in
        let ns_myers = ns_per_op (f Dna.Distance.Bitparallel) in
        Printf.printf "%-42s scalar %10.1f ns   myers %8.1f ns   %6.1fx\n" name ns_scalar
          ns_myers (ns_scalar /. ns_myers);
        [
          entry ~ns:ns_scalar ~speedup:1.0 (name ^ "/scalar");
          entry ~ns:ns_myers ~speedup:(ns_scalar /. ns_myers) (name ^ "/myers");
        ])
      (micro_cases rng)
  in
  write_json
    (Filename.concat !out_dir "BENCH_micro.json")
    ~config:
      [
        ("read_len", string_of_int read_len);
        ("error_rate", string_of_float error_rate);
        ("smoke", string_of_bool !smoke);
      ]
    entries

(* Clustering-scale macro benchmark: [n_refs] reference strands at
   [coverage] noisy reads each. Two measurements:

   - the merge test in isolation: [rounds] sweeps over every
     within-cluster sibling pair plus as many unrelated pairs, through
     [levenshtein_leq ~bound] exactly as the clustering inner loop calls
     it (cached Eq masks get reused across a strand's comparisons, as
     they are inside a clustering round);
   - whole [Cluster.run]s differing only in [distance_backend], to show
     the end-to-end effect with partitioning, signatures and union-find
     around the kernel. *)
let run_cluster () =
  let n_refs = if !smoke then 6 else 120 in
  let coverage = if !smoke then 3 else 10 in
  let rounds = if !smoke then 1 else 5 in
  let bound = 40 in
  let rng = Dna.Rng.create 7 in
  let refs = Array.init n_refs (fun _ -> Dna.Strand.random rng read_len) in
  let reads = Array.concat (Array.to_list (Array.map (fun r -> Array.init coverage (fun _ -> sibling rng r)) refs)) in
  let n_reads = Array.length reads in
  (* Sibling pairs within each cluster, and an equal number of unrelated
     cross-cluster pairs. *)
  let pairs = ref [] in
  Array.iteri
    (fun ci _ ->
      for i = 0 to coverage - 1 do
        for j = i + 1 to coverage - 1 do
          pairs := (reads.((ci * coverage) + i), reads.((ci * coverage) + j)) :: !pairs;
          let other = (ci + 1 + Dna.Rng.int rng (n_refs - 1)) mod n_refs in
          pairs :=
            (reads.((ci * coverage) + i), reads.((other * coverage) + j)) :: !pairs
        done
      done)
    refs;
  let pairs = Array.of_list !pairs in
  let n_calls = rounds * Array.length pairs in
  let time_leq backend =
    let t0 = Unix.gettimeofday () in
    let acc = ref 0 in
    for _ = 1 to rounds do
      Array.iter
        (fun (a, b) ->
          match Dna.Distance.levenshtein_leq ~backend ~bound a b with
          | Some d -> acc := !acc + d
          | None -> ())
        pairs
    done;
    (Unix.gettimeofday () -. t0, !acc)
  in
  let s_scalar, chk_scalar = time_leq Dna.Distance.Scalar in
  let s_myers, chk_myers = time_leq Dna.Distance.Bitparallel in
  if chk_scalar <> chk_myers then begin
    Printf.eprintf "backend disagreement in macro leq workload (%d vs %d)\n" chk_scalar chk_myers;
    exit 1
  end;
  let leq_speedup = s_scalar /. s_myers in
  Printf.printf "macro leq: %d calls  scalar %.3fs  myers %.3fs  %.1fx\n" n_calls s_scalar
    s_myers leq_speedup;
  let cluster_run backend =
    let params =
      { (Clustering.Cluster.default_params ~read_len ()) with distance_backend = backend }
    in
    let r = Dna.Rng.create 99 in
    let t0 = Unix.gettimeofday () in
    let result = Clustering.Cluster.run params r (Array.copy reads) in
    (Unix.gettimeofday () -. t0, List.length result.Clustering.Cluster.clusters)
  in
  let s_run_scalar, nc_scalar = cluster_run Dna.Distance.Scalar in
  let s_run_myers, nc_myers = cluster_run Dna.Distance.Bitparallel in
  Printf.printf "macro cluster run: scalar %.3fs (%d clusters)  myers %.3fs (%d clusters)  %.1fx\n"
    s_run_scalar nc_scalar s_run_myers nc_myers
    (s_run_scalar /. s_run_myers);
  ( [
      ("read_len", string_of_int read_len);
      ("error_rate", string_of_float error_rate);
      ("n_refs", string_of_int n_refs);
      ("coverage", string_of_int coverage);
      ("n_reads", string_of_int n_reads);
      ("rounds", string_of_int rounds);
      ("bound", string_of_int bound);
      ("smoke", string_of_bool !smoke);
    ],
    [
      entry ~s:s_scalar
        ~ns:(s_scalar *. 1e9 /. float_of_int n_calls)
        ~speedup:1.0 "levenshtein_leq/scalar";
      entry ~s:s_myers
        ~ns:(s_myers *. 1e9 /. float_of_int n_calls)
        ~speedup:leq_speedup "levenshtein_leq/bitparallel";
      entry ~s:s_run_scalar ~speedup:1.0 "cluster_run/scalar";
      entry ~s:s_run_myers ~speedup:(s_run_scalar /. s_run_myers) "cluster_run/bitparallel";
    ] )

(* ---------- Clustering at scale ----------

   The end-to-end read path the packed representation exists for:
   generate a simulated read set straight to FASTQ, stream it back into
   one packed arena (bounded memory — the read set never exists as
   boxed objects), and cluster it three ways on identical reads:

   - packed: [Cluster.run_pool] — flat engine + packed signature index;
   - boxed: [Cluster.run] — the per-read-boxed engine this PR replaces,
     same kernels, so the delta is the engine and representation;
   - clover: the trie-based streaming baseline, for accuracy context.

   Also measured: minor-heap words allocated per read by the simulator
   channel loop, boxed transmit vs pooled transmit_into. *)

let scale_params () =
  (* partition_len 8 spreads 1M representatives across 65536 integer
     keys (~15 per bucket in round one); anchors stay at the default 3
     so most reads contain one. *)
  {
    (Clustering.Cluster.default_params ~read_len ()) with
    Clustering.Cluster.rounds = 16;
    stall_rounds = 4;
    partition_len = 8;
    domains = 1;
  }

let channel_alloc () =
  let k = if !smoke then 2_000 else 20_000 in
  let rng = Dna.Rng.create !seed in
  let clean = Dna.Strand.random rng read_len in
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  let sink = ref 0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to k do
    sink := !sink + Dna.Strand.length (Simulator.Channel.transmit ch rng clean)
  done;
  let boxed = (Gc.minor_words () -. w0) /. float_of_int k in
  let pool =
    Dna.Strand_pool.create ~capacity_bases:(k * (read_len + 16)) ~capacity_reads:(k + 1) ()
  in
  let w1 = Gc.minor_words () in
  for _ = 1 to k do
    Simulator.Channel.transmit_into ch rng clean pool;
    ignore (Dna.Strand_pool.commit pool)
  done;
  let pooled = (Gc.minor_words () -. w1) /. float_of_int k in
  ignore !sink;
  Printf.printf "channel alloc: boxed %.1f words/read   pooled %.2f words/read\n" boxed
    pooled;
  (boxed, pooled)

let run_scale () =
  let n_target =
    if !scale_reads > 0 then !scale_reads else if !smoke then 6_000 else 1_000_000
  in
  let coverage = 8 in
  let n_refs = max 1 (n_target / coverage) in
  let path = Filename.temp_file "dnastore_scale" ".fastq" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let n_written =
    Scale_stream.write_fastq ~path ~seed:!seed ~n_refs ~coverage ~len:read_len ~error_rate
  in
  let s_gen = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let pool, truth = Scale_stream.load_fastq ~path in
  let s_load = Unix.gettimeofday () -. t0 in
  Printf.printf "scale: %d reads generated in %.1fs, streamed back in %.1fs\n" n_written
    s_gen s_load;
  let params = scale_params () in
  let accuracy (r : Clustering.Cluster.result) =
    Clustering.Metrics.accuracy ~truth r.Clustering.Cluster.clusters
  in
  let t0 = Unix.gettimeofday () in
  let packed = Clustering.Cluster.run_pool params (Dna.Rng.create (!seed + 101)) pool in
  let s_packed = Unix.gettimeofday () -. t0 in
  let rss_packed = Scale_stream.peak_rss_mb () in
  let acc_packed = accuracy packed in
  (* The boxed engine and Clover read the same packed bases through
     zero-copy views; only the engines differ. *)
  let views = Dna.Strand_pool.to_array pool in
  let t0 = Unix.gettimeofday () in
  let clover = Clustering.Clover.run views in
  let s_clover = Unix.gettimeofday () -. t0 in
  let acc_clover = accuracy clover in
  let t0 = Unix.gettimeofday () in
  let boxed = Clustering.Cluster.run params (Dna.Rng.create (!seed + 101)) views in
  let s_boxed = Unix.gettimeofday () -. t0 in
  let acc_boxed = accuracy boxed in
  Printf.printf
    "scale cluster (%d reads): packed %.2fs acc %.4f | boxed %.2fs acc %.4f (%.1fx) | clover %.2fs acc %.4f\n"
    n_written s_packed acc_packed s_boxed acc_boxed (s_boxed /. s_packed) s_clover
    acc_clover;
  let alloc_boxed, alloc_pooled = channel_alloc () in
  ( [
      ("scale_reads", string_of_int n_written);
      ("scale_coverage", string_of_int coverage);
      ("scale_seed", string_of_int !seed);
      ("scale_rounds", string_of_int params.Clustering.Cluster.rounds);
      ("scale_partition_len", string_of_int params.Clustering.Cluster.partition_len);
    ],
    [
      entry ~s:s_packed
        ~speedup:(s_boxed /. s_packed)
        ~extra:
          [
            ("accuracy", acc_packed);
            ("peak_rss_mb", rss_packed);
            ("n_reads", float_of_int n_written);
          ]
        "cluster_scale/packed";
      entry ~s:s_boxed ~speedup:1.0
        ~extra:[ ("accuracy", acc_boxed); ("n_reads", float_of_int n_written) ]
        "cluster_scale/boxed";
      entry ~s:s_clover
        ~speedup:(s_boxed /. s_clover)
        ~extra:[ ("accuracy", acc_clover); ("n_reads", float_of_int n_written) ]
        "cluster_scale/clover";
      entry ~s:s_load ~speedup:1.0
        ~extra:[ ("n_reads", float_of_int n_written) ]
        "cluster_scale/stream_load";
      entry ~speedup:(alloc_boxed /. Float.max 1e-9 alloc_pooled)
        ~extra:
          [
            ("words_per_read_boxed", alloc_boxed);
            ("words_per_read_pooled", alloc_pooled);
          ]
        "channel_alloc/transmit_into";
    ] )

let () =
  run_micro ();
  let cluster_config, cluster_entries = run_cluster () in
  let scale_config, scale_entries = run_scale () in
  write_json
    (Filename.concat !out_dir "BENCH_cluster.json")
    ~config:(cluster_config @ scale_config)
    (cluster_entries @ scale_entries)
