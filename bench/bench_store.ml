(* Store benchmarks: batched-get throughput against the domain pool,
   LRU cache effectiveness, and the cost of compaction. Writes
   BENCH_store.json so future changes to the store have a perf
   trajectory to regress against.

     dune exec bench/bench_store.exe                 # full run, writes
                                                     # BENCH_store.json in CWD
     dune exec bench/bench_store.exe -- --out-dir d  # write elsewhere
     dune exec bench/bench_store.exe -- --smoke      # tiny workload: checks the
                                                     # harness and JSON, not timing *)

let smoke = ref false
let out_dir = ref "."

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out-dir" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: bench_store [--smoke] [--out-dir DIR] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let ok_or_die label = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "bench_store: %s: %s\n" label (Store.error_message e);
      exit 1

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let () =
  let n_objects = if !smoke then 4 else 8 in
  let object_bytes = if !smoke then 120 else 300 in
  let repeats = if !smoke then 1 else 3 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dnastore_bench_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then rm_rf dir;
  (* A small shard target spreads the objects over several shards, as a
     populated store would be. *)
  let config = { Store.default_config with Store.shard_target_strands = 64 } in
  let store = ok_or_die "init" (Store.init ~config ~dir ~seed:42 ()) in
  let r = Dna.Rng.create 4242 in
  let keys = List.init n_objects (fun i -> Printf.sprintf "obj%d" i) in
  List.iter
    (fun key ->
      let data = Bytes.init object_bytes (fun _ -> Char.chr (Dna.Rng.int r 256)) in
      ok_or_die ("put " ^ key) (Store.put store ~key data))
    keys;

  (* --- batched get vs sequential (cache off: time the wetlab path) --- *)
  (* Untimed warmup: fault in the shard pools, spawn the worker pool
     and settle the allocator so the first timed run is not paying
     one-off costs the later ones don't. *)
  List.iter (fun (_, r) -> ignore (ok_or_die "warmup" r))
    (Store.get_batch ~domains:2 ~use_cache:false store keys);
  let timed_run f =
    let total = ref 0.0 in
    for _ = 1 to repeats do
      let results, dt = time f in
      List.iter (fun (key, r) -> ignore (ok_or_die ("get " ^ key) r)) results;
      total := !total +. dt
    done;
    !total /. float_of_int repeats
  in
  let sequential_s =
    timed_run (fun () ->
        List.map (fun key -> (key, Store.get ~use_cache:false store ~key)) keys)
  in
  Printf.printf "sequential get x%d: %.3f s\n%!" n_objects sequential_s;
  let domain_counts = [ 1; 2; 4 ] in
  let batched =
    List.map
      (fun domains ->
        let s = timed_run (fun () -> Store.get_batch ~domains ~use_cache:false store keys) in
        Printf.printf "batched get x%d (--domains %d): %.3f s (%.2fx)\n%!" n_objects domains s
          (sequential_s /. s);
        (domains, s))
      domain_counts
  in

  (* --- cache hit ratio on a re-read working set --- *)
  let hits0 = (Store.stats store).Store.cache_hits
  and misses0 = (Store.stats store).Store.cache_misses in
  let reread () =
    List.iter (fun (key, r) -> ignore (ok_or_die ("cached get " ^ key) r))
      (Store.get_batch store keys)
  in
  reread ();
  (* First pass fills the cache, later passes should hit. *)
  let cache_rounds = if !smoke then 2 else 4 in
  for _ = 2 to cache_rounds do
    reread ()
  done;
  let hits = (Store.stats store).Store.cache_hits - hits0
  and misses = (Store.stats store).Store.cache_misses - misses0 in
  let hit_ratio = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  print_string (Dnastore.Report.cache_counters ~label:"store" ~hits ~misses);

  (* --- compaction cost --- *)
  List.iteri
    (fun i key -> if i mod 2 = 0 then ok_or_die ("rm " ^ key) (Store.delete store ~key))
    keys;
  let cstats, compact_s = time (fun () -> ok_or_die "compact" (Store.compact store)) in
  Printf.printf "compact (%d live objects, %d -> %d strands): %.3f s\n%!"
    cstats.Store.objects_rewritten cstats.Store.strands_before cstats.Store.strands_after
    compact_s;

  (* --- JSON (emitted through the store's own JSON layer) --- *)
  let j = Store.Json.Obj
    [
      ( "config",
        Store.Json.Obj
          [
            ("smoke", Store.Json.Bool !smoke);
            (* Domain scaling is bounded by the machine: with one
               hardware core the pool spawns no workers, every
               [--domains N] runs serially, and the batched win is
               purely the shared per-shard sequencing. Read the
               domains-N entries against this field. *)
            ("hardware_domains", Store.Json.Int (Domain.recommended_domain_count ()));
            ("pool_workers", Store.Json.Int (Dna.Par.pool_size ()));
            ("recommended_domains", Store.Json.Int (Dna.Par.default_domains ()));
            ("n_objects", Store.Json.Int n_objects);
            ("object_bytes", Store.Json.Int object_bytes);
            ("repeats", Store.Json.Int repeats);
            ("shard_target_strands", Store.Json.Int config.Store.shard_target_strands);
          ] );
      ( "entries",
        Store.Json.List
          (Store.Json.Obj
             [
               ("name", Store.Json.String "get/sequential");
               ("s_total", Store.Json.Float sequential_s);
               ("speedup_vs_sequential", Store.Json.Float 1.0);
             ]
           :: List.map
                (fun (domains, s) ->
                  Store.Json.Obj
                    [
                      ("name", Store.Json.String (Printf.sprintf "get_batch/domains-%d" domains));
                      ("s_total", Store.Json.Float s);
                      ("speedup_vs_sequential", Store.Json.Float (sequential_s /. s));
                    ])
                batched
          @ [
              Store.Json.Obj
                [
                  ("name", Store.Json.String "cache/reread-hit-ratio");
                  ("hits", Store.Json.Int hits);
                  ("misses", Store.Json.Int misses);
                  ("hit_ratio", Store.Json.Float hit_ratio);
                ];
              Store.Json.Obj
                [
                  ("name", Store.Json.String "compact/half-deleted");
                  ("s_total", Store.Json.Float compact_s);
                  ("objects_rewritten", Store.Json.Int cstats.Store.objects_rewritten);
                  ("strands_before", Store.Json.Int cstats.Store.strands_before);
                  ("strands_after", Store.Json.Int cstats.Store.strands_after);
                ];
            ]) );
    ]
  in
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  let path = Filename.concat !out_dir "BENCH_store.json" in
  let oc = open_out path in
  output_string oc (Store.Json.to_string j);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  rm_rf dir
