(* Experiment E8 — layout ablation (Sections IV-B and IV-C).

   The design claims behind Gini and DNAMapper, isolated at the codec
   level: double-sided BMA concentrates reconstruction errors on the
   middle rows of the matrix, so

   - the Baseline layout leaves middle-row codewords much more likely to
     fail than edge-row codewords;
   - Gini spreads every codeword across all rows, equalizing failure
     probability (and lowering the worst-case);
   - DNAMapper keeps the skew but steers low-priority data onto the
     unreliable rows, protecting the high-priority tier.

   The same wetlab runs (paired seeds) drive all arms. *)

open Exp_common

let n_trials = pick ~fast:3 ~full:8
let coverage = 10
let params = { Codec.Params.default with Codec.Params.rs_parity = 2 }

let channel () =
  Simulator.Wetlab_channel.create
    ~params:{ Simulator.Wetlab_channel.default_params with base_error = 0.05 }
    ()

(* Run encode->noise->cluster->DBMA->decode; report failed rows. *)
let run_trial rng ~layout file =
  let encoded = Codec.File_codec.encode ~params ~layout file in
  let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage) in
  let reads = Simulator.Sequencer.sequence sp (channel ()) rng encoded.Codec.File_codec.strands in
  let rs = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  let clusters =
    let result, _ = cluster_auto rng rs in
    Clustering.Cluster.read_clusters result rs
  in
  let target_len = Codec.Params.strand_nt params in
  let consensus =
    List.filter_map
      (fun c ->
        if c = [] then None
        else Some (Reconstruction.Bma.reconstruct_double ~target_len (Array.of_list c)))
      clusters
  in
  match Codec.File_codec.decode ~params ~layout ~n_units:encoded.Codec.File_codec.n_units consensus with
  | Ok (decoded, stats) ->
      let per_row = Array.make (Codec.Params.rows params) 0 in
      Array.iter
        (fun u ->
          List.iter
            (fun r -> per_row.(r) <- per_row.(r) + 1)
            u.Codec.Matrix_codec.failed_codewords)
        stats.Codec.File_codec.units;
      Some (decoded, per_row)
  | Error _ -> None

let run () =
  print_string (section "Layout ablation: Baseline vs Gini vs DNAMapper");
  Printf.printf
    "setting: thin parity (%d), wetlab 5%% error, coverage %d, DBMA; %d paired trials\n"
    params.Codec.Params.rs_parity coverage n_trials;
  let rows = Codec.Params.rows params in
  let file_bytes = 3 * Codec.Params.unit_data_bytes params in

  (* Baseline vs Gini: distribution of failed codewords over rows. *)
  let tally layout =
    let per_row = Array.make rows 0 in
    let failed_total = ref 0 and decode_fail = ref 0 in
    for t = 1 to n_trials do
      let rng = Dna.Rng.create (4000 + t) in
      let file = Bytes.init file_bytes (fun i -> Char.chr ((i * 131 + t) land 0xff)) in
      match run_trial rng ~layout file with
      | Some (_, rows_failed) ->
          Array.iteri
            (fun r c ->
              per_row.(r) <- per_row.(r) + c;
              failed_total := !failed_total + c)
            rows_failed
      | None -> incr decode_fail
    done;
    (per_row, !failed_total, !decode_fail)
  in
  let base_rows, base_failed, base_hdr = tally Codec.Layout.Baseline in
  let gini_rows, gini_failed, gini_hdr = tally Codec.Layout.Gini in
  Printf.printf "\nBaseline: %d failed codewords (%d unreadable runs); per-row distribution:\n"
    base_failed base_hdr;
  print_string (profile ~height:6 ~buckets:rows (Array.map float_of_int base_rows));
  Printf.printf "\nGini: %d failed codewords (%d unreadable runs); per-row distribution:\n"
    gini_failed gini_hdr;
  print_string (profile ~height:6 ~buckets:rows (Array.map float_of_int gini_rows));
  let spread a =
    let mx = Array.fold_left max 0 a and mn = Array.fold_left min max_int a in
    mx - mn
  in
  Printf.printf
    "\nrow-failure spread (max-min): baseline %d vs gini %d — Gini equalizes the skew\n"
    (spread base_rows) (spread gini_rows);

  (* DNAMapper: tier corruption under the baseline layout. *)
  let tier_errors mapped =
    let hi = ref 0 and lo = ref 0 in
    for t = 1 to n_trials do
      let rng = Dna.Rng.create (6000 + t) in
      let half = (file_bytes - Codec.File_codec.header_span ~rows) / 2 in
      let tier_hi = Bytes.init half (fun i -> Char.chr ((i * 17 + t) land 0xff)) in
      let tier_lo = Bytes.init half (fun i -> Char.chr ((i * 91 + t) land 0xff)) in
      let reliability =
        if mapped then Codec.Dnamapper.dbma_profile ~rows else Array.make rows 0.0
      in
      let arranged, plan = Codec.Dnamapper.arrange ~rows ~reliability [ tier_hi; tier_lo ] in
      match run_trial rng ~layout:Codec.Layout.Baseline arranged with
      | Some (decoded, _) -> (
          match Codec.Dnamapper.extract plan decoded with
          | [ hi'; lo' ] ->
              let count a b =
                let e = ref 0 in
                Bytes.iteri (fun i c -> if i < Bytes.length b && c <> Bytes.get b i then incr e) a;
                !e
              in
              hi := !hi + count tier_hi hi';
              lo := !lo + count tier_lo lo'
          | _ -> ())
      | None -> ()
    done;
    (!hi, !lo)
  in
  let m_hi, m_lo = tier_errors true in
  let n_hi, n_lo = tier_errors false in
  print_string "\nDNAMapper: corrupted bytes per quality tier (baseline layout, same noise)\n";
  print_string
    (table
       [
         [ "arrangement"; "hi-tier errors"; "lo-tier errors" ];
         [ "DNAMapper"; string_of_int m_hi; string_of_int m_lo ];
         [ "naive"; string_of_int n_hi; string_of_int n_lo ];
       ]);
  print_newline ()
