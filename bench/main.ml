(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index and
   EXPERIMENTS.md for paper-vs-measured).

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe fig3       # one experiment
     DNASTORE_BENCH=fast dune exec ...   # shrunken workloads

   Experiments: fig3 (includes Table I), fig5, table2, fig6, table3,
   e2e, layout, density, ecc, clover, micro. *)

let experiments =
  [
    ("fig3", Fig3_table1.run);
    ("fig5", Fig5.run);
    ("table2", Table2.run);
    ("fig6", Fig6.run);
    ("table3", Table3.run);
    ("e2e", E2e.run);
    ("layout", Layout_ablation.run);
    ("density", Density.run);
    ("ecc", Ecc_compare.run);
    ("clover", Clover_compare.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  (match Dna.Par.counters () with
  | [] -> ()
  | counters ->
      print_string (Dnastore.Report.section "Parallel execution counters");
      print_string (Dnastore.Report.par_counters counters));
  Printf.printf "\nbench complete in %.1fs\n" (Unix.gettimeofday () -. t0)
