(* Experiment E4 — Table II (Section VI-C).

   q-gram vs w-gram clustering across error rates 0.03..0.15 at coverage
   10: clustering accuracy, clustering time, signature calculation time
   and overall time, averaged over several runs. *)

open Exp_common

let n_strands = pick ~fast:40 ~full:150
let coverage = 10
let len = 120
let n_runs = pick ~fast:2 ~full:10
let error_rates = [ 0.03; 0.06; 0.09; 0.12; 0.15 ]

type cell = {
  mutable acc : float;
  mutable cluster_time : float;
  mutable sig_time : float;
  mutable edit_cmp : int;
}

let run () =
  print_string (section "Table II: q-gram vs w-gram clustering");
  Printf.printf "setting: %d strands, coverage %d, length %d, averaged over %d runs\n\n" n_strands
    coverage len n_runs;
  let results =
    List.map
      (fun error_rate ->
        let cells =
          List.map
            (fun kind ->
              let c = { acc = 0.0; cluster_time = 0.0; sig_time = 0.0; edit_cmp = 0 } in
              for run = 1 to n_runs do
                let rng = Dna.Rng.create (1000 + run) in
                let channel = Simulator.Iid_channel.create_rate ~error_rate in
                let strands = Array.init n_strands (fun _ -> Dna.Strand.random rng len) in
                let sp =
                  Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage)
                in
                let reads = Simulator.Sequencer.sequence sp channel rng strands in
                let rs = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
                let truth = Array.map (fun r -> r.Simulator.Sequencer.origin) reads in
                let result, _ = cluster_auto ~kind rng rs in
                let stats = result.Clustering.Cluster.stats in
                c.acc <-
                  c.acc +. Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters;
                c.cluster_time <-
                  c.cluster_time
                  +. (stats.Clustering.Cluster.clustering_time
                     -. stats.Clustering.Cluster.signature_time);
                c.sig_time <- c.sig_time +. stats.Clustering.Cluster.signature_time;
                c.edit_cmp <- c.edit_cmp + stats.Clustering.Cluster.edit_comparisons
              done;
              let n = float_of_int n_runs in
              c.acc <- c.acc /. n;
              c.cluster_time <- c.cluster_time /. n;
              c.sig_time <- c.sig_time /. n;
              c.edit_cmp <- c.edit_cmp / n_runs;
              c)
            [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]
        in
        (error_rate, cells))
      error_rates
  in
  let rows =
    [
      [
        "Error Rate"; "Acc q-gram"; "Acc w-gram"; "Cluster(s) q"; "Cluster(s) w"; "Sig(s) q";
        "Sig(s) w"; "Overall(s) q"; "Overall(s) w"; "EditCmp q"; "EditCmp w";
      ];
    ]
    @ List.map
        (fun (er, cells) ->
          match cells with
          | [ q; w ] ->
              [
                Printf.sprintf "%.2f" er;
                f4 q.acc;
                f4 w.acc;
                f3 q.cluster_time;
                f3 w.cluster_time;
                f3 q.sig_time;
                f3 w.sig_time;
                f3 (q.cluster_time +. q.sig_time);
                f3 (w.cluster_time +. w.sig_time);
                string_of_int q.edit_cmp;
                string_of_int w.edit_cmp;
              ]
          | _ -> assert false)
        results
  in
  print_string (table rows);
  print_newline ()
