(* Ablation — iterative-merge clustering vs Clover-style tree
   clustering (Section X, Qu et al.).

   Clover never computes an edit distance: one streaming pass assigns
   each read by a bounded-edit trie lookup of its prefix. The trade-off
   is speed and memory against robustness to prefix errors. *)

open Exp_common

let n_strands = pick ~fast:60 ~full:200
let coverage = 10
let len = 120

let run () =
  print_string (section "Ablation: iterative-merge clustering vs Clover (tree-based)");
  Printf.printf "setting: %d strands, coverage %d, length %d\n\n" n_strands coverage len;
  let rows = ref [ [ "error rate"; "merge acc"; "merge time"; "clover acc"; "clover time" ] ] in
  List.iter
    (fun error_rate ->
      let rng = Dna.Rng.create 31337 in
      let channel = Simulator.Iid_channel.create_rate ~error_rate in
      let strands = Array.init n_strands (fun _ -> Dna.Strand.random rng len) in
      let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage) in
      let reads = Simulator.Sequencer.sequence sp channel rng strands in
      let rs = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
      let truth = Array.map (fun r -> r.Simulator.Sequencer.origin) reads in
      let (merge_result, _), merge_time = time (fun () -> cluster_auto rng rs) in
      let clover_result, clover_time = time (fun () -> Clustering.Clover.run rs) in
      let acc result = Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters in
      rows :=
        [
          Printf.sprintf "%.2f" error_rate;
          f4 (acc merge_result);
          f3 merge_time ^ "s";
          f4 (acc clover_result);
          f3 clover_time ^ "s";
        ]
        :: !rows)
    [ 0.01; 0.03; 0.06; 0.10 ];
  print_string (table (List.rev !rows));
  print_string
    "\n(Clover's single pass is fast and edit-distance-free but loses accuracy\n\
    \ as noise reaches the prefix keys; the paper's iterative-merge algorithm\n\
    \ spends edit distances to stay accurate)\n";
  print_newline ()
