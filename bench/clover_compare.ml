(* Ablation — iterative-merge clustering vs Clover-style tree
   clustering (Section X, Qu et al.).

   Clover never computes an edit distance: one streaming pass assigns
   each read by a bounded-edit trie lookup of its prefix. The trade-off
   is speed and memory against robustness to prefix errors.

   Reads are staged through FASTQ and streamed back into a packed arena
   ([Scale_stream]), so the working set is one arena + one truth array
   regardless of read count — the same bounded-memory path the scale
   benchmark uses, exercised here across error rates. *)

open Exp_common

let n_strands = pick ~fast:60 ~full:200
let coverage = 10
let len = 120

let run () =
  print_string (section "Ablation: iterative-merge clustering vs Clover (tree-based)");
  Printf.printf "setting: %d strands, coverage %d, length %d (reads streamed via FASTQ)\n\n"
    n_strands coverage len;
  let rows = ref [ [ "error rate"; "merge acc"; "merge time"; "clover acc"; "clover time" ] ] in
  List.iter
    (fun error_rate ->
      let path = Filename.temp_file "dnastore_clover" ".fastq" in
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      ignore
        (Scale_stream.write_fastq ~path ~seed:31337 ~n_refs:n_strands ~coverage ~len
           ~error_rate);
      let pool, truth = Scale_stream.load_fastq ~path in
      let rng = Dna.Rng.create 31337 in
      (* Zero-copy views into the arena: auto-config and Clover read the
         same packed bases the pool engine clusters. *)
      let views = Dna.Strand_pool.to_array pool in
      let params = Clustering.Cluster.default_params ~read_len:len () in
      let config = Clustering.Auto_config.configure params rng views in
      let params = Clustering.Auto_config.apply config params in
      let merge_result, merge_time =
        time (fun () -> Clustering.Cluster.run_pool params rng pool)
      in
      let clover_result, clover_time = time (fun () -> Clustering.Clover.run views) in
      let acc result = Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters in
      rows :=
        [
          Printf.sprintf "%.2f" error_rate;
          f4 (acc merge_result);
          f3 merge_time ^ "s";
          f4 (acc clover_result);
          f3 clover_time ^ "s";
        ]
        :: !rows)
    [ 0.01; 0.03; 0.06; 0.10 ];
  print_string (table (List.rev !rows));
  print_string
    "\n(Clover's single pass is fast and edit-distance-free but loses accuracy\n\
    \ as noise reaches the prefix keys; the paper's iterative-merge algorithm\n\
    \ spends edit distances to stay accurate)\n";
  print_newline ()
