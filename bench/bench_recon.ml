(* The reconstruction bench: times the alignment kernels (full matrix vs
   Ukkonen-banded) and the whole consensus path built on them, and writes
   BENCH_recon.json so future perf changes have a trajectory to regress
   against.

     dune exec bench/bench_recon.exe                 # full run, writes
                                                     # BENCH_recon.json in CWD
     dune exec bench/bench_recon.exe -- --out-dir d  # write elsewhere
     dune exec bench/bench_recon.exe -- --smoke      # tiny budget: checks the
                                                     # harness and JSON, not timing

   Three tiers, each with an exactness guard (the banded kernel is only
   a perf knob — any output difference is a bug and fails the bench):

   - align: ns/op for sibling pairs at 120nt and 300nt, per backend;
   - reconstruct: ns per whole-cluster NW consensus at coverage 5/10/20,
     with byte-identical consensus required between backends;
   - pipeline: end-to-end [Pipeline.run] stage timings per backend, with
     identical decoded bytes required.

   The job also fails if banded is slower than full on the 120nt align
   case (threshold 1.0, relaxed to 0.8 under --smoke where timings are
   noise). *)

let smoke = ref false
let out_dir = ref "."

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out-dir" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: bench_recon [--smoke] [--out-dir DIR] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ---------- Timing ---------- *)

let ns_per_op f =
  let min_time = if !smoke then 0.002 else 0.25 in
  ignore (f ());
  let rec calibrate n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= min_time || n >= 1_000_000_000 then dt *. 1e9 /. float_of_int n else calibrate (n * 4)
  in
  calibrate 1

(* ---------- JSON ---------- *)

type entry = { name : string; ns_per_op : float option; s_total : float option; speedup : float }

let entry ?ns ?s ~speedup name = { name; ns_per_op = ns; s_total = s; speedup }

let json_entry e =
  let fields =
    [ Printf.sprintf "\"name\": %S" e.name ]
    @ (match e.ns_per_op with
      | Some ns -> [ Printf.sprintf "\"ns_per_op\": %.1f" ns ]
      | None -> [])
    @ (match e.s_total with
      | Some s -> [ Printf.sprintf "\"s_total\": %.4f" s ]
      | None -> [])
    @ [ Printf.sprintf "\"speedup_vs_full\": %.2f" e.speedup ]
  in
  "    {" ^ String.concat ", " fields ^ "}"

let write_json path ~config entries =
  if not (Sys.file_exists !out_dir) then Sys.mkdir !out_dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      output_string oc
        ("  \"config\": {"
        ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) config)
        ^ "},\n");
      output_string oc "  \"entries\": [\n";
      output_string oc (String.concat ",\n" (List.map json_entry entries));
      output_string oc "\n  ]\n}\n");
  Printf.printf "wrote %s\n" path

(* ---------- Workloads ---------- *)

let read_len = 120
let error_rate = 0.06

let sibling rng s =
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  Simulator.Channel.transmit ch rng s

let check_same_alignment name (f : Dna.Alignment.t) (b : Dna.Alignment.t) =
  if f.Dna.Alignment.score <> b.Dna.Alignment.score || f.script <> b.script then begin
    Printf.eprintf "backend disagreement on %s (full score %d, banded score %d)\n" name
      f.Dna.Alignment.score b.Dna.Alignment.score;
    exit 1
  end

(* Tier 1: the pairwise kernel on sibling reads. Returns the 120nt
   speedup for the regression guard. *)
let run_align () =
  let rng = Dna.Rng.create 123 in
  let cases =
    List.map
      (fun len ->
        let a = Dna.Strand.random rng len in
        let b = sibling rng a in
        (Printf.sprintf "align/siblings-%dnt" len, a, b))
      [ read_len; 300 ]
  in
  let results =
    List.map
      (fun (name, a, b) ->
        check_same_alignment name
          (Dna.Alignment.align ~backend:Dna.Alignment.Full a b)
          (Dna.Alignment.align ~backend:Dna.Alignment.Banded a b);
        let ns_full = ns_per_op (fun () -> Dna.Alignment.align ~backend:Dna.Alignment.Full a b) in
        let ns_banded =
          ns_per_op (fun () -> Dna.Alignment.align ~backend:Dna.Alignment.Banded a b)
        in
        let speedup = ns_full /. ns_banded in
        Printf.printf "%-28s full %10.1f ns   banded %10.1f ns   %5.1fx\n" name ns_full ns_banded
          speedup;
        (name, ns_full, ns_banded, speedup))
      cases
  in
  let entries =
    List.concat_map
      (fun (name, ns_full, ns_banded, speedup) ->
        [
          entry ~ns:ns_full ~speedup:1.0 (name ^ "/full");
          entry ~ns:ns_banded ~speedup (name ^ "/banded");
        ])
      results
  in
  let speedup_120 = match results with (_, _, _, s) :: _ -> s | [] -> 0.0 in
  (entries, speedup_120)

(* Tier 2: whole-cluster NW consensus per backend, coverage 5/10/20.
   Every cluster's consensus must be byte-identical across backends. *)
let run_reconstruct () =
  let n_clusters = if !smoke then 3 else 24 in
  let rng = Dna.Rng.create 42 in
  List.concat_map
    (fun coverage ->
      let clusters =
        Array.init n_clusters (fun _ ->
            let clean = Dna.Strand.random rng read_len in
            Array.init coverage (fun _ -> sibling rng clean))
      in
      Array.iter
        (fun reads ->
          let full =
            Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Full
              ~target_len:read_len reads
          in
          let banded =
            Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Banded
              ~target_len:read_len reads
          in
          if not (Dna.Strand.equal full banded) then begin
            Printf.eprintf "consensus mismatch at coverage %d:\n  full   %s\n  banded %s\n"
              coverage (Dna.Strand.to_string full) (Dna.Strand.to_string banded);
            exit 1
          end)
        clusters;
      let sweep backend () =
        Array.iter
          (fun reads ->
            ignore (Reconstruction.Nw_consensus.reconstruct ~backend ~target_len:read_len reads))
          clusters
      in
      let per_cluster ns = ns /. float_of_int n_clusters in
      let ns_full = per_cluster (ns_per_op (sweep Dna.Alignment.Full)) in
      let ns_banded = per_cluster (ns_per_op (sweep Dna.Alignment.Banded)) in
      let speedup = ns_full /. ns_banded in
      let name = Printf.sprintf "reconstruct/len-%d-cov-%d" read_len coverage in
      Printf.printf "%-28s full %10.1f ns   banded %10.1f ns   %5.1fx\n" name ns_full ns_banded
        speedup;
      [
        entry ~ns:ns_full ~speedup:1.0 (name ^ "/full");
        entry ~ns:ns_banded ~speedup (name ^ "/banded");
      ])
    [ 5; 10; 20 ]

(* Tier 3: the whole pipeline, differing only in the reconstruction
   backend. Same seed on both runs, so the decoded bytes must match. *)
let run_pipeline () =
  let file_bytes = if !smoke then 128 else 2048 in
  let data =
    let r = Dna.Rng.create 11 in
    Bytes.init file_bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
  in
  let run backend =
    let rng = Dna.Rng.create 5 in
    let stages = Dnastore.Pipeline.default_stages ~error_rate ~recon_backend:backend () in
    Dnastore.Pipeline.run ~stages ~domains:1 rng data
  in
  let out_full = run Dna.Alignment.Full in
  let out_banded = run Dna.Alignment.Banded in
  (match (out_full.Dnastore.Pipeline.file, out_banded.Dnastore.Pipeline.file) with
  | Some a, Some b when Bytes.equal a b -> ()
  | _ ->
      Printf.eprintf "pipeline decode differs between backends\n";
      exit 1);
  let tf = out_full.Dnastore.Pipeline.timings and tb = out_banded.Dnastore.Pipeline.timings in
  Printf.printf
    "pipeline reconstruct: full %.3fs (p50 %.2f ms, p95 %.2f ms)  banded %.3fs (p50 %.2f ms, p95 %.2f ms)  %.1fx\n"
    tf.Dnastore.Pipeline.reconstruct_s
    (1000.0 *. tf.Dnastore.Pipeline.reconstruct_p50_s)
    (1000.0 *. tf.Dnastore.Pipeline.reconstruct_p95_s)
    tb.Dnastore.Pipeline.reconstruct_s
    (1000.0 *. tb.Dnastore.Pipeline.reconstruct_p50_s)
    (1000.0 *. tb.Dnastore.Pipeline.reconstruct_p95_s)
    (tf.Dnastore.Pipeline.reconstruct_s /. tb.Dnastore.Pipeline.reconstruct_s);
  let stage name full banded =
    [
      entry ~s:full ~speedup:1.0 (name ^ "/full");
      entry ~s:banded ~speedup:(if banded > 0.0 then full /. banded else 1.0) (name ^ "/banded");
    ]
  in
  stage "pipeline/reconstruct_s" tf.Dnastore.Pipeline.reconstruct_s
    tb.Dnastore.Pipeline.reconstruct_s
  @ stage "pipeline/reconstruct_p50_s" tf.Dnastore.Pipeline.reconstruct_p50_s
      tb.Dnastore.Pipeline.reconstruct_p50_s
  @ stage "pipeline/reconstruct_p95_s" tf.Dnastore.Pipeline.reconstruct_p95_s
      tb.Dnastore.Pipeline.reconstruct_p95_s
  @ stage "pipeline/total_s"
      (Dnastore.Pipeline.total_s tf)
      (Dnastore.Pipeline.total_s tb)

(* Tier 4: the pooled reconstruction spine against the boxed one. Both
   legs share the channel/sequencing config and run at [~domains:1] with
   the same seed; the boxed leg clusters through
   [cluster_scaled_default], which is draw-for-draw identical to the
   pooled spine's [cluster_pool_default] — so the decoded bytes must be
   byte-identical, and any divergence fails the bench. The pooled leg
   runs first so its VmHWM reading is not inflated by the boxed leg
   (the counter is a process-lifetime high-water mark; the boxed
   reading still includes the pooled leg's footprint and is reported
   as an upper bound only).

   Guards: identical decoded bytes (always); pooled allocates strictly
   fewer minor words per cluster (always); pooled reconstruct wall not
   slower than boxed (full run — relaxed to 2x under --smoke, where a
   128-byte file gives timing noise, not timing). *)
let run_spines () =
  let file_bytes = if !smoke then 128 else 2048 in
  let data =
    let r = Dna.Rng.create 11 in
    Bytes.init file_bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
  in
  let reps = if !smoke then 1 else 3 in
  let best runs =
    List.fold_left
      (fun acc (o : Dnastore.Pipeline.outcome) ->
        match acc with
        | Some (b : Dnastore.Pipeline.outcome)
          when b.Dnastore.Pipeline.timings.Dnastore.Pipeline.reconstruct_s
               <= o.Dnastore.Pipeline.timings.Dnastore.Pipeline.reconstruct_s ->
            acc
        | _ -> Some o)
      None runs
    |> Option.get
  in
  let run_pooled () =
    let rng = Dna.Rng.create 5 in
    Dnastore.Pipeline.run ~recon_pool:Dnastore.Pipeline.Pool_on ~domains:1 rng data
  in
  let run_boxed () =
    let rng = Dna.Rng.create 5 in
    let stages =
      {
        (Dnastore.Pipeline.default_stages ~error_rate ()) with
        Dnastore.Pipeline.cluster = Dnastore.Pipeline.cluster_scaled_default ~domains:1 ();
      }
    in
    Dnastore.Pipeline.run ~stages ~recon_pool:Dnastore.Pipeline.Pool_off ~domains:1 rng data
  in
  let pooled_runs = List.init reps (fun _ -> run_pooled ()) in
  let rss_pooled = Scale_stream.peak_rss_mb () in
  let boxed_runs = List.init reps (fun _ -> run_boxed ()) in
  let rss_boxed = Scale_stream.peak_rss_mb () in
  let pooled = best pooled_runs and boxed = best boxed_runs in
  (match (pooled.Dnastore.Pipeline.file, boxed.Dnastore.Pipeline.file) with
  | Some a, Some b when Bytes.equal a b -> ()
  | _ ->
      Printf.eprintf "pooled and boxed spines decoded different bytes\n";
      exit 1);
  let tp = pooled.Dnastore.Pipeline.timings and tb = boxed.Dnastore.Pipeline.timings in
  let wp = pooled.Dnastore.Pipeline.reconstruct_words_per_cluster
  and wb = boxed.Dnastore.Pipeline.reconstruct_words_per_cluster in
  Printf.printf
    "pipeline spines: pooled %.3fs (p50 %.2f ms, p95 %.2f ms, %.0f words/cluster)\n\
    \                 boxed  %.3fs (p50 %.2f ms, p95 %.2f ms, %.0f words/cluster)  %.2fx, %.1fx fewer words\n"
    tp.Dnastore.Pipeline.reconstruct_s
    (1000.0 *. tp.Dnastore.Pipeline.reconstruct_p50_s)
    (1000.0 *. tp.Dnastore.Pipeline.reconstruct_p95_s)
    wp tb.Dnastore.Pipeline.reconstruct_s
    (1000.0 *. tb.Dnastore.Pipeline.reconstruct_p50_s)
    (1000.0 *. tb.Dnastore.Pipeline.reconstruct_p95_s)
    wb
    (tb.Dnastore.Pipeline.reconstruct_s /. tp.Dnastore.Pipeline.reconstruct_s)
    (if wp > 0.0 then wb /. wp else infinity);
  if wp >= wb then begin
    Printf.eprintf "pooled spine did not allocate fewer words/cluster (%.0f >= %.0f)\n" wp wb;
    exit 1
  end;
  let slack = if !smoke then 2.0 else 1.0 in
  if tp.Dnastore.Pipeline.reconstruct_s > slack *. tb.Dnastore.Pipeline.reconstruct_s then begin
    Printf.eprintf "pooled reconstruct slower than boxed (%.3fs > %.1fx * %.3fs)\n"
      tp.Dnastore.Pipeline.reconstruct_s slack tb.Dnastore.Pipeline.reconstruct_s;
    exit 1
  end;
  let stage name boxed_v pooled_v =
    [
      entry ~s:boxed_v ~speedup:1.0 (name ^ "/boxed");
      entry ~s:pooled_v
        ~speedup:(if pooled_v > 0.0 then boxed_v /. pooled_v else 1.0)
        (name ^ "/pooled");
    ]
  in
  let entries =
    stage "pipeline_spine/reconstruct_s" tb.Dnastore.Pipeline.reconstruct_s
      tp.Dnastore.Pipeline.reconstruct_s
    @ stage "pipeline_spine/reconstruct_p50_s" tb.Dnastore.Pipeline.reconstruct_p50_s
        tp.Dnastore.Pipeline.reconstruct_p50_s
    @ stage "pipeline_spine/reconstruct_p95_s" tb.Dnastore.Pipeline.reconstruct_p95_s
        tp.Dnastore.Pipeline.reconstruct_p95_s
    @ stage "pipeline_spine/total_s"
        (Dnastore.Pipeline.total_s tb)
        (Dnastore.Pipeline.total_s tp)
  in
  let extras =
    [
      ("pooled_words_per_cluster", Printf.sprintf "%.1f" wp);
      ("boxed_words_per_cluster", Printf.sprintf "%.1f" wb);
      ("pooled_peak_rss_mb", Printf.sprintf "%.1f" rss_pooled);
      ("boxed_peak_rss_mb_upper_bound", Printf.sprintf "%.1f" rss_boxed);
    ]
  in
  (entries, extras)

let () =
  Dna.Alignment.reset_banded_fallbacks ();
  let spine_entries, spine_extras = run_spines () in
  let align_entries, speedup_120 = run_align () in
  let recon_entries = run_reconstruct () in
  let pipeline_entries = run_pipeline () in
  write_json
    (Filename.concat !out_dir "BENCH_recon.json")
    ~config:
      ([
         ("read_len", string_of_int read_len);
         ("error_rate", string_of_float error_rate);
         ("banded_fallbacks", string_of_int (Dna.Alignment.banded_fallbacks ()));
         ("smoke", string_of_bool !smoke);
       ]
      @ spine_extras)
    (align_entries @ recon_entries @ pipeline_entries @ spine_entries);
  let threshold = if !smoke then 0.8 else 1.0 in
  if speedup_120 < threshold then begin
    Printf.eprintf "banded slower than full on %dnt align (%.2fx < %.2fx)\n" read_len speedup_120
      threshold;
    exit 1
  end
