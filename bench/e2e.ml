(* Experiment E7 — the end-to-end retrieval claim of Section IX.

   The paper synthesized one image with Twist BioScience, amplified it
   with PCR, sequenced it with Nanopore and recovered it exactly. The
   substitute run stores an image-like file in the key-value store,
   retrieves it through the full random-access path (PCR selection by
   primers, sequencing in both orientations through the harsh wetlab
   channel, orientation fixing, primer stripping, clustering,
   reconstruction, decoding) and checks byte-exactness. *)

open Exp_common

let image_bytes = pick ~fast:600 ~full:2000

let run () =
  print_string (section "End-to-end retrieval through the random-access path");
  (* An image-like payload: smooth gradients, not random bytes. *)
  let side = int_of_float (sqrt (float_of_int image_bytes)) in
  let image =
    Bytes.init image_bytes (fun i ->
        let x = i mod side and y = i / side in
        Char.chr ((x * x / max 1 side) + (y * 2) land 0xff))
  in
  let store = Dnastore.Kv_store.create ~seed:909 in
  (* Extra parity: the retrieval channel is the harsh wetlab model. *)
  let params = { Codec.Params.default with Codec.Params.rs_parity = 8 } in
  Dnastore.Kv_store.put_exn ~params store ~key:"decoy.txt" (Bytes.of_string (String.make 500 'd'));
  Dnastore.Kv_store.put_exn ~params store ~key:"image.raw" image;
  Printf.printf "pool: %d molecules across %d files\n" (Dnastore.Kv_store.pool_size store)
    (List.length (Dnastore.Kv_store.keys store));
  let stages =
    {
      (Dnastore.Pipeline.default_stages ()) with
      Dnastore.Pipeline.channel = Simulator.Wetlab_channel.create ();
      sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 30);
    }
  in
  let (result, elapsed) = time (fun () -> Dnastore.Kv_store.get ~stages store ~key:"image.raw") in
  (match result with
  | Ok (bytes, timings) ->
      let exact = Bytes.equal bytes image in
      Printf.printf "retrieved %d bytes in %.2fs: %s\n" (Bytes.length bytes) elapsed
        (if exact then "EXACT" else "CORRUPTED");
      Printf.printf "  sequencing %.2fs, clustering %.2fs, reconstruction %.2fs, decoding %.2fs\n"
        timings.Dnastore.Pipeline.simulate_s timings.cluster_s timings.reconstruct_s
        timings.decode_s
  | Error Dnastore.Kv_store.Key_not_found -> print_endline "key not found!"
  | Error (Decode_failed e) -> Printf.printf "decode failed: %s\n" e);
  print_newline ()
