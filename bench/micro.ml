(* Bechamel micro-benchmarks of the pipeline's hot kernels: edit
   distance (full / bounded), signature computation and comparison,
   Reed-Solomon encode/decode, the pairwise alignment behind the NW
   consensus, and the three reconstruction algorithms on one cluster. *)

open Bechamel
open Toolkit

let rng = Dna.Rng.create 123

let strand_a = Dna.Strand.random rng 120
let strand_b =
  (* a ~6%-mutated sibling of strand_a *)
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  Simulator.Channel.transmit ch rng strand_a

let strand_c = Dna.Strand.random rng 120

(* 300 nt pair for the blocked (multi-word) Myers kernel. *)
let long_a = Dna.Strand.random rng 300
let long_b =
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  Simulator.Channel.transmit ch rng long_a

let cluster_reads =
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  Array.init 10 (fun _ -> Simulator.Channel.transmit ch rng strand_a)

let rs_code = Rs.create ~k:20 ~nsym:6
let rs_msg = Array.init 20 (fun i -> (i * 37) land 0xff)
let rs_noisy =
  let cw = Rs.encode_arr rs_code rs_msg in
  cw.(3) <- cw.(3) lxor 0x55;
  cw.(15) <- cw.(15) lxor 0xaa;
  cw

let q_sig = Clustering.Signature.compute ~q:4 Clustering.Signature.Qgram strand_a
let q_sig' = Clustering.Signature.compute ~q:4 Clustering.Signature.Qgram strand_b
let w_sig = Clustering.Signature.compute ~q:4 Clustering.Signature.Wgram strand_a
let w_sig' = Clustering.Signature.compute ~q:4 Clustering.Signature.Wgram strand_b

let tests =
  [
    (* The levenshtein/* cases pin the scalar DP oracle and the myers/*
       cases the bit-parallel kernels (which [Auto] dispatch resolves
       to), so one run shows the backend speedup side by side. *)
    Test.make ~name:"levenshtein/siblings-120nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Scalar strand_a strand_b)));
    Test.make ~name:"levenshtein/unrelated-120nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Scalar strand_a strand_c)));
    Test.make ~name:"levenshtein/siblings-300nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Scalar long_a long_b)));
    Test.make ~name:"levenshtein_leq/bound-40" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein_leq ~backend:Scalar ~bound:40 strand_a strand_c)));
    Test.make ~name:"myers/siblings-120nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Bitparallel strand_a strand_b)));
    Test.make ~name:"myers/unrelated-120nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Bitparallel strand_a strand_c)));
    Test.make ~name:"myers/siblings-300nt" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein ~backend:Bitparallel long_a long_b)));
    Test.make ~name:"myers_leq/bound-40" (Staged.stage (fun () ->
        ignore (Dna.Distance.levenshtein_leq ~backend:Bitparallel ~bound:40 strand_a strand_c)));
    Test.make ~name:"alignment/traceback-120nt" (Staged.stage (fun () ->
        ignore (Dna.Alignment.align strand_a strand_b)));
    Test.make ~name:"signature/qgram-compute" (Staged.stage (fun () ->
        ignore (Clustering.Signature.compute ~q:4 Clustering.Signature.Qgram strand_a)));
    Test.make ~name:"signature/wgram-compute" (Staged.stage (fun () ->
        ignore (Clustering.Signature.compute ~q:4 Clustering.Signature.Wgram strand_a)));
    Test.make ~name:"signature/qgram-distance" (Staged.stage (fun () ->
        ignore (Clustering.Signature.distance q_sig q_sig')));
    Test.make ~name:"signature/wgram-distance" (Staged.stage (fun () ->
        ignore (Clustering.Signature.distance w_sig w_sig')));
    Test.make ~name:"rs/encode-26" (Staged.stage (fun () -> ignore (Rs.encode_arr rs_code rs_msg)));
    Test.make ~name:"rs/decode-2-errors" (Staged.stage (fun () ->
        ignore (Rs.decode_arr rs_code rs_noisy)));
    Test.make ~name:"recon/bma-cov10" (Staged.stage (fun () ->
        ignore (Reconstruction.Bma.reconstruct ~target_len:120 cluster_reads)));
    Test.make ~name:"recon/dbma-cov10" (Staged.stage (fun () ->
        ignore (Reconstruction.Bma.reconstruct_double ~target_len:120 cluster_reads)));
    Test.make ~name:"recon/nwa-cov10" (Staged.stage (fun () ->
        ignore (Reconstruction.Nw_consensus.reconstruct ~target_len:120 cluster_reads)));
  ]

let run () =
  print_string (Exp_common.section "Microbenchmarks (Bechamel, ns/run)");
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let test = Test.make_grouped ~name:"kernels" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | Some _ | None -> ())
    results;
  let rows = List.sort compare !rows in
  print_string
    (Exp_common.table
       ([ [ "kernel"; "time/run" ] ]
       @ List.map
           (fun (name, ns) ->
             let human =
               if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
               else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
               else Printf.sprintf "%.0f ns" ns
             in
             [ name; human ])
           rows));
  print_newline ()
