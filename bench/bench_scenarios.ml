(* The scenario bench: sweeps the builtin scenario stacks across fault
   plans and seeds through the end-to-end pipeline and writes
   BENCH_scenarios.json, so channel-model or codec changes that silently
   shift recovery under realistic stacks have a trajectory to regress
   against.

     dune exec bench/bench_scenarios.exe                 # full sweep, writes
                                                         # BENCH_scenarios.json
     dune exec bench/bench_scenarios.exe -- --out-dir d  # write elsewhere
     dune exec bench/bench_scenarios.exe -- --smoke      # small payload/seed
                                                         # budget for CI

   Guards (any violation exits nonzero):
   - every (scenario, fault, seed) cell must recover at least its
     declared floor;
   - every cell must replay bit-identically when rerun with the same
     seed;
   - the trace-replay scenario's fitted mean error rate must agree with
     the synthetic trace's empirical per-base quality rate within 20%
     relative tolerance. *)

let smoke = ref false
let out_dir = ref "."

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out-dir" :: dir :: rest ->
        out_dir := dir;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: bench_scenarios [--smoke] [--out-dir DIR] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let () =
  let n_bytes = if !smoke then 2000 else 6000 in
  let seeds = if !smoke then [ 1; 2 ] else [ 1; 2; 3 ] in
  let faults = [ "clean"; "dropout-10"; "corruption-2" ] in
  let data =
    let r = Dna.Rng.create 0xF11E in
    Bytes.init n_bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
  in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in

  (* Trace stages replay a deterministic synthetic FASTQ written next to
     the output, so the artifact is reproducible from a clean tree. *)
  let trace_path = Filename.concat !out_dir "bench_trace.fastq" in
  Simulator.Trace_channel.write_synthetic ~seed:77 trace_path;
  let scenarios =
    List.map
      (fun sc ->
        if Simulator.Scenario.has_trace sc then Simulator.Scenario.with_trace_path sc trace_path
        else sc)
      Simulator.Scenario.builtins
  in

  (* Fit-vs-empirical guard: the fitted profile's mean must match the
     per-base rate implied by the trace's own quality bytes. *)
  (match Simulator.Trace_channel.fit trace_path with
  | Error e -> violate "trace fit failed: %s" e
  | Ok profile ->
      let quals =
        Dna.Fastq.fold_file trace_path ~init:[] ~f:(fun acc r -> r.Dna.Fastq.qual :: acc)
      in
      let sum, n =
        List.fold_left
          (fun (s, n) q ->
            ( Array.fold_left
                (fun s qi -> s +. Simulator.Trace_channel.phred_to_p qi)
                s q,
              n + Array.length q ))
          (0.0, 0) (fst quals)
      in
      let empirical = if n = 0 then 0.0 else sum /. float_of_int n in
      let fitted = profile.Simulator.Trace_channel.mean_rate in
      let rel = abs_float (fitted -. empirical) /. max 1e-9 empirical in
      if rel > 0.2 then
        violate "trace fit drift: fitted %.5f vs empirical %.5f (rel %.2f)" fitted empirical rel);

  let t0 = Unix.gettimeofday () in
  let outcomes =
    match Dnastore.Scenario_run.sweep ~faults ~seeds ~data scenarios with
    | Ok os -> os
    | Error e ->
        Printf.eprintf "bench_scenarios: sweep failed: %s\n" e;
        exit 1
  in
  let wall_s = Unix.gettimeofday () -. t0 in

  (* Floor guard. *)
  List.iter
    (fun (o : Dnastore.Scenario_run.outcome) ->
      violate "%s/%s seed %d: recovered %.4f below floor %.2f" o.Dnastore.Scenario_run.scenario
        o.fault o.seed o.recovered_fraction
        (match o.floor with Some f -> f | None -> 0.0))
    (Dnastore.Scenario_run.failures outcomes);

  (* Replay guard: rerunning one cell per scenario with its seed must
     reproduce the outcome exactly (recovered bytes included). *)
  List.iter
    (fun sc ->
      let seed = List.hd seeds in
      let go () = Dnastore.Scenario_run.run_full ~fault:"clean" ~seed ~data sc in
      match (go (), go ()) with
      | Ok (o, p), Ok (o', p') ->
          let same_bytes =
            match (p.Dnastore.Pipeline.file, p'.Dnastore.Pipeline.file) with
            | Some a, Some b -> Bytes.equal a b
            | None, None -> true
            | _ -> false
          in
          if
            (not same_bytes)
            || o.Dnastore.Scenario_run.recovered_fraction
               <> o'.Dnastore.Scenario_run.recovered_fraction
          then violate "%s seed %d: replay diverged" sc.Simulator.Scenario.name seed
      | Error e, _ | _, Error e -> violate "%s: %s" sc.Simulator.Scenario.name e)
    scenarios;

  print_string (Dnastore.Report.scenario_summary outcomes);

  let json =
    match Dnastore.Scenario_run.outcomes_json outcomes with
    | Store_json.Obj fields ->
        Store_json.Obj
          (fields
          @ [
              ("smoke", Store_json.Bool !smoke);
              ("n_bytes", Store_json.Int n_bytes);
              ("wall_s", Store_json.Float wall_s);
            ])
    | j -> j
  in
  let out_path = Filename.concat !out_dir "BENCH_scenarios.json" in
  let oc = open_out out_path in
  output_string oc (Store_json.to_string json);
  close_out oc;
  Printf.printf "wrote %s (%d cells, %.1fs)\n" out_path (List.length outcomes) wall_s;

  match !violations with
  | [] -> ()
  | vs ->
      Printf.eprintf "%d scenario bench violation(s):\n" (List.length vs);
      List.iter (fun v -> Printf.eprintf "  %s\n" v) (List.rev vs);
      exit 1
