(* Experiment E6 — Table III (Section IX).

   Latency of the pipeline modules in seconds for every combination of
   clustering signature ({q,w}-gram) and reconstruction algorithm
   (BMA / double-sided BMA / NWA), at coverage 10 and coverage 50.
   Setting mirrors the paper: baseline encoding, payload length 120,
   error rate 6%. Absolute numbers differ from the paper's 24-core Xeon;
   the comparisons of interest are across rows and columns. *)

open Exp_common

let n_units = pick ~fast:1 ~full:4 (* 26 molecules per unit *)
let n_runs = pick ~fast:1 ~full:3
let coverages = [ 10; 50 ]

let run_config ~kind ~algo ~coverage ~file rng =
  let stages =
    {
      Dnastore.Pipeline.channel = Simulator.Iid_channel.create_rate ~error_rate:0.06;
      sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage);
      cluster =
        (fun rng reads ->
          let result, _ = cluster_auto ~kind rng reads in
          Clustering.Cluster.read_clusters result reads);
      reconstruct = reconstruct_of algo;
    }
  in
  let out = Dnastore.Pipeline.run ~stages rng file in
  (out.Dnastore.Pipeline.timings, out.Dnastore.Pipeline.exact)

let run () =
  print_string (section "Table III: per-module latency of the pipeline (seconds)");
  Printf.printf
    "setting: baseline encoding, payload length 120, error rate 6%%, %d units (%d molecules), avg over %d runs\n"
    n_units (26 * n_units) n_runs;
  let file_bytes = (n_units * Codec.Params.unit_data_bytes Codec.Params.default) - 200 in
  let mk_rng = Dna.Rng.create in
  let file =
    let r = mk_rng 7 in
    Bytes.init file_bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
  in
  List.iter
    (fun coverage ->
      Printf.printf "\nCoverage = %d\n" coverage;
      let rows = ref [ [ "Pipeline"; "Encoding"; "Clustering"; "Recon"; "Decoding"; "Total"; "Exact" ] ] in
      List.iter
        (fun kind ->
          List.iter
            (fun algo ->
              let totals = Array.make 5 0.0 in
              let all_exact = ref true in
              for run = 1 to n_runs do
                let rng = mk_rng (run * 31) in
                let t, exact = run_config ~kind ~algo ~coverage ~file rng in
                totals.(0) <- totals.(0) +. t.Dnastore.Pipeline.encode_s;
                totals.(1) <- totals.(1) +. t.cluster_s;
                totals.(2) <- totals.(2) +. t.reconstruct_s;
                totals.(3) <- totals.(3) +. t.decode_s;
                totals.(4) <- totals.(4) +. Dnastore.Pipeline.total_s t -. t.simulate_s;
                if not exact then all_exact := false
              done;
              let avg i = totals.(i) /. float_of_int n_runs in
              let kname =
                match kind with Clustering.Signature.Qgram -> "q-gram" | _ -> "w-gram"
              in
              rows :=
                [
                  Printf.sprintf "%s + %s" kname (recon_name algo);
                  f3 (avg 0);
                  f3 (avg 1);
                  f3 (avg 2);
                  f3 (avg 3);
                  f3 (avg 4);
                  (if !all_exact then "yes" else "NO");
                ]
                :: !rows)
            [ `Bma; `Dbma; `Nw ])
        [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ];
      print_string (table (List.rev !rows)))
    coverages;
  print_newline ()
