(* Experiment E3 — Figure 5 (Section VI-B).

   The automatic clustering configuration: signature distances between a
   handful of probe reads and a larger sample, plotted sorted. The curve
   shows the low plateau of same-cluster pairs, the jump, and the high
   plateau of unrelated pairs; the auto-fitted theta_low/theta_high
   bracket the jump. *)

open Exp_common

let n_strands = pick ~fast:40 ~full:100
let coverage = 10
let len = 120

let run () =
  print_string (section "Figure 5: automatic threshold configuration");
  let rng = Dna.Rng.create 55 in
  let channel = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  let strands = Array.init n_strands (fun _ -> Dna.Strand.random rng len) in
  let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage) in
  let reads = Simulator.Sequencer.sequence sp channel rng strands in
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  List.iter
    (fun kind ->
      let kname = match kind with Clustering.Signature.Qgram -> "q-gram" | _ -> "w-gram" in
      let params = Clustering.Cluster.default_params ~kind ~read_len:len () in
      let config = Clustering.Auto_config.configure params rng read_strands in
      let series = Clustering.Auto_config.figure5_series config in
      Printf.printf
        "\n%s signatures: %d sampled pairs; theta_low = %d, theta_high = %d, edit threshold = %d\n"
        kname (Array.length series) config.Clustering.Auto_config.theta_low
        config.Clustering.Auto_config.theta_high config.Clustering.Auto_config.edit_threshold;
      print_string
        (profile ~height:10 (Array.map float_of_int series));
      print_string "        (x: sampled pairs sorted by distance; y: signature distance.\n";
      print_string "         low plateau = same-cluster pairs, high plateau = unrelated pairs)\n")
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ];
  print_newline ()
