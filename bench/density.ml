(* Ablation — constrained vs unconstrained coding (Section II-D).

   The paper adopts unconstrained coding (2 bits/nt + outer RS), citing
   the argument that embracing errors beats avoiding them through
   constrained coding. This experiment measures both sides: information
   density, and end-to-end strand recovery under a channel whose errors
   constrained coding is designed to dodge (homopolymer-triggered
   indels). A strand here is one payload; recovery = exact payload after
   reconstruction + (for unconstrained) RS correction with equal total
   redundancy. *)

open Exp_common

let n_strands = pick ~fast:40 ~full:120
let coverage = 4
let payload_bytes = 24

(* A channel whose indel probability spikes inside homopolymer runs —
   the failure mode constrained coding exists to avoid. *)
let homopolymer_channel ~base_rate ~run_multiplier =
  Simulator.Channel.create ~name:"homopolymer-biased"
      (fun rng strand ->
        let n = Dna.Strand.length strand in
        let buf = Buffer.create (n + 8) in
        for i = 0 to n - 1 do
          let in_run = i > 0 && Dna.Strand.get_code strand i = Dna.Strand.get_code strand (i - 1) in
          let rate = if in_run then base_rate *. run_multiplier else base_rate in
          let u = Dna.Rng.float rng in
          if u < rate *. 0.5 then () (* deletion *)
          else if u < rate *. 0.75 then begin
            Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4);
            Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Strand.get strand i))
          end
          else if u < rate then
            Buffer.add_char buf
              (Dna.Nucleotide.to_char (Dna.Nucleotide.random_other rng (Dna.Strand.get strand i)))
          else Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Strand.get strand i))
        done;
        Dna.Strand.of_string (Buffer.contents buf))

let run () =
  print_string (section "Ablation: unconstrained + RS vs constrained coding");
  Printf.printf
    "setting: %d payloads of %d bytes, coverage %d, NW reconstruction, 4%% base error\n\n"
    n_strands payload_bytes coverage;

  (* Unconstrained arm: scrambled payload + RS parity, 2 bits/nt. The
     parity is sized so both arms spend comparable bases per payload. *)
  let rs = Rs.create ~k:payload_bytes ~nsym:8 in
  let unconstrained_nt = 4 * (payload_bytes + 8) in
  (* Constrained arm: homopolymer-free, no ECC (its redundancy *is* the
     constraint). *)
  let constrained_nt = Codec.Constrained.encoded_length payload_bytes in

  let run_cell ~run_multiplier arm =
        let rng = Dna.Rng.create 77 in
        let channel = homopolymer_channel ~base_rate:0.04 ~run_multiplier in
        let ok = ref 0 in
        let scramble_seed = 0xabc in
        for t = 1 to n_strands do
          let payload = Bytes.init payload_bytes (fun i -> Char.chr ((i * 41 + t) land 0xff)) in
          let encoded =
            match arm with
            | `Unconstrained ->
                Dna.Bitstream.strand_of_bytes
                  (Rs.encode rs (Dna.Randomizer.scramble ~seed:scramble_seed payload))
            | `Constrained -> Codec.Constrained.encode payload
          in
          let reads =
            Array.init coverage (fun _ -> Simulator.Channel.transmit channel rng encoded)
          in
          let consensus =
            Reconstruction.Nw_consensus.reconstruct ~target_len:(Dna.Strand.length encoded) reads
          in
          let recovered =
            match arm with
            | `Unconstrained -> (
                match Rs.decode rs (Dna.Bitstream.bytes_of_strand consensus) with
                | Ok bytes -> Bytes.equal (Dna.Randomizer.unscramble ~seed:scramble_seed bytes) payload
                | Error _ -> false)
            | `Constrained -> (
                match Codec.Constrained.decode ~n_bytes:payload_bytes consensus with
                | Ok bytes -> Bytes.equal bytes payload
                | Error _ -> false)
          in
          if recovered then incr ok
        done;
        Printf.sprintf "%d/%d" !ok n_strands
  in
  let density nt = 8.0 *. float_of_int payload_bytes /. float_of_int nt in
  print_string
    (table
       [
         [
           "scheme"; "strand nt"; "density"; "max homopoly";
           "uniform channel"; "homopolymer-hostile (x6)";
         ];
         [
           "unconstrained + RS(8)";
           string_of_int unconstrained_nt;
           Printf.sprintf "%.2f b/nt" (density unconstrained_nt);
           "unbounded";
           run_cell ~run_multiplier:1.0 `Unconstrained;
           run_cell ~run_multiplier:6.0 `Unconstrained;
         ];
         [
           "constrained (rotation)";
           string_of_int constrained_nt;
           Printf.sprintf "%.2f b/nt" (density constrained_nt);
           "1";
           run_cell ~run_multiplier:1.0 `Constrained;
           run_cell ~run_multiplier:6.0 `Constrained;
         ];
       ]);
  print_string
    "\n(equal bases per payload in both arms: the constraint IS the constrained\n\
    \ code's redundancy. On a realistic channel the RS arm corrects what the\n\
    \ constrained arm cannot; only when homopolymers are punished savagely does\n\
    \ avoidance catch up — the trade-off behind the paper's choice of\n\
    \ unconstrained coding, after Weindel et al.)\n";
  print_newline ()
