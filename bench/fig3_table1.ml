(* Experiment E1/E2 — Figure 3 and Table I (Section V).

   How realistic is each wetlab simulator? Paired (clean, noisy) reads
   are drawn from the "real" wetlab stand-in channel; the data-driven
   simulators (count-based learned channel and the seq2seq RNN) are
   trained on the training split without access to the channel's
   parameters. Every simulator then generates clusters which are
   reconstructed with double-sided BMA, and the per-index error profile
   of each simulator is compared against the real channel's:

   (i)   per-index error profile (Figure 3),
   (ii)  average error rate over all indexes,
   (iii) average absolute deviation from the real profile,
   (iv)  number of perfectly reconstructed strands. *)

open Exp_common

let strand_len = pick ~fast:40 ~full:50
let n_train = pick ~fast:150 ~full:900
let n_test_clusters = pick ~fast:60 ~full:300
let coverage = 8
let rnn_epochs = pick ~fast:2 ~full:16
let rnn_hidden = 24

let run () =
  print_string (section "Figure 3 + Table I: simulator fidelity (vs real wetlab)");
  Printf.printf
    "setting: strand length %d, %d training pairs, %d test clusters, coverage %d, DBMA reconstruction\n"
    strand_len n_train n_test_clusters coverage;
  let rng = Dna.Rng.create 1001 in
  let real = Simulator.Wetlab_channel.create () in

  (* Train the data-driven simulators on paired reads from the real
     channel (the paper's train/validation/test methodology). *)
  let dataset = Simulator.Trainer.make_dataset real rng ~n:n_train ~len:strand_len in
  let learned = Simulator.Trainer.train_learned dataset in
  Printf.printf "training RNN simulator (hidden %d, %d epochs)...\n%!" rnn_hidden rnn_epochs;
  let (rnn_model, train_time) =
    time (fun () ->
        Simulator.Trainer.train_rnn ~hidden:rnn_hidden ~epochs:rnn_epochs ~lr:3e-3
          ~report:(fun p ->
            Printf.printf "  epoch %2d: train %.3f  val %.3f\n%!" p.Simulator.Trainer.epoch
              p.train_loss p.val_loss)
          dataset rng)
  in
  Printf.printf "RNN training took %.1fs\n" train_time;
  (* Calibrate the sampling temperature on the validation split: an
     imperfectly converged model is underconfident and over-generates
     noise at temperature 1. *)
  let temperature = Simulator.Trainer.calibrate_temperature rnn_model dataset rng in
  Printf.printf "calibrated sampling temperature: %.2f\n" temperature;
  let rnn = Simulator.Rnn_channel.create ~temperature rnn_model in

  (* Calibrate the naive simulators the way a researcher would: estimate
     the overall per-base error rate from the training pairs. They still
     miss the position dependence and the bursts. *)
  let estimated_rate =
    let edits, bases =
      List.fold_left
        (fun (e, b) (clean, noisy) ->
          (e + Dna.Distance.levenshtein clean noisy, b + Dna.Strand.length clean))
        (0, 0) dataset.Simulator.Trainer.train
    in
    float_of_int edits /. float_of_int (max 1 bases)
  in
  Printf.printf "estimated per-base error rate from training pairs: %s\n" (pct estimated_rate);
  let simulators =
    [
      ("Rashtchian", Simulator.Iid_channel.create_rate ~error_rate:estimated_rate);
      ("SOLQC", Simulator.Solqc_channel.create_rate ~error_rate:estimated_rate);
      ("Learned", learned);
      ("RNN", rnn);
      ("Real", real);
    ]
  in

  (* Per-simulator: generate clusters, reconstruct with DBMA, profile. *)
  let results =
    List.map
      (fun (name, channel) ->
        let pairs =
          reconstruct_clusters rng channel
            ~recon:(reconstruct_of `Dbma) ~n_clusters:n_test_clusters ~coverage ~len:strand_len
        in
        let prof = Reconstruction.Recon_metrics.per_index_error pairs in
        let avg = Reconstruction.Recon_metrics.average_error prof in
        let perfect = Reconstruction.Recon_metrics.perfect_count pairs in
        (name, prof, avg, perfect))
      simulators
  in
  let real_profile =
    match List.rev results with (_, prof, _, _) :: _ -> prof | [] -> [||]
  in

  (* Figure 3: one ASCII profile per simulator. *)
  List.iter
    (fun (name, prof, avg, _) ->
      Printf.printf "\nFigure 3 [%s]: reconstruction error rate by index (avg %s)\n" name (pct avg);
      print_string (profile ~height:8 prof))
    results;

  (* Table I. *)
  print_string "\nTable I: simulator fidelity metrics\n";
  let rows =
    [ "metric" :: List.map (fun (name, _, _, _) -> name) results ]
    @ [
        "(ii) avg error rate"
        :: List.map (fun (_, _, avg, _) -> pct avg) results;
        "(iii) avg |dev| vs real"
        :: List.map
             (fun (name, prof, _, _) ->
               if name = "Real" then "-"
               else f4 (Reconstruction.Recon_metrics.average_abs_deviation prof real_profile))
             results;
        Printf.sprintf "(iv) perfect strands /%d" n_test_clusters
        :: List.map (fun (_, _, _, perfect) -> string_of_int perfect) results;
      ]
  in
  print_string (table rows);
  print_newline ()
