(* Streaming read-set plumbing for the clustering scale benchmarks.

   Generation writes simulated reads straight to FASTQ through a small
   per-chunk arena (the full read set never exists in memory), with the
   ground-truth origin embedded in each read id as "r<i>_o<origin>".
   Loading streams the FASTQ back one record at a time into one packed
   arena pool plus a flat truth array — bounded memory at any read
   count. *)

(* Generate [n_refs * coverage]-ish reads (dropout-free fixed coverage)
   of [len]nt references through the iid channel at [error_rate], and
   append them to [path]. Returns the number of reads written. *)
let write_fastq ~path ~seed ~n_refs ~coverage ~len ~error_rate =
  let rng = Dna.Rng.create seed in
  let channel = Simulator.Iid_channel.create_rate ~error_rate in
  let sequencing =
    Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let chunk = 4096 in
      let pool = Dna.Strand_pool.create () in
      let buf = Buffer.create (1 lsl 17) in
      let written = ref 0 in
      let base_ref = ref 0 in
      while !base_ref < n_refs do
        let m = min chunk (n_refs - !base_ref) in
        let refs = Array.init m (fun _ -> Dna.Strand.random rng len) in
        Dna.Strand_pool.clear pool;
        let origins = Simulator.Sequencer.sequence_pool sequencing channel rng refs ~pool in
        Array.iteri
          (fun i origin ->
            let seq = Dna.Strand_pool.get pool i in
            Buffer.add_string buf
              (Printf.sprintf "@r%d_o%d\n" !written (!base_ref + origin));
            Buffer.add_string buf (Dna.Strand.to_string seq);
            Buffer.add_string buf "\n+\n";
            Buffer.add_string buf (String.make (Dna.Strand.length seq) 'I');
            Buffer.add_char buf '\n';
            incr written;
            if Buffer.length buf > 1 lsl 16 then begin
              Buffer.output_buffer oc buf;
              Buffer.clear buf
            end)
          origins;
        base_ref := !base_ref + m
      done;
      Buffer.output_buffer oc buf;
      !written)

let origin_of_id id =
  match String.rindex_opt id 'o' with
  | Some k -> int_of_string (String.sub id (k + 1) (String.length id - k - 1))
  | None -> invalid_arg ("scale read id without origin: " ^ id)

(* Stream [path] into a packed pool; returns it with the per-read truth
   (origin) array. Only one FASTQ record is boxed at any moment. *)
let load_fastq ~path =
  let pool = Dna.Strand_pool.create () in
  let truth = ref (Array.make 1024 0) in
  let count = ref 0 in
  let (), errors =
    Dna.Fastq.fold_file path ~init:() ~f:(fun () (r : Dna.Fastq.record) ->
        if !count >= Array.length !truth then begin
          let a = Array.make (2 * Array.length !truth) 0 in
          Array.blit !truth 0 a 0 !count;
          truth := a
        end;
        !truth.(!count) <- origin_of_id r.id;
        incr count;
        ignore (Dna.Strand_pool.add_strand pool r.seq))
  in
  (match errors with
  | [] -> ()
  | e :: _ ->
      Printf.eprintf "scale fastq: %d parse errors (first at line %d: %s)\n"
        (List.length errors) e.Dna.Fastq.line e.Dna.Fastq.message;
      exit 1);
  (pool, Array.sub !truth 0 !count)

(* Peak resident set of this process so far, from /proc (0.0 when
   unavailable, e.g. non-Linux). *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
                  let digits =
                    String.to_seq line
                    |> Seq.filter (fun c -> c >= '0' && c <= '9')
                    |> String.of_seq
                  in
                  float_of_string digits /. 1024.0
                end
                else scan ()
            | exception End_of_file -> 0.0
          in
          scan ())
