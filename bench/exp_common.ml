(* Shared plumbing for the experiment harness: workload sizes, channel
   constructors, cluster/reconstruct runners and printing helpers. Every
   experiment prints the same rows/series as the corresponding table or
   figure of the paper; EXPERIMENTS.md records paper-vs-measured. *)

type scale = Fast | Full

(* DNASTORE_BENCH=fast shrinks every workload for smoke runs. *)
let scale =
  match Sys.getenv_opt "DNASTORE_BENCH" with Some "fast" -> Fast | _ -> Full

let pick ~fast ~full = match scale with Fast -> fast | Full -> full

let section = Dnastore.Report.section
let table = Dnastore.Report.table
let profile = Dnastore.Report.ascii_profile

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Segment-average a profile into [n] buckets for compact table output. *)
let bucketize n (p : float array) =
  let len = Array.length p in
  Array.init n (fun b ->
      let lo = b * len / n and hi = max ((b * len / n) + 1) ((b + 1) * len / n) in
      let s = ref 0.0 in
      for i = lo to hi - 1 do
        s := !s +. p.(i)
      done;
      !s /. float_of_int (hi - lo))

let reconstruct_of = function
  | `Bma -> Reconstruction.Bma.reconstruct ?lookahead:None
  | `Dbma -> Reconstruction.Bma.reconstruct_double ?lookahead:None
  | `Nw -> fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads
  | `Ensemble -> fun ~target_len reads -> Reconstruction.Ensemble.reconstruct ~target_len reads

let recon_name = function
  | `Bma -> "BMA"
  | `Dbma -> "DBMA"
  | `Nw -> "NWA"
  | `Ensemble -> "ENSEMBLE"

(* Reconstruct every cluster of a channel's reads and return the
   (original, consensus) pairs: the common core of Figures 3 and 6. *)
let reconstruct_clusters rng channel ~recon ~n_clusters ~coverage ~len =
  List.init n_clusters (fun _ ->
      let clean = Dna.Strand.random rng len in
      let reads = Array.init coverage (fun _ -> Simulator.Channel.transmit channel rng clean) in
      (clean, recon ~target_len:len reads))

let cluster_auto ?(kind = Clustering.Signature.Qgram) rng reads =
  let read_len = Dna.Strand.length reads.(0) in
  let params = Clustering.Cluster.default_params ~kind ~read_len () in
  let config = Clustering.Auto_config.configure params rng reads in
  let params = Clustering.Auto_config.apply config params in
  (Clustering.Cluster.run params rng reads, params)

let pct = Dnastore.Report.pct
let f3 = Dnastore.Report.f3
let f4 = Dnastore.Report.f4
