(* Ablation — Reed-Solomon rows vs one long LDPC code (Section X,
   Chandak et al.).

   The matrix architecture protects a unit with many short RS codewords;
   the alternative is a single long low-density code over the same data.
   Both arms get the same redundancy budget and face the same two
   stresses the pipeline produces: whole-molecule losses (erasures) and
   scattered byte errors from imperfect reconstruction. *)

open Exp_common

let n_trials = pick ~fast:20 ~full:60

(* One unit worth of data: 600 bytes, 33% redundancy in both arms. *)
let data_bytes = 600
let rs_params = Codec.Params.default (* 20 data + 6 parity columns, rows of 30 *)

let ldpc = Rs.Ldpc.create ~k:(8 * data_bytes) ~m:(8 * data_bytes / 10 * 3) ()

let run_arm rng ~molecule_losses ~byte_error_rate arm =
  let data = Bytes.init data_bytes (fun _ -> Char.chr (Dna.Rng.int rng 256)) in
  match arm with
  | `Rs ->
      let strands =
        Codec.Matrix_codec.encode_unit rs_params ~layout:Codec.Layout.Baseline ~unit_id:0 data
      in
      let lost = Dna.Rng.sample_indices rng ~n:(Array.length strands) ~k:molecule_losses in
      let columns =
        Array.mapi
          (fun i s ->
            if Array.exists (( = ) i) lost then None
            else
              match Codec.Matrix_codec.parse_strand rs_params s with
              | Some (_, payload) ->
                  Some
                    (Bytes.map
                       (fun c ->
                         if Dna.Rng.float rng < byte_error_rate then
                           Char.chr (Char.code c lxor (1 + Dna.Rng.int rng 255))
                         else c)
                       payload)
              | None -> None)
          strands
      in
      (match Codec.Matrix_codec.decode_unit rs_params ~layout:Codec.Layout.Baseline columns with
      | Ok (decoded, stats) ->
          Bytes.equal decoded data && stats.Codec.Matrix_codec.failed_codewords = []
      | Error _ -> false)
  | `Ldpc ->
      (* The same data as one long bit codeword; a lost molecule erases
         a contiguous 30-byte span, reconstruction noise flips bytes. *)
      let info = Rs.Ldpc.bits_of_bytes data ~bits:(8 * data_bytes) in
      let cw = Rs.Ldpc.encode ldpc info in
      let n = Array.length cw in
      let received = Array.map (fun b -> Some b) cw in
      let span = 8 * Codec.Params.rows rs_params in
      let lost = Dna.Rng.sample_indices rng ~n:(n / span) ~k:molecule_losses in
      Array.iter
        (fun m ->
          for i = m * span to min (n - 1) (((m + 1) * span) - 1) do
            received.(i) <- None
          done)
        lost;
      let byte_flip = byte_error_rate /. 8.0 in
      let received =
        Array.map
          (function
            | Some b when Dna.Rng.float rng < byte_flip -> Some (not b)
            | x -> x)
          received
      in
      (match Rs.Ldpc.decode ldpc (Rs.Ldpc.llr_erasure received) with
      | Ok out -> out = info
      | Error _ -> false)

let run () =
  print_string (section "Ablation: Reed-Solomon rows vs one long LDPC code");
  Printf.printf "setting: %d-byte unit, 30%% redundancy both arms, %d trials per cell\n\n"
    data_bytes n_trials;
  let scenarios =
    [
      ("clean", 0, 0.0);
      ("3 molecules lost", 3, 0.0);
      ("6 molecules lost", 6, 0.0);
      ("byte errors 1%", 0, 0.01);
      ("3 lost + 1% errors", 3, 0.01);
      ("byte errors 4%", 0, 0.04);
    ]
  in
  let rows =
    [ [ "scenario"; "RS rows"; "LDPC" ] ]
    @ List.map
        (fun (name, losses, err) ->
          let score arm =
            let ok = ref 0 in
            for t = 1 to n_trials do
              let rng = Dna.Rng.create ((t * 7919) + losses) in
              if run_arm rng ~molecule_losses:losses ~byte_error_rate:err arm then incr ok
            done;
            Printf.sprintf "%d/%d" !ok n_trials
          in
          [ name; score `Rs; score `Ldpc ])
        scenarios
  in
  print_string (table rows);
  print_string
    "\n(RS rows pair naturally with the molecule architecture: erasures are\n\
    \ declared per column and corrected exactly; the long LDPC trades exactness\n\
    \ for graceful scaling and soft-information decoding)\n";
  print_newline ()
