(** Command-line driver for the DNA storage toolkit.

    Each subcommand runs one pipeline module on files, so the stages can
    be exercised and swapped individually, mirroring the paper's modular
    design:

      dnastore encode --input photo.bin --output strands.fasta
      dnastore simulate --strands strands.fasta --output reads.txt
      dnastore cluster --reads reads.txt --output clusters.txt
      dnastore reconstruct --clusters clusters.txt --output consensus.fasta
      dnastore decode --consensus consensus.fasta --meta strands.fasta.meta
      dnastore pipeline --input photo.bin --output recovered.bin *)

open Cmdliner

let read_binary path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_binary path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let write_text path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* Sidecar metadata: enough to decode without re-deriving anything. *)
let write_meta path ~(params : Codec.Params.t) ~layout ~n_units =
  write_text path
    (Printf.sprintf "payload_nt=%d\nrs_data=%d\nrs_parity=%d\nscramble_seed=%d\nlayout=%s\nn_units=%d\n"
       params.Codec.Params.payload_nt params.rs_data params.rs_parity params.scramble_seed
       (Codec.Layout.name layout) n_units)

let read_meta path =
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line '=' with
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
        | None -> None)
      (read_lines path)
  in
  let get k = try List.assoc k kv with Not_found -> failwith ("meta: missing key " ^ k) in
  let params =
    {
      Codec.Params.payload_nt = int_of_string (get "payload_nt");
      rs_data = int_of_string (get "rs_data");
      rs_parity = int_of_string (get "rs_parity");
      scramble_seed = int_of_string (get "scramble_seed");
    }
  in
  let layout =
    match get "layout" with
    | "gini" -> Codec.Layout.Gini
    | _ -> Codec.Layout.Baseline
  in
  (params, layout, int_of_string (get "n_units"))

(* Common options *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for reproducibility.")

let layout_arg =
  let layout_conv =
    Arg.enum [ ("baseline", Codec.Layout.Baseline); ("gini", Codec.Layout.Gini) ]
  in
  Arg.(value & opt layout_conv Codec.Layout.Baseline & info [ "layout" ] ~docv:"LAYOUT"
       ~doc:"Codeword layout: $(b,baseline) (Organick) or $(b,gini) (diagonal).")

let payload_arg =
  Arg.(value & opt int 120 & info [ "payload" ] ~docv:"NT"
       ~doc:"Payload bases per molecule (multiple of 4).")

let parity_arg =
  Arg.(value & opt int 6 & info [ "parity" ] ~docv:"N" ~doc:"Reed-Solomon parity molecules per unit.")

let data_cols_arg =
  Arg.(value & opt int 20 & info [ "data-columns" ] ~docv:"N" ~doc:"Data molecules per encoding unit.")

let params_of ~payload ~data_cols ~parity =
  { Codec.Params.default with Codec.Params.payload_nt = payload; rs_data = data_cols; rs_parity = parity }

let channel_arg =
  Arg.(value & opt (enum [ ("iid", `Iid); ("solqc", `Solqc); ("wetlab", `Wetlab) ]) `Iid
       & info [ "channel" ] ~docv:"CHANNEL"
         ~doc:"Wetlab simulator: $(b,iid) (Rashtchian), $(b,solqc), or $(b,wetlab) (position-dependent, bursty).")

let error_rate_arg =
  Arg.(value & opt float 0.06 & info [ "error-rate" ] ~docv:"P" ~doc:"Total per-base error rate.")

let coverage_arg =
  Arg.(value & opt int 10 & info [ "coverage" ] ~docv:"N" ~doc:"Sequencing reads per strand.")

let make_channel kind error_rate =
  match kind with
  | `Iid -> Simulator.Iid_channel.create_rate ~error_rate
  | `Solqc -> Simulator.Solqc_channel.create_rate ~error_rate
  | `Wetlab ->
      Simulator.Wetlab_channel.create
        ~params:{ Simulator.Wetlab_channel.default_params with base_error = error_rate }
        ()

let recon_arg =
  Arg.(value & opt (enum [ ("bma", `Bma); ("dbma", `Dbma); ("nw", `Nw); ("ensemble", `Ensemble) ]) `Nw
       & info [ "algorithm" ] ~docv:"ALGO"
         ~doc:"Trace reconstruction: $(b,bma), $(b,dbma) (double-sided), $(b,nw)                (Needleman-Wunsch), or $(b,ensemble) (vote of all three).")

let make_recon = function
  | `Bma -> Reconstruction.Bma.reconstruct ?lookahead:None
  | `Dbma -> Reconstruction.Bma.reconstruct_double ?lookahead:None
  | `Nw -> (fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads)
  | `Ensemble -> (fun ~target_len reads -> Reconstruction.Ensemble.reconstruct ~target_len reads)
  | `Trellis -> (fun ~target_len reads -> Reconstruction.Trellis.reconstruct ~target_len reads)

(* Pool-native twin of [make_recon]: algorithms with an arena surface
   use it; trellis (no pool surface yet) bridges by materializing
   zero-copy views. *)
let make_recon_pool = function
  | `Bma -> (fun ~target_len pool idxs -> Reconstruction.Bma.reconstruct_pool ~target_len pool idxs)
  | `Dbma ->
      (fun ~target_len pool idxs ->
        Reconstruction.Bma.reconstruct_double_pool ~target_len pool idxs)
  | `Nw ->
      (fun ~target_len pool idxs ->
        Reconstruction.Nw_consensus.reconstruct_pool ~target_len pool idxs)
  | `Ensemble ->
      (fun ~target_len pool idxs -> Reconstruction.Ensemble.reconstruct_pool ~target_len pool idxs)
  | `Trellis ->
      (fun ~target_len pool idxs ->
        Reconstruction.Trellis.reconstruct ~target_len
          (Array.map (Dna.Strand_pool.get pool) idxs))

(* The alignment-kernel knob is process-wide (it defaults every
   [Dna.Alignment.align] call), so one flag covers NW consensus, the
   ensemble's NW member, trellis rate estimation and POA alike. *)
let recon_backend_arg =
  Arg.(value
       & opt (enum [ ("auto", Dna.Alignment.Auto); ("full", Dna.Alignment.Full); ("banded", Dna.Alignment.Banded) ])
           Dna.Alignment.Auto
       & info [ "recon-backend" ] ~docv:"KERNEL"
         ~doc:"Alignment kernel for reconstruction: $(b,auto), $(b,full) (reference matrix), or                $(b,banded) (Ukkonen band, exact via full-matrix fallback). Output is identical                for every choice.")

(* The two reconstruction spines stay A/B-able from the shell: [auto]
   is pooled wherever pool-native stages exist for the request. *)
let recon_pool_arg =
  Arg.(value
       & opt (enum [ ("auto", Dnastore.Pipeline.Pool_auto); ("on", Dnastore.Pipeline.Pool_on); ("off", Dnastore.Pipeline.Pool_off) ])
           Dnastore.Pipeline.Pool_auto
       & info [ "recon-pool" ] ~docv:"MODE"
         ~doc:"Reconstruction spine: $(b,on) (pool-native: one read arena, index-slice clusters,                arena-backed consensus), $(b,off) (boxed strand arrays), or $(b,auto). Consensus is                bit-identical either way.")

let sig_kind_arg =
  Arg.(value & opt (enum [ ("qgram", Clustering.Signature.Qgram); ("wgram", Clustering.Signature.Wgram) ])
         Clustering.Signature.Qgram
       & info [ "signature" ] ~docv:"KIND" ~doc:"Clustering signature: $(b,qgram) or $(b,wgram).")

(* encode *)

let encode_cmd =
  let input = Arg.(required & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Input file.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FASTA" ~doc:"Output FASTA of encoded strands.") in
  let run input output layout payload data_cols parity =
    let params = params_of ~payload ~data_cols ~parity in
    let data = read_binary input in
    let encoded = Codec.File_codec.encode ~layout ~params data in
    let records =
      Array.to_list
        (Array.mapi
           (fun i s -> { Dna.Fasta.id = Printf.sprintf "strand_%d" i; seq = s })
           encoded.Codec.File_codec.strands)
    in
    Dna.Fasta.write_file output records;
    write_meta (output ^ ".meta") ~params ~layout ~n_units:encoded.Codec.File_codec.n_units;
    Printf.printf "encoded %d bytes -> %d strands (%d units) in %s (+.meta)\n"
      (Bytes.length data) (Array.length encoded.Codec.File_codec.strands)
      encoded.Codec.File_codec.n_units output
  in
  Cmd.v (Cmd.info "encode" ~doc:"Encode a binary file into DNA strands.")
    Term.(const run $ input $ output $ layout_arg $ payload_arg $ data_cols_arg $ parity_arg)

(* simulate *)

let simulate_cmd =
  let strands = Arg.(required & opt (some file) None & info [ "strands"; "s" ] ~docv:"FASTA" ~doc:"Encoded strands.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output reads (.txt: one read per line; .fastq).") in
  let run strands output channel error_rate coverage seed =
    let rng = Dna.Rng.create seed in
    let records, errors = Dna.Fasta.read_file strands in
    if errors <> [] then Printf.eprintf "warning: %d malformed FASTA records skipped\n" (List.length errors);
    let pool = Array.of_list (List.map (fun r -> r.Dna.Fasta.seq) records) in
    let ch = make_channel channel error_rate in
    let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage) in
    let reads = Simulator.Sequencer.sequence sp ch rng pool in
    let seqs = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
    if Filename.check_suffix output ".fastq" then
      write_text output (Dnastore.Wetlab_io.export_fastq seqs)
    else
      write_text output
        (String.concat "\n" (Array.to_list (Array.map Dna.Strand.to_string seqs)) ^ "\n");
    Printf.printf "simulated %d reads (%s channel, rate %.3f, coverage %d) -> %s\n"
      (Array.length reads) (Simulator.Channel.name ch) error_rate coverage output
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate wetlab noise over encoded strands.")
    Term.(const run $ strands $ output $ channel_arg $ error_rate_arg $ coverage_arg $ seed_arg)

(* cluster *)

let cluster_cmd =
  let reads = Arg.(required & opt (some file) None & info [ "reads"; "r" ] ~docv:"FILE" ~doc:"Reads, one per line.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Clusters: reads grouped by blank lines.") in
  let run reads_path output kind seed domains =
    Dna.Par.set_default_domains domains;
    let rng = Dna.Rng.create seed in
    let reads =
      read_lines reads_path
      |> List.filter_map (fun l -> if String.trim l = "" then None else Dna.Strand.of_string_opt (String.trim l))
      |> Array.of_list
    in
    if Array.length reads = 0 then failwith "no reads";
    let read_len = Dna.Strand.length reads.(0) in
    let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
    let config = Clustering.Auto_config.configure params rng reads in
    let params = Clustering.Auto_config.apply config params in
    let result = Clustering.Cluster.run params rng reads in
    let buf = Buffer.create 4096 in
    List.iter
      (fun members ->
        Array.iter (fun i -> Buffer.add_string buf (Dna.Strand.to_string reads.(i)); Buffer.add_char buf '\n') members;
        Buffer.add_char buf '\n')
      result.Clustering.Cluster.clusters;
    write_text output (Buffer.contents buf);
    Printf.printf "clustered %d reads into %d clusters (theta=%d/%d, %d edit comparisons) -> %s\n"
      (Array.length reads) (List.length result.Clustering.Cluster.clusters)
      params.Clustering.Cluster.theta_low params.Clustering.Cluster.theta_high
      result.Clustering.Cluster.stats.Clustering.Cluster.edit_comparisons output
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.") in
  Cmd.v (Cmd.info "cluster" ~doc:"Cluster noisy reads by similarity.")
    Term.(const run $ reads $ output $ sig_kind_arg $ seed_arg $ domains)

(* reconstruct *)

let reconstruct_cmd =
  let clusters = Arg.(required & opt (some file) None & info [ "clusters"; "c" ] ~docv:"FILE" ~doc:"Clusters file (blank-line separated).") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FASTA" ~doc:"Consensus strands.") in
  let target = Arg.(required & opt (some int) None & info [ "length"; "l" ] ~docv:"NT" ~doc:"Expected strand length.") in
  let run clusters_path output target algo recon_backend domains =
    Dna.Par.set_default_domains domains;
    Dna.Alignment.set_default_backend recon_backend;
    let groups = ref [] and cur = ref [] in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" then begin
          if !cur <> [] then groups := Array.of_list (List.rev !cur) :: !groups;
          cur := []
        end
        else
          match Dna.Strand.of_string_opt line with
          | Some s -> cur := s :: !cur
          | None -> ())
      (read_lines clusters_path);
    if !cur <> [] then groups := Array.of_list (List.rev !cur) :: !groups;
    let groups = Array.of_list (List.rev !groups) in
    let recon = make_recon algo in
    let consensus =
      Dna.Par.map_array ~label:"cli.reconstruct" ~domains
        (fun reads -> if Array.length reads = 0 then None else Some (recon ~target_len:target reads))
        groups
    in
    let records =
      Array.to_list consensus |> List.filteri (fun _ c -> c <> None)
      |> List.mapi (fun i c -> { Dna.Fasta.id = Printf.sprintf "consensus_%d" i; seq = Option.get c })
    in
    Dna.Fasta.write_file output records;
    Printf.printf "reconstructed %d consensus strands -> %s\n" (List.length records) output
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.") in
  Cmd.v (Cmd.info "reconstruct" ~doc:"Reconstruct original strands from clusters.")
    Term.(const run $ clusters $ output $ target $ recon_arg $ recon_backend_arg $ domains)

(* decode *)

let decode_cmd =
  let consensus = Arg.(required & opt (some file) None & info [ "consensus"; "c" ] ~docv:"FASTA" ~doc:"Reconstructed strands.") in
  let meta = Arg.(required & opt (some file) None & info [ "meta"; "m" ] ~docv:"META" ~doc:"Metadata sidecar written by encode.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Recovered file.") in
  let run consensus meta output =
    let params, layout, n_units = read_meta meta in
    let records, _ = Dna.Fasta.read_file consensus in
    let strands = List.map (fun r -> r.Dna.Fasta.seq) records in
    match Codec.File_codec.decode ~layout ~params ~n_units strands with
    | Ok (bytes, stats) ->
        write_binary output bytes;
        let failed =
          Array.fold_left
            (fun a u -> a + List.length u.Codec.Matrix_codec.failed_codewords)
            0 stats.Codec.File_codec.units
        in
        Printf.printf "decoded %d bytes -> %s (failed codewords: %d, missing molecules: %d)\n"
          (Bytes.length bytes) output failed stats.Codec.File_codec.missing_strands
    | Error e ->
        Printf.eprintf "decode failed: %s\n" (Codec.File_codec.error_message e);
        exit 1
  in
  Cmd.v (Cmd.info "decode" ~doc:"Decode reconstructed strands back into the file.")
    Term.(const run $ consensus $ meta $ output)

(* pipeline *)

let pipeline_cmd =
  let input = Arg.(required & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Input file.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Recovered file.") in
  let run input output layout payload data_cols parity channel error_rate coverage algo kind
      recon_backend recon_pool seed domains =
    Dna.Par.set_default_domains domains;
    Dna.Alignment.set_default_backend recon_backend;
    let params = params_of ~payload ~data_cols ~parity in
    let rng = Dna.Rng.create seed in
    let stages =
      {
        Dnastore.Pipeline.channel = make_channel channel error_rate;
        sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage);
        cluster = Dnastore.Pipeline.cluster_default ~kind ~domains ();
        reconstruct = make_recon algo;
      }
    in
    let pooled =
      {
        Dnastore.Pipeline.cluster_pool = Dnastore.Pipeline.cluster_pool_default ~kind ~domains ();
        reconstruct_pool = make_recon_pool algo;
      }
    in
    let data = read_binary input in
    let out =
      Dnastore.Pipeline.run ~params ~layout ~stages ~pooled ~recon_pool ~domains rng data
    in
    (match out.Dnastore.Pipeline.file with
    | Some bytes -> write_binary output bytes
    | None -> ());
    let t = out.Dnastore.Pipeline.timings in
    Printf.printf
      "pipeline: %s (strands=%d reads=%d clusters=%d)\n\
       latency: encode=%.2fs simulate=%.2fs cluster=%.2fs reconstruct=%.2fs decode=%.2fs total=%.2fs\n"
      (if out.Dnastore.Pipeline.exact then "file recovered exactly"
       else "RECOVERY INCOMPLETE (bytes differ)")
      out.n_strands out.n_reads out.n_clusters t.Dnastore.Pipeline.encode_s t.simulate_s
      t.cluster_s t.reconstruct_s t.decode_s (Dnastore.Pipeline.total_s t);
    print_string
      (Dnastore.Report.recon_percentiles ~p50_s:t.Dnastore.Pipeline.reconstruct_p50_s
         ~p95_s:t.Dnastore.Pipeline.reconstruct_p95_s);
    print_string
      (Dnastore.Report.recon_alloc
         ~pooled:(recon_pool <> Dnastore.Pipeline.Pool_off)
         ~n_clusters:out.Dnastore.Pipeline.n_clusters
         ~words_per_cluster:out.Dnastore.Pipeline.reconstruct_words_per_cluster);
    if not out.Dnastore.Pipeline.exact then
      print_string (Dnastore.Report.recovery out.Dnastore.Pipeline.partial);
    (match Dna.Par.counters () with
    | [] -> ()
    | counters -> print_string (Dnastore.Report.par_counters counters));
    if not out.Dnastore.Pipeline.exact then exit 1
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.") in
  Cmd.v (Cmd.info "pipeline" ~doc:"Run the full encode-simulate-cluster-reconstruct-decode pipeline.")
    Term.(const run $ input $ output $ layout_arg $ payload_arg $ data_cols_arg $ parity_arg
          $ channel_arg $ error_rate_arg $ coverage_arg $ recon_arg $ sig_kind_arg
          $ recon_backend_arg $ recon_pool_arg $ seed_arg $ domains)

(* fountain-encode / fountain-decode *)

let write_fountain_meta path ~(params : Codec.Fountain.params) ~k ~file_bytes =
  write_text path
    (Printf.sprintf "chunk_bytes=%d\ninner_parity=%d\nc=%f\ndelta=%f\nscramble_seed=%d\nk=%d\nfile_bytes=%d\n"
       params.Codec.Fountain.chunk_bytes params.inner_parity params.c params.delta
       params.scramble_seed k file_bytes)

let read_fountain_meta path =
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line '=' with
        | Some i -> Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
        | None -> None)
      (read_lines path)
  in
  let get k = try List.assoc k kv with Not_found -> failwith ("meta: missing key " ^ k) in
  ( {
      Codec.Fountain.chunk_bytes = int_of_string (get "chunk_bytes");
      inner_parity = int_of_string (get "inner_parity");
      overhead = Codec.Fountain.default_params.Codec.Fountain.overhead;
      c = float_of_string (get "c");
      delta = float_of_string (get "delta");
      scramble_seed = int_of_string (get "scramble_seed");
    },
    int_of_string (get "k"),
    int_of_string (get "file_bytes") )

let fountain_encode_cmd =
  let input = Arg.(required & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Input file.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FASTA" ~doc:"Output droplets.") in
  let overhead = Arg.(value & opt float 0.6 & info [ "overhead" ] ~docv:"F" ~doc:"Droplet overhead factor.") in
  let run input output overhead seed =
    let rng = Dna.Rng.create seed in
    let params = { Codec.Fountain.default_params with Codec.Fountain.overhead } in
    let data = read_binary input in
    let enc = Codec.Fountain.encode ~params rng data in
    let records =
      Array.to_list
        (Array.mapi (fun i s -> { Dna.Fasta.id = Printf.sprintf "droplet_%d" i; seq = s })
           enc.Codec.Fountain.strands)
    in
    Dna.Fasta.write_file output records;
    write_fountain_meta (output ^ ".meta") ~params ~k:enc.Codec.Fountain.k
      ~file_bytes:enc.Codec.Fountain.file_bytes;
    Printf.printf "fountain: %d bytes -> %d droplets (k=%d chunks) in %s (+.meta)\n"
      (Bytes.length data) (Array.length enc.Codec.Fountain.strands) enc.Codec.Fountain.k output
  in
  Cmd.v (Cmd.info "fountain-encode" ~doc:"Encode a file into rateless fountain droplets.")
    Term.(const run $ input $ output $ overhead $ seed_arg)

let fountain_decode_cmd =
  let consensus = Arg.(required & opt (some file) None & info [ "consensus"; "c" ] ~docv:"FASTA" ~doc:"Reconstructed droplets.") in
  let meta = Arg.(required & opt (some file) None & info [ "meta"; "m" ] ~docv:"META" ~doc:"Metadata sidecar.") in
  let output = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Recovered file.") in
  let run consensus meta output =
    let params, k, file_bytes = read_fountain_meta meta in
    let records, _ = Dna.Fasta.read_file consensus in
    let strands = List.map (fun r -> r.Dna.Fasta.seq) records in
    match Codec.Fountain.decode ~params ~k ~file_bytes strands with
    | Ok (bytes, stats) ->
        write_binary output bytes;
        Printf.printf "decoded %d bytes from %d droplets (%d rejected) -> %s\n"
          (Bytes.length bytes) stats.Codec.Fountain.droplets_used stats.droplets_bad output
    | Error e ->
        Printf.eprintf "decode failed: %s\n" e;
        exit 1
  in
  Cmd.v (Cmd.info "fountain-decode" ~doc:"Decode fountain droplets back into the file.")
    Term.(const run $ consensus $ meta $ output)

(* faults: run the named fault-scenario matrix and print a recovery
   report. The graceful-degradation contract under test: the pipeline
   never raises, reports what fraction of the file survived, and every
   scenario replays bit-identically from its seed. *)

let faults_cmd =
  let input =
    Arg.(value & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE"
         ~doc:"File to push through the faulty pipeline (default: a deterministic pseudo-random payload).")
  in
  let bytes_arg =
    Arg.(value & opt int 2000 & info [ "bytes" ] ~docv:"N"
         ~doc:"Size of the generated payload when no $(b,--input) is given.")
  in
  let scenario_arg =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
         ~doc:"Run only this scenario (default: the whole matrix). Use $(b,--list) to see names.")
  in
  let seeds_arg =
    Arg.(value & opt string "1,2" & info [ "seeds" ] ~docv:"CSV"
         ~doc:"Comma-separated replay seeds; each scenario runs once per seed.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenario matrix and exit.")
  in
  let run input bytes scenario_name seeds_csv list_only recon_pool domains =
    Dna.Par.set_default_domains domains;
    if list_only then begin
      print_string
        (Dnastore.Report.table
           ([ "scenario"; "faults"; "min recovered" ]
           :: List.map
                (fun s ->
                  [
                    s.Dnastore.Faults.scenario_name;
                    (match s.Dnastore.Faults.scenario_faults with
                    | [] -> "(none)"
                    | fs -> String.concat " " (List.map Dnastore.Faults.fault_name fs));
                    Printf.sprintf "%.2f" s.Dnastore.Faults.min_recovered;
                  ])
                Dnastore.Faults.scenarios))
    end
    else begin
      let data =
        match input with
        | Some path -> read_binary path
        | None ->
            let r = Dna.Rng.create 0xF11E in
            Bytes.init bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
      in
      let seeds =
        String.split_on_char ',' seeds_csv
        |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
      in
      if seeds = [] then failwith "faults: no valid seeds";
      let scenarios =
        match scenario_name with
        | None -> Dnastore.Faults.scenarios
        | Some name -> (
            match Dnastore.Faults.find_scenario name with
            | Some s -> [ s ]
            | None -> failwith ("faults: unknown scenario " ^ name))
      in
      let violations = ref [] in
      let run_one scenario seed =
        let go () =
          let rng = Dna.Rng.create seed in
          Dnastore.Pipeline.run ~recon_pool
            ~faults:(Dnastore.Faults.plan_of_scenario ~seed scenario)
            rng data
        in
        let out = go () in
        (* Replay: the same pipeline and fault seeds must reproduce the
           outcome bit-identically. *)
        let out' = go () in
        let same_bytes =
          match (out.Dnastore.Pipeline.file, out'.Dnastore.Pipeline.file) with
          | Some a, Some b -> Bytes.equal a b
          | None, None -> true
          | _ -> false
        in
        let replay_ok =
          same_bytes
          && out.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction
             = out'.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction
        in
        let fraction = out.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction in
        if fraction < scenario.Dnastore.Faults.min_recovered then
          violations :=
            Printf.sprintf "%s seed %d: recovered %.4f < floor %.2f"
              scenario.Dnastore.Faults.scenario_name seed fraction
              scenario.Dnastore.Faults.min_recovered
            :: !violations;
        if not replay_ok then
          violations :=
            Printf.sprintf "%s seed %d: replay diverged" scenario.Dnastore.Faults.scenario_name seed
            :: !violations;
        (out, fraction, replay_ok)
      in
      let rows = ref [] in
      List.iter
        (fun scenario ->
          List.iter
            (fun seed ->
              let out, fraction, replay_ok = run_one scenario seed in
              let r, d, l =
                Array.fold_left
                  (fun (r, d, l) s ->
                    match s with
                    | Codec.File_codec.Recovered -> (r + 1, d, l)
                    | Codec.File_codec.Degraded _ -> (r, d + 1, l)
                    | Codec.File_codec.Lost -> (r, d, l + 1))
                  (0, 0, 0)
                  out.Dnastore.Pipeline.partial.Codec.File_codec.unit_status
              in
              rows :=
                [
                  scenario.Dnastore.Faults.scenario_name;
                  string_of_int seed;
                  (if out.Dnastore.Pipeline.exact then "exact"
                   else if out.Dnastore.Pipeline.file <> None then "partial"
                   else "failed");
                  Printf.sprintf "%.4f" fraction;
                  Printf.sprintf "%d/%d/%d" r d l;
                  (if replay_ok then "ok" else "DIVERGED");
                  (match out.Dnastore.Pipeline.stage_failures with
                  | [] -> "-"
                  | fs ->
                      String.concat ";"
                        (List.map (fun (s, _) -> Dnastore.Faults.stage_name s) fs));
                ]
                :: !rows)
            seeds)
        scenarios;
      print_string
        (Dnastore.Report.table
           ([ "scenario"; "seed"; "outcome"; "recovered"; "units R/D/L"; "replay"; "degraded stages" ]
           :: List.rev !rows));
      match !violations with
      | [] -> Printf.printf "\nfault matrix clean: %d scenario runs, no contract violations\n"
                (List.length scenarios * List.length seeds)
      | vs ->
          Printf.eprintf "\n%d contract violation(s):\n" (List.length vs);
          List.iter (fun v -> Printf.eprintf "  %s\n" v) (List.rev vs);
          exit 1
    end
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.") in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run the fault-injection scenario matrix and print a recovery report.")
    Term.(const run $ input $ bytes_arg $ scenario_arg $ seeds_arg $ list_arg $ recon_pool_arg $ domains)

(* scenario: the declarative channel-stack engine. list/describe browse
   the builtin registry; run executes one (scenario, fault) cell per
   seed and double-checks bit-identical replay; sweep runs the scenario
   x fault-plan matrix and asserts every recovered-fraction floor. *)

let scenario_cmd =
  let action =
    Arg.(
      required
      & pos 0
          (some (enum [ ("list", `List); ("describe", `Describe); ("run", `Run); ("sweep", `Sweep) ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(b,list) the builtin scenarios, $(b,describe) one as JSON, $(b,run) one \
             scenario/fault cell per seed (with a replay check), or $(b,sweep) the scenario x \
             fault matrix against its floors.")
  in
  let name_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"NAME"
         ~doc:"Builtin scenario name (see $(b,list)).")
  in
  let file_arg =
    Arg.(value & opt (some file) None & info [ "file" ] ~docv:"JSON"
         ~doc:"Load the scenario from a JSON description instead of the builtin registry.")
  in
  let fault_arg =
    Arg.(value & opt string "clean" & info [ "fault" ] ~docv:"NAME"
         ~doc:"Fault plan for $(b,run) (a name from $(b,dnastore faults --list)).")
  in
  let faults_arg =
    Arg.(value & opt string "clean,dropout-10,corruption-2" & info [ "faults" ] ~docv:"CSV"
         ~doc:"Fault plans for $(b,sweep).")
  in
  let seeds_arg =
    Arg.(value & opt string "1,2" & info [ "seeds" ] ~docv:"CSV"
         ~doc:"Replay seeds; every cell runs once per seed.")
  in
  let bytes_arg =
    Arg.(value & opt int 2000 & info [ "bytes" ] ~docv:"N"
         ~doc:"Size of the generated payload when no $(b,--input) is given.")
  in
  let input_arg =
    Arg.(value & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE"
         ~doc:"File to push through the stack (default: a deterministic pseudo-random payload).")
  in
  let trace_arg =
    Arg.(value & opt (some file) None & info [ "trace" ] ~docv:"FASTQ"
         ~doc:"Trace for $(b,trace) stages (default: a deterministic synthetic trace).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"JSON"
         ~doc:"Also write the outcome cells as JSON.")
  in
  let run action name file fault faults_csv seeds_csv bytes input trace out domains =
    Dna.Par.set_default_domains domains;
    let csv s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
    let seeds = List.filter_map int_of_string_opt (csv seeds_csv) in
    if seeds = [] then failwith "scenario: no valid seeds";
    let load_file path =
      match Simulator.Scenario.of_string (Bytes.to_string (read_binary path)) with
      | Ok sc -> sc
      | Error e -> failwith ("scenario: " ^ path ^ ": " ^ e)
    in
    let resolve name =
      match (file, name) with
      | Some path, _ -> load_file path
      | None, Some n -> (
          match Simulator.Scenario.find n with
          | Some sc -> sc
          | None -> failwith ("scenario: unknown scenario " ^ n))
      | None, None -> failwith "scenario: give a NAME or --file"
    in
    (* Trace stages need a FASTQ on disk; when none is supplied,
       synthesize a deterministic stand-in so every run still replays. *)
    let with_trace sc =
      if not (Simulator.Scenario.has_trace sc) then sc
      else
        let path =
          match trace with
          | Some p -> p
          | None ->
              let p = Filename.temp_file "dnastore_trace" ".fastq" in
              Simulator.Trace_channel.write_synthetic ~seed:77 p;
              p
        in
        Simulator.Scenario.with_trace_path sc path
    in
    let data () =
      match input with
      | Some path -> read_binary path
      | None ->
          let r = Dna.Rng.create 0xF11E in
          Bytes.init bytes (fun _ -> Char.chr (Dna.Rng.int r 256))
    in
    let finish outcomes violations =
      print_string (Dnastore.Report.scenario_summary outcomes);
      (match out with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc (Store_json.to_string (Dnastore.Scenario_run.outcomes_json outcomes));
          close_out oc;
          Printf.printf "wrote %s\n" path);
      match violations with
      | [] -> ()
      | vs ->
          Printf.eprintf "\n%d scenario violation(s):\n" (List.length vs);
          List.iter (fun v -> Printf.eprintf "  %s\n" v) (List.rev vs);
          exit 1
    in
    match action with
    | `List ->
        print_string
          (Dnastore.Report.table
             ([ "scenario"; "stack"; "floors" ]
             :: List.map
                  (fun sc ->
                    [
                      sc.Simulator.Scenario.name;
                      Simulator.Scenario.summary sc;
                      String.concat " "
                        (List.map
                           (fun (f, m) -> Printf.sprintf "%s>=%.2f" f m)
                           sc.Simulator.Scenario.floors);
                    ])
                  Simulator.Scenario.builtins))
    | `Describe ->
        let sc = resolve name in
        Printf.printf "%s: %s\n%s\n\n%s" sc.Simulator.Scenario.name
          sc.Simulator.Scenario.description
          (Simulator.Scenario.summary sc)
          (Simulator.Scenario.to_string sc)
    | `Run ->
        let sc = with_trace (resolve name) in
        let data = data () in
        let violations = ref [] in
        let outcomes =
          List.map
            (fun seed ->
              let go () =
                match Dnastore.Scenario_run.run_full ~fault ~seed ~data sc with
                | Ok r -> r
                | Error e -> failwith ("scenario: " ^ e)
              in
              let o, pipe = go () in
              let _, pipe' = go () in
              (match pipe.Dnastore.Pipeline.decode_error with
              | Some e -> Printf.eprintf "%s seed %d: decode error: %s\n" sc.Simulator.Scenario.name seed e
              | None -> ());
              (match pipe.Dnastore.Pipeline.stage_failures with
              | [] -> ()
              | fs ->
                  Printf.eprintf "%s seed %d: degraded stages: %s\n" sc.Simulator.Scenario.name seed
                    (String.concat ", "
                       (List.map
                          (fun (s, m) -> Dnastore.Faults.stage_name s ^ " (" ^ m ^ ")")
                          fs)));
              (* The replay contract: same (scenario, fault, seed, data)
                 must reproduce the recovered bytes bit-identically. *)
              let same =
                (match (pipe.Dnastore.Pipeline.file, pipe'.Dnastore.Pipeline.file) with
                | Some a, Some b -> Bytes.equal a b
                | None, None -> true
                | _ -> false)
                && pipe.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction
                   = pipe'.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction
              in
              if not same then
                violations :=
                  Printf.sprintf "%s/%s seed %d: replay diverged" o.Dnastore.Scenario_run.scenario
                    fault seed
                  :: !violations;
              if not o.Dnastore.Scenario_run.passed then
                violations :=
                  Printf.sprintf "%s/%s seed %d: recovered %.4f below floor"
                    o.Dnastore.Scenario_run.scenario fault seed
                    o.Dnastore.Scenario_run.recovered_fraction
                  :: !violations;
              o)
            seeds
        in
        finish outcomes !violations
    | `Sweep ->
        let scenarios =
          match (file, name) with
          | None, None -> List.map with_trace Simulator.Scenario.builtins
          | _ -> [ with_trace (resolve name) ]
        in
        let data = data () in
        let outcomes =
          match
            Dnastore.Scenario_run.sweep ~faults:(csv faults_csv) ~seeds ~data scenarios
          with
          | Ok os -> os
          | Error e -> failwith ("scenario: " ^ e)
        in
        let violations =
          List.map
            (fun (o : Dnastore.Scenario_run.outcome) ->
              Printf.sprintf "%s/%s seed %d: recovered %.4f below floor %.2f"
                o.Dnastore.Scenario_run.scenario o.Dnastore.Scenario_run.fault
                o.Dnastore.Scenario_run.seed o.Dnastore.Scenario_run.recovered_fraction
                (match o.Dnastore.Scenario_run.floor with Some f -> f | None -> 0.0))
            (Dnastore.Scenario_run.failures outcomes)
        in
        finish outcomes violations
  in
  let domains = Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains.") in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Compose and run declarative channel-stack scenarios against fault plans.")
    Term.(
      const run $ action $ name_arg $ file_arg $ fault_arg $ faults_arg $ seeds_arg $ bytes_arg
      $ input_arg $ trace_arg $ out_arg $ domains)

(* inspect: pool statistics a lab would sanity-check before synthesis *)

let inspect_cmd =
  let input = Arg.(required & opt (some file) None & info [ "input"; "i" ] ~docv:"FASTA" ~doc:"Strand pool.") in
  let run input =
    let records, errors = Dna.Fasta.read_file input in
    let strands = List.map (fun r -> r.Dna.Fasta.seq) records in
    let n = List.length strands in
    if n = 0 then failwith "no strands";
    let lengths = List.map Dna.Strand.length strands in
    let gcs = List.map Dna.Strand.gc_content strands in
    let homos = List.map Dna.Strand.max_homopolymer strands in
    let favg l = List.fold_left ( +. ) 0.0 l /. float_of_int n in
    let iavg l = float_of_int (List.fold_left ( + ) 0 l) /. float_of_int n in
    let imin l = List.fold_left min max_int l and imax l = List.fold_left max 0 l in
    Printf.printf "strands: %d (%d malformed records skipped)\n" n (List.length errors);
    Printf.printf "length:  min %d / avg %.1f / max %d nt\n" (imin lengths) (iavg lengths) (imax lengths);
    Printf.printf "GC:      avg %.3f (synthesis-friendly range is 0.4-0.6)\n" (favg gcs);
    Printf.printf "homopolymers: avg max-run %.1f, worst %d\n" (iavg homos) (imax homos);
    let worst = List.filter (fun h -> h > 6) homos in
    if worst <> [] then
      Printf.printf "warning: %d strands carry runs longer than 6 nt\n" (List.length worst)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Sanity-check a strand pool before synthesis.")
    Term.(const run $ input)

(* store: the persistent sharded object store *)

let store_cmd =
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Store directory.")
  in
  let key_arg =
    Arg.(required & opt (some string) None & info [ "key"; "k" ] ~docv:"KEY" ~doc:"Object key.")
  in
  let die e =
    Printf.eprintf "%s\n" (Store.error_message e);
    exit 1
  in
  let or_die = function Ok v -> v | Error e -> die e in
  let opened dir = or_die (Store.open_store ~dir ()) in
  let init_cmd =
    let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Store rng seed.") in
    let shard_target =
      Arg.(
        value
        & opt int Store.default_config.shard_target_strands
        & info [ "shard-target" ] ~docv:"N" ~doc:"Strands per shard before a new one opens.")
    in
    let cache =
      Arg.(
        value
        & opt int Store.default_config.cache_objects
        & info [ "cache" ] ~docv:"N" ~doc:"Decoded-object LRU capacity.")
    in
    let error_rate =
      Arg.(
        value
        & opt float Store.default_config.error_rate
        & info [ "error-rate" ] ~docv:"RATE" ~doc:"Sequencing channel error rate.")
    in
    let coverage =
      Arg.(
        value
        & opt int Store.default_config.coverage
        & info [ "coverage" ] ~docv:"N" ~doc:"Base sequencing depth per access.")
    in
    let run dir seed shard_target_strands cache_objects error_rate coverage =
      let config = { Store.shard_target_strands; cache_objects; error_rate; coverage } in
      let _store = or_die (Store.init ~config ~dir ~seed ()) in
      Printf.printf "initialized store in %s (seed %d)\n" dir seed
    in
    Cmd.v (Cmd.info "init" ~doc:"Create an empty store directory.")
      Term.(const run $ dir_arg $ seed $ shard_target $ cache $ error_rate $ coverage)
  in
  let put_cmd =
    let input =
      Arg.(required & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Payload file.")
    in
    let overwrite_flag =
      Arg.(value & flag & info [ "overwrite" ] ~doc:"Replace the key if it already exists.")
    in
    let run dir key input overwrite =
      let store = opened dir in
      let data = read_binary input in
      (match
         if overwrite && Store.mem store key then Store.overwrite store ~key data
         else Store.put store ~key data
       with
      | Ok () -> ()
      | Error e -> die e);
      Printf.printf "stored %s (%d bytes)\n" key (Bytes.length data)
    in
    Cmd.v (Cmd.info "put" ~doc:"Encode a file and store it under a fresh primer pair.")
      Term.(const run $ dir_arg $ key_arg $ input $ overwrite_flag)
  in
  let get_cmd =
    let output =
      Arg.(
        required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")
    in
    let domains =
      Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for decoding.")
    in
    let degraded =
      Arg.(
        value & flag
        & info [ "degraded" ]
            ~doc:
              "Serve whatever survives when the object's shard is damaged or scrub marked it \
               degraded, instead of failing. Exit 2 signals a partial (non-exact) read.")
    in
    let run dir key output domains recon_backend recon_pool degraded =
      let store = opened dir in
      let recon_pool = recon_pool <> Dnastore.Pipeline.Pool_off in
      if degraded then begin
        let p = or_die (Store.get_partial store ~key) in
        write_binary output p.Store.bytes;
        if p.Store.exact then
          Printf.printf "recovered %s (%d bytes, exact)\n" key (Bytes.length p.Store.bytes)
        else begin
          Printf.printf "degraded read of %s: %.1f%% of %d bytes recovered (%s)\n" key
            (100.0 *. p.Store.recovered_fraction)
            (Bytes.length p.Store.bytes)
            (match p.Store.recovered_ranges with
            | [] -> "no intact ranges"
            | rs -> String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) rs));
          exit 2
        end
      end
      else
        match Store.get_batch ~domains ~recon_backend ~recon_pool store [ key ] with
        | [ (_, Ok bytes) ] ->
            write_binary output bytes;
            Printf.printf "recovered %s (%d bytes)\n" key (Bytes.length bytes)
        | [ (_, Error e) ] -> die e
        | _ -> assert false
    in
    Cmd.v (Cmd.info "get" ~doc:"Sequence, reconstruct and decode one object.")
      Term.(const run $ dir_arg $ key_arg $ output $ domains $ recon_backend_arg $ recon_pool_arg $ degraded)
  in
  let rm_cmd =
    let run dir key =
      let store = opened dir in
      (match Store.delete store ~key with Ok () -> () | Error e -> die e);
      Printf.printf "deleted %s (molecules reclaimed on the next compact)\n" key
    in
    Cmd.v (Cmd.info "rm" ~doc:"Delete an object and retire its primer pair.")
      Term.(const run $ dir_arg $ key_arg)
  in
  let compact_cmd =
    let run dir =
      let store = opened dir in
      let s = or_die (Store.compact store) in
      Printf.printf "rewrote %d objects: %d -> %d strands, %d -> %d shards, %d primer pairs reclaimed\n"
        s.Store.objects_rewritten s.strands_before s.strands_after s.shards_before s.shards_after
        s.primer_pairs_reclaimed;
      if s.Store.objects_dropped > 0 then
        Printf.printf "dropped %d lost object(s) from the directory\n" s.Store.objects_dropped;
      print_string
        (Dnastore.Report.maintenance_counters ~unlink_failures:s.Store.unlink_failures
           ~orphans_reclaimed:0)
    in
    Cmd.v
      (Cmd.info "compact" ~doc:"Re-synthesize live objects into fresh shards and reclaim primers.")
      Term.(const run $ dir_arg)
  in
  let stats_cmd =
    let run dir =
      let store = opened dir in
      print_string (Store.render_stats store);
      let s = Store.stats store in
      print_string
        (Dnastore.Report.maintenance_counters ~unlink_failures:0
           ~orphans_reclaimed:s.Store.orphans_reclaimed)
    in
    Cmd.v (Cmd.info "stats" ~doc:"Print shard, object, primer and cache statistics.")
      Term.(const run $ dir_arg)
  in
  let scrub_cmd =
    let run dir =
      let store = opened dir in
      let r = or_die (Store.scrub store) in
      print_string
        (Dnastore.Report.scrub_summary ~shards_checked:r.Store.shards_checked
           ~shards_corrupt:r.Store.shards_corrupt ~shards_quarantined:r.Store.shards_quarantined
           ~shards_dropped:r.Store.shards_dropped ~objects_checked:r.Store.objects_checked
           ~objects_repaired:r.Store.objects_repaired ~objects_degraded:r.Store.objects_degraded
           ~objects_lost:r.Store.objects_lost ~checksums_backfilled:r.Store.checksums_backfilled);
      if r.Store.objects_degraded > 0 || r.Store.objects_lost > 0 then exit 2
    in
    Cmd.v
      (Cmd.info "scrub"
         ~doc:
           "Verify every shard checksum and self-repair damaged objects. Exit 2 when damage \
            survives the pass (degraded or lost objects).")
      Term.(const run $ dir_arg)
  in
  let corrupt_cmd =
    let mode =
      Arg.(
        value
        & opt (enum [ ("flip", `Flip); ("truncate", `Truncate); ("garbage", `Garbage) ]) `Flip
        & info [ "mode" ] ~docv:"MODE"
            ~doc:
              "Damage to inject: $(b,flip) rewrites bases inside one molecule, $(b,truncate) \
               drops the tail of the shard file, $(b,garbage) replaces it with non-FASTA bytes.")
    in
    let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Injection rng seed.") in
    let run dir key mode seed =
      let store = opened dir in
      let shard =
        match Store.object_shard store ~key with
        | Some s -> s
        | None -> die (Store.Key_not_found key)
      in
      let path =
        match Store.shard_path store ~shard with
        | Some p -> p
        | None -> die (Store.Corrupt (Printf.sprintf "shard %d has no file" shard))
      in
      let content =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let rng = Dna.Rng.create seed in
      let damaged =
        match mode with
        | `Flip ->
            (* Rewrite a run of bases in the middle of the file, skewing
               the pool without changing its length or framing. *)
            let b = Bytes.of_string content in
            let len = Bytes.length b in
            let flips = ref 0 in
            while !flips < 8 do
              let i = Dna.Rng.int rng len in
              (match Bytes.get b i with
              | 'A' -> Bytes.set b i 'C'
              | 'C' -> Bytes.set b i 'G'
              | 'G' -> Bytes.set b i 'T'
              | 'T' -> Bytes.set b i 'A'
              | _ -> decr flips);
              incr flips
            done;
            Bytes.to_string b
        | `Truncate -> String.sub content 0 (String.length content / 2)
        | `Garbage -> "not a FASTA file\n"
      in
      let oc = open_out_bin path in
      output_string oc damaged;
      close_out oc;
      Printf.printf "corrupted shard %d (%s) under key %s\n" shard path key
    in
    Cmd.v
      (Cmd.info "corrupt"
         ~doc:
           "Deterministically damage the shard holding a key (test tool for the scrub/degraded \
            read path).")
      Term.(const run $ dir_arg $ key_arg $ mode $ seed)
  in
  let crash_matrix_cmd =
    let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
    let scratch =
      Arg.(
        value
        & opt string "/tmp/dnastore-crash-matrix"
        & info [ "scratch" ] ~docv:"DIR" ~doc:"Scratch directory (deleted and recreated per run).")
    in
    let run seed scratch =
      let outcome = Crash_harness.run ~seed ~dir:scratch () in
      print_string (Crash_harness.render outcome);
      if outcome.Crash_harness.failures <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "crash-matrix"
         ~doc:
           "Sweep a simulated kill across every filesystem fault point of a scripted workload \
            and verify that reopening recovers a consistent prefix. Exit 1 on any violation.")
      Term.(const run $ seed $ scratch)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Persistent sharded DNA object store with rewritable random access.")
    [
      init_cmd; put_cmd; get_cmd; rm_cmd; compact_cmd; stats_cmd; scrub_cmd; corrupt_cmd;
      crash_matrix_cmd;
    ]

(* serve: drive a multi-client workload through the serving layer *)

let serve_cmd =
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Store directory.")
  in
  let populate =
    Arg.(
      value & opt int 0
      & info [ "populate" ] ~docv:"N"
          ~doc:"Initialize the directory as a fresh store and put N objects before serving.")
  in
  let ops = Arg.(value & opt int 60 & info [ "ops" ] ~docv:"N" ~doc:"Operations to drive.") in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let read_pct =
    Arg.(
      value & opt float 0.95
      & info [ "read-pct" ] ~docv:"FRAC" ~doc:"Fraction of operations that are gets.")
  in
  let window =
    Arg.(
      value
      & opt int Serve.default_config.Serve.window
      & info [ "window" ] ~docv:"N" ~doc:"Scheduling window: max requests served per round.")
  in
  let max_queue =
    Arg.(
      value
      & opt int Serve.default_config.Serve.max_queue
      & info [ "max-queue" ] ~docv:"N" ~doc:"Admission bound before requests are rejected.")
  in
  let zipf =
    Arg.(value & opt float 0.99 & info [ "zipf" ] ~docv:"S" ~doc:"Zipf skew of key popularity.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.") in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for batched gets.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request queueing deadline; requests waiting longer are answered timed-out.")
  in
  let degraded_reads =
    Arg.(
      value & flag
      & info [ "degraded-reads" ]
          ~doc:"Answer damaged gets with the surviving bytes instead of an error.")
  in
  let run dir populate ops clients read_pct window max_queue zipf seed domains deadline_s
      degraded_reads recon_pool =
    let die e =
      Printf.eprintf "%s\n" (Store.error_message e);
      exit 1
    in
    let or_die = function Ok v -> v | Error e -> die e in
    let store =
      if populate > 0 then begin
        let store = or_die (Store.init ~dir ~seed ()) in
        let r = Dna.Rng.create (seed * 31) in
        for i = 0 to populate - 1 do
          let data = Bytes.init 120 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
          or_die (Store.put store ~key:(Printf.sprintf "obj%d" i) data)
        done;
        store
      end
      else or_die (Store.open_store ~dir ())
    in
    let keys = Store.keys store in
    if keys = [] then failwith "serve: store has no objects (use --populate)";
    let config =
      {
        Serve.default_config with
        Serve.window;
        Serve.max_queue;
        Serve.domains;
        Serve.deadline_s;
        Serve.degraded_reads;
        Serve.recon_pool = recon_pool <> Dnastore.Pipeline.Pool_off;
      }
    in
    let mix = { Serve.Workload.label = Printf.sprintf "read%.0f" (100.0 *. read_pct); Serve.Workload.read_pct } in
    let summary, _ =
      Serve.Workload.run ~config ~mix ~n_clients:clients ~n_ops:ops ~zipf_s:zipf ~seed ~keys store
    in
    print_string (Serve.Workload.render summary);
    print_string
      (Dnastore.Report.cache_counters ~label:"store" ~hits:summary.Serve.Workload.cache_hits
         ~misses:summary.Serve.Workload.cache_misses)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a multi-client zipfian put/get/overwrite workload through the scheduler.")
    Term.(
      const run $ dir_arg $ populate $ ops $ clients $ read_pct $ window $ max_queue $ zipf $ seed
      $ domains $ deadline $ degraded_reads $ recon_pool_arg)

let main =
  let doc = "modular end-to-end DNA data storage codec and simulator" in
  Cmd.group (Cmd.info "dnastore" ~version:"1.0.0" ~doc)
    [
      encode_cmd; simulate_cmd; cluster_cmd; reconstruct_cmd; decode_cmd; pipeline_cmd;
      fountain_encode_cmd; fountain_decode_cmd; inspect_cmd; faults_cmd; scenario_cmd; store_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval main)
