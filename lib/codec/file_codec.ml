(** File-level encoding and decoding (Section IV).

    A file is scrambled (unconstrained coding, Section II-D), prefixed
    with an 8-byte length header, chunked into encoding units, and each
    unit is matrix-encoded. Decoding groups reconstructed strands by
    unit, decodes every unit (missing molecules become erasures), then
    unscrambles and trims to the recorded length. *)

type encoded = {
  params : Params.t;
  layout : Layout.t;
  strands : Dna.Strand.t array;  (** index + payload, no primers *)
  n_units : int;
}

type decode_stats = {
  units : Matrix_codec.unit_stats array;
  missing_strands : int;  (** expected molecules never seen *)
  unparsable_strands : int;  (** wrong length / bad index checksum *)
}

(* The 8-byte length header is stored three times, one copy per matrix
   *column* (data fills column-major, so copy c goes at offset c*rows):
   a misreconstructed molecule or a failed codeword can corrupt one copy,
   and the per-byte majority vote recovers from the other two. Requires
   rows >= 8 (payload of at least 32 bases). *)
let header_copies = 3

let header_span ~rows =
  if rows < 8 then invalid_arg "File_codec: payload too short for the length header";
  header_copies * rows

let with_header ~rows data =
  let span = header_span ~rows in
  let n = Bytes.length data in
  let out = Bytes.make (span + n) '\000' in
  for c = 0 to header_copies - 1 do
    for i = 0 to 7 do
      Bytes.set out ((c * rows) + i) (Char.chr ((n lsr (8 * i)) land 0xff))
    done
  done;
  Bytes.blit data 0 out span n;
  out

let read_header ~rows data =
  let span = header_span ~rows in
  if Bytes.length data < span then None
  else begin
    let byte i =
      (* majority of the three copies; ties fall back to copy 0 *)
      let a = Char.code (Bytes.get data i)
      and b = Char.code (Bytes.get data (rows + i))
      and c = Char.code (Bytes.get data ((2 * rows) + i)) in
      if a = b || a = c then a else if b = c then b else a
    in
    let n = ref 0 in
    for i = 7 downto 0 do
      n := (!n lsl 8) lor byte i
    done;
    if !n < 0 || !n > Bytes.length data - span then None
    else Some (Bytes.sub data span !n)
  end

let encode ?(layout = Layout.Baseline) ?(params = Params.default) (file : Bytes.t) : encoded =
  Params.validate params;
  let unit_bytes = Params.unit_data_bytes params in
  let headered = with_header ~rows:(Params.rows params) file in
  let n_units = (Bytes.length headered + unit_bytes - 1) / unit_bytes in
  (* Pad to whole units *before* scrambling: otherwise the zero padding
     would come out as identical all-A molecules that no clustering
     algorithm could tell apart. *)
  let padded = Bytes.make (n_units * unit_bytes) '\000' in
  Bytes.blit headered 0 padded 0 (Bytes.length headered);
  let payload = Dna.Randomizer.scramble ~seed:params.Params.scramble_seed padded in
  if n_units > Index.max_unit + 1 then invalid_arg "File_codec.encode: file too large";
  let strands = ref [] in
  for u = n_units - 1 downto 0 do
    let chunk = Bytes.sub payload (u * unit_bytes) unit_bytes in
    let unit_strands = Matrix_codec.encode_unit params ~layout ~unit_id:u chunk in
    strands := Array.to_list unit_strands @ !strands
  done;
  { params; layout; strands = Array.of_list !strands; n_units }

type error =
  | Invalid_params of string
  | Corrupt_header
      (** all three header copies disagree or record an impossible
          length: the file boundary cannot be recovered *)

let error_message = function
  | Invalid_params msg -> "File_codec.decode: " ^ msg
  | Corrupt_header -> "File_codec.decode: corrupted length header"

(* Decode from reconstructed strands. Strands may arrive in any order,
   with duplicates (the first parsed copy of a column wins), with
   corrupted indices, truncated, or entirely missing. Never raises: a
   unit whose decode call is malformed is treated as wholly lost, and
   every malformed input surfaces as [Error] or per-unit stats. *)
let decode ?(layout = Layout.Baseline) ?(params = Params.default) ~n_units
    (strands : Dna.Strand.t list) : (Bytes.t * decode_stats, error) result =
  match Params.validate params with
  | exception Invalid_argument msg -> Error (Invalid_params msg)
  | () ->
  if n_units < 0 || n_units > Index.max_unit + 1 then
    Error (Invalid_params (Printf.sprintf "n_units %d out of range" n_units))
  else if Params.rows params < 8 then
    Error (Invalid_params "payload too short for the length header")
  else begin
  let rows = Params.rows params in
  let cols = Params.columns params in
  let unit_columns = Array.init n_units (fun _ -> Array.make cols None) in
  let unparsable = ref 0 in
  List.iter
    (fun s ->
      match Matrix_codec.parse_strand params s with
      | Some (idx, payload)
        when idx.Index.unit_id < n_units && idx.Index.column < cols ->
          if unit_columns.(idx.Index.unit_id).(idx.Index.column) = None then
            unit_columns.(idx.Index.unit_id).(idx.Index.column) <- Some payload
      | Some _ | None -> incr unparsable)
    strands;
  let missing = ref 0 in
  Array.iter
    (fun columns -> Array.iter (fun c -> if c = None then incr missing) columns)
    unit_columns;
  let all_failed =
    (* A unit that could not be decoded at all: every codeword counts as
       failed, every column as erased. *)
    {
      Matrix_codec.failed_codewords = List.init rows Fun.id;
      corrected_bytes = 0;
      erased_columns = List.init cols Fun.id;
    }
  in
  let stats_acc =
    Array.make n_units { Matrix_codec.failed_codewords = []; corrected_bytes = 0; erased_columns = [] }
  in
  let buf = Buffer.create (n_units * Params.unit_data_bytes params) in
  Array.iteri
    (fun u columns ->
      match Matrix_codec.decode_unit params ~layout columns with
      | Ok (data, stats) ->
          stats_acc.(u) <- stats;
          Buffer.add_bytes buf data
      | Error _ ->
          stats_acc.(u) <- all_failed;
          Buffer.add_bytes buf (Bytes.make (Params.unit_data_bytes params) '\000'))
    unit_columns;
  let payload =
    Dna.Randomizer.unscramble ~seed:params.Params.scramble_seed (Buffer.to_bytes buf)
  in
  match read_header ~rows payload with
  | Some file ->
      Ok
        ( file,
          { units = stats_acc; missing_strands = !missing; unparsable_strands = !unparsable } )
  | None -> Error Corrupt_header
  end

(* Total decode failure indicator: any unit with failed codewords. *)
let fully_recovered stats =
  Array.for_all (fun u -> u.Matrix_codec.failed_codewords = []) stats.units

(* ---------- partial recovery ---------- *)

type unit_status =
  | Recovered  (** every codeword decoded *)
  | Degraded of { failed_codewords : int }  (** some codewords uncorrected *)
  | Lost  (** no codeword decoded: the unit was effectively missing *)

type partial_recovery = {
  unit_status : unit_status array;
  recovered_fraction : float;
  recovered_ranges : (int * int) list;
      (** maximal [start, stop) byte ranges of the returned file whose
          codewords all decoded *)
}

let no_recovery ~n_units =
  { unit_status = Array.make (max n_units 0) Lost; recovered_fraction = 0.0; recovered_ranges = [] }

let status_of_unit ~rows (u : Matrix_codec.unit_stats) =
  match List.length u.Matrix_codec.failed_codewords with
  | 0 -> Recovered
  | f when f >= rows -> Lost
  | f -> Degraded { failed_codewords = f }

(* Which bytes of the decoded file are trustworthy. Data fills units
   column-major, so the file byte at offset [i] lives at payload position
   [i + header_span], in unit [pos / unit_bytes], codeword row
   [pos mod rows] — trustworthy iff that codeword's RS decode
   succeeded. Scrambling is byte-wise, so positions are preserved. *)
let partial ~(params : Params.t) ~file_len (stats : decode_stats) : partial_recovery =
  let rows = Params.rows params in
  let unit_bytes = Params.unit_data_bytes params in
  let span = header_span ~rows in
  let n_units = Array.length stats.units in
  let failed = Array.make n_units [||] in
  Array.iteri
    (fun u us ->
      let f = Array.make rows false in
      List.iter (fun cw -> if cw >= 0 && cw < rows then f.(cw) <- true) us.Matrix_codec.failed_codewords;
      failed.(u) <- f)
    stats.units;
  let ok i =
    let pos = i + span in
    let u = pos / unit_bytes in
    u < n_units && not failed.(u).(pos mod unit_bytes mod rows)
  in
  let ranges = ref [] in
  let run_start = ref (-1) in
  let recovered = ref 0 in
  for i = 0 to file_len - 1 do
    if ok i then begin
      incr recovered;
      if !run_start < 0 then run_start := i
    end
    else if !run_start >= 0 then begin
      ranges := (!run_start, i) :: !ranges;
      run_start := -1
    end
  done;
  if !run_start >= 0 then ranges := (!run_start, file_len) :: !ranges;
  {
    unit_status = Array.map (status_of_unit ~rows) stats.units;
    recovered_fraction =
      (if file_len = 0 then 1.0 else float_of_int !recovered /. float_of_int file_len);
    recovered_ranges = List.rev !ranges;
  }
