(** A DNA Fountain codec (Erlich & Zielinski), the rateless alternative
    to the matrix architecture.

    The file is cut into [k] fixed-size chunks. Each *droplet* XORs a
    pseudo-random subset of chunks — the subset is fully determined by a
    32-bit seed carried in the droplet's strand, and its size is drawn
    from the robust soliton distribution. Any sufficiently large subset
    of droplets decodes the file by peeling: a droplet of remaining
    degree one reveals a chunk, which is XORed out of every other
    droplet, and so on.

    Rateless-ness is the point: molecules can be lost arbitrarily (no
    erasure positions to declare) and the encoder can always synthesize
    more droplets. A droplet strand is [seed (16 nt) | payload]; the
    seed region reuses {!Index}'s masked encoding so it never forms
    homopolymer runs. *)

type params = {
  chunk_bytes : int;  (** payload bytes per droplet *)
  inner_parity : int;  (** Reed-Solomon parity bytes protecting each droplet *)
  overhead : float;  (** droplets generated = ceil(k * (1 + overhead)) *)
  c : float;  (** robust soliton parameter *)
  delta : float;  (** robust soliton failure bound *)
  scramble_seed : int;
}

let default_params =
  { chunk_bytes = 30; inner_parity = 4; overhead = 0.6; c = 0.1; delta = 0.05; scramble_seed = 0xf0e1 }

let validate p =
  if p.chunk_bytes <= 0 then invalid_arg "Fountain: chunk_bytes must be positive";
  if p.inner_parity < 0 then invalid_arg "Fountain: inner_parity must be nonnegative";
  if p.overhead < 0.0 then invalid_arg "Fountain: overhead must be nonnegative"

(* Inner code over one droplet payload: a reconstructed droplet with a
   few byte errors is corrected; one beyond correction is rejected
   rather than allowed to poison the XOR peeling (Erlich & Zielinski
   protect droplets the same way). *)
let inner_code p = if p.inner_parity = 0 then None else Some (Rs.create ~k:p.chunk_bytes ~nsym:p.inner_parity)

let seed_nt = 16

(* Robust soliton distribution over degrees 1..k (unnormalized rho+tau,
   then normalized). *)
let robust_soliton ~k ~c ~delta =
  let kf = float_of_int k in
  let r = c *. log (kf /. delta) *. sqrt kf in
  let tau d =
    let df = float_of_int d in
    let threshold = int_of_float (kf /. r) in
    if d < threshold then r /. (df *. kf)
    else if d = threshold then r *. log (r /. delta) /. kf
    else 0.0
  in
  let rho d = if d = 1 then 1.0 /. kf else 1.0 /. (float_of_int d *. float_of_int (d - 1)) in
  let weights = Array.init k (fun i -> rho (i + 1) +. tau (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.map (fun w -> w /. total) weights

let sample_degree rng (dist : float array) =
  let u = Dna.Rng.float rng in
  let rec pick i acc =
    if i >= Array.length dist - 1 then i + 1
    else if acc +. dist.(i) >= u then i + 1
    else pick (i + 1) (acc +. dist.(i))
  in
  pick 0 0.0

(* The chunk subset of a droplet is derived deterministically from its
   seed, so the decoder reconstructs it from the strand alone. *)
let chunks_of_seed ~k ~dist seed =
  let rng = Dna.Rng.create seed in
  let degree = sample_degree rng dist in
  Array.to_list (Dna.Rng.sample_indices rng ~n:k ~k:(min degree k))

type encoded = {
  params : params;
  k : int;  (** number of source chunks *)
  file_bytes : int;
  strands : Dna.Strand.t array;
}

let xor_into dst src = Bytes.iteri (fun i c -> Bytes.set dst i (Char.chr (Char.code (Bytes.get dst i) lxor Char.code c))) src

(* Seed region: reuse the index's masked 32-bit encoding. *)
let strand_of_droplet p ~seed ~payload =
  let protected_payload =
    match inner_code p with None -> payload | Some code -> Rs.encode code payload
  in
  Dna.Strand.append (Codec_seed.encode32 seed) (Dna.Bitstream.strand_of_bytes protected_payload)

let encode ?(params = default_params) rng (file : Bytes.t) : encoded =
  validate params;
  let scrambled = Dna.Randomizer.scramble ~seed:params.scramble_seed file in
  let k = max 1 ((Bytes.length scrambled + params.chunk_bytes - 1) / params.chunk_bytes) in
  let chunk i =
    let b = Bytes.make params.chunk_bytes '\000' in
    let off = i * params.chunk_bytes in
    let len = min params.chunk_bytes (Bytes.length scrambled - off) in
    if len > 0 then Bytes.blit scrambled off b 0 len;
    b
  in
  let chunks = Array.init k chunk in
  let dist = robust_soliton ~k ~c:params.c ~delta:params.delta in
  let n_droplets = int_of_float (ceil (float_of_int k *. (1.0 +. params.overhead))) in
  let strands =
    Array.init n_droplets (fun _ ->
        let seed = Int64.to_int (Dna.Rng.next_int64 rng) land Codec_seed.max_value in
        let payload = Bytes.make params.chunk_bytes '\000' in
        List.iter (fun c -> xor_into payload chunks.(c)) (chunks_of_seed ~k ~dist seed);
        strand_of_droplet params ~seed ~payload)
  in
  { params; k; file_bytes = Bytes.length file; strands }

let strand_nt params = seed_nt + (4 * (params.chunk_bytes + params.inner_parity))

(* Parse a droplet strand back into (seed, payload): the seed checksum
   and the inner Reed-Solomon code both have to accept. *)
let parse_strand params (s : Dna.Strand.t) : (int * Bytes.t) option =
  if Dna.Strand.length s <> strand_nt params then None
  else
    match Codec_seed.decode32 (Dna.Strand.sub s ~pos:0 ~len:seed_nt) with
    | None -> None
    | Some seed -> (
        let received =
          Dna.Bitstream.bytes_of_strand
            (Dna.Strand.sub s ~pos:seed_nt ~len:(4 * (params.chunk_bytes + params.inner_parity)))
        in
        match inner_code params with
        | None -> Some (seed, received)
        | Some code -> (
            match Rs.decode code received with
            | Ok payload -> Some (seed, payload)
            | Error _ -> None))

type decode_stats = {
  droplets_used : int;
  droplets_bad : int;  (** unparsable strands *)
  peeled : int;  (** chunks recovered *)
}

(* Peeling decoder. *)
let decode ?(params = default_params) ~k ~file_bytes (strands : Dna.Strand.t list) :
    (Bytes.t * decode_stats, string) result =
  validate params;
  let dist = robust_soliton ~k ~c:params.c ~delta:params.delta in
  let bad = ref 0 in
  (* Active droplets: payload buffer + remaining chunk set. *)
  let droplets =
    List.filter_map
      (fun s ->
        match parse_strand params s with
        | Some (seed, payload) -> Some (ref (chunks_of_seed ~k ~dist seed), Bytes.copy payload)
        | None ->
            incr bad;
            None)
      strands
  in
  let chunks = Array.make k None in
  let peeled = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (remaining, payload) ->
        (* Reduce by already-known chunks. *)
        remaining :=
          List.filter
            (fun c ->
              match chunks.(c) with
              | Some known ->
                  xor_into payload known;
                  false
              | None -> true)
            !remaining;
        match !remaining with
        | [ c ] ->
            chunks.(c) <- Some (Bytes.copy payload);
            remaining := [];
            incr peeled;
            progress := true
        | _ -> ())
      droplets
  done;
  (* Inactivation decoding: peeling can stall with unknowns left even
     though the surviving droplets still determine them. Solve the
     residual XOR system by Gaussian elimination over GF(2). *)
  if Array.exists (fun c -> c = None) chunks then begin
    let unknowns = ref [] in
    Array.iteri (fun i c -> if c = None then unknowns := i :: !unknowns) chunks;
    let unknowns = Array.of_list (List.rev !unknowns) in
    let m = Array.length unknowns in
    let col_of = Hashtbl.create m in
    Array.iteri (fun j c -> Hashtbl.add col_of c j) unknowns;
    let rows =
      List.filter_map
        (fun (remaining, payload) ->
          match !remaining with
          | [] -> None
          | chunks_left ->
              let vec = Array.make m false in
              List.iter (fun c -> vec.(Hashtbl.find col_of c) <- true) chunks_left;
              Some (vec, Bytes.copy payload))
        droplets
      |> Array.of_list
    in
    let n_rows = Array.length rows in
    let pivot_of_col = Array.make m (-1) in
    let used = Array.make n_rows false in
    for col = 0 to m - 1 do
      (* Find an unused row with a 1 in this column. *)
      let pivot = ref (-1) in
      for r = 0 to n_rows - 1 do
        if !pivot < 0 && (not used.(r)) && (fst rows.(r)).(col) then pivot := r
      done;
      if !pivot >= 0 then begin
        used.(!pivot) <- true;
        pivot_of_col.(col) <- !pivot;
        let pvec, ppay = rows.(!pivot) in
        for r = 0 to n_rows - 1 do
          if r <> !pivot && (fst rows.(r)).(col) then begin
            let vec, pay = rows.(r) in
            Array.iteri (fun j v -> vec.(j) <- v <> pvec.(j)) (Array.copy vec);
            xor_into pay ppay
          end
        done
      end
    done;
    (* Fully reduced: each pivot row now covers exactly its column. *)
    Array.iteri
      (fun col r ->
        if r >= 0 then begin
          let vec, pay = rows.(r) in
          let weight = Array.fold_left (fun a v -> if v then a + 1 else a) 0 vec in
          if weight = 1 && vec.(col) then begin
            chunks.(unknowns.(col)) <- Some pay;
            incr peeled
          end
        end)
      pivot_of_col
  end;
  let stats = { droplets_used = List.length droplets; droplets_bad = !bad; peeled = !peeled } in
  if Array.exists (fun c -> c = None) chunks then
    Error
      (Printf.sprintf "Fountain.decode: only %d of %d chunks recovered (need more droplets)"
         !peeled k)
  else begin
    let buf = Buffer.create (k * params.chunk_bytes) in
    Array.iter (function Some c -> Buffer.add_bytes buf c | None -> ()) chunks;
    let scrambled = Bytes.sub (Buffer.to_bytes buf) 0 file_bytes in
    Ok (Dna.Randomizer.unscramble ~seed:params.scramble_seed scrambled, stats)
  end
