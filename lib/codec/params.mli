(** Codec configuration: one encoding unit is a
    [rows x (rs_data + rs_parity)] byte matrix — [rs_data] data
    molecules plus [rs_parity] ECC molecules, each carrying
    [payload_nt / 4] bytes behind its index. *)

type t = {
  payload_nt : int;  (** payload bases per molecule; multiple of 4 *)
  rs_data : int;  (** data columns (RS message length k) *)
  rs_parity : int;  (** ECC columns (RS parity) *)
  scramble_seed : int;  (** randomizer seed for unconstrained coding *)
}

val default : t
(** Payload 120 nt (the paper's overall evaluation setting), 20 data +
    6 parity columns. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent parameters. *)

val rows : t -> int
(** Bytes per molecule payload = codewords per unit. *)

val columns : t -> int
(** Molecules per unit (RS codeword length). *)

val unit_data_bytes : t -> int
val strand_nt : t -> int
(** Index plus payload bases of one encoded molecule. *)

val pp : Format.formatter -> t -> unit
