(** PCR primer design and handling (Sections II-D/F, VIII).

    A primer pair is the "key" of a stored file: every molecule of the
    file is flanked by the pair, and PCR amplification selects on it.
    Primers are 20 bases, GC-balanced, free of long homopolymers, and
    pairwise far apart in Hamming distance so that noisy reads still
    match the right file. Reads come off the sequencer in either
    orientation; [orient] detects and normalizes direction by matching
    primers, and [strip] removes them, leaving the core payload.

    Primer location in noisy reads uses semi-global alignment (the primer
    must match end to end, the read position floats), so insertions and
    deletions inside the primer region are absorbed instead of cascading
    into mismatches. *)

let primer_length = 20

type pair = { forward : Dna.Strand.t; reverse : Dna.Strand.t }

let gc_balanced s =
  let gc = Dna.Strand.gc_content s in
  gc >= 0.4 && gc <= 0.6

let acceptable s = gc_balanced s && Dna.Strand.max_homopolymer s <= 3

type error =
  | Constraints_unsatisfiable of { requested : int; generated : int; attempts : int }
      (** the rejection sampler hit its attempt cap before producing
          [requested] primers; [generated] were found *)

let error_message = function
  | Constraints_unsatisfiable { requested; generated; attempts } ->
      Printf.sprintf
        "Primer.generate: constraints unsatisfiable (%d of %d primers after %d attempts)"
        generated requested attempts

(* Generate [n] primers with pairwise Hamming distance at least
   [min_distance], rejection-sampling random candidates. *)
let generate ?(min_distance = 8) ?(max_attempts = 100_000) rng n :
    (Dna.Strand.t array, error) result =
  let chosen = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  let exhausted = ref false in
  while (not !exhausted) && !count < n do
    incr attempts;
    if !attempts > max_attempts then exhausted := true
    else begin
      let cand = Dna.Strand.random rng primer_length in
      let far_enough other = Dna.Distance.hamming cand other >= min_distance in
      (* Also keep distance from every reverse complement, since reads can
         arrive in either orientation. *)
      if
        acceptable cand
        && List.for_all
             (fun p -> far_enough p && far_enough (Dna.Strand.reverse_complement p))
             !chosen
      then begin
        chosen := cand :: !chosen;
        incr count
      end
    end
  done;
  if !exhausted then
    Error (Constraints_unsatisfiable { requested = n; generated = !count; attempts = max_attempts })
  else Ok (Array.of_list (List.rev !chosen))

let generate_pairs ?min_distance ?max_attempts rng n : (pair array, error) result =
  match generate ?min_distance ?max_attempts rng (2 * n) with
  | Error err -> Error err
  | Ok primers ->
      Ok (Array.init n (fun i -> { forward = primers.(2 * i); reverse = primers.((2 * i) + 1) }))

let generate_pairs_exn ?min_distance ?max_attempts rng n : pair array =
  match generate_pairs ?min_distance ?max_attempts rng n with
  | Ok pairs -> pairs
  | Error e -> failwith (error_message e)

(* Attach the pair around a core strand (Figure 2a). *)
let attach pair core = Dna.Strand.concat [ pair.forward; core; pair.reverse ]

(* Hamming mismatches of [pattern] against [s] at [pos]; [max_int] when
   it does not fit. Used for strict matching on clean pool molecules. *)
let mismatches_at s ~pos ~pattern =
  let n = Dna.Strand.length s and m = Dna.Strand.length pattern in
  if pos < 0 || pos + m > n then max_int
  else begin
    let d = ref 0 in
    for i = 0 to m - 1 do
      if Dna.Strand.get_code s (pos + i) <> Dna.Strand.get_code pattern i then incr d
    done;
    !d
  end

(* A registry of reserved primer pairs: the shared bookkeeping behind
   both the in-memory kv-store and the persistent store. Reserving keeps
   a pair (and, through [fresh], its neighborhood) out of circulation;
   releasing returns it — the reclamation step after a deleted object's
   molecules have physically left the pool. *)
module Registry = struct
  type t = { mutable reserved : pair list }

  let pair_equal a b =
    Dna.Strand.equal a.forward b.forward && Dna.Strand.equal a.reverse b.reverse

  let create () = { reserved = [] }
  let of_pairs pairs = { reserved = pairs }
  let pairs r = r.reserved
  let size r = List.length r.reserved
  let is_reserved r p = List.exists (pair_equal p) r.reserved
  let reserve r p = if not (is_reserved r p) then r.reserved <- p :: r.reserved
  let release r p = r.reserved <- List.filter (fun q -> not (pair_equal p q)) r.reserved

  (* A fresh pair must stay [min_distance] away from both primers of
     every reserved pair and their reverse complements, so PCR selection
     on any reserved key never amplifies the new molecules and vice
     versa. *)
  let fresh ?(min_distance = 8) ?(max_attempts = 1000) r rng : (pair, error) result =
    let far p q = Dna.Distance.hamming p q >= min_distance in
    let clear p =
      List.for_all
        (fun used ->
          far p used.forward && far p used.reverse
          && far p (Dna.Strand.reverse_complement used.forward)
          && far p (Dna.Strand.reverse_complement used.reverse))
        r.reserved
    in
    let rec attempt tries =
      if tries >= max_attempts then
        Error (Constraints_unsatisfiable { requested = 1; generated = 0; attempts = tries })
      else
        match generate_pairs rng 1 with
        | Error e -> Error e
        | Ok cands ->
            let cand = cands.(0) in
            if clear cand.forward && clear cand.reverse then Ok cand else attempt (tries + 1)
    in
    Result.map
      (fun p ->
        reserve r p;
        p)
      (attempt 0)
end

(* Semi-global alignment of the whole [pattern] against a prefix window
   of [read]: returns [(end_position, edits)] for the alignment with the
   fewest edits whose read span starts at position 0..slack. *)
let locate_prefix ?(slack = 4) ~max_edits pattern (read : Dna.Strand.t) : (int * int) option =
  let m = Dna.Strand.length pattern in
  let window = min (Dna.Strand.length read) (m + slack + max_edits) in
  if window < m - max_edits then None
  else begin
    (* dp.(j): cost of aligning the full prefix of pattern processed so
       far against read[0..j), with free leading gap up to [slack]. *)
    let prev = Array.make (window + 1) 0 in
    let cur = Array.make (window + 1) 0 in
    for j = 0 to window do
      (* Leading read bases may be skipped cheaply up to [slack]. *)
      prev.(j) <- if j <= slack then 0 else j - slack
    done;
    for i = 1 to m do
      let pc = Dna.Strand.get_code pattern (i - 1) in
      cur.(0) <- i;
      for j = 1 to window do
        let cost = if pc = Dna.Strand.get_code read (j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (window + 1)
    done;
    (* Best end position of the pattern within the window. *)
    let best = ref None in
    for j = 0 to window do
      match !best with
      | Some (_, d) when d <= prev.(j) -> ()
      | _ -> if prev.(j) <= max_edits then best := Some (j, prev.(j))
    done;
    !best
  end

(* Locate [pattern] at the tail of [read] by matching the reversed
   strands at the head. Returns [(start_position, edits)]. *)
let locate_suffix ?slack ~max_edits pattern (read : Dna.Strand.t) : (int * int) option =
  match locate_prefix ?slack ~max_edits (Dna.Strand.rev pattern) (Dna.Strand.rev read) with
  | None -> None
  | Some (end_in_rev, edits) -> Some (Dna.Strand.length read - end_in_rev, edits)

type orientation = Forward | Reverse

(* Detect the read's orientation against [pair]: whichever direction
   shows the forward primer at the head with fewer edits wins. *)
let orient ?(max_edits = 5) ?slack pair (read : Dna.Strand.t) :
    (Dna.Strand.t * orientation) option =
  let fwd = locate_prefix ?slack ~max_edits pair.forward read in
  let rc = Dna.Strand.reverse_complement read in
  let rev = locate_prefix ?slack ~max_edits pair.forward rc in
  match (fwd, rev) with
  | Some (_, fd), Some (_, rd) -> if fd <= rd then Some (read, Forward) else Some (rc, Reverse)
  | Some _, None -> Some (read, Forward)
  | None, Some _ -> Some (rc, Reverse)
  | None, None -> None

(* Remove both primers from a normalized (5'->3') read. [None] when
   either primer cannot be located, which filters foreign molecules. *)
let strip ?(max_edits = 5) ?slack pair (read : Dna.Strand.t) : Dna.Strand.t option =
  match
    (locate_prefix ?slack ~max_edits pair.forward read,
     locate_suffix ?slack ~max_edits pair.reverse read)
  with
  | Some (core_start, _), Some (core_end, _) when core_end > core_start ->
      Some (Dna.Strand.sub read ~pos:core_start ~len:(core_end - core_start))
  | _ -> None

(* Orientation + strip in one step: the full preprocessing of one
   sequenced read (Section VIII). *)
let normalize ?max_edits ?slack pair read =
  match orient ?max_edits ?slack pair read with
  | None -> None
  | Some (oriented, _) -> strip ?max_edits ?slack pair oriented
