(** PCR primer design and handling (Sections II-D/F, VIII). A primer
    pair is a stored file's key: every molecule is flanked by it and PCR
    selects on it. Primer location in noisy reads uses semi-global
    alignment, so indels inside the primer region are absorbed. *)

val primer_length : int
(** 20 bases. *)

type pair = { forward : Dna.Strand.t; reverse : Dna.Strand.t }

val gc_balanced : Dna.Strand.t -> bool
val acceptable : Dna.Strand.t -> bool
(** GC in [0.4, 0.6] and homopolymers of at most 3. *)

type error =
  | Constraints_unsatisfiable of { requested : int; generated : int; attempts : int }
      (** the rejection sampler hit its attempt cap (default 100_000)
          before producing [requested] primers *)

val error_message : error -> string

val generate :
  ?min_distance:int -> ?max_attempts:int -> Dna.Rng.t -> int ->
  (Dna.Strand.t array, error) result
(** [n] acceptable primers pairwise at least [min_distance] (default 8)
    apart in Hamming distance, including against reverse complements.
    [Error] when the rejection sampler exhausts [max_attempts]. *)

val generate_pairs :
  ?min_distance:int -> ?max_attempts:int -> Dna.Rng.t -> int -> (pair array, error) result

val generate_pairs_exn : ?min_distance:int -> ?max_attempts:int -> Dna.Rng.t -> int -> pair array
(** {!generate_pairs} for callers without a recovery path; raises
    [Failure] with {!error_message} on exhaustion. *)

(** A mutable set of reserved (in-use) pairs: the shared bookkeeping
    behind the in-memory kv-store and the persistent object store.
    {!Registry.fresh} generates a pair far from everything reserved and
    reserves it; {!Registry.release} reclaims a pair once a deleted
    object's molecules have physically left the pool (compaction). *)
module Registry : sig
  type t

  val create : unit -> t
  val of_pairs : pair list -> t

  val pairs : t -> pair list
  (** Reserved pairs, most recently reserved first. *)

  val size : t -> int
  val is_reserved : t -> pair -> bool
  val reserve : t -> pair -> unit

  val release : t -> pair -> unit
  (** No-op when the pair is not reserved. *)

  val fresh : ?min_distance:int -> ?max_attempts:int -> t -> Dna.Rng.t -> (pair, error) result
  (** A new acceptable pair at least [min_distance] (default 8) Hamming
      distance from both primers of every reserved pair and their
      reverse complements, reserved as a side effect. [Error] after
      [max_attempts] (default 1000) rejected candidates. *)
end

val attach : pair -> Dna.Strand.t -> Dna.Strand.t
(** [forward ^ core ^ reverse] (Figure 2a). *)

val mismatches_at : Dna.Strand.t -> pos:int -> pattern:Dna.Strand.t -> int
(** Hamming mismatches of [pattern] at [pos]; [max_int] if out of range.
    For strict matching on clean pool molecules. *)

val locate_prefix :
  ?slack:int -> max_edits:int -> Dna.Strand.t -> Dna.Strand.t -> (int * int) option
(** Best semi-global alignment of the whole pattern near the read's
    head: [(end_position, edits)] with at most [max_edits] edits. *)

val locate_suffix :
  ?slack:int -> max_edits:int -> Dna.Strand.t -> Dna.Strand.t -> (int * int) option
(** Mirror of {!locate_prefix} at the read's tail: [(start_position,
    edits)]. *)

type orientation = Forward | Reverse

val orient :
  ?max_edits:int -> ?slack:int -> pair -> Dna.Strand.t -> (Dna.Strand.t * orientation) option
(** Detect the read's direction against the pair and return it
    normalized to 5'->3'; [None] when neither direction matches. *)

val strip : ?max_edits:int -> ?slack:int -> pair -> Dna.Strand.t -> Dna.Strand.t option
(** Remove both primers from a normalized read; [None] filters foreign
    molecules. *)

val normalize : ?max_edits:int -> ?slack:int -> pair -> Dna.Strand.t -> Dna.Strand.t option
(** {!orient} then {!strip}: the full preprocessing of one sequenced
    read (Section VIII). *)
