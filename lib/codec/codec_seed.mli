(** Masked 32-bit tags as 16 bases with an internal 6-bit checksum:
    droplet seeds for the fountain codec. Only the low 26 bits of the
    value are stored. *)

val nt_length : int
val payload_bits : int
val max_value : int

val encode32 : int -> Dna.Strand.t
val decode32 : Dna.Strand.t -> int option
(** [None] when the length is wrong or the checksum rejects. *)
