(** A DNA Fountain codec (Erlich & Zielinski): the rateless alternative
    to the matrix architecture. Droplets XOR seed-determined chunk
    subsets (robust soliton degrees); a peeling decoder recovers the
    file from any sufficiently large droplet subset — no erasure
    positions to declare, and the encoder can always emit more
    droplets. *)

type params = {
  chunk_bytes : int;  (** payload bytes per droplet *)
  inner_parity : int;  (** Reed-Solomon parity bytes protecting each droplet:
                           corrupted droplets are corrected or rejected,
                           never allowed to poison the peeling *)
  overhead : float;  (** droplets generated = ceil(k * (1 + overhead)) *)
  c : float;  (** robust soliton parameter *)
  delta : float;  (** robust soliton failure bound *)
  scramble_seed : int;
}

val default_params : params
val seed_nt : int

val robust_soliton : k:int -> c:float -> delta:float -> float array
(** The degree distribution over 1..k, normalized. *)

val chunks_of_seed : k:int -> dist:float array -> int -> int list
(** The chunk subset a droplet seed selects (deterministic). *)

type encoded = {
  params : params;
  k : int;  (** number of source chunks *)
  file_bytes : int;
  strands : Dna.Strand.t array;
}

val encode : ?params:params -> Dna.Rng.t -> Bytes.t -> encoded

val strand_nt : params -> int
(** Total bases of one droplet strand: seed + payload. *)

val parse_strand : params -> Dna.Strand.t -> (int * Bytes.t) option

type decode_stats = {
  droplets_used : int;
  droplets_bad : int;  (** unparsable strands *)
  peeled : int;  (** chunks recovered *)
}

val decode :
  ?params:params -> k:int -> file_bytes:int -> Dna.Strand.t list ->
  (Bytes.t * decode_stats, string) result
(** Peeling decode; [Error] when too few droplets survived to cover all
    chunks. *)
