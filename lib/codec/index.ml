(** Molecule indices (Section II-C).

    A test tube has no physical order, so every molecule embeds an
    internal address: the encoding-unit number and the column within the
    unit. The index is 16 bases = 32 bits: 16 bits of unit id, 8 bits of
    column id, and an 8-bit checksum. The checksum lets the decoder
    reject a corrupted index — turning a would-be misplacement (which
    silently corrupts two columns) into a clean erasure.

    The 32 bits are XOR-masked with a fixed pattern before being mapped
    to bases: small unit and column numbers would otherwise emit long
    homopolymer runs of A (e.g. unit 0 starts with 8 A's), exactly the
    pattern unconstrained coding scrambles the payload to avoid, and a
    reconstruction hazard in their own right. *)

type t = { unit_id : int; column : int }

let nt_length = 16
let max_unit = 0xffff
let max_column = 0xff

let checksum ~unit_id ~column =
  (* Fold the 24 payload bits into 8, with a constant so an all-zero
     index does not checksum trivially. *)
  let v = (unit_id lsl 8) lor column in
  (v lxor (v lsr 8) lxor (v lsr 16) lxor 0xa5) land 0xff

(* Fixed randomizing mask over the 4 index bytes. *)
let mask = [| 0x6b; 0xc5; 0x39; 0xd2 |]

let apply_mask bytes =
  Bytes.mapi (fun i c -> Char.chr (Char.code c lxor mask.(i))) bytes

let encode { unit_id; column } : Dna.Strand.t =
  if unit_id < 0 || unit_id > max_unit then invalid_arg "Index.encode: unit_id out of range";
  if column < 0 || column > max_column then invalid_arg "Index.encode: column out of range";
  let w = Dna.Bitstream.Writer.create () in
  Dna.Bitstream.Writer.add w ~width:16 unit_id;
  Dna.Bitstream.Writer.add w ~width:8 column;
  Dna.Bitstream.Writer.add w ~width:8 (checksum ~unit_id ~column);
  Dna.Bitstream.strand_of_bytes (apply_mask (Dna.Bitstream.Writer.to_bytes w))

type error =
  | Truncated of { expected : int; got : int }
      (** strand shorter (or longer) than the 16-base index *)
  | Bad_checksum of { stored : int; computed : int }

let error_message = function
  | Truncated { expected; got } ->
      Printf.sprintf "Index.decode: expected %d bases, got %d" expected got
  | Bad_checksum { stored; computed } ->
      Printf.sprintf "Index.decode: checksum mismatch (stored %#x, computed %#x)" stored
        computed

(* Length is validated before any byte-level slicing, so a truncated
   read surfaces as [Truncated] instead of an [Invalid_argument] escaping
   from the [Bytes] primitives underneath [Bitstream]. *)
let decode (s : Dna.Strand.t) : (t, error) result =
  let got = Dna.Strand.length s in
  if got <> nt_length then Error (Truncated { expected = nt_length; got })
  else begin
    let r = Dna.Bitstream.Reader.create (apply_mask (Dna.Bitstream.bytes_of_strand s)) in
    let unit_id = Dna.Bitstream.Reader.read r ~width:16 in
    let column = Dna.Bitstream.Reader.read r ~width:8 in
    let stored = Dna.Bitstream.Reader.read r ~width:8 in
    let computed = checksum ~unit_id ~column in
    if stored = computed then Ok { unit_id; column }
    else Error (Bad_checksum { stored; computed })
  end

let decode_opt s = Result.to_option (decode s)

let equal a b = a.unit_id = b.unit_id && a.column = b.column

let pp fmt { unit_id; column } = Format.fprintf fmt "u%d.c%d" unit_id column
