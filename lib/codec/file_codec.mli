(** File-level encoding and decoding (Section IV): scramble, prefix a
    replicated length header, chunk into units, matrix-encode; decoding
    groups reconstructed strands by index, decodes every unit, then
    unscrambles and trims to the recorded length. *)

type encoded = {
  params : Params.t;
  layout : Layout.t;
  strands : Dna.Strand.t array;  (** index + payload, no primers *)
  n_units : int;
}

type decode_stats = {
  units : Matrix_codec.unit_stats array;
  missing_strands : int;  (** expected molecules never seen *)
  unparsable_strands : int;  (** wrong length / bad index checksum / out of range *)
}

val header_copies : int

val header_span : rows:int -> int
(** Bytes reserved for the replicated length header; one copy per
    matrix column. Raises [Invalid_argument] when [rows < 8]. *)

val encode : ?layout:Layout.t -> ?params:Params.t -> Bytes.t -> encoded

val decode :
  ?layout:Layout.t -> ?params:Params.t -> n_units:int -> Dna.Strand.t list ->
  (Bytes.t * decode_stats, string) result
(** Strands may arrive in any order, duplicated (the first parsed copy
    of a column wins — feed largest-cluster consensus first), corrupted
    or missing. [Error] only when the length header itself is
    unrecoverable; partial corruption is returned with stats. *)

val fully_recovered : decode_stats -> bool
(** No unit had a failed codeword. *)
