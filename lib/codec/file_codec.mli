(** File-level encoding and decoding (Section IV): scramble, prefix a
    replicated length header, chunk into units, matrix-encode; decoding
    groups reconstructed strands by index, decodes every unit, then
    unscrambles and trims to the recorded length. *)

type encoded = {
  params : Params.t;
  layout : Layout.t;
  strands : Dna.Strand.t array;  (** index + payload, no primers *)
  n_units : int;
}

type decode_stats = {
  units : Matrix_codec.unit_stats array;
  missing_strands : int;  (** expected molecules never seen *)
  unparsable_strands : int;  (** wrong length / bad index checksum / out of range *)
}

val header_copies : int

val header_span : rows:int -> int
(** Bytes reserved for the replicated length header; one copy per
    matrix column. Raises [Invalid_argument] when [rows < 8]. *)

val encode : ?layout:Layout.t -> ?params:Params.t -> Bytes.t -> encoded

type error =
  | Invalid_params of string
  | Corrupt_header
      (** all three header copies disagree or record an impossible
          length: the file boundary cannot be recovered *)

val error_message : error -> string

val decode :
  ?layout:Layout.t -> ?params:Params.t -> n_units:int -> Dna.Strand.t list ->
  (Bytes.t * decode_stats, error) result
(** Strands may arrive in any order, duplicated (the first parsed copy
    of a column wins — feed largest-cluster consensus first), corrupted,
    truncated or missing; never raises. [Error] only when the length
    header itself is unrecoverable or the call is malformed; partial
    corruption is returned with stats. *)

val fully_recovered : decode_stats -> bool
(** No unit had a failed codeword. *)

(** {2 Partial recovery}

    The graceful-degradation contract: even when some units cannot be
    decoded, the surviving byte ranges are returned, mapped and
    quantified. *)

type unit_status =
  | Recovered  (** every codeword decoded *)
  | Degraded of { failed_codewords : int }  (** some codewords uncorrected *)
  | Lost  (** no codeword decoded: the unit was effectively missing *)

type partial_recovery = {
  unit_status : unit_status array;
  recovered_fraction : float;  (** fraction of file bytes whose codeword decoded; 1.0 for an empty file *)
  recovered_ranges : (int * int) list;
      (** maximal [start, stop) byte ranges of the returned file whose
          codewords all decoded *)
}

val no_recovery : n_units:int -> partial_recovery
(** The all-lost record, for outright decode failures. *)

val partial : params:Params.t -> file_len:int -> decode_stats -> partial_recovery
(** Map {!decode}'s stats onto the returned file: a byte is recovered
    iff the RS codeword covering it decoded. *)
