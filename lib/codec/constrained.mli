(** Constrained coding (Section II-D): base-3 data mapped through the
    Goldman rotation so no base ever repeats (homopolymer-free), at
    1.5 bits per nucleotide versus 2.0 for unconstrained coding. Used by
    the [density] benchmark to measure the trade-off the paper cites. *)

val trits_per_block : int
val bytes_per_block : int

val bits_per_nt : float
(** 1.5: the information density of this code. *)

val encoded_length : int -> int
(** Bases needed to encode that many bytes. *)

val encode : Bytes.t -> Dna.Strand.t
(** Homopolymer-free by construction. *)

type error =
  | Too_short of { needed : int; got : int }
  | Repeated_base of { position : int }
      (** two consecutive equal bases: a detected, uncorrectable corruption *)

val error_message : error -> string

val decode : n_bytes:int -> Dna.Strand.t -> (Bytes.t, error) result
(** Recover exactly [n_bytes], or a structured error when the strand is
    too short or contains a repeated base (detected corruption). *)

val satisfies_constraint : Dna.Strand.t -> bool
(** No two consecutive equal bases. *)
