(** The matrix encoding unit (Section IV-A, Figure 2b).

    Data bytes fill the matrix column-major (column [c] holds bytes
    [c*rows .. (c+1)*rows)), each codeword is Reed-Solomon encoded across
    the columns according to the chosen {!Layout}, and every column is
    emitted as one molecule: index bases followed by the payload bases.

    Decoding reverses the path: reconstructed strands are placed into
    columns by their index (checksum-rejected or missing columns become
    erasures), each codeword is gathered, RS-decoded with those erasures,
    and the corrected data region is reassembled. Insertions or deletions
    inside a molecule shift the whole column and surface as substitution
    errors spread across the codewords — the observation the paper makes
    about this architecture. *)

type unit_stats = {
  failed_codewords : int list;  (** rows whose RS decode failed *)
  corrected_bytes : int;
  erased_columns : int list;
}

let rs_code p = Rs.create ~k:p.Params.rs_data ~nsym:p.Params.rs_parity

(* Encode one unit of data (at most [unit_data_bytes] long; padded with
   zeros) into [columns] molecule strands (index + payload, no primers). *)
let encode_unit p ~layout ~unit_id (data : Bytes.t) : Dna.Strand.t array =
  Params.validate p;
  let rows = Params.rows p and cols = Params.columns p in
  let k = p.Params.rs_data in
  if Bytes.length data > Params.unit_data_bytes p then
    invalid_arg "Matrix_codec.encode_unit: data too large for one unit";
  let matrix = Array.make_matrix rows cols 0 in
  (* Fill the data region column-major. *)
  for c = 0 to k - 1 do
    for r = 0 to rows - 1 do
      let idx = (c * rows) + r in
      if idx < Bytes.length data then matrix.(r).(c) <- Char.code (Bytes.get data idx)
    done
  done;
  (* Encode each codeword along the layout and scatter the parity. *)
  let code = rs_code p in
  for cw = 0 to rows - 1 do
    let message =
      Array.init k (fun c -> matrix.(Layout.row_of layout ~rows ~codeword:cw ~position:c).(c))
    in
    let encoded = Rs.encode_arr code message in
    for c = k to cols - 1 do
      matrix.(Layout.row_of layout ~rows ~codeword:cw ~position:c).(c) <- encoded.(c)
    done
  done;
  (* Emit each column as index + payload bases. *)
  Array.init cols (fun c ->
      let payload_bytes = Bytes.init rows (fun r -> Char.chr matrix.(r).(c)) in
      let payload = Dna.Bitstream.strand_of_bytes payload_bytes in
      let index = Index.encode { Index.unit_id; column = c } in
      Dna.Strand.append index payload)

(* Split a reconstructed strand into its index and payload bytes. [None]
   when the length is wrong or the index checksum fails; such strands are
   treated as lost molecules. The length guard runs before any slicing,
   so truncated reads can never raise out of [Strand.sub]. *)
let parse_strand p (s : Dna.Strand.t) : (Index.t * Bytes.t) option =
  if Dna.Strand.length s <> Params.strand_nt p then None
  else begin
    match Index.decode (Dna.Strand.sub s ~pos:0 ~len:Index.nt_length) with
    | Error _ -> None
    | Ok index ->
        let payload = Dna.Strand.sub s ~pos:Index.nt_length ~len:p.Params.payload_nt in
        Some (index, Dna.Bitstream.bytes_of_strand payload)
  end

type error =
  | Wrong_column_count of { expected : int; got : int }
  | Invalid_params of string

let error_message = function
  | Wrong_column_count { expected; got } ->
      Printf.sprintf "Matrix_codec.decode_unit: expected %d columns, got %d" expected got
  | Invalid_params msg -> "Matrix_codec.decode_unit: " ^ msg

(* Decode one unit from its columns; [columns.(c) = None] marks an
   erased molecule. Returns the data region plus per-unit statistics.
   Rows that fail RS decoding are returned as-is (uncorrected) and
   reported in [failed_codewords]. *)
let decode_unit p ~layout (columns : Bytes.t option array) :
    (Bytes.t * unit_stats, error) result =
  match Params.validate p with
  | exception Invalid_argument msg -> Error (Invalid_params msg)
  | () ->
  let rows = Params.rows p and cols = Params.columns p in
  let k = p.Params.rs_data in
  if Array.length columns <> cols then
    Error (Wrong_column_count { expected = cols; got = Array.length columns })
  else begin
  let matrix = Array.make_matrix rows cols 0 in
  let erased = ref [] in
  Array.iteri
    (fun c col ->
      match col with
      | Some bytes when Bytes.length bytes = rows ->
          for r = 0 to rows - 1 do
            matrix.(r).(c) <- Char.code (Bytes.get bytes r)
          done
      | Some _ | None -> erased := c :: !erased)
    columns;
  let erased = List.rev !erased in
  let code = rs_code p in
  let failed = ref [] in
  let corrected = ref 0 in
  for cw = 0 to rows - 1 do
    let received =
      Array.init cols (fun c -> matrix.(Layout.row_of layout ~rows ~codeword:cw ~position:c).(c))
    in
    match Rs.decode_arr ~erasures:erased code received with
    | Ok d ->
        corrected := !corrected + List.length d.Rs.corrected;
        for c = 0 to cols - 1 do
          matrix.(Layout.row_of layout ~rows ~codeword:cw ~position:c).(c) <- d.Rs.codeword.(c)
        done
    | Error _ -> failed := cw :: !failed
  done;
  let data = Bytes.create (Params.unit_data_bytes p) in
  for c = 0 to k - 1 do
    for r = 0 to rows - 1 do
      Bytes.set data ((c * rows) + r) (Char.chr matrix.(r).(c))
    done
  done;
  Ok
    ( data,
      {
        failed_codewords = List.rev !failed;
        corrected_bytes = !corrected;
        erased_columns = erased;
      } )
  end
