(** Masked 32-bit values as 16-base tags with an internal checksum:
    shared by droplet seeds (fountain codec) and related headers. The
    mask keeps small values from emitting homopolymer runs; the 6-bit
    checksum folded into the high bits rejects corrupted tags. *)

let nt_length = 16
let payload_bits = 26
let max_value = (1 lsl payload_bits) - 1

let checksum v = (v lxor (v lsr 7) lxor (v lsr 13) lxor (v lsr 19) lxor 0x2b) land 0x3f

let mask = [| 0x9d; 0x3a; 0xc6; 0x51 |]

let apply_mask bytes = Bytes.mapi (fun i c -> Char.chr (Char.code c lxor mask.(i)) ) bytes

(* [encode32 v] stores the low 26 bits of [v] plus a 6-bit checksum. *)
let encode32 v =
  let v = v land max_value in
  let word = (checksum v lsl payload_bits) lor v in
  let bytes = Bytes.init 4 (fun i -> Char.chr ((word lsr (8 * (3 - i))) land 0xff)) in
  Dna.Bitstream.strand_of_bytes (apply_mask bytes)

let decode32 (s : Dna.Strand.t) : int option =
  if Dna.Strand.length s <> nt_length then None
  else begin
    let bytes = apply_mask (Dna.Bitstream.bytes_of_strand s) in
    let word = ref 0 in
    Bytes.iter (fun c -> word := (!word lsl 8) lor Char.code c) bytes;
    let v = !word land max_value in
    let check = (!word lsr payload_bits) land 0x3f in
    if check = checksum v then Some v else None
  end
