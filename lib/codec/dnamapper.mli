(** DNAMapper: reliability-tiered data mapping (Section IV-C, Lin et
    al.). All bytes stored at matrix row r form one "row stream";
    streams are ranked by reliability and priority tiers fill them from
    most to least reliable, so corruption lands on the data that
    tolerates it. *)

type plan = {
  rows : int;
  offset : int;  (** byte offset of the arranged data inside the encoded
                     stream, which rotates the row each position lands on *)
  tier_lengths : int list;
  row_rank : int array;  (** physical rows, most reliable first *)
  total : int;
}

val rank_rows : float array -> int array
(** Rows ordered from most to least reliable given per-row error rates. *)

val arrange : ?offset:int -> rows:int -> reliability:float array -> Bytes.t list -> Bytes.t * plan
(** Arrange priority-ordered tiers into the flat byte layout to feed
    into {!File_codec.encode}. *)

val extract : plan -> Bytes.t -> Bytes.t list
(** Invert {!arrange} after decoding. *)

val dbma_profile : rows:int -> float array
(** A default reliability profile for double-sided BMA reconstruction:
    errors peak at the middle rows (Figure 6). *)
