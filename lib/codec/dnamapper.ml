(** DNAMapper: reliability-tiered data mapping (Section IV-C, after Lin
    et al. [23]).

    Trace reconstruction leaves some row positions of the molecule less
    reliable than others (double-sided BMA concentrates errors in the
    middle). Instead of equalizing like Gini, DNAMapper *exploits* the
    skew: data that needs high fidelity is mapped onto reliable rows and
    corruption-tolerant data (low-order bits of images, enhancement
    layers of video) onto unreliable rows.

    The mapping is a byte arrangement: all bytes stored at matrix row [r]
    across the whole file form one "row stream"; streams are ranked by
    reliability, and priority tiers fill streams from most to least
    reliable. [arrange] produces the flat byte layout to feed into
    {!File_codec.encode}; [extract] inverts it after decoding. *)

type plan = {
  rows : int;
  offset : int;  (** byte offset of the arranged data inside the encoded
                     stream (e.g. the file-codec header), which rotates
                     the row that each position lands on *)
  tier_lengths : int list;  (** original byte length of each tier, priority order *)
  row_rank : int array;  (** physical rows sorted from most to least reliable *)
  total : int;  (** arranged length *)
}

(* Rank rows from most to least reliable given a per-row error profile
   (e.g. measured per-index reconstruction error, averaged per byte). *)
let rank_rows (reliability : float array) : int array =
  let rows = Array.length reliability in
  let order = Array.init rows (fun i -> i) in
  Array.sort (fun a b -> compare (reliability.(a), a) (reliability.(b), b)) order;
  order

(* Arranged position i sits at physical row (i + offset) mod rows once
   the encoder prepends [offset] bytes of header. The stream of positions
   on physical row r is therefore { j*rows + ((r - offset) mod rows) }. *)
let stream_position ~rows ~offset ~physical_row j =
  let base = ((physical_row - offset) mod rows + rows) mod rows in
  (j * rows) + base

let arrange ?(offset = 0) ~rows ~(reliability : float array) (tiers : Bytes.t list) :
    Bytes.t * plan =
  if Array.length reliability <> rows then invalid_arg "Dnamapper.arrange: profile size";
  let row_rank = rank_rows reliability in
  let total = List.fold_left (fun acc t -> acc + Bytes.length t) 0 tiers in
  (* Pad to a whole number of rows so each row stream is well defined. *)
  let padded = ((total + rows - 1) / rows) * rows in
  let out = Bytes.make padded '\000' in
  let per_stream = padded / rows in
  let src = Bytes.concat Bytes.empty tiers in
  let pos = ref 0 in
  Array.iter
    (fun physical_row ->
      for j = 0 to per_stream - 1 do
        if !pos < total then begin
          Bytes.set out (stream_position ~rows ~offset ~physical_row j) (Bytes.get src !pos);
          incr pos
        end
      done)
    row_rank;
  (out, { rows; offset; tier_lengths = List.map Bytes.length tiers; row_rank; total })

let extract (plan : plan) (arranged : Bytes.t) : Bytes.t list =
  let padded = ((plan.total + plan.rows - 1) / plan.rows) * plan.rows in
  if Bytes.length arranged < padded then invalid_arg "Dnamapper.extract: arranged data too short";
  let per_stream = padded / plan.rows in
  let flat = Bytes.create plan.total in
  let pos = ref 0 in
  Array.iter
    (fun physical_row ->
      for j = 0 to per_stream - 1 do
        if !pos < plan.total then begin
          Bytes.set flat !pos
            (Bytes.get arranged
               (stream_position ~rows:plan.rows ~offset:plan.offset ~physical_row j));
          incr pos
        end
      done)
    plan.row_rank;
  let rec split off = function
    | [] -> []
    | len :: rest -> Bytes.sub flat off len :: split (off + len) rest
  in
  split 0 plan.tier_lengths

(* A default reliability profile for double-sided BMA reconstruction:
   errors peak at the middle rows (Figure 6), so end rows rank first. *)
let dbma_profile ~rows =
  Array.init rows (fun r ->
      let x = float_of_int r /. float_of_int (max 1 (rows - 1)) in
      (* Triangle peaking at the center. *)
      1.0 -. (2.0 *. abs_float (x -. 0.5)))
