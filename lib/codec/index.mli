(** Molecule indices (Section II-C): 16 bases = 32 bits of internal
    address (unit id, column, checksum), XOR-masked so small ids do not
    emit homopolymer runs. The checksum turns a corrupted index into a
    clean erasure instead of a silent misplacement. *)

type t = { unit_id : int; column : int }

val nt_length : int
(** 16 bases. *)

val max_unit : int
val max_column : int

val checksum : unit_id:int -> column:int -> int

val encode : t -> Dna.Strand.t
(** Raises [Invalid_argument] out of range. *)

val decode : Dna.Strand.t -> t option
(** [None] when the length is wrong or the checksum rejects. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
