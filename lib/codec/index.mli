(** Molecule indices (Section II-C): 16 bases = 32 bits of internal
    address (unit id, column, checksum), XOR-masked so small ids do not
    emit homopolymer runs. The checksum turns a corrupted index into a
    clean erasure instead of a silent misplacement. *)

type t = { unit_id : int; column : int }

val nt_length : int
(** 16 bases. *)

val max_unit : int
val max_column : int

val checksum : unit_id:int -> column:int -> int

val encode : t -> Dna.Strand.t
(** Raises [Invalid_argument] out of range. *)

type error =
  | Truncated of { expected : int; got : int }
      (** strand length differs from the 16-base index *)
  | Bad_checksum of { stored : int; computed : int }

val error_message : error -> string

val decode : Dna.Strand.t -> (t, error) result
(** Structured rejection: the length is validated before any byte-level
    slicing, so truncated reads return [Truncated] rather than raising
    out of the [Bytes] primitives. *)

val decode_opt : Dna.Strand.t -> t option
(** {!decode} with the error collapsed to [None]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
