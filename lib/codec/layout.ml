(** Codeword layouts within an encoding unit (Section IV, Figure 2b).

    An encoding unit is a matrix of [rows] x [columns] bytes; each column
    becomes one molecule payload, and each of the [rows] codewords spans
    all columns. The layout decides which matrix cell holds byte [c] of
    codeword [r]:

    - [Baseline] (Organick et al. [25]): codeword r lives in row r. The
      trace-reconstruction error skew across row positions then hits some
      codewords much harder than others.
    - [Gini] (Lin et al. [23]): codeword r is spread diagonally, cell
      (row (r+c) mod rows, column c), so every codeword samples every row
      position exactly once and the skew is equalized. *)

type t = Baseline | Gini

let name = function Baseline -> "baseline" | Gini -> "gini"

(* Matrix row holding byte [c] of codeword [r]. Column is always [c]. *)
let row_of t ~rows ~codeword:r ~position:c =
  match t with
  | Baseline -> r
  | Gini -> (r + c) mod rows

let all = [ Baseline; Gini ]
