(** Codeword layouts within an encoding unit (Section IV, Figure 2b). *)

type t =
  | Baseline  (** Organick et al.: codeword r lives in matrix row r *)
  | Gini  (** Lin et al.: codeword r spread diagonally, equalizing the
              positional reliability skew *)

val name : t -> string

val row_of : t -> rows:int -> codeword:int -> position:int -> int
(** Matrix row holding byte [position] of codeword [codeword]; the
    column is always [position]. *)

val all : t list
