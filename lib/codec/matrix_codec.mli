(** The matrix encoding unit (Section IV-A, Figure 2b): data fills the
    matrix column-major, codewords are Reed-Solomon encoded along the
    chosen {!Layout}, every column becomes one molecule (index +
    payload). Missing columns decode as erasures; indels inside a
    molecule surface as substitutions across the codewords. *)

type unit_stats = {
  failed_codewords : int list;  (** codeword indices whose RS decode failed *)
  corrected_bytes : int;
  erased_columns : int list;
}

val rs_code : Params.t -> Rs.t

val encode_unit : Params.t -> layout:Layout.t -> unit_id:int -> Bytes.t -> Dna.Strand.t array
(** Encode at most [unit_data_bytes] (zero-padded) into [columns]
    strands. *)

val parse_strand : Params.t -> Dna.Strand.t -> (Index.t * Bytes.t) option
(** Split a reconstructed strand into index and payload bytes; [None]
    when the length is wrong or the index checksum fails. Never raises,
    even on truncated strands. *)

type error =
  | Wrong_column_count of { expected : int; got : int }
  | Invalid_params of string

val error_message : error -> string

val decode_unit :
  Params.t -> layout:Layout.t -> Bytes.t option array -> (Bytes.t * unit_stats, error) result
(** Decode one unit from its columns ([None] marks an erased molecule).
    Rows that fail RS decoding are returned uncorrected and reported in
    [unit_stats]; [Error] only on a malformed call (wrong column count
    or invalid params), never on corrupt data. *)
