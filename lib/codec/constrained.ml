(** Constrained coding (Section II-D).

    The early DNA-storage alternative to unconstrained coding: encode in
    base 3 and map each trit to one of the three bases *different from
    the previous base* (the Goldman rotation), so homopolymer runs never
    exceed length 1 — at the cost of information density (1.5 bits/nt
    here versus 2.0 for unconstrained coding). The toolkit implements it
    as a swappable payload transform so the density-versus-resilience
    trade-off the paper cites (Weindel et al.) can be measured; see the
    [density] benchmark.

    Block structure: every 3 bytes (24 bits) become 16 trits
    (3^16 > 2^24), so payloads grow by 16 bases per 3 bytes. *)

let trits_per_block = 16
let bytes_per_block = 3

(* Rotation table: next base for (previous base, trit). Row = previous
   base code (4 = start of strand), column = trit. Each row lists the
   three bases distinct from the previous one, in code order. *)
let rotation =
  [|
    [| 1; 2; 3 |] (* after A *);
    [| 0; 2; 3 |] (* after C *);
    [| 0; 1; 3 |] (* after G *);
    [| 0; 1; 2 |] (* after T *);
    [| 0; 1; 2 |] (* start: anything but an implicit leading T *);
  |]

(* Inverse: trit encoded by (previous base, current base). *)
let rotation_inv =
  let inv = Array.make_matrix 5 4 (-1) in
  Array.iteri
    (fun prev row -> Array.iteri (fun trit base -> inv.(prev).(base) <- trit) row)
    rotation;
  inv

let block_to_trits (b0 : int) (b1 : int) (b2 : int) : int array =
  let v = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
  let trits = Array.make trits_per_block 0 in
  let rest = ref v in
  for i = trits_per_block - 1 downto 0 do
    trits.(i) <- !rest mod 3;
    rest := !rest / 3
  done;
  trits

let trits_to_block (trits : int array) : int * int * int =
  let v = Array.fold_left (fun acc t -> (acc * 3) + t) 0 trits in
  ((v lsr 16) land 0xff, (v lsr 8) land 0xff, v land 0xff)

(* Bases needed to encode [n] bytes. *)
let encoded_length n = (n + bytes_per_block - 1) / bytes_per_block * trits_per_block

(* Information density of this code in bits per nucleotide. *)
let bits_per_nt = 8.0 *. float_of_int bytes_per_block /. float_of_int trits_per_block

let encode (data : Bytes.t) : Dna.Strand.t =
  let n = Bytes.length data in
  let byte i = if i < n then Char.code (Bytes.get data i) else 0 in
  let n_blocks = (n + bytes_per_block - 1) / bytes_per_block in
  let codes = Array.make (n_blocks * trits_per_block) 0 in
  let prev = ref 4 in
  for b = 0 to n_blocks - 1 do
    let trits = block_to_trits (byte (3 * b)) (byte ((3 * b) + 1)) (byte ((3 * b) + 2)) in
    Array.iteri
      (fun i trit ->
        let base = rotation.(!prev).(trit) in
        codes.((b * trits_per_block) + i) <- base;
        prev := base)
      trits
  done;
  Dna.Strand.of_codes codes

type error =
  | Too_short of { needed : int; got : int }
  | Repeated_base of { position : int }
      (** two consecutive equal bases: a detected, uncorrectable corruption *)

let error_message = function
  | Too_short { needed; got } ->
      Printf.sprintf "Constrained.decode: strand too short (needed %d bases, got %d)" needed got
  | Repeated_base { position } ->
      Printf.sprintf "Constrained.decode: repeated base at position %d (corrupt strand)" position

exception Corrupt of error

(* [decode ~n_bytes strand] recovers exactly [n_bytes] bytes, or a
   structured error when the strand is too short or violates the
   no-repeat constraint. *)
let decode ~n_bytes (strand : Dna.Strand.t) : (Bytes.t, error) result =
  let needed = encoded_length n_bytes in
  let got = Dna.Strand.length strand in
  if got < needed then Error (Too_short { needed; got })
  else begin
    let n_blocks = needed / trits_per_block in
    let out = Bytes.make (n_blocks * bytes_per_block) '\000' in
    let prev = ref 4 in
    try
      for b = 0 to n_blocks - 1 do
        let trits =
          Array.init trits_per_block (fun i ->
              let position = (b * trits_per_block) + i in
              let base = Dna.Strand.get_code strand position in
              let trit = rotation_inv.(!prev).(base) in
              if trit < 0 then raise (Corrupt (Repeated_base { position }));
              prev := base;
              trit)
        in
        let b0, b1, b2 = trits_to_block trits in
        Bytes.set out (3 * b) (Char.chr b0);
        Bytes.set out ((3 * b) + 1) (Char.chr b1);
        Bytes.set out ((3 * b) + 2) (Char.chr b2)
      done;
      Ok (Bytes.sub out 0 n_bytes)
    with Corrupt e -> Error e
  end

(* The constraint the code guarantees: no two consecutive equal bases. *)
let satisfies_constraint (s : Dna.Strand.t) = Dna.Strand.max_homopolymer s <= 1
