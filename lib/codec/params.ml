(** Codec configuration.

    One encoding unit is a [rows x (rs_data + rs_parity)] byte matrix:
    [rs_data] data molecules plus [rs_parity] ECC molecules, each molecule
    carrying [payload_nt] payload bases = [rows] bytes, preceded by its
    index. Defaults follow the paper's overall evaluation setting
    (payload length 120 bases). *)

type t = {
  payload_nt : int;  (** payload bases per molecule; multiple of 4 *)
  rs_data : int;  (** data columns (RS message length k) *)
  rs_parity : int;  (** ECC columns (RS parity nsym) *)
  scramble_seed : int;  (** randomizer seed for unconstrained coding *)
}

let default = { payload_nt = 120; rs_data = 20; rs_parity = 6; scramble_seed = 0x5eed }

let validate t =
  if t.payload_nt <= 0 || t.payload_nt mod 4 <> 0 then
    invalid_arg "Params: payload_nt must be a positive multiple of 4";
  if t.rs_data <= 0 || t.rs_parity <= 0 || t.rs_data + t.rs_parity > 255 then
    invalid_arg "Params: need 0 < rs_data, 0 < rs_parity, rs_data + rs_parity <= 255"

(* Bytes per molecule payload = codewords per unit. *)
let rows t = t.payload_nt / 4

(* Molecules per unit (RS codeword length n). *)
let columns t = t.rs_data + t.rs_parity

(* Data bytes carried by one unit. *)
let unit_data_bytes t = rows t * t.rs_data

(* Total bases of one encoded molecule: index + payload. *)
let strand_nt t = Index.nt_length + t.payload_nt

let pp fmt t =
  Format.fprintf fmt "payload=%dnt rows=%d k=%d parity=%d" t.payload_nt (rows t) t.rs_data
    t.rs_parity
