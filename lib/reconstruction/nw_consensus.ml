(** Needleman-Wunsch consensus (Section VII-C, the paper's own
    reconstruction algorithm).

    Every read of the cluster is globally aligned (Needleman-Wunsch,
    unit costs) against a reference — initially the longest read, since
    deletions dominate and the longest read is the most complete
    backbone. The alignments are stacked into a column profile: each
    reference position contributes a *match column* (votes per base,
    plus gap votes) and possibly an *insertion column* (reads that
    insert a base there). A refinement pass realigns all reads against
    the voted consensus, which removes the reference's own errors.

    The final consensus keeps exactly [target_len] columns — the ones
    with the strongest read support — which is the paper's rule of
    omitting the x most unreliable (indel-heavy) indexes when the
    alignment is longer than the expected strand, generalized to also
    recover weakly-supported columns when it is shorter. *)

type outcome = { consensus : Dna.Strand.t; trimmed : int; padded : int }

(* A round's candidate columns in reference order, as parallel flat
   arrays (only the first [n] slots are meaningful). Alignment is ~95%
   of a cluster's reconstruction time; everything around it stays in
   flat int arrays so the bookkeeping never becomes the bottleneck. *)
type profile = { codes : int array; support : int array; n : int }

(* One profile round over the first [n_reads] slots of [reads], filling
   caller-owned flat buffers: [counts]/[ins] must arrive zeroed,
   [codes]/[support] are overwritten. Returns the candidate count. Both
   the boxed and the pool-native surfaces run through here, so their
   profiles are bit-identical by construction. *)
let profile_core ?backend ?band (reference : Dna.Strand.t) (reads : Dna.Strand.t array) n_reads
    ~counts ~ins ~codes ~support : int =
  let m = Dna.Strand.length reference in
  (* Flat count tables: match column i holds votes at [i*5 .. i*5+4]
     (four bases plus the gap vote), insertion slot i at [i*4 .. i*4+3].
     Filled straight from the packed scripts — this loop runs once per
     read per refinement round and never allocates. *)
  for r = 0 to n_reads - 1 do
    let read = Array.unsafe_get reads r in
    let p = Dna.Alignment.align_packed ?backend ?band reference read in
    let ops = p.Dna.Alignment.ops in
    let pos = ref 0 in
    for k = p.Dna.Alignment.off to p.Dna.Alignment.lim - 1 do
      let e = Array.unsafe_get ops k in
      let kind = e lsr 4 in
      if kind <= 1 then begin
        (* match or substitute: vote the read's base *)
        let c = (!pos * 5) + (e land 3) in
        Array.unsafe_set counts c (Array.unsafe_get counts c + 1);
        incr pos
      end
      else if kind = 2 then begin
        let c = (!pos * 5) + 4 in
        Array.unsafe_set counts c (Array.unsafe_get counts c + 1);
        incr pos
      end
      else begin
        let c = (!pos * 4) + (e land 3) in
        Array.unsafe_set ins c (Array.unsafe_get ins c + 1)
      end
    done
  done;
  let n = ref 0 in
  let insertion_candidate i =
    let best = ref 0 in
    for b = 1 to 3 do
      if ins.((i * 4) + b) > ins.((i * 4) + !best) then best := b
    done;
    if ins.((i * 4) + !best) > 0 then begin
      codes.(!n) <- !best;
      support.(!n) <- ins.((i * 4) + !best);
      incr n
    end
  in
  for i = 0 to m - 1 do
    insertion_candidate i;
    let best = ref 0 in
    for b = 1 to 3 do
      if counts.((i * 5) + b) > counts.((i * 5) + !best) then best := b
    done;
    let gap = counts.((i * 5) + 4) in
    let sup = counts.((i * 5) + !best) in
    (* Record the column with its base support; a gap majority is the
       signal to drop it, encoded as low support relative to others. *)
    codes.(!n) <- !best;
    support.(!n) <- (if sup >= gap then sup else sup - gap);
    incr n
  done;
  insertion_candidate m;
  !n

(* Boxed entry point: fresh buffers per round. At most one insertion
   column before every match column plus one trailing slot: 2m + 1
   candidates. *)
let profile_columns ?backend ?band (reference : Dna.Strand.t) (reads : Dna.Strand.t array) :
    profile =
  let m = Dna.Strand.length reference in
  let counts = Array.make (m * 5) 0 in
  let ins = Array.make ((m + 1) * 4) 0 in
  let codes = Array.make ((2 * m) + 1) 0 in
  let support = Array.make ((2 * m) + 1) 0 in
  let n =
    profile_core ?backend ?band reference reads (Array.length reads) ~counts ~ins ~codes ~support
  in
  { codes; support; n }

(* Majority-rule vote used between refinement rounds: keep match columns
   that beat their gap votes and insertions backed by most reads. A pure
   function of an already-computed profile, so refinement rounds whose
   reference has stabilized can reuse the profile instead of realigning
   the whole cluster. *)
let vote_core (reference : Dna.Strand.t) ~n_reads ~codes ~support n ~scratch : Dna.Strand.t =
  let kept = ref 0 in
  for k = 0 to n - 1 do
    if 2 * support.(k) > n_reads then incr kept
  done;
  if !kept = 0 then reference
  else begin
    let j = ref 0 in
    for k = 0 to n - 1 do
      if 2 * support.(k) > n_reads then begin
        scratch.(!j) <- codes.(k);
        incr j
      end
    done;
    Dna.Strand.init_codes !kept (fun i -> Array.unsafe_get scratch i)
  end

let vote_columns (reference : Dna.Strand.t) ~n_reads (p : profile) : Dna.Strand.t =
  vote_core reference ~n_reads ~codes:p.codes ~support:p.support p.n ~scratch:(Array.make (max 1 p.n) 0)

(* In-place heapsort of [order.(0..n)] by (support desc, index asc) —
   the boxed selection comparator. Indices are distinct so the key
   order is strict, and any comparison sort yields the same sequence;
   heapsort keeps the pool path allocation-free. *)
let sort_order order n support =
  let after a b = support.(a) < support.(b) || (support.(a) = support.(b) && a > b) in
  let swap i j =
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && after order.(l + 1) order.(l) then l + 1 else l in
      if after order.(c) order.(i) then begin
        swap c i;
        sift c len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for len = n - 1 downto 1 do
    swap 0 len;
    sift 0 len
  done

(* Final round over flat buffers: write the kept codes into [out]
   (capacity >= target_len) and return [(written, padded)]. Keeps
   exactly [target_len] columns when over-long, strongest support first
   (ties resolved toward earlier columns). *)
let select_core ~codes ~support n target_len ~order ~keep ~out =
  if n <= target_len then begin
    Array.blit codes 0 out 0 n;
    (n, target_len - n)
  end
  else begin
    for i = 0 to n - 1 do
      order.(i) <- i
    done;
    sort_order order n support;
    Array.fill keep 0 n false;
    for k = 0 to target_len - 1 do
      keep.(order.(k)) <- true
    done;
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        out.(!j) <- codes.(i);
        incr j
      end
    done;
    (target_len, 0)
  end

let select_columns (p : profile) target_len =
  let out = Array.make (max p.n target_len) 0 in
  let written, padded =
    select_core ~codes:p.codes ~support:p.support p.n target_len ~order:(Array.make (max 1 p.n) 0)
      ~keep:(Array.make (max 1 p.n) false) ~out
  in
  (Array.sub out 0 written, padded)

let reconstruct_full ?backend ?band ?(refinements = 2) ~target_len
    (reads : Dna.Strand.t array) : outcome =
  let reads =
    if Array.for_all (fun r -> Dna.Strand.length r > 0) reads then reads
    else
      Array.of_list (List.filter (fun r -> Dna.Strand.length r > 0) (Array.to_list reads))
  in
  let n_reads = Array.length reads in
  if n_reads = 0 then invalid_arg "Nw_consensus.reconstruct: empty cluster";
  (* Longest read as the initial backbone. *)
  let reference = ref reads.(0) in
  Array.iter
    (fun r -> if Dna.Strand.length r > Dna.Strand.length !reference then reference := r)
    reads;
  (* Each round profiles the cluster once and votes; when the vote
     reproduces the reference the profile is already the final one
     (realigning against an unchanged reference yields the same columns),
     so later rounds — and the final selection pass — reuse it instead of
     realigning every read again. Output is identical to always
     re-profiling; only the redundant alignments are skipped. *)
  let columns = ref (profile_columns ?backend ?band !reference reads) in
  (try
     for _ = 1 to refinements do
       let voted = vote_columns !reference ~n_reads !columns in
       if Dna.Strand.equal voted !reference then raise Exit;
       reference := voted;
       columns := profile_columns ?backend ?band !reference reads
     done
   with Exit -> ());
  let columns = !columns in
  let n_candidates = columns.n in
  let codes, padded = select_columns columns target_len in
  let n = Array.length codes in
  if padded = 0 then
    { consensus = Dna.Strand.of_codes codes; trimmed = max 0 (n_candidates - target_len); padded = 0 }
  else begin
    let out = Array.make target_len 0 in
    Array.blit codes 0 out 0 n;
    { consensus = Dna.Strand.of_codes out; trimmed = 0; padded }
  end

let reconstruct ?backend ?band ?refinements ~target_len reads =
  (reconstruct_full ?backend ?band ?refinements ~target_len reads).consensus

(* ---------- pool-native surface ----------

   Same algorithm over [(pool, index)] views: reads are minted into the
   domain's {!Recon_arena} and every profile/vote/selection table lives
   in its grow-only buffers, so a cluster's reconstruction allocates
   only the alignment scripts and the consensus strands themselves.
   Bit-identical to the boxed path (the cores above are shared and the
   selection order is strict). *)

let reconstruct_pool_full ?backend ?band ?(refinements = 2) ~target_len pool (idxs : int array) :
    outcome =
  let open Recon_arena in
  let a = get () in
  (* The boxed path drops zero-length reads before aligning; minting
     with [keep_empty:false] reproduces that filter order-preservingly. *)
  let n_reads = mint a pool idxs ~keep_empty:false in
  if n_reads = 0 then invalid_arg "Nw_consensus.reconstruct: empty cluster";
  let reads = a.views in
  (* Longest read as the initial backbone (first-longest wins ties,
     like the boxed fold). *)
  let reference = ref (Array.unsafe_get reads 0) in
  for r = 1 to n_reads - 1 do
    if Dna.Strand.length reads.(r) > Dna.Strand.length !reference then reference := reads.(r)
  done;
  let profile () =
    let m = Dna.Strand.length !reference in
    a.counts <- ints a.counts (m * 5);
    Array.fill a.counts 0 (m * 5) 0;
    a.ins <- ints a.ins ((m + 1) * 4);
    Array.fill a.ins 0 ((m + 1) * 4) 0;
    a.codes <- ints a.codes ((2 * m) + 1);
    a.support <- ints a.support ((2 * m) + 1);
    profile_core ?backend ?band !reference reads n_reads ~counts:a.counts ~ins:a.ins
      ~codes:a.codes ~support:a.support
  in
  let n = ref (profile ()) in
  (try
     for _ = 1 to refinements do
       a.out <- ints a.out !n;
       let voted = vote_core !reference ~n_reads ~codes:a.codes ~support:a.support !n ~scratch:a.out in
       if Dna.Strand.equal voted !reference then raise Exit;
       reference := voted;
       n := profile ()
     done
   with Exit -> ());
  let n_candidates = !n in
  a.order <- ints a.order n_candidates;
  a.keep <- bools a.keep n_candidates;
  a.out <- ints a.out (max target_len n_candidates);
  let written, padded =
    select_core ~codes:a.codes ~support:a.support n_candidates target_len ~order:a.order
      ~keep:a.keep ~out:a.out
  in
  if padded = 0 then
    {
      consensus = Dna.Strand.init_codes target_len (fun i -> Array.unsafe_get a.out i);
      trimmed = max 0 (n_candidates - target_len);
      padded = 0;
    }
  else begin
    Array.fill a.out written (target_len - written) 0;
    {
      consensus = Dna.Strand.init_codes target_len (fun i -> Array.unsafe_get a.out i);
      trimmed = 0;
      padded;
    }
  end

let reconstruct_pool ?backend ?band ?refinements ~target_len pool idxs =
  (reconstruct_pool_full ?backend ?band ?refinements ~target_len pool idxs).consensus
