(** Needleman-Wunsch consensus (Section VII-C, the paper's own
    reconstruction algorithm).

    Every read of the cluster is globally aligned (Needleman-Wunsch,
    unit costs) against a reference — initially the longest read, since
    deletions dominate and the longest read is the most complete
    backbone. The alignments are stacked into a column profile: each
    reference position contributes a *match column* (votes per base,
    plus gap votes) and possibly an *insertion column* (reads that
    insert a base there). A refinement pass realigns all reads against
    the voted consensus, which removes the reference's own errors.

    The final consensus keeps exactly [target_len] columns — the ones
    with the strongest read support — which is the paper's rule of
    omitting the x most unreliable (indel-heavy) indexes when the
    alignment is longer than the expected strand, generalized to also
    recover weakly-supported columns when it is shorter. *)

type outcome = { consensus : Dna.Strand.t; trimmed : int; padded : int }

type column = { code : int; support : int }

(* One profile round: align [reads] to [reference] and produce ordered
   candidate columns with support. [keep_majority_only] applies the
   plain majority rule (used for intermediate refinement rounds). *)
let profile_columns (reference : Dna.Strand.t) (reads : Dna.Strand.t array) : column list * int =
  let m = Dna.Strand.length reference in
  let counts = Array.make_matrix m 5 0 in
  let ins = Array.make_matrix (m + 1) 4 0 in
  Array.iter
    (fun read ->
      let al = Dna.Alignment.align reference read in
      let pos = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Dna.Alignment.Match b | Dna.Alignment.Substitute (_, b) ->
              counts.(!pos).(Dna.Nucleotide.to_code b) <-
                counts.(!pos).(Dna.Nucleotide.to_code b) + 1;
              incr pos
          | Dna.Alignment.Delete _ ->
              counts.(!pos).(4) <- counts.(!pos).(4) + 1;
              incr pos
          | Dna.Alignment.Insert b ->
              ins.(!pos).(Dna.Nucleotide.to_code b) <- ins.(!pos).(Dna.Nucleotide.to_code b) + 1)
        al.Dna.Alignment.script)
    reads;
  let columns = ref [] in
  let n_majority = ref 0 in
  let insertion_candidate i =
    let best = ref 0 in
    for b = 1 to 3 do
      if ins.(i).(b) > ins.(i).(!best) then best := b
    done;
    if ins.(i).(!best) > 0 then
      columns := { code = !best; support = ins.(i).(!best) } :: !columns
  in
  for i = 0 to m - 1 do
    insertion_candidate i;
    let best = ref 0 in
    for b = 1 to 3 do
      if counts.(i).(b) > counts.(i).(!best) then best := b
    done;
    let gap = counts.(i).(4) in
    let support = counts.(i).(!best) in
    (* Record the column with its base support; a gap majority is the
       signal to drop it, encoded as low support relative to others. *)
    if support >= gap then incr n_majority;
    columns := { code = !best; support = (if support >= gap then support else support - gap) }
               :: !columns
  done;
  insertion_candidate m;
  (List.rev !columns, !n_majority)

(* Majority-rule consensus used between refinement rounds: keep match
   columns that beat their gap votes and insertions backed by most
   reads. *)
let majority_consensus (reference : Dna.Strand.t) (reads : Dna.Strand.t array) : Dna.Strand.t =
  let n_reads = Array.length reads in
  let columns, _ = profile_columns reference reads in
  let kept =
    List.filter_map
      (fun c -> if 2 * c.support > n_reads then Some c.code else None)
      columns
  in
  if kept = [] then reference else Dna.Strand.of_codes (Array.of_list kept)

(* Final round: keep exactly [target_len] columns, strongest support
   first (ties resolved toward earlier columns). *)
let select_columns columns target_len =
  let arr = Array.of_list columns in
  let n = Array.length arr in
  if n <= target_len then (Array.map (fun c -> c.code) arr, target_len - n)
  else begin
    let order = Array.init n (fun i -> i) in
    (* Sort by (support desc, index asc); keep the first target_len. *)
    Array.sort
      (fun a b ->
        match compare arr.(b).support arr.(a).support with 0 -> compare a b | c -> c)
      order;
    let keep = Array.make n false in
    for k = 0 to target_len - 1 do
      keep.(order.(k)) <- true
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then out := arr.(i).code :: !out
    done;
    (Array.of_list !out, 0)
  end

let reconstruct_full ?(refinements = 2) ~target_len (reads : Dna.Strand.t array) : outcome =
  let reads =
    Array.of_list (List.filter (fun r -> Dna.Strand.length r > 0) (Array.to_list reads))
  in
  if Array.length reads = 0 then invalid_arg "Nw_consensus.reconstruct: empty cluster";
  (* Longest read as the initial backbone. *)
  let reference = ref reads.(0) in
  Array.iter
    (fun r -> if Dna.Strand.length r > Dna.Strand.length !reference then reference := r)
    reads;
  for _ = 1 to refinements do
    reference := majority_consensus !reference reads
  done;
  let columns, _ = profile_columns !reference reads in
  let n_candidates = List.length columns in
  let codes, padded = select_columns columns target_len in
  let n = Array.length codes in
  if padded = 0 then
    { consensus = Dna.Strand.of_codes codes; trimmed = max 0 (n_candidates - target_len); padded = 0 }
  else begin
    let out = Array.make target_len 0 in
    Array.blit codes 0 out 0 n;
    { consensus = Dna.Strand.of_codes out; trimmed = 0; padded }
  end

let reconstruct ?refinements ~target_len reads =
  (reconstruct_full ?refinements ~target_len reads).consensus
