(** Needleman-Wunsch consensus (Section VII-C, the paper's own
    reconstruction algorithm).

    Every read of the cluster is globally aligned (Needleman-Wunsch,
    unit costs) against a reference — initially the longest read, since
    deletions dominate and the longest read is the most complete
    backbone. The alignments are stacked into a column profile: each
    reference position contributes a *match column* (votes per base,
    plus gap votes) and possibly an *insertion column* (reads that
    insert a base there). A refinement pass realigns all reads against
    the voted consensus, which removes the reference's own errors.

    The final consensus keeps exactly [target_len] columns — the ones
    with the strongest read support — which is the paper's rule of
    omitting the x most unreliable (indel-heavy) indexes when the
    alignment is longer than the expected strand, generalized to also
    recover weakly-supported columns when it is shorter. *)

type outcome = { consensus : Dna.Strand.t; trimmed : int; padded : int }

(* A round's candidate columns in reference order, as parallel flat
   arrays (only the first [n] slots are meaningful). Alignment is ~95%
   of a cluster's reconstruction time; everything around it stays in
   flat int arrays so the bookkeeping never becomes the bottleneck. *)
type profile = { codes : int array; support : int array; n : int }

(* One profile round: align [reads] to [reference] and produce ordered
   candidate columns with support. *)
let profile_columns ?backend ?band (reference : Dna.Strand.t) (reads : Dna.Strand.t array) :
    profile =
  let m = Dna.Strand.length reference in
  (* Flat count tables: match column i holds votes at [i*5 .. i*5+4]
     (four bases plus the gap vote), insertion slot i at [i*4 .. i*4+3].
     Filled straight from the packed scripts — this loop runs once per
     read per refinement round and never allocates. *)
  let counts = Array.make (m * 5) 0 in
  let ins = Array.make ((m + 1) * 4) 0 in
  Array.iter
    (fun read ->
      let p = Dna.Alignment.align_packed ?backend ?band reference read in
      let ops = p.Dna.Alignment.ops in
      let pos = ref 0 in
      for k = p.Dna.Alignment.off to p.Dna.Alignment.lim - 1 do
        let e = Array.unsafe_get ops k in
        let kind = e lsr 4 in
        if kind <= 1 then begin
          (* match or substitute: vote the read's base *)
          let c = (!pos * 5) + (e land 3) in
          Array.unsafe_set counts c (Array.unsafe_get counts c + 1);
          incr pos
        end
        else if kind = 2 then begin
          let c = (!pos * 5) + 4 in
          Array.unsafe_set counts c (Array.unsafe_get counts c + 1);
          incr pos
        end
        else begin
          let c = (!pos * 4) + (e land 3) in
          Array.unsafe_set ins c (Array.unsafe_get ins c + 1)
        end
      done)
    reads;
  (* At most one insertion column before every match column plus one
     trailing slot: 2m + 1 candidates. *)
  let codes = Array.make ((2 * m) + 1) 0 in
  let support = Array.make ((2 * m) + 1) 0 in
  let n = ref 0 in
  let insertion_candidate i =
    let best = ref 0 in
    for b = 1 to 3 do
      if ins.((i * 4) + b) > ins.((i * 4) + !best) then best := b
    done;
    if ins.((i * 4) + !best) > 0 then begin
      codes.(!n) <- !best;
      support.(!n) <- ins.((i * 4) + !best);
      incr n
    end
  in
  for i = 0 to m - 1 do
    insertion_candidate i;
    let best = ref 0 in
    for b = 1 to 3 do
      if counts.((i * 5) + b) > counts.((i * 5) + !best) then best := b
    done;
    let gap = counts.((i * 5) + 4) in
    let sup = counts.((i * 5) + !best) in
    (* Record the column with its base support; a gap majority is the
       signal to drop it, encoded as low support relative to others. *)
    codes.(!n) <- !best;
    support.(!n) <- (if sup >= gap then sup else sup - gap);
    incr n
  done;
  insertion_candidate m;
  { codes; support; n = !n }

(* Majority-rule vote used between refinement rounds: keep match columns
   that beat their gap votes and insertions backed by most reads. A pure
   function of an already-computed profile, so refinement rounds whose
   reference has stabilized can reuse the profile instead of realigning
   the whole cluster. *)
let vote_columns (reference : Dna.Strand.t) ~n_reads (p : profile) : Dna.Strand.t =
  let kept = ref 0 in
  for k = 0 to p.n - 1 do
    if 2 * p.support.(k) > n_reads then incr kept
  done;
  if !kept = 0 then reference
  else begin
    let out = Array.make !kept 0 in
    let j = ref 0 in
    for k = 0 to p.n - 1 do
      if 2 * p.support.(k) > n_reads then begin
        out.(!j) <- p.codes.(k);
        incr j
      end
    done;
    Dna.Strand.of_codes out
  end

(* Final round: keep exactly [target_len] columns, strongest support
   first (ties resolved toward earlier columns). *)
let select_columns (p : profile) target_len =
  if p.n <= target_len then (Array.sub p.codes 0 p.n, target_len - p.n)
  else begin
    let order = Array.init p.n (fun i -> i) in
    (* Sort by (support desc, index asc); keep the first target_len. *)
    Array.sort
      (fun a b ->
        match compare p.support.(b) p.support.(a) with 0 -> compare a b | c -> c)
      order;
    let keep = Array.make p.n false in
    for k = 0 to target_len - 1 do
      keep.(order.(k)) <- true
    done;
    let out = Array.make target_len 0 in
    let j = ref 0 in
    for i = 0 to p.n - 1 do
      if keep.(i) then begin
        out.(!j) <- p.codes.(i);
        incr j
      end
    done;
    (out, 0)
  end

let reconstruct_full ?backend ?band ?(refinements = 2) ~target_len
    (reads : Dna.Strand.t array) : outcome =
  let reads =
    if Array.for_all (fun r -> Dna.Strand.length r > 0) reads then reads
    else
      Array.of_list (List.filter (fun r -> Dna.Strand.length r > 0) (Array.to_list reads))
  in
  let n_reads = Array.length reads in
  if n_reads = 0 then invalid_arg "Nw_consensus.reconstruct: empty cluster";
  (* Longest read as the initial backbone. *)
  let reference = ref reads.(0) in
  Array.iter
    (fun r -> if Dna.Strand.length r > Dna.Strand.length !reference then reference := r)
    reads;
  (* Each round profiles the cluster once and votes; when the vote
     reproduces the reference the profile is already the final one
     (realigning against an unchanged reference yields the same columns),
     so later rounds — and the final selection pass — reuse it instead of
     realigning every read again. Output is identical to always
     re-profiling; only the redundant alignments are skipped. *)
  let columns = ref (profile_columns ?backend ?band !reference reads) in
  (try
     for _ = 1 to refinements do
       let voted = vote_columns !reference ~n_reads !columns in
       if Dna.Strand.equal voted !reference then raise Exit;
       reference := voted;
       columns := profile_columns ?backend ?band !reference reads
     done
   with Exit -> ());
  let columns = !columns in
  let n_candidates = columns.n in
  let codes, padded = select_columns columns target_len in
  let n = Array.length codes in
  if padded = 0 then
    { consensus = Dna.Strand.of_codes codes; trimmed = max 0 (n_candidates - target_len); padded = 0 }
  else begin
    let out = Array.make target_len 0 in
    Array.blit codes 0 out 0 n;
    { consensus = Dna.Strand.of_codes out; trimmed = 0; padded }
  end

let reconstruct ?backend ?band ?refinements ~target_len reads =
  (reconstruct_full ?backend ?band ?refinements ~target_len reads).consensus
