(** Evaluation metrics for trace reconstruction (Figures 3 and 6,
    Table I). *)

val per_index_error : (Dna.Strand.t * Dna.Strand.t) list -> float array
(** Over (original, reconstructed) pairs: for each index, the fraction
    of pairs whose reconstruction is wrong there (missing indexes count
    as wrong). *)

val average_error : float array -> float
(** Metric (ii): mean of a per-index profile. *)

val average_abs_deviation : float array -> float array -> float
(** Metric (iii): mean absolute difference between two profiles. *)

val perfect_count : (Dna.Strand.t * Dna.Strand.t) list -> int
(** Metric (iv): number of exactly recovered strands. *)
