(** Ensemble reconstruction: per-position majority vote over BMA,
    double-sided BMA and the NW consensus. Their error profiles peak in
    different regions (Figure 6), so the vote cancels a useful fraction
    of each, at triple the cost. *)

val reconstruct :
  ?lookahead:int -> ?refinements:int -> target_len:int -> Dna.Strand.t array -> Dna.Strand.t
