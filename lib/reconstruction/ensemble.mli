(** Ensemble reconstruction: per-position majority vote over BMA,
    double-sided BMA and the NW consensus. Their error profiles peak in
    different regions (Figure 6), so the vote cancels a useful fraction
    of each, at triple the cost. *)

val reconstruct :
  ?backend:Dna.Alignment.backend ->
  ?lookahead:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand.t array ->
  Dna.Strand.t
(** [backend] selects the alignment kernel of the NW-consensus member. *)

val majority : target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** Plain per-position plurality vote. Cannot fail: short reads stop
    voting, uncovered positions default to A. *)

val reconstruct_fallback :
  ?primary:(target_len:int -> Dna.Strand.t array -> Dna.Strand.t) ->
  target_len:int -> Dna.Strand.t array -> Dna.Strand.t option
(** Graceful-degradation chain: [primary] (if any), then NW, BMA and
    {!majority}, absorbing exceptions at each step. [None] only for an
    empty cluster or if every step raised. *)
