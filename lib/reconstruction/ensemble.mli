(** Ensemble reconstruction: per-position majority vote over BMA,
    double-sided BMA and the NW consensus. Their error profiles peak in
    different regions (Figure 6), so the vote cancels a useful fraction
    of each, at triple the cost. *)

val reconstruct :
  ?backend:Dna.Alignment.backend ->
  ?lookahead:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand.t array ->
  Dna.Strand.t
(** [backend] selects the alignment kernel of the NW-consensus member. *)

val majority : target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** Plain per-position plurality vote. Cannot fail: short reads stop
    voting, uncovered positions default to A. *)

val reconstruct_fallback :
  ?primary:(target_len:int -> Dna.Strand.t array -> Dna.Strand.t) ->
  target_len:int -> Dna.Strand.t array -> Dna.Strand.t option
(** Graceful-degradation chain: [primary] (if any), then NW, BMA and
    {!majority}, absorbing exceptions at each step. [None] only for an
    empty cluster or if every step raised. *)

val reconstruct_pool :
  ?backend:Dna.Alignment.backend ->
  ?lookahead:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand_pool.t ->
  int array ->
  Dna.Strand.t
(** [reconstruct] over a cluster index-slice of an arena read pool;
    bit-identical to the boxed vote on the same reads. *)

val majority_pool : target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t

val reconstruct_fallback_pool :
  ?primary:(target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t) ->
  target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t option
(** Pool-native fallback chain (primary -> NW -> BMA -> majority over
    the slice), absorbing exceptions at each step. [None] only for an
    empty slice or if every step raised. *)
