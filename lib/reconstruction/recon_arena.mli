(** Per-domain scratch for pool-native reconstruction: minted
    [(pool, index)] read views plus every flat consensus table (NW
    profile/candidates, BMA pointers/lookahead, output codes) in
    grow-only buffers reused across clusters.

    Buffers and views are valid only between one {!mint} and the next
    on the same domain. Each domain owns its arena (keyed through
    [Domain.DLS]); nothing here is thread-safe. *)

type t = {
  mutable views : Dna.Strand.t array;
  mutable counts : int array;
  mutable ins : int array;
  mutable codes : int array;
  mutable support : int array;
  mutable order : int array;
  mutable keep : bool array;
  mutable pointers : int array;
  mutable expected : int array;
  counts4 : int array;
  mutable out : int array;
}

val get : unit -> t
(** The calling domain's arena. *)

val ints : int array -> int -> int array
(** [ints buf n] is [buf] when it already holds [n] slots, else a fresh
    doubled buffer (contents unspecified); store it back into the arena
    field. *)

val bools : bool array -> int -> bool array

val mint : t -> Dna.Strand_pool.t -> int array -> keep_empty:bool -> int
(** Fill [views] with zero-copy views of the pool reads named by the
    index slice, skipping empty reads unless [keep_empty]; returns how
    many views are live. Invalidates the previous cluster's views. *)

val capacity_words : t -> int
(** Total buffer capacity currently held (in array slots) — an
    introspection hook for tests and allocation accounting. *)
