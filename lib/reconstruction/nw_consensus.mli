(** Needleman-Wunsch consensus (Section VII-C, the paper's own
    reconstruction algorithm): reads are aligned against a reference
    (initially the longest read), stacked into a column profile,
    majority-voted per column, refined by realigning against the vote,
    and finally exactly [target_len] columns are kept — the strongest-
    supported ones, the paper's rule of omitting the most indel-heavy
    indexes. *)

type outcome = {
  consensus : Dna.Strand.t;
  trimmed : int;  (** candidate columns dropped for exceeding the target *)
  padded : int;  (** positions padded because too few candidates existed *)
}

val reconstruct_full :
  ?backend:Dna.Alignment.backend ->
  ?band:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand.t array ->
  outcome
(** Default 2 refinement rounds. [backend]/[band] select the pairwise
    alignment kernel (see {!Dna.Alignment.align}); the consensus is
    identical for every choice. Refinement rounds whose vote reproduces
    the reference reuse the round's column profile instead of realigning
    the cluster. Raises [Invalid_argument] on an empty cluster. *)

val reconstruct :
  ?backend:Dna.Alignment.backend ->
  ?band:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand.t array ->
  Dna.Strand.t

val reconstruct_pool_full :
  ?backend:Dna.Alignment.backend ->
  ?band:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand_pool.t ->
  int array ->
  outcome
(** [reconstruct_full] over a cluster index-slice of an arena read
    pool: reads are zero-copy views and every profile/vote/selection
    table lives in the calling domain's {!Recon_arena} buffers, so only
    alignment scripts and the consensus strand allocate. Bit-identical
    to the boxed path on the same reads (the profile/vote/select cores
    are shared). Raises [Invalid_argument] when the slice holds no
    non-empty read. *)

val reconstruct_pool :
  ?backend:Dna.Alignment.backend ->
  ?band:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand_pool.t ->
  int array ->
  Dna.Strand.t
