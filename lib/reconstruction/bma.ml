(** Bitwise Majority Alignment with lookahead (Section VII-A, after
    Organick et al. [25]) and its double-sided variant (Section VII-B,
    after Lin et al. [23]).

    Every read keeps a pointer. Each step takes the majority vote of the
    pointed-at bases to fix the next consensus base; reads that disagree
    are realigned by guessing the most likely edit (substitution,
    insertion or deletion) from a small lookahead window. A wrong guess
    propagates: single-sided BMA grows less reliable toward the far end
    of the strand, and double-sided BMA meets in the middle, which is
    exactly the positional reliability skew that motivates the Gini and
    DNAMapper codecs. *)

(* Majority base over [reads] at their pointers shifted by [offset],
   restricted to indices in [active]. Returns -1 when nothing votes. *)
let majority_at reads pointers active ~offset =
  let counts = Array.make 4 0 in
  List.iter
    (fun i ->
      let p = pointers.(i) + offset in
      if p >= 0 && p < Dna.Strand.length reads.(i) then begin
        let c = Dna.Strand.get_code reads.(i) p in
        counts.(c) <- counts.(c) + 1
      end)
    active;
  let best = ref (-1) and best_count = ref 0 in
  for c = 0 to 3 do
    if counts.(c) > !best_count then begin
      best := c;
      best_count := counts.(c)
    end
  done;
  !best

(* Score a realignment hypothesis: how well the read starting at [start]
   matches the expected continuation [expected]. *)
let hypothesis_score read ~start expected =
  let n = Dna.Strand.length read in
  let score = ref 0 in
  List.iteri
    (fun k e ->
      if e >= 0 && start + k < n && start + k >= 0 && Dna.Strand.get_code read (start + k) = e then
        incr score)
    expected;
  !score

let reconstruct ?(lookahead = 2) ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  let n_reads = Array.length reads in
  if n_reads = 0 then invalid_arg "Bma.reconstruct: empty cluster";
  let pointers = Array.make n_reads 0 in
  let consensus = Array.make target_len 0 in
  let all = List.init n_reads (fun i -> i) in
  for t = 0 to target_len - 1 do
    let active = List.filter (fun i -> pointers.(i) < Dna.Strand.length reads.(i)) all in
    let c = majority_at reads pointers active ~offset:0 in
    let c = if c < 0 then 0 (* all reads exhausted; emit A *) else c in
    consensus.(t) <- c;
    (* Expected continuation after this consensus base: the majority of
       the agreeing reads' next bases. *)
    let agreeing =
      List.filter
        (fun i ->
          pointers.(i) < Dna.Strand.length reads.(i)
          && Dna.Strand.get_code reads.(i) pointers.(i) = c)
        active
    in
    let expected =
      List.init lookahead (fun k -> majority_at reads pointers agreeing ~offset:(k + 1))
    in
    List.iter
      (fun i ->
        let p = pointers.(i) in
        let read = reads.(i) in
        if Dna.Strand.get_code read p = c then pointers.(i) <- p + 1
        else begin
          (* Disagreement: guess the edit. Each hypothesis implies where
             the read should resume to match the expected continuation. *)
          let sub_score = hypothesis_score read ~start:(p + 1) expected in
          let ins_score = hypothesis_score read ~start:(p + 2) expected in
          let del_score = hypothesis_score read ~start:p expected in
          (* Insertion additionally requires the consensus base to appear
             right after the inserted one. *)
          let ins_ok = p + 1 < Dna.Strand.length read && Dna.Strand.get_code read (p + 1) = c in
          let ins_score = if ins_ok then ins_score + 1 else -1 in
          if sub_score >= ins_score && sub_score >= del_score then pointers.(i) <- p + 1
          else if del_score >= ins_score then () (* base belongs to the next position *)
          else pointers.(i) <- p + 2
        end)
      active
  done;
  Dna.Strand.of_codes consensus

(* Double-sided BMA: reconstruct the left half left-to-right and the
   right half right-to-left on reversed reads, then join. Errors now
   propagate only to the middle of the strand. *)
let reconstruct_double ?lookahead ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  let left_len = (target_len + 1) / 2 in
  let right_len = target_len - left_len in
  let left = reconstruct ?lookahead ~target_len:left_len reads in
  let reversed = Array.map Dna.Strand.rev reads in
  let right_rev = reconstruct ?lookahead ~target_len:right_len reversed in
  Dna.Strand.append left (Dna.Strand.rev right_rev)

(* ---------- pool-native surface ----------

   The same algorithm over the first [n] minted views in the domain
   arena, with all state (pointers, lookahead expectations, vote
   counts, output codes) in the arena's flat buffers. [rev] addresses
   each read back-to-front — the double-sided variant's reversed pass —
   without materializing reversed strands. The boxed [active] and
   [agreeing] lists are ascending-index, so the flat ascending loops
   below reproduce the same votes; membership is evaluated lazily but
   pointers.(i) only changes when slot i itself is processed, so each
   test sees the round-entry value, exactly like the frozen lists. *)

let core ~lookahead ~target_len (views : Dna.Strand.t array) n ~rev ~pointers ~expected ~counts
    ~put =
  let len i = Dna.Strand.length (Array.unsafe_get views i) in
  let code i p =
    let v = Array.unsafe_get views i in
    Dna.Strand.get_code v (if rev then Dna.Strand.length v - 1 - p else p)
  in
  Array.fill pointers 0 n 0;
  (* Majority base at the reads' pointers shifted by [offset], over the
     still-active reads — restricted, when [agree >= 0], to reads whose
     pointed-at base equals it. -1 when nothing votes. *)
  let majority ~offset ~agree =
    Array.fill counts 0 4 0;
    for i = 0 to n - 1 do
      let p0 = pointers.(i) in
      if p0 < len i && (agree < 0 || code i p0 = agree) then begin
        let p = p0 + offset in
        if p >= 0 && p < len i then begin
          let c = code i p in
          counts.(c) <- counts.(c) + 1
        end
      end
    done;
    let best = ref (-1) and best_count = ref 0 in
    for c = 0 to 3 do
      if counts.(c) > !best_count then begin
        best := c;
        best_count := counts.(c)
      end
    done;
    !best
  in
  let hypothesis_score i ~start =
    let ni = len i in
    let score = ref 0 in
    for k = 0 to lookahead - 1 do
      let e = expected.(k) in
      if e >= 0 && start + k < ni && start + k >= 0 && code i (start + k) = e then incr score
    done;
    !score
  in
  for t = 0 to target_len - 1 do
    let c = majority ~offset:0 ~agree:(-1) in
    let c = if c < 0 then 0 (* all reads exhausted; emit A *) else c in
    put t c;
    (* Expected continuation after this consensus base: the majority of
       the agreeing reads' next bases. *)
    for k = 0 to lookahead - 1 do
      expected.(k) <- majority ~offset:(k + 1) ~agree:c
    done;
    for i = 0 to n - 1 do
      let p = pointers.(i) in
      if p < len i then
        if code i p = c then pointers.(i) <- p + 1
        else begin
          (* Disagreement: guess the edit. Each hypothesis implies where
             the read should resume to match the expected continuation. *)
          let sub_score = hypothesis_score i ~start:(p + 1) in
          let ins_score = hypothesis_score i ~start:(p + 2) in
          let del_score = hypothesis_score i ~start:p in
          (* Insertion additionally requires the consensus base to appear
             right after the inserted one. *)
          let ins_ok = p + 1 < len i && code i (p + 1) = c in
          let ins_score = if ins_ok then ins_score + 1 else -1 in
          if sub_score >= ins_score && sub_score >= del_score then pointers.(i) <- p + 1
          else if del_score >= ins_score then () (* base belongs to the next position *)
          else pointers.(i) <- p + 2
        end
    done
  done

let reconstruct_pool ?(lookahead = 2) ~target_len pool (idxs : int array) : Dna.Strand.t =
  let open Recon_arena in
  let a = get () in
  let n = mint a pool idxs ~keep_empty:true in
  if n = 0 then invalid_arg "Bma.reconstruct: empty cluster";
  a.pointers <- ints a.pointers n;
  a.expected <- ints a.expected lookahead;
  a.out <- ints a.out target_len;
  core ~lookahead ~target_len a.views n ~rev:false ~pointers:a.pointers ~expected:a.expected
    ~counts:a.counts4
    ~put:(fun t c -> a.out.(t) <- c);
  Dna.Strand.init_codes target_len (fun i -> Array.unsafe_get a.out i)

let reconstruct_double_pool ?(lookahead = 2) ~target_len pool (idxs : int array) : Dna.Strand.t =
  let open Recon_arena in
  let a = get () in
  let n = mint a pool idxs ~keep_empty:true in
  if n = 0 then invalid_arg "Bma.reconstruct: empty cluster";
  let left_len = (target_len + 1) / 2 in
  let right_len = target_len - left_len in
  a.pointers <- ints a.pointers n;
  a.expected <- ints a.expected lookahead;
  a.out <- ints a.out target_len;
  let out = a.out in
  core ~lookahead ~target_len:left_len a.views n ~rev:false ~pointers:a.pointers
    ~expected:a.expected ~counts:a.counts4
    ~put:(fun t c -> out.(t) <- c);
  (* The reversed pass writes position t of the reversed right half,
     which is final position [target_len - 1 - t] — the same join as
     [append left (rev right_rev)], with no reversed copies. *)
  core ~lookahead ~target_len:right_len a.views n ~rev:true ~pointers:a.pointers
    ~expected:a.expected ~counts:a.counts4
    ~put:(fun t c -> out.(target_len - 1 - t) <- c);
  Dna.Strand.init_codes target_len (fun i -> Array.unsafe_get out i)
