(** Bitwise Majority Alignment with lookahead (Section VII-A, after
    Organick et al. [25]) and its double-sided variant (Section VII-B,
    after Lin et al. [23]).

    Every read keeps a pointer. Each step takes the majority vote of the
    pointed-at bases to fix the next consensus base; reads that disagree
    are realigned by guessing the most likely edit (substitution,
    insertion or deletion) from a small lookahead window. A wrong guess
    propagates: single-sided BMA grows less reliable toward the far end
    of the strand, and double-sided BMA meets in the middle, which is
    exactly the positional reliability skew that motivates the Gini and
    DNAMapper codecs. *)

(* Majority base over [reads] at their pointers shifted by [offset],
   restricted to indices in [active]. Returns -1 when nothing votes. *)
let majority_at reads pointers active ~offset =
  let counts = Array.make 4 0 in
  List.iter
    (fun i ->
      let p = pointers.(i) + offset in
      if p >= 0 && p < Dna.Strand.length reads.(i) then begin
        let c = Dna.Strand.get_code reads.(i) p in
        counts.(c) <- counts.(c) + 1
      end)
    active;
  let best = ref (-1) and best_count = ref 0 in
  for c = 0 to 3 do
    if counts.(c) > !best_count then begin
      best := c;
      best_count := counts.(c)
    end
  done;
  !best

(* Score a realignment hypothesis: how well the read starting at [start]
   matches the expected continuation [expected]. *)
let hypothesis_score read ~start expected =
  let n = Dna.Strand.length read in
  let score = ref 0 in
  List.iteri
    (fun k e ->
      if e >= 0 && start + k < n && start + k >= 0 && Dna.Strand.get_code read (start + k) = e then
        incr score)
    expected;
  !score

let reconstruct ?(lookahead = 2) ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  let n_reads = Array.length reads in
  if n_reads = 0 then invalid_arg "Bma.reconstruct: empty cluster";
  let pointers = Array.make n_reads 0 in
  let consensus = Array.make target_len 0 in
  let all = List.init n_reads (fun i -> i) in
  for t = 0 to target_len - 1 do
    let active = List.filter (fun i -> pointers.(i) < Dna.Strand.length reads.(i)) all in
    let c = majority_at reads pointers active ~offset:0 in
    let c = if c < 0 then 0 (* all reads exhausted; emit A *) else c in
    consensus.(t) <- c;
    (* Expected continuation after this consensus base: the majority of
       the agreeing reads' next bases. *)
    let agreeing =
      List.filter
        (fun i ->
          pointers.(i) < Dna.Strand.length reads.(i)
          && Dna.Strand.get_code reads.(i) pointers.(i) = c)
        active
    in
    let expected =
      List.init lookahead (fun k -> majority_at reads pointers agreeing ~offset:(k + 1))
    in
    List.iter
      (fun i ->
        let p = pointers.(i) in
        let read = reads.(i) in
        if Dna.Strand.get_code read p = c then pointers.(i) <- p + 1
        else begin
          (* Disagreement: guess the edit. Each hypothesis implies where
             the read should resume to match the expected continuation. *)
          let sub_score = hypothesis_score read ~start:(p + 1) expected in
          let ins_score = hypothesis_score read ~start:(p + 2) expected in
          let del_score = hypothesis_score read ~start:p expected in
          (* Insertion additionally requires the consensus base to appear
             right after the inserted one. *)
          let ins_ok = p + 1 < Dna.Strand.length read && Dna.Strand.get_code read (p + 1) = c in
          let ins_score = if ins_ok then ins_score + 1 else -1 in
          if sub_score >= ins_score && sub_score >= del_score then pointers.(i) <- p + 1
          else if del_score >= ins_score then () (* base belongs to the next position *)
          else pointers.(i) <- p + 2
        end)
      active
  done;
  Dna.Strand.of_codes consensus

(* Double-sided BMA: reconstruct the left half left-to-right and the
   right half right-to-left on reversed reads, then join. Errors now
   propagate only to the middle of the strand. *)
let reconstruct_double ?lookahead ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  let left_len = (target_len + 1) / 2 in
  let right_len = target_len - left_len in
  let left = reconstruct ?lookahead ~target_len:left_len reads in
  let reversed = Array.map Dna.Strand.rev reads in
  let right_rev = reconstruct ?lookahead ~target_len:right_len reversed in
  Dna.Strand.append left (Dna.Strand.rev right_rev)
