(** Trellis (BCJR-style) consensus refinement, after the coded trace
    reconstruction line of work behind the paper's evaluation dataset
    (Srinivasavaradhan et al.): each read contributes *soft* per-position
    base evidence from a forward-backward pass over an
    insertion/deletion/substitution HMM against the current consensus,
    and the combined posteriors refine it.

    Pays at sparse coverage (<= ~5 reads) on indel-moderate channels;
    see the regime note in the implementation. *)

type rates = { p_del : float; p_ins : float; p_sub : float }

val estimate_rates : ?backend:Dna.Alignment.backend -> Dna.Strand.t -> Dna.Strand.t array -> rates
(** Per-cluster channel rates from alignments against a reference. *)

val read_evidence : rates -> Dna.Strand.t -> Dna.Strand.t -> float array array
(** [(length reference) x 4] log-domain posterior base evidence of one
    read. *)

val refine_once : ?margin:float -> rates -> Dna.Strand.t -> Dna.Strand.t array -> Dna.Strand.t
(** One soft vote over all reads against the reference; a position only
    changes when the challenger beats the reference base's combined
    log-evidence by [margin] (default 3.0) nats. *)

val reconstruct :
  ?backend:Dna.Alignment.backend ->
  ?iterations:int ->
  ?refinements:int ->
  target_len:int ->
  Dna.Strand.t array ->
  Dna.Strand.t
(** Seed with the profile consensus (fixing the length), then apply
    [iterations] (default 2) trellis refinement passes. [backend]
    selects the alignment kernel used by the seed consensus and the
    rate estimation. *)
