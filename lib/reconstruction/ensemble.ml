(** Ensemble trace reconstruction: run BMA, double-sided BMA and the
    Needleman-Wunsch consensus on the same cluster and take a
    per-position majority vote over their outputs (ties defer to the NW
    consensus, the strongest individual algorithm).

    The three algorithms fail differently — BMA toward the tail, DBMA in
    the middle, NW uniformly — so their errors rarely coincide and the
    vote cancels a useful fraction of them, at triple the cost. *)

let reconstruct ?lookahead ?refinements ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  let bma = Bma.reconstruct ?lookahead ~target_len reads in
  let dbma = Bma.reconstruct_double ?lookahead ~target_len reads in
  let nw = Nw_consensus.reconstruct ?refinements ~target_len reads in
  Dna.Strand.init_codes target_len (fun i ->
      let a = Dna.Strand.get_code bma i
      and b = Dna.Strand.get_code dbma i
      and c = Dna.Strand.get_code nw i in
      if a = b then a else c)
