(** Ensemble trace reconstruction: run BMA, double-sided BMA and the
    Needleman-Wunsch consensus on the same cluster and take a
    per-position majority vote over their outputs (ties defer to the NW
    consensus, the strongest individual algorithm).

    The three algorithms fail differently — BMA toward the tail, DBMA in
    the middle, NW uniformly — so their errors rarely coincide and the
    vote cancels a useful fraction of them, at triple the cost. *)

(* Plain per-position plurality vote: the cheapest consensus that cannot
   fail. Reads shorter than [target_len] simply stop voting; positions no
   read covers default to A. The last line of the fallback chain. *)
let majority ~target_len (reads : Dna.Strand.t array) : Dna.Strand.t =
  Dna.Strand.init_codes target_len (fun i ->
      let votes = [| 0; 0; 0; 0 |] in
      Array.iter
        (fun r -> if i < Dna.Strand.length r then votes.(Dna.Strand.get_code r i) <- votes.(Dna.Strand.get_code r i) + 1)
        reads;
      let best = ref 0 in
      for c = 1 to 3 do
        if votes.(c) > votes.(!best) then best := c
      done;
      !best)

(* Graceful-degradation chain (NW -> BMA -> majority): try each
   reconstructor in decreasing order of quality, absorbing exceptions, so
   one crashing algorithm degrades a cluster's consensus instead of
   killing the whole decode. [None] only when even the majority vote
   fails (e.g. an empty cluster). *)
let reconstruct_fallback ?primary ~target_len (reads : Dna.Strand.t array) :
    Dna.Strand.t option =
  if Array.length reads = 0 then None
  else begin
    let attempts =
      (match primary with Some f -> [ f ] | None -> [])
      @ [
          (fun ~target_len reads -> Nw_consensus.reconstruct ~target_len reads);
          (fun ~target_len reads -> Bma.reconstruct ~target_len reads);
          majority;
        ]
    in
    List.find_map
      (fun f -> match f ~target_len reads with s -> Some s | exception _ -> None)
      attempts
  end

let reconstruct ?backend ?lookahead ?refinements ~target_len (reads : Dna.Strand.t array) :
    Dna.Strand.t =
  let bma = Bma.reconstruct ?lookahead ~target_len reads in
  let dbma = Bma.reconstruct_double ?lookahead ~target_len reads in
  let nw = Nw_consensus.reconstruct ?backend ?refinements ~target_len reads in
  Dna.Strand.init_codes target_len (fun i ->
      let a = Dna.Strand.get_code bma i
      and b = Dna.Strand.get_code dbma i
      and c = Dna.Strand.get_code nw i in
      if a = b then a else c)

(* ---------- pool-native surface ----------

   The same vote and fallback chain over [(pool, index)] cluster
   slices. Each member re-mints the slice into the domain arena (the
   members run strictly in sequence, so the re-mints never overlap);
   the boxed/pooled asymmetry between members — BMA sees empty reads as
   never-active, NW filters them out — is preserved by each member's
   own minting policy. *)

let majority_pool ~target_len pool (idxs : int array) : Dna.Strand.t =
  let a = Recon_arena.get () in
  let n = Recon_arena.mint a pool idxs ~keep_empty:true in
  let views = a.Recon_arena.views in
  let votes = a.Recon_arena.counts4 in
  Dna.Strand.init_codes target_len (fun i ->
      Array.fill votes 0 4 0;
      for r = 0 to n - 1 do
        let v = Array.unsafe_get views r in
        if i < Dna.Strand.length v then begin
          let c = Dna.Strand.get_code v i in
          votes.(c) <- votes.(c) + 1
        end
      done;
      let best = ref 0 in
      for c = 1 to 3 do
        if votes.(c) > votes.(!best) then best := c
      done;
      !best)

let reconstruct_fallback_pool ?primary ~target_len pool (idxs : int array) :
    Dna.Strand.t option =
  if Array.length idxs = 0 then None
  else begin
    let attempts =
      (match primary with Some f -> [ f ] | None -> [])
      @ [
          (fun ~target_len pool idxs -> Nw_consensus.reconstruct_pool ~target_len pool idxs);
          (fun ~target_len pool idxs -> Bma.reconstruct_pool ~target_len pool idxs);
          majority_pool;
        ]
    in
    List.find_map
      (fun f -> match f ~target_len pool idxs with s -> Some s | exception _ -> None)
      attempts
  end

let reconstruct_pool ?backend ?lookahead ?refinements ~target_len pool (idxs : int array) :
    Dna.Strand.t =
  let bma = Bma.reconstruct_pool ?lookahead ~target_len pool idxs in
  let dbma = Bma.reconstruct_double_pool ?lookahead ~target_len pool idxs in
  let nw = Nw_consensus.reconstruct_pool ?backend ?refinements ~target_len pool idxs in
  Dna.Strand.init_codes target_len (fun i ->
      let a = Dna.Strand.get_code bma i
      and b = Dna.Strand.get_code dbma i
      and c = Dna.Strand.get_code nw i in
      if a = b then a else c)
