(** Trellis (BCJR-style) consensus refinement, after the coded trace
    reconstruction line of work the paper's evaluation dataset comes
    from (Srinivasavaradhan et al. [35]).

    Each read is modeled as the output of an
    insertion/deletion/substitution HMM over the current consensus
    estimate: hidden state = (consensus position i, read position j),
    with transitions

      delete   (i, j) -> (i+1, j)        probability p_del
      insert   (i, j) -> (i, j+1)        probability p_ins, base uniform
      emit     (i, j) -> (i+1, j+1)      probability 1 - p_del - p_ins,
                                         base = consensus base w.p. 1 - p_sub

    The forward-backward pass yields, for every consensus position, a
    posterior over the base that produced the read there; multiplying
    the per-read posteriors (summing log-domain evidence) and taking the
    argmax gives a refined consensus. Unlike the hard majority votes of
    BMA and the profile consensus, every read contributes *soft*
    evidence weighted by how well it aligns — the value proposition of
    trellis-based reconstruction. Error rates are estimated per cluster
    from alignments against the reference.

    Regime: the soft evidence pays at *sparse coverage* (<= ~5 reads),
    where hard votes are thin; at comfortable coverage the profile
    consensus is already near-exact and refinement only risks churn, and
    on strongly bursty channels this three-state HMM (no burst state)
    mis-models the noise and the refinement is counterproductive — use
    the profile consensus there. *)

let neg_inf = neg_infinity

let log_add a b =
  if a = neg_inf then b
  else if b = neg_inf then a
  else begin
    let hi = max a b and lo = min a b in
    hi +. log1p (exp (lo -. hi))
  end

type rates = { p_del : float; p_ins : float; p_sub : float }

(* Estimate channel rates from the reads' alignments to the reference;
   floors keep the trellis from becoming overconfident on small
   clusters. *)
let estimate_rates ?backend reference (reads : Dna.Strand.t array) : rates =
  let m = ref 0 and s = ref 0 and d = ref 0 and i = ref 0 in
  Array.iter
    (fun read ->
      let mm, ss, dd, ii = Dna.Alignment.counts (Dna.Alignment.align ?backend reference read) in
      m := !m + mm;
      s := !s + ss;
      d := !d + dd;
      i := !i + ii)
    reads;
  let total = float_of_int (max 1 (!m + !s + !d + !i)) in
  let clamp x = min 0.3 (max 0.005 x) in
  {
    p_del = clamp (float_of_int !d /. total);
    p_ins = clamp (float_of_int !i /. total);
    p_sub = clamp (float_of_int !s /. total);
  }

(* One read's log-domain base evidence against [reference]: a
   (len x 4) matrix of posterior log-weights for the base occupying each
   consensus position. *)
let read_evidence rates (reference : Dna.Strand.t) (read : Dna.Strand.t) : float array array =
  let l = Dna.Strand.length reference and n = Dna.Strand.length read in
  let lp_del = log rates.p_del
  and lp_ins = log rates.p_ins +. log 0.25
  and lp_diag = log (max 1e-9 (1.0 -. rates.p_del -. rates.p_ins)) in
  let lp_match = lp_diag +. log (1.0 -. rates.p_sub)
  and lp_mismatch = lp_diag +. log (rates.p_sub /. 3.0) in
  let idx i j = (i * (n + 1)) + j in
  let fwd = Array.make ((l + 1) * (n + 1)) neg_inf in
  let bwd = Array.make ((l + 1) * (n + 1)) neg_inf in
  fwd.(idx 0 0) <- 0.0;
  for i = 0 to l do
    for j = 0 to n do
      let here = fwd.(idx i j) in
      if here > neg_inf then begin
        if i < l then fwd.(idx (i + 1) j) <- log_add fwd.(idx (i + 1) j) (here +. lp_del);
        if j < n then fwd.(idx i (j + 1)) <- log_add fwd.(idx i (j + 1)) (here +. lp_ins);
        if i < l && j < n then begin
          let e =
            if Dna.Strand.get_code reference i = Dna.Strand.get_code read j then lp_match
            else lp_mismatch
          in
          fwd.(idx (i + 1) (j + 1)) <- log_add fwd.(idx (i + 1) (j + 1)) (here +. e)
        end
      end
    done
  done;
  bwd.(idx l n) <- 0.0;
  for i = l downto 0 do
    for j = n downto 0 do
      let acc = ref neg_inf in
      if i < l then begin
        let v = bwd.(idx (i + 1) j) in
        if v > neg_inf then acc := log_add !acc (v +. lp_del)
      end;
      if j < n then begin
        let v = bwd.(idx i (j + 1)) in
        if v > neg_inf then acc := log_add !acc (v +. lp_ins)
      end;
      if i < l && j < n then begin
        let v = bwd.(idx (i + 1) (j + 1)) in
        if v > neg_inf then begin
          let e =
            if Dna.Strand.get_code reference i = Dna.Strand.get_code read j then lp_match
            else lp_mismatch
          in
          acc := log_add !acc (v +. e)
        end
      end;
      if not (i = l && j = n) then bwd.(idx i j) <- !acc
    done
  done;
  let total = fwd.(idx l n) in
  let evidence = Array.make_matrix l 4 neg_inf in
  (* Posterior of the diagonal transition consuming read base y_j at
     consensus position i: the evidence that position i "is" base y_j.
     The emission term uses the *hypothetical* base b, not the current
     reference base, so evidence can overturn the reference. *)
  for i = 0 to l - 1 do
    for j = 0 to n - 1 do
      let f = fwd.(idx i j) and b = bwd.(idx (i + 1) (j + 1)) in
      if f > neg_inf && b > neg_inf then begin
        let y = Dna.Strand.get_code read j in
        for base = 0 to 3 do
          let e = if base = y then lp_match else lp_mismatch in
          evidence.(i).(base) <- log_add evidence.(i).(base) (f +. e +. b -. total)
        done
      end
    done;
    (* Deletion mass: the read may skip position i entirely; spread it
       uniformly so a deleted position does not fabricate preference. *)
    ()
  done;
  evidence

(* Refine [reference] by one soft vote over all reads. A position is
   changed only when the challenger's combined log-evidence beats the
   reference base's by [margin] nats: the reference (the profile
   consensus) is already strong, and ambiguous soft evidence — which
   concentrates exactly where indel drift confuses the trellis — must
   not be allowed to churn it. *)
let refine_once ?(margin = 6.0) rates reference (reads : Dna.Strand.t array) : Dna.Strand.t =
  let l = Dna.Strand.length reference in
  let scores = Array.make_matrix l 4 0.0 in
  Array.iter
    (fun read ->
      let ev = read_evidence rates reference read in
      for i = 0 to l - 1 do
        (* Normalize the read's evidence at position i into a proper
           distribution with a floor, then accumulate log-evidence. *)
        let z = Array.fold_left log_add neg_inf ev.(i) in
        for b = 0 to 3 do
          let p = if z = neg_inf then 0.25 else exp (ev.(i).(b) -. z) in
          scores.(i).(b) <- scores.(i).(b) +. log (max 1e-6 (0.02 +. (0.92 *. p)))
        done
      done)
    reads;
  Dna.Strand.init_codes l (fun i ->
      let current = Dna.Strand.get_code reference i in
      let best = ref 0 in
      for b = 1 to 3 do
        if scores.(i).(b) > scores.(i).(!best) then best := b
      done;
      if !best <> current && scores.(i).(!best) -. scores.(i).(current) > margin then !best
      else current)

(* Full reconstruction: seed with the profile consensus (which fixes the
   length), then apply soft trellis refinement passes. *)
let reconstruct ?backend ?(iterations = 2) ?refinements ~target_len
    (reads : Dna.Strand.t array) : Dna.Strand.t =
  let reference = ref (Nw_consensus.reconstruct ?backend ?refinements ~target_len reads) in
  if Array.length reads > 1 then begin
    let rates = estimate_rates ?backend !reference reads in
    for _ = 1 to iterations do
      reference := refine_once rates !reference reads
    done
  end;
  !reference
