(** Per-domain scratch for pool-native reconstruction.

    One grow-only arena per worker domain (keyed through [Domain.DLS],
    like the alignment scratch in {!Dna.Alignment}): a cluster's reads
    are minted as zero-copy [(pool, index)] views into [views], and
    every flat table the consensus algorithms need — NW profile counts
    and candidate columns, BMA pointers and lookahead expectations, the
    consensus output codes — lives in reusable buffers that grow to the
    largest cluster seen and are allocation-free afterwards.

    Lifetime rules: buffers and minted views are valid only between the
    [mint] that started a cluster and the next [mint] on the same
    domain; views follow {!Dna.Strand_pool}'s aliasing discipline (mint
    only after the pool has stopped growing). Nothing here is
    thread-safe — each domain owns its arena. *)

type t = {
  mutable views : Dna.Strand.t array;  (** minted cluster reads; first [mint]-count slots live *)
  mutable counts : int array;  (** NW match-column votes, [m*5] *)
  mutable ins : int array;  (** NW insertion-column votes, [(m+1)*4] *)
  mutable codes : int array;  (** NW candidate codes, [2m+1] *)
  mutable support : int array;  (** NW candidate support, [2m+1] *)
  mutable order : int array;  (** NW selection order, [2m+1] *)
  mutable keep : bool array;  (** NW selection flags, [2m+1] *)
  mutable pointers : int array;  (** BMA per-read pointers *)
  mutable expected : int array;  (** BMA lookahead expectation window *)
  counts4 : int array;  (** 4-way base-vote counts (BMA, majority) *)
  mutable out : int array;  (** consensus output codes, [target_len] *)
}

let create () =
  {
    views = [||];
    counts = [||];
    ins = [||];
    codes = [||];
    support = [||];
    order = [||];
    keep = [||];
    pointers = [||];
    expected = [||];
    counts4 = Array.make 4 0;
    out = [||];
  }

let key = Domain.DLS.new_key create
let get () = Domain.DLS.get key

(* Grow-only capacity: at least [n] slots, doubling to amortize. The
   caller stores the result back into the arena field. *)
let ints buf n = if Array.length buf >= n then buf else Array.make (max n (2 * Array.length buf)) 0

let bools buf n =
  if Array.length buf >= n then buf else Array.make (max n (2 * Array.length buf)) false

let mint a pool (idxs : int array) ~keep_empty =
  let n = Array.length idxs in
  if Array.length a.views < n then
    a.views <- Array.make (max n (2 * Array.length a.views)) Dna.Strand.empty;
  let m = ref 0 in
  for k = 0 to n - 1 do
    let v = Dna.Strand_pool.get pool (Array.unsafe_get idxs k) in
    if keep_empty || Dna.Strand.length v > 0 then begin
      a.views.(!m) <- v;
      incr m
    end
  done;
  !m

let capacity_words a =
  Array.length a.views + Array.length a.counts + Array.length a.ins + Array.length a.codes
  + Array.length a.support + Array.length a.order + Array.length a.keep
  + Array.length a.pointers + Array.length a.expected + Array.length a.counts4
  + Array.length a.out
