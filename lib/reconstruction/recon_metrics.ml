(** Evaluation metrics for trace reconstruction (Sections V-A and VII).

    The paper's Figures 3 and 6 plot, per index, the proportion of bases
    wrongly reconstructed; Table I summarizes with (ii) the average error
    rate over all indexes, (iii) the average absolute deviation from a
    reference profile, and (iv) the number of perfectly reconstructed
    strands. *)

(* Per-index error profile over (original, reconstructed) pairs. A
   missing index (shorter reconstruction) counts as an error. *)
let per_index_error (pairs : (Dna.Strand.t * Dna.Strand.t) list) : float array =
  match pairs with
  | [] -> [||]
  | (first, _) :: _ ->
      let len = Dna.Strand.length first in
      let errors = Array.make len 0 in
      let total = List.length pairs in
      List.iter
        (fun (original, reconstructed) ->
          for i = 0 to Dna.Strand.length original - 1 do
            if i < len then begin
              let wrong =
                i >= Dna.Strand.length reconstructed
                || Dna.Strand.get_code original i <> Dna.Strand.get_code reconstructed i
              in
              if wrong then errors.(i) <- errors.(i) + 1
            end
          done)
        pairs;
      Array.map (fun e -> float_of_int e /. float_of_int total) errors

(* Metric (ii): mean of the per-index error profile. *)
let average_error profile =
  if Array.length profile = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 profile /. float_of_int (Array.length profile)

(* Metric (iii): mean absolute difference between two profiles. *)
let average_abs_deviation a b =
  let n = min (Array.length a) (Array.length b) in
  if n = 0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. abs_float (a.(i) -. b.(i))
    done;
    !s /. float_of_int n
  end

(* Metric (iv): number of exactly recovered strands. *)
let perfect_count pairs =
  List.fold_left
    (fun acc (original, reconstructed) ->
      if Dna.Strand.equal original reconstructed then acc + 1 else acc)
    0 pairs
