(** Bitwise Majority Alignment with lookahead (Organick et al.,
    Section VII-A) and the double-sided variant (Lin et al.,
    Section VII-B).

    Misalignment guesses propagate: single-sided BMA grows unreliable
    toward the far end of the strand; double-sided BMA meets in the
    middle — the positional reliability skew behind Gini/DNAMapper. *)

val reconstruct : ?lookahead:int -> target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** Left-to-right BMA-lookahead consensus of exactly [target_len]
    bases (default lookahead window 2). Raises [Invalid_argument] on an
    empty cluster. *)

val reconstruct_double : ?lookahead:int -> target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** Double-sided BMA: the left half reconstructed left-to-right, the
    right half right-to-left, joined in the middle. *)

val reconstruct_pool :
  ?lookahead:int -> target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t
(** [reconstruct] over a cluster index-slice of an arena read pool:
    reads are zero-copy views, pointers/lookahead/output state lives in
    the calling domain's {!Recon_arena}. Bit-identical to the boxed
    path on the same reads. *)

val reconstruct_double_pool :
  ?lookahead:int -> target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t
(** Pool-native double-sided BMA: the reversed pass addresses reads
    back-to-front instead of materializing reversed copies. *)
