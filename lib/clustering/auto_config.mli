(** Automatic configuration of the clustering thresholds (Section VI-B,
    Figure 5): probe reads are compared against a larger sample, the
    probe->closest pairs are verified by edit distance to trace the
    same-cluster (sibling) mode, and the thresholds bracket it. *)

type config = {
  theta_low : int;
  theta_high : int;
  edit_threshold : int;
  distances : int array;  (** all sampled signature distances (Figure 5 data) *)
}

type sample = {
  all : int array;
  nearest : (int * int * int) array;  (** (probe, close target, distance) *)
}

val sample_distances :
  Cluster.params -> Dna.Rng.t -> Dna.Strand.t array -> n_probes:int -> n_targets:int -> sample

val configure :
  ?n_probes:int -> ?n_targets:int -> Cluster.params -> Dna.Rng.t -> Dna.Strand.t array -> config
(** Fit all three thresholds from the data. *)

val apply : config -> Cluster.params -> Cluster.params

val figure5_series : config -> int array
(** The sampled distances sorted ascending: the y-series of Figure 5. *)
