(** Clustering quality metrics. *)

val accuracy : ?gamma:float -> truth:int array -> int array list -> float
(** Rashtchian et al.'s accuracy: the fraction of ground-truth clusters
    for which some computed cluster contains at least a [gamma] fraction
    (default 1.0) of their reads and no foreign reads. *)

val purity : truth:int array -> int array list -> float
(** Fraction of reads whose cluster's majority label matches their own. *)

val rand_index : truth:int array -> int array list -> float
(** Pairwise agreement between computed and true same-cluster relations. *)
