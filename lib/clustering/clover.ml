(** A Clover-style tree-based clustering algorithm (Qu et al., cited in
    Section X as an alternative clustering module).

    One streaming pass: each read's prefix of [key_len] bases is looked
    up in a 4-ary trie of existing cluster keys, allowing a bounded
    number of edits during the walk; a hit joins the read to that
    cluster, a miss creates a new cluster keyed by the read. No
    Levenshtein computations at all and memory linear in the number of
    clusters — the trade-off is sensitivity to prefix errors, bought
    back by also probing a second key drawn from the middle of the
    read. *)

type params = {
  key_len : int;  (** bases per trie key *)
  max_edits : int;  (** edit budget during a trie walk *)
  second_probe : bool;  (** also key on a mid-read window *)
}

let default_params = { key_len = 14; max_edits = 2; second_probe = true }

(* 4-ary trie storing cluster ids at depth [key_len]. *)
type node = { mutable cluster : int; children : node option array }

let fresh_node () = { cluster = -1; children = Array.make 4 None }

type t = {
  params : params;
  root_head : node;
  root_mid : node;
  mutable n_clusters : int;
  mutable members : int list array;  (** cluster id -> read indices *)
}

let create ?(params = default_params) () =
  { params; root_head = fresh_node (); root_mid = fresh_node (); n_clusters = 0; members = Array.make 64 [] }

(* Walk the trie matching [codes.(pos..)], with an edit budget spent on
   substitutions (take a different child), deletions (skip an input
   base) and insertions (descend without consuming). Returns the first
   cluster found at full depth. *)
let rec search params node (codes : int array) ~pos ~depth ~budget =
  if depth = params.key_len then if node.cluster >= 0 then Some node.cluster else None
  else begin
    let try_child c ~next_pos ~cost =
      if budget - cost < 0 then None
      else
        match node.children.(c) with
        | None -> None
        | Some child ->
            search params child codes ~pos:next_pos ~depth:(depth + 1) ~budget:(budget - cost)
    in
    let exact =
      if pos < Array.length codes then try_child codes.(pos) ~next_pos:(pos + 1) ~cost:0
      else None
    in
    match exact with
    | Some _ as hit -> hit
    | None ->
        (* Substitution: a different child, consuming the base. *)
        let rec sub c =
          if c > 3 then None
          else if pos < Array.length codes && c = codes.(pos) then sub (c + 1)
          else
            match try_child c ~next_pos:(min (pos + 1) (Array.length codes)) ~cost:1 with
            | Some _ as hit -> hit
            | None -> sub (c + 1)
        in
        (match sub 0 with
        | Some _ as hit -> hit
        | None ->
            (* Deletion in the read: skip an input base, stay at depth. *)
            let deletion =
              if pos < Array.length codes && budget > 0 then
                search params node codes ~pos:(pos + 1) ~depth ~budget:(budget - 1)
              else None
            in
            (match deletion with
            | Some _ as hit -> hit
            | None ->
                (* Insertion in the read: descend on any child without
                   consuming. Covered by the substitution branch above
                   when the budget allows; nothing more to try. *)
                None))
  end

(* Insert the exact key path for a cluster. *)
let insert params root (codes : int array) cluster =
  let node = ref root in
  for depth = 0 to params.key_len - 1 do
    let c = if depth < Array.length codes then codes.(depth) else 0 in
    let child =
      match !node.children.(c) with
      | Some child -> child
      | None ->
          let child = fresh_node () in
          !node.children.(c) <- Some child;
          child
    in
    node := child
  done;
  if !node.cluster < 0 then !node.cluster <- cluster

let key_codes t (read : Dna.Strand.t) ~mid =
  let n = Dna.Strand.length read in
  let offset = if mid then n / 2 else 0 in
  Array.init (min t.params.key_len (max 0 (n - offset))) (fun i ->
      Dna.Strand.get_code read (offset + i))

let add_member t cluster idx =
  if cluster >= Array.length t.members then begin
    let grown = Array.make (2 * (cluster + 1)) [] in
    Array.blit t.members 0 grown 0 (Array.length t.members);
    t.members <- grown
  end;
  t.members.(cluster) <- idx :: t.members.(cluster)

(* Assign one read: search head key, then optionally the mid key; on a
   miss open a new cluster and index both keys. *)
let assign t idx (read : Dna.Strand.t) =
  let head = key_codes t read ~mid:false in
  let found =
    match search t.params t.root_head head ~pos:0 ~depth:0 ~budget:t.params.max_edits with
    | Some c -> Some c
    | None ->
        if t.params.second_probe then
          search t.params t.root_mid (key_codes t read ~mid:true) ~pos:0 ~depth:0
            ~budget:t.params.max_edits
        else None
  in
  match found with
  | Some cluster -> add_member t cluster idx
  | None ->
      let cluster = t.n_clusters in
      t.n_clusters <- t.n_clusters + 1;
      insert t.params t.root_head head cluster;
      if t.params.second_probe then insert t.params t.root_mid (key_codes t read ~mid:true) cluster;
      add_member t cluster idx

(* Cluster all reads in one pass; returns the same result shape as
   {!Cluster.run} (without signature statistics). *)
let run ?params (reads : Dna.Strand.t array) : Cluster.result =
  let t = create ?params () in
  Array.iteri (fun i r -> assign t i r) reads;
  let clusters = ref [] in
  for c = t.n_clusters - 1 downto 0 do
    clusters := Array.of_list (List.rev t.members.(c)) :: !clusters
  done;
  let assignment = Array.make (Array.length reads) 0 in
  List.iter (fun members -> Array.iter (fun i -> assignment.(i) <- members.(0)) members) !clusters;
  {
    Cluster.assignment;
    clusters = !clusters;
    stats =
      {
        Cluster.signature_comparisons = 0;
        edit_comparisons = 0;
        merges = Array.length reads - t.n_clusters;
        signature_time = 0.0;
        clustering_time = 0.0;
      };
  }
