(** The distributed clustering algorithm of Rashtchian et al. [31]
    (Section VI), with the paper's w-gram variant (Section VI-C).

    Every read starts as a singleton cluster. Each round:

    1. a random anchor of [anchor_len] bases is drawn, and a random
       representative is chosen per cluster;
    2. clusters are partitioned by the [partition_len] bases following
       the anchor's first occurrence in the representative;
    3. within a partition, representatives are summarized by signatures
       against a fresh random gram set, and pairs are compared: below
       [theta_low] they merge outright, above [theta_high] they never
       merge, and in between a (bounded) edit-distance comparison decides.

    Partitions are processed in parallel; merge decisions are applied to
    a union-find afterwards, so the result is independent of worker
    interleaving. *)

type params = {
  rounds : int;  (** maximum rounds; the loop stops early once converged *)
  stall_rounds : int;  (** stop after this many consecutive merge-free rounds *)
  anchor_len : int;
  partition_len : int;
  gram_len : int;  (** q: signatures cover the 4^q gram dictionary *)
  kind : Signature.kind;
  theta_low : int;
  theta_high : int;
  edit_threshold : int;  (** merge when edit distance is at most this *)
  distance_backend : Dna.Distance.backend;
      (** kernel family behind the merge test's [levenshtein_leq]; [Auto]
          resolves to the bit-parallel kernels, [Scalar] forces the DP
          oracle (benchmark baseline) *)
  domains : int;
}

let default_params ?(kind = Signature.Qgram) ~read_len () =
  {
    rounds = 160;
    stall_rounds = 14;
    anchor_len = 3;
    partition_len = 4;
    gram_len = 4;
    kind;
    (* Conservative defaults; use [Auto_config] to fit them to the data
       instead (Section VI-B). *)
    theta_low = (match kind with Signature.Qgram -> 30 | Signature.Wgram -> read_len * 12);
    theta_high = (match kind with Signature.Qgram -> 60 | Signature.Wgram -> read_len * 30);
    edit_threshold = max 4 (read_len / 3);
    distance_backend = Dna.Distance.Auto;
    domains = Dna.Par.default_domains ();
  }

type stats = {
  mutable signature_comparisons : int;
  mutable edit_comparisons : int;
  mutable merges : int;
  mutable signature_time : float;
  mutable clustering_time : float;
}

type result = {
  assignment : int array;  (** cluster root per read index *)
  clusters : int array list;  (** member read indices per cluster *)
  stats : stats;
}

let now () = Unix.gettimeofday ()

let run params rng (reads : Dna.Strand.t array) : result =
  let n = Array.length reads in
  let dsu = Union_find.create n in
  let stats =
    {
      signature_comparisons = 0;
      edit_comparisons = 0;
      merges = 0;
      signature_time = 0.0;
      clustering_time = 0.0;
    }
  in
  let t_start = now () in
  (* Signatures depend only on the read: compute them all up front, in
     parallel, into an immutable array the bucket workers below share
     read-only. (A lazy per-index cache here would be a data race: the
     workers run on separate domains.) *)
  let t_sig0 = now () in
  let sigs =
    Dna.Par.map_array ~label:"cluster.signatures" ~domains:params.domains
      (fun r -> Signature.compute ~q:params.gram_len params.kind r)
      reads
  in
  stats.signature_time <- now () -. t_sig0;
  let stall = ref 0 in
  let round = ref 0 in
  while !round < params.rounds && !stall < params.stall_rounds do
    incr round;
    let merges_before = stats.merges in
    (* One random representative per current cluster. *)
    let members = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      let root = Union_find.find dsu i in
      let l = try Hashtbl.find members root with Not_found -> [] in
      Hashtbl.replace members root (i :: l)
    done;
    let reps =
      Hashtbl.fold
        (fun root l acc ->
          let arr = Array.of_list l in
          (root, arr.(Dna.Rng.int rng (Array.length arr))) :: acc)
        members []
    in
    (* Partition representatives by the bases following the anchor. *)
    let anchor = Dna.Strand.random rng params.anchor_len in
    let buckets = Hashtbl.create 64 in
    List.iter
      (fun (root, idx) ->
        let read = reads.(idx) in
        match Dna.Strand.find read ~pattern:anchor with
        | Some p when p + params.anchor_len + params.partition_len <= Dna.Strand.length read ->
            let key =
              Dna.Strand.to_string
                (Dna.Strand.sub read ~pos:(p + params.anchor_len) ~len:params.partition_len)
            in
            let l = try Hashtbl.find buckets key with Not_found -> [] in
            Hashtbl.replace buckets key ((root, idx) :: l)
        | Some _ | None -> () (* this cluster sits the round out *))
      reps;
    let bucket_arr =
      Hashtbl.fold (fun _ l acc -> if List.length l > 1 then Array.of_list l :: acc else acc)
        buckets []
      |> Array.of_list
    in
    (* Compare pairs within each bucket in parallel; collect merge
       decisions and counters, then apply them serially. *)
    let decisions =
      Dna.Par.map_array ~label:"cluster.buckets" ~domains:params.domains
        (fun bucket ->
          let sigs = Array.map (fun (_, idx) -> sigs.(idx)) bucket in
          let merges = ref [] in
          let sig_cmp = ref 0 and edit_cmp = ref 0 in
          let b = Array.length bucket in
          for i = 0 to b - 1 do
            for j = i + 1 to b - 1 do
              let root_i, idx_i = bucket.(i) and root_j, idx_j = bucket.(j) in
              if root_i <> root_j then begin
                incr sig_cmp;
                let d = Signature.distance sigs.(i) sigs.(j) in
                if d <= params.theta_low then merges := (root_i, root_j) :: !merges
                else if d <= params.theta_high then begin
                  incr edit_cmp;
                  match
                    Dna.Distance.levenshtein_leq ~backend:params.distance_backend
                      ~bound:params.edit_threshold reads.(idx_i) reads.(idx_j)
                  with
                  | Some _ -> merges := (root_i, root_j) :: !merges
                  | None -> ()
                end
              end
            done
          done;
          (!merges, !sig_cmp, !edit_cmp))
        bucket_arr
    in
    Array.iter
      (fun (merges, sig_cmp, edit_cmp) ->
        stats.signature_comparisons <- stats.signature_comparisons + sig_cmp;
        stats.edit_comparisons <- stats.edit_comparisons + edit_cmp;
        List.iter
          (fun (a, b) ->
            if not (Union_find.same dsu a b) then begin
              Union_find.union dsu a b;
              stats.merges <- stats.merges + 1
            end)
          merges)
      decisions;
    if stats.merges = merges_before then incr stall else stall := 0
  done;
  stats.clustering_time <- now () -. t_start;
  let clusters = Union_find.clusters dsu in
  let assignment = Array.init n (fun i -> Union_find.find dsu i) in
  { assignment; clusters; stats }

(* Materialize clusters as lists of reads, for the reconstruction stage. *)
let read_clusters result (reads : Dna.Strand.t array) : Dna.Strand.t list list =
  List.map (fun members -> Array.to_list (Array.map (fun i -> reads.(i)) members)) result.clusters
