(** The distributed clustering algorithm of Rashtchian et al. [31]
    (Section VI), with the paper's w-gram variant (Section VI-C).

    Every read starts as a singleton cluster. Each round:

    1. a random anchor of [anchor_len] bases is drawn, and a random
       representative is chosen per cluster;
    2. clusters are partitioned by the [partition_len] bases following
       the anchor's first occurrence in the representative;
    3. within a partition, representatives are summarized by signatures
       against a fresh random gram set, and pairs are compared: below
       [theta_low] they merge outright, above [theta_high] they never
       merge, and in between a (bounded) edit-distance comparison decides.

    Partitions are processed in parallel; merge decisions are applied to
    a union-find afterwards, so the result is independent of worker
    interleaving. *)

type params = {
  rounds : int;  (** maximum rounds; the loop stops early once converged *)
  stall_rounds : int;  (** stop after this many consecutive merge-free rounds *)
  anchor_len : int;
  partition_len : int;
  gram_len : int;  (** q: signatures cover the 4^q gram dictionary *)
  kind : Signature.kind;
  theta_low : int;
  theta_high : int;
  edit_threshold : int;  (** merge when edit distance is at most this *)
  distance_backend : Dna.Distance.backend;
      (** kernel family behind the merge test's [levenshtein_leq]; [Auto]
          resolves to the bit-parallel kernels, [Scalar] forces the DP
          oracle (benchmark baseline) *)
  domains : int;
}

let default_params ?(kind = Signature.Qgram) ~read_len () =
  {
    rounds = 160;
    stall_rounds = 14;
    anchor_len = 3;
    partition_len = 4;
    gram_len = 4;
    kind;
    (* Conservative defaults; use [Auto_config] to fit them to the data
       instead (Section VI-B). *)
    theta_low = (match kind with Signature.Qgram -> 30 | Signature.Wgram -> read_len * 12);
    theta_high = (match kind with Signature.Qgram -> 60 | Signature.Wgram -> read_len * 30);
    edit_threshold = max 4 (read_len / 3);
    distance_backend = Dna.Distance.Auto;
    domains = Dna.Par.default_domains ();
  }

type stats = {
  mutable signature_comparisons : int;
  mutable edit_comparisons : int;
  mutable merges : int;
  mutable signature_time : float;
  mutable clustering_time : float;
}

type result = {
  assignment : int array;  (** cluster root per read index *)
  clusters : int array list;  (** member read indices per cluster *)
  stats : stats;
}

let now () = Unix.gettimeofday ()

let run params rng (reads : Dna.Strand.t array) : result =
  let n = Array.length reads in
  let dsu = Union_find.create n in
  let stats =
    {
      signature_comparisons = 0;
      edit_comparisons = 0;
      merges = 0;
      signature_time = 0.0;
      clustering_time = 0.0;
    }
  in
  let t_start = now () in
  (* Signatures depend only on the read: compute them all up front, in
     parallel, into an immutable array the bucket workers below share
     read-only. (A lazy per-index cache here would be a data race: the
     workers run on separate domains.) *)
  let t_sig0 = now () in
  let sigs =
    Dna.Par.map_array ~label:"cluster.signatures" ~domains:params.domains
      (fun r -> Signature.compute ~q:params.gram_len params.kind r)
      reads
  in
  stats.signature_time <- now () -. t_sig0;
  let stall = ref 0 in
  let round = ref 0 in
  while !round < params.rounds && !stall < params.stall_rounds do
    incr round;
    let merges_before = stats.merges in
    (* One random representative per current cluster. *)
    let members = Hashtbl.create 64 in
    for i = 0 to n - 1 do
      let root = Union_find.find dsu i in
      let l = try Hashtbl.find members root with Not_found -> [] in
      Hashtbl.replace members root (i :: l)
    done;
    let reps =
      Hashtbl.fold
        (fun root l acc ->
          let arr = Array.of_list l in
          (root, arr.(Dna.Rng.int rng (Array.length arr))) :: acc)
        members []
    in
    (* Partition representatives by the bases following the anchor. *)
    let anchor = Dna.Strand.random rng params.anchor_len in
    let buckets = Hashtbl.create 64 in
    List.iter
      (fun (root, idx) ->
        let read = reads.(idx) in
        match Dna.Strand.find read ~pattern:anchor with
        | Some p when p + params.anchor_len + params.partition_len <= Dna.Strand.length read ->
            let key =
              Dna.Strand.to_string
                (Dna.Strand.sub read ~pos:(p + params.anchor_len) ~len:params.partition_len)
            in
            let l = try Hashtbl.find buckets key with Not_found -> [] in
            Hashtbl.replace buckets key ((root, idx) :: l)
        | Some _ | None -> () (* this cluster sits the round out *))
      reps;
    let bucket_arr =
      Hashtbl.fold (fun _ l acc -> if List.length l > 1 then Array.of_list l :: acc else acc)
        buckets []
      |> Array.of_list
    in
    (* Compare pairs within each bucket in parallel; collect merge
       decisions and counters, then apply them serially. *)
    let decisions =
      Dna.Par.map_array ~label:"cluster.buckets" ~domains:params.domains
        (fun bucket ->
          let sigs = Array.map (fun (_, idx) -> sigs.(idx)) bucket in
          let merges = ref [] in
          let sig_cmp = ref 0 and edit_cmp = ref 0 in
          let b = Array.length bucket in
          for i = 0 to b - 1 do
            for j = i + 1 to b - 1 do
              let root_i, idx_i = bucket.(i) and root_j, idx_j = bucket.(j) in
              if root_i <> root_j then begin
                incr sig_cmp;
                let d = Signature.distance sigs.(i) sigs.(j) in
                if d <= params.theta_low then merges := (root_i, root_j) :: !merges
                else if d <= params.theta_high then begin
                  incr edit_cmp;
                  match
                    Dna.Distance.levenshtein_leq ~backend:params.distance_backend
                      ~bound:params.edit_threshold reads.(idx_i) reads.(idx_j)
                  with
                  | Some _ -> merges := (root_i, root_j) :: !merges
                  | None -> ()
                end
              end
            done
          done;
          (!merges, !sig_cmp, !edit_cmp))
        bucket_arr
    in
    Array.iter
      (fun (merges, sig_cmp, edit_cmp) ->
        stats.signature_comparisons <- stats.signature_comparisons + sig_cmp;
        stats.edit_comparisons <- stats.edit_comparisons + edit_cmp;
        List.iter
          (fun (a, b) ->
            if not (Union_find.same dsu a b) then begin
              Union_find.union dsu a b;
              stats.merges <- stats.merges + 1
            end)
          merges)
      decisions;
    if stats.merges = merges_before then incr stall else stall := 0
  done;
  stats.clustering_time <- now () -. t_start;
  let clusters = Union_find.clusters dsu in
  let assignment = Array.init n (fun i -> Union_find.find dsu i) in
  { assignment; clusters; stats }

(* The same algorithm restructured for millions of reads: flat arrays
   everywhere the boxed engine used hashtables of lists.

   - representatives come from one reservoir-sampling pass over the
     reads (one rng draw per read, serial, so the result is independent
     of the worker count);
   - partitions are integer keys (the 2*partition_len-bit code of the
     bases after the anchor) bucketed by counting sort — no string keys,
     no per-bucket list cells;
   - signatures live in a flat packed {!Signature.Index} built once in
     parallel (sharded rows, free merge) and compared by SWAR popcount;
   - bucket segments are compared in parallel over the Par pool and
     merge decisions applied serially in segment order, so the
     assignment is bit-identical for every [domains] value. *)
let run_scaled params rng (reads : Dna.Strand.t array) : result =
  let n = Array.length reads in
  let dsu = Union_find.create n in
  let stats =
    {
      signature_comparisons = 0;
      edit_comparisons = 0;
      merges = 0;
      signature_time = 0.0;
      clustering_time = 0.0;
    }
  in
  let t_start = now () in
  let t_sig0 = now () in
  let index =
    Signature.Index.build ~domains:params.domains ~q:params.gram_len params.kind reads
  in
  stats.signature_time <- now () -. t_sig0;
  let nkeys = 1 lsl (2 * params.partition_len) in
  (* Per-round scratch, allocated once. *)
  let cnt = Array.make n 0 in
  let rep = Array.make n 0 in
  let roots = Array.make n 0 in
  let entry_root = Array.make n 0 in
  let entry_idx = Array.make n 0 in
  let entry_key = Array.make n 0 in
  let bucket_start = Array.make (nkeys + 1) 0 in
  let cursor = Array.make nkeys 0 in
  let order_root = Array.make n 0 in
  let order_idx = Array.make n 0 in
  let stall = ref 0 in
  let round = ref 0 in
  while !round < params.rounds && !stall < params.stall_rounds do
    incr round;
    let merges_before = stats.merges in
    (* One random representative per cluster, by reservoir sampling: the
       k-th member seen replaces the current pick with probability 1/k,
       which is the boxed engine's uniform choice without building
       member lists. *)
    let n_roots = ref 0 in
    for i = 0 to n - 1 do
      let root = Union_find.find dsu i in
      if cnt.(root) = 0 then begin
        roots.(!n_roots) <- root;
        incr n_roots
      end;
      cnt.(root) <- cnt.(root) + 1;
      if Dna.Rng.int rng cnt.(root) = 0 then rep.(root) <- i
    done;
    let anchor = Dna.Strand.random rng params.anchor_len in
    (* Key every represented cluster by the partition bases. *)
    let n_entries = ref 0 in
    for r = 0 to !n_roots - 1 do
      let root = roots.(r) in
      cnt.(root) <- 0 (* reset for the next round as we go *);
      let idx = rep.(root) in
      let read = reads.(idx) in
      match Dna.Strand.find read ~pattern:anchor with
      | Some p when p + params.anchor_len + params.partition_len <= Dna.Strand.length read
        ->
          let key = ref 0 in
          for b = 0 to params.partition_len - 1 do
            key :=
              (!key lsl 2)
              lor Dna.Strand.unsafe_get_code read (p + params.anchor_len + b)
          done;
          entry_root.(!n_entries) <- root;
          entry_idx.(!n_entries) <- idx;
          entry_key.(!n_entries) <- !key;
          incr n_entries
      | Some _ | None -> () (* this cluster sits the round out *)
    done;
    (* Counting sort into buckets. *)
    Array.fill bucket_start 0 (nkeys + 1) 0;
    for e = 0 to !n_entries - 1 do
      bucket_start.(entry_key.(e) + 1) <- bucket_start.(entry_key.(e) + 1) + 1
    done;
    for k = 1 to nkeys do
      bucket_start.(k) <- bucket_start.(k) + bucket_start.(k - 1)
    done;
    Array.blit bucket_start 0 cursor 0 nkeys;
    for e = 0 to !n_entries - 1 do
      let k = entry_key.(e) in
      order_root.(cursor.(k)) <- entry_root.(e);
      order_idx.(cursor.(k)) <- entry_idx.(e);
      cursor.(k) <- cursor.(k) + 1
    done;
    (* Bucket segments worth comparing (>= 2 members). *)
    let segments = ref [] in
    for k = nkeys - 1 downto 0 do
      if bucket_start.(k + 1) - bucket_start.(k) > 1 then
        segments := (bucket_start.(k), bucket_start.(k + 1)) :: !segments
    done;
    let segments = Array.of_list !segments in
    let decisions =
      Dna.Par.map_array ~label:"cluster.buckets" ~domains:params.domains
        (fun (lo, hi) ->
          let merges = ref [] in
          let sig_cmp = ref 0 and edit_cmp = ref 0 in
          for i = lo to hi - 1 do
            for j = i + 1 to hi - 1 do
              let root_i = order_root.(i) and root_j = order_root.(j) in
              if root_i <> root_j then begin
                incr sig_cmp;
                let d = Signature.Index.distance index order_idx.(i) order_idx.(j) in
                if d <= params.theta_low then merges := (root_i, root_j) :: !merges
                else if d <= params.theta_high then begin
                  incr edit_cmp;
                  match
                    Dna.Distance.levenshtein_leq ~backend:params.distance_backend
                      ~bound:params.edit_threshold
                      reads.(order_idx.(i))
                      reads.(order_idx.(j))
                  with
                  | Some _ -> merges := (root_i, root_j) :: !merges
                  | None -> ()
                end
              end
            done
          done;
          (!merges, !sig_cmp, !edit_cmp))
        segments
    in
    Array.iter
      (fun (merges, sig_cmp, edit_cmp) ->
        stats.signature_comparisons <- stats.signature_comparisons + sig_cmp;
        stats.edit_comparisons <- stats.edit_comparisons + edit_cmp;
        List.iter
          (fun (a, b) ->
            if not (Union_find.same dsu a b) then begin
              Union_find.union dsu a b;
              stats.merges <- stats.merges + 1
            end)
          merges)
      decisions;
    if stats.merges = merges_before then incr stall else stall := 0
  done;
  stats.clustering_time <- now () -. t_start;
  let clusters = Union_find.clusters dsu in
  let assignment = Array.init n (fun i -> Union_find.find dsu i) in
  { assignment; clusters; stats }

let run_pool params rng (pool : Dna.Strand_pool.t) : result =
  (* Views share the pool's packed buffer — one small record per read,
     never a copy of the bases — and give the index and the edit kernels
     a stable array to address reads by. *)
  run_scaled params rng (Dna.Strand_pool.to_array pool)

(* Materialize clusters as lists of reads, for the reconstruction stage. *)
let read_clusters result (reads : Dna.Strand.t array) : Dna.Strand.t list list =
  List.map (fun members -> Array.to_list (Array.map (fun i -> reads.(i)) members)) result.clusters
