(** q-gram and w-gram signatures (Sections VI-A and VI-C).

    A signature summarizes a read against the dictionary of all 4^q
    grams (substrings of length q):

    - the *q-gram* signature is a bit per gram — whether it occurs in the
      read — compared with Hamming distance;
    - the *w-gram* signature records the position of the first occurrence
      of each gram (a sentinel when absent), compared with the L1 norm.

    Both are computed in one linear scan of the read. w-grams cost more
    to compute and store but spread cluster signatures further apart,
    saving edit-distance comparisons downstream (Section VI-C). *)

type kind = Qgram | Wgram

type t =
  | Q of Bytes.t  (** presence bitmap over the 4^q gram dictionary *)
  | W of int array  (** first-occurrence position per gram; [absent] if none *)

(* Sentinel for w-grams: one past any real position. *)
let absent_position ~read_len = read_len + 1

let dict_size ~q = 1 lsl (2 * q)

let gram_codes ~q (read : Dna.Strand.t) =
  (* Rolling 2q-bit window over the base codes. *)
  let n = Dna.Strand.length read in
  let mask = dict_size ~q - 1 in
  let codes = Array.make (max 0 (n - q + 1)) 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := ((!acc lsl 2) lor Dna.Strand.unsafe_get_code read i) land mask;
    if i >= q - 1 then codes.(i - q + 1) <- !acc
  done;
  codes

let compute ~q kind (read : Dna.Strand.t) : t =
  let size = dict_size ~q in
  match kind with
  | Qgram ->
      let bits = Bytes.make size '\000' in
      Array.iter (fun g -> Bytes.set bits g '\001') (gram_codes ~q read);
      Q bits
  | Wgram ->
      let absent = absent_position ~read_len:(Dna.Strand.length read) in
      let pos = Array.make size absent in
      let codes = gram_codes ~q read in
      (* First occurrence wins: scan right to left. *)
      for i = Array.length codes - 1 downto 0 do
        pos.(codes.(i)) <- i
      done;
      W pos

let distance a b =
  match (a, b) with
  | Q xa, Q xb ->
      let n = Bytes.length xa in
      if n <> Bytes.length xb then invalid_arg "Signature.distance: size mismatch";
      let d = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.get xa i <> Bytes.get xb i then incr d
      done;
      !d
  | W xa, W xb ->
      let n = Array.length xa in
      if n <> Array.length xb then invalid_arg "Signature.distance: size mismatch";
      let d = ref 0 in
      for i = 0 to n - 1 do
        d := !d + abs (xa.(i) - xb.(i))
      done;
      !d
  | Q _, W _ | W _, Q _ -> invalid_arg "Signature.distance: mixed signature kinds"

(* Rough upper bound on the distance; used to scale default thresholds. *)
let max_distance ~q ~read_len kind =
  match kind with
  | Qgram -> dict_size ~q
  | Wgram -> dict_size ~q * absent_position ~read_len
