(** q-gram and w-gram signatures (Sections VI-A and VI-C).

    A signature summarizes a read against the dictionary of all 4^q
    grams (substrings of length q):

    - the *q-gram* signature is a bit per gram — whether it occurs in the
      read — compared with Hamming distance;
    - the *w-gram* signature records the position of the first occurrence
      of each gram (a sentinel when absent), compared with the L1 norm.

    Both are computed in one linear scan of the read. w-grams cost more
    to compute and store but spread cluster signatures further apart,
    saving edit-distance comparisons downstream (Section VI-C). *)

type kind = Qgram | Wgram

type t =
  | Q of Bytes.t  (** presence bitmap over the 4^q gram dictionary *)
  | W of int array  (** first-occurrence position per gram; [absent] if none *)

(* Sentinel for w-grams: one past any real position. *)
let absent_position ~read_len = read_len + 1

let dict_size ~q = 1 lsl (2 * q)

let gram_codes ~q (read : Dna.Strand.t) =
  (* Rolling 2q-bit window over the base codes. *)
  let n = Dna.Strand.length read in
  let mask = dict_size ~q - 1 in
  let codes = Array.make (max 0 (n - q + 1)) 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := ((!acc lsl 2) lor Dna.Strand.unsafe_get_code read i) land mask;
    if i >= q - 1 then codes.(i - q + 1) <- !acc
  done;
  codes

let compute ~q kind (read : Dna.Strand.t) : t =
  let size = dict_size ~q in
  match kind with
  | Qgram ->
      let bits = Bytes.make size '\000' in
      Array.iter (fun g -> Bytes.set bits g '\001') (gram_codes ~q read);
      Q bits
  | Wgram ->
      let absent = absent_position ~read_len:(Dna.Strand.length read) in
      let pos = Array.make size absent in
      let codes = gram_codes ~q read in
      (* First occurrence wins: scan right to left. *)
      for i = Array.length codes - 1 downto 0 do
        pos.(codes.(i)) <- i
      done;
      W pos

let distance a b =
  match (a, b) with
  | Q xa, Q xb ->
      let n = Bytes.length xa in
      if n <> Bytes.length xb then invalid_arg "Signature.distance: size mismatch";
      let d = ref 0 in
      for i = 0 to n - 1 do
        if Bytes.get xa i <> Bytes.get xb i then incr d
      done;
      !d
  | W xa, W xb ->
      let n = Array.length xa in
      if n <> Array.length xb then invalid_arg "Signature.distance: size mismatch";
      let d = ref 0 in
      for i = 0 to n - 1 do
        d := !d + abs (xa.(i) - xb.(i))
      done;
      !d
  | Q _, W _ | W _, Q _ -> invalid_arg "Signature.distance: mixed signature kinds"

(* Rough upper bound on the distance; used to scale default thresholds. *)
let max_distance ~q ~read_len kind =
  match kind with
  | Qgram -> dict_size ~q
  | Wgram -> dict_size ~q * absent_position ~read_len

(** Flat signature index for clustering at scale.

    The boxed [t] above costs one heap object per read (a 4^q-byte
    bitmap for q-grams) and a byte-wise distance loop. The index packs
    every read's signature into one shared flat int array — q-gram
    presence bits 63 to a word, compared with SWAR-popcount Hamming
    distance; w-gram positions as flat rows compared with L1 — built in
    parallel over the Par pool. Workers fill disjoint row ranges of the
    one preallocated array (sharded build), so the merge is free and the
    result is bit-identical for every worker count. *)
module Index = struct
  type index = {
    kind : kind;
    row : int;  (* ints per read *)
    data : int array;  (* read i's signature at [i*row, (i+1)*row) *)
  }

  type t = index

  let bits_per_word = 63

  (* 64-bit SWAR popcount, valid for OCaml's 63-bit ints: [m1] has its
     top (sign) bit set so it is built from halves; the byte-sum
     multiply reads bits 56..62, enough for counts up to 63. *)
  let m1 = (0x55555555 lsl 32) lor 0x55555555
  let m2 = 0x3333333333333333
  let m4 = 0x0F0F0F0F0F0F0F0F
  let h01 = 0x0101010101010101

  let[@inline] popcount x =
    let x = x - ((x lsr 1) land m1) in
    let x = (x land m2) + ((x lsr 2) land m2) in
    let x = (x + (x lsr 4)) land m4 in
    (x * h01) lsr 56

  let row_of ~q kind =
    match kind with
    | Qgram -> (dict_size ~q + bits_per_word - 1) / bits_per_word
    | Wgram -> dict_size ~q

  let fill_row idx ~q (read : Dna.Strand.t) i =
    let base = i * idx.row in
    match idx.kind with
    | Qgram ->
        let n = Dna.Strand.length read in
        let mask = dict_size ~q - 1 in
        let acc = ref 0 in
        for j = 0 to n - 1 do
          acc := ((!acc lsl 2) lor Dna.Strand.unsafe_get_code read j) land mask;
          if j >= q - 1 then begin
            let g = !acc in
            let w = base + (g / bits_per_word) in
            idx.data.(w) <- idx.data.(w) lor (1 lsl (g mod bits_per_word))
          end
        done
    | Wgram ->
        let n = Dna.Strand.length read in
        let mask = dict_size ~q - 1 in
        let absent = absent_position ~read_len:n in
        Array.fill idx.data base idx.row absent;
        let acc = ref 0 in
        (* Last write wins per slot, so scan left to right and let later
           occurrences be ignored by writing only the first. *)
        for j = 0 to n - 1 do
          acc := ((!acc lsl 2) lor Dna.Strand.unsafe_get_code read j) land mask;
          if j >= q - 1 && idx.data.(base + !acc) = absent then
            idx.data.(base + !acc) <- j - q + 1
        done

  let build ?(domains = 1) ~q kind (reads : Dna.Strand.t array) =
    let row = row_of ~q kind in
    let n = Array.length reads in
    let idx = { kind; row; data = Array.make (max 1 (n * row)) 0 } in
    (* Row ranges are disjoint, so parallel fills never collide. *)
    ignore
      (Dna.Par.mapi_array ~label:"cluster.index" ~domains
         (fun i read ->
           fill_row idx ~q read i;
           0)
         reads);
    idx

  let distance idx i j =
    let row = idx.row in
    let a = i * row and b = j * row in
    match idx.kind with
    | Qgram ->
        let d = ref 0 in
        for w = 0 to row - 1 do
          d := !d + popcount (idx.data.(a + w) lxor idx.data.(b + w))
        done;
        !d
    | Wgram ->
        let d = ref 0 in
        for w = 0 to row - 1 do
          d := !d + abs (idx.data.(a + w) - idx.data.(b + w))
        done;
        !d
end
