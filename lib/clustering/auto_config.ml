(** Automatic configuration of the clustering thresholds (Section VI-B,
    Figure 5).

    A handful of probe reads are compared against a larger random sample
    of the remaining reads. Plotted sorted, the distances show a low
    plateau (same-cluster pairs), a jump, and a high plateau (unrelated
    pairs) — the paper's Figure 5. The thresholds bracket the jump:
    theta_low at the top of the low plateau (merge without checking),
    theta_high at the bottom of the high plateau (never merge); only the
    gap in between pays for an edit-distance comparison.

    At high error rates the two signature modes overlap and no clean jump
    exists. The fallback estimates the same-cluster mode from
    nearest-neighbor distances (each probe's closest target is almost
    always a sibling read), sets a conservative theta_low, a generous
    theta_high, and fits the edit-distance threshold from the probe->
    nearest pairs themselves — edit distance separates the modes long
    after signatures stop doing so. *)

type config = {
  theta_low : int;
  theta_high : int;
  edit_threshold : int;
  distances : int array;  (** all sampled signature distances (Figure 5 data) *)
}

type sample = {
  all : int array;  (** probe x target signature distances *)
  nearest : (int * int * int) array;  (** per probe: (probe, closest target, distance) *)
}

let sample_distances params rng (reads : Dna.Strand.t array) ~n_probes ~n_targets : sample =
  let n = Array.length reads in
  let n_probes = min n_probes n and n_targets = min n_targets n in
  let probes = Dna.Rng.sample_indices rng ~n ~k:n_probes in
  let targets = Dna.Rng.sample_indices rng ~n ~k:n_targets in
  let sig_of i = Signature.compute ~q:params.Cluster.gram_len params.Cluster.kind reads.(i) in
  let probe_sigs = Array.map sig_of probes in
  let target_sigs = Array.map sig_of targets in
  let dists = ref [] in
  let nearest = ref [] in
  Array.iteri
    (fun pi p ->
      (* Track the 5 signature-closest targets of each probe: the
         candidates for edit-verified sibling pairs. *)
      let cand = ref [] in
      Array.iteri
        (fun ti t ->
          if p <> t then begin
            let d = Signature.distance probe_sigs.(pi) target_sigs.(ti) in
            dists := d :: !dists;
            cand := (d, t) :: !cand
          end)
        targets;
      let closest = List.sort compare !cand in
      List.iteri (fun i (d, t) -> if i < 5 then nearest := (p, t, d) :: !nearest) closest)
    probes;
  { all = Array.of_list !dists; nearest = Array.of_list !nearest }

let percentile (sorted : int array) p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* Fit the edit-distance merge threshold from the probe->nearest pairs:
   their edit distances split into a low (sibling) and a high (unrelated)
   mode; the threshold sits in the widest gap between them. *)
let fit_edit_threshold params (reads : Dna.Strand.t array) (nearest : (int * int * int) array) =
  let read_len =
    (* Median length: insertions inflate the max, which would loosen
       every cap below. *)
    let lens = Array.map Dna.Strand.length reads in
    Array.sort compare lens;
    max 1 lens.(Array.length lens / 2)
  in
  let bound = (6 * read_len) / 10 in
  let dists =
    Array.to_list nearest
    |> List.filter_map (fun (p, t, _) ->
           Dna.Distance.levenshtein_leq ~backend:params.Cluster.distance_backend ~bound reads.(p)
             reads.(t))
    |> Array.of_list
  in
  Array.sort compare dists;
  if Array.length dists < 4 then params.Cluster.edit_threshold
  else begin
    (* Random unrelated strands sit near 0.5 * len in edit distance;
       anything clearly below that among nearest pairs is a sibling.
       Place the threshold halfway between the worst sibling and the
       closest non-sibling (or pad the sibling mode when every sampled
       pair was a sibling). *)
    (* Unrelated random strands sit at ~0.44-0.55 * len in edit
       distance; sibling pairs at 2p * len. The two modes nearly touch
       around p = 0.15, so both the sibling cap and the final threshold
       cap must stay below the unrelated minimum. *)
    let sib_cap = (36 * read_len) / 100 in
    let hard_cap = (40 * read_len) / 100 in
    let sibs = Array.to_list dists |> List.filter (fun d -> d <= sib_cap) in
    let non_sibs = Array.to_list dists |> List.filter (fun d -> d > sib_cap) in
    match (sibs, non_sibs) with
    | [], _ -> min params.Cluster.edit_threshold hard_cap
    | _ :: _, [] -> min (List.fold_left max 0 sibs + (read_len / 12)) hard_cap
    | _ :: _, _ :: _ ->
        let hi_sib = List.fold_left max 0 sibs in
        let lo_non = List.fold_left min max_int non_sibs in
        min ((hi_sib + lo_non) / 2) hard_cap
  end

let configure ?(n_probes = 24) ?(n_targets = 300) params rng reads =
  let sample = sample_distances params rng reads ~n_probes ~n_targets in
  let n = Array.length sample.all in
  if n = 0 then
    {
      theta_low = params.Cluster.theta_low;
      theta_high = params.Cluster.theta_high;
      edit_threshold = params.Cluster.edit_threshold;
      distances = sample.all;
    }
  else begin
    let edit_threshold = fit_edit_threshold params reads sample.nearest in
    (* Sample the sibling mode directly: among each probe's closest
       targets, the pairs whose edit distance passes the (just fitted)
       merge threshold are siblings; their signature distances trace the
       low mode of Figure 5. theta_low merges the unambiguous half
       without an edit check; theta_high pads the mode's maximum, and
       everything in between is settled by edit distance. *)
    let sibling_sigs =
      Array.to_list sample.nearest
      |> List.filter_map (fun (p, t, d) ->
             match
               Dna.Distance.levenshtein_leq ~backend:params.Cluster.distance_backend
                 ~bound:edit_threshold reads.(p) reads.(t)
             with
             | Some _ -> Some d
             | None -> None)
      |> Array.of_list
    in
    Array.sort compare sibling_sigs;
    if Array.length sibling_sigs = 0 then
      {
        theta_low = params.Cluster.theta_low;
        theta_high = params.Cluster.theta_high;
        edit_threshold;
        distances = sample.all;
      }
    else begin
      let theta_low = percentile sibling_sigs 0.5 in
      let max_sib = sibling_sigs.(Array.length sibling_sigs - 1) in
      let theta_high = max (theta_low + 1) ((max_sib * 23) / 20) in
      { theta_low; theta_high; edit_threshold; distances = sample.all }
    end
  end

let apply config params =
  {
    params with
    Cluster.theta_low = config.theta_low;
    theta_high = config.theta_high;
    edit_threshold = config.edit_threshold;
  }

(* The data of Figure 5: sorted sampled distances (x = pair rank,
   y = signature distance). *)
let figure5_series config =
  let sorted = Array.copy config.distances in
  Array.sort compare sorted;
  sorted
