(** The distributed clustering algorithm of Rashtchian et al.
    (Section VI), with the w-gram variant (Section VI-C).

    Iterative merging of per-cluster representatives: random anchors
    partition the clusters, signatures are compared within partitions,
    and only the ambiguous middle band pays for an edit-distance
    comparison. Partitions are processed in parallel; the result does
    not depend on worker interleaving. *)

type params = {
  rounds : int;  (** maximum rounds; the loop stops early once converged *)
  stall_rounds : int;  (** stop after this many consecutive merge-free rounds *)
  anchor_len : int;
  partition_len : int;  (** bases following the anchor that key the partition *)
  gram_len : int;  (** q: signatures cover the 4^q gram dictionary *)
  kind : Signature.kind;
  theta_low : int;  (** at or below: merge without an edit check *)
  theta_high : int;  (** above: never merge *)
  edit_threshold : int;  (** merge when edit distance is at most this *)
  distance_backend : Dna.Distance.backend;
      (** kernel family behind the merge test's [levenshtein_leq] (and
          {!Auto_config}'s threshold fitting): [Auto] resolves to the
          bit-parallel Myers kernels; [Scalar] forces the two-row DP
          oracle, the benchmark baseline *)
  domains : int;  (** worker domains for partition processing *)
}

val default_params : ?kind:Signature.kind -> read_len:int -> unit -> params
(** Conservative defaults; fit the thresholds with {!Auto_config}
    instead. *)

type stats = {
  mutable signature_comparisons : int;
  mutable edit_comparisons : int;
  mutable merges : int;
  mutable signature_time : float;  (** seconds spent computing signatures *)
  mutable clustering_time : float;  (** total wall-clock of the run *)
}

type result = {
  assignment : int array;  (** cluster root per read index *)
  clusters : int array list;  (** member read indices per cluster *)
  stats : stats;
}

val run : params -> Dna.Rng.t -> Dna.Strand.t array -> result

val run_scaled : params -> Dna.Rng.t -> Dna.Strand.t array -> result
(** The same algorithm on flat arrays: reservoir-sampled
    representatives, integer partition keys bucketed by counting sort,
    and a packed {!Signature.Index} (sharded parallel build, SWAR
    popcount distances) instead of per-read boxed signatures. All rng
    draws are serial and bucket segments are compared over the
    order-preserving Par pool, so the assignment is bit-identical for
    every [domains] value. Merge decisions (and therefore clusters) are
    as in [run]; representative sampling differs, so a given seed does
    not reproduce [run] draw for draw. *)

val run_pool : params -> Dna.Rng.t -> Dna.Strand_pool.t -> result
(** [run_scaled] over an arena read pool: reads are zero-copy views
    into the pool's packed buffer. *)

val read_clusters : result -> Dna.Strand.t array -> Dna.Strand.t list list
(** Materialize clusters as lists of reads for reconstruction. *)
