(** A Clover-style tree-based clustering algorithm (Qu et al.): one
    streaming pass over the reads, assigning each by a bounded-edit trie
    lookup of its prefix (and optionally a mid-read window) — no
    Levenshtein computations, memory linear in the cluster count. *)

type params = {
  key_len : int;  (** bases per trie key *)
  max_edits : int;  (** edit budget during a trie walk *)
  second_probe : bool;  (** also key on a mid-read window *)
}

val default_params : params

val run : ?params:params -> Dna.Strand.t array -> Cluster.result
(** Signature statistics in the result are zero: this algorithm computes
    neither signatures nor edit distances. *)
