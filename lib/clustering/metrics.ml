(** Clustering quality metrics.

    [accuracy] follows Rashtchian et al. [31]: a ground-truth cluster is
    recovered when some computed cluster contains at least a gamma
    fraction of its reads and no reads from any other cluster; the score
    is the fraction of ground-truth clusters recovered. [purity] and
    [rand_index] are provided as secondary diagnostics. *)

(* [truth] gives the ground-truth cluster id of every read. *)
let accuracy ?(gamma = 1.0) ~(truth : int array) (clusters : int array list) =
  let true_sizes = Hashtbl.create 64 in
  Array.iter
    (fun t -> Hashtbl.replace true_sizes t (1 + (try Hashtbl.find true_sizes t with Not_found -> 0)))
    truth;
  let n_true = Hashtbl.length true_sizes in
  if n_true = 0 then 1.0
  else begin
    let recovered = Hashtbl.create 64 in
    List.iter
      (fun members ->
        match Array.length members with
        | 0 -> ()
        | _ ->
            let t0 = truth.(members.(0)) in
            if Array.for_all (fun i -> truth.(i) = t0) members then begin
              let size = Hashtbl.find true_sizes t0 in
              if float_of_int (Array.length members) >= gamma *. float_of_int size then
                Hashtbl.replace recovered t0 ()
            end)
      clusters;
    float_of_int (Hashtbl.length recovered) /. float_of_int n_true
  end

(* Fraction of reads whose cluster's majority label matches their own. *)
let purity ~(truth : int array) (clusters : int array list) =
  let n = Array.length truth in
  if n = 0 then 1.0
  else begin
    let correct =
      List.fold_left
        (fun acc members ->
          if Array.length members = 0 then acc
          else begin
            let counts = Hashtbl.create 8 in
            Array.iter
              (fun i ->
                let t = truth.(i) in
                Hashtbl.replace counts t (1 + (try Hashtbl.find counts t with Not_found -> 0)))
              members;
            let best = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
            acc + best
          end)
        0 clusters
    in
    float_of_int correct /. float_of_int n
  end

(* Rand index over read pairs: agreement between the computed and true
   same-cluster relations. *)
let rand_index ~(truth : int array) (clusters : int array list) =
  let n = Array.length truth in
  if n < 2 then 1.0
  else begin
    let label = Array.make n (-1) in
    List.iteri (fun c members -> Array.iter (fun i -> label.(i) <- c) members) clusters;
    let agree = ref 0 in
    let total = n * (n - 1) / 2 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let same_true = truth.(i) = truth.(j) in
        let same_pred = label.(i) = label.(j) && label.(i) >= 0 in
        if same_true = same_pred then incr agree
      done
    done;
    float_of_int !agree /. float_of_int total
  end
