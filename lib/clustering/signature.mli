(** q-gram and w-gram signatures over the full 4^q gram dictionary
    (Sections VI-A and VI-C), computed in one linear scan per read. *)

type kind =
  | Qgram  (** presence bit per gram; Hamming distance *)
  | Wgram  (** first-occurrence position per gram; L1 distance *)

type t =
  | Q of Bytes.t  (** presence bitmap over the 4^q gram dictionary *)
  | W of int array  (** first-occurrence position; a sentinel when absent *)

val absent_position : read_len:int -> int
(** The w-gram sentinel: one past any real position. *)

val dict_size : q:int -> int
(** [4 ^ q]. *)

val gram_codes : q:int -> Dna.Strand.t -> int array
(** The read's gram sequence as 2q-bit codes (rolling window). *)

val compute : q:int -> kind -> Dna.Strand.t -> t

val distance : t -> t -> int
(** Hamming for q-grams, L1 for w-grams; raises [Invalid_argument] on
    mixed kinds or mismatched dictionary sizes. *)

val max_distance : q:int -> read_len:int -> kind -> int
(** A rough upper bound, for scaling thresholds. *)

(** Flat signature index for clustering at scale: every read's
    signature packed into one shared int array (q-gram presence bits
    compared by SWAR-popcount Hamming, w-gram positions by L1), built
    in parallel with workers filling disjoint row ranges — bit-identical
    for every worker count, and distances agree with {!distance} on the
    boxed signatures. *)
module Index : sig
  type t

  val build : ?domains:int -> q:int -> kind -> Dna.Strand.t array -> t
  val distance : t -> int -> int -> int
  (** [distance idx i j] between reads [i] and [j] of the build input. *)
end
