(** Union-find with path compression and union by rank. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val n_clusters : t -> int
(** Current number of disjoint sets. *)

val clusters : t -> int array list
(** Member indices of every set. *)
