(** Union-find with path compression and union by rank; tracks clusters
    of read indices during the iterative merge algorithm. *)

type t = { parent : int array; rank : int array; mutable count : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.count <- t.count - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b

let n_clusters t = t.count

(* Materialize clusters as arrays of member indices. *)
let clusters t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let r = find t i in
    let l = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: l)
  done;
  Hashtbl.fold (fun _ members acc -> Array.of_list (List.rev members) :: acc) tbl []
