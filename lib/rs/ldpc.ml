(** A binary LDPC code with belief-propagation decoding — the
    alternative error-correction module the paper discusses (Chandak et
    al., Section X): one long low-density code instead of many short
    Reed-Solomon codewords.

    Construction is IRA-style (irregular repeat-accumulate): each of the
    [m] parity checks XORs [row_weight] pseudo-random information bits,
    and the parity bits form an accumulator chain (check j also covers
    p_j and p_{j-1}), so encoding is a linear pass. Decoding is
    normalized min-sum message passing over log-likelihood ratios, which
    handles substitutions (finite LLR) and erasures (LLR 0) uniformly. *)

type t = {
  k : int;  (** information bits *)
  m : int;  (** parity bits = number of checks *)
  checks : int array array;  (** per check: the variable indices it covers *)
  var_checks : int array array;  (** per variable: the checks covering it *)
}

let n t = t.k + t.m

let create ?(seed = 0x1d9c) ?(column_weight = 3) ~k ~m () =
  if k <= 0 || m <= 1 then invalid_arg "Ldpc.create: need k > 0, m > 1";
  if column_weight < 2 || column_weight > m then invalid_arg "Ldpc.create: bad column_weight";
  let rng = Dna.Rng.create seed in
  (* Column-regular construction: every information bit lands in exactly
     [column_weight] checks, via that many random permutations assigned
     round-robin — the degree guarantee a decodable Tanner graph needs.
     A duplicate (same bit twice in one check) would cancel over GF(2),
     so collisions shift to the next check. *)
  let check_info = Array.make m [] in
  for _pass = 1 to column_weight do
    let perm = Array.init k (fun i -> i) in
    Dna.Rng.shuffle_in_place rng perm;
    Array.iteri
      (fun i v ->
        let rec place j tries =
          if tries > m then () (* degenerate parameters; give up on this edge *)
          else if List.mem v check_info.(j mod m) then place (j + 1) (tries + 1)
          else check_info.(j mod m) <- v :: check_info.(j mod m)
        in
        place (i mod m) 0)
      perm
  done;
  let checks =
    Array.init m (fun j ->
        let parity = if j = 0 then [ k + j ] else [ k + j - 1; k + j ] in
        Array.of_list (List.rev_append check_info.(j) parity))
  in
  let var_lists = Array.make (k + m) [] in
  Array.iteri (fun j vars -> Array.iter (fun v -> var_lists.(v) <- j :: var_lists.(v)) vars) checks;
  { k; m; checks; var_checks = Array.map (fun l -> Array.of_list (List.rev l)) var_lists }

(* Systematic encoding via the accumulator: p_j = p_{j-1} xor (info bits
   of check j). *)
let encode t (info : bool array) : bool array =
  if Array.length info <> t.k then invalid_arg "Ldpc.encode: message length";
  let cw = Array.make (n t) false in
  Array.blit info 0 cw 0 t.k;
  let prev = ref false in
  for j = 0 to t.m - 1 do
    let acc = ref !prev in
    Array.iter (fun v -> if v < t.k then acc := !acc <> cw.(v)) t.checks.(j);
    cw.(t.k + j) <- !acc;
    prev := !acc
  done;
  cw

let syndrome_ok t (cw : bool array) =
  Array.for_all
    (fun vars ->
      let parity = Array.fold_left (fun acc v -> acc <> cw.(v)) false vars in
      not parity)
    t.checks

(* Channel LLRs (positive = bit is 0 likely). *)

let llr_bsc ~p (received : bool array) : float array =
  let mag = log ((1.0 -. p) /. max 1e-12 p) in
  Array.map (fun bit -> if bit then -.mag else mag) received

(* [None] marks an erased bit. *)
let llr_erasure ?(confidence = 6.0) (received : bool option array) : float array =
  Array.map (function None -> 0.0 | Some true -> -.confidence | Some false -> confidence) received

(* Normalized min-sum belief propagation. Returns the corrected
   information bits, or [Error] when no valid codeword is reached. *)
let decode ?(max_iter = 60) ?(normalization = 0.8) t (channel_llr : float array) :
    (bool array, string) result =
  if Array.length channel_llr <> n t then Error "Ldpc.decode: LLR length"
  else begin
    (* Messages indexed per (check, position-in-check). *)
    let check_to_var = Array.map (fun vars -> Array.make (Array.length vars) 0.0) t.checks in
    let posterior = Array.copy channel_llr in
    let hard = Array.map (fun l -> l < 0.0) posterior in
    let ok = ref (syndrome_ok t hard) in
    let iter = ref 0 in
    while (not !ok) && !iter < max_iter do
      incr iter;
      (* Check update: for each check and member variable, the sign and
         min-magnitude of the other members' variable-to-check
         messages. Variable-to-check = posterior - previous check-to-var. *)
      Array.iteri
        (fun j vars ->
          let msgs = check_to_var.(j) in
          let v2c =
            Array.mapi (fun idx v -> posterior.(v) -. msgs.(idx)) vars
          in
          let sign = ref 1.0 in
          let min1 = ref infinity and min2 = ref infinity and min_idx = ref (-1) in
          Array.iteri
            (fun idx x ->
              if x < 0.0 then sign := -. !sign;
              let a = abs_float x in
              if a < !min1 then begin
                min2 := !min1;
                min1 := a;
                min_idx := idx
              end
              else if a < !min2 then min2 := a)
            v2c;
          Array.iteri
            (fun idx x ->
              let other_sign = if x < 0.0 then -. !sign else !sign in
              let mag = if idx = !min_idx then !min2 else !min1 in
              let fresh = normalization *. other_sign *. mag in
              (* Update posterior incrementally: remove old message, add new. *)
              posterior.(vars.(idx)) <- posterior.(vars.(idx)) -. msgs.(idx) +. fresh;
              msgs.(idx) <- fresh)
            v2c)
        t.checks;
      Array.iteri (fun v l -> hard.(v) <- l < 0.0) posterior;
      ok := syndrome_ok t hard
    done;
    if !ok then Ok (Array.sub hard 0 t.k) else Error "Ldpc.decode: did not converge"
  end

(* Byte helpers: pack information bits as bytes (k must be a multiple
   of 8 for an exact fit; extra bits are zero-padded). *)

let bits_of_bytes (b : Bytes.t) ~bits : bool array =
  Array.init bits (fun i ->
      let byte = i / 8 in
      if byte >= Bytes.length b then false
      else Char.code (Bytes.get b byte) land (0x80 lsr (i mod 8)) <> 0)

let bytes_of_bits (bits : bool array) : Bytes.t =
  let n_bytes = (Array.length bits + 7) / 8 in
  let out = Bytes.make n_bytes '\000' in
  Array.iteri
    (fun i bit ->
      if bit then
        Bytes.set out (i / 8) (Char.chr (Char.code (Bytes.get out (i / 8)) lor (0x80 lsr (i mod 8)))))
    bits;
  out
