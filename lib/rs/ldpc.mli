(** A binary IRA-style LDPC code with normalized min-sum decoding — the
    alternative error-correction module discussed in Section X: one long
    low-density code handling substitutions (finite LLRs) and erasures
    (zero LLRs) uniformly. *)

type t

val create : ?seed:int -> ?column_weight:int -> k:int -> m:int -> unit -> t
(** [k] information bits, [m] parity checks/bits; every information bit
    is covered by exactly [column_weight] (default 3) checks, plus the
    parity accumulator chain. *)

val n : t -> int
(** Codeword length [k + m]. *)

val encode : t -> bool array -> bool array
(** Systematic; linear-time via the parity accumulator. *)

val syndrome_ok : t -> bool array -> bool

val llr_bsc : p:float -> bool array -> float array
(** Channel LLRs for a binary symmetric channel with crossover [p]. *)

val llr_erasure : ?confidence:float -> bool option array -> float array
(** Channel LLRs with [None] marking erased bits. *)

val decode :
  ?max_iter:int -> ?normalization:float -> t -> float array -> (bool array, string) result
(** Belief propagation from channel LLRs; returns the information bits
    or [Error] when no valid codeword is reached. *)

val bits_of_bytes : Bytes.t -> bits:int -> bool array
val bytes_of_bits : bool array -> Bytes.t
