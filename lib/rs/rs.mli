(** Systematic Reed-Solomon codes over GF(256).

    [create ~k ~nsym] maps [k] data bytes to codewords of [n = k + nsym]
    bytes and corrects any combination of [e] errors and [f] declared
    erasures with [2e + f <= nsym]. *)

module Gf256 = Gf256
(** The underlying field arithmetic. *)

module Ldpc = Ldpc
(** The alternative low-density parity-check code (Section X). *)

type t

val create : k:int -> nsym:int -> t
(** Raises [Invalid_argument] unless [0 < k], [0 < nsym] and
    [k + nsym <= 255]. *)

val n : t -> int
(** Codeword length [k + nsym]. *)

val k : t -> int
val nsym : t -> int

val encode_arr : t -> int array -> int array
(** Systematic encoding: the message is the codeword's prefix. Raises
    [Invalid_argument] when the message length differs from [k]. *)

val syndromes : t -> int array -> int array
val is_codeword : t -> int array -> bool

type decoded = {
  message : int array;
  codeword : int array;  (** the corrected codeword *)
  corrected : int list;  (** positions that were fixed *)
}

val decode_arr : ?erasures:int list -> t -> int array -> (decoded, string) result
(** Decode a received word, treating the listed positions as erasures.
    [Error] on overload (more errata than the code corrects), invalid
    erasure positions, or a failed verification. *)

val encode : t -> Bytes.t -> Bytes.t
(** Byte-level convenience around {!encode_arr}. *)

val decode : ?erasures:int list -> t -> Bytes.t -> (Bytes.t, string) result
(** Byte-level convenience around {!decode_arr}; returns the message. *)
