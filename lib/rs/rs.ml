(** Systematic Reed-Solomon codes over GF(256).

    A code [create ~k ~nsym] maps [k] data bytes to a codeword of
    [n = k + nsym] bytes and corrects any combination of [e] errors and
    [f] erasures with [2e + f <= nsym]. The decoder computes syndromes,
    Forney syndromes for declared erasures, runs Berlekamp-Massey for the
    error locator, finds positions by Chien search and magnitudes by the
    Forney algorithm.

    Polynomials are int arrays with the highest-degree coefficient first,
    matching [Gf256.Poly]. *)

(* [rs.ml] is the ECC library's main module; re-export the field
   arithmetic and the alternative LDPC code as its submodules. *)
module Gf256 = Gf256
module Ldpc = Ldpc

type t = { k : int; nsym : int; gen : int array }

let generator_poly nsym =
  let g = ref [| 1 |] in
  for i = 0 to nsym - 1 do
    g := Gf256.Poly.mul !g [| 1; Gf256.alpha_pow i |]
  done;
  !g

let create ~k ~nsym =
  if k <= 0 || nsym <= 0 || k + nsym > 255 then
    invalid_arg "Rs.create: need k > 0, nsym > 0, k + nsym <= 255";
  { k; nsym; gen = generator_poly nsym }

let n t = t.k + t.nsym
let k t = t.k
let nsym t = t.nsym

let encode_arr t (msg : int array) : int array =
  if Array.length msg <> t.k then invalid_arg "Rs.encode: message length <> k";
  let out = Array.make (t.k + t.nsym) 0 in
  Array.blit msg 0 out 0 t.k;
  (* Polynomial long division of msg * x^nsym by the (monic) generator;
     what is left in the tail is the remainder, i.e. the parity bytes. *)
  for i = 0 to t.k - 1 do
    let coef = out.(i) in
    if coef <> 0 then
      for j = 1 to Array.length t.gen - 1 do
        out.(i + j) <- out.(i + j) lxor Gf256.mul t.gen.(j) coef
      done
  done;
  Array.blit msg 0 out 0 t.k;
  out

let syndromes t (cw : int array) : int array =
  Array.init t.nsym (fun i -> Gf256.Poly.eval cw (Gf256.alpha_pow i))

let is_codeword t cw = Array.for_all (fun s -> s = 0) (syndromes t cw)

(* Errata locator from coefficient positions (position counted from the
   low-order end of the codeword). *)
let errata_locator coef_pos =
  List.fold_left
    (fun acc p -> Gf256.Poly.mul acc (Gf256.Poly.add [| 1 |] [| Gf256.alpha_pow p; 0 |]))
    [| 1 |] coef_pos

(* Omega(x) = (S(x) * Lambda(x)) mod x^(d+1): the low-order d+1
   coefficients of the product, kept highest-degree-first. *)
let error_evaluator synd_poly err_loc d =
  let product = Gf256.Poly.mul synd_poly err_loc in
  let lp = Array.length product in
  let keep = min lp (d + 1) in
  Array.sub product (lp - keep) keep

(* Forney syndromes: fold declared erasures out of the syndromes so that
   Berlekamp-Massey only has to find the unknown error positions. *)
let forney_syndromes t synd erase_pos =
  let nmess = n t in
  let fsynd = Array.copy synd in
  List.iter
    (fun p ->
      let x = Gf256.alpha_pow (nmess - 1 - p) in
      for j = 0 to Array.length fsynd - 2 do
        fsynd.(j) <- Gf256.mul fsynd.(j) x lxor fsynd.(j + 1)
      done)
    erase_pos;
  fsynd

exception Decode_failure of string

(* Berlekamp-Massey on (Forney) syndromes, returning the error locator
   polynomial (highest-degree first). [erase_count] reduces the number of
   iterations available for unknown errors. *)
let error_locator t fsynd ~erase_count =
  let err_loc = ref [| 1 |] in
  let old_loc = ref [| 1 |] in
  for i = 0 to t.nsym - erase_count - 1 do
    let kk = i in
    let delta = ref fsynd.(kk) in
    let el = !err_loc in
    let len = Array.length el in
    for j = 1 to len - 1 do
      if kk - j >= 0 then delta := !delta lxor Gf256.mul el.(len - 1 - j) fsynd.(kk - j)
    done;
    old_loc := Array.append !old_loc [| 0 |];
    if !delta <> 0 then begin
      if Array.length !old_loc > Array.length !err_loc then begin
        let new_loc = Gf256.Poly.scale !old_loc !delta in
        old_loc := Gf256.Poly.scale !err_loc (Gf256.inv !delta);
        err_loc := new_loc
      end;
      err_loc := Gf256.Poly.add !err_loc (Gf256.Poly.scale !old_loc !delta)
    end
  done;
  let el = Gf256.Poly.normalize !err_loc in
  let errs = Array.length el - 1 in
  if (errs * 2) + erase_count > t.nsym then raise (Decode_failure "too many errors");
  el

(* Chien search: roots of the locator give the error positions. *)
let find_errors t err_loc =
  let nmess = n t in
  let errs = Array.length err_loc - 1 in
  let rev = Array.init (Array.length err_loc) (fun i -> err_loc.(Array.length err_loc - 1 - i)) in
  let pos = ref [] in
  for i = 0 to nmess - 1 do
    if Gf256.Poly.eval rev (Gf256.alpha_pow i) = 0 then pos := (nmess - 1 - i) :: !pos
  done;
  if List.length !pos <> errs then
    raise (Decode_failure "locator degree does not match roots found");
  !pos

(* Forney algorithm: compute magnitudes at the errata positions and
   correct the codeword in place. *)
let correct_errata t (cw : int array) synd err_pos =
  let nmess = n t in
  let coef_pos = List.map (fun p -> nmess - 1 - p) err_pos in
  let err_loc = errata_locator coef_pos in
  (* The syndrome polynomial for Forney: s_{d-1} x^d + ... + s_0 x, i.e.
     the reversed syndromes with a trailing zero (S has no constant
     term in this formulation). *)
  let ns = Array.length synd in
  let synd_poly = Array.init (ns + 1) (fun i -> if i < ns then synd.(ns - 1 - i) else 0) in
  let err_eval = error_evaluator synd_poly err_loc (Array.length err_loc - 1) in
  let xs = List.map (fun cp -> Gf256.pow 2 (-(255 - cp))) coef_pos in
  let xs_arr = Array.of_list xs in
  List.iteri
    (fun i pos ->
      let xi = xs_arr.(i) in
      let xi_inv = Gf256.inv xi in
      (* Derivative of the locator at Xi, computed as the product over the
         other roots: prod_j (1 - Xi^-1 Xj). *)
      let err_loc_prime = ref 1 in
      Array.iteri
        (fun j xj ->
          if j <> i then err_loc_prime := Gf256.mul !err_loc_prime (1 lxor Gf256.mul xi_inv xj))
        xs_arr;
      if !err_loc_prime = 0 then raise (Decode_failure "locator derivative is zero");
      let y = Gf256.Poly.eval err_eval xi_inv in
      let y = Gf256.mul xi y in
      let magnitude = Gf256.div y !err_loc_prime in
      cw.(pos) <- cw.(pos) lxor magnitude)
    err_pos;
  cw

type decoded = {
  message : int array;
  codeword : int array;
  corrected : int list;  (** positions (0-based from codeword start) that were fixed *)
}

let decode_arr ?(erasures = []) t (received : int array) : (decoded, string) result =
  if Array.length received <> n t then Error "Rs.decode: wrong codeword length"
  else if List.exists (fun p -> p < 0 || p >= n t) erasures then Error "Rs.decode: erasure position out of range"
  else if List.length erasures > t.nsym then Error "Rs.decode: too many erasures"
  else begin
    let cw = Array.copy received in
    (* Erased positions carry no information; zero them before decoding. *)
    List.iter (fun p -> cw.(p) <- 0) erasures;
    let synd = syndromes t cw in
    if Array.for_all (fun s -> s = 0) synd then
      Ok { message = Array.sub cw 0 t.k; codeword = cw; corrected = [] }
    else begin
      try
        let fsynd = forney_syndromes t synd erasures in
        let err_loc = error_locator t fsynd ~erase_count:(List.length erasures) in
        let err_pos = if Array.length err_loc - 1 = 0 then [] else find_errors t err_loc in
        let all_pos = erasures @ err_pos in
        let cw = correct_errata t cw synd all_pos in
        let synd' = syndromes t cw in
        if Array.for_all (fun s -> s = 0) synd' then
          Ok { message = Array.sub cw 0 t.k; codeword = cw; corrected = all_pos }
        else Error "Rs.decode: correction failed verification"
      with
      | Decode_failure msg -> Error ("Rs.decode: " ^ msg)
      | Division_by_zero -> Error "Rs.decode: internal division by zero"
    end
  end

(* Byte-level convenience wrappers. *)

let arr_of_bytes b = Array.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))
let bytes_of_arr a = Bytes.init (Array.length a) (fun i -> Char.chr a.(i))

let encode t msg = bytes_of_arr (encode_arr t (arr_of_bytes msg))

let decode ?erasures t received =
  Result.map (fun d -> bytes_of_arr d.message) (decode_arr ?erasures t (arr_of_bytes received))
