(** Arithmetic in GF(2^8) with primitive polynomial 0x11d, the field
    conventionally used by Reed-Solomon storage codes. *)

val add : int -> int -> int
(** XOR. *)

val sub : int -> int -> int
(** Same as {!add} in characteristic 2. *)

val mul : int -> int -> int

val mul_unsafe : int -> int -> int
(** [mul] without the zero checks: a single doubled-exp-table lookup.
    Only valid when both operands are known nonzero (it returns garbage
    otherwise); for pre-checked hot loops such as RS syndrome
    computation via {!Poly.eval}. *)

val div : int -> int -> int
(** Raises [Division_by_zero] on a zero divisor. *)

val inv : int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val pow : int -> int -> int
(** [pow a n] for any integer [n]; [pow 0 0 = 1]. Raises
    [Division_by_zero] when [a = 0] and [n < 0]. *)

val alpha_pow : int -> int
(** [alpha_pow i] is the generator 2 raised to [i] (mod 255). *)

val exp_table : int array
val log_table : int array

(** Polynomials over GF(256): int arrays, highest-degree coefficient
    first. *)
module Poly : sig
  type t = int array

  val scale : t -> int -> t
  val add : t -> t -> t
  val mul : t -> t -> t

  val eval : t -> int -> int
  (** Horner evaluation. *)

  val normalize : t -> t
  (** Strip leading zero coefficients, keeping at least one. *)

  val degree : t -> int
end
