(** Arithmetic in GF(2^8) with the primitive polynomial
    x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field conventionally used by
    Reed-Solomon storage codes. Multiplication goes through exp/log
    tables; the exp table is doubled so products need no modulo. *)

let prim = 0x11d

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor prim
  done;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add a b = a lxor b
let sub = add

let mul a b = if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

(* Product of operands already checked nonzero: one doubled-exp-table
   lookup, no branches. Wrong (not zero) on a zero operand — callers
   must guarantee both are nonzero. *)
let mul_unsafe a b = exp_table.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) - log_table.(b) + 255)

let inv a = if a = 0 then raise Division_by_zero else exp_table.(255 - log_table.(a))

let pow a n =
  (* 0^0 = 1 by the polynomial-evaluation convention; a negative power
     of 0 is an inverse of 0 and must fail like [inv 0] does. *)
  if a = 0 then
    if n = 0 then 1 else if n < 0 then raise Division_by_zero else 0
  else begin
    let e = log_table.(a) * n mod 255 in
    let e = if e < 0 then e + 255 else e in
    exp_table.(e)
  end

(* alpha^i for the generator alpha = 2. *)
let alpha_pow i =
  let e = i mod 255 in
  let e = if e < 0 then e + 255 else e in
  exp_table.(e)

(** Polynomials over GF(256), represented as int arrays with the
    highest-degree coefficient first (index 0). *)
module Poly = struct
  type t = int array

  (* Field operations, captured before this module shadows the names. *)
  let gf_mul = mul
  let gf_mul_unsafe = mul_unsafe

  let scale p x = Array.map (fun c -> gf_mul c x) p

  let add (p : t) (q : t) : t =
    let lp = Array.length p and lq = Array.length q in
    let n = max lp lq in
    Array.init n (fun i ->
        let cp = if i + lp >= n then p.(i - (n - lp)) else 0 in
        let cq = if i + lq >= n then q.(i - (n - lq)) else 0 in
        cp lxor cq)

  let mul (p : t) (q : t) : t =
    let r = Array.make (Array.length p + Array.length q - 1) 0 in
    Array.iteri
      (fun i ci ->
        (* Skip zero coefficients and hoist [log ci] out of the inner
           loop; the surviving products have both operands nonzero, one
           exp-table lookup each. *)
        if ci <> 0 then begin
          let li = log_table.(ci) in
          Array.iteri
            (fun j cj ->
              if cj <> 0 then r.(i + j) <- r.(i + j) lxor exp_table.(li + log_table.(cj)))
            q
        end)
      p;
    r

  (* Horner evaluation at x. Hot in RS syndrome computation (nsym
     evaluations per codeword): [log x] is hoisted out of the loop and
     each step is a branch on the accumulator plus one [gf_mul_unsafe]
     lookup — x is nonzero on that path and the zero accumulator is
     handled by the branch. *)
  let eval (p : t) x =
    if x = 0 then (if Array.length p = 0 then 0 else p.(Array.length p - 1))
    else
      Array.fold_left (fun acc c -> (if acc = 0 then 0 else gf_mul_unsafe acc x) lxor c) 0 p

  (* Strip leading zero coefficients (keeping at least one). *)
  let normalize (p : t) : t =
    let n = Array.length p in
    let rec lead i = if i >= n - 1 then i else if p.(i) <> 0 then i else lead (i + 1) in
    let l = lead 0 in
    if l = 0 then p else Array.sub p l (n - l)

  let degree (p : t) =
    let p = normalize p in
    Array.length p - 1
end
