(** A primer-pair -> strand-indices index over an oligo pool: O(own
    molecules) PCR selection instead of an O(pool) scan per get. Used by
    the in-memory {!Kv_store} (maintained on [put]) and by the
    persistent store's per-shard pools (recovered by [build] on load). *)

type t

val create : unit -> t

val key_of_pair : Codec.Primer.pair -> string
(** The hashable identity of a pair: both primer strings. *)

val add : t -> Codec.Primer.pair -> int -> unit
val add_range : t -> Codec.Primer.pair -> first:int -> len:int -> unit
val mem_pair : t -> Codec.Primer.pair -> bool

val indices : t -> Codec.Primer.pair -> int array
(** Pool indices recorded for the pair, ascending; [[||]] when unseen. *)

val remove_pair : t -> Codec.Primer.pair -> unit

val matches : ?max_mismatches:int -> Dna.Strand.t -> Codec.Primer.pair -> bool
(** Strict both-end primer match on a clean molecule (default tolerance
    2 mismatches per primer; pairs are designed >= 8 apart). *)

val select : t -> Dna.Strand.t array -> Codec.Primer.pair -> Dna.Strand.t array
(** Indexed gather of the pair's molecules. *)

val scan_select :
  ?max_mismatches:int -> Dna.Strand.t array -> Codec.Primer.pair -> Dna.Strand.t array
(** The fallback full-pool scan, equivalent to {!select} whenever the
    index covers the pair. *)

val build : pairs:Codec.Primer.pair list -> Dna.Strand.t array -> t
(** Index a pool in one pass given its pair inventory; strands matching
    no pair are left unindexed. *)
