(** Execute declarative scenarios ({!Simulator.Scenario}) through the
    end-to-end pipeline, resolving their fault-plan floors against the
    named {!Faults} matrix — the layer where the simulator's plain-data
    scenario descriptions meet injection and recovery accounting.

    Determinism: one seed fixes everything — the pipeline rng, the fault
    plan and the error-rate probe — so [run] with equal (scenario,
    fault, seed, data) replays bit-identically. *)

type outcome = {
  scenario : string;
  fault : string;  (** fault-plan name from the {!Faults} matrix *)
  seed : int;
  n_bytes : int;
  exact : bool;
  recovered_fraction : float;
  configured_error_rate : float;
      (** analytic per-base rate of the scenario's read-level stack *)
  realized_error_rate : float;
      (** measured by probing the composed channel against known strands *)
  floor : float option;
      (** the scenario's recovered-fraction floor for this fault plan *)
  passed : bool;  (** [recovered_fraction >= floor] (true when no floor) *)
  wall_s : float;
}

(* Probe the composed read-level channel with its own derived stream:
   mean of the per-position error profile over [trials] transmissions.
   Derived (not the pipeline rng) so probing never perturbs the replay. *)
let realized_rate ?(strand_len = 120) ?(trials = 200) channel ~seed =
  let rng = Dna.Rng.create (seed lxor 0x5ca1ab1e) in
  let profile = Simulator.Channel.measure_error_profile channel rng ~strand_len ~trials in
  let n = Array.length profile in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 profile /. float_of_int n

let run_full ?params ?layout ?(coverage = 10) ?domains ?(fault = "clean") ~seed ~data
    (scenario : Simulator.Scenario.t) =
  match Simulator.Scenario.build scenario with
  | Error e -> Error (Printf.sprintf "scenario %s: %s" scenario.Simulator.Scenario.name e)
  | Ok built -> (
      match Faults.find_scenario fault with
      | None -> Error (Printf.sprintf "unknown fault scenario %S" fault)
      | Some fs ->
          let plan = Faults.plan_of_scenario ~seed fs in
          let stages =
            { (Pipeline.default_stages ~coverage ()) with Pipeline.channel = built.channel }
          in
          let rng = Dna.Rng.create seed in
          let t0 = Unix.gettimeofday () in
          let out =
            Pipeline.run ?params ?layout ~stages ?domains ~faults:plan
              ?prepare:built.Simulator.Scenario.prepare rng data
          in
          let wall_s = Unix.gettimeofday () -. t0 in
          let recovered_fraction =
            out.Pipeline.partial.Codec.File_codec.recovered_fraction
          in
          let floor = List.assoc_opt fault scenario.Simulator.Scenario.floors in
          let passed = match floor with None -> true | Some f -> recovered_fraction >= f in
          Ok
            ( {
                scenario = scenario.Simulator.Scenario.name;
                fault;
                seed;
                n_bytes = Bytes.length data;
                exact = out.Pipeline.exact;
                recovered_fraction;
                configured_error_rate = built.Simulator.Scenario.configured_error_rate;
                realized_error_rate = realized_rate built.Simulator.Scenario.channel ~seed;
                floor;
                passed;
                wall_s;
              },
              out ))

let run ?params ?layout ?coverage ?domains ?fault ~seed ~data scenario =
  Result.map fst (run_full ?params ?layout ?coverage ?domains ?fault ~seed ~data scenario)

let sweep ?params ?layout ?coverage ?domains ~faults ~seeds ~data scenarios =
  let ( let* ) = Result.bind in
  let rec over_scenarios acc = function
    | [] -> Ok (List.rev acc)
    | sc :: rest ->
        (* Every floor the scenario declares must name a known fault
           plan, whether or not this sweep exercises it. *)
        let* () =
          List.fold_left
            (fun ok (fault, _) ->
              let* () = ok in
              match Faults.find_scenario fault with
              | Some _ -> Ok ()
              | None ->
                  Error
                    (Printf.sprintf "scenario %s: floor references unknown fault %S"
                       sc.Simulator.Scenario.name fault))
            (Ok ()) sc.Simulator.Scenario.floors
        in
        let rec over_faults acc = function
          | [] -> Ok acc
          | fault :: faults ->
              let rec over_seeds acc = function
                | [] -> Ok acc
                | seed :: seeds ->
                    let* o = run ?params ?layout ?coverage ?domains ~fault ~seed ~data sc in
                    over_seeds (o :: acc) seeds
              in
              let* acc = over_seeds acc seeds in
              over_faults acc faults
        in
        let* acc = over_faults acc faults in
        over_scenarios acc rest
  in
  over_scenarios [] scenarios

let failures outcomes = List.filter (fun o -> not o.passed) outcomes

(* JSON for sweep artifacts (BENCH_scenarios.json, --out files): one
   object per cell, shaped for a guard script to assert floors on. *)
let outcome_json (o : outcome) =
  Store_json.Obj
    [
      ("scenario", Store_json.String o.scenario);
      ("fault", Store_json.String o.fault);
      ("seed", Store_json.Int o.seed);
      ("n_bytes", Store_json.Int o.n_bytes);
      ("exact", Store_json.Bool o.exact);
      ("recovered_fraction", Store_json.Float o.recovered_fraction);
      ("configured_error_rate", Store_json.Float o.configured_error_rate);
      ("realized_error_rate", Store_json.Float o.realized_error_rate);
      ( "floor",
        match o.floor with None -> Store_json.Null | Some f -> Store_json.Float f );
      ("passed", Store_json.Bool o.passed);
      ("wall_s", Store_json.Float o.wall_s);
    ]

let outcomes_json outcomes =
  Store_json.Obj
    [
      ("cells", Store_json.List (List.map outcome_json outcomes));
      ("n_cells", Store_json.Int (List.length outcomes));
      ("n_failed", Store_json.Int (List.length (failures outcomes)));
    ]
