(** Deterministic fault injection (the robustness harness).

    A {!plan} pairs a fault list with a seed; every injection draws from
    a stream derived from that seed alone, never from the pipeline's
    ambient rng, so a scenario replays bit-identically and fault sites
    stay independent of each other. Wire a plan into
    {!Pipeline.run} via its [?faults] argument. *)

type stage = Encode | Simulate | Cluster | Reconstruct | Decode

val stage_name : stage -> string

exception Crash of stage
(** Raised by a {!Stage_crash} fault on stage entry. *)

exception Stuck of stage
(** Raised by a {!Stage_stuck} fault: a hang detected and killed by a
    watchdog, modeled as an exception. *)

type fault =
  | Strand_dropout of float
      (** each encoded strand lost before sequencing with this
          probability (synthesis failure / PCR skew) *)
  | Undersampling of float
      (** oligo-pool undersampling: only this fraction of reads is
          sampled, uniformly without replacement *)
  | Read_truncation of { p : float; keep_min : float }
      (** each read truncated with probability [p] to a uniform fraction
          of its length in [keep_min, 1) *)
  | Read_corruption of float
      (** extra per-base substitution rate on every read *)
  | Cluster_loss of float
      (** each cluster dropped whole with this probability *)
  | Stage_crash of stage
  | Stage_stuck of stage

val fault_name : fault -> string

type plan = { seed : int; faults : fault list }

val plan : ?seed:int -> fault list -> plan

val trigger : plan -> stage -> unit
(** Raise {!Crash} or {!Stuck} if the plan injects one at this stage;
    otherwise a no-op. Pure apart from the raise: safe to call from
    parallel tasks. *)

val inject_strands : plan -> Dna.Strand.t array -> Dna.Strand.t array
(** Apply pool-level faults ({!Strand_dropout}) between encode and
    sequencing. *)

val inject_reads : plan -> Simulator.Sequencer.read array -> Simulator.Sequencer.read array
(** Apply read-level faults ({!Undersampling}, {!Read_truncation},
    {!Read_corruption}) between sequencing and clustering. *)

val inject_clusters : plan -> Dna.Strand.t list list -> Dna.Strand.t list list
(** Apply {!Cluster_loss} between clustering and reconstruction. *)

val inject_cluster_slices : plan -> int array list -> int array list
(** {!inject_clusters} for the pooled pipeline's cluster index-slices:
    draw-for-draw identical stream, so both spines lose the same
    clusters under one plan. *)

(** {2 The named scenario matrix} *)

type scenario = {
  scenario_name : string;
  scenario_faults : fault list;
  min_recovered : float;
      (** recovered-fraction floor this scenario must report (0.0 when
          the fault budget intentionally exceeds the RS erasure budget
          and only never-raise is asserted) *)
}

val scenarios : scenario list
(** Dropout, cluster loss, truncation, corruption, undersampling,
    combined, and stage crash/stuck scenarios — all within (or
    deliberately beyond, with [min_recovered = 0.0]) the codec's
    documented budgets. *)

val find_scenario : string -> scenario option

val plan_of_scenario : seed:int -> scenario -> plan
