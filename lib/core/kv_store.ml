(** The key-value store architecture over a DNA pool (Section II-F).

    A pair of PCR primers is the key; the payloads of all molecules
    flanked by that pair are the value. [put] encodes a file, assigns it
    a fresh primer pair and drops the tagged molecules into the shared
    pool — unordered, mixed with every other file. [get] runs the random
    access path: PCR selection by primer match, sequencing through the
    configured channel, clustering, reconstruction, primer stripping and
    decoding. *)

type entry = {
  key : string;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
}

type t = {
  rng : Dna.Rng.t;
  mutable pool : Dna.Strand.t array;  (** the test tube: all molecules of all files *)
  mutable directory : entry list;  (** external metadata, not stored in DNA *)
  mutable primers_used : Codec.Primer.pair list;
}

let create ~seed = { rng = Dna.Rng.create seed; pool = [||]; directory = []; primers_used = [] }

let mem t key = List.exists (fun e -> e.key = key) t.directory
let keys t = List.map (fun e -> e.key) t.directory
let pool_size t = Array.length t.pool

type put_error =
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
      (** no primer pair far enough from every pair already in use *)

let put_error_message = function
  | Duplicate_key key -> "Kv_store.put: duplicate key " ^ key
  | Primer_space_exhausted { attempts } ->
      Printf.sprintf "Kv_store.put: primer space exhausted after %d attempts" attempts

let max_pair_attempts = 1000

let fresh_pair t : (Codec.Primer.pair, put_error) result =
  (* Keep the new pair far from every existing primer (and their reverse
     complements) so PCR selection stays specific. *)
  let rec attempt tries =
    if tries >= max_pair_attempts then Error (Primer_space_exhausted { attempts = tries })
    else begin
      match Codec.Primer.generate_pairs t.rng 1 with
      | Error (Codec.Primer.Constraints_unsatisfiable { attempts; _ }) ->
          Error (Primer_space_exhausted { attempts })
      | Ok candidates ->
          let cand = candidates.(0) in
          let far p q = Dna.Distance.hamming p q >= 8 in
          let all_far p =
            List.for_all
              (fun used ->
                far p used.Codec.Primer.forward && far p used.Codec.Primer.reverse
                && far p (Dna.Strand.reverse_complement used.Codec.Primer.forward)
                && far p (Dna.Strand.reverse_complement used.Codec.Primer.reverse))
              t.primers_used
          in
          if all_far cand.Codec.Primer.forward && all_far cand.Codec.Primer.reverse then Ok cand
          else attempt (tries + 1)
    end
  in
  Result.map
    (fun pair ->
      t.primers_used <- pair :: t.primers_used;
      pair)
    (attempt 0)

let put ?(params = Codec.Params.default) ?(layout = Codec.Layout.Baseline) t ~key
    (file : Bytes.t) : (unit, put_error) result =
  if mem t key then Error (Duplicate_key key)
  else begin
    match fresh_pair t with
    | Error err -> Error err
    | Ok pair ->
        let encoded = Codec.File_codec.encode ~layout ~params file in
        let tagged = Array.map (Codec.Primer.attach pair) encoded.Codec.File_codec.strands in
        t.pool <- Array.append t.pool tagged;
        Dna.Rng.shuffle_in_place t.rng t.pool;
        t.directory <-
          {
            key;
            pair;
            n_units = encoded.Codec.File_codec.n_units;
            params;
            layout;
            original_size = Bytes.length file;
          }
          :: t.directory;
        Ok ()
  end

let put_exn ?params ?layout t ~key file =
  match put ?params ?layout t ~key file with
  | Ok () -> ()
  | Error e -> invalid_arg (put_error_message e)

(* PCR selection: amplify exactly the molecules carrying both primers.
   The pool holds clean synthesized strands, so matching is strict here;
   tolerant matching happens on noisy reads in [get]. *)
let pcr_select t pair =
  Array.of_list
    (List.filter
       (fun s ->
         Codec.Primer.mismatches_at s ~pos:0 ~pattern:pair.Codec.Primer.forward <= 2
         && Codec.Primer.mismatches_at s
              ~pos:(Dna.Strand.length s - Codec.Primer.primer_length)
              ~pattern:pair.Codec.Primer.reverse
            <= 2)
       (Array.to_list t.pool))

type get_error = Key_not_found | Decode_failed of string

let get ?(stages = Pipeline.default_stages ()) ?(domains = Dna.Par.default_domains ()) t ~key :
    (Bytes.t * Pipeline.timings, get_error) result =
  match List.find_opt (fun e -> e.key = key) t.directory with
  | None -> Error Key_not_found
  | Some entry ->
      let t0 = Unix.gettimeofday () in
      let selected = pcr_select t entry.pair in
      (* Sequencing: noisy reads of the selected molecules, arriving in
         both orientations like a real sequencer run. *)
      let sequencing = { stages.Pipeline.sequencing with Simulator.Sequencer.p_reverse = 0.5 } in
      let reads =
        Simulator.Sequencer.sequence ~domains sequencing stages.Pipeline.channel t.rng selected
      in
      let t1 = Unix.gettimeofday () in
      (* Preprocess: orientation-normalize, strip primers. *)
      let cores =
        Array.to_list reads
        |> List.filter_map (fun r ->
               Codec.Primer.normalize entry.pair r.Simulator.Sequencer.seq)
        |> Array.of_list
      in
      let clusters = stages.Pipeline.cluster t.rng cores in
      let t2 = Unix.gettimeofday () in
      let target_len = Codec.Params.strand_nt entry.params in
      let consensus =
        (* Largest clusters first so their consensus claims the column. *)
        let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
        Array.sort (fun a b -> compare (Array.length b) (Array.length a)) cluster_arr;
        Dna.Par.map_array ~label:"kv.reconstruct" ~domains
          (fun reads ->
            if Array.length reads = 0 then None
            else Some (stages.Pipeline.reconstruct ~target_len reads))
          cluster_arr
        |> Array.to_list |> List.filter_map Fun.id
      in
      let t3 = Unix.gettimeofday () in
      let result =
        Codec.File_codec.decode ~layout:entry.layout ~params:entry.params
          ~n_units:entry.n_units consensus
      in
      let t4 = Unix.gettimeofday () in
      let timings =
        {
          Pipeline.encode_s = 0.0;
          simulate_s = t1 -. t0;
          cluster_s = t2 -. t1;
          reconstruct_s = t3 -. t2;
          decode_s = t4 -. t3;
        }
      in
      (match result with
      | Ok (bytes, _) -> Ok (bytes, timings)
      | Error e -> Error (Decode_failed (Codec.File_codec.error_message e)))
