(** The key-value store architecture over a DNA pool (Section II-F).

    A pair of PCR primers is the key; the payloads of all molecules
    flanked by that pair are the value. [put] encodes a file, assigns it
    a fresh primer pair and drops the tagged molecules into the shared
    pool — mixed with every other file. [get] runs the random access
    path: PCR selection by primer match, sequencing through the
    configured channel, clustering, reconstruction, primer stripping and
    decoding. *)

type entry = {
  key : string;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
}

type t = {
  rng : Dna.Rng.t;
  mutable pool : Dna.Strand.t array;  (** the test tube: all molecules of all files *)
  mutable directory : entry list;  (** external metadata, not stored in DNA *)
  primers : Codec.Primer.Registry.t;  (** pairs in use, kept pairwise far apart *)
  index : Primer_index.t;  (** primer pair -> pool indices, maintained on [put] *)
}

let create ~seed =
  {
    rng = Dna.Rng.create seed;
    pool = [||];
    directory = [];
    primers = Codec.Primer.Registry.create ();
    index = Primer_index.create ();
  }

let mem t key = List.exists (fun e -> e.key = key) t.directory
let keys t = List.map (fun e -> e.key) t.directory
let pool_size t = Array.length t.pool

type put_error =
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
      (** no primer pair far enough from every pair already in use *)

let put_error_message = function
  | Duplicate_key key -> "Kv_store.put: duplicate key " ^ key
  | Primer_space_exhausted { attempts } ->
      Printf.sprintf "Kv_store.put: primer space exhausted after %d attempts" attempts

let max_pair_attempts = 1000

let fresh_pair t : (Codec.Primer.pair, put_error) result =
  match Codec.Primer.Registry.fresh ~max_attempts:max_pair_attempts t.primers t.rng with
  | Ok pair -> Ok pair
  | Error (Codec.Primer.Constraints_unsatisfiable { attempts; _ }) ->
      Error (Primer_space_exhausted { attempts })

let put ?(params = Codec.Params.default) ?(layout = Codec.Layout.Baseline) t ~key
    (file : Bytes.t) : (unit, put_error) result =
  if mem t key then Error (Duplicate_key key)
  else begin
    match fresh_pair t with
    | Error err -> Error err
    | Ok pair -> (
        (* The pair is reserved before encoding; if encoding rejects the
           input, hand it back instead of leaking primer space. *)
        match Codec.File_codec.encode ~layout ~params file with
        | exception e ->
            Codec.Primer.Registry.release t.primers pair;
            raise e
        | encoded ->
            let tagged = Array.map (Codec.Primer.attach pair) encoded.Codec.File_codec.strands in
            let first = Array.length t.pool in
            t.pool <- Array.append t.pool tagged;
            (* The pool is no longer shuffled: selection is index-based
               and the sequencer shuffles reads, so pool order carries no
               information downstream. *)
            Primer_index.add_range t.index pair ~first ~len:(Array.length tagged);
            t.directory <-
              {
                key;
                pair;
                n_units = encoded.Codec.File_codec.n_units;
                params;
                layout;
                original_size = Bytes.length file;
              }
              :: t.directory;
            Ok ())
  end

let put_exn ?params ?layout t ~key file =
  match put ?params ?layout t ~key file with
  | Ok () -> ()
  | Error e -> invalid_arg (put_error_message e)

(* PCR selection: amplify exactly the molecules carrying both primers.
   Pairs recorded by [put] resolve through the index in O(own
   molecules); unknown pairs fall back to the tolerant full-pool scan. *)
let pcr_select t pair =
  if Primer_index.mem_pair t.index pair then Primer_index.select t.index t.pool pair
  else Primer_index.scan_select t.pool pair

type get_error = Key_not_found | Decode_failed of string

let get ?(stages = Pipeline.default_stages ()) ?(domains = Dna.Par.default_domains ()) t ~key :
    (Bytes.t * Pipeline.timings, get_error) result =
  match List.find_opt (fun e -> e.key = key) t.directory with
  | None -> Error Key_not_found
  | Some entry ->
      let t0 = Unix.gettimeofday () in
      let selected = pcr_select t entry.pair in
      (* Sequencing: noisy reads of the selected molecules, arriving in
         both orientations like a real sequencer run. *)
      let sequencing = { stages.Pipeline.sequencing with Simulator.Sequencer.p_reverse = 0.5 } in
      let reads =
        Simulator.Sequencer.sequence ~domains sequencing stages.Pipeline.channel t.rng selected
      in
      let t1 = Unix.gettimeofday () in
      (* Preprocess: orientation-normalize, strip primers. *)
      let cores =
        Array.to_list reads
        |> List.filter_map (fun r ->
               Codec.Primer.normalize entry.pair r.Simulator.Sequencer.seq)
        |> Array.of_list
      in
      let clusters = stages.Pipeline.cluster t.rng cores in
      let t2 = Unix.gettimeofday () in
      let target_len = Codec.Params.strand_nt entry.params in
      let reconstructed =
        let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
        Pipeline.sort_clusters cluster_arr;
        Dna.Par.map_array ~label:"kv.reconstruct" ~domains
          (fun reads ->
            if Array.length reads = 0 then (None, 0.0)
            else begin
              let c0 = Unix.gettimeofday () in
              let s = stages.Pipeline.reconstruct ~target_len reads in
              (Some s, Unix.gettimeofday () -. c0)
            end)
          cluster_arr
      in
      let consensus = List.filter_map fst (Array.to_list reconstructed) in
      let cluster_times =
        Array.of_list
          (List.filter_map
             (fun (r, dt) -> if r = None then None else Some dt)
             (Array.to_list reconstructed))
      in
      let t3 = Unix.gettimeofday () in
      let result =
        Codec.File_codec.decode ~layout:entry.layout ~params:entry.params
          ~n_units:entry.n_units consensus
      in
      let t4 = Unix.gettimeofday () in
      let timings =
        {
          Pipeline.encode_s = 0.0;
          simulate_s = t1 -. t0;
          cluster_s = t2 -. t1;
          reconstruct_s = t3 -. t2;
          reconstruct_p50_s = Pipeline.percentile cluster_times 0.50;
          reconstruct_p95_s = Pipeline.percentile cluster_times 0.95;
          decode_s = t4 -. t3;
        }
      in
      (match result with
      | Ok (bytes, _) -> Ok (bytes, timings)
      | Error e -> Error (Decode_failed (Codec.File_codec.error_message e)))
