(** The end-to-end pipeline (Section III, Figure 1): five swappable
    stages wired from a file to its recovery, with per-stage wall-clock
    latencies (Table III).

    [run] never raises: crashing stages are caught and degraded, decode
    failures surface as a structured outcome, and the [partial] record
    maps what survived. *)

type stages = {
  channel : Simulator.Channel.t;
  sequencing : Simulator.Sequencer.params;
  cluster : Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list;
  reconstruct : target_len:int -> Dna.Strand.t array -> Dna.Strand.t;
}

type timings = {
  encode_s : float;
  simulate_s : float;
  cluster_s : float;
  reconstruct_s : float;
  reconstruct_p50_s : float;
      (** median per-cluster reconstruction wall time (0 outside [run]) *)
  reconstruct_p95_s : float;
      (** 95th-percentile per-cluster reconstruction wall time: the tail
          a perf change must move, dominated by the largest clusters *)
  decode_s : float;
}

val total_s : timings -> float
(** Sum of the five stage latencies (the percentile fields are
    summaries of [reconstruct_s]'s per-cluster breakdown, not extra
    stages). *)

type outcome = {
  file : Bytes.t option;  (** [None] when decoding failed outright *)
  exact : bool;  (** decoded bytes match the input exactly *)
  partial : Codec.File_codec.partial_recovery;
      (** what survived: per-unit status, recovered fraction and byte
          ranges (all-lost when [file = None]) *)
  stage_failures : (Faults.stage * string) list;
      (** stages that raised and were degraded, oldest first *)
  decode_error : string option;  (** why [file] is [None], when it is *)
  timings : timings;
  n_strands : int;
  n_reads : int;
  n_clusters : int;
  decode_stats : Codec.File_codec.decode_stats option;
}

val cluster_default :
  ?kind:Clustering.Signature.kind -> ?domains:int -> unit ->
  Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list
(** The default clustering stage: thresholds auto-configured from the
    data, then the iterative merge algorithm. *)

val reconstruct_bma : target_len:int -> Dna.Strand.t array -> Dna.Strand.t
val reconstruct_dbma : target_len:int -> Dna.Strand.t array -> Dna.Strand.t

val reconstruct_nw :
  ?backend:Dna.Alignment.backend -> target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** [backend] selects the pairwise alignment kernel (the consensus is
    identical for every choice; see {!Dna.Alignment.align}). *)

val default_stages :
  ?error_rate:float -> ?coverage:int -> ?recon_backend:Dna.Alignment.backend -> unit -> stages
(** i.i.d. channel at 6%, fixed coverage 10, auto-configured q-gram
    clustering, Needleman-Wunsch reconstruction running on
    [recon_backend] (default: the process-wide
    {!Dna.Alignment.current_default_backend}). *)

val percentile : float array -> float -> float
(** [percentile xs q] is the nearest-rank [q]-quantile ([0 < q <= 1]) of
    [xs] (not required to be sorted); 0 when [xs] is empty. Feeds the
    [reconstruct_p50_s]/[reconstruct_p95_s] fields. *)

val sort_clusters : Dna.Strand.t array array -> unit
(** In-place: largest clusters first (their consensus claims the column
    on conflicts), equal sizes tie-broken by their reads (length, then
    lexicographic) so the order is deterministic however the clustering
    stage emitted them — e.g. across [--domains] settings. Shared by
    [run], [Kv_store.get] and the persistent store's decode path. *)

val run :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> ?stages:stages -> ?domains:int ->
  ?faults:Faults.plan ->
  ?prepare:(Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array) ->
  Dna.Rng.t -> Bytes.t -> outcome
(** Encode, simulate, cluster, reconstruct (largest clusters first),
    decode. Never raises.

    [prepare] transforms the encoded strand pool between encode and
    sequencing — the hook scenario stacks use for physical pool models
    (aging decay, PCR amplification bias; see {!Simulator.Scenario} and
    {!Scenario_run}). It runs inside the simulate stage (its cost counts
    toward [simulate_s], a raise degrades like a simulate crash) and
    draws from the ambient [rng]. [n_strands] reports the pool size
    {e before} [prepare], i.e. what the codec synthesized.

    [faults] injects the plan's seeded data faults between stages
    (dropout after encode; undersampling, truncation and corruption
    after sequencing; cluster loss after clustering) and its crash/stuck
    faults at stage entry. Degradation on a crashing stage: clustering
    falls back to singleton clusters, reconstruction falls back through
    {!Reconstruction.Ensemble.reconstruct_fallback} (NW -> BMA ->
    majority) per cluster, decode crashes return an all-lost [partial].
    Given equal seeds (pipeline rng and fault plan), the outcome replays
    bit-identically.

    [domains] (default {!Dna.Par.default_domains}) parallelizes
    per-strand read synthesis and per-cluster reconstruction. Under a
    fixed seed, clustering and reconstruction outputs are identical for
    every worker count; the simulated read set is identical across all
    [domains > 1] (see {!Simulator.Sequencer.sequence} for the serial
    path's draw order). [Dna.Par.counters] exposes per-stage parallel
    timing, renderable with {!Report.par_counters}. *)
