(** The end-to-end pipeline (Section III, Figure 1): five swappable
    stages wired from a file to its recovery, with per-stage wall-clock
    latencies (Table III).

    The decode spine comes in two shapes: the default {e pooled} spine
    keeps every read in one {!Dna.Strand_pool} arena from the channel
    to the consensus (clusters are index slices, reconstruction runs on
    [(pool, index)] views with per-domain scratch), and the {e boxed}
    spine is the original strand-array path, kept as the oracle the
    pooled spine is property-tested bit-identical against and as the
    carrier for custom {!stages} closures. [?recon_pool] picks.

    [run] never raises: crashing stages are caught and degraded, decode
    failures surface as a structured outcome, and the [partial] record
    maps what survived. *)

type stages = {
  channel : Simulator.Channel.t;
  sequencing : Simulator.Sequencer.params;
  cluster : Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list;
  reconstruct : target_len:int -> Dna.Strand.t array -> Dna.Strand.t;
}

type pooled_stages = {
  cluster_pool : Dna.Rng.t -> Dna.Strand_pool.t -> int array list;
      (** arena in, cluster index-slices out *)
  reconstruct_pool : target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t;
      (** consensus of one index slice *)
}

(** Spine selection for {!run}: [Pool_auto] (the default) uses the
    pooled spine unless custom boxed [?stages] were supplied without
    [?pooled] ones; [Pool_on]/[Pool_off] force a spine. *)
type pool_mode = Pool_auto | Pool_on | Pool_off

type timings = {
  encode_s : float;
  simulate_s : float;
  cluster_s : float;
  reconstruct_s : float;
  reconstruct_p50_s : float;
      (** median per-cluster reconstruction wall time (0 outside [run]);
          populated by both spines *)
  reconstruct_p95_s : float;
      (** 95th-percentile per-cluster reconstruction wall time: the tail
          a perf change must move, dominated by the largest clusters *)
  decode_s : float;
}

val total_s : timings -> float
(** Sum of the five stage latencies (the percentile fields are
    summaries of [reconstruct_s]'s per-cluster breakdown, not extra
    stages). *)

type outcome = {
  file : Bytes.t option;  (** [None] when decoding failed outright *)
  exact : bool;  (** decoded bytes match the input exactly *)
  partial : Codec.File_codec.partial_recovery;
      (** what survived: per-unit status, recovered fraction and byte
          ranges (all-lost when [file = None]) *)
  stage_failures : (Faults.stage * string) list;
      (** stages that raised and were degraded, oldest first *)
  decode_error : string option;  (** why [file] is [None], when it is *)
  timings : timings;
  n_strands : int;
  n_reads : int;
  n_clusters : int;
  reconstruct_words_per_cluster : float;
      (** mean minor-heap words allocated per reconstructed cluster
          (exact with [domains = 1], an approximation under parallel
          workers) — the allocation tax the pooled spine removes;
          renderable with {!Report.recon_alloc} *)
  decode_stats : Codec.File_codec.decode_stats option;
}

val cluster_default :
  ?kind:Clustering.Signature.kind -> ?domains:int -> unit ->
  Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list
(** The default clustering stage: thresholds auto-configured from the
    data, then the iterative merge algorithm. *)

val cluster_scaled_default :
  ?kind:Clustering.Signature.kind -> ?domains:int -> unit ->
  Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list
(** The scaled engine ({!Clustering.Cluster.run_scaled}) behind the
    boxed stage type. Its rng draws differ from {!cluster_default}'s
    merge engine, but are draw-for-draw identical to
    {!cluster_pool_default} on the same reads — the boxed half of a
    boxed-vs-pooled A/B under one seed. *)

val cluster_pool_default :
  ?kind:Clustering.Signature.kind -> ?domains:int -> unit ->
  Dna.Rng.t -> Dna.Strand_pool.t -> int array list
(** Pool-native default clustering: auto-configured thresholds, the
    scaled engine, clusters returned as index slices into the arena. *)

val reconstruct_bma : target_len:int -> Dna.Strand.t array -> Dna.Strand.t
val reconstruct_dbma : target_len:int -> Dna.Strand.t array -> Dna.Strand.t

val reconstruct_nw :
  ?backend:Dna.Alignment.backend -> target_len:int -> Dna.Strand.t array -> Dna.Strand.t
(** [backend] selects the pairwise alignment kernel (the consensus is
    identical for every choice; see {!Dna.Alignment.align}). *)

val reconstruct_nw_pool :
  ?backend:Dna.Alignment.backend -> target_len:int -> Dna.Strand_pool.t -> int array ->
  Dna.Strand.t
(** {!reconstruct_nw} over a cluster index-slice of an arena pool —
    bit-identical to the boxed consensus on the same reads. *)

val default_stages :
  ?error_rate:float -> ?coverage:int -> ?recon_backend:Dna.Alignment.backend -> unit -> stages
(** i.i.d. channel at 6%, fixed coverage 10, auto-configured q-gram
    clustering, Needleman-Wunsch reconstruction running on
    [recon_backend] (default: the process-wide
    {!Dna.Alignment.current_default_backend}). *)

val default_pooled_stages :
  ?recon_backend:Dna.Alignment.backend -> unit -> pooled_stages
(** Pool-native defaults: {!cluster_pool_default} and
    {!reconstruct_nw_pool}. *)

val percentile : float array -> float -> float
(** [percentile xs q] is the nearest-rank [q]-quantile ([0 < q <= 1]) of
    [xs] (not required to be sorted); 0 when [xs] is empty. Feeds the
    [reconstruct_p50_s]/[reconstruct_p95_s] fields on both spines. *)

val sort_clusters : Dna.Strand.t array array -> unit
(** In-place: largest clusters first (their consensus claims the column
    on conflicts), equal sizes tie-broken by their reads (length, then
    lexicographic) so the order is deterministic however the clustering
    stage emitted them — e.g. across [--domains] settings. Shared by
    [run], [Kv_store.get] and the persistent store's decode path. *)

val sort_cluster_slices : Dna.Strand_pool.t -> int array array -> unit
(** {!sort_clusters} over index slices, reads compared through their
    pool views: both spines hand the decoder the same cluster order,
    and the Par pool starts the big clusters first (tail latency). *)

val run :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> ?stages:stages ->
  ?pooled:pooled_stages -> ?recon_pool:pool_mode -> ?domains:int ->
  ?faults:Faults.plan ->
  ?prepare:(Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array) ->
  Dna.Rng.t -> Bytes.t -> outcome
(** Encode, simulate, cluster, reconstruct (largest clusters first),
    decode. Never raises.

    [recon_pool] selects the spine (see {!pool_mode}). The pooled spine
    sequences serially into one arena (draw-for-draw identical to
    [sequence ~domains:1], hence the same read set), clusters into
    index slices and reconstructs through [pooled] (default
    {!default_pooled_stages}); its parallelism lives in clustering and
    per-cluster reconstruction. The [channel]/[sequencing] fields of
    [stages] feed both spines.

    [prepare] transforms the encoded strand pool between encode and
    sequencing — the hook scenario stacks use for physical pool models
    (aging decay, PCR amplification bias; see {!Simulator.Scenario} and
    {!Scenario_run}). It runs inside the simulate stage (its cost counts
    toward [simulate_s], a raise degrades like a simulate crash) and
    draws from the ambient [rng]. [n_strands] reports the pool size
    {e before} [prepare], i.e. what the codec synthesized.

    [faults] injects the plan's seeded data faults between stages
    (dropout after encode; undersampling, truncation and corruption
    after sequencing; cluster loss after clustering) and its crash/stuck
    faults at stage entry. Degradation on a crashing stage: clustering
    falls back to singleton clusters, reconstruction falls back through
    {!Reconstruction.Ensemble.reconstruct_fallback} (NW -> BMA ->
    majority; the pool-native chain on the pooled spine) per cluster,
    decode crashes return an all-lost [partial]. Given equal seeds
    (pipeline rng and fault plan), the outcome replays bit-identically.
    On the pooled spine, read-level faults materialize views, inject,
    and rebuild a fresh arena (committed reads are write-once).

    [domains] (default {!Dna.Par.default_domains}) parallelizes
    per-strand read synthesis (boxed spine) and per-cluster
    reconstruction (both spines). Under a fixed seed, clustering and
    reconstruction outputs are identical for every worker count; the
    simulated read set is identical across all [domains] on both spines
    (see {!Simulator.Sequencer.sequence} for the serial path's draw
    order). [Dna.Par.counters] exposes per-stage parallel timing,
    renderable with {!Report.par_counters}. *)
