(** Plain-text rendering of experiment results: aligned tables and ASCII
    profiles, used by the benchmark harness to print each of the paper's
    tables and figure series. *)

(* Render rows as a column-aligned table. The first row is the header. *)
let table (rows : string list list) : string =
  match rows with
  | [] -> ""
  | header :: _ ->
      let n_cols = List.length header in
      let widths = Array.make n_cols 0 in
      List.iter
        (fun row ->
          List.iteri (fun i cell -> if i < n_cols then widths.(i) <- max widths.(i) (String.length cell)) row)
        rows;
      let buf = Buffer.create 256 in
      let render_row row =
        List.iteri
          (fun i cell ->
            Buffer.add_string buf cell;
            if i < n_cols - 1 then
              Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
          row;
        Buffer.add_char buf '\n'
      in
      render_row header;
      Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (n_cols - 1)) widths) '-');
      Buffer.add_char buf '\n';
      List.iter render_row (List.tl rows);
      Buffer.contents buf

(* An ASCII rendering of a y-series (e.g. a per-index error profile):
   one bar column per bucket of x values. *)
let ascii_profile ?(height = 10) ?(buckets = 55) (ys : float array) : string =
  let n = Array.length ys in
  if n = 0 then ""
  else begin
    let buckets = min buckets n in
    let bucketed =
      Array.init buckets (fun b ->
          let lo = b * n / buckets and hi = max (b * n / buckets + 1) ((b + 1) * n / buckets) in
          let s = ref 0.0 in
          for i = lo to hi - 1 do
            s := !s +. ys.(i)
          done;
          !s /. float_of_int (hi - lo))
    in
    let ymax = Array.fold_left max 1e-9 bucketed in
    let buf = Buffer.create 1024 in
    for level = height downto 1 do
      let threshold = float_of_int level /. float_of_int height *. ymax in
      Buffer.add_string buf (Printf.sprintf "%6.3f |" threshold);
      Array.iter
        (fun y -> Buffer.add_char buf (if y >= threshold -. (ymax /. float_of_int height /. 2.0) then '#' else ' '))
        bucketed;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf ("       +" ^ String.make buckets '-' ^ "\n");
    Buffer.add_string buf (Printf.sprintf "        index 0 .. %d (max y = %.4f)\n" (n - 1) ymax);
    Buffer.contents buf
  end

(* Per-stage counters from the parallel execution layer, one row per
   label: regions entered, tasks run, accumulated wall time. *)
let par_counters (counters : Dna.Par.counter list) : string =
  match counters with
  | [] -> ""
  | _ ->
      table
        ([ "parallel stage"; "regions"; "tasks"; "wall (s)" ]
        :: List.map
             (fun c ->
               [
                 c.Dna.Par.label;
                 string_of_int c.Dna.Par.regions;
                 string_of_int c.Dna.Par.tasks;
                 Printf.sprintf "%.3f" c.Dna.Par.wall_s;
               ])
             counters)

(* One-block rendering of a partial-recovery record: the per-unit
   status line, the recovered fraction, and the surviving byte ranges.
   Used by the CLI's [faults] subcommand after a degraded decode. *)
let recovery (p : Codec.File_codec.partial_recovery) : string =
  let buf = Buffer.create 256 in
  let counts = Array.fold_left
      (fun (r, d, l) s ->
        match s with
        | Codec.File_codec.Recovered -> (r + 1, d, l)
        | Codec.File_codec.Degraded _ -> (r, d + 1, l)
        | Codec.File_codec.Lost -> (r, d, l + 1))
      (0, 0, 0) p.Codec.File_codec.unit_status
  in
  let r, d, l = counts in
  Buffer.add_string buf
    (Printf.sprintf "units: %d recovered, %d degraded, %d lost\n" r d l);
  Buffer.add_string buf
    (Printf.sprintf "recovered fraction: %.4f\n" p.Codec.File_codec.recovered_fraction);
  (match p.Codec.File_codec.recovered_ranges with
  | [] -> Buffer.add_string buf "recovered ranges: none\n"
  | ranges ->
      Buffer.add_string buf "recovered ranges: ";
      Buffer.add_string buf
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) ranges));
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* One line of cache accounting, e.g. for the persistent store's LRU of
   decoded objects. *)
let cache_counters ~label ~hits ~misses =
  let total = hits + misses in
  if total = 0 then Printf.sprintf "%s cache: no lookups\n" label
  else
    Printf.sprintf "%s cache: %d hits / %d misses (%.1f%% hit rate)\n" label hits misses
      (100.0 *. float_of_int hits /. float_of_int total)

(* One line of per-cluster reconstruction tail latency, from the
   percentile fields of [Pipeline.timings] (passed as floats so the
   rendering layer does not depend on the pipeline record). *)
let recon_percentiles ~p50_s ~p95_s =
  if p50_s = 0.0 && p95_s = 0.0 then ""
  else
    Printf.sprintf "reconstruct per-cluster: p50 %.2f ms, p95 %.2f ms\n" (1000.0 *. p50_s)
      (1000.0 *. p95_s)

(* Reconstruction allocation accounting: the per-cluster minor-word tax
   the pooled spine exists to shrink. *)
let recon_alloc ~pooled ~n_clusters ~words_per_cluster =
  if n_clusters = 0 then ""
  else
    Printf.sprintf "reconstruct alloc: %.0f minor words/cluster over %d clusters (%s spine)\n"
      words_per_cluster n_clusters
      (if pooled then "pooled" else "boxed")

(* One line of served-request accounting: throughput plus the latency
   tail, e.g. for the store's serving layer and its YCSB-style bench. *)
let latency_summary ~label ~n ~wall_s ~p50_ms ~p95_ms ~p99_ms =
  let throughput = if wall_s > 0.0 then float_of_int n /. wall_s else 0.0 in
  Printf.sprintf "%s: %d ops in %.2f s (%.1f ops/s), latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n"
    label n wall_s throughput p50_ms p95_ms p99_ms

(* A scrub pass in two lines: what the shard sweep found, what object
   recovery did about it. *)
let scrub_summary ~shards_checked ~shards_corrupt ~shards_quarantined ~shards_dropped
    ~objects_checked ~objects_repaired ~objects_degraded ~objects_lost ~checksums_backfilled =
  Printf.sprintf
    "scrub: %d shards checked, %d corrupt (%d quarantined, %d dropped)\n\
    \       %d objects checked: %d repaired, %d degraded, %d lost, %d checksums backfilled\n"
    shards_checked shards_corrupt shards_quarantined shards_dropped objects_checked
    objects_repaired objects_degraded objects_lost checksums_backfilled

(* One line of serving-layer resilience accounting: how much load was
   shed, retried, abandoned, or answered late/partially. Empty when
   nothing noteworthy happened, so happy-path reports stay clean. *)
let resilience_counters ~rejected ~retries ~gave_up ~timed_out ~degraded =
  if rejected = 0 && retries = 0 && gave_up = 0 && timed_out = 0 && degraded = 0 then ""
  else
    Printf.sprintf
      "resilience: %d rejected, %d retries (%d gave up), %d timed out, %d degraded reads\n"
      rejected retries gave_up timed_out degraded

(* One line of store-maintenance hygiene: unlinks compact could not
   complete (files left behind for the next pass) and the temp/orphan
   debris reclaimed when the store was opened. Empty when clean. *)
let maintenance_counters ~unlink_failures ~orphans_reclaimed =
  if unlink_failures = 0 && orphans_reclaimed = 0 then ""
  else
    Printf.sprintf "maintenance: %d failed unlinks left behind, %d orphan files reclaimed\n"
      unlink_failures orphans_reclaimed

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n= %s =\n%s\n" bar title bar

(* One scenario-sweep cell per row: recovery against the floor plus the
   configured-vs-realized channel error rate, so a drifting channel
   model is visible next to the recovery number it explains. *)
let scenario_summary (outcomes : Scenario_run.outcome list) =
  let header =
    [ "scenario"; "fault"; "seed"; "recovered"; "floor"; "configured"; "realized"; "wall";
      "status" ]
  in
  let rows =
    List.map
      (fun (o : Scenario_run.outcome) ->
        [
          o.Scenario_run.scenario;
          o.fault;
          string_of_int o.seed;
          pct o.recovered_fraction;
          (match o.floor with None -> "-" | Some f -> pct f);
          pct o.configured_error_rate;
          pct o.realized_error_rate;
          Printf.sprintf "%.2fs" o.wall_s;
          (if o.passed then "ok" else "FLOOR");
        ])
      outcomes
  in
  let n_fail = List.length (Scenario_run.failures outcomes) in
  let verdict =
    if outcomes = [] then "no scenario cells ran\n"
    else if n_fail = 0 then
      Printf.sprintf "all %d cells at or above their floors\n" (List.length outcomes)
    else Printf.sprintf "%d of %d cells BELOW their floors\n" n_fail (List.length outcomes)
  in
  table (header :: rows) ^ verdict
