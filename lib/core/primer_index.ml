(** A primer-pair -> strand-indices index over an oligo pool.

    PCR selection used to be an O(pool) scan per get; with every file's
    molecule positions recorded at [put] time (or recovered in one pass
    by [build]), selection becomes an indexed gather. The tolerant
    [scan_select] remains as the fallback for pairs the index has never
    seen, and as the oracle the indexed path is tested against. *)

type t = (string, int list ref) Hashtbl.t
(* pair key -> pool indices, most recently added first *)

let create () : t = Hashtbl.create 16

let key_of_pair (pair : Codec.Primer.pair) =
  Dna.Strand.to_string pair.Codec.Primer.forward
  ^ "|"
  ^ Dna.Strand.to_string pair.Codec.Primer.reverse

let add (t : t) pair i =
  match Hashtbl.find_opt t (key_of_pair pair) with
  | Some l -> l := i :: !l
  | None -> Hashtbl.add t (key_of_pair pair) (ref [ i ])

let add_range (t : t) pair ~first ~len =
  for i = first to first + len - 1 do
    add t pair i
  done

let mem_pair (t : t) pair = Hashtbl.mem t (key_of_pair pair)

let indices (t : t) pair =
  match Hashtbl.find_opt t (key_of_pair pair) with
  | None -> [||]
  | Some l ->
      let arr = Array.of_list !l in
      Array.sort compare arr;
      arr

let remove_pair (t : t) pair = Hashtbl.remove t (key_of_pair pair)

(* Strict both-end primer match, as on clean synthesized molecules. The
   design keeps distinct pairs >= 8 mismatches apart, so a tolerance of
   [max_mismatches] (default 2) per primer cannot cross-select. *)
let matches ?(max_mismatches = 2) strand (pair : Codec.Primer.pair) =
  Codec.Primer.mismatches_at strand ~pos:0 ~pattern:pair.Codec.Primer.forward <= max_mismatches
  && Codec.Primer.mismatches_at strand
       ~pos:(Dna.Strand.length strand - Codec.Primer.primer_length)
       ~pattern:pair.Codec.Primer.reverse
     <= max_mismatches

let scan_select ?max_mismatches (pool : Dna.Strand.t array) pair =
  Array.of_list
    (List.filter (fun s -> matches ?max_mismatches s pair) (Array.to_list pool))

let select (t : t) (pool : Dna.Strand.t array) pair =
  Array.map (fun i -> pool.(i)) (indices t pair)

(* One pass over a pool whose pair inventory is known (e.g. a shard
   loaded from disk): each strand lands in the bucket of the first pair
   it matches; strands matching no pair (orphans of an interrupted
   write) are simply not indexed. *)
let build ~(pairs : Codec.Primer.pair list) (pool : Dna.Strand.t array) : t =
  let t = create () in
  Array.iteri
    (fun i s ->
      match List.find_opt (fun p -> matches s p) pairs with
      | Some pair -> add t pair i
      | None -> ())
    pool;
  t
