(** Plain-text rendering of experiment results: aligned tables and
    ASCII profiles, used by the benchmark harness. *)

val table : string list list -> string
(** Column-aligned; the first row is the header. *)

val ascii_profile : ?height:int -> ?buckets:int -> float array -> string
(** A bar rendering of a y-series (e.g. a per-index error profile). *)

val par_counters : Dna.Par.counter list -> string
(** A table of the parallel layer's per-label counters
    ([Dna.Par.counters ()]): regions entered, tasks run, wall time.
    Empty string for an empty list. *)

val recovery : Codec.File_codec.partial_recovery -> string
(** Per-unit status counts, recovered fraction and surviving byte
    ranges, one block of text. *)

val cache_counters : label:string -> hits:int -> misses:int -> string
(** One line of cache accounting with the hit rate, e.g. the persistent
    store's LRU of decoded objects. *)

val recon_percentiles : p50_s:float -> p95_s:float -> string
(** One line of per-cluster reconstruction tail latency (in ms), from
    the [reconstruct_p50_s]/[reconstruct_p95_s] fields of
    [Pipeline.timings]; empty when both are zero (no clusters ran). *)

val recon_alloc : pooled:bool -> n_clusters:int -> words_per_cluster:float -> string
(** One line of reconstruction allocation accounting, from
    [Pipeline.outcome.reconstruct_words_per_cluster]; empty when no
    clusters ran. *)

val latency_summary :
  label:string -> n:int -> wall_s:float -> p50_ms:float -> p95_ms:float -> p99_ms:float -> string
(** One line of served-request accounting: op count, wall time, derived
    throughput and the p50/p95/p99 latency tail (used by the serving
    layer's stats and the [bench_serve] driver). *)

val scrub_summary :
  shards_checked:int ->
  shards_corrupt:int ->
  shards_quarantined:int ->
  shards_dropped:int ->
  objects_checked:int ->
  objects_repaired:int ->
  objects_degraded:int ->
  objects_lost:int ->
  checksums_backfilled:int ->
  string
(** A scrub pass in two lines: the shard sweep, then what object
    recovery did about the damage (used by [dnastore store scrub]). *)

val resilience_counters :
  rejected:int -> retries:int -> gave_up:int -> timed_out:int -> degraded:int -> string
(** One line of serving-layer resilience accounting (load shed, retried,
    abandoned, answered late or partially); empty when all zero. *)

val maintenance_counters : unlink_failures:int -> orphans_reclaimed:int -> string
(** One line of store-maintenance hygiene: unlinks compact had to skip
    and orphan/temp debris reclaimed at open; empty when all zero. *)

val pct : float -> string
(** "12.34%". *)

val f3 : float -> string
val f4 : float -> string

val section : string -> string
(** A boxed section heading. *)

val scenario_summary : Scenario_run.outcome list -> string
(** One scenario-sweep cell per row — recovered fraction against its
    floor, configured vs realized channel error rate, wall clock — with
    a one-line verdict (used by [dnastore scenario] and
    [bench_scenarios]). *)
