(** The end-to-end pipeline (Section III, Figure 1).

    Five swappable stages: encoding, wetlab simulation, clustering, trace
    reconstruction, decoding. Each stage is a function field in
    {!stages}, so replacing any module is building a record — the OCaml
    rendering of the paper's modularity claim. [run] wires a file through
    all five and reports per-stage wall-clock latencies (Table III) plus
    intermediate statistics.

    Since the arena refactor the decode spine comes in two shapes. The
    {e pooled} spine (the default) keeps every read in one
    {!Dna.Strand_pool} from the channel to the consensus: sequencing
    streams into the arena, clustering returns index slices, and
    reconstruction consumes [(pool, index)] views through the
    pool-native surfaces — no boxed strand per read, and per-cluster
    consensus state lives in reusable per-domain buffers
    ({!Reconstruction.Recon_arena}). The {e boxed} spine is the
    original strand-array path; it is kept both as the oracle the
    pooled spine is property-tested bit-identical against and as the
    carrier for custom {!stages} closures, which speak boxed types.

    [run] never raises: a crashing stage (whether fault-injected through
    [?faults] or a genuinely buggy swapped-in implementation) is caught
    and degraded — clustering falls back to singleton clusters,
    reconstruction falls back through the NW -> BMA -> majority chain per
    cluster, and decode failures surface as a structured outcome with a
    {!Codec.File_codec.partial_recovery} map of what survived. *)

type stages = {
  channel : Simulator.Channel.t;
  sequencing : Simulator.Sequencer.params;
  cluster : Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list;
  reconstruct : target_len:int -> Dna.Strand.t array -> Dna.Strand.t;
}

type pooled_stages = {
  cluster_pool : Dna.Rng.t -> Dna.Strand_pool.t -> int array list;
  reconstruct_pool : target_len:int -> Dna.Strand_pool.t -> int array -> Dna.Strand.t;
}

type pool_mode = Pool_auto | Pool_on | Pool_off

type timings = {
  encode_s : float;
  simulate_s : float;
  cluster_s : float;
  reconstruct_s : float;
  reconstruct_p50_s : float;
  reconstruct_p95_s : float;
  decode_s : float;
}

let total_s t = t.encode_s +. t.simulate_s +. t.cluster_s +. t.reconstruct_s +. t.decode_s

type outcome = {
  file : Bytes.t option;  (** [None] when decoding failed outright *)
  exact : bool;  (** decoded bytes match the input exactly *)
  partial : Codec.File_codec.partial_recovery;
      (** what survived: per-unit status, recovered fraction and byte
          ranges (all-lost when [file = None]) *)
  stage_failures : (Faults.stage * string) list;
      (** stages that raised and were degraded, oldest first *)
  decode_error : string option;  (** why [file] is [None], when it is *)
  timings : timings;
  n_strands : int;
  n_reads : int;
  n_clusters : int;
  reconstruct_words_per_cluster : float;
      (** mean minor-heap words allocated per reconstructed cluster
          (exact with [domains = 1]; an approximation under parallel
          workers, whose minor collections interleave) — the number the
          pooled spine exists to shrink *)
  decode_stats : Codec.File_codec.decode_stats option;
}

(* Default clustering stage: parameters auto-configured from the data
   (Section VI-B), then the iterative merge algorithm. *)
let cluster_default ?(kind = Clustering.Signature.Qgram) ?(domains = Dna.Par.default_domains ())
    () rng reads =
  match Array.length reads with
  | 0 -> []
  | _ ->
      let read_len = Dna.Strand.length reads.(0) in
      let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
      let config = Clustering.Auto_config.configure params rng reads in
      let params = Clustering.Auto_config.apply config params in
      let result = Clustering.Cluster.run params rng reads in
      Clustering.Cluster.read_clusters result reads

(* The scaled engine (sharded signature index + counting-sort
   partitions) behind the boxed stage type. Draws differ from
   [cluster_default]'s merge engine, so the two are not
   cluster-for-cluster comparable under one seed — but this one is
   draw-for-draw identical to [cluster_pool_default] on the same reads,
   which is what boxed-vs-pooled A/B comparisons need. *)
let cluster_scaled_default ?(kind = Clustering.Signature.Qgram)
    ?(domains = Dna.Par.default_domains ()) () rng reads =
  match Array.length reads with
  | 0 -> []
  | _ ->
      let read_len = Dna.Strand.length reads.(0) in
      let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
      let config = Clustering.Auto_config.configure params rng reads in
      let params = Clustering.Auto_config.apply config params in
      let result = Clustering.Cluster.run_scaled params rng reads in
      Clustering.Cluster.read_clusters result reads

(* Pool-native default clustering: same auto-configuration and scaled
   engine, but the result stays as index slices into the arena. *)
let cluster_pool_default ?(kind = Clustering.Signature.Qgram)
    ?(domains = Dna.Par.default_domains ()) () rng pool =
  match Dna.Strand_pool.length pool with
  | 0 -> []
  | _ ->
      let reads = Dna.Strand_pool.to_array pool in
      let read_len = Dna.Strand.length reads.(0) in
      let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
      let config = Clustering.Auto_config.configure params rng reads in
      let params = Clustering.Auto_config.apply config params in
      let result = Clustering.Cluster.run_scaled params rng reads in
      result.Clustering.Cluster.clusters

let reconstruct_bma ~target_len reads = Reconstruction.Bma.reconstruct ~target_len reads
let reconstruct_dbma ~target_len reads = Reconstruction.Bma.reconstruct_double ~target_len reads

let reconstruct_nw ?backend ~target_len reads =
  Reconstruction.Nw_consensus.reconstruct ?backend ~target_len reads

let reconstruct_nw_pool ?backend ~target_len pool idxs =
  Reconstruction.Nw_consensus.reconstruct_pool ?backend ~target_len pool idxs

let default_stages ?(error_rate = 0.06) ?(coverage = 10) ?recon_backend () =
  {
    channel = Simulator.Iid_channel.create_rate ~error_rate;
    sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage);
    cluster = cluster_default ();
    reconstruct = (fun ~target_len reads -> reconstruct_nw ?backend:recon_backend ~target_len reads);
  }

let default_pooled_stages ?recon_backend () =
  {
    cluster_pool = cluster_pool_default ();
    reconstruct_pool =
      (fun ~target_len pool idxs -> reconstruct_nw_pool ?backend:recon_backend ~target_len pool idxs);
  }

(* Largest clusters first: when two clusters claim the same column index,
   the consensus backed by more reads wins. Equal-size clusters tie-break
   on their reads (length, then lexicographic), so the order — and
   therefore the decoded output — is identical however the clustering
   stage happened to emit them (e.g. across [--domains] settings). *)
let compare_reads a b =
  match compare (Dna.Strand.length a) (Dna.Strand.length b) with
  | 0 -> Dna.Strand.compare a b
  | c -> c

let sort_clusters (clusters : Dna.Strand.t array array) : unit =
  Array.sort
    (fun a b ->
      match compare (Array.length b) (Array.length a) with
      | 0 ->
          let n = Array.length a in
          let rec go i = if i = n then 0 else (match compare_reads a.(i) b.(i) with 0 -> go (i + 1) | c -> c) in
          go 0
      | c -> c)
    clusters

(* The same order over index slices — reads compared through their pool
   views, so both spines hand the decoder the same cluster sequence.
   Size-sorted batching also fixes reconstruction tail latency: the
   Par pool starts the big clusters first instead of discovering them
   behind a chunk of small ones. *)
let sort_cluster_slices pool (slices : int array array) : unit =
  Array.sort
    (fun a b ->
      match compare (Array.length b) (Array.length a) with
      | 0 ->
          let n = Array.length a in
          let rec go i =
            if i = n then 0
            else
              match
                compare_reads (Dna.Strand_pool.get pool a.(i)) (Dna.Strand_pool.get pool b.(i))
              with
              | 0 -> go (i + 1)
              | c -> c
          in
          go 0
      | c -> c)
    slices

(* Nearest-rank percentile of per-cluster wall times (0 when empty). *)
let percentile (xs : float array) q =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run the full pipeline on [file]. [domains] parallelizes per-strand
   read synthesis (boxed spine only; the arena is single-writer) and
   per-cluster reconstruction (clustering honors its own
   [params.domains], set through [cluster_*_default ~domains]).
   [faults] injects the plan's seeded faults between stages and its
   crash/stuck faults at stage entry. *)
let run ?(params = Codec.Params.default) ?(layout = Codec.Layout.Baseline) ?stages ?pooled
    ?(recon_pool = Pool_auto) ?(domains = Dna.Par.default_domains ()) ?faults ?prepare rng
    (file : Bytes.t) : outcome =
  (* Custom boxed [stages] speak boxed types, so they pin the boxed
     spine unless the caller says otherwise; everything else defaults
     to the pooled spine. The [channel]/[sequencing] fields are shared
     data — the pooled spine reads them off the boxed record too. *)
  let use_pool =
    match recon_pool with
    | Pool_on -> true
    | Pool_off -> false
    | Pool_auto -> Option.is_some pooled || Option.is_none stages
  in
  let stages = match stages with Some s -> s | None -> default_stages () in
  let pooled = match pooled with Some p -> p | None -> default_pooled_stages () in
  let failures = ref [] in
  let note stage e = failures := (stage, Printexc.to_string e) :: !failures in
  let trigger stage = match faults with Some p -> Faults.trigger p stage | None -> () in
  let inject f x = match faults with Some p -> f p x | None -> x in
  let zero =
    {
      encode_s = 0.0;
      simulate_s = 0.0;
      cluster_s = 0.0;
      reconstruct_s = 0.0;
      reconstruct_p50_s = 0.0;
      reconstruct_p95_s = 0.0;
      decode_s = 0.0;
    }
  in
  let failed_outcome ?(timings = zero) ?(n_strands = 0) ?(n_reads = 0) ?(n_clusters = 0)
      ?(n_units = 0) ?(words_per_cluster = 0.0) error =
    {
      file = None;
      exact = false;
      partial = Codec.File_codec.no_recovery ~n_units;
      stage_failures = List.rev !failures;
      decode_error = Some error;
      timings;
      n_strands;
      n_reads;
      n_clusters;
      reconstruct_words_per_cluster = words_per_cluster;
      decode_stats = None;
    }
  in
  let encoded, encode_s =
    time (fun () ->
        try
          trigger Faults.Encode;
          Some (Codec.File_codec.encode ~layout ~params file)
        with e ->
          note Faults.Encode e;
          None)
  in
  match encoded with
  | None ->
      failed_outcome ~timings:{ zero with encode_s } "encode stage failed; nothing to recover"
  | Some encoded ->
      let strands = inject Faults.inject_strands encoded.Codec.File_codec.strands in
      let target_len = Codec.Params.strand_nt params in
      let n_units = encoded.Codec.File_codec.n_units in
      (* Per-cluster task results: (consensus, error, wall seconds,
         minor words allocated; -1 marks an empty cluster that ran
         nothing). Noting failures and folding the stats is spine-
         independent. *)
      let collect reconstructed =
        (match Array.find_opt (fun (_, err, _, _) -> err <> None) reconstructed with
        | Some (_, Some msg, _, _) -> failures := (Faults.Reconstruct, msg) :: !failures
        | _ -> ());
        let cluster_times =
          Array.of_list
            (List.filter_map
               (fun (r, _, dt, _) -> if r = None then None else Some dt)
               (Array.to_list reconstructed))
        in
        let words_total = ref 0.0 and words_n = ref 0 in
        Array.iter
          (fun (_, _, _, dw) ->
            if dw >= 0.0 then begin
              words_total := !words_total +. dw;
              incr words_n
            end)
          reconstructed;
        let words_per_cluster =
          if !words_n = 0 then 0.0 else !words_total /. float_of_int !words_n
        in
        let consensus = List.filter_map (fun (r, _, _, _) -> r) (Array.to_list reconstructed) in
        (cluster_times, words_per_cluster, consensus)
      in
      (* Shared decode tail. *)
      let finish ~simulate_s ~cluster_s ~reconstruct_s ~cluster_times ~words_per_cluster
          ~n_strands ~n_reads ~n_clusters consensus =
        let reconstruct_p50_s = percentile cluster_times 0.50
        and reconstruct_p95_s = percentile cluster_times 0.95 in
        let decoded, decode_s =
          time (fun () ->
              try
                trigger Faults.Decode;
                Some (Codec.File_codec.decode ~layout ~params ~n_units consensus)
              with e ->
                note Faults.Decode e;
                None)
        in
        let timings =
          { encode_s; simulate_s; cluster_s; reconstruct_s; reconstruct_p50_s; reconstruct_p95_s; decode_s }
        in
        match decoded with
        | Some (Ok (bytes, stats)) ->
            {
              file = Some bytes;
              exact = Bytes.equal bytes file;
              partial = Codec.File_codec.partial ~params ~file_len:(Bytes.length bytes) stats;
              stage_failures = List.rev !failures;
              decode_error = None;
              timings;
              n_strands;
              n_reads;
              n_clusters;
              reconstruct_words_per_cluster = words_per_cluster;
              decode_stats = Some stats;
            }
        | Some (Error err) ->
            failed_outcome ~timings ~n_strands ~n_reads ~n_clusters ~n_units
              ~words_per_cluster (Codec.File_codec.error_message err)
        | None ->
            failed_outcome ~timings ~n_strands ~n_reads ~n_clusters ~n_units ~words_per_cluster
              "decode stage crashed"
      in
      if use_pool then begin
        (* ---- pooled spine: one arena, channel to consensus ---- *)
        let sim, simulate_s =
          time (fun () ->
              try
                trigger Faults.Simulate;
                let strands = match prepare with None -> strands | Some f -> f rng strands in
                let pool = Dna.Strand_pool.create () in
                let origins =
                  Simulator.Sequencer.sequence_pool stages.sequencing stages.channel rng strands
                    ~pool
                in
                (pool, origins)
              with e ->
                note Faults.Simulate e;
                (Dna.Strand_pool.create (), [||]))
        in
        let pool =
          match faults with
          | None -> fst sim
          | Some plan ->
              (* Read-level faults rewrite the read bag, and committed
                 arena reads are write-once — so the fault path
                 materializes views, injects, and rebuilds a fresh
                 arena. Views into the old arena stay valid throughout
                 (truncations are zero-copy sub-views). *)
              let pool0, origins = sim in
              let reads =
                Array.init (Dna.Strand_pool.length pool0) (fun i ->
                    { Simulator.Sequencer.seq = Dna.Strand_pool.get pool0 i; origin = origins.(i) })
              in
              let reads = Faults.inject_reads plan reads in
              Dna.Strand_pool.of_strands
                (Array.map (fun r -> r.Simulator.Sequencer.seq) reads)
        in
        let slices, cluster_s =
          time (fun () ->
              try
                trigger Faults.Cluster;
                pooled.cluster_pool rng pool
              with e ->
                note Faults.Cluster e;
                (* Graceful fallback: every read its own cluster. *)
                List.init (Dna.Strand_pool.length pool) (fun i -> [| i |]))
        in
        let slices = inject Faults.inject_cluster_slices slices in
        let reconstructed, reconstruct_s =
          time (fun () ->
              let slice_arr = Array.of_list slices in
              sort_cluster_slices pool slice_arr;
              Dna.Par.map_array ~label:"pipeline.reconstruct" ~domains
                (fun idxs ->
                  if Array.length idxs = 0 then (None, None, 0.0, -1.0)
                  else begin
                    let w0 = Gc.minor_words () in
                    let t0 = Unix.gettimeofday () in
                    match
                      trigger Faults.Reconstruct;
                      pooled.reconstruct_pool ~target_len pool idxs
                    with
                    | s -> (Some s, None, Unix.gettimeofday () -. t0, Gc.minor_words () -. w0)
                    | exception e ->
                        ( Reconstruction.Ensemble.reconstruct_fallback_pool ~target_len pool idxs,
                          Some (Printexc.to_string e),
                          Unix.gettimeofday () -. t0,
                          Gc.minor_words () -. w0 )
                  end)
                slice_arr)
        in
        let cluster_times, words_per_cluster, consensus = collect reconstructed in
        finish ~simulate_s ~cluster_s ~reconstruct_s ~cluster_times ~words_per_cluster
          ~n_strands:(Array.length strands) ~n_reads:(Dna.Strand_pool.length pool)
          ~n_clusters:(List.length slices) consensus
      end
      else begin
        (* ---- boxed spine: the original strand-array path ---- *)
        let reads, simulate_s =
          time (fun () ->
              try
                trigger Faults.Simulate;
                (* Physical pool transforms (aging decay, PCR amplification
                   bias, ... — see [Simulator.Scenario]) run between encode
                   and sequencing, drawing from the ambient rng so one seed
                   governs the whole simulated wetlab. A crash here degrades
                   like any other simulate-stage failure. *)
                let strands = match prepare with None -> strands | Some f -> f rng strands in
                Simulator.Sequencer.sequence ~domains stages.sequencing stages.channel rng strands
              with e ->
                note Faults.Simulate e;
                [||])
        in
        let reads = inject Faults.inject_reads reads in
        let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
        let clusters, cluster_s =
          time (fun () ->
              try
                trigger Faults.Cluster;
                stages.cluster rng read_strands
              with e ->
                note Faults.Cluster e;
                (* Graceful fallback: every read its own cluster. Costly in
                   decode quality, but keeps the erasure machinery fed. *)
                Array.to_list (Array.map (fun s -> [ s ]) read_strands))
        in
        let clusters = inject Faults.inject_clusters clusters in
        let reconstructed, reconstruct_s =
          time (fun () ->
              let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
              sort_clusters cluster_arr;
              (* Tasks run on worker domains: collect per-cluster errors
                 (and wall times, for the tail-latency percentiles) in the
                 results and note them serially afterwards. *)
              Dna.Par.map_array ~label:"pipeline.reconstruct" ~domains
                (fun reads ->
                  if Array.length reads = 0 then (None, None, 0.0, -1.0)
                  else begin
                    let w0 = Gc.minor_words () in
                    let t0 = Unix.gettimeofday () in
                    match
                      trigger Faults.Reconstruct;
                      stages.reconstruct ~target_len reads
                    with
                    | s -> (Some s, None, Unix.gettimeofday () -. t0, Gc.minor_words () -. w0)
                    | exception e ->
                        ( Reconstruction.Ensemble.reconstruct_fallback ~target_len reads,
                          Some (Printexc.to_string e),
                          Unix.gettimeofday () -. t0,
                          Gc.minor_words () -. w0 )
                  end)
                cluster_arr)
        in
        let cluster_times, words_per_cluster, consensus = collect reconstructed in
        finish ~simulate_s ~cluster_s ~reconstruct_s ~cluster_times ~words_per_cluster
          ~n_strands:(Array.length strands) ~n_reads:(Array.length reads)
          ~n_clusters:(List.length clusters) consensus
      end
