(** The end-to-end pipeline (Section III, Figure 1).

    Five swappable stages: encoding, wetlab simulation, clustering, trace
    reconstruction, decoding. Each stage is a function field in
    {!stages}, so replacing any module is building a record — the OCaml
    rendering of the paper's modularity claim. [run] wires a file through
    all five and reports per-stage wall-clock latencies (Table III) plus
    intermediate statistics.

    [run] never raises: a crashing stage (whether fault-injected through
    [?faults] or a genuinely buggy swapped-in implementation) is caught
    and degraded — clustering falls back to singleton clusters,
    reconstruction falls back through the NW -> BMA -> majority chain per
    cluster, and decode failures surface as a structured outcome with a
    {!Codec.File_codec.partial_recovery} map of what survived. *)

type stages = {
  channel : Simulator.Channel.t;
  sequencing : Simulator.Sequencer.params;
  cluster : Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list;
  reconstruct : target_len:int -> Dna.Strand.t array -> Dna.Strand.t;
}

type timings = {
  encode_s : float;
  simulate_s : float;
  cluster_s : float;
  reconstruct_s : float;
  reconstruct_p50_s : float;
  reconstruct_p95_s : float;
  decode_s : float;
}

let total_s t = t.encode_s +. t.simulate_s +. t.cluster_s +. t.reconstruct_s +. t.decode_s

type outcome = {
  file : Bytes.t option;  (** [None] when decoding failed outright *)
  exact : bool;  (** decoded bytes match the input exactly *)
  partial : Codec.File_codec.partial_recovery;
      (** what survived: per-unit status, recovered fraction and byte
          ranges (all-lost when [file = None]) *)
  stage_failures : (Faults.stage * string) list;
      (** stages that raised and were degraded, oldest first *)
  decode_error : string option;  (** why [file] is [None], when it is *)
  timings : timings;
  n_strands : int;
  n_reads : int;
  n_clusters : int;
  decode_stats : Codec.File_codec.decode_stats option;
}

(* Default clustering stage: parameters auto-configured from the data
   (Section VI-B), then the iterative merge algorithm. *)
let cluster_default ?(kind = Clustering.Signature.Qgram) ?(domains = Dna.Par.default_domains ())
    () rng reads =
  match Array.length reads with
  | 0 -> []
  | _ ->
      let read_len = Dna.Strand.length reads.(0) in
      let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
      let config = Clustering.Auto_config.configure params rng reads in
      let params = Clustering.Auto_config.apply config params in
      let result = Clustering.Cluster.run params rng reads in
      Clustering.Cluster.read_clusters result reads

let reconstruct_bma ~target_len reads = Reconstruction.Bma.reconstruct ~target_len reads
let reconstruct_dbma ~target_len reads = Reconstruction.Bma.reconstruct_double ~target_len reads

let reconstruct_nw ?backend ~target_len reads =
  Reconstruction.Nw_consensus.reconstruct ?backend ~target_len reads

let default_stages ?(error_rate = 0.06) ?(coverage = 10) ?recon_backend () =
  {
    channel = Simulator.Iid_channel.create_rate ~error_rate;
    sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage);
    cluster = cluster_default ();
    reconstruct = (fun ~target_len reads -> reconstruct_nw ?backend:recon_backend ~target_len reads);
  }

(* Largest clusters first: when two clusters claim the same column index,
   the consensus backed by more reads wins. Equal-size clusters tie-break
   on their reads (length, then lexicographic), so the order — and
   therefore the decoded output — is identical however the clustering
   stage happened to emit them (e.g. across [--domains] settings). *)
let compare_reads a b =
  match compare (Dna.Strand.length a) (Dna.Strand.length b) with
  | 0 -> Dna.Strand.compare a b
  | c -> c

let sort_clusters (clusters : Dna.Strand.t array array) : unit =
  Array.sort
    (fun a b ->
      match compare (Array.length b) (Array.length a) with
      | 0 ->
          let n = Array.length a in
          let rec go i = if i = n then 0 else (match compare_reads a.(i) b.(i) with 0 -> go (i + 1) | c -> c) in
          go 0
      | c -> c)
    clusters

(* Nearest-rank percentile of per-cluster wall times (0 when empty). *)
let percentile (xs : float array) q =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run the full pipeline on [file]. [domains] parallelizes per-strand
   read synthesis and per-cluster reconstruction (clustering honors its
   own [params.domains], set through [cluster_default ~domains]).
   [faults] injects the plan's seeded faults between stages and its
   crash/stuck faults at stage entry. *)
let run ?(params = Codec.Params.default) ?(layout = Codec.Layout.Baseline)
    ?(stages = default_stages ()) ?(domains = Dna.Par.default_domains ()) ?faults ?prepare rng
    (file : Bytes.t) : outcome =
  let failures = ref [] in
  let note stage e = failures := (stage, Printexc.to_string e) :: !failures in
  let trigger stage = match faults with Some p -> Faults.trigger p stage | None -> () in
  let inject f x = match faults with Some p -> f p x | None -> x in
  let zero =
    {
      encode_s = 0.0;
      simulate_s = 0.0;
      cluster_s = 0.0;
      reconstruct_s = 0.0;
      reconstruct_p50_s = 0.0;
      reconstruct_p95_s = 0.0;
      decode_s = 0.0;
    }
  in
  let failed_outcome ?(timings = zero) ?(n_strands = 0) ?(n_reads = 0) ?(n_clusters = 0)
      ?(n_units = 0) error =
    {
      file = None;
      exact = false;
      partial = Codec.File_codec.no_recovery ~n_units;
      stage_failures = List.rev !failures;
      decode_error = Some error;
      timings;
      n_strands;
      n_reads;
      n_clusters;
      decode_stats = None;
    }
  in
  let encoded, encode_s =
    time (fun () ->
        try
          trigger Faults.Encode;
          Some (Codec.File_codec.encode ~layout ~params file)
        with e ->
          note Faults.Encode e;
          None)
  in
  match encoded with
  | None ->
      failed_outcome ~timings:{ zero with encode_s } "encode stage failed; nothing to recover"
  | Some encoded ->
      let strands = inject Faults.inject_strands encoded.Codec.File_codec.strands in
      let reads, simulate_s =
        time (fun () ->
            try
              trigger Faults.Simulate;
              (* Physical pool transforms (aging decay, PCR amplification
                 bias, ... — see [Simulator.Scenario]) run between encode
                 and sequencing, drawing from the ambient rng so one seed
                 governs the whole simulated wetlab. A crash here degrades
                 like any other simulate-stage failure. *)
              let strands = match prepare with None -> strands | Some f -> f rng strands in
              Simulator.Sequencer.sequence ~domains stages.sequencing stages.channel rng strands
            with e ->
              note Faults.Simulate e;
              [||])
      in
      let reads = inject Faults.inject_reads reads in
      let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
      let clusters, cluster_s =
        time (fun () ->
            try
              trigger Faults.Cluster;
              stages.cluster rng read_strands
            with e ->
              note Faults.Cluster e;
              (* Graceful fallback: every read its own cluster. Costly in
                 decode quality, but keeps the erasure machinery fed. *)
              Array.to_list (Array.map (fun s -> [ s ]) read_strands))
      in
      let clusters = inject Faults.inject_clusters clusters in
      let target_len = Codec.Params.strand_nt params in
      let reconstructed, reconstruct_s =
        time (fun () ->
            let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
            sort_clusters cluster_arr;
            (* Tasks run on worker domains: collect per-cluster errors
               (and wall times, for the tail-latency percentiles) in the
               results and note them serially afterwards. *)
            Dna.Par.map_array ~label:"pipeline.reconstruct" ~domains
              (fun reads ->
                if Array.length reads = 0 then (None, None, 0.0)
                else begin
                  let t0 = Unix.gettimeofday () in
                  match
                    trigger Faults.Reconstruct;
                    stages.reconstruct ~target_len reads
                  with
                  | s -> (Some s, None, Unix.gettimeofday () -. t0)
                  | exception e ->
                      ( Reconstruction.Ensemble.reconstruct_fallback ~target_len reads,
                        Some (Printexc.to_string e),
                        Unix.gettimeofday () -. t0 )
                end)
              cluster_arr)
      in
      (match Array.find_opt (fun (_, err, _) -> err <> None) reconstructed with
      | Some (_, Some msg, _) -> failures := (Faults.Reconstruct, msg) :: !failures
      | _ -> ());
      let cluster_times =
        Array.of_list
          (List.filter_map
             (fun (r, _, dt) -> if r = None then None else Some dt)
             (Array.to_list reconstructed))
      in
      let reconstruct_p50_s = percentile cluster_times 0.50
      and reconstruct_p95_s = percentile cluster_times 0.95 in
      let consensus = List.filter_map (fun (r, _, _) -> r) (Array.to_list reconstructed) in
      let n_units = encoded.Codec.File_codec.n_units in
      let decoded, decode_s =
        time (fun () ->
            try
              trigger Faults.Decode;
              Some (Codec.File_codec.decode ~layout ~params ~n_units consensus)
            with e ->
              note Faults.Decode e;
              None)
      in
      let timings =
        { encode_s; simulate_s; cluster_s; reconstruct_s; reconstruct_p50_s; reconstruct_p95_s; decode_s }
      in
      let n_strands = Array.length strands
      and n_reads = Array.length reads
      and n_clusters = List.length clusters in
      (match decoded with
      | Some (Ok (bytes, stats)) ->
          {
            file = Some bytes;
            exact = Bytes.equal bytes file;
            partial = Codec.File_codec.partial ~params ~file_len:(Bytes.length bytes) stats;
            stage_failures = List.rev !failures;
            decode_error = None;
            timings;
            n_strands;
            n_reads;
            n_clusters;
            decode_stats = Some stats;
          }
      | Some (Error err) ->
          failed_outcome ~timings ~n_strands ~n_reads ~n_clusters ~n_units
            (Codec.File_codec.error_message err)
      | None -> failed_outcome ~timings ~n_strands ~n_reads ~n_clusters ~n_units "decode stage crashed")
