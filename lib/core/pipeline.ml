(** The end-to-end pipeline (Section III, Figure 1).

    Five swappable stages: encoding, wetlab simulation, clustering, trace
    reconstruction, decoding. Each stage is a function field in
    {!stages}, so replacing any module is building a record — the OCaml
    rendering of the paper's modularity claim. [run] wires a file through
    all five and reports per-stage wall-clock latencies (Table III) plus
    intermediate statistics. *)

type stages = {
  channel : Simulator.Channel.t;
  sequencing : Simulator.Sequencer.params;
  cluster : Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t list list;
  reconstruct : target_len:int -> Dna.Strand.t array -> Dna.Strand.t;
}

type timings = {
  encode_s : float;
  simulate_s : float;
  cluster_s : float;
  reconstruct_s : float;
  decode_s : float;
}

let total_s t = t.encode_s +. t.simulate_s +. t.cluster_s +. t.reconstruct_s +. t.decode_s

type outcome = {
  file : Bytes.t option;  (** [None] when decoding failed outright *)
  exact : bool;  (** decoded bytes match the input exactly *)
  timings : timings;
  n_strands : int;
  n_reads : int;
  n_clusters : int;
  decode_stats : Codec.File_codec.decode_stats option;
}

(* Default clustering stage: parameters auto-configured from the data
   (Section VI-B), then the iterative merge algorithm. *)
let cluster_default ?(kind = Clustering.Signature.Qgram) ?(domains = Dna.Par.default_domains ())
    () rng reads =
  match Array.length reads with
  | 0 -> []
  | _ ->
      let read_len = Dna.Strand.length reads.(0) in
      let params = { (Clustering.Cluster.default_params ~kind ~read_len ()) with domains } in
      let config = Clustering.Auto_config.configure params rng reads in
      let params = Clustering.Auto_config.apply config params in
      let result = Clustering.Cluster.run params rng reads in
      Clustering.Cluster.read_clusters result reads

let reconstruct_bma ~target_len reads = Reconstruction.Bma.reconstruct ~target_len reads
let reconstruct_dbma ~target_len reads = Reconstruction.Bma.reconstruct_double ~target_len reads
let reconstruct_nw ~target_len reads = Reconstruction.Nw_consensus.reconstruct ~target_len reads

let default_stages ?(error_rate = 0.06) ?(coverage = 10) () =
  {
    channel = Simulator.Iid_channel.create_rate ~error_rate;
    sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage);
    cluster = cluster_default ();
    reconstruct = reconstruct_nw;
  }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run the full pipeline on [file]. [domains] parallelizes per-strand
   read synthesis and per-cluster reconstruction (clustering honors its
   own [params.domains], set through [cluster_default ~domains]). *)
let run ?(params = Codec.Params.default) ?(layout = Codec.Layout.Baseline)
    ?(stages = default_stages ()) ?(domains = Dna.Par.default_domains ()) rng (file : Bytes.t)
    : outcome =
  let encoded, encode_s = time (fun () -> Codec.File_codec.encode ~layout ~params file) in
  let strands = encoded.Codec.File_codec.strands in
  let reads, simulate_s =
    time (fun () ->
        Simulator.Sequencer.sequence ~domains stages.sequencing stages.channel rng strands)
  in
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  let clusters, cluster_s = time (fun () -> stages.cluster rng read_strands) in
  let target_len = Codec.Params.strand_nt params in
  let reconstructed, reconstruct_s =
    time (fun () ->
        (* Largest clusters first: when two clusters claim the same
           column index, the consensus backed by more reads wins. *)
        let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
        Array.sort (fun a b -> compare (Array.length b) (Array.length a)) cluster_arr;
        Dna.Par.map_array ~label:"pipeline.reconstruct" ~domains
          (fun reads ->
            if Array.length reads = 0 then None
            else Some (stages.reconstruct ~target_len reads))
          cluster_arr)
  in
  let consensus = List.filter_map Fun.id (Array.to_list reconstructed) in
  let decoded, decode_s =
    time (fun () ->
        Codec.File_codec.decode ~layout ~params ~n_units:encoded.Codec.File_codec.n_units
          consensus)
  in
  let timings = { encode_s; simulate_s; cluster_s; reconstruct_s; decode_s } in
  match decoded with
  | Ok (bytes, stats) ->
      {
        file = Some bytes;
        exact = Bytes.equal bytes file;
        timings;
        n_strands = Array.length strands;
        n_reads = Array.length reads;
        n_clusters = List.length clusters;
        decode_stats = Some stats;
      }
  | Error _ ->
      {
        file = None;
        exact = false;
        timings;
        n_strands = Array.length strands;
        n_reads = Array.length reads;
        n_clusters = List.length clusters;
        decode_stats = None;
      }
