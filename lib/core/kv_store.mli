(** The key-value store architecture over a DNA pool (Section II-F): a
    pair of PCR primers is the key; the payloads of all molecules
    flanked by it are the value. All files share one unordered pool. *)

type entry = {
  key : string;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
}

type t = {
  rng : Dna.Rng.t;
  mutable pool : Dna.Strand.t array;  (** the test tube *)
  mutable directory : entry list;  (** external metadata, not stored in DNA *)
  primers : Codec.Primer.Registry.t;
      (** pairs in use; a pair reserved by a [put] that fails mid-encode
          is released again *)
  index : Primer_index.t;  (** primer pair -> pool indices, maintained on [put] *)
}

val create : seed:int -> t

val mem : t -> string -> bool
val keys : t -> string list
val pool_size : t -> int

type put_error =
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
      (** no primer pair far enough from every pair already in use *)

val put_error_message : put_error -> string

val put :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> t -> key:string -> Bytes.t ->
  (unit, put_error) result
(** Encode the file, tag it with a fresh primer pair and mix its
    molecules into the pool. [Error] on a duplicate key or when the
    primer space is exhausted (the pool keeps every pair pairwise far
    apart, so capacity is finite). *)

val put_exn :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> t -> key:string -> Bytes.t -> unit
(** {!put} for callers without a recovery path; raises
    [Invalid_argument] with {!put_error_message}. *)

val pcr_select : t -> Codec.Primer.pair -> Dna.Strand.t array
(** PCR amplification: the pool molecules carrying both primers. Pairs
    recorded by {!put} resolve through the primer index in O(own
    molecules); unknown pairs fall back to the tolerant full-pool scan
    ({!Primer_index.scan_select}). *)

type get_error = Key_not_found | Decode_failed of string

val get :
  ?stages:Pipeline.stages -> ?domains:int -> t -> key:string ->
  (Bytes.t * Pipeline.timings, get_error) result
(** The full random-access path: PCR selection, sequencing (reads in
    both orientations), orientation normalization, primer stripping,
    clustering, reconstruction, decoding. Every call is a fresh
    sequencing run. *)
