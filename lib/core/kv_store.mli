(** The key-value store architecture over a DNA pool (Section II-F): a
    pair of PCR primers is the key; the payloads of all molecules
    flanked by it are the value. All files share one unordered pool. *)

type entry = {
  key : string;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
}

type t = {
  rng : Dna.Rng.t;
  mutable pool : Dna.Strand.t array;  (** the test tube *)
  mutable directory : entry list;  (** external metadata, not stored in DNA *)
  mutable primers_used : Codec.Primer.pair list;
}

val create : seed:int -> t

val mem : t -> string -> bool
val keys : t -> string list
val pool_size : t -> int

val put : ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> t -> key:string -> Bytes.t -> unit
(** Encode the file, tag it with a fresh primer pair and mix its
    molecules into the pool. Raises [Invalid_argument] on a duplicate
    key. *)

val pcr_select : t -> Codec.Primer.pair -> Dna.Strand.t array
(** PCR amplification: the pool molecules carrying both primers. *)

type get_error = Key_not_found | Decode_failed of string

val get :
  ?stages:Pipeline.stages -> ?domains:int -> t -> key:string ->
  (Bytes.t * Pipeline.timings, get_error) result
(** The full random-access path: PCR selection, sequencing (reads in
    both orientations), orientation normalization, primer stripping,
    clustering, reconstruction, decoding. Every call is a fresh
    sequencing run. *)
