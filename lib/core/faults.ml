(** Deterministic fault injection (the robustness harness).

    A {!plan} names a set of faults plus a seed; every injection draws
    from a stream derived from that seed alone — never from the
    pipeline's ambient rng — so a scenario replays bit-identically
    regardless of what else the pipeline draws, and adding a fault at one
    site cannot shift the draws at another.

    Data faults ({!Strand_dropout}, {!Undersampling}, {!Read_truncation},
    {!Read_corruption}, {!Cluster_loss}) perturb the artifacts flowing
    between stages. Stage faults ({!Stage_crash}, {!Stage_stuck}) make a
    stage raise, exercising the pipeline's graceful-degradation
    fallbacks rather than the codec's error budget. *)

type stage = Encode | Simulate | Cluster | Reconstruct | Decode

let stage_name = function
  | Encode -> "encode"
  | Simulate -> "simulate"
  | Cluster -> "cluster"
  | Reconstruct -> "reconstruct"
  | Decode -> "decode"

exception Crash of stage
exception Stuck of stage

let () =
  Printexc.register_printer (function
    | Crash s -> Some (Printf.sprintf "Faults.Crash(%s): injected stage crash" (stage_name s))
    | Stuck s -> Some (Printf.sprintf "Faults.Stuck(%s): injected stuck stage" (stage_name s))
    | _ -> None)

type fault =
  | Strand_dropout of float
      (** each encoded strand lost before sequencing with this probability
          (synthesis failure / PCR skew) *)
  | Undersampling of float
      (** oligo-pool undersampling: only this fraction of reads is
          sampled, uniformly without replacement *)
  | Read_truncation of { p : float; keep_min : float }
      (** each read truncated with probability [p] to a uniform fraction
          of its length in [keep_min, 1) *)
  | Read_corruption of float  (** extra per-base substitution rate on every read *)
  | Cluster_loss of float  (** each cluster dropped whole with this probability *)
  | Stage_crash of stage  (** the stage raises {!Crash} on entry *)
  | Stage_stuck of stage
      (** the stage raises {!Stuck} on entry (a hang detected and killed
          by a watchdog, modeled as an exception) *)

let fault_name = function
  | Strand_dropout p -> Printf.sprintf "strand-dropout(%.2f)" p
  | Undersampling f -> Printf.sprintf "undersampling(%.2f)" f
  | Read_truncation { p; keep_min } -> Printf.sprintf "read-truncation(%.2f,>=%.2f)" p keep_min
  | Read_corruption r -> Printf.sprintf "read-corruption(%.3f)" r
  | Cluster_loss p -> Printf.sprintf "cluster-loss(%.2f)" p
  | Stage_crash s -> Printf.sprintf "crash(%s)" (stage_name s)
  | Stage_stuck s -> Printf.sprintf "stuck(%s)" (stage_name s)

type plan = { seed : int; faults : fault list }

let plan ?(seed = 0) faults = { seed; faults }

(* One independent stream per injection site, derived from the plan seed
   only. The golden-ratio multiplier decorrelates neighboring sites. *)
let site_rng plan site = Dna.Rng.create (plan.seed lxor (site * 0x9E3779B9) lxor 0x7faadb)

let strand_site = 1
let read_site = 2
let cluster_site = 3

let trigger plan stage =
  List.iter
    (function
      | Stage_crash s when s = stage -> raise (Crash stage)
      | Stage_stuck s when s = stage -> raise (Stuck stage)
      | _ -> ())
    plan.faults

(* ---------- data-fault application ---------- *)

let keep_filter rng p arr = Array.of_list (List.filter (fun _ -> Dna.Rng.float rng >= p) (Array.to_list arr))

let inject_strands plan (strands : Dna.Strand.t array) : Dna.Strand.t array =
  let rng = site_rng plan strand_site in
  List.fold_left
    (fun strands fault ->
      match fault with
      | Strand_dropout p -> keep_filter rng p strands
      | _ -> strands)
    strands plan.faults

let truncate_read rng ~keep_min (s : Dna.Strand.t) =
  let n = Dna.Strand.length s in
  if n <= 1 then s
  else begin
    let frac = keep_min +. (Dna.Rng.float rng *. (1.0 -. keep_min)) in
    let keep = max 1 (min n (int_of_float (frac *. float_of_int n))) in
    Dna.Strand.sub s ~pos:0 ~len:keep
  end

let corrupt_read rng rate (s : Dna.Strand.t) =
  Dna.Strand.init_codes (Dna.Strand.length s) (fun i ->
      let code = Dna.Strand.get_code s i in
      if Dna.Rng.float rng < rate then (code + 1 + Dna.Rng.int rng 3) land 3 else code)

let inject_reads plan (reads : Simulator.Sequencer.read array) : Simulator.Sequencer.read array =
  let rng = site_rng plan read_site in
  List.fold_left
    (fun reads fault ->
      match fault with
      | Undersampling f ->
          let n = Array.length reads in
          if n = 0 then reads
          else begin
            let k = max 1 (min n (int_of_float (f *. float_of_int n))) in
            let idx = Dna.Rng.sample_indices rng ~n ~k in
            Array.sort compare idx;
            Array.map (fun i -> reads.(i)) idx
          end
      | Read_truncation { p; keep_min } ->
          Array.map
            (fun r ->
              if Dna.Rng.float rng < p then
                { r with Simulator.Sequencer.seq = truncate_read rng ~keep_min r.Simulator.Sequencer.seq }
              else r)
            reads
      | Read_corruption rate ->
          Array.map
            (fun r -> { r with Simulator.Sequencer.seq = corrupt_read rng rate r.Simulator.Sequencer.seq })
            reads
      | _ -> reads)
    reads plan.faults

let inject_clusters plan (clusters : Dna.Strand.t list list) : Dna.Strand.t list list =
  let rng = site_rng plan cluster_site in
  List.fold_left
    (fun clusters fault ->
      match fault with
      | Cluster_loss p -> List.filter (fun _ -> Dna.Rng.float rng >= p) clusters
      | _ -> clusters)
    clusters plan.faults

(* Same fault, pool-native shape: the pooled pipeline's clusters are
   index slices into the read arena. Draw-for-draw identical to
   [inject_clusters] (one float per cluster per Cluster_loss, same site
   stream), so the two spines lose the same clusters under one plan. *)
let inject_cluster_slices plan (clusters : int array list) : int array list =
  let rng = site_rng plan cluster_site in
  List.fold_left
    (fun clusters fault ->
      match fault with
      | Cluster_loss p -> List.filter (fun _ -> Dna.Rng.float rng >= p) clusters
      | _ -> clusters)
    clusters plan.faults

(* ---------- the named scenario matrix ---------- *)

type scenario = {
  scenario_name : string;
  scenario_faults : fault list;
  min_recovered : float;
      (** recovered-fraction floor this scenario must report (0.0 when
          the fault budget intentionally exceeds what RS erasures can
          absorb and only never-raise is asserted) *)
}

let scenarios =
  [
    { scenario_name = "clean"; scenario_faults = []; min_recovered = 1.0 };
    { scenario_name = "dropout-10"; scenario_faults = [ Strand_dropout 0.10 ]; min_recovered = 0.9 };
    { scenario_name = "dropout-20"; scenario_faults = [ Strand_dropout 0.20 ]; min_recovered = 0.0 };
    { scenario_name = "cluster-loss-10"; scenario_faults = [ Cluster_loss 0.10 ]; min_recovered = 0.9 };
    {
      scenario_name = "truncation";
      scenario_faults = [ Read_truncation { p = 0.1; keep_min = 0.5 } ];
      min_recovered = 0.9;
    };
    { scenario_name = "corruption-2"; scenario_faults = [ Read_corruption 0.02 ]; min_recovered = 0.9 };
    { scenario_name = "undersample-70"; scenario_faults = [ Undersampling 0.7 ]; min_recovered = 0.9 };
    { scenario_name = "undersample-50"; scenario_faults = [ Undersampling 0.5 ]; min_recovered = 0.0 };
    {
      scenario_name = "combined";
      scenario_faults = [ Strand_dropout 0.05; Read_corruption 0.01; Cluster_loss 0.05 ];
      min_recovered = 0.9;
    };
    { scenario_name = "crash-cluster"; scenario_faults = [ Stage_crash Cluster ]; min_recovered = 0.0 };
    {
      scenario_name = "stuck-reconstruct";
      scenario_faults = [ Stage_stuck Reconstruct ];
      min_recovered = 0.9;
    };
    { scenario_name = "crash-decode"; scenario_faults = [ Stage_crash Decode ]; min_recovered = 0.0 };
    { scenario_name = "crash-encode"; scenario_faults = [ Stage_crash Encode ]; min_recovered = 0.0 };
  ]

let find_scenario name = List.find_opt (fun s -> s.scenario_name = name) scenarios

let plan_of_scenario ~seed s = { seed; faults = s.scenario_faults }
