(** Execute declarative scenarios ({!Simulator.Scenario}) through
    {!Pipeline.run}, resolving floor names against the {!Faults}
    matrix. One seed fixes the pipeline rng, the fault plan and the
    error-rate probe, so equal (scenario, fault, seed, data) replays
    bit-identically. *)

type outcome = {
  scenario : string;
  fault : string;  (** fault-plan name from the {!Faults} matrix *)
  seed : int;
  n_bytes : int;
  exact : bool;
  recovered_fraction : float;
  configured_error_rate : float;
      (** analytic per-base rate of the scenario's read-level stack *)
  realized_error_rate : float;
      (** measured by probing the composed channel against known strands *)
  floor : float option;
      (** the scenario's recovered-fraction floor for this fault plan *)
  passed : bool;  (** [recovered_fraction >= floor] (true when no floor) *)
  wall_s : float;
}

val realized_rate : ?strand_len:int -> ?trials:int -> Simulator.Channel.t -> seed:int -> float
(** Mean per-base error rate of a channel, measured on a stream derived
    from (not equal to) [seed] so probing never perturbs a replay. *)

val run :
  ?params:Codec.Params.t ->
  ?layout:Codec.Layout.t ->
  ?coverage:int ->
  ?domains:int ->
  ?fault:string ->
  seed:int ->
  data:Bytes.t ->
  Simulator.Scenario.t ->
  (outcome, string) result
(** One cell: encode [data], apply the scenario's pool stages and
    composed channel, inject the named fault plan (default ["clean"]),
    recover. [Error] on an unknown fault name or an unbuildable
    scenario (e.g. an unreadable trace path). *)

val sweep :
  ?params:Codec.Params.t ->
  ?layout:Codec.Layout.t ->
  ?coverage:int ->
  ?domains:int ->
  faults:string list ->
  seeds:int list ->
  data:Bytes.t ->
  Simulator.Scenario.t list ->
  (outcome list, string) result
(** The full matrix, scenario-major then fault then seed. Also checks
    that every floor a swept scenario declares names a known fault plan
    (even ones this sweep does not exercise). *)

val failures : outcome list -> outcome list
(** The cells whose recovered fraction fell below their floor. *)

val run_full :
  ?params:Codec.Params.t ->
  ?layout:Codec.Layout.t ->
  ?coverage:int ->
  ?domains:int ->
  ?fault:string ->
  seed:int ->
  data:Bytes.t ->
  Simulator.Scenario.t ->
  (outcome * Pipeline.outcome, string) result
(** [run], but also exposing the raw pipeline outcome — what replay
    checks compare byte-for-byte. *)

val outcome_json : outcome -> Store_json.t
val outcomes_json : outcome list -> Store_json.t
(** The sweep artifact shape: [{"cells": [...], "n_cells": n,
    "n_failed": k}]. *)
