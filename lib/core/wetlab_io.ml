(** Handling real (or exported) wetlab data (Section VIII).

    Sequencers emit FASTQ. This module converts FASTQ reads into the
    pipeline's internal format — filtering unparsable records, detecting
    strand directionality against the primer library, normalizing 3'->5'
    reads to 5'->3', and stripping primers — so that a wetlab run can
    seamlessly replace the simulation module. The reverse direction
    ([export_fastq]) writes simulated reads out as FASTQ, useful for
    interoperating with external tools. *)

type ingest_stats = {
  total_records : int;
  parse_errors : int;
  no_primer_match : int;  (** reads matching no known primer pair *)
  forward : int;
  reverse : int;
}

type ingested = {
  (* Cores grouped per primer pair, pipeline-ready. *)
  by_pair : (Codec.Primer.pair * Dna.Strand.t array) list;
  stats : ingest_stats;
}

(* Match a read against a library of primer pairs; normalize orientation
   and strip primers with the first pair that fits. *)
let ingest_records (pairs : Codec.Primer.pair list) (records : Dna.Fastq.record list)
    ~(parse_errors : int) : ingested =
  let buckets = List.map (fun p -> (p, ref [])) pairs in
  let no_match = ref 0 and fwd = ref 0 and rev = ref 0 in
  List.iter
    (fun (r : Dna.Fastq.record) ->
      let rec try_pairs = function
        | [] -> incr no_match
        | (pair, bucket) :: rest -> (
            match Codec.Primer.orient pair r.Dna.Fastq.seq with
            | None -> try_pairs rest
            | Some (oriented, dir) -> (
                match Codec.Primer.strip pair oriented with
                | None -> try_pairs rest
                | Some core ->
                    (match dir with
                    | Codec.Primer.Forward -> incr fwd
                    | Codec.Primer.Reverse -> incr rev);
                    bucket := core :: !bucket))
      in
      try_pairs buckets)
    records;
  {
    by_pair =
      List.filter_map
        (fun (p, b) -> if !b = [] then None else Some (p, Array.of_list (List.rev !b)))
        buckets;
    stats =
      {
        total_records = List.length records + parse_errors;
        parse_errors;
        no_primer_match = !no_match;
        forward = !fwd;
        reverse = !rev;
      };
  }

let ingest_string pairs s =
  let records, errors = Dna.Fastq.parse_string s in
  ingest_records pairs records ~parse_errors:(List.length errors)

let ingest_file pairs path =
  let records, errors = Dna.Fastq.read_file path in
  ingest_records pairs records ~parse_errors:(List.length errors)

(* Pooled demux: the same orientation/stripping pipeline, but cores land
   in one arena per primer pair instead of one boxed strand per read.
   Stripping is a zero-copy slice, so the only per-read allocation left
   is the transient reverse-complement of 3'->5' reads. *)

type ingested_pool = {
  pools_by_pair : (Codec.Primer.pair * Dna.Strand_pool.t) list;
  pool_stats : ingest_stats;
}

type demux = {
  d_buckets : (Codec.Primer.pair * Dna.Strand_pool.t) list;
  mutable d_total : int;
  mutable d_no_match : int;
  mutable d_fwd : int;
  mutable d_rev : int;
}

let demux_create pairs =
  {
    d_buckets = List.map (fun p -> (p, Dna.Strand_pool.create ())) pairs;
    d_total = 0;
    d_no_match = 0;
    d_fwd = 0;
    d_rev = 0;
  }

let demux_read d (seq : Dna.Strand.t) =
  d.d_total <- d.d_total + 1;
  let rec try_pairs = function
    | [] -> d.d_no_match <- d.d_no_match + 1
    | (pair, pool) :: rest -> (
        match Codec.Primer.orient pair seq with
        | None -> try_pairs rest
        | Some (oriented, dir) -> (
            match Codec.Primer.strip pair oriented with
            | None -> try_pairs rest
            | Some core ->
                (match dir with
                | Codec.Primer.Forward -> d.d_fwd <- d.d_fwd + 1
                | Codec.Primer.Reverse -> d.d_rev <- d.d_rev + 1);
                ignore (Dna.Strand_pool.add_strand pool core)))
  in
  try_pairs d.d_buckets

let demux_finish d ~parse_errors =
  {
    pools_by_pair =
      List.filter (fun (_, pool) -> Dna.Strand_pool.length pool > 0) d.d_buckets;
    pool_stats =
      {
        total_records = d.d_total + parse_errors;
        parse_errors;
        no_primer_match = d.d_no_match;
        forward = d.d_fwd;
        reverse = d.d_rev;
      };
  }

let ingest_pool pairs ?(parse_errors = 0) (source : Dna.Strand_pool.t) =
  let d = demux_create pairs in
  Dna.Strand_pool.iter (fun _ seq -> demux_read d seq) source;
  demux_finish d ~parse_errors

let ingest_file_pool pairs path =
  let d = demux_create pairs in
  let (), errors =
    Dna.Fastq.fold_file path ~init:() ~f:(fun () r -> demux_read d r.Dna.Fastq.seq)
  in
  demux_finish d ~parse_errors:(List.length errors)

(* Export simulated reads as FASTQ with a uniform quality track. *)
let export_fastq ?(quality = 30) (reads : Dna.Strand.t array) : string =
  let records =
    Array.to_list
      (Array.mapi
         (fun i seq ->
           { Dna.Fastq.id = Printf.sprintf "read_%d" i; seq; qual = Dna.Fastq.with_uniform_quality ~q:quality seq })
         reads)
  in
  Dna.Fastq.to_string records

let export_fastq_file ?quality path reads =
  let oc = open_out path in
  output_string oc (export_fastq ?quality reads);
  close_out oc
