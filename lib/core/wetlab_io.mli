(** Handling real (or exported) wetlab data (Section VIII): FASTQ in,
    pipeline-ready primer-stripped cores out — so a sequencing run can
    seamlessly replace the simulation module. *)

type ingest_stats = {
  total_records : int;
  parse_errors : int;
  no_primer_match : int;  (** reads matching no known primer pair *)
  forward : int;
  reverse : int;  (** reads that arrived 3'->5' and were normalized *)
}

type ingested = {
  by_pair : (Codec.Primer.pair * Dna.Strand.t array) list;
  stats : ingest_stats;
}

val ingest_records :
  Codec.Primer.pair list -> Dna.Fastq.record list -> parse_errors:int -> ingested

val ingest_string : Codec.Primer.pair list -> string -> ingested
val ingest_file : Codec.Primer.pair list -> string -> ingested

type ingested_pool = {
  pools_by_pair : (Codec.Primer.pair * Dna.Strand_pool.t) list;
  pool_stats : ingest_stats;
}

val ingest_pool :
  Codec.Primer.pair list -> ?parse_errors:int -> Dna.Strand_pool.t -> ingested_pool
(** Demux reads already in an arena (e.g. pooled simulator output):
    orientation and primer stripping as in [ingest_records], with the
    cores landing in one pool per primer pair — no boxed strand per
    read. Pairs that match nothing are dropped from the result. *)

val ingest_file_pool : Codec.Primer.pair list -> string -> ingested_pool
(** Stream a FASTQ file straight into per-pair core pools: bounded
    memory — no record list, no boxed read set — regardless of file
    size. *)

val export_fastq : ?quality:int -> Dna.Strand.t array -> string
(** Simulated reads as FASTQ text with a uniform quality track. *)

val export_fastq_file : ?quality:int -> string -> Dna.Strand.t array -> unit
