(** Additive (Bahdanau) attention [1].

    score_i = va . tanh(Wa h_i + Ua s)
    alpha   = softmax(score)
    context = sum_i alpha_i h_i

    [Wa h_i] depends only on the encoder annotations, so it is computed
    once per sequence and reused at every decoder step. *)

type t = {
  annot_dim : int;
  state_dim : int;
  attn_dim : int;
  wa : Params.param;
  ua : Params.param;
  va : Params.param;
}

let create store rng ~prefix ~annot_dim ~state_dim ~attn_dim =
  {
    annot_dim;
    state_dim;
    attn_dim;
    wa = Params.add_matrix store rng ~name:(prefix ^ ".wa") ~rows:attn_dim ~cols:annot_dim;
    ua = Params.add_matrix store rng ~name:(prefix ^ ".ua") ~rows:attn_dim ~cols:state_dim;
    va = Params.add_matrix store rng ~name:(prefix ^ ".va") ~rows:1 ~cols:attn_dim;
  }

type precomputed = { keys : Autodiff.v list; annotations : Autodiff.v list }

let precompute t tape annotations =
  let wa = Gru.wrap tape t.wa in
  let keys =
    List.map (fun h -> Autodiff.matvec tape wa ~rows:t.attn_dim ~cols:t.annot_dim h) annotations
  in
  { keys; annotations }

(* Returns (context, weights). [position] adds a fixed location bias
   -|i - position| * location_weight to the scores before the softmax: a
   monotonic prior toward the diagonal that the trained scores can
   override. Channel simulation is a copy-like task, and the prior lets
   training spend its budget on the emission statistics instead of
   rediscovering monotonic alignment. *)
let location_weight = 0.3

(* Deletions dominate wetlab noise, so the aligned clean position runs
   slightly ahead of the output position; the bias center follows at
   this fixed expansion ratio and the trained scores absorb the rest. *)
let location_ratio = 1.04

let apply ?position t tape pre ~state =
  let open Autodiff in
  let ua = Gru.wrap tape t.ua and va = Gru.wrap tape t.va in
  let query = matvec tape ua ~rows:t.attn_dim ~cols:t.state_dim state in
  let scores =
    List.map
      (fun key -> matvec tape va ~rows:1 ~cols:t.attn_dim (tanh tape (add tape key query)))
      pre.keys
  in
  let scores = stack tape scores in
  let scores =
    match position with
    | None -> scores
    | Some p ->
        let center = location_ratio *. float_of_int p in
        let bias =
          Array.init (length scores) (fun i ->
              -.location_weight *. abs_float (float_of_int i -. center))
        in
        add tape scores (const tape bias)
  in
  let weights = softmax tape scores in
  let context = weighted_sum tape weights pre.annotations in
  (context, weights)
