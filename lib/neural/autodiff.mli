(** Reverse-mode automatic differentiation at vector granularity.
    Values are float vectors recorded on a tape; {!backward} walks the
    tape in reverse accumulating gradients. *)

type v = {
  data : float array;
  grad : float array;
  back : unit -> unit;  (** propagate [grad] into the inputs' grads *)
}

type tape

val create_tape : unit -> tape

val const : tape -> float array -> v
(** A constant: no gradient flows out of it. *)

val leaf : tape -> data:float array -> grad:float array -> v
(** A parameter leaf sharing storage with a {!Params} entry, so
    gradients accumulate in place across time steps. *)

val length : v -> int

val matvec : tape -> v -> rows:int -> cols:int -> v -> v
(** [matvec t a ~rows ~cols x] is [A x] for [a] holding a row-major
    [rows x cols] matrix. *)

val map : tape -> (float -> float) -> (float -> float -> float) -> v -> v
(** [map t f df a] applies [f] elementwise; [df x y] is the derivative
    at input [x] with output [y] (whichever is cheaper to use). *)

val add : tape -> v -> v -> v
val sub : tape -> v -> v -> v
val mul : tape -> v -> v -> v
(** Hadamard product. *)

val add3 : tape -> v -> v -> v -> v
val sigmoid : tape -> v -> v
val tanh : tape -> v -> v
val concat : tape -> v -> v -> v

val stack : tape -> v list -> v
(** Stack scalar (length-1) values into one vector (attention scores). *)

val dot : tape -> v -> v -> v
(** Scalar (length-1) result. *)

val softmax : tape -> v -> v

val weighted_sum : tape -> v -> v list -> v
(** [weighted_sum t coeffs vs] is [sum_i coeffs_i * vs_i], with
    gradients flowing to both the coefficients and the vectors. *)

val cross_entropy : tape -> v -> target:int -> v
(** Cross-entropy of logits against a target class; backward applies
    the closed-form (softmax - onehot) gradient. *)

val backward : tape -> v -> unit
(** Seed the scalar output's gradient with 1 and run the tape backwards.
    Raises [Invalid_argument] on a non-scalar value. *)

val softmax_probs : float array -> float array
(** Forward-only softmax, for sampling. *)
