(** Named trainable parameters, persisted across tapes.

    Each parameter owns its data and gradient arrays; forward passes wrap
    them in [Autodiff.leaf] nodes so gradients accumulate in place. The
    store serializes to a flat float array for checkpointing. *)

type param = { name : string; data : float array; grad : float array }

type t = { mutable params : param list (* in creation order, reversed *) }

let create () = { params = [] }

let add t ~name ~size ~init =
  if List.exists (fun p -> p.name = name) t.params then
    invalid_arg ("Params.add: duplicate name " ^ name);
  let p = { name; data = Array.init size init; grad = Array.make size 0.0 } in
  t.params <- p :: t.params;
  p

(* Glorot-style uniform init scaled by fan-in + fan-out. *)
let add_matrix t rng ~name ~rows ~cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  add t ~name ~size:(rows * cols) ~init:(fun _ -> (Dna.Rng.float rng *. 2.0 -. 1.0) *. bound)

let add_vector t ~name ~size = add t ~name ~size ~init:(fun _ -> 0.0)

let zero_grads t = List.iter (fun p -> Array.fill p.grad 0 (Array.length p.grad) 0.0) t.params

let in_order t = List.rev t.params

let total_size t = List.fold_left (fun acc p -> acc + Array.length p.data) 0 t.params

let to_flat t =
  let flat = Array.make (total_size t) 0.0 in
  let pos = ref 0 in
  List.iter
    (fun p ->
      Array.blit p.data 0 flat !pos (Array.length p.data);
      pos := !pos + Array.length p.data)
    (in_order t);
  flat

let of_flat t flat =
  if Array.length flat <> total_size t then invalid_arg "Params.of_flat: size mismatch";
  let pos = ref 0 in
  List.iter
    (fun p ->
      Array.blit flat !pos p.data 0 (Array.length p.data);
      pos := !pos + Array.length p.data)
    (in_order t)

(* Global L2 norm of the gradient; used for clipping. *)
let grad_norm t =
  let s =
    List.fold_left
      (fun acc p -> Array.fold_left (fun a g -> a +. (g *. g)) acc p.grad)
      0.0 t.params
  in
  sqrt s

let clip_grads t ~max_norm =
  let norm = grad_norm t in
  if norm > max_norm then begin
    let scale = max_norm /. norm in
    List.iter
      (fun p ->
        for i = 0 to Array.length p.grad - 1 do
          p.grad.(i) <- p.grad.(i) *. scale
        done)
      t.params
  end
