(** Reverse-mode automatic differentiation at vector granularity.

    Values are float vectors recorded on a tape; [backward] walks the tape
    in reverse, accumulating gradients. Working at vector rather than
    scalar granularity keeps the overhead small enough to train the GRU
    simulator on CPU, while still letting the model code read like the
    math (Section V-B of the paper). *)

type v = {
  data : float array;
  grad : float array;
  back : unit -> unit;  (** propagate [grad] into the inputs' grads *)
}

type tape = { mutable nodes : v list }

let create_tape () = { nodes = [] }

let record tape node =
  tape.nodes <- node :: tape.nodes;
  node

let no_back () = ()

(* A constant: participates in forward computation, receives no gradient
   updates (its grad array is a sink). *)
let const tape data = record tape { data; grad = Array.make (Array.length data) 0.0; back = no_back }

(* A leaf sharing [data]/[grad] with a parameter store, so gradients
   accumulate across time steps and sequences until the optimizer runs. *)
let leaf tape ~data ~grad = record tape { data; grad; back = no_back }

let length v = Array.length v.data

(* y = A x, where [a] stores an [rows x cols] matrix row-major. *)
let matvec tape a ~rows ~cols x =
  if Array.length a.data <> rows * cols then invalid_arg "Autodiff.matvec: matrix size";
  if length x <> cols then invalid_arg "Autodiff.matvec: vector size";
  let ad = a.data and xd = x.data in
  let out = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let s = ref 0.0 in
    let base = i * cols in
    for j = 0 to cols - 1 do
      s := !s +. (Array.unsafe_get ad (base + j) *. Array.unsafe_get xd j)
    done;
    Array.unsafe_set out i !s
  done;
  let node = { data = out; grad = Array.make rows 0.0; back = no_back } in
  let back () =
    let ag = a.grad and xg = x.grad in
    for i = 0 to rows - 1 do
      let g = Array.unsafe_get node.grad i in
      if g <> 0.0 then begin
        let base = i * cols in
        for j = 0 to cols - 1 do
          Array.unsafe_set ag (base + j)
            (Array.unsafe_get ag (base + j) +. (g *. Array.unsafe_get xd j));
          Array.unsafe_set xg j (Array.unsafe_get xg j +. (g *. Array.unsafe_get ad (base + j)))
        done
      end
    done
  in
  record tape { node with back }

let map2 tape f dfa dfb a b =
  if length a <> length b then invalid_arg "Autodiff.map2: length mismatch";
  let n = length a in
  let out = Array.init n (fun i -> f a.data.(i) b.data.(i)) in
  let node = { data = out; grad = Array.make n 0.0; back = no_back } in
  let back () =
    for i = 0 to n - 1 do
      let g = node.grad.(i) in
      a.grad.(i) <- a.grad.(i) +. (g *. dfa a.data.(i) b.data.(i));
      b.grad.(i) <- b.grad.(i) +. (g *. dfb a.data.(i) b.data.(i))
    done
  in
  record tape { node with back }

let add tape a b = map2 tape ( +. ) (fun _ _ -> 1.0) (fun _ _ -> 1.0) a b
let sub tape a b = map2 tape ( -. ) (fun _ _ -> 1.0) (fun _ _ -> -1.0) a b
let mul tape a b = map2 tape ( *. ) (fun _ y -> y) (fun x _ -> x) a b

let add3 tape a b c = add tape (add tape a b) c

let map tape f df a =
  let n = length a in
  let out = Array.init n (fun i -> f a.data.(i)) in
  let node = { data = out; grad = Array.make n 0.0; back = no_back } in
  let back () =
    for i = 0 to n - 1 do
      a.grad.(i) <- a.grad.(i) +. (node.grad.(i) *. df a.data.(i) out.(i))
    done
  in
  record tape { node with back }

(* Derivatives are written in terms of the *output* where that is cheaper. *)
let sigmoid tape a = map tape (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun _ y -> y *. (1.0 -. y)) a
let tanh tape a = map tape Stdlib.tanh (fun _ y -> 1.0 -. (y *. y)) a

let concat tape a b =
  let na = length a and nb = length b in
  let out = Array.append a.data b.data in
  let node = { data = out; grad = Array.make (na + nb) 0.0; back = no_back } in
  let back () =
    for i = 0 to na - 1 do
      a.grad.(i) <- a.grad.(i) +. node.grad.(i)
    done;
    for i = 0 to nb - 1 do
      b.grad.(i) <- b.grad.(i) +. node.grad.(na + i)
    done
  in
  record tape { node with back }

(* Stack scalar (length-1) values into one vector; used to gather
   attention scores before the softmax. *)
let stack tape scalars =
  let arr = Array.of_list scalars in
  let n = Array.length arr in
  let out = Array.map (fun s -> s.data.(0)) arr in
  let node = { data = out; grad = Array.make n 0.0; back = no_back } in
  let back () =
    Array.iteri (fun i s -> s.grad.(0) <- s.grad.(0) +. node.grad.(i)) arr
  in
  record tape { node with back }

let dot tape a b =
  if length a <> length b then invalid_arg "Autodiff.dot: length mismatch";
  let n = length a in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.data.(i) *. b.data.(i))
  done;
  let node = { data = [| !s |]; grad = [| 0.0 |]; back = no_back } in
  let back () =
    let g = node.grad.(0) in
    for i = 0 to n - 1 do
      a.grad.(i) <- a.grad.(i) +. (g *. b.data.(i));
      b.grad.(i) <- b.grad.(i) +. (g *. a.data.(i))
    done
  in
  record tape { node with back }

let softmax tape a =
  let n = length a in
  let m = Array.fold_left max neg_infinity a.data in
  let exps = Array.map (fun x -> exp (x -. m)) a.data in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let out = Array.map (fun e -> e /. z) exps in
  let node = { data = out; grad = Array.make n 0.0; back = no_back } in
  let back () =
    (* dL/dx_i = y_i * (g_i - sum_j g_j y_j) *)
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (node.grad.(j) *. out.(j))
    done;
    for i = 0 to n - 1 do
      a.grad.(i) <- a.grad.(i) +. (out.(i) *. (node.grad.(i) -. !acc))
    done
  in
  record tape { node with back }

(* context = sum_i coeffs_i * vs_i, with gradients flowing to both the
   coefficients (softmax output) and the encoder annotations. *)
let weighted_sum tape coeffs vs =
  let arr = Array.of_list vs in
  let t = Array.length arr in
  if length coeffs <> t then invalid_arg "Autodiff.weighted_sum: arity mismatch";
  if t = 0 then invalid_arg "Autodiff.weighted_sum: empty";
  let n = length arr.(0) in
  let out = Array.make n 0.0 in
  for i = 0 to t - 1 do
    let c = coeffs.data.(i) in
    for j = 0 to n - 1 do
      out.(j) <- out.(j) +. (c *. arr.(i).data.(j))
    done
  done;
  let node = { data = out; grad = Array.make n 0.0; back = no_back } in
  let back () =
    for i = 0 to t - 1 do
      let c = coeffs.data.(i) in
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        let g = node.grad.(j) in
        arr.(i).grad.(j) <- arr.(i).grad.(j) +. (g *. c);
        s := !s +. (g *. arr.(i).data.(j))
      done;
      coeffs.grad.(i) <- coeffs.grad.(i) +. !s
    done
  in
  record tape { node with back }

(* Cross-entropy of logits against a target class. Forward stores the
   loss; backward applies (softmax - onehot), the closed-form gradient. *)
let cross_entropy tape logits ~target =
  let n = length logits in
  if target < 0 || target >= n then invalid_arg "Autodiff.cross_entropy: target";
  let m = Array.fold_left max neg_infinity logits.data in
  let exps = Array.map (fun x -> exp (x -. m)) logits.data in
  let z = Array.fold_left ( +. ) 0.0 exps in
  let probs = Array.map (fun e -> e /. z) exps in
  let loss = -.log (max 1e-12 probs.(target)) in
  let node = { data = [| loss |]; grad = [| 0.0 |]; back = no_back } in
  let back () =
    let g = node.grad.(0) in
    for i = 0 to n - 1 do
      let delta = if i = target then probs.(i) -. 1.0 else probs.(i) in
      logits.grad.(i) <- logits.grad.(i) +. (g *. delta)
    done
  in
  record tape { node with back }

(* Seed the output gradient and run the tape backwards. *)
let backward tape (loss : v) =
  if length loss <> 1 then invalid_arg "Autodiff.backward: loss must be scalar";
  loss.grad.(0) <- 1.0;
  List.iter (fun node -> node.back ()) tape.nodes

let softmax_probs logits =
  let m = Array.fold_left max neg_infinity logits in
  let exps = Array.map (fun x -> exp (x -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps
