(** The Adam optimizer over a parameter store. *)

type t

val create : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> Params.t -> t
(** Defaults: lr 1e-3, beta1 0.9, beta2 0.999, eps 1e-8. *)

val update : t -> unit
(** One step from the accumulated gradients; zeroes them afterwards. *)
