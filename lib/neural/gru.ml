(** A Gated Recurrent Unit cell (Cho et al. / Chung et al. [9]).

    z = sigmoid(Wz x + Uz h + bz)        update gate
    r = sigmoid(Wr x + Ur h + br)        reset gate
    c = tanh(Wc x + Uc (r * h) + bc)     candidate
    h' = (1 - z) * h + z * c

    The paper's optimal simulator configuration uses single-layer GRUs in
    both the encoder and decoder because of their resistance to
    overfitting compared to LSTMs. *)

type t = {
  input : int;
  hidden : int;
  wz : Params.param;
  uz : Params.param;
  bz : Params.param;
  wr : Params.param;
  ur : Params.param;
  br : Params.param;
  wc : Params.param;
  uc : Params.param;
  bc : Params.param;
}

let create store rng ~prefix ~input ~hidden =
  let mat name rows cols = Params.add_matrix store rng ~name:(prefix ^ name) ~rows ~cols in
  let vec name size = Params.add_vector store ~name:(prefix ^ name) ~size in
  {
    input;
    hidden;
    wz = mat ".wz" hidden input;
    uz = mat ".uz" hidden hidden;
    bz = vec ".bz" hidden;
    wr = mat ".wr" hidden input;
    ur = mat ".ur" hidden hidden;
    br = vec ".br" hidden;
    wc = mat ".wc" hidden input;
    uc = mat ".uc" hidden hidden;
    bc = vec ".bc" hidden;
  }

let wrap tape (p : Params.param) = Autodiff.leaf tape ~data:p.Params.data ~grad:p.Params.grad

(* One time step: state [h], input [x], both as tape values. *)
let step t tape ~h ~x =
  let open Autodiff in
  let h_dim = t.hidden and x_dim = t.input in
  let mv p v dim = matvec tape (wrap tape p) ~rows:t.hidden ~cols:dim v in
  let z = sigmoid tape (add3 tape (mv t.wz x x_dim) (mv t.uz h h_dim) (wrap tape t.bz)) in
  let r = sigmoid tape (add3 tape (mv t.wr x x_dim) (mv t.ur h h_dim) (wrap tape t.br)) in
  let rh = mul tape r h in
  let c = tanh tape (add3 tape (mv t.wc x x_dim) (mv t.uc rh h_dim) (wrap tape t.bc)) in
  (* h' = h + z * (c - h), algebraically (1-z)h + zc without a ones vec. *)
  add tape h (mul tape z (sub tape c h))

let zero_state t tape = Autodiff.const tape (Array.make t.hidden 0.0)
