(** Named trainable parameters, persisted across tapes. *)

type param = { name : string; data : float array; grad : float array }
type t

val create : unit -> t

val add : t -> name:string -> size:int -> init:(int -> float) -> param
(** Raises [Invalid_argument] on a duplicate name. *)

val add_matrix : t -> Dna.Rng.t -> name:string -> rows:int -> cols:int -> param
(** Glorot-uniform initialization. *)

val add_vector : t -> name:string -> size:int -> param
(** Zero-initialized. *)

val zero_grads : t -> unit
val in_order : t -> param list
val total_size : t -> int

val to_flat : t -> float array
(** All parameter data concatenated in creation order (checkpoints). *)

val of_flat : t -> float array -> unit

val grad_norm : t -> float
(** Global L2 norm of all gradients. *)

val clip_grads : t -> max_norm:float -> unit
