(** Attention-based encoder-decoder for modeling Pr(noisy | clean).

    Mirrors Figure 4 of the paper: a bi-directional GRU encoder turns the
    clean strand into annotations; a unidirectional GRU decoder with
    additive attention emits the noisy strand token by token. Training
    uses teacher forcing; inference samples position-by-position (the
    paper's "greedy sampling": immediate ancestral sampling once the
    token probabilities are known).

    Tokens: bases are 0..3; the decoder input vocabulary adds BOS = 4 and
    the output classes add EOS = 4. *)

let n_bases = 4
let bos = 4
let eos = 4
let dec_vocab = 5 (* A C G T BOS *)
let out_classes = 5 (* A C G T EOS *)

type t = {
  hidden : int;
  store : Params.t;
  enc_fw : Gru.t;
  enc_bw : Gru.t;
  attn : Attention.t;
  dec : Gru.t;
  w_init : Params.param;
  w_out : Params.param;
  b_out : Params.param;
}

let create ?(hidden = 32) rng =
  let store = Params.create () in
  let enc_fw = Gru.create store rng ~prefix:"enc_fw" ~input:n_bases ~hidden in
  let enc_bw = Gru.create store rng ~prefix:"enc_bw" ~input:n_bases ~hidden in
  let annot_dim = 2 * hidden in
  let attn = Attention.create store rng ~prefix:"attn" ~annot_dim ~state_dim:hidden ~attn_dim:hidden in
  let dec = Gru.create store rng ~prefix:"dec" ~input:(dec_vocab + annot_dim) ~hidden in
  let w_init = Params.add_matrix store rng ~name:"w_init" ~rows:hidden ~cols:annot_dim in
  let w_out = Params.add_matrix store rng ~name:"w_out" ~rows:out_classes ~cols:(hidden + annot_dim) in
  let b_out = Params.add_vector store ~name:"b_out" ~size:out_classes in
  { hidden; store; enc_fw; enc_bw; attn; dec; w_init; w_out; b_out }

let one_hot tape ~size i =
  let a = Array.make size 0.0 in
  a.(i) <- 1.0;
  Autodiff.const tape a

(* Encode the clean strand into per-position annotations [fw_i; bw_i]. *)
let encode t tape (clean : int array) =
  let n = Array.length clean in
  let inputs = Array.map (fun c -> one_hot tape ~size:n_bases c) clean in
  let fw = Array.make n (Gru.zero_state t.enc_fw tape) in
  let h = ref (Gru.zero_state t.enc_fw tape) in
  for i = 0 to n - 1 do
    h := Gru.step t.enc_fw tape ~h:!h ~x:inputs.(i);
    fw.(i) <- !h
  done;
  let bw = Array.make n (Gru.zero_state t.enc_bw tape) in
  let hb = ref (Gru.zero_state t.enc_bw tape) in
  for i = n - 1 downto 0 do
    hb := Gru.step t.enc_bw tape ~h:!hb ~x:inputs.(i);
    bw.(i) <- !hb
  done;
  Array.to_list (Array.init n (fun i -> Autodiff.concat tape fw.(i) bw.(i)))

let init_state t tape annotations =
  match annotations with
  | [] -> invalid_arg "Seq2seq: empty input"
  | first :: _ ->
      Autodiff.tanh tape
        (Autodiff.matvec tape (Gru.wrap tape t.w_init) ~rows:t.hidden ~cols:(2 * t.hidden) first)

let logits_of t tape ~state ~context =
  let open Autodiff in
  let cat = concat tape state context in
  add tape
    (matvec tape (Gru.wrap tape t.w_out) ~rows:out_classes ~cols:(t.hidden + (2 * t.hidden)) cat)
    (Gru.wrap tape t.b_out)

(* Average token cross-entropy of the noisy strand (plus EOS) given the
   clean strand, with teacher forcing. With [scheduled_sampling] > 0,
   each step feeds the model's own sampled token as the next input with
   that probability instead of the target (Bengio et al.): the decoder
   learns to recover from its own mistakes, taming the exposure bias
   that otherwise makes free-running noise cascade toward the tail.
   Returns the scalar loss node. *)
let loss ?(scheduled_sampling = 0.0) ?sampling_rng t tape ~clean ~noisy =
  let open Autodiff in
  let annotations = encode t tape clean in
  let pre = Attention.precompute t.attn tape annotations in
  let state = ref (init_state t tape annotations) in
  let steps = Array.length noisy + 1 in
  let losses = ref [] in
  let prev_token = ref bos in
  for i = 0 to steps - 1 do
    let target = if i < Array.length noisy then noisy.(i) else eos in
    let context, _ = Attention.apply ~position:i t.attn tape pre ~state:!state in
    let x = concat tape (one_hot tape ~size:dec_vocab !prev_token) context in
    state := Gru.step t.dec tape ~h:!state ~x;
    let logits = logits_of t tape ~state:!state ~context in
    losses := cross_entropy tape logits ~target :: !losses;
    prev_token :=
      (match sampling_rng with
      | Some rng when scheduled_sampling > 0.0 && Dna.Rng.float rng < scheduled_sampling ->
          let probs = softmax_probs logits.data in
          let u = Dna.Rng.float rng in
          let rec pick j acc =
            if j >= out_classes - 1 then j
            else if acc +. probs.(j) >= u then j
            else pick (j + 1) (acc +. probs.(j))
          in
          let tok = pick 0 0.0 in
          if tok = eos then target else tok
      | _ -> target)
  done;
  let total = List.fold_left (fun acc l -> add tape acc l) (const tape [| 0.0 |]) !losses in
  map tape (fun x -> x /. float_of_int steps) (fun _ _ -> 1.0 /. float_of_int steps) total

(* One SGD step on a single pair; returns the per-token loss. *)
let train_pair ?scheduled_sampling ?sampling_rng t opt ~clean ~noisy =
  let tape = Autodiff.create_tape () in
  let l = loss ?scheduled_sampling ?sampling_rng t tape ~clean ~noisy in
  Autodiff.backward tape l;
  Params.clip_grads t.store ~max_norm:5.0;
  Adam.update opt;
  l.Autodiff.data.(0)

(* Per-token loss without updating; for validation. *)
let eval_pair t ~clean ~noisy =
  let tape = Autodiff.create_tape () in
  let l = loss t tape ~clean ~noisy in
  l.Autodiff.data.(0)

type sampling = Greedy | Stochastic of Dna.Rng.t

(* Generate a noisy strand for [clean]. Stochastic sampling draws from the
   predicted distribution at each position (this is how the simulator
   produces noise); Greedy takes the argmax (the most likely read).
   [temperature] sharpens (< 1) or flattens (> 1) the sampling
   distribution: an imperfectly converged model is systematically
   underconfident, and a temperature fitted on the validation split
   recalibrates its sampled error rate (see Trainer.calibrate). *)
let sample ?(max_factor = 1.6) ?(temperature = 1.0) t ~mode (clean : int array) : int array =
  let tape = Autodiff.create_tape () in
  let annotations = encode t tape clean in
  let pre = Attention.precompute t.attn tape annotations in
  let state = ref (init_state t tape annotations) in
  let max_len = int_of_float (max_factor *. float_of_int (Array.length clean)) + 8 in
  let out = ref [] in
  let prev_token = ref bos in
  let finished = ref false in
  let produced = ref 0 in
  while (not !finished) && !produced < max_len do
    let context, _ = Attention.apply ~position:!produced t.attn tape pre ~state:!state in
    let x = Autodiff.concat tape (one_hot tape ~size:dec_vocab !prev_token) context in
    state := Gru.step t.dec tape ~h:!state ~x;
    let logits = logits_of t tape ~state:!state ~context in
    let scaled =
      if temperature = 1.0 then logits.Autodiff.data
      else Array.map (fun l -> l /. temperature) logits.Autodiff.data
    in
    let probs = Autodiff.softmax_probs scaled in
    let token =
      match mode with
      | Greedy ->
          let best = ref 0 in
          Array.iteri (fun i p -> if p > probs.(!best) then best := i) probs;
          !best
      | Stochastic rng ->
          let u = Dna.Rng.float rng in
          let rec pick i acc =
            if i >= out_classes - 1 then i
            else if acc +. probs.(i) >= u then i
            else pick (i + 1) (acc +. probs.(i))
          in
          pick 0 0.0
    in
    if token = eos then finished := true
    else begin
      out := token :: !out;
      incr produced;
      prev_token := token
    end
  done;
  Array.of_list (List.rev !out)

let save t path =
  let flat = Params.to_flat t.store in
  let oc = open_out_bin path in
  output_value oc flat;
  close_out oc

let load t path =
  let ic = open_in_bin path in
  let flat : float array = input_value ic in
  close_in ic;
  Params.of_flat t.store flat
