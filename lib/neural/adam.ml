(** The Adam optimizer (Kingma & Ba) over a parameter store. *)

type t = {
  store : Params.t;
  lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  m : (string * float array) list;
  v : (string * float array) list;
  mutable step : int;
}

let create ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) store =
  let zeros p = Array.make (Array.length p.Params.data) 0.0 in
  {
    store;
    lr;
    beta1;
    beta2;
    eps;
    m = List.map (fun p -> (p.Params.name, zeros p)) (Params.in_order store);
    v = List.map (fun p -> (p.Params.name, zeros p)) (Params.in_order store);
    step = 0;
  }

let update t =
  t.step <- t.step + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step) in
  List.iter
    (fun p ->
      let m = List.assoc p.Params.name t.m in
      let v = List.assoc p.Params.name t.v in
      let data = p.Params.data and grad = p.Params.grad in
      for i = 0 to Array.length data - 1 do
        let g = grad.(i) in
        m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. g);
        v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. g *. g);
        let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
        data.(i) <- data.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps))
      done)
    (Params.in_order t.store);
  Params.zero_grads t.store
