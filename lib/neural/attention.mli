(** Additive (Bahdanau) attention: score_i = va . tanh(Wa h_i + Ua s). *)

type t

val create :
  Params.t -> Dna.Rng.t -> prefix:string -> annot_dim:int -> state_dim:int -> attn_dim:int -> t

type precomputed
(** The keys [Wa h_i], computed once per sequence. *)

val precompute : t -> Autodiff.tape -> Autodiff.v list -> precomputed

val location_weight : float
(** Slope of the fixed location bias. *)

val apply :
  ?position:int -> t -> Autodiff.tape -> precomputed -> state:Autodiff.v -> Autodiff.v * Autodiff.v
(** (context vector, attention weights) for the given decoder state.
    [position] adds a fixed monotonic location bias
    [-location_weight * |i - position|] to the scores: channel
    simulation is copy-like, and the prior frees training to model the
    emission statistics instead of rediscovering alignment. *)
