(** A Gated Recurrent Unit cell (Cho et al.). *)

type t

val create : Params.t -> Dna.Rng.t -> prefix:string -> input:int -> hidden:int -> t
(** Registers the cell's nine parameters under [prefix]. *)

val wrap : Autodiff.tape -> Params.param -> Autodiff.v
(** A tape leaf over a stored parameter. *)

val step : t -> Autodiff.tape -> h:Autodiff.v -> x:Autodiff.v -> Autodiff.v
(** One time step: new hidden state from state [h] and input [x]. *)

val zero_state : t -> Autodiff.tape -> Autodiff.v
