(** Attention-based encoder-decoder modeling Pr(noisy | clean): a
    bi-directional GRU encoder over the clean strand, a unidirectional
    GRU decoder with additive attention emitting the noisy strand
    (Figure 4 of the paper).

    Tokens: bases are 0..3; BOS = 4 on the decoder input side, EOS = 4
    among the output classes. *)

val n_bases : int
val bos : int
val eos : int
val dec_vocab : int
val out_classes : int

type t = {
  hidden : int;
  store : Params.t;
  enc_fw : Gru.t;
  enc_bw : Gru.t;
  attn : Attention.t;
  dec : Gru.t;
  w_init : Params.param;
  w_out : Params.param;
  b_out : Params.param;
}

val create : ?hidden:int -> Dna.Rng.t -> t
(** Default hidden size 32. *)

val loss :
  ?scheduled_sampling:float -> ?sampling_rng:Dna.Rng.t ->
  t -> Autodiff.tape -> clean:int array -> noisy:int array -> Autodiff.v
(** Average token cross-entropy (teacher forcing), as a scalar node.
    With [scheduled_sampling] > 0 and a [sampling_rng], each step feeds
    the model's own sampled token as the next input with that
    probability — training the decoder to recover from its own
    mistakes (exposure-bias mitigation). *)

val train_pair :
  ?scheduled_sampling:float -> ?sampling_rng:Dna.Rng.t ->
  t -> Adam.t -> clean:int array -> noisy:int array -> float
(** One optimizer step on a single pair; returns the per-token loss. *)

val eval_pair : t -> clean:int array -> noisy:int array -> float
(** Loss without updating; for validation. *)

type sampling =
  | Greedy  (** argmax at every position: the most likely read *)
  | Stochastic of Dna.Rng.t  (** draw from the predicted distribution: simulate noise *)

val sample : ?max_factor:float -> ?temperature:float -> t -> mode:sampling -> int array -> int array
(** Generate a noisy strand for the clean input, stopping at EOS or at
    [max_factor * length + 8] tokens. [temperature] (default 1.0)
    sharpens (< 1) or flattens (> 1) the sampling distribution;
    {!Simulator.Trainer} fits it on the validation split. *)

val save : t -> string -> unit
val load : t -> string -> unit
