(** Trace-driven replay channel: per-position error statistics fitted
    from an imported FASTQ (streamed via {!Dna.Fastq.fold_file}) and
    replayed as a {!Channel.t}. Phred qualities give the per-position
    error probability; the substitution/deletion/insertion split is a
    parameter since qualities do not distinguish error types. *)

type profile = {
  positions : float array;  (** per-position mean error probability *)
  mean_rate : float;  (** base-weighted mean of [positions] *)
  n_reads : int;  (** reads the fit consumed *)
  sub_frac : float;
  del_frac : float;
  ins_frac : float;
}

val default_splits : float * float * float
(** (sub, del, ins) = (0.55, 0.30, 0.15): nanopore-flavored. *)

val phred_to_p : int -> float
(** [10^(-q/10)], the error probability a Phred score encodes. *)

val fit : ?splits:float * float * float -> string -> (profile, string) result
(** Stream a FASTQ once and fit the per-position profile. [Error] on an
    unreadable file, no parseable records, or an all-empty quality
    track; raises [Invalid_argument] on malformed [splits]. *)

val fit_qualities : ?splits:float * float * float -> int array list -> (profile, string) result
(** The fit on already-decoded quality tracks (what [fit] folds into). *)

val transmit : profile -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t
val transmit_into : profile -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit
(** Draw-for-draw identical to [transmit] (the {!Channel.create}
    contract). *)

val create : profile -> Channel.t
(** Raises [Invalid_argument] on an empty profile. *)

val write_synthetic : ?reads:int -> ?len:int -> seed:int -> string -> unit
(** Write a deterministic stand-in trace (random bases, nanopore-shaped
    quality track) for CI sweeps and demos. *)
