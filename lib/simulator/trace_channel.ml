(** Trace-driven replay channel: error statistics fitted from real (or
    recorded) sequencer output.

    [fit] streams a FASTQ once (via {!Dna.Fastq.fold_file}, so traces of
    any size fit in constant memory) and estimates, for every read
    position, the per-base error probability implied by the Phred
    quality track: [p = 10^(-q/10)], averaged over the reads covering
    that position. The fitted profile is replayed as a channel: position
    [i] of a transmitted strand is hit with the trace's probability at
    [i] (clamped to the last fitted position for longer strands), and a
    hit becomes a substitution, deletion or insertion according to the
    [sub_frac]/[del_frac]/[ins_frac] split — FASTQ qualities do not
    distinguish error types, so the split is a parameter with
    nanopore-flavored defaults.

    This is the scenario engine's bridge to wetlab data the simulator
    survey says end-to-end toolkits lack: record a run once, replay its
    per-position error structure forever, deterministically. *)

type profile = {
  positions : float array;  (** per-position mean error probability *)
  mean_rate : float;  (** base-weighted mean of [positions] *)
  n_reads : int;  (** reads the fit consumed *)
  sub_frac : float;
  del_frac : float;
  ins_frac : float;
}

let default_splits = (0.55, 0.30, 0.15)

let phred_to_p q = 10.0 ** (-.float_of_int (max 0 q) /. 10.0)

let fit_qualities ?(splits = default_splits) (quals : int array list) =
  let sub_frac, del_frac, ins_frac = splits in
  if sub_frac < 0.0 || del_frac < 0.0 || ins_frac < 0.0 || sub_frac +. del_frac +. ins_frac > 1.0
  then invalid_arg "Trace_channel: splits must be nonnegative and sum to at most 1";
  let max_len = List.fold_left (fun a q -> max a (Array.length q)) 0 quals in
  if max_len = 0 then Error "trace fit: no positions (empty or missing quality tracks)"
  else begin
    let sums = Array.make max_len 0.0 and counts = Array.make max_len 0 in
    List.iter
      (fun q ->
        Array.iteri
          (fun i qi ->
            sums.(i) <- sums.(i) +. phred_to_p qi;
            counts.(i) <- counts.(i) + 1)
          q)
      quals;
    let positions =
      Array.mapi (fun i s -> if counts.(i) = 0 then 0.0 else s /. float_of_int counts.(i)) sums
    in
    let total_bases = Array.fold_left ( + ) 0 counts in
    let mean_rate =
      if total_bases = 0 then 0.0
      else Array.fold_left ( +. ) 0.0 sums /. float_of_int total_bases
    in
    Ok { positions; mean_rate; n_reads = List.length quals; sub_frac; del_frac; ins_frac }
  end

let fit ?splits path =
  match
    Dna.Fastq.fold_file path ~init:[] ~f:(fun acc r -> r.Dna.Fastq.qual :: acc)
  with
  | exception Sys_error msg -> Error ("trace fit: " ^ msg)
  | quals, _errors -> (
      match quals with
      | [] -> Error (Printf.sprintf "trace fit: no parseable records in %s" path)
      | quals -> fit_qualities ?splits quals)

(* Replay. Both transmit paths draw identically: one uniform per clean
   base; an insertion draws one extra base, a substitution one shift. *)

let rate_at profile ~i =
  let n = Array.length profile.positions in
  profile.positions.(if i < n then i else n - 1)

let transmit profile rng strand =
  let n = Dna.Strand.length strand in
  let buf = Buffer.create (n + 8) in
  for i = 0 to n - 1 do
    let code = Dna.Strand.unsafe_get_code strand i in
    let p = rate_at profile ~i in
    let u = Dna.Rng.float rng in
    if u < p *. profile.ins_frac then begin
      (* insertion before the current base; the base itself survives *)
      Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4);
      Buffer.add_char buf Dna.Strand.char_of_code.(code)
    end
    else if u < p *. (profile.ins_frac +. profile.del_frac) then () (* deletion *)
    else if u < p *. (profile.ins_frac +. profile.del_frac +. profile.sub_frac) then
      Buffer.add_char buf Dna.Strand.char_of_code.((code + 1 + Dna.Rng.int rng 3) land 3)
    else Buffer.add_char buf Dna.Strand.char_of_code.(code)
  done;
  Dna.Strand.of_string (Buffer.contents buf)

let transmit_into profile rng strand pool =
  let n = Dna.Strand.length strand in
  for i = 0 to n - 1 do
    let code = Dna.Strand.unsafe_get_code strand i in
    let p = rate_at profile ~i in
    let u = Dna.Rng.float rng in
    if u < p *. profile.ins_frac then begin
      Dna.Strand_pool.emit pool (Dna.Rng.int rng 4);
      Dna.Strand_pool.emit pool code
    end
    else if u < p *. (profile.ins_frac +. profile.del_frac) then ()
    else if u < p *. (profile.ins_frac +. profile.del_frac +. profile.sub_frac) then
      Dna.Strand_pool.emit pool ((code + 1 + Dna.Rng.int rng 3) land 3)
    else Dna.Strand_pool.emit pool code
  done

let create profile =
  if Array.length profile.positions = 0 then invalid_arg "Trace_channel: empty profile";
  Channel.create
    ~name:(Printf.sprintf "trace(%d reads)" profile.n_reads)
    ~transmit_into:(transmit_into profile) (transmit profile)

(* A deterministic stand-in trace for CI and demos: random bases with a
   nanopore-flavored quality track (clean center, noisy start from
   adapter effects, decaying 3' tail), written as a normal FASTQ so the
   fit path exercises exactly what a real recorded run would. *)
let write_synthetic ?(reads = 64) ?(len = 120) ~seed path =
  let rng = Dna.Rng.create seed in
  let q_at i =
    let x = float_of_int i /. float_of_int (max 1 (len - 1)) in
    let base = 24.0 -. (12.0 *. x *. x) -. (6.0 *. exp (-.float_of_int i /. 8.0)) in
    max 5 (min 40 (int_of_float base))
  in
  let records =
    List.init reads (fun k ->
        let seq = Dna.Strand.random rng len in
        let qual = Array.init len (fun i -> max 2 (q_at i + Dna.Rng.int rng 5 - 2)) in
        { Dna.Fastq.id = Printf.sprintf "trace_%d" k; seq; qual })
  in
  Dna.Fastq.write_file path records
