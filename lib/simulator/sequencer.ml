(** Sequencing-coverage model.

    Turns a pool of encoded strands into a shuffled bag of noisy reads by
    replicating each strand a variable number of times through a channel
    (Section III: "we variably replicate the strands and introduce
    errors"). Coverage can be fixed or Poisson-distributed around a mean,
    with optional molecule dropout modeling strands lost to synthesis or
    PCR skew. *)

type coverage =
  | Fixed of int  (** exactly this many reads per strand *)
  | Poisson of float  (** mean reads per strand *)

type read = {
  seq : Dna.Strand.t;
  origin : int;  (** index of the source strand; ground truth for evaluation *)
}

type params = {
  coverage : coverage;
  dropout : float;  (** probability a strand yields no reads at all *)
  p_reverse : float;  (** probability a read comes off in 3'->5' orientation *)
}

let default_params ~coverage = { coverage; dropout = 0.0; p_reverse = 0.0 }

let reads_for params rng =
  match params.coverage with
  | Fixed n -> n
  | Poisson mean -> Dna.Rng.poisson rng mean

(* Produce all reads for [strands], shuffled (a test tube has no order). *)
let sequence ?(shuffle = true) params channel rng (strands : Dna.Strand.t array) : read array =
  let out = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun origin strand ->
      if Dna.Rng.float rng >= params.dropout then begin
        let n = reads_for params rng in
        for _ = 1 to n do
          let seq = Channel.transmit channel rng strand in
          let seq =
            if params.p_reverse > 0.0 && Dna.Rng.float rng < params.p_reverse then
              Dna.Strand.reverse_complement seq
            else seq
          in
          if Dna.Strand.length seq > 0 then begin
            out := { seq; origin } :: !out;
            incr count
          end
        done
      end)
    strands;
  let arr = Array.of_list !out in
  if shuffle then Dna.Rng.shuffle_in_place rng arr;
  arr

(* Group reads by origin: the ideal clusters, used to evaluate clustering
   and to isolate the reconstruction module. *)
let ideal_clusters ~n_strands (reads : read array) : Dna.Strand.t list array =
  let clusters = Array.make n_strands [] in
  Array.iter (fun r -> clusters.(r.origin) <- r.seq :: clusters.(r.origin)) reads;
  clusters
