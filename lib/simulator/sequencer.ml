(** Sequencing-coverage model.

    Turns a pool of encoded strands into a shuffled bag of noisy reads by
    replicating each strand a variable number of times through a channel
    (Section III: "we variably replicate the strands and introduce
    errors"). Coverage can be fixed or Poisson-distributed around a mean,
    with optional molecule dropout modeling strands lost to synthesis or
    PCR skew. *)

type coverage =
  | Fixed of int  (** exactly this many reads per strand *)
  | Poisson of float  (** mean reads per strand *)

type read = {
  seq : Dna.Strand.t;
  origin : int;  (** index of the source strand; ground truth for evaluation *)
}

type params = {
  coverage : coverage;
  dropout : float;  (** probability a strand yields no reads at all *)
  p_reverse : float;  (** probability a read comes off in 3'->5' orientation *)
}

let default_params ~coverage = { coverage; dropout = 0.0; p_reverse = 0.0 }

let reads_for params rng =
  match params.coverage with
  | Fixed n -> n
  | Poisson mean -> Dna.Rng.poisson rng mean

(* All reads one strand yields through the channel, in synthesis order. *)
let reads_of_strand params channel rng origin strand =
  if Dna.Rng.float rng < params.dropout then []
  else begin
    let acc = ref [] in
    let n = reads_for params rng in
    for _ = 1 to n do
      let seq = Channel.transmit channel rng strand in
      let seq =
        if params.p_reverse > 0.0 && Dna.Rng.float rng < params.p_reverse then
          Dna.Strand.reverse_complement seq
        else seq
      in
      if Dna.Strand.length seq > 0 then acc := { seq; origin } :: !acc
    done;
    List.rev !acc
  end

(* Produce all reads for [strands], shuffled (a test tube has no order).

   With [domains = 1] (the default) every draw comes off [rng] serially,
   bit-identical to the toolkit's historical behavior. With
   [domains > 1] each strand first receives its own stream split off
   [rng] in strand order, then strands are synthesized in parallel: the
   read set is then identical for every worker count (though it differs
   from the serial draw order), and the channel must be safe to call
   from multiple domains. *)
let sequence ?(shuffle = true) ?(domains = Dna.Par.default_domains ()) params channel rng
    (strands : Dna.Strand.t array) : read array =
  let arr =
    if domains <= 1 then begin
      (* Prepend-accumulate, as the serial path always has, so a given
         seed still yields the exact historical read array. *)
      let out = ref [] in
      Array.iteri
        (fun origin strand ->
          List.iter (fun r -> out := r :: !out) (reads_of_strand params channel rng origin strand))
        strands;
      Array.of_list !out
    end
    else begin
      let per_strand =
        Dna.Par.map_array_rng ~label:"simulate.synthesis" ~domains ~rng
          (fun r (origin, strand) -> reads_of_strand params channel r origin strand)
          (Array.mapi (fun i s -> (i, s)) strands)
      in
      Array.of_list (List.concat (Array.to_list per_strand))
    end
  in
  if shuffle then Dna.Rng.shuffle_in_place rng arr;
  arr

(* Pooled sequencing: the whole read bag lives in one arena — three flat
   arrays plus one int of origin per read — instead of one boxed strand
   and read record each. Draws mirror [sequence ~domains:1] exactly
   (dropout float, coverage draw, channel stream, orientation float,
   then the same shuffle over the same count), so a given seed yields
   the identical read sequence with identical origins. *)
let sequence_pool ?(shuffle = true) params channel rng (strands : Dna.Strand.t array)
    ~(pool : Dna.Strand_pool.t) : int array =
  let base = Dna.Strand_pool.length pool in
  let origins = ref (Array.make 64 0) in
  let count = ref 0 in
  let push o =
    if !count >= Array.length !origins then begin
      let a = Array.make (2 * Array.length !origins) 0 in
      Array.blit !origins 0 a 0 !count;
      origins := a
    end;
    !origins.(!count) <- o;
    incr count
  in
  Array.iteri
    (fun origin strand ->
      if Dna.Rng.float rng < params.dropout then ()
      else begin
        let n = reads_for params rng in
        for _ = 1 to n do
          Channel.transmit_into channel rng strand pool;
          if params.p_reverse > 0.0 && Dna.Rng.float rng < params.p_reverse then
            Dna.Strand_pool.revcomp_open pool;
          if Dna.Strand_pool.open_length pool > 0 then begin
            ignore (Dna.Strand_pool.commit pool);
            push origin
          end
          else Dna.Strand_pool.rollback pool
        done
      end)
    strands;
  let n = !count in
  (* The serial boxed path prepend-accumulates (reverse generation
     order) and then shuffles; replay that as an index permutation. *)
  let perm = Array.init n (fun k -> n - 1 - k) in
  if shuffle then Dna.Rng.shuffle_in_place rng perm;
  Dna.Strand_pool.permute pool ~from:base perm;
  Array.init n (fun i -> !origins.(perm.(i)))

(* Per-strand depth for sequencing a primer-selected sub-pool of a
   shard: one run spends its read budget on the amplified selection, so
   depth rises as the selection narrows. Square-root scaling keeps the
   growth gentle and the result is clamped to [base, 4 * base] — a
   narrow selection reads deeper, never unboundedly so. *)
let shard_depth ~base ~n_selected ~n_shard =
  if n_selected <= 0 || base <= 0 then 0
  else begin
    let ratio = float_of_int (max n_shard n_selected) /. float_of_int n_selected in
    let scaled = int_of_float (float_of_int base *. sqrt ratio) in
    min (4 * base) (max base scaled)
  end

(* Group reads by origin: the ideal clusters, used to evaluate clustering
   and to isolate the reconstruction module. *)
let ideal_clusters ~n_strands (reads : read array) : Dna.Strand.t list array =
  let clusters = Array.make n_strands [] in
  Array.iter (fun r -> clusters.(r.origin) <- r.seq :: clusters.(r.origin)) reads;
  clusters
