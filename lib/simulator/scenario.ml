(** Declarative scenario engine: composable channel stacks.

    A scenario names an ordered stack of stages — pool-level physics
    (archive aging, PCR amplification bias) followed by read-level
    channels (iid, wetlab, bursty nanopore, trace replay) — plus
    recovered-fraction floors keyed by fault-plan name. Scenarios are
    plain data: they serialize to JSON ({!to_json}/{!of_json}), so a
    sweep configuration can live in a file, travel with a benchmark
    result, and replay bit-identically from (scenario, seed) alone.

    [build] compiles the stack into the two hooks the pipeline exposes:
    one {!Channel.t} (read stages composed in order; every intermediate
    runs boxed and the last one writes through [transmit_into], so
    pooled and boxed simulation stay draw-for-draw identical) and one
    pool [prepare] function (pool stages folded in order).

    Floors reference fault scenarios by {e name} only — the simulator
    layer cannot see [Faults]; the resolution happens one layer up in
    [Scenario_run]. *)

type channel_spec =
  | Noiseless
  | Iid of float  (** total error rate, split evenly across ins/del/sub *)
  | Wetlab of float  (** base_error scale on {!Wetlab_channel.default_params} *)
  | Burst of Burst_channel.params
  | Trace of string  (** FASTQ path the profile is fitted from *)

type stage =
  | Age of Aging_channel.params
  | Amplify of { pcr : Pcr.params; depth_factor : float }
  | Read of channel_spec

type t = {
  name : string;
  description : string;
  stages : stage list;
  floors : (string * float) list;
      (** fault-plan name -> recovered-fraction floor; names are
          resolved against [Faults.scenarios] by [Scenario_run] *)
}

(* ------------------------------------------------------------------ *)
(* Compilation *)

type built = {
  channel : Channel.t;
  prepare : (Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array) option;
  configured_error_rate : float;
      (** analytic per-base error rate of the read-level stack *)
}

let spec_channel = function
  | Noiseless -> Ok Channel.noiseless
  | Iid rate -> Ok (Iid_channel.create_rate ~error_rate:rate)
  | Wetlab base_error ->
      Ok (Wetlab_channel.create ~params:{ Wetlab_channel.default_params with base_error } ())
  | Burst params -> Ok (Burst_channel.create ~params ())
  | Trace path -> (
      match Trace_channel.fit path with
      | Ok profile -> Ok (Trace_channel.create profile)
      | Error e -> Error e)

let spec_rate = function
  | Noiseless -> 0.0
  | Iid rate -> rate
  | Wetlab base_error -> base_error
  | Burst params -> Burst_channel.mean_error_rate params
  | Trace _ -> 0.0 (* replaced by the fitted mean_rate in [build] *)

(* Chain read channels: intermediates run boxed (an indel channel's
   output must be a whole strand before the next channel sees it), only
   the last stage writes into the pool. Both paths walk the same chain
   with the same draws, so the draw-for-draw contract is preserved by
   construction. *)
let chain = function
  | [] -> Channel.noiseless
  | [ c ] -> c
  | chans ->
      let name = String.concat "+" (List.map Channel.name chans) in
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | c :: rest -> split_last (c :: acc) rest
      in
      let front, last = split_last [] chans in
      let through rng strand = List.fold_left (fun s c -> Channel.transmit c rng s) strand front in
      Channel.create ~name
        ~transmit_into:(fun rng strand pool ->
          Channel.transmit_into last rng (through rng strand) pool)
        (fun rng strand -> Channel.transmit last rng (through rng strand))

let build t =
  let rec collect specs pools rate = function
    | [] -> Ok (List.rev specs, List.rev pools, rate)
    | Age params :: rest ->
        let f rng strands = Aging_channel.age_pool ~params rng strands in
        collect specs (f :: pools) rate rest
    | Amplify { pcr; depth_factor } :: rest ->
        if depth_factor <= 0.0 then Error "scenario: depth_factor must be positive"
        else
          let f rng strands = Pcr.amplify_sample ~params:pcr ~depth_factor rng strands in
          collect specs (f :: pools) rate rest
    | Read spec :: rest -> (
        match spec_channel spec with
        | Error e -> Error e
        | Ok c ->
            let r =
              match spec with
              | Trace path -> (
                  (* fit again is cheap relative to a sweep and keeps
                     spec_channel's result opaque *)
                  match Trace_channel.fit path with
                  | Ok p -> p.Trace_channel.mean_rate
                  | Error _ -> 0.0)
              | s -> spec_rate s
            in
            collect (c :: specs) pools (rate +. r) rest)
  in
  match collect [] [] 0.0 t.stages with
  | Error e -> Error e
  | Ok (chans, pools, configured_error_rate) ->
      let prepare =
        match pools with
        | [] -> None
        | pools -> Some (fun rng strands -> List.fold_left (fun s f -> f rng s) strands pools)
      in
      Ok { channel = chain chans; prepare; configured_error_rate }

let spec_label = function
  | Noiseless -> "noiseless"
  | Iid rate -> Printf.sprintf "iid %.1f%%" (100.0 *. rate)
  | Wetlab base_error -> Printf.sprintf "wetlab %.1f%%" (100.0 *. base_error)
  | Burst p -> Printf.sprintf "burst %.1f%%" (100.0 *. Burst_channel.mean_error_rate p)
  | Trace path -> if path = "" then "trace <unset>" else Printf.sprintf "trace %s" path

let stage_label = function
  | Age p -> Printf.sprintf "age %.0fy" p.Aging_channel.years
  | Amplify { pcr; depth_factor } ->
      Printf.sprintf "pcr x%d sd%.2f depth%.1f" pcr.Pcr.cycles pcr.bias_sd depth_factor
  | Read spec -> spec_label spec

let summary t = String.concat " -> " (List.map stage_label t.stages)

let has_trace t =
  List.exists (function Read (Trace _) -> true | _ -> false) t.stages

let with_trace_path t path =
  {
    t with
    stages = List.map (function Read (Trace _) -> Read (Trace path) | s -> s) t.stages;
  }

(* ------------------------------------------------------------------ *)
(* JSON *)

module J = Store_json

let spec_to_json = function
  | Noiseless -> [ ("channel", J.String "noiseless") ]
  | Iid rate -> [ ("channel", J.String "iid"); ("rate", J.Float rate) ]
  | Wetlab base_error -> [ ("channel", J.String "wetlab"); ("base_error", J.Float base_error) ]
  | Burst p ->
      [
        ("channel", J.String "burst");
        ("p_enter", J.Float p.Burst_channel.p_enter);
        ("p_exit", J.Float p.p_exit);
        ("p_good", J.Float p.p_good);
        ("p_bad", J.Float p.p_bad);
        ("bad_del", J.Float p.bad_del);
        ("bad_ins", J.Float p.bad_ins);
      ]
  | Trace path -> [ ("channel", J.String "trace"); ("path", J.String path) ]

let stage_to_json = function
  | Age p ->
      J.Obj
        [
          ("stage", J.String "age");
          ("years", J.Float p.Aging_channel.years);
          ("thermal_per_day", J.Float p.thermal_per_day);
          ("hydrolytic_per_day", J.Float p.hydrolytic_per_day);
          ("oxidative_per_day", J.Float p.oxidative_per_day);
          ("per_base_scale", J.Float p.per_base_scale);
          ("sub_fraction", J.Float p.sub_fraction);
          ("end_bias", J.Float p.end_bias);
        ]
  | Amplify { pcr; depth_factor } ->
      J.Obj
        [
          ("stage", J.String "amplify");
          ("cycles", J.Int pcr.Pcr.cycles);
          ("efficiency", J.Float pcr.efficiency);
          ("p_sub", J.Float pcr.p_sub);
          ("bias_sd", J.Float pcr.bias_sd);
          ("depth_factor", J.Float depth_factor);
        ]
  | Read spec -> J.Obj (("stage", J.String "read") :: spec_to_json spec)

let to_json t =
  J.Obj
    [
      ("name", J.String t.name);
      ("description", J.String t.description);
      ("stages", J.List (List.map stage_to_json t.stages));
      ( "floors",
        J.List
          (List.map
             (fun (fault, min_recovered) ->
               J.Obj [ ("fault", J.String fault); ("min_recovered", J.Float min_recovered) ])
             t.floors) );
    ]

let to_string t = J.to_string (to_json t)

let ( let* ) = Result.bind

let spec_of_json j =
  let* kind = J.string_field j "channel" in
  match kind with
  | "noiseless" -> Ok Noiseless
  | "iid" ->
      let* rate = J.float_field j "rate" in
      Ok (Iid rate)
  | "wetlab" ->
      let* base_error = J.float_field j "base_error" in
      Ok (Wetlab base_error)
  | "burst" ->
      let* p_enter = J.float_field j "p_enter" in
      let* p_exit = J.float_field j "p_exit" in
      let* p_good = J.float_field j "p_good" in
      let* p_bad = J.float_field j "p_bad" in
      let* bad_del = J.float_field j "bad_del" in
      let* bad_ins = J.float_field j "bad_ins" in
      Ok (Burst { Burst_channel.p_enter; p_exit; p_good; p_bad; bad_del; bad_ins })
  | "trace" ->
      let* path = J.string_field j "path" in
      Ok (Trace path)
  | other -> Error (Printf.sprintf "scenario: unknown channel %S" other)

let stage_of_json j =
  let* kind = J.string_field j "stage" in
  match kind with
  | "age" ->
      let* years = J.float_field j "years" in
      let* thermal_per_day = J.float_field j "thermal_per_day" in
      let* hydrolytic_per_day = J.float_field j "hydrolytic_per_day" in
      let* oxidative_per_day = J.float_field j "oxidative_per_day" in
      let* per_base_scale = J.float_field j "per_base_scale" in
      let* sub_fraction = J.float_field j "sub_fraction" in
      let* end_bias = J.float_field j "end_bias" in
      Ok
        (Age
           {
             Aging_channel.years;
             thermal_per_day;
             hydrolytic_per_day;
             oxidative_per_day;
             per_base_scale;
             sub_fraction;
             end_bias;
           })
  | "amplify" ->
      let* cycles = J.int_field j "cycles" in
      let* efficiency = J.float_field j "efficiency" in
      let* p_sub = J.float_field j "p_sub" in
      let* bias_sd = J.float_field j "bias_sd" in
      let* depth_factor = J.float_field j "depth_factor" in
      Ok (Amplify { pcr = { Pcr.cycles; efficiency; p_sub; bias_sd }; depth_factor })
  | "read" ->
      let* spec = spec_of_json j in
      Ok (Read spec)
  | other -> Error (Printf.sprintf "scenario: unknown stage %S" other)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json j =
  let* name = J.string_field j "name" in
  let* description = J.string_field j "description" in
  let* stage_list = J.list_field j "stages" in
  let* stages = map_result stage_of_json stage_list in
  let* floor_list = J.list_field j "floors" in
  let* floors =
    map_result
      (fun fj ->
        let* fault = J.string_field fj "fault" in
        let* min_recovered = J.float_field fj "min_recovered" in
        Ok (fault, min_recovered))
      floor_list
  in
  if name = "" then Error "scenario: empty name"
  else Ok { name; description; stages; floors }

let of_string s =
  let* j = J.of_string s in
  of_json j

(* ------------------------------------------------------------------ *)
(* Builtin registry *)

let baseline_iid =
  {
    name = "baseline-iid";
    description = "control: the pipeline's default 3% iid channel, no pool physics";
    stages = [ Read (Iid 0.03) ];
    floors = [ ("clean", 1.0); ("dropout-10", 0.9); ("corruption-2", 0.9) ];
  }

let aging_5y =
  {
    name = "aging-5y";
    description =
      "5 simulated years of cold-storage decay (dropout + position-biased damage), then a 3% \
       iid sequencer";
    stages =
      [ Age { Aging_channel.default_params with years = 5.0 }; Read (Iid 0.03) ];
    floors = [ ("clean", 0.7); ("dropout-10", 0.2) ];
  }

let pcr_bias =
  {
    name = "pcr-bias";
    description =
      "14 PCR cycles with log-normal per-molecule amplification bias, sequencing the resampled \
       pool through a 3% iid channel";
    stages =
      [
        Amplify
          { pcr = { Pcr.default_params with cycles = 14; bias_sd = 0.12 }; depth_factor = 5.0 };
        Read (Iid 0.03);
      ];
    floors = [ ("clean", 0.95); ("dropout-10", 0.35) ];
  }

let nanopore_burst =
  {
    name = "nanopore-burst";
    description = "Gilbert-Elliott bursty indel channel at nanopore-like rates";
    stages = [ Read (Burst Burst_channel.default_params) ];
    floors = [ ("clean", 0.95); ("corruption-2", 0.9) ];
  }

let archival_decade =
  {
    name = "archival-decade";
    description =
      "the full archival stack: 10 years of decay, then biased PCR recovery amplification, \
       then bursty nanopore readout";
    stages =
      [
        Age { Aging_channel.default_params with years = 10.0 };
        Amplify
          { pcr = { Pcr.default_params with cycles = 12; bias_sd = 0.15 }; depth_factor = 5.0 };
        Read (Burst Burst_channel.default_params);
      ];
    floors = [ ("clean", 0.1) ];
  }

let trace_replay =
  {
    name = "trace-replay";
    description =
      "replay of per-position error statistics fitted from a FASTQ trace (path injected at run \
       time; a deterministic synthetic trace when none is given)";
    stages = [ Read (Trace "") ];
    floors = [ ("clean", 0.95) ];
  }

let builtins =
  [ baseline_iid; aging_5y; pcr_bias; nanopore_burst; archival_decade; trace_replay ]

let find name = List.find_opt (fun t -> t.name = name) builtins
