(** A SOLQC-style probabilistic channel (Sabary et al.): error
    probabilities conditioned on the nucleotide, with pre-insertions
    (an insertion before the base) but no post-insertions. *)

type base_params = {
  p_del : float;
  p_pre_ins : float;
  ins_dist : float array;  (** distribution of the inserted base *)
  sub_dist : float array;  (** substitution distribution; own base = no-op mass *)
}

type params = base_params array
(** Indexed by base code 0..3. *)

val default_params : error_rate:float -> params
(** Shaped like published Illumina nucleotide biases: C/G slightly more
    error-prone, transitions favored. *)

val create : params -> Channel.t
val create_rate : error_rate:float -> Channel.t
