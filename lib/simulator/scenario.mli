(** Declarative scenario engine: composable channel stacks with fault
    floors, serializable to JSON, replayable bit-identically from
    (scenario, seed).

    A scenario stacks pool-level physics ({!stage.Age} decay,
    {!stage.Amplify} PCR bias) with read-level channels ({!channel_spec})
    in declaration order. {!build} compiles the stack into the pipeline's
    two hooks: a composed {!Channel.t} and an optional pool [prepare]
    function. Floors name fault plans by string — resolved one layer up,
    in [Scenario_run], because this layer cannot see [Faults]. *)

type channel_spec =
  | Noiseless
  | Iid of float  (** total error rate, split evenly across ins/del/sub *)
  | Wetlab of float  (** base_error scale on {!Wetlab_channel.default_params} *)
  | Burst of Burst_channel.params
  | Trace of string  (** FASTQ path the profile is fitted from *)

type stage =
  | Age of Aging_channel.params  (** pool: dropout + damage *)
  | Amplify of { pcr : Pcr.params; depth_factor : float }
      (** pool: amplify, then draw [depth_factor * n] molecules back *)
  | Read of channel_spec  (** per-read channel, composed in order *)

type t = {
  name : string;
  description : string;
  stages : stage list;
  floors : (string * float) list;
      (** fault-plan name -> recovered-fraction floor *)
}

type built = {
  channel : Channel.t;
      (** read stages chained in order; intermediates run boxed, the
          last stage writes through [transmit_into], so pooled and boxed
          runs stay draw-for-draw identical *)
  prepare : (Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array) option;
      (** pool stages folded in order; [None] when there are none *)
  configured_error_rate : float;
      (** analytic per-base rate of the read-level stack (iid rate,
          burst stationary rate, wetlab base error, fitted trace mean) *)
}

val build : t -> (built, string) result
(** [Error] on an unreadable trace path or invalid stage parameters. *)

val stage_label : stage -> string
(** One compact human label, e.g. ["age 10y"], ["pcr x12 sd0.25 depth1.0"]. *)

val summary : t -> string
(** The stage labels joined with [" -> "]. *)

val has_trace : t -> bool
val with_trace_path : t -> string -> t
(** Point every [Read (Trace _)] stage at [path]. *)

(** {2 JSON} — the interchange format for sweep configs and benchmark
    artifacts. [of_string (to_string t) = Ok t]. *)

val to_json : t -> Store_json.t
val of_json : Store_json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

(** {2 Builtin registry} *)

val builtins : t list
(** baseline-iid, aging-5y, pcr-bias, nanopore-burst, archival-decade
    (the full aging + PCR-bias + burst stack) and trace-replay. *)

val find : string -> t option
