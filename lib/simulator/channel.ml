(** The wetlab-channel abstraction.

    A channel turns one clean (synthesized) strand into one noisy read,
    modeling the composite effect of synthesis, storage, handling and
    sequencing (Section V). Channels are plain records so that users can
    swap in their own implementation of the simulation module. *)

type t = {
  name : string;
  transmit : Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t;
  transmit_into : (Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit) option;
      (* Allocation-free variant: emit the noisy read as the pool's open
         read (left uncommitted so the caller can reorient or truncate).
         Must consume rng draws identically to [transmit]. [None] falls
         back to boxed transmit + re-emit. *)
}

let create ?transmit_into ~name transmit = { name; transmit; transmit_into }
let name t = t.name
let transmit t rng strand = t.transmit rng strand

let transmit_into t rng strand pool =
  match t.transmit_into with
  | Some f -> f rng strand pool
  | None ->
      (* Generic bridge for channels without a native pooled path:
         identical rng stream, one transient boxed read. *)
      let read = t.transmit rng strand in
      for i = 0 to Dna.Strand.length read - 1 do
        Dna.Strand_pool.emit pool (Dna.Strand.unsafe_get_code read i)
      done

(* The identity channel: a perfect wetlab. Useful for tests and for
   isolating downstream modules. *)
let noiseless =
  create ~name:"noiseless"
    ~transmit_into:(fun _ s pool ->
      for i = 0 to Dna.Strand.length s - 1 do
        Dna.Strand_pool.emit pool (Dna.Strand.unsafe_get_code s i)
      done)
    (fun _ s -> s)

(* Per-position error-rate estimate of a channel, measured by aligning
   reads against their source. Returns, for each clean-strand index, the
   fraction of transmissions in which that base was not matched
   exactly. *)
let measure_error_profile t rng ~strand_len ~trials =
  let errors = Array.make strand_len 0 in
  for _ = 1 to trials do
    let clean = Dna.Strand.random rng strand_len in
    let noisy = transmit t rng clean in
    let al = Dna.Alignment.align clean noisy in
    let i = ref 0 in
    List.iter
      (fun op ->
        match op with
        | Dna.Alignment.Match _ -> incr i
        | Dna.Alignment.Substitute _ | Dna.Alignment.Delete _ ->
            errors.(!i) <- errors.(!i) + 1;
            incr i
        | Dna.Alignment.Insert _ -> ())
      al.Dna.Alignment.script
  done;
  Array.map (fun e -> float_of_int e /. float_of_int trials) errors
