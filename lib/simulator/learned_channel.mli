(** A data-driven channel estimated from paired (clean, noisy) reads:
    per-position insertion/deletion-burst/substitution rates, a global
    substitution matrix, a deletion run-length histogram and an inserted
    base distribution — fitted from Needleman-Wunsch alignments of the
    pairs, then replayed generatively. *)

type model

val train : (Dna.Strand.t * Dna.Strand.t) list -> model
(** Raises [Invalid_argument] on an empty dataset or inconsistent clean
    strand lengths. *)

val create : model -> Channel.t
