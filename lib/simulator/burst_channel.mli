(** Nanopore-style bursty indel channel: a 2-state Gilbert-Elliott
    model. The good state miscalls rarely; the bad state persists
    geometrically (mean burst length [1 / p_exit]) and emits
    indel-dominated error runs, so indels cluster instead of arriving
    i.i.d. *)

type params = {
  p_enter : float;  (** good -> bad transition probability per base *)
  p_exit : float;  (** bad -> good transition probability per base *)
  p_good : float;  (** error probability per base in the good state (substitutions) *)
  p_bad : float;  (** error probability per base in the bad state *)
  bad_del : float;  (** fraction of bad-state errors that delete *)
  bad_ins : float;  (** fraction of bad-state errors that insert; the rest substitute *)
}

val default_params : params
(** Mean burst length 4nt, ~7% of bases inside a burst, long-run error
    rate about 3.5%. *)

val stationary_bad : params -> float
(** Long-run fraction of bases emitted from the bad state. *)

val mean_error_rate : params -> float
(** Long-run per-base error rate implied by the stationary state mix —
    the configured rate a scenario report compares the realized rate
    against. *)

val transmit : params -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t
val transmit_into : params -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit
(** Draw-for-draw identical to [transmit] (the {!Channel.create}
    contract). *)

val create : ?params:params -> unit -> Channel.t
