(** The baseline simulator of Rashtchian et al. [31] (Section V-A).

    At every index of the input strand an insertion, deletion or
    substitution is introduced with user-specified probabilities
    [p_ins], [p_del], [p_sub]; every index of every strand is trialed
    independently with the same probabilities. The paper implements this
    model as its naive baseline and shows it underestimates the
    difficulty of real wetlab data. *)

type params = { p_ins : float; p_del : float; p_sub : float }

let default_params ~error_rate =
  (* Split a total per-base error rate evenly across the three types,
     the convention used in the paper's Table II sweeps. *)
  let p = error_rate /. 3.0 in
  { p_ins = p; p_del = p; p_sub = p }

let validate { p_ins; p_del; p_sub } =
  if p_ins < 0.0 || p_del < 0.0 || p_sub < 0.0 || p_ins +. p_del +. p_sub > 1.0 then
    invalid_arg "Iid_channel: probabilities must be nonnegative and sum to at most 1"

let transmit params rng strand =
  validate params;
  let buf = Buffer.create (Dna.Strand.length strand + 8) in
  let n = Dna.Strand.length strand in
  for i = 0 to n - 1 do
    let base = Dna.Strand.get strand i in
    let u = Dna.Rng.float rng in
    if u < params.p_ins then begin
      (* Insertion before the current base; the base itself survives. *)
      Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Nucleotide.random rng));
      Buffer.add_char buf (Dna.Nucleotide.to_char base)
    end
    else if u < params.p_ins +. params.p_del then () (* deletion *)
    else if u < params.p_ins +. params.p_del +. params.p_sub then
      Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Nucleotide.random_other rng base))
    else Buffer.add_char buf (Dna.Nucleotide.to_char base)
  done;
  Dna.Strand.of_string (Buffer.contents buf)

(* Pooled variant: same per-base rng draws as [transmit], but codes are
   emitted straight into the arena — no Buffer, no string, no boxed
   strand per read. *)
let transmit_into params rng strand pool =
  validate params;
  let n = Dna.Strand.length strand in
  for i = 0 to n - 1 do
    let code = Dna.Strand.unsafe_get_code strand i in
    let u = Dna.Rng.float rng in
    if u < params.p_ins then begin
      (* Insertion before the current base; the base itself survives.
         [Nucleotide.random] is one uniform draw over the 4 codes. *)
      Dna.Strand_pool.emit pool (Dna.Rng.int rng 4);
      Dna.Strand_pool.emit pool code
    end
    else if u < params.p_ins +. params.p_del then () (* deletion *)
    else if u < params.p_ins +. params.p_del +. params.p_sub then
      (* [Nucleotide.random_other]'s draw: shift 1..3 from the base. *)
      Dna.Strand_pool.emit pool ((code + 1 + Dna.Rng.int rng 3) land 3)
    else Dna.Strand_pool.emit pool code
  done

let create params =
  validate params;
  Channel.create ~name:"rashtchian-iid" ~transmit_into:(transmit_into params)
    (transmit params)

let create_rate ~error_rate = create (default_params ~error_rate)
