(** A data-driven channel estimated from paired (clean, noisy) reads.

    This is the count-based counterpart of the RNN simulator: every pair
    is aligned with Needleman-Wunsch and the edit script is folded into

    - per-position insertion rates and deletion-burst *start* rates,
    - per-position substitution rates with a global base-to-base matrix,
    - a histogram of deletion-run lengths (burstiness),
    - a distribution over inserted bases.

    Sampling replays those statistics generatively. Unlike the i.i.d. and
    SOLQC models, this captures the position dependence and error bursts
    that Section V-A identifies as the gap between naive simulation and
    wetlab data. All strands of one dataset share a nominal length, so
    positions index directly into the profile arrays. *)

type model = {
  len : int;  (** nominal clean-strand length *)
  n_pairs : int;
  p_ins : float array;  (** per position: insertion before this base *)
  p_del_start : float array;  (** per position: a deletion run starts here *)
  p_sub : float array;  (** per position: substitution of this base *)
  sub_matrix : float array array;  (** [original].(read) distribution *)
  ins_dist : float array;  (** distribution of inserted bases *)
  run_length : float array;  (** deletion-run length distribution, index 0 = length 1 *)
  p_tail_ins : float;  (** insertion appended after the final base *)
}

let max_run = 16

let train (pairs : (Dna.Strand.t * Dna.Strand.t) list) : model =
  let len =
    match pairs with
    | [] -> invalid_arg "Learned_channel.train: empty dataset"
    | (clean, _) :: _ -> Dna.Strand.length clean
  in
  let n_pairs = List.length pairs in
  let ins = Array.make len 0 and del_start = Array.make len 0 and sub = Array.make len 0 in
  let subm = Array.make_matrix 4 4 0 in
  let insd = Array.make 4 0 in
  let runs = Array.make max_run 0 in
  let tail_ins = ref 0 in
  List.iter
    (fun (clean, noisy) ->
      if Dna.Strand.length clean <> len then
        invalid_arg "Learned_channel.train: inconsistent strand lengths";
      let al = Dna.Alignment.align clean noisy in
      let pos = ref 0 in
      let run = ref 0 in
      let flush_run () =
        if !run > 0 then begin
          let start = !pos - !run in
          if start < len then del_start.(start) <- del_start.(start) + 1;
          let bucket = min (max_run - 1) (!run - 1) in
          runs.(bucket) <- runs.(bucket) + 1;
          run := 0
        end
      in
      List.iter
        (fun op ->
          match op with
          | Dna.Alignment.Match _ ->
              flush_run ();
              incr pos
          | Dna.Alignment.Substitute (a, b) ->
              flush_run ();
              if !pos < len then sub.(!pos) <- sub.(!pos) + 1;
              subm.(Dna.Nucleotide.to_code a).(Dna.Nucleotide.to_code b) <-
                subm.(Dna.Nucleotide.to_code a).(Dna.Nucleotide.to_code b) + 1;
              incr pos
          | Dna.Alignment.Delete _ ->
              run := !run + 1;
              incr pos
          | Dna.Alignment.Insert b ->
              flush_run ();
              if !pos < len then ins.(!pos) <- ins.(!pos) + 1 else incr tail_ins;
              insd.(Dna.Nucleotide.to_code b) <- insd.(Dna.Nucleotide.to_code b) + 1)
        al.Dna.Alignment.script;
      flush_run ())
    pairs;
  let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  let norm counts =
    let total = Array.fold_left ( + ) 0 counts in
    if total = 0 then Array.make (Array.length counts) (1.0 /. float_of_int (Array.length counts))
    else Array.map (fun c -> fdiv c total) counts
  in
  {
    len;
    n_pairs;
    p_ins = Array.map (fun c -> fdiv c n_pairs) ins;
    p_del_start = Array.map (fun c -> fdiv c n_pairs) del_start;
    p_sub = Array.map (fun c -> fdiv c n_pairs) sub;
    sub_matrix =
      Array.init 4 (fun a ->
          (* A base never "substitutes" to itself in an edit script; drop
             any such count before normalizing. *)
          let counts = Array.mapi (fun b c -> if b = a then 0 else c) subm.(a) in
          if Array.for_all (( = ) 0) counts then
            Array.init 4 (fun b -> if b = a then 0.0 else 1.0 /. 3.0)
          else norm counts);
    ins_dist = norm insd;
    run_length = norm runs;
    p_tail_ins = fdiv !tail_ins n_pairs;
  }

let sample_dist rng (dist : float array) =
  let u = Dna.Rng.float rng in
  let rec pick i acc =
    if i >= Array.length dist - 1 then i
    else if acc +. dist.(i) >= u then i
    else pick (i + 1) (acc +. dist.(i))
  in
  pick 0 0.0

let transmit (m : model) rng strand =
  let n = Dna.Strand.length strand in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    (* Positions beyond the trained profile reuse the last bucket. *)
    let p = min !i (m.len - 1) in
    if Dna.Rng.float rng < m.p_ins.(p) then
      Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng m.ins_dist);
    if Dna.Rng.float rng < m.p_del_start.(p) then begin
      let run = 1 + sample_dist rng m.run_length in
      i := !i + run
    end
    else begin
      let code = Dna.Strand.get_code strand !i in
      if Dna.Rng.float rng < m.p_sub.(p) then
        Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng m.sub_matrix.(code))
      else Buffer.add_char buf Dna.Strand.char_of_code.(code);
      incr i
    end
  done;
  if Dna.Rng.float rng < m.p_tail_ins then
    Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng m.ins_dist);
  Dna.Strand.of_string (Buffer.contents buf)

let create model = Channel.create ~name:"learned-empirical" (transmit model)
