(** The sequence-to-sequence RNN simulator as a channel (Section V-B):
    noisy reads are drawn token-by-token from a trained
    {!Neural.Seq2seq} model's predicted distributions. *)

val create : ?temperature:float -> Neural.Seq2seq.t -> Channel.t
(** [temperature] recalibrates the sampling distribution of an
    imperfectly converged model; fit it with
    {!Trainer.calibrate_temperature}. *)
