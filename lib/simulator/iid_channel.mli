(** The baseline simulator of Rashtchian et al. (Section V-A): at every
    index, an insertion, deletion or substitution with fixed
    probabilities, independently per index and per strand. *)

type params = { p_ins : float; p_del : float; p_sub : float }

val default_params : error_rate:float -> params
(** The total rate split evenly across the three error types. *)

val create : params -> Channel.t
(** Raises [Invalid_argument] on negative probabilities or a sum above 1. *)

val create_rate : error_rate:float -> Channel.t
