(** Dataset generation and training of the data-driven simulators.

    Mirrors the paper's methodology: a corpus of paired clean/noisy
    strands (there, real sequenced clusters; here, draws from the wetlab
    stand-in channel) is split into train/validation/test, the learned
    simulators are fit on the training split, and all channels are then
    compared on the test split (Figure 3, Table I). *)

type dataset = {
  train : (Dna.Strand.t * Dna.Strand.t) list;
  validation : (Dna.Strand.t * Dna.Strand.t) list;
  test : (Dna.Strand.t * Dna.Strand.t) list;
}

(* Draw [n] clean strands of length [len] and one noisy read each. *)
let generate_pairs channel rng ~n ~len =
  List.init n (fun _ ->
      let clean = Dna.Strand.random rng len in
      (clean, Channel.transmit channel rng clean))

let split rng ?(train_frac = 0.8) ?(val_frac = 0.1) pairs =
  let arr = Array.of_list pairs in
  Dna.Rng.shuffle_in_place rng arr;
  let n = Array.length arr in
  let n_train = int_of_float (train_frac *. float_of_int n) in
  let n_val = int_of_float (val_frac *. float_of_int n) in
  {
    train = Array.to_list (Array.sub arr 0 n_train);
    validation = Array.to_list (Array.sub arr n_train n_val);
    test = Array.to_list (Array.sub arr (n_train + n_val) (n - n_train - n_val));
  }

let make_dataset channel rng ~n ~len = split rng (generate_pairs channel rng ~n ~len)

(* Fit the count-based empirical channel. *)
let train_learned dataset = Learned_channel.create (Learned_channel.train dataset.train)

type rnn_progress = { epoch : int; train_loss : float; val_loss : float }

(* Train the seq2seq model with per-pair Adam steps. [report] is called
   after each epoch; training keeps the parameters of the best
   validation epoch. Scheduled sampling ramps from 0 to
   [scheduled_sampling] over the first half of training. *)
let train_rnn ?(hidden = 32) ?(epochs = 4) ?(lr = 2e-3) ?(scheduled_sampling = 0.3) ?report
    dataset rng =
  let model = Neural.Seq2seq.create ~hidden rng in
  let opt = Neural.Adam.create ~lr model.Neural.Seq2seq.store in
  let pairs = Array.of_list dataset.train in
  let to_codes (c, n) = (Dna.Strand.to_codes c, Dna.Strand.to_codes n) in
  let train_codes = Array.map to_codes pairs in
  let val_codes = Array.of_list (List.map to_codes dataset.validation) in
  let eval_on codes =
    if Array.length codes = 0 then 0.0
    else
      Array.fold_left
        (fun acc (clean, noisy) -> acc +. Neural.Seq2seq.eval_pair model ~clean ~noisy)
        0.0 codes
      /. float_of_int (Array.length codes)
  in
  let best_val = ref infinity in
  let best_params = ref (Neural.Params.to_flat model.Neural.Seq2seq.store) in
  for epoch = 1 to epochs do
    Dna.Rng.shuffle_in_place rng train_codes;
    let ss =
      scheduled_sampling *. min 1.0 (2.0 *. float_of_int (epoch - 1) /. float_of_int (max 1 epochs))
    in
    let total = ref 0.0 in
    Array.iter
      (fun (clean, noisy) ->
        total :=
          !total
          +. Neural.Seq2seq.train_pair ~scheduled_sampling:ss ~sampling_rng:rng model opt ~clean
               ~noisy)
      train_codes;
    let train_loss = !total /. float_of_int (max 1 (Array.length train_codes)) in
    let val_loss = eval_on val_codes in
    if val_loss < !best_val then begin
      best_val := val_loss;
      best_params := Neural.Params.to_flat model.Neural.Seq2seq.store
    end;
    match report with
    | Some f -> f { epoch; train_loss; val_loss }
    | None -> ()
  done;
  Neural.Params.of_flat model.Neural.Seq2seq.store !best_params;
  model


(* Fit the sampling temperature on the validation split: choose the
   temperature whose sampled reads match the validation pairs' overall
   edit rate. An under-trained seq2seq is systematically underconfident
   and over-generates noise at temperature 1; this one scalar corrects
   the calibration without touching the learned alignment. *)
let calibrate_temperature ?(candidates = [ 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ])
    ?(trials = 40) model dataset rng =
  let edit_rate pairs =
    let edits, bases =
      List.fold_left
        (fun (e, b) (clean, noisy) ->
          (e + Dna.Distance.levenshtein clean noisy, b + Dna.Strand.length clean))
        (0, 0) pairs
    in
    float_of_int edits /. float_of_int (max 1 bases)
  in
  let target = edit_rate dataset.validation in
  let cleans =
    List.filteri (fun i _ -> i < trials) dataset.validation |> List.map fst
  in
  let best = ref (1.0, infinity) in
  List.iter
    (fun temperature ->
      let channel = Rnn_channel.create ~temperature model in
      let sampled =
        List.map (fun clean -> (clean, Channel.transmit channel rng clean)) cleans
      in
      let gap = abs_float (edit_rate sampled -. target) in
      if gap < snd !best then best := (temperature, gap))
    candidates;
  fst !best
