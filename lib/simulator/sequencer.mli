(** Sequencing-coverage model: a pool of encoded strands becomes a
    shuffled bag of noisy reads. *)

type coverage =
  | Fixed of int  (** exactly this many reads per strand *)
  | Poisson of float  (** mean reads per strand *)

type read = {
  seq : Dna.Strand.t;
  origin : int;  (** index of the source strand; ground truth for evaluation *)
}

type params = {
  coverage : coverage;
  dropout : float;  (** probability a strand yields no reads at all *)
  p_reverse : float;  (** probability a read comes off in 3'->5' orientation *)
}

val default_params : coverage:coverage -> params
(** No dropout, no reverse reads. *)

val sequence :
  ?shuffle:bool -> ?domains:int -> params -> Channel.t -> Dna.Rng.t -> Dna.Strand.t array ->
  read array
(** All reads for the pool, shuffled by default (a test tube has no
    order). Empty reads are discarded.

    [domains] (default {!Dna.Par.default_domains}) parallelizes
    per-strand read synthesis. With [domains = 1] every draw comes off
    the given rng serially (bit-identical to the historical behavior);
    with [domains > 1] each strand gets its own stream split off the rng
    in strand order, so the read set is identical for every worker count
    — the channel must then be safe to call from multiple domains. *)

val sequence_pool :
  ?shuffle:bool ->
  params ->
  Channel.t ->
  Dna.Rng.t ->
  Dna.Strand.t array ->
  pool:Dna.Strand_pool.t ->
  int array
(** [sequence] with the read bag appended to [pool] instead of boxed:
    read [base + i] of the pool (where [base] is the pool's length on
    entry) pairs with origin [result.(i)]. Serial, and draw-for-draw
    identical to [sequence ~domains:1] — same seed, same reads in the
    same order, same origins. *)

val shard_depth : base:int -> n_selected:int -> n_shard:int -> int
(** Per-strand depth for sequencing a primer-selected sub-pool of
    [n_selected] molecules out of a shard of [n_shard]: the run's read
    budget concentrates on the amplified selection, so depth scales as
    [base * sqrt (n_shard / n_selected)], clamped to [\[base, 4*base\]].
    0 when nothing is selected. Used by the persistent store to pick a
    sequencing depth per shard access. *)

val ideal_clusters : n_strands:int -> read array -> Dna.Strand.t list array
(** Group reads by origin: the ground-truth clusters, used to evaluate
    clustering and to isolate the reconstruction module. *)
