(** Nanopore-style bursty indel channel: a 2-state Gilbert-Elliott
    model.

    The channel walks the strand with a hidden state. In the {e good}
    state errors are rare and substitution-only (miscalls). Entering the
    {e bad} state — a stretch where the basecaller loses the signal —
    errors become frequent and indel-dominated, and because the state
    persists geometrically (mean burst length [1 / p_exit]), indels
    arrive in clustered runs rather than i.i.d. singles: exactly the
    regime that separates nanopore data from the Rashtchian baseline and
    that trace reconstruction finds hardest. *)

type params = {
  p_enter : float;  (** good -> bad transition probability per base *)
  p_exit : float;  (** bad -> good transition probability per base *)
  p_good : float;  (** error probability per base in the good state (substitutions) *)
  p_bad : float;  (** error probability per base in the bad state *)
  bad_del : float;  (** fraction of bad-state errors that delete *)
  bad_ins : float;  (** fraction of bad-state errors that insert; the rest substitute *)
}

let default_params =
  { p_enter = 0.02; p_exit = 0.25; p_good = 0.005; p_bad = 0.40; bad_del = 0.55; bad_ins = 0.25 }

let validate p =
  let prob name x = if x < 0.0 || x > 1.0 then invalid_arg ("Burst_channel: " ^ name ^ " out of range") in
  prob "p_enter" p.p_enter;
  prob "p_exit" p.p_exit;
  prob "p_good" p.p_good;
  prob "p_bad" p.p_bad;
  prob "bad_del" p.bad_del;
  prob "bad_ins" p.bad_ins;
  if p.bad_del +. p.bad_ins > 1.0 then
    invalid_arg "Burst_channel: bad_del + bad_ins must be at most 1"

(* Stationary probability of the bad state and the implied long-run
   per-base error rate (used by scenario reports as the configured
   rate). *)
let stationary_bad p =
  let d = p.p_enter +. p.p_exit in
  if d = 0.0 then 0.0 else p.p_enter /. d

let mean_error_rate p =
  let b = stationary_bad p in
  (b *. p.p_bad) +. ((1.0 -. b) *. p.p_good)

(* Both transmit paths draw identically per base: one uniform for the
   state transition, one uniform for the error trial, and (only when the
   trial lands on a substitution or insertion) the extra base draws. *)

let transmit p rng strand =
  validate p;
  let n = Dna.Strand.length strand in
  let buf = Buffer.create (n + 8) in
  let bad = ref false in
  for i = 0 to n - 1 do
    let t = Dna.Rng.float rng in
    if !bad then (if t < p.p_exit then bad := false) else if t < p.p_enter then bad := true;
    let code = Dna.Strand.unsafe_get_code strand i in
    let u = Dna.Rng.float rng in
    if !bad then begin
      if u < p.p_bad *. p.bad_del then () (* deletion: base swallowed by the burst *)
      else if u < p.p_bad *. (p.bad_del +. p.bad_ins) then begin
        (* insertion before the current base; the base itself survives *)
        Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4);
        Buffer.add_char buf Dna.Strand.char_of_code.(code)
      end
      else if u < p.p_bad then
        Buffer.add_char buf Dna.Strand.char_of_code.((code + 1 + Dna.Rng.int rng 3) land 3)
      else Buffer.add_char buf Dna.Strand.char_of_code.(code)
    end
    else if u < p.p_good then
      Buffer.add_char buf Dna.Strand.char_of_code.((code + 1 + Dna.Rng.int rng 3) land 3)
    else Buffer.add_char buf Dna.Strand.char_of_code.(code)
  done;
  Dna.Strand.of_string (Buffer.contents buf)

let transmit_into p rng strand pool =
  validate p;
  let n = Dna.Strand.length strand in
  let bad = ref false in
  for i = 0 to n - 1 do
    let t = Dna.Rng.float rng in
    if !bad then (if t < p.p_exit then bad := false) else if t < p.p_enter then bad := true;
    let code = Dna.Strand.unsafe_get_code strand i in
    let u = Dna.Rng.float rng in
    if !bad then begin
      if u < p.p_bad *. p.bad_del then ()
      else if u < p.p_bad *. (p.bad_del +. p.bad_ins) then begin
        Dna.Strand_pool.emit pool (Dna.Rng.int rng 4);
        Dna.Strand_pool.emit pool code
      end
      else if u < p.p_bad then Dna.Strand_pool.emit pool ((code + 1 + Dna.Rng.int rng 3) land 3)
      else Dna.Strand_pool.emit pool code
    end
    else if u < p.p_good then Dna.Strand_pool.emit pool ((code + 1 + Dna.Rng.int rng 3) land 3)
    else Dna.Strand_pool.emit pool code
  done

let create ?(params = default_params) () =
  validate params;
  Channel.create ~name:"gilbert-elliott" ~transmit_into:(transmit_into params) (transmit params)
