(** The wetlab-channel abstraction: one clean (synthesized) strand in,
    one noisy read out, modeling the composite of synthesis, storage,
    handling and sequencing. Channels are plain records so users can
    swap in their own simulation module. *)

type t = {
  name : string;
  transmit : Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t;
}

val name : t -> string
val transmit : t -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t

val noiseless : t
(** The identity channel: a perfect wetlab. *)

val measure_error_profile : t -> Dna.Rng.t -> strand_len:int -> trials:int -> float array
(** Per-position error rates measured by aligning reads against their
    sources: for each clean-strand index, the fraction of transmissions
    in which that base was not matched exactly. *)
