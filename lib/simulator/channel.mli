(** The wetlab-channel abstraction: one clean (synthesized) strand in,
    one noisy read out, modeling the composite of synthesis, storage,
    handling and sequencing. Channels are plain records so users can
    swap in their own simulation module. *)

type t = {
  name : string;
  transmit : Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t;
  transmit_into : (Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit) option;
}

val create :
  ?transmit_into:(Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit) ->
  name:string ->
  (Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t) ->
  t
(** A custom [transmit_into] must draw from the rng exactly as
    [transmit] does (so pooled and boxed simulation runs stay
    bit-identical) and must leave the emitted read {e open} — callers
    reorient/truncate/commit it. *)

val name : t -> string
val transmit : t -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t

val transmit_into : t -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit
(** Emit one noisy read as [pool]'s open read, without committing it.
    Channels with a native pooled path allocate nothing per read; others
    fall back to boxed [transmit] plus re-emission (same rng stream
    either way). *)

val noiseless : t
(** The identity channel: a perfect wetlab. *)

val measure_error_profile : t -> Dna.Rng.t -> strand_len:int -> trials:int -> float array
(** Per-position error rates measured by aligning reads against their
    sources: for each clean-strand index, the fraction of transmissions
    in which that base was not matched exactly. *)
