(** The sequence-to-sequence RNN simulator as a channel (Section V-B).

    Wraps a trained [Neural.Seq2seq] model: the clean strand is encoded by
    the bi-GRU, and the noisy read is drawn token-by-token from the
    decoder's predicted distributions (the paper's greedy/immediate
    sampling). An untrained model produces near-random reads; train it
    first with [Trainer.train_rnn]. *)

let strand_of_codes codes = Dna.Strand.of_codes codes

let transmit ?temperature model rng strand =
  let clean = Dna.Strand.to_codes strand in
  let noisy = Neural.Seq2seq.sample ?temperature model ~mode:(Neural.Seq2seq.Stochastic rng) clean in
  if Array.length noisy = 0 then
    (* An immediate EOS would yield an empty read; emit a single sampled
       base instead so downstream stages see a molecule at all. *)
    Dna.Strand.of_codes [| Dna.Rng.int rng 4 |]
  else strand_of_codes noisy

let create ?temperature model =
  Channel.create ~name:"rnn-seq2seq" (transmit ?temperature model)
