(** The "real wetlab" stand-in channel (see DESIGN.md, substitution 1):
    position-dependent error rates (rising toward the 3' end, bumped at
    the start), bursty deletions with geometric run lengths,
    transition-biased substitutions and occasional tail truncation —
    the properties Section V-A says naive simulators miss. Experiments
    treat this channel's output as "Real". *)

type params = {
  base_error : float;  (** overall scale; ~per-base event probability *)
  start_bump : float;  (** extra multiplier at index 0, decaying *)
  start_tau : float;  (** decay length of the start bump *)
  end_ramp : float;  (** extra multiplier at the last index, quadratic ramp *)
  p_burst : float;  (** fraction of deletion events that open a burst *)
  burst_continue : float;  (** geometric continuation probability *)
  p_truncate : float;  (** probability the read tail is lost *)
  truncate_max_frac : float;  (** at most this fraction of the read *)
}

val default_params : params
(** ~10% base error: comparable to Nanopore sequencing. *)

val position_weight : params -> len:int -> int -> float
(** The positional error multiplier at an index. *)

val create : ?params:params -> unit -> Channel.t
