(** Array synthesis model (Section II-B): per-base coupling succeeds
    with probability [coupling_efficiency], so yield decays
    geometrically with length and truncated partial products accumulate
    — why synthetic molecules stay a few hundred bases long. *)

type params = {
  coupling_efficiency : float;  (** per-base extension success, e.g. 0.99 *)
  p_sub : float;  (** per-base synthesis substitution rate *)
  copies : int;  (** physical molecules attempted per design *)
  keep_truncated : float;  (** fraction of truncated products surviving cleanup *)
}

val default_params : params

val full_length_yield : params -> len:int -> float
(** Expected fraction of molecules reaching full length. *)

val synthesize_one : params -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t option
(** One physical molecule: possibly truncated, possibly substituted;
    [None] when the product is lost in cleanup. *)

val synthesize : ?params:params -> Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array
(** The synthesized pool for a set of designs, shuffled. *)

val channel : ?params:params -> unit -> Channel.t
(** Synthesis noise as a channel stage (retries cleanup losses so a
    molecule always comes out). *)
