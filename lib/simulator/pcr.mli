(** Polymerase chain reaction (Sections II-A and II-E): exponential
    amplification with per-cycle efficiency, polymerase errors that are
    themselves amplified, and per-molecule amplification bias — a
    log-normal efficiency multiplier ([bias_sd]) compounding each cycle,
    so final per-origin abundances are log-normal rather than uniform.

    Every input molecule amplifies from its own rng stream split off in
    index order, so results are independent of pool iteration order,
    identical across [--domains] settings, and cycle count 0 is the
    exact identity. *)

type params = {
  cycles : int;  (** thermal cycles, typically 10-30 *)
  efficiency : float;  (** per-molecule copy probability per cycle *)
  p_sub : float;  (** polymerase substitution rate per base per copy *)
  bias_sd : float;
      (** sigma of the per-molecule log-normal efficiency multiplier
          (0.0: every molecule amplifies at [efficiency]) *)
}

val default_params : params

type population = (Dna.Strand.t * int) list
(** Distinct molecule variants with their copy numbers. *)

val total_molecules : population -> int

val amplify : ?params:params -> Dna.Rng.t -> Dna.Strand.t array -> population
(** Families appear in input order; with [cycles = 0] the result is the
    input multiset with every count 1. *)

val sample : Dna.Rng.t -> population -> n:int -> Dna.Strand.t array
(** Draw molecules proportionally to abundance: what gets loaded on the
    sequencer. *)

val amplify_sample :
  ?params:params -> ?depth_factor:float -> Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array
(** [amplify] then [sample] [depth_factor * n] molecules (at least 1;
    default factor 1.0): the pool-level PCR stage scenario stacks apply
    — origins never sampled are dropped, popular origins repeat, and
    downstream fixed-depth sequencing turns the multiset into log-normal
    coverage. Raises [Invalid_argument] when [depth_factor <= 0]. *)

val abundance_skew : population -> float
(** Coefficient of variation of per-variant abundance. *)
