(** Polymerase chain reaction (Sections II-A and II-E): exponential
    amplification with per-cycle efficiency, polymerase errors that are
    themselves amplified, and the stochastic per-molecule bias that
    skews abundances. *)

type params = {
  cycles : int;  (** thermal cycles, typically 10-30 *)
  efficiency : float;  (** per-molecule copy probability per cycle *)
  p_sub : float;  (** polymerase substitution rate per base per copy *)
}

val default_params : params

type population = (Dna.Strand.t * int) list
(** Distinct molecule variants with their copy numbers. *)

val total_molecules : population -> int

val amplify : ?params:params -> Dna.Rng.t -> Dna.Strand.t array -> population

val sample : Dna.Rng.t -> population -> n:int -> Dna.Strand.t array
(** Draw molecules proportionally to abundance: what gets loaded on the
    sequencer. *)

val abundance_skew : population -> float
(** Coefficient of variation of per-variant abundance. *)
