(** Array synthesis model (Section II-B).

    Phosphoramidite synthesis adds bases one coupling at a time; each
    coupling succeeds with probability [coupling_efficiency] (~0.99),
    so yield decays geometrically with length and truncated partial
    products accumulate — the reason synthetic molecules stay a few
    hundred bases long. The model emits, for each designed strand, a
    population of physical molecules: full-length copies plus truncated
    prefixes, each optionally carrying synthesis substitutions. *)

type params = {
  coupling_efficiency : float;  (** per-base extension success, e.g. 0.99 *)
  p_sub : float;  (** per-base synthesis substitution rate *)
  copies : int;  (** physical molecules attempted per design *)
  keep_truncated : float;  (** fraction of truncated products that survive cleanup *)
}

let default_params =
  { coupling_efficiency = 0.99; p_sub = 0.001; copies = 20; keep_truncated = 0.05 }

let validate p =
  if p.coupling_efficiency <= 0.0 || p.coupling_efficiency > 1.0 then
    invalid_arg "Synthesis: coupling_efficiency must be in (0, 1]";
  if p.p_sub < 0.0 || p.p_sub >= 1.0 then invalid_arg "Synthesis: p_sub out of range";
  if p.copies <= 0 then invalid_arg "Synthesis: copies must be positive"

(* Expected fraction of molecules reaching full length. *)
let full_length_yield p ~len = p.coupling_efficiency ** float_of_int len

(* One physical molecule of a designed strand: possibly truncated,
   possibly with substitutions. [None] when the truncated product is
   washed away in cleanup. *)
let synthesize_one p rng (design : Dna.Strand.t) : Dna.Strand.t option =
  let n = Dna.Strand.length design in
  (* Length reached before the first failed coupling. *)
  let reached = ref n in
  (try
     for i = 0 to n - 1 do
       if Dna.Rng.float rng >= p.coupling_efficiency then begin
         reached := i;
         raise Exit
       end
     done
   with Exit -> ());
  let len = !reached in
  if len = 0 then None
  else if len < n && Dna.Rng.float rng >= p.keep_truncated then None
  else begin
    let codes =
      Array.init len (fun i ->
          let c = Dna.Strand.get_code design i in
          if Dna.Rng.float rng < p.p_sub then (c + 1 + Dna.Rng.int rng 3) land 3 else c)
    in
    Some (Dna.Strand.of_codes codes)
  end

(* The synthesized pool for a set of designs; molecules are unordered. *)
let synthesize ?(params = default_params) rng (designs : Dna.Strand.t array) : Dna.Strand.t array
    =
  validate params;
  let out = ref [] in
  Array.iter
    (fun design ->
      for _ = 1 to params.copies do
        match synthesize_one params rng design with
        | Some molecule -> out := molecule :: !out
        | None -> ()
      done)
    designs;
  let arr = Array.of_list !out in
  Dna.Rng.shuffle_in_place rng arr;
  arr

(* A channel view: one synthesis draw per transmit, retrying cleanup
   losses so a read always comes out (the paper's simulation module
   composes synthesis noise into the overall channel). *)
let channel ?(params = default_params) () =
  validate params;
  Channel.create ~name:"synthesis" (fun rng design ->
      let rec attempt n =
        if n = 0 then design
        else
          match synthesize_one params rng design with
          | Some m -> m
          | None -> attempt (n - 1)
      in
      attempt 16)
