(** Dataset generation and training of the data-driven simulators,
    mirroring the paper's train/validation/test methodology. *)

type dataset = {
  train : (Dna.Strand.t * Dna.Strand.t) list;
  validation : (Dna.Strand.t * Dna.Strand.t) list;
  test : (Dna.Strand.t * Dna.Strand.t) list;
}

val generate_pairs : Channel.t -> Dna.Rng.t -> n:int -> len:int -> (Dna.Strand.t * Dna.Strand.t) list
(** [n] clean strands of length [len], one noisy read each. *)

val split : Dna.Rng.t -> ?train_frac:float -> ?val_frac:float ->
  (Dna.Strand.t * Dna.Strand.t) list -> dataset
(** Default split 80/10/10. *)

val make_dataset : Channel.t -> Dna.Rng.t -> n:int -> len:int -> dataset

val train_learned : dataset -> Channel.t
(** Fit the count-based empirical channel on the training split. *)

type rnn_progress = { epoch : int; train_loss : float; val_loss : float }

val train_rnn :
  ?hidden:int -> ?epochs:int -> ?lr:float -> ?scheduled_sampling:float ->
  ?report:(rnn_progress -> unit) -> dataset -> Dna.Rng.t -> Neural.Seq2seq.t
(** Train the seq2seq model with per-pair Adam steps, keeping the
    parameters of the best validation epoch. Scheduled sampling ramps
    from 0 to its target (default 0.3) over the first half of
    training. *)

val calibrate_temperature :
  ?candidates:float list -> ?trials:int -> Neural.Seq2seq.t -> dataset -> Dna.Rng.t -> float
(** The sampling temperature whose generated reads best match the
    validation pairs' overall edit rate. *)
