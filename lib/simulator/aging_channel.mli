(** Decay-over-time channel: thermal, hydrolytic and oxidative
    degradation integrated over simulated storage [years], expressed as
    whole-strand dropout plus position-biased per-base damage (lesion
    substitutions and backbone nicks that truncate the read). *)

type params = {
  years : float;  (** simulated storage time *)
  thermal_per_day : float;  (** depurination rate contribution per day *)
  hydrolytic_per_day : float;  (** backbone hydrolysis per day *)
  oxidative_per_day : float;  (** base oxidation per day *)
  per_base_scale : float;
      (** fraction of the cumulative whole-strand exposure that lands as
          per-base damage on surviving molecules *)
  sub_fraction : float;
      (** damage events that read back as substitutions; the rest nick
          the backbone and truncate the read *)
  end_bias : float;  (** extra damage multiplier at strand ends (fraying) *)
}

val default_params : params
(** 5 simulated years at cold-storage per-day rates. *)

val cumulative : params -> float
(** Integrated damage exposure: [years * 365.25 * (thermal + hydrolytic
    + oxidative)]. *)

val survival : params -> float
(** Whole-strand survival probability, [exp (-cumulative)]. *)

val dropout : params -> float
(** [1 - survival]: the pool-level loss rate scenario stacks apply. *)

val per_base_rate : params -> float
(** Midpoint per-base damage probability on a surviving molecule
    ([cumulative * per_base_scale], capped at 0.5). *)

val transmit : params -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand.t
val transmit_into : params -> Dna.Rng.t -> Dna.Strand.t -> Dna.Strand_pool.t -> unit
(** Draw-for-draw identical to [transmit] (the {!Channel.create}
    contract): same rng stream, the read left open in the pool. *)

val create : ?params:params -> unit -> Channel.t

val age_pool : ?params:params -> Dna.Rng.t -> Dna.Strand.t array -> Dna.Strand.t array
(** Apply the archive to a whole pool: drop each molecule with
    probability {!dropout}, damage survivors with one [transmit] pass,
    discard zero-length wrecks. Order-preserving over survivors. *)
