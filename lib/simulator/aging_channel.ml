(** Decay-over-time channel: what [years] of storage do to a molecule.

    Archived DNA degrades through three slow per-day processes —
    thermal depurination, hydrolytic backbone cleavage, and oxidative
    base lesions (the degradation factors of the biological storage
    managers this models). Integrated over the simulated storage period
    they yield one cumulative damage exposure, expressed here as

    - whole-strand loss: a molecule survives the archive with
      probability [exp (-cumulative)] (applied at pool level by the
      scenario engine via {!dropout});
    - per-base damage on surviving molecules: each base is hit with a
      position-biased probability (strand ends fray first). A hit is
      either an oxidative lesion — the sequencer misreads the base, a
      substitution — or a nick: the backbone is cleaved and the read
      terminates there (the 3' remainder is lost).

    Rates are per-base per-day fractions of the whole-strand decay
    constant, so doubling [years] doubles both dropout pressure and
    per-base damage. *)

type params = {
  years : float;  (** simulated storage time *)
  thermal_per_day : float;  (** depurination rate contribution per day *)
  hydrolytic_per_day : float;  (** backbone hydrolysis per day *)
  oxidative_per_day : float;  (** base oxidation per day *)
  per_base_scale : float;
      (** fraction of the cumulative whole-strand exposure that lands as
          per-base damage on surviving molecules *)
  sub_fraction : float;  (** damage events that read back as substitutions; the rest nick *)
  end_bias : float;  (** extra damage multiplier at strand ends (fraying) *)
}

(* Cold-storage rates: after 5 years, ~8% whole-strand loss, ~0.1%
   per-base lesion rate on survivors, and rare nicks. Pool-level damage
   is far more costly than read noise — every read of the molecule
   shares it, so consensus faithfully reproduces it and only the
   cross-strand RS parity can absorb it (and a lesion in the strand's
   index header misaddresses the whole molecule). The defaults sit
   inside a default RS budget at 5 years and visibly eat into the
   parity margin when [years] doubles. *)
let default_params =
  {
    years = 5.0;
    thermal_per_day = 2.5e-5;
    hydrolytic_per_day = 1.5e-5;
    oxidative_per_day = 6e-6;
    per_base_scale = 0.012;
    sub_fraction = 0.98;
    end_bias = 1.5;
  }

let validate p =
  if p.years < 0.0 then invalid_arg "Aging_channel: years must be nonnegative";
  if p.thermal_per_day < 0.0 || p.hydrolytic_per_day < 0.0 || p.oxidative_per_day < 0.0 then
    invalid_arg "Aging_channel: per-day rates must be nonnegative";
  if p.per_base_scale < 0.0 || p.per_base_scale > 1.0 then
    invalid_arg "Aging_channel: per_base_scale out of range";
  if p.sub_fraction < 0.0 || p.sub_fraction > 1.0 then
    invalid_arg "Aging_channel: sub_fraction out of range";
  if p.end_bias < 0.0 then invalid_arg "Aging_channel: end_bias must be nonnegative"

(* Cumulative damage exposure over the storage period. *)
let cumulative p =
  p.years *. 365.25 *. (p.thermal_per_day +. p.hydrolytic_per_day +. p.oxidative_per_day)

let survival p = exp (-.cumulative p)
let dropout p = 1.0 -. survival p
let per_base_rate p = min 0.5 (cumulative p *. p.per_base_scale)

(* Fraying bias: ends take up to [1 + end_bias] times the midpoint
   damage, quadratic in the distance from the center. *)
let position_weight p ~len i =
  if len <= 1 then 1.0 +. p.end_bias
  else begin
    let mid = float_of_int (len - 1) /. 2.0 in
    let d = (float_of_int i -. mid) /. mid in
    1.0 +. (p.end_bias *. d *. d)
  end

(* Both transmit paths draw identically: per base one uniform for the
   damage trial; on damage a second uniform classifies it; a
   substitution draws one more int for the replacement base. A nick
   ends the read — no further draws for the lost tail. *)

let transmit p rng strand =
  validate p;
  let n = Dna.Strand.length strand in
  let rate = per_base_rate p in
  let buf = Buffer.create (n + 1) in
  let i = ref 0 and nicked = ref false in
  while (not !nicked) && !i < n do
    let u = Dna.Rng.float rng in
    if u < rate *. position_weight p ~len:n !i then begin
      if Dna.Rng.float rng < p.sub_fraction then begin
        let code = Dna.Strand.unsafe_get_code strand !i in
        Buffer.add_char buf Dna.Strand.char_of_code.((code + 1 + Dna.Rng.int rng 3) land 3)
      end
      else nicked := true (* backbone cleaved: the 3' remainder is lost *)
    end
    else Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Strand.unsafe_get_code strand !i);
    incr i
  done;
  Dna.Strand.of_string (Buffer.contents buf)

let transmit_into p rng strand pool =
  validate p;
  let n = Dna.Strand.length strand in
  let rate = per_base_rate p in
  let i = ref 0 and nicked = ref false in
  while (not !nicked) && !i < n do
    let u = Dna.Rng.float rng in
    if u < rate *. position_weight p ~len:n !i then begin
      if Dna.Rng.float rng < p.sub_fraction then begin
        let code = Dna.Strand.unsafe_get_code strand !i in
        Dna.Strand_pool.emit pool ((code + 1 + Dna.Rng.int rng 3) land 3)
      end
      else nicked := true
    end
    else Dna.Strand_pool.emit pool (Dna.Strand.unsafe_get_code strand !i);
    incr i
  done

let create ?(params = default_params) () =
  validate params;
  Channel.create
    ~name:(Printf.sprintf "aging(%.1fy)" params.years)
    ~transmit_into:(transmit_into params) (transmit params)

(* Pool-level application: each archived molecule is independently lost
   with probability [dropout p]; survivors carry the per-base damage of
   one [transmit] pass. Zero-length wrecks are discarded. *)
let age_pool ?(params = default_params) rng (strands : Dna.Strand.t array) : Dna.Strand.t array =
  validate params;
  let p_drop = dropout params in
  let out = ref [] in
  Array.iter
    (fun s ->
      if Dna.Rng.float rng >= p_drop then begin
        let aged = transmit params rng s in
        if Dna.Strand.length aged > 0 then out := aged :: !out
      end)
    strands;
  Array.of_list (List.rev !out)
