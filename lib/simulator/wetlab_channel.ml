(** The "real wetlab" stand-in channel.

    The paper evaluates its simulators against real sequenced data (270K
    Nanopore reads [35]); that dataset is not available here, so this
    module plays the role of the physical wetlab: a deliberately rich
    channel exhibiting the three properties Section V-A says naive
    simulators miss —

    - position-dependent error rates (errors concentrate toward the 3'
      end as synthesis errors accumulate, with a smaller bump at the
      start from sequencing adapter effects);
    - error bursts (deletion runs with geometrically distributed length);
    - nucleotide-biased substitutions (transition-favoring matrix).

    The learned simulators are trained on paired (clean, noisy) samples
    drawn from this channel *without access to its parameters*, mirroring
    how the paper trains on real paired reads. Experiments treat this
    channel's output as "Real". *)

type params = {
  base_error : float;  (** overall scale; ~per-base event probability *)
  start_bump : float;  (** extra multiplier at index 0, decaying *)
  start_tau : float;  (** decay length of the start bump *)
  end_ramp : float;  (** extra multiplier at the last index, quadratic ramp *)
  p_burst : float;  (** fraction of deletion events that open a burst *)
  burst_continue : float;  (** geometric continuation probability of a burst *)
  p_truncate : float;  (** probability the read tail is lost entirely *)
  truncate_max_frac : float;  (** at most this fraction of the read is lost *)
}

let default_params =
  {
    base_error = 0.10;
    start_bump = 0.8;
    start_tau = 12.0;
    end_ramp = 1.2;
    p_burst = 0.18;
    burst_continue = 0.45;
    p_truncate = 0.01;
    truncate_max_frac = 0.25;
  }

(* Positional multiplier: 1 + bump * exp(-i/tau) + ramp * (i/L)^2. *)
let position_weight p ~len i =
  let x = float_of_int i in
  let l = float_of_int (max 1 (len - 1)) in
  1.0 +. (p.start_bump *. exp (-.x /. p.start_tau)) +. (p.end_ramp *. ((x /. l) ** 2.0))

(* Transition-biased substitution: A<->G and C<->T twice as likely as
   transversions. Rows: original base; columns: read base. *)
let sub_matrix =
  [|
    [| 0.0; 0.2; 0.6; 0.2 |];
    [| 0.2; 0.0; 0.2; 0.6 |];
    [| 0.6; 0.2; 0.0; 0.2 |];
    [| 0.2; 0.6; 0.2; 0.0 |];
  |]

let sample_dist rng (dist : float array) =
  let u = Dna.Rng.float rng in
  let rec pick i acc =
    if i >= Array.length dist - 1 then i
    else if acc +. dist.(i) >= u then i
    else pick (i + 1) (acc +. dist.(i))
  in
  pick 0 0.0

let transmit p rng strand =
  let n = Dna.Strand.length strand in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  while !i < n do
    let w = position_weight p ~len:n !i in
    let rate = p.base_error *. w in
    (* Event split at this position: 35% deletion, 40% substitution,
       25% insertion (matching rough Nanopore indel dominance). *)
    let u = Dna.Rng.float rng in
    if u < rate *. 0.35 then begin
      (* Deletion; possibly a burst. *)
      if Dna.Rng.float rng < p.p_burst then begin
        let burst = ref 1 in
        while Dna.Rng.float rng < p.burst_continue do
          incr burst
        done;
        i := !i + !burst
      end
      else incr i
    end
    else if u < rate *. 0.75 then begin
      let code = Dna.Strand.get_code strand !i in
      Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng sub_matrix.(code));
      incr i
    end
    else if u < rate then begin
      Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4);
      (* post-insertion: the original base still follows *)
      Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Strand.get strand !i));
      incr i
    end
    else begin
      Buffer.add_char buf (Dna.Nucleotide.to_char (Dna.Strand.get strand !i));
      incr i
    end
  done;
  let read = Buffer.contents buf in
  let read =
    if Dna.Rng.float rng < p.p_truncate && String.length read > 4 then begin
      let max_cut = int_of_float (p.truncate_max_frac *. float_of_int (String.length read)) in
      let cut = if max_cut = 0 then 0 else Dna.Rng.int rng (max_cut + 1) in
      String.sub read 0 (String.length read - cut)
    end
    else read
  in
  Dna.Strand.of_string read

(* Pooled variant: rng draws mirror [transmit] exactly; the read grows
   as the pool's open read, and tail truncation uses [truncate_open]
   instead of a string copy. *)
let transmit_into p rng strand pool =
  let n = Dna.Strand.length strand in
  let i = ref 0 in
  while !i < n do
    let w = position_weight p ~len:n !i in
    let rate = p.base_error *. w in
    let u = Dna.Rng.float rng in
    if u < rate *. 0.35 then begin
      if Dna.Rng.float rng < p.p_burst then begin
        let burst = ref 1 in
        while Dna.Rng.float rng < p.burst_continue do
          incr burst
        done;
        i := !i + !burst
      end
      else incr i
    end
    else if u < rate *. 0.75 then begin
      let code = Dna.Strand.unsafe_get_code strand !i in
      Dna.Strand_pool.emit pool (sample_dist rng sub_matrix.(code));
      incr i
    end
    else if u < rate then begin
      Dna.Strand_pool.emit pool (Dna.Rng.int rng 4);
      (* post-insertion: the original base still follows *)
      Dna.Strand_pool.emit pool (Dna.Strand.unsafe_get_code strand !i);
      incr i
    end
    else begin
      Dna.Strand_pool.emit pool (Dna.Strand.unsafe_get_code strand !i);
      incr i
    end
  done;
  let len = Dna.Strand_pool.open_length pool in
  if Dna.Rng.float rng < p.p_truncate && len > 4 then begin
    let max_cut = int_of_float (p.truncate_max_frac *. float_of_int len) in
    let cut = if max_cut = 0 then 0 else Dna.Rng.int rng (max_cut + 1) in
    Dna.Strand_pool.truncate_open pool (len - cut)
  end

let create ?(params = default_params) () =
  Channel.create ~name:"wetlab-real" ~transmit_into:(transmit_into params)
    (transmit params)
