(** Polymerase chain reaction (Sections II-A and II-E).

    PCR doubles the selected molecules once per thermal cycle, with an
    [efficiency] probability that any given molecule is copied in a
    cycle and a small per-base polymerase error rate on each fresh
    copy. Because errors made in early cycles are themselves amplified,
    PCR both multiplies molecules and *broadens* their error
    distribution, and stochastic per-molecule amplification skews
    abundances — the amplification bias that makes coverage uneven.

    Populations are tracked as (strand, count) multisets; counts grow
    exponentially while the number of distinct variants stays small. *)

type params = {
  cycles : int;  (** thermal cycles, typically 10-30 *)
  efficiency : float;  (** per-molecule copy probability per cycle *)
  p_sub : float;  (** polymerase substitution rate per base per copy *)
}

let default_params = { cycles = 12; efficiency = 0.85; p_sub = 1e-4 }

let validate p =
  if p.cycles < 0 then invalid_arg "Pcr: cycles must be nonnegative";
  if p.efficiency < 0.0 || p.efficiency > 1.0 then invalid_arg "Pcr: efficiency out of range";
  if p.p_sub < 0.0 || p.p_sub >= 1.0 then invalid_arg "Pcr: p_sub out of range"

type population = (Dna.Strand.t * int) list
(** Distinct molecule variants with their copy numbers. *)

let total_molecules (pop : population) = List.fold_left (fun a (_, c) -> a + c) 0 pop

(* Binomial sample by inversion for small n, normal approximation for
   large n: the number of successfully copied molecules of a variant. *)
let binomial rng ~n ~p =
  if n <= 0 || p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n < 64 then begin
    let k = ref 0 in
    for _ = 1 to n do
      if Dna.Rng.float rng < p then incr k
    done;
    !k
  end
  else begin
    (* Normal approximation with continuity, clamped to [0, n]. *)
    let mean = float_of_int n *. p in
    let sd = sqrt (float_of_int n *. p *. (1.0 -. p)) in
    let u1 = max 1e-12 (Dna.Rng.float rng) and u2 = Dna.Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    max 0 (min n (int_of_float (mean +. (sd *. z) +. 0.5)))
  end

(* One polymerase substitution at a random position. *)
let mutate_copy rng strand =
  let n = Dna.Strand.length strand in
  let pos = Dna.Rng.int rng n in
  let codes = Dna.Strand.to_codes strand in
  codes.(pos) <- (codes.(pos) + 1 + Dna.Rng.int rng 3) land 3;
  Dna.Strand.of_codes codes

(* One thermal cycle over the population. Mutated copies spawn new
   variants; clean copies increase their variant's count. *)
let cycle p rng (pop : population) : population =
  let fresh = ref [] in
  let pop =
    List.map
      (fun (strand, count) ->
        let copied = binomial rng ~n:count ~p:p.efficiency in
        (* Of the copies, how many carry a new error? Expected
           n_copies * len * p_sub; sample per-copy only for that few. *)
        let p_err = min 1.0 (float_of_int (Dna.Strand.length strand) *. p.p_sub) in
        let errored = binomial rng ~n:copied ~p:p_err in
        for _ = 1 to errored do
          fresh := (mutate_copy rng strand, 1) :: !fresh
        done;
        (strand, count + copied - errored))
      pop
  in
  pop @ !fresh

let amplify ?(params = default_params) rng (molecules : Dna.Strand.t array) : population =
  validate params;
  let pop = ref (Array.to_list (Array.map (fun s -> (s, 1)) molecules)) in
  for _ = 1 to params.cycles do
    pop := cycle params rng !pop
  done;
  !pop

(* Draw [n] molecules from the population proportionally to abundance:
   what actually gets loaded on the sequencer. *)
let sample rng (pop : population) ~n : Dna.Strand.t array =
  let total = total_molecules pop in
  if total = 0 then [||]
  else
    Array.init n (fun _ ->
        let target = Dna.Rng.int rng total in
        let rec pick acc = function
          | [] -> fst (List.hd pop)
          | (s, c) :: rest -> if target < acc + c then s else pick (acc + c) rest
        in
        pick 0 pop)

(* Amplification skew: coefficient of variation of per-origin abundance
   when every input molecule was distinct. *)
let abundance_skew (pop : population) =
  let counts = List.map (fun (_, c) -> float_of_int c) pop in
  let n = float_of_int (List.length counts) in
  if n = 0.0 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 counts /. n in
    let var = List.fold_left (fun a c -> a +. ((c -. mean) ** 2.0)) 0.0 counts /. n in
    if mean = 0.0 then 0.0 else sqrt var /. mean
  end
