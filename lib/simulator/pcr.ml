(** Polymerase chain reaction (Sections II-A and II-E).

    PCR doubles the selected molecules once per thermal cycle, with an
    [efficiency] probability that any given molecule is copied in a
    cycle and a small per-base polymerase error rate on each fresh
    copy. Because errors made in early cycles are themselves amplified,
    PCR both multiplies molecules and *broadens* their error
    distribution, and stochastic per-molecule amplification skews
    abundances — the amplification bias that makes coverage uneven.

    [bias_sd] adds the systematic component of that bias: each input
    molecule draws one log-normal efficiency multiplier (secondary
    structure, GC content, primer affinity) that compounds every cycle,
    so after [c] cycles per-origin abundance is log-normally distributed
    rather than merely jittered — the skew scenario stacks use to turn
    uniform coverage into the long-tailed coverage real pools show.

    Populations are tracked as (strand, count) multisets; counts grow
    exponentially while the number of distinct variants stays small.

    Determinism: every input molecule amplifies from its own rng stream,
    split off the caller's rng in index order. A family's draws depend
    only on its own stream — never on how many other molecules share the
    tube, their counts, or the order cycles walk the population — so the
    result is reproducible under any pool iteration order and across
    [--domains] settings, and cycle count 0 is the exact identity. *)

type params = {
  cycles : int;  (** thermal cycles, typically 10-30 *)
  efficiency : float;  (** per-molecule copy probability per cycle *)
  p_sub : float;  (** polymerase substitution rate per base per copy *)
  bias_sd : float;
      (** sigma of the per-molecule log-normal efficiency multiplier
          (0.0: every molecule amplifies at [efficiency], the historical
          behavior) *)
}

let default_params = { cycles = 12; efficiency = 0.85; p_sub = 1e-4; bias_sd = 0.0 }

let validate p =
  if p.cycles < 0 then invalid_arg "Pcr: cycles must be nonnegative";
  if p.efficiency < 0.0 || p.efficiency > 1.0 then invalid_arg "Pcr: efficiency out of range";
  if p.p_sub < 0.0 || p.p_sub >= 1.0 then invalid_arg "Pcr: p_sub out of range";
  if p.bias_sd < 0.0 then invalid_arg "Pcr: bias_sd must be nonnegative"

type population = (Dna.Strand.t * int) list
(** Distinct molecule variants with their copy numbers. *)

let total_molecules (pop : population) = List.fold_left (fun a (_, c) -> a + c) 0 pop

(* Binomial sample by inversion for small n, normal approximation for
   large n: the number of successfully copied molecules of a variant. *)
let binomial rng ~n ~p =
  if n <= 0 || p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n < 64 then begin
    let k = ref 0 in
    for _ = 1 to n do
      if Dna.Rng.float rng < p then incr k
    done;
    !k
  end
  else begin
    (* Normal approximation with continuity, clamped to [0, n]. *)
    let mean = float_of_int n *. p in
    let sd = sqrt (float_of_int n *. p *. (1.0 -. p)) in
    let u1 = max 1e-12 (Dna.Rng.float rng) and u2 = Dna.Rng.float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    max 0 (min n (int_of_float (mean +. (sd *. z) +. 0.5)))
  end

(* Standard normal via Box-Muller (two uniform draws). *)
let gaussian rng =
  let u1 = max 1e-12 (Dna.Rng.float rng) and u2 = Dna.Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* One polymerase substitution at a random position. *)
let mutate_copy rng strand =
  let n = Dna.Strand.length strand in
  let pos = Dna.Rng.int rng n in
  let codes = Dna.Strand.to_codes strand in
  codes.(pos) <- (codes.(pos) + 1 + Dna.Rng.int rng 3) land 3;
  Dna.Strand.of_codes codes

(* One thermal cycle over one molecule's family, at that family's
   (possibly bias-skewed) efficiency. Mutated copies spawn new
   variants; clean copies increase their variant's count. *)
let cycle p ~efficiency rng (pop : population) : population =
  let fresh = ref [] in
  let pop =
    List.map
      (fun (strand, count) ->
        let copied = binomial rng ~n:count ~p:efficiency in
        (* Of the copies, how many carry a new error? Expected
           n_copies * len * p_sub; sample per-copy only for that few. *)
        let p_err = min 1.0 (float_of_int (Dna.Strand.length strand) *. p.p_sub) in
        let errored = binomial rng ~n:copied ~p:p_err in
        for _ = 1 to errored do
          fresh := (mutate_copy rng strand, 1) :: !fresh
        done;
        (strand, count + copied - errored))
      pop
  in
  pop @ !fresh

(* Amplify one input molecule on its own stream. The family's
   efficiency multiplier is drawn once and compounds across every
   cycle, which is what makes final abundances log-normal. *)
let amplify_family p rng strand : population =
  let efficiency =
    if p.bias_sd = 0.0 then p.efficiency
    else
      (* exp(sigma z - sigma^2/2) has mean 1, so the bias spreads
         abundances without shifting the expected yield. *)
      min 1.0 (p.efficiency *. exp ((p.bias_sd *. gaussian rng) -. (0.5 *. p.bias_sd *. p.bias_sd)))
  in
  let pop = ref [ (strand, 1) ] in
  for _ = 1 to p.cycles do
    pop := cycle p ~efficiency rng !pop
  done;
  !pop

let amplify ?(params = default_params) rng (molecules : Dna.Strand.t array) : population =
  validate params;
  (* Index-order split: family i's stream depends only on the parent
     rng state and i, never on what other families drew. *)
  let streams = Array.map (fun s -> (s, Dna.Rng.split rng)) molecules in
  List.concat_map
    (fun (s, frng) -> amplify_family params frng s)
    (Array.to_list streams)

(* Draw [n] molecules from the population proportionally to abundance:
   what actually gets loaded on the sequencer. *)
let sample rng (pop : population) ~n : Dna.Strand.t array =
  let total = total_molecules pop in
  if total = 0 then [||]
  else
    Array.init n (fun _ ->
        let target = Dna.Rng.int rng total in
        let rec pick acc = function
          | [] -> fst (List.hd pop)
          | (s, c) :: rest -> if target < acc + c then s else pick (acc + c) rest
        in
        pick 0 pop)

let amplify_sample ?(params = default_params) ?(depth_factor = 1.0) rng molecules =
  if depth_factor <= 0.0 then invalid_arg "Pcr: depth_factor must be positive";
  if Array.length molecules = 0 then [||]
  else begin
    let pop = amplify ~params rng molecules in
    let n = max 1 (int_of_float (depth_factor *. float_of_int (Array.length molecules))) in
    sample rng pop ~n
  end

(* Amplification skew: coefficient of variation of per-origin abundance
   when every input molecule was distinct. *)
let abundance_skew (pop : population) =
  let counts = List.map (fun (_, c) -> float_of_int c) pop in
  let n = float_of_int (List.length counts) in
  if n = 0.0 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 counts /. n in
    let var = List.fold_left (fun a c -> a +. ((c -. mean) ** 2.0)) 0.0 counts /. n in
    if mean = 0.0 then 0.0 else sqrt var /. mean
  end
