(** A SOLQC-style probabilistic channel (Sabary et al. [32]).

    Error probabilities are conditioned on the nucleotide: each base has
    its own substitution distribution, deletion probability, and
    *pre-insertion* probability (an insertion placed before the base).
    As the paper notes, SOLQC models pre-insertions but not
    post-insertions, which makes forward reconstruction harder than
    reverse reconstruction. *)

type base_params = {
  p_del : float;
  p_pre_ins : float;
  ins_dist : float array;  (** distribution over the inserted base, length 4 *)
  sub_dist : float array;  (** substitution distribution over 4 bases; own base = no-op mass *)
}

type params = base_params array (* indexed by base code 0..3 *)

(* Defaults loosely shaped like published Illumina nucleotide biases:
   C and G slightly more error-prone, A->G / T->C transitions favored. *)
let default_params ~error_rate : params =
  let e = error_rate in
  let mk ~bias ~own sub =
    {
      p_del = e *. 0.35 *. bias;
      p_pre_ins = e *. 0.25 *. bias;
      ins_dist = [| 0.25; 0.25; 0.25; 0.25 |];
      sub_dist =
        (let total = e *. 0.4 *. bias in
         Array.mapi (fun i w -> if i = own then 1.0 -. total else total *. w) sub);
    }
  in
  [|
    (* A: transitions to G favored *)
    mk ~bias:0.9 ~own:0 [| 0.0; 0.2; 0.6; 0.2 |];
    (* C: to T favored *)
    mk ~bias:1.15 ~own:1 [| 0.2; 0.0; 0.2; 0.6 |];
    (* G: to A favored *)
    mk ~bias:1.15 ~own:2 [| 0.6; 0.2; 0.0; 0.2 |];
    (* T: to C favored *)
    mk ~bias:0.9 ~own:3 [| 0.2; 0.6; 0.2; 0.0 |];
  |]

let sample_dist rng (dist : float array) =
  let u = Dna.Rng.float rng in
  let rec pick i acc =
    if i >= Array.length dist - 1 then i
    else if acc +. dist.(i) >= u then i
    else pick (i + 1) (acc +. dist.(i))
  in
  pick 0 0.0

let transmit (params : params) rng strand =
  let buf = Buffer.create (Dna.Strand.length strand + 8) in
  let n = Dna.Strand.length strand in
  for i = 0 to n - 1 do
    let code = Dna.Strand.get_code strand i in
    let p = params.(code) in
    if Dna.Rng.float rng < p.p_pre_ins then
      Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng p.ins_dist);
    if Dna.Rng.float rng < p.p_del then ()
    else Buffer.add_char buf Dna.Strand.char_of_code.(sample_dist rng p.sub_dist)
  done;
  Dna.Strand.of_string (Buffer.contents buf)

(* Pooled variant: rng draws mirror [transmit] exactly; codes go
   straight into the arena. *)
let transmit_into (params : params) rng strand pool =
  let n = Dna.Strand.length strand in
  for i = 0 to n - 1 do
    let code = Dna.Strand.unsafe_get_code strand i in
    let p = params.(code) in
    if Dna.Rng.float rng < p.p_pre_ins then
      Dna.Strand_pool.emit pool (sample_dist rng p.ins_dist);
    if Dna.Rng.float rng < p.p_del then ()
    else Dna.Strand_pool.emit pool (sample_dist rng p.sub_dist)
  done

let create params =
  Channel.create ~name:"solqc" ~transmit_into:(transmit_into params) (transmit params)
let create_rate ~error_rate = create (default_params ~error_rate)
