(** Minimal FASTA reading and writing.

    Records are [>id] header lines followed by one or more sequence lines.
    Sequence lines may wrap; they are concatenated. Bases outside
    {A,C,G,T} (e.g. N calls) make a record invalid and are reported rather
    than silently dropped, since downstream stages assume clean strands. *)

type record = { id : string; seq : Strand.t }

type error = { line : int; message : string }

let parse_lines lines =
  let records = ref [] in
  let errors = ref [] in
  let cur_id = ref None in
  let cur_seq = Buffer.create 256 in
  let cur_line = ref 0 in
  let flush () =
    match !cur_id with
    | None -> ()
    | Some (id, line) ->
        (match Strand.of_string_opt (Buffer.contents cur_seq) with
        | Some seq -> records := { id; seq } :: !records
        | None -> errors := { line; message = "invalid base in record " ^ id } :: !errors);
        Buffer.clear cur_seq;
        cur_id := None
  in
  List.iter
    (fun raw ->
      incr cur_line;
      let line = String.trim raw in
      if line = "" then ()
      else if line.[0] = '>' then begin
        flush ();
        cur_id := Some (String.sub line 1 (String.length line - 1), !cur_line)
      end
      else
        match !cur_id with
        | None -> errors := { line = !cur_line; message = "sequence before header" } :: !errors
        | Some _ -> Buffer.add_string cur_seq (String.uppercase_ascii line))
    lines;
  flush ();
  (List.rev !records, List.rev !errors)

let parse_string s = parse_lines (String.split_on_char '\n' s)

(* Streaming fold: one record in memory at a time (header plus its
   accumulating sequence buffer), never the whole file as a line list.
   Semantics match [parse_lines] record for record. *)
let fold_channel ic ~init ~f =
  let errors = ref [] in
  let acc = ref init in
  let cur_id = ref None in
  let cur_seq = Buffer.create 256 in
  let cur_line = ref 0 in
  let flush () =
    match !cur_id with
    | None -> ()
    | Some (id, line) ->
        (match Strand.of_string_opt (Buffer.contents cur_seq) with
        | Some seq -> acc := f !acc { id; seq }
        | None -> errors := { line; message = "invalid base in record " ^ id } :: !errors);
        Buffer.clear cur_seq;
        cur_id := None
  in
  (try
     while true do
       let raw = input_line ic in
       incr cur_line;
       let line = String.trim raw in
       if line = "" then ()
       else if line.[0] = '>' then begin
         flush ();
         cur_id := Some (String.sub line 1 (String.length line - 1), !cur_line)
       end
       else
         match !cur_id with
         | None ->
             errors := { line = !cur_line; message = "sequence before header" } :: !errors
         | Some _ -> Buffer.add_string cur_seq (String.uppercase_ascii line)
     done
   with End_of_file -> ());
  flush ();
  (!acc, List.rev !errors)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> fold_channel ic ~init ~f)

let iter_file path ~f = fst (fold_file path ~init:() ~f:(fun () r -> f r))

let read_file path =
  let records, errors = fold_file path ~init:[] ~f:(fun acc r -> r :: acc) in
  (List.rev records, errors)

let to_string records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun { id; seq } ->
      Buffer.add_char buf '>';
      Buffer.add_string buf id;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Strand.to_string seq);
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write_file path records =
  let oc = open_out path in
  output_string oc (to_string records);
  close_out oc
