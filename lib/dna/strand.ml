(** An immutable DNA strand, stored 2-bit packed.

    Bases live as 0..3 codes packed 16 to a word in a flat int array
    (shift/mask index math — no division — with the top bits of every
    word clear), plus a base offset and length, so [sub] is an O(1)
    zero-copy view into the parent's words: primer stripping and
    trimming allocate a small view record, never a copy of the bases.
    Alongside the packed words, every strand carries a lazily-built
    cache of per-base 63-bit match masks — the [Eq] vectors of Myers'
    bit-parallel edit-distance kernels — derived directly from the
    packed words on first use and then reused across every pairwise
    comparison the strand participates in.

    Aliasing rule: the packed words are write-once — every constructor
    here (and the arena builder in {!Strand_pool}) only ever sets bits
    inside a region exactly once before publishing a view of it, so a
    view's bases never change even when later reads are packed into the
    unused bits of its last shared word. A view keeps its whole
    underlying buffer alive; copy with [of_string (to_string t)] (or
    {!Strand_pool.add_strand}) to detach a small slice from a large
    arena. The representation is private to this module; all
    construction goes through validating or generating functions. *)

type t = {
  words : int array;  (* 2-bit base codes, [bases_per_word] per word *)
  off : int;  (* index (in bases) of this strand's first base *)
  len : int;
  masks : int array Atomic.t;
      (* Eq-mask cache for the bit-parallel distance kernels; [||] until
         built. Publication goes through the Atomic so a strand shared
         across domains never observes a half-built array — the worst a
         race can cost is building the same masks twice. *)
}

let mask_bits = 63 (* bits per mask word: OCaml's native int width *)

let bases_per_word = 16
(* log2 bases_per_word, for shift-based index math. *)
let bpw_shift = 4
let bpw_mask = bases_per_word - 1

let words_for n = (n + bases_per_word - 1) lsr bpw_shift

let wrap words off len = { words; off; len; masks = Atomic.make [||] }

let unsafe_of_packed words ~off ~len = wrap words off len

let length t = t.len

let empty = wrap [||] 0 0

(* Absolute base index [j] of [words]; no bounds check. *)
let[@inline] code_at (words : int array) j =
  (Array.unsafe_get words (j lsr bpw_shift) lsr ((j land bpw_mask) * 2)) land 3

(* OR code [c] into absolute base slot [j]; the slot's bits must be 0. *)
let[@inline] poke (words : int array) j c =
  let w = j lsr bpw_shift in
  Array.unsafe_set words w (Array.unsafe_get words w lor (c lsl ((j land bpw_mask) * 2)))

let unsafe_get_code t i = code_at t.words (t.off + i)

let get_code t i =
  if i < 0 || i >= t.len then invalid_arg "Strand.get_code";
  unsafe_get_code t i

let get t i = Nucleotide.of_code (get_code t i)

let char_of_code = [| 'A'; 'C'; 'G'; 'T' |]

let code_of_char c =
  match c with
  | 'A' -> 0
  | 'C' -> 1
  | 'G' -> 2
  | 'T' -> 3
  | _ -> invalid_arg "Strand.code_of_char"

let of_string s =
  let n = String.length s in
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    let c =
      match String.unsafe_get s i with
      | 'A' -> 0
      | 'C' -> 1
      | 'G' -> 2
      | 'T' -> 3
      | c -> invalid_arg (Printf.sprintf "Strand.of_string: invalid base %C" c)
    in
    poke words i c
  done;
  wrap words 0 n

let of_string_opt s =
  match of_string s with t -> Some t | exception Invalid_argument _ -> None

let to_string t =
  String.init t.len (fun i -> Array.unsafe_get char_of_code (unsafe_get_code t i))

(* Eq masks are derived straight from the packed words: one word read
   per 16 bases, codes peeled off 2 bits at a time — no byte decode. *)
let build_masks t =
  let len = t.len in
  let words = (len + mask_bits - 1) / mask_bits in
  let m = Array.make (4 * words) 0 in
  let w = ref 0 and bit = ref 0 in
  let j = ref t.off in
  let cur = ref (if len > 0 then t.words.(!j lsr bpw_shift) lsr ((!j land bpw_mask) * 2) else 0) in
  for _ = 0 to len - 1 do
    let c = !cur land 3 in
    m.((c * words) + !w) <- m.((c * words) + !w) lor (1 lsl !bit);
    incr bit;
    if !bit = mask_bits then begin
      bit := 0;
      incr w
    end;
    incr j;
    if !j land bpw_mask = 0 then
      (if !j lsr bpw_shift < Array.length t.words then cur := t.words.(!j lsr bpw_shift))
    else cur := !cur lsr 2
  done;
  m

let eq_masks t =
  let m = Atomic.get t.masks in
  if Array.length m > 0 || t.len = 0 then m
  else begin
    let m = build_masks t in
    Atomic.set t.masks m;
    m
  end

let init_codes n f =
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    let c = f i in
    if c < 0 || c > 3 then invalid_arg "Strand.init_codes: code out of range";
    poke words i c
  done;
  wrap words 0 n

let init n f = init_codes n (fun i -> Nucleotide.to_code (f i))
let make n b = init_codes n (fun _ -> Nucleotide.to_code b)
let of_codes codes = init_codes (Array.length codes) (fun i -> codes.(i))
let to_codes t = Array.init t.len (fun i -> unsafe_get_code t i)

let of_nucleotides l =
  let arr = Array.of_list l in
  init_codes (Array.length arr) (fun i -> Nucleotide.to_code arr.(i))

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos > t.len - len then invalid_arg "Strand.sub";
  if len = 0 then empty else wrap t.words (t.off + pos) len

(* Append [len] bases starting at absolute base [soff] of [src] into
   [dst] at absolute base [dpos]; the destination bits must be 0. Whole
   words are copied directly when both sides sit on a word boundary. *)
let blit_packed (src : int array) soff (dst : int array) dpos len =
  if len > 0 then
    if soff land bpw_mask = 0 && dpos land bpw_mask = 0 then begin
      let full = len lsr bpw_shift in
      Array.blit src (soff lsr bpw_shift) dst (dpos lsr bpw_shift) full;
      let rem = len land bpw_mask in
      if rem > 0 then begin
        let tail = src.((soff lsr bpw_shift) + full) land ((1 lsl (2 * rem)) - 1) in
        dst.((dpos lsr bpw_shift) + full) <- dst.((dpos lsr bpw_shift) + full) lor tail
      end
    end
    else
      for k = 0 to len - 1 do
        poke dst (dpos + k) (code_at src (soff + k))
      done

(* The aligned blit above copies whole source words, which may carry
   neighbors' bits past [len] in the final word; mask them off there, so
   the write-once invariant (only this strand's bits set) holds. The
   tail masking inside blit_packed already guarantees it. *)

let concat ts =
  match ts with
  | [] -> empty
  | [ t ] -> t (* immutable: sharing is free *)
  | ts ->
      let total = List.fold_left (fun acc t -> acc + t.len) 0 ts in
      if total = 0 then empty
      else begin
        let words = Array.make (words_for total) 0 in
        let pos = ref 0 in
        List.iter
          (fun t ->
            blit_packed t.words t.off words !pos t.len;
            pos := !pos + t.len)
          ts;
        wrap words 0 total
      end

let append a b =
  (* Empty-operand fast paths: strands are immutable, share directly. *)
  if a.len = 0 then b
  else if b.len = 0 then a
  else begin
    let words = Array.make (words_for (a.len + b.len)) 0 in
    blit_packed a.words a.off words 0 a.len;
    blit_packed b.words b.off words a.len b.len;
    wrap words 0 (a.len + b.len)
  end

let rev t =
  let n = t.len in
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    poke words i (code_at t.words (t.off + n - 1 - i))
  done;
  wrap words 0 n

(* Complement is code xor 3 (A<->T, C<->G). *)
let complement t =
  let n = t.len in
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    poke words i (code_at t.words (t.off + i) lxor 3)
  done;
  wrap words 0 n

let reverse_complement t =
  let n = t.len in
  let words = Array.make (words_for n) 0 in
  for i = 0 to n - 1 do
    poke words i (code_at t.words (t.off + n - 1 - i) lxor 3)
  done;
  wrap words 0 n

let equal a b =
  a.len = b.len
  && (a.words == b.words && a.off = b.off
     ||
     let rec eq i =
       i >= a.len || (code_at a.words (a.off + i) = code_at b.words (b.off + i) && eq (i + 1))
     in
     eq 0)

(* Lexicographic by base code (the code order matches the A<C<G<T char
   order the byte-backed representation compared by), then by length. *)
let compare a b =
  let n = min a.len b.len in
  let rec go i =
    if i >= n then Stdlib.compare a.len b.len
    else begin
      let ca = code_at a.words (a.off + i) and cb = code_at b.words (b.off + i) in
      if ca <> cb then Stdlib.compare ca cb else go (i + 1)
    end
  in
  go 0

let hash t =
  let h = ref (t.len * 1000003) in
  for i = 0 to t.len - 1 do
    h := (!h * 131) + code_at t.words (t.off + i)
  done;
  !h land max_int

let iter f t =
  for i = 0 to t.len - 1 do
    f (Nucleotide.of_code (unsafe_get_code t i))
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Nucleotide.of_code (unsafe_get_code t i))
  done;
  !acc

let count t b =
  let c = Nucleotide.to_code b in
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if unsafe_get_code t i = c then incr n
  done;
  !n

(* Fraction of G and C bases; balanced GC-content aids synthesis. *)
let gc_content t =
  if t.len = 0 then 0.0
  else begin
    let gc = ref 0 in
    for i = 0 to t.len - 1 do
      let c = unsafe_get_code t i in
      if c = 1 || c = 2 then incr gc
    done;
    float_of_int !gc /. float_of_int t.len
  end

(* Length of the longest run of one repeated base. *)
let max_homopolymer t =
  let n = t.len in
  if n = 0 then 0
  else begin
    let best = ref 1 and run = ref 1 in
    for i = 1 to n - 1 do
      if unsafe_get_code t i = unsafe_get_code t (i - 1) then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 1
    done;
    !best
  end

let random rng n = init_codes n (fun _ -> Rng.int rng 4)

(* First occurrence of [pattern] in [t] at or after [from]; naive scan is
   fine at the anchor lengths (<= 8) used by clustering. *)
let find ?(from = 0) t ~pattern =
  let n = t.len and m = pattern.len in
  if m = 0 then Some from
  else begin
    let limit = n - m in
    let rec at i =
      if i > limit then None
      else begin
        let rec matches j =
          j >= m
          || code_at t.words (t.off + i + j) = code_at pattern.words (pattern.off + j)
             && matches (j + 1)
        in
        if matches 0 then Some i else at (i + 1)
      end
    in
    at (max 0 from)
  end

let contains t ~pattern = Option.is_some (find t ~pattern)

let pp fmt t = Format.pp_print_string fmt (to_string t)
