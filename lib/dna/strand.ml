(** An immutable DNA strand.

    Stored as raw bytes holding the characters 'A' 'C' 'G' 'T', which makes
    conversion to and from strings free while keeping integer-coded access
    ([get_code]) cheap for the hot loops in distance computation and
    alignment. Alongside the bases, every strand carries a lazily-built
    cache of per-base 63-bit match masks — the [Eq] vectors of Myers'
    bit-parallel edit-distance kernels — built once on first use and then
    reused across every pairwise comparison the strand participates in.
    The representation is private to this module; all construction goes
    through validating or generating functions. *)

type t = {
  bases : Bytes.t;
  masks : int array Atomic.t;
      (* Eq-mask cache for the bit-parallel distance kernels; [||] until
         built. Publication goes through the Atomic so a strand shared
         across domains never observes a half-built array — the worst a
         race can cost is building the same masks twice. *)
}

let mask_bits = 63 (* bits per mask word: OCaml's native int width *)

let wrap bases = { bases; masks = Atomic.make [||] }

let length t = Bytes.length t.bases

let empty = wrap Bytes.empty

let validate s =
  String.iter
    (fun c ->
      match c with
      | 'A' | 'C' | 'G' | 'T' -> ()
      | _ -> invalid_arg (Printf.sprintf "Strand.of_string: invalid base %C" c))
    s

let of_string s =
  validate s;
  wrap (Bytes.of_string s)

let of_string_opt s =
  match of_string s with t -> Some t | exception Invalid_argument _ -> None

let to_string t = Bytes.to_string t.bases

let get t i = Nucleotide.of_char (Bytes.get t.bases i)

let char_of_code = [| 'A'; 'C'; 'G'; 'T' |]

let code_of_char c =
  match c with
  | 'A' -> 0
  | 'C' -> 1
  | 'G' -> 2
  | 'T' -> 3
  | _ -> invalid_arg "Strand.code_of_char"

let get_code t i = code_of_char (Bytes.get t.bases i)

(* No bounds check; used by distance kernels. 'A'=65, 'C'=67, 'G'=71, 'T'=84. *)
let unsafe_code_at bases i =
  match Char.code (Bytes.unsafe_get bases i) with 65 -> 0 | 67 -> 1 | 71 -> 2 | _ -> 3

let unsafe_get_code t i = unsafe_code_at t.bases i

let build_masks bases =
  let len = Bytes.length bases in
  let words = (len + mask_bits - 1) / mask_bits in
  let m = Array.make (4 * words) 0 in
  for i = 0 to len - 1 do
    let c = unsafe_code_at bases i in
    let w = i / mask_bits in
    m.((c * words) + w) <- m.((c * words) + w) lor (1 lsl (i mod mask_bits))
  done;
  m

let eq_masks t =
  let m = Atomic.get t.masks in
  if Array.length m > 0 || Bytes.length t.bases = 0 then m
  else begin
    let m = build_masks t.bases in
    Atomic.set t.masks m;
    m
  end

let init n f = wrap (Bytes.init n (fun i -> Nucleotide.to_char (f i)))
let init_codes n f = wrap (Bytes.init n (fun i -> char_of_code.(f i)))
let make n b = wrap (Bytes.make n (Nucleotide.to_char b))

let of_codes codes = wrap (Bytes.init (Array.length codes) (fun i -> char_of_code.(codes.(i))))
let to_codes t = Array.init (length t) (fun i -> get_code t i)

let of_nucleotides l =
  let b = Buffer.create (List.length l) in
  List.iter (fun n -> Buffer.add_char b (Nucleotide.to_char n)) l;
  wrap (Bytes.of_string (Buffer.contents b))

let sub t ~pos ~len = wrap (Bytes.sub t.bases pos len)
let concat ts = wrap (Bytes.concat Bytes.empty (List.map (fun t -> t.bases) ts))
let append a b = wrap (Bytes.cat a.bases b.bases)

let rev t =
  let n = length t in
  wrap (Bytes.init n (fun i -> Bytes.get t.bases (n - 1 - i)))

let complement t =
  wrap (Bytes.map (fun c -> Nucleotide.(to_char (complement (of_char c)))) t.bases)

let reverse_complement t = rev (complement t)

let equal a b = Bytes.equal a.bases b.bases
let compare a b = Bytes.compare a.bases b.bases
let hash t = Hashtbl.hash (Bytes.to_string t.bases)

let iter f t = Bytes.iter (fun c -> f (Nucleotide.of_char c)) t.bases

let fold f init t =
  let acc = ref init in
  Bytes.iter (fun c -> acc := f !acc (Nucleotide.of_char c)) t.bases;
  !acc

let count t b =
  let c = Nucleotide.to_char b in
  let n = ref 0 in
  Bytes.iter (fun x -> if x = c then incr n) t.bases;
  !n

(* Fraction of G and C bases; balanced GC-content aids synthesis. *)
let gc_content t =
  if length t = 0 then 0.0
  else
    let gc = count t Nucleotide.G + count t Nucleotide.C in
    float_of_int gc /. float_of_int (length t)

(* Length of the longest run of one repeated base. *)
let max_homopolymer t =
  let n = length t in
  if n = 0 then 0
  else begin
    let best = ref 1 and run = ref 1 in
    for i = 1 to n - 1 do
      if Bytes.get t.bases i = Bytes.get t.bases (i - 1) then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 1
    done;
    !best
  end

let random rng n = wrap (Bytes.init n (fun _ -> char_of_code.(Rng.int rng 4)))

(* First occurrence of [pattern] in [t] at or after [from]; naive scan is
   fine at the anchor lengths (<= 8) used by clustering. *)
let find ?(from = 0) t ~pattern =
  let n = length t and m = length pattern in
  if m = 0 then Some from
  else begin
    let limit = n - m in
    let rec at i =
      if i > limit then None
      else begin
        let rec matches j =
          j >= m || (Bytes.get t.bases (i + j) = Bytes.get pattern.bases j && matches (j + 1))
        in
        if matches 0 then Some i else at (i + 1)
      end
    in
    at (max 0 from)
  end

let contains t ~pattern = Option.is_some (find t ~pattern)

let pp fmt t = Format.pp_print_string fmt (to_string t)
