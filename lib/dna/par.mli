(** Domain-based parallel execution for the clustering, reconstruction
    and simulation stages, and the single configuration point for the
    toolkit's parallelism.

    Guarantees, for every entry point:

    - chunk assignment is balanced and never produces an empty range,
      so ragged shapes (e.g. 5 items across 4 domains) are safe;
    - results are order-preserving and — for pure task functions —
      identical for every worker count;
    - execution runs on a pool of long-lived worker domains, spawned
      once and reused across regions (per-domain scratch arenas and
      caches survive), never more of them than the hardware can run;
      the submitting domain executes chunks too, and a region entered
      from inside a task runs serially, so nested parallelism cannot
      oversubscribe the machine;
    - a failing chunk never orphans its siblings: every chunk of a
      region still runs before the first failure (in submission order)
      is re-raised;
    - with [domains = 1] execution degrades to the plain serial loop,
      bit-identical to not using this module at all.

    Task functions run on separate domains when [domains > 1]; they must
    not share unsynchronized mutable state. For stochastic tasks use
    {!map_array_rng} or {!split_rngs}, which derive one independent
    stream per task in index order so output is independent of the
    worker count. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1: a sensible
    worker count that leaves one core for the coordinating domain. *)

val set_default_domains : int -> unit
(** Set the process-wide worker count used when [?domains] is omitted
    (clamped to at least 1). The initial default is 1 — serial — so
    parallelism is always opted into; pass
    [set_default_domains (recommended_domains ())] to use all cores. *)

val default_domains : unit -> int
(** The current process-wide default worker count. *)

val pool_size : unit -> int
(** Worker domains currently alive in the pool. 0 until the first
    region wide enough to need one (and always 0 on a single-core
    machine, where every region runs on the submitting domain). *)

val shutdown_pool : unit -> unit
(** Stop and join every pool worker. Idempotent; registered with
    [at_exit] automatically on first spawn, so programs never need to
    call it — tests use it to prove the pool restarts cleanly. A later
    parallel region simply respawns workers. *)

val map_array : ?label:string -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. *)

val mapi_array : ?label:string -> ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map_array] with the element index. *)

val iter_array : ?label:string -> ?domains:int -> ('a -> unit) -> 'a array -> unit
(** Apply an effectful function to every element; the function must be
    safe to call from multiple domains. *)

val chunked_map : ?label:string -> ?domains:int -> ('a array -> 'b) -> 'a array -> 'b array
(** Apply [f] once per worker to that worker's contiguous chunk,
    returning per-chunk results in order. The result has
    [min domains (Array.length arr)] elements (0 for an empty input);
    chunks concatenated in order reconstitute the input. Useful when
    per-task dispatch would dominate, e.g. tight numeric loops. *)

val map_reduce :
  ?label:string ->
  ?domains:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  init:'b ->
  'a array ->
  'b
(** Map every element and fold the results. Within a chunk the fold is
    left-to-right, and chunk results are folded left-to-right onto
    [init]; when [combine] is associative the result is identical for
    every worker count. *)

val split_rngs : Rng.t -> int -> Rng.t array
(** [split_rngs rng k] derives [k] independent streams off [rng],
    splitting serially in index order — the result depends only on the
    parent's state, never on worker count. Advances the parent. *)

val map_array_rng :
  ?label:string -> ?domains:int -> rng:Rng.t -> (Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** Parallel map where each element receives its own stream split off
    [rng] in index order: deterministic given the parent's state,
    independent of [domains]. Advances the parent once per element. *)

(** {1 Instrumentation}

    Every parallel region (including the serial [domains = 1] path)
    accumulates lightweight counters under its [?label]:
    regions entered, tasks run, and wall-clock seconds. The benchmark
    harness renders them with [Core.Report.par_counters]. *)

type counter = { label : string; regions : int; tasks : int; wall_s : float }

val counters : unit -> counter list
(** A snapshot of all counters, sorted by label. *)

val reset_counters : unit -> unit
