(** Domain-based parallel mapping for the clustering and reconstruction
    stages. With [domains = 1] it degrades to a plain map, which tests
    use for determinism. *)

val default_domains : unit -> int
(** [recommended_domain_count () - 1], at least 1. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. *)

val mapi_array : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
