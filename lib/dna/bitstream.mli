(** Packing binary data into bases and back: unconstrained coding maps
    two bits per nucleotide, most significant bit pair first. *)

val strand_of_bytes : Bytes.t -> Strand.t
(** Four bases per byte. *)

val bytes_of_strand : Strand.t -> Bytes.t
(** Inverse of {!strand_of_bytes}; raises [Invalid_argument] when the
    length is not a multiple of 4. *)

(** Bit-level writer for arbitrary-width fields (index headers). *)
module Writer : sig
  type t

  val create : unit -> t

  val add : t -> width:int -> int -> unit
  (** Append the low [width] bits (at most 30) of the value, most
      significant first. Raises [Invalid_argument] when the value does
      not fit. *)

  val to_bytes : t -> Bytes.t
  (** Zero-pads the tail to a whole byte. *)
end

(** Bit-level reader matching {!Writer}. *)
module Reader : sig
  type t

  val create : Bytes.t -> t

  val read : t -> width:int -> int
  (** Raises [Failure] when fewer than [width] bits remain. *)

  val remaining_bits : t -> int
end
