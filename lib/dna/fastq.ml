(** Minimal FASTQ reading and writing (Section VIII: handling wetlab data).

    Four lines per record: [@id], sequence, [+], Phred qualities. Quality
    strings use the Sanger offset (33). Sequencers emit reads in both
    orientations and with occasional non-ACGT calls; parsing therefore
    returns per-record results instead of failing wholesale. *)

type record = { id : string; seq : Strand.t; qual : int array }

type error = { line : int; message : string }

let phred_offset = 33

let qual_of_string_opt s =
  if String.exists (fun c -> c < '!') s then None
  else Some (Array.init (String.length s) (fun i -> Char.code s.[i] - phred_offset))

let qual_of_string s =
  match qual_of_string_opt s with
  | Some q -> q
  | None -> invalid_arg "Fastq.qual_of_string: quality character below '!'"

let qual_to_string q =
  String.init (Array.length q) (fun i -> Char.chr (min 93 (max 0 q.(i)) + phred_offset))

let parse_lines lines =
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let records = ref [] in
  let errors = ref [] in
  let i = ref 0 in
  (* Skip trailing blank lines between records. *)
  while !i < n do
    let line = String.trim arr.(!i) in
    if line = "" then incr i
    else if line.[0] <> '@' then begin
      errors := { line = !i + 1; message = "expected @header" } :: !errors;
      incr i
    end
    else if !i + 3 >= n then begin
      errors := { line = !i + 1; message = "truncated record" } :: !errors;
      i := n
    end
    else begin
      let id = String.sub line 1 (String.length line - 1) in
      let seq_s = String.trim arr.(!i + 1) in
      let plus = String.trim arr.(!i + 2) in
      let qual_s = String.trim arr.(!i + 3) in
      if String.length plus = 0 || plus.[0] <> '+' then
        errors := { line = !i + 3; message = "expected + separator" } :: !errors
      else if String.length seq_s <> String.length qual_s then
        errors := { line = !i + 4; message = "quality length mismatch" } :: !errors
      else begin
        match Strand.of_string_opt (String.uppercase_ascii seq_s) with
        | Some seq -> (
            (* A character below '!' would decode to a negative Phred
               score; reject the record rather than emit one. *)
            match qual_of_string_opt qual_s with
            | Some qual -> records := { id; seq; qual } :: !records
            | None ->
                errors :=
                  { line = !i + 4; message = "invalid quality character in read " ^ id }
                  :: !errors)
        | None ->
            errors := { line = !i + 2; message = "invalid base in read " ^ id } :: !errors
      end;
      i := !i + 4
    end
  done;
  (List.rev !records, List.rev !errors)

let parse_string s = parse_lines (String.split_on_char '\n' s)

(* Streaming fold: one record in memory at a time, so multi-gigabyte
   read sets never materialize as a line list. Semantics match
   [parse_lines] record for record. *)
let fold_channel ic ~init ~f =
  let errors = ref [] in
  let acc = ref init in
  let lineno = ref 0 in
  let next () =
    match input_line ic with
    | line ->
        incr lineno;
        Some (String.trim line)
    | exception End_of_file -> None
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some "" -> loop ()
    | Some line when line.[0] <> '@' ->
        errors := { line = !lineno; message = "expected @header" } :: !errors;
        loop ()
    | Some line -> (
        let header_line = !lineno in
        let id = String.sub line 1 (String.length line - 1) in
        match next () with
        | None -> errors := { line = header_line; message = "truncated record" } :: !errors
        | Some seq_s -> (
            match next () with
            | None ->
                errors := { line = header_line; message = "truncated record" } :: !errors
            | Some plus -> (
                match next () with
                | None ->
                    errors := { line = header_line; message = "truncated record" } :: !errors
                | Some qual_s ->
                    if String.length plus = 0 || plus.[0] <> '+' then
                      errors :=
                        { line = !lineno - 1; message = "expected + separator" } :: !errors
                    else if String.length seq_s <> String.length qual_s then
                      errors :=
                        { line = !lineno; message = "quality length mismatch" } :: !errors
                    else begin
                      match Strand.of_string_opt (String.uppercase_ascii seq_s) with
                      | Some seq -> (
                          match qual_of_string_opt qual_s with
                          | Some qual -> acc := f !acc { id; seq; qual }
                          | None ->
                              errors :=
                                {
                                  line = !lineno;
                                  message = "invalid quality character in read " ^ id;
                                }
                                :: !errors)
                      | None ->
                          errors :=
                            { line = !lineno - 2; message = "invalid base in read " ^ id }
                            :: !errors
                    end;
                    loop ())))
  in
  loop ();
  (!acc, List.rev !errors)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> fold_channel ic ~init ~f)

let iter_file path ~f = fst (fold_file path ~init:() ~f:(fun () r -> f r))

let read_file path =
  let records, errors = fold_file path ~init:[] ~f:(fun acc r -> r :: acc) in
  (List.rev records, errors)

let to_string records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun { id; seq; qual } ->
      Buffer.add_char buf '@';
      Buffer.add_string buf id;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Strand.to_string seq);
      Buffer.add_string buf "\n+\n";
      Buffer.add_string buf (qual_to_string qual);
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write_file path records =
  let oc = open_out path in
  output_string oc (to_string records);
  close_out oc

(* Synthesize a uniform quality track for simulated reads. *)
let with_uniform_quality ~q seq = Array.make (Strand.length seq) q
