(** Structure-of-arrays arena for reads.

    One grow-only 2-bit-packed buffer plus per-read offset/length
    tables: a million reads cost three flat int arrays instead of a
    million boxed strands. [get] returns zero-copy {!Strand} views into
    the buffer.

    Aliasing rules:
    - committed reads are write-once — no operation ever changes their
      bases, so views stay correct for the pool's lifetime;
    - growth swaps in a larger buffer; views minted {e before} a growth
      keep the old (still-correct) array alive but no longer alias the
      pool, so mint views after all appends when identity matters;
    - neighbouring reads may share a word at their boundary; views are
      range-limited, so this is invisible to readers;
    - the pool is single-writer. Concurrent {e reads} (including from
      other domains) are safe once appending has stopped.

    The open-read builder ([emit] … [commit]) lets simulator channels
    stream corrupted bases into the arena without knowing the read's
    final length, with [truncate_open]/[rollback] for truncation events
    and [revcomp_open] for strand orientation — all in place. *)

type t

val create : ?capacity_bases:int -> ?capacity_reads:int -> unit -> t
val length : t -> int
(** Committed reads. *)

val total_bases : t -> int
(** Total bases across committed reads. *)

val clear : t -> unit
(** Forget all reads, keeping capacity. Outstanding views still read
    their old bases only until the buffer is refilled — [clear] is for
    batch reuse where no views outlive the batch. *)

(** {2 Open-read builder} *)

val emit : t -> int -> unit
(** Append one base code (low 2 bits) to the open read. *)

val open_length : t -> int
val truncate_open : t -> int -> unit
(** Keep only the first [len] bases of the open read. *)

val rollback : t -> unit
(** Discard the open read entirely. *)

val revcomp_open : t -> unit
(** Reverse-complement the open read in place. *)

val commit : t -> int
(** Seal the open read; returns its index. The next [emit] starts a new
    read. Committing with nothing emitted records an empty read. *)

(** {2 Whole-read appends} *)

val add_codes : t -> int array -> int
val add_strand : t -> Strand.t -> int
val add_string : t -> string -> int
(** Each appends one read and returns its index; [add_string] validates
    via {!Strand.code_of_char}. *)

(** {2 Access} *)

val read_length : t -> int -> int
val get : t -> int -> Strand.t
(** Zero-copy view of read [i]. *)

val unsafe_get : t -> int -> Strand.t
(** [get] without the bounds check; for inner loops. *)

val swap : t -> int -> int -> unit
(** Exchange two reads' table entries (permutes identity, not bases) —
    lets {!Rng.shuffle_in_place}-style shuffles work on the pool. *)

val permute : t -> ?from:int -> int array -> unit
(** [permute t ~from perm] reorders reads [from, from + length perm):
    the read ending up at position [from + i] is the one that was at
    [from + perm.(i)]. [perm] must be a permutation of [0..n-1]. *)

val iter : (int -> Strand.t -> unit) -> t -> unit
val to_array : t -> Strand.t array
(** Views for all reads (one small record per read; bases stay shared). *)

val of_strands : Strand.t array -> t
(** A fresh pool holding copies of [strands], in order — the bridge
    back into arena form after a boxed transform (e.g. fault injection)
    rewrote some reads. *)
