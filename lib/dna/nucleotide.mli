(** The four DNA bases. *)

type t = A | C | G | T

val all : t array
(** [|A; C; G; T|], indexed by {!to_code}. *)

val to_char : t -> char
(** 'A', 'C', 'G' or 'T'. *)

val of_char : char -> t
(** Parses either case; raises [Invalid_argument] on other characters. *)

val of_char_opt : char -> t option

val to_code : t -> int
(** A = 0, C = 1, G = 2, T = 3 — so that {!complement} is [3 - code]. *)

val of_code : int -> t
(** Inverse of {!to_code}; raises [Invalid_argument] outside [0..3]. *)

val complement : t -> t
(** Watson-Crick complement: A<->T, C<->G. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val random : Rng.t -> t
(** A uniform base. *)

val random_other : Rng.t -> t -> t
(** A uniform base different from the argument; used by substitution
    channels. *)

val pp : Format.formatter -> t -> unit
