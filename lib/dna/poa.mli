(** Partial-order alignment (POA) graphs, after Lee, Grasso & Sharlow
    (2002) — the pure-OCaml stand-in for spoa.

    Reads are folded one at a time into a DAG whose nodes carry a base
    and a support count; aligned alternatives form column cliques.
    Alignment is band-limited (spoa-style): each graph node scores only
    the read positions within [band] of its shortest/longest
    source-path depths, over flat per-domain scratch arrays, falling
    back to the unpruned DP whenever the banded score is not
    certifiably exact — so the fused graph is always bit-identical to
    the unpruned one. *)

type t

val create : unit -> t
val node_count : t -> int

val add : ?band:int -> t -> Strand.t -> unit
(** Globally align the read against the graph (unit costs, generalized
    Needleman-Wunsch over the DAG) and fuse it: matches reinforce
    existing nodes, mismatches join their column's alignment clique,
    insertions add fresh nodes. The first read seeds the backbone.
    [band] (clamped to at least 1; default {!Alignment.default_band})
    prunes scoring to a window around each node's topological position;
    the graph produced is identical for every band. *)

val add_first : t -> Strand.t -> unit
(** Insert a read as a simple chain (what [add] does on an empty graph). *)

val consensus_with_support : ?penalty:int -> t -> int array * int array
(** Maximum-weight path through the graph, scoring each node by its
    support minus [penalty] (default 0). Returns base codes and
    per-position support. *)

val consensus : t -> Strand.t
(** [consensus g] is the heaviest path's bases. *)

val consensus_columns : ?n_reads:int -> t -> int array * int array
(** Column-wise consensus: alignment cliques are the columns of the
    multiple sequence alignment; each column takes a majority vote and
    is kept when at least half of [n_reads] placed a base there (all
    columns are kept when [n_reads] is 0). Stable as coverage grows. *)

val of_reads : ?band:int -> Strand.t list -> t
