(* Structure-of-arrays arena for reads: one grow-only packed 2-bit
   buffer plus per-read offset/length tables. Reads are appended
   back-to-back, so a million reads cost three flat arrays instead of a
   million boxed strands, and [get] hands out zero-copy Strand views.

   Write-once discipline: a read's bits are set exactly once (emit ORs
   codes into zeroed slots) before [commit] publishes it, and nothing
   ever rewrites a committed read. Growth replaces the buffer with a
   copy, so views minted before a growth stay valid — they keep the old
   array alive — but they stop aliasing the pool; mint views after all
   appends when identity matters. At most one read is open at a time. *)

type t = {
  mutable words : int array;  (* packed codes, Strand.bases_per_word per word *)
  mutable bases : int;  (* bases used in [words], committed + open *)
  mutable offs : int array;  (* base offset of read i *)
  mutable lens : int array;  (* length of read i *)
  mutable n : int;  (* committed reads *)
  mutable open_start : int;  (* = bases when no read is open *)
}

let bpw = Strand.bases_per_word

(* Shift/mask forms of /bpw and mod bpw for the per-base hot path. *)
let bpw_shift = 4
let bpw_mask = bpw - 1
let () = assert (bpw = 1 lsl bpw_shift)
let words_for b = (b + bpw_mask) lsr bpw_shift

let create ?(capacity_bases = 1 lsl 16) ?(capacity_reads = 1024) () =
  {
    words = Array.make (max 1 (words_for capacity_bases)) 0;
    bases = 0;
    offs = Array.make (max 1 capacity_reads) 0;
    lens = Array.make (max 1 capacity_reads) 0;
    n = 0;
    open_start = 0;
  }

let length t = t.n
let total_bases t = t.open_start

let clear t =
  (* Reset without shrinking; zero the buffer so emit's OR discipline
     holds for the next fill. *)
  Array.fill t.words 0 (Array.length t.words) 0;
  t.bases <- 0;
  t.n <- 0;
  t.open_start <- 0

let grow_words t needed_bases =
  let need = words_for needed_bases in
  if need > Array.length t.words then begin
    let cap = ref (max 1 (Array.length t.words)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let words = Array.make !cap 0 in
    Array.blit t.words 0 words 0 (words_for t.bases);
    t.words <- words
  end

let grow_reads t =
  if t.n >= Array.length t.offs then begin
    let cap = 2 * Array.length t.offs in
    let offs = Array.make cap 0 and lens = Array.make cap 0 in
    Array.blit t.offs 0 offs 0 t.n;
    Array.blit t.lens 0 lens 0 t.n;
    t.offs <- offs;
    t.lens <- lens
  end

(* Open-read builder: channels emit corrupted bases one at a time
   without knowing the final read length up front. *)

let[@inline] emit t c =
  let j = t.bases in
  if j >= Array.length t.words lsl bpw_shift then grow_words t (j + 1);
  let w = j lsr bpw_shift in
  t.words.(w) <- t.words.(w) lor ((c land 3) lsl ((j land bpw_mask) * 2));
  t.bases <- j + 1

let open_length t = t.bases - t.open_start

(* Drop the open read's tail down to [len] bases, zeroing the orphaned
   slots (emit ORs, so abandoned bits must not linger). *)
let truncate_open t len =
  if len < 0 || len > open_length t then invalid_arg "Strand_pool.truncate_open";
  let keep = t.open_start + len in
  for j = keep to t.bases - 1 do
    let w = j lsr bpw_shift in
    t.words.(w) <- t.words.(w) land lnot (3 lsl ((j land bpw_mask) * 2))
  done;
  t.bases <- keep

let rollback t = truncate_open t 0

(* Reverse-complement the open read in place (sequencing strand
   orientation is decided after the read is built). *)
let revcomp_open t =
  let lo = t.open_start and n = open_length t in
  let half = n / 2 in
  let get j = (t.words.(j lsr bpw_shift) lsr ((j land bpw_mask) * 2)) land 3 in
  let set j c =
    let w = j lsr bpw_shift and sh = (j land bpw_mask) * 2 in
    t.words.(w) <- t.words.(w) land lnot (3 lsl sh) lor (c lsl sh)
  in
  for k = 0 to half - 1 do
    let a = get (lo + k) and b = get (lo + n - 1 - k) in
    set (lo + k) (b lxor 3);
    set (lo + n - 1 - k) (a lxor 3)
  done;
  if n land 1 = 1 then begin
    let mid = lo + half in
    set mid (get mid lxor 3)
  end

let commit t =
  grow_reads t;
  let i = t.n in
  t.offs.(i) <- t.open_start;
  t.lens.(i) <- t.bases - t.open_start;
  t.n <- i + 1;
  t.open_start <- t.bases;
  i

let add_codes t codes =
  Array.iter (fun c -> emit t c) codes;
  commit t

let add_strand t s =
  let n = Strand.length s in
  grow_words t (t.bases + n);
  for i = 0 to n - 1 do
    emit t (Strand.unsafe_get_code s i)
  done;
  commit t

let add_string t s =
  String.iter (fun ch -> emit t (Strand.code_of_char ch)) s;
  commit t

let read_length t i =
  if i < 0 || i >= t.n then invalid_arg "Strand_pool.read_length";
  t.lens.(i)

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Strand_pool.get";
  Strand.unsafe_of_packed t.words ~off:t.offs.(i) ~len:t.lens.(i)

let unsafe_get t i = Strand.unsafe_of_packed t.words ~off:t.offs.(i) ~len:t.lens.(i)

(* Swap two reads' table entries (shuffles permute offsets, not bases). *)
let swap t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Strand_pool.swap";
  let oi = t.offs.(i) and li = t.lens.(i) in
  t.offs.(i) <- t.offs.(j);
  t.lens.(i) <- t.lens.(j);
  t.offs.(j) <- oi;
  t.lens.(j) <- li

(* Reorder reads [from, from + |perm|) so the read now at position
   [from + i] is the one that was at [from + perm.(i)]. Offsets move;
   bases stay put. *)
let permute t ?(from = 0) perm =
  let n = Array.length perm in
  if from < 0 || from + n > t.n then invalid_arg "Strand_pool.permute";
  let offs = Array.init n (fun i -> t.offs.(from + perm.(i))) in
  let lens = Array.init n (fun i -> t.lens.(from + perm.(i))) in
  Array.blit offs 0 t.offs from n;
  Array.blit lens 0 t.lens from n

let iter f t =
  for i = 0 to t.n - 1 do
    f i (unsafe_get t i)
  done

let to_array t = Array.init t.n (fun i -> unsafe_get t i)

let of_strands (strands : Strand.t array) =
  let bases = Array.fold_left (fun acc s -> acc + Strand.length s) 0 strands in
  let t =
    create ~capacity_bases:(max 1 bases) ~capacity_reads:(max 1 (Array.length strands)) ()
  in
  Array.iter (fun s -> ignore (add_strand t s)) strands;
  t
