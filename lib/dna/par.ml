(** Domain-based parallel mapping.

    The paper stresses that clustering and reconstruction must scale
    across cores (Section IX). This helper fans array chunks out to
    [domains] worker domains; with [domains = 1] it degrades to a plain
    map, which tests use for full determinism. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let map_array ?(domains = default_domains ()) f (arr : 'a array) : 'b array =
  let n = Array.length arr in
  if n = 0 then [||]
  else if domains <= 1 || n < 2 then Array.map f arr
  else begin
    let workers = min domains n in
    let chunk = (n + workers - 1) / workers in
    let spawn w =
      let lo = w * chunk in
      let hi = min n (lo + chunk) in
      Domain.spawn (fun () -> Array.init (hi - lo) (fun i -> f arr.(lo + i)))
    in
    let handles = List.init workers spawn in
    let parts = List.map Domain.join handles in
    Array.concat parts
  end

(* Parallel [iteri]-style fold: apply [f] to every element, collecting the
   results in submission order. *)
let mapi_array ?domains f arr =
  let indexed = Array.mapi (fun i x -> (i, x)) arr in
  map_array ?domains (fun (i, x) -> f i x) indexed
