(** Domain-based parallel execution for the clustering, reconstruction
    and simulation stages.

    The paper stresses that clustering and reconstruction must scale
    across cores (Section IX). This module fans balanced array chunks
    out to a pool of long-lived worker domains and is the single
    configuration point for the toolkit's parallelism:

    - chunk assignment is balanced (chunk sizes differ by at most one)
      and never produces an empty or negative range, so ragged shapes
      such as 5 items across 4 domains are safe;
    - workers are spawned once and reused: a parallel region costs a
      queue push, not a [Domain.spawn]/[Domain.join] round trip, and
      per-domain scratch state ([Domain.DLS] arenas, cached strand
      masks) survives from one region to the next;
    - the pool never holds more worker domains than the hardware can
      run ([Domain.recommended_domain_count () - 1]; the submitting
      domain works too), so [~domains:8] on a 2-core box executes 8
      balanced chunks on 2 domains instead of oversubscribing — and
      regions entered from inside a task run serially, so nested
      parallelism cannot multiply domains;
    - a failing chunk never orphans its siblings: every chunk of a
      region runs before the first failure (in submission order) is
      re-raised;
    - [split_rngs] / [map_array_rng] give each task its own
      deterministic random stream, so stochastic stages produce the
      same output for every worker count;
    - every parallel region is counted (regions entered, tasks run,
      wall time) under a caller-supplied label, surfaced through
      [counters] and rendered by [Core.Report.par_counters].

    With [domains = 1] every entry point degrades to the plain serial
    loop, which tests use for bit-exact determinism. *)

let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* The process-wide default worker count, used whenever a [?domains]
   argument is omitted anywhere in the toolkit. Serial by default so
   that results are reproducible unless parallelism is asked for. *)
let default = Atomic.make 1

let set_default_domains n = Atomic.set default (max 1 n)
let default_domains () = Atomic.get default

(* ---------- counters ---------- *)

type counter = { label : string; regions : int; tasks : int; wall_s : float }

type counter_cell = {
  mutable c_regions : int;
  mutable c_tasks : int;
  mutable c_wall_s : float;
}

let counters_lock = Mutex.create ()
let counters_tbl : (string, counter_cell) Hashtbl.t = Hashtbl.create 16

let record ~label ~tasks ~wall_s =
  Mutex.lock counters_lock;
  let cell =
    match Hashtbl.find_opt counters_tbl label with
    | Some c -> c
    | None ->
        let c = { c_regions = 0; c_tasks = 0; c_wall_s = 0.0 } in
        Hashtbl.add counters_tbl label c;
        c
  in
  cell.c_regions <- cell.c_regions + 1;
  cell.c_tasks <- cell.c_tasks + tasks;
  cell.c_wall_s <- cell.c_wall_s +. wall_s;
  Mutex.unlock counters_lock

let counters () =
  Mutex.lock counters_lock;
  let out =
    Hashtbl.fold
      (fun label c acc ->
        { label; regions = c.c_regions; tasks = c.c_tasks; wall_s = c.c_wall_s } :: acc)
      counters_tbl []
  in
  Mutex.unlock counters_lock;
  List.sort (fun a b -> compare a.label b.label) out

let reset_counters () =
  Mutex.lock counters_lock;
  Hashtbl.reset counters_tbl;
  Mutex.unlock counters_lock

(* ---------- the long-lived worker pool ---------- *)

(* A region is one parallel map: [n_chunks] pre-assigned balanced
   chunks, claimed one at a time through [next] by whoever has spare
   cycles — pool workers and the submitting domain alike. Chunk
   outcomes (result or exception) land in the region's own array, so a
   failing chunk is recorded, never propagated mid-region. *)
type region = {
  n_chunks : int;
  next : int Atomic.t;  (** next unclaimed chunk *)
  completed : int Atomic.t;
  run_chunk : int -> unit;  (** executes chunk [i]; must not raise *)
}

let pool_lock = Mutex.create ()
let pool_cond = Condition.create ()

(* Regions with unclaimed chunks. Exhausted regions are popped lazily
   by whoever finds them at the front. *)
let pool_queue : region Queue.t = Queue.create ()
let pool_stop = ref false
let pool_handles : unit Domain.t list ref = ref []
let pool_spawned = Atomic.make 0

(* True while this domain is executing a region chunk (worker or
   submitter): regions entered from such a context run serially, so
   nested parallelism never multiplies domains or deadlocks the pool. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let exhausted r = Atomic.get r.next >= r.n_chunks
let region_done r = Atomic.get r.completed >= r.n_chunks

(* Claim and run chunks until the region has none left. Completion of
   the last chunk is announced on [pool_cond] for the submitter. *)
let help_region r =
  let previously = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  let rec claim () =
    let i = Atomic.fetch_and_add r.next 1 in
    if i < r.n_chunks then begin
      r.run_chunk i;
      let completed = 1 + Atomic.fetch_and_add r.completed 1 in
      if completed = r.n_chunks then begin
        Mutex.lock pool_lock;
        Condition.broadcast pool_cond;
        Mutex.unlock pool_lock
      end;
      claim ()
    end
  in
  claim ();
  Domain.DLS.set in_task previously

let worker_loop () =
  let rec loop () =
    Mutex.lock pool_lock;
    let rec await () =
      (* Drop exhausted regions so the queue never pins dead work. *)
      while (not (Queue.is_empty pool_queue)) && exhausted (Queue.peek pool_queue) do
        ignore (Queue.pop pool_queue)
      done;
      if Queue.is_empty pool_queue && not !pool_stop then begin
        Condition.wait pool_cond pool_lock;
        await ()
      end
    in
    await ();
    if Queue.is_empty pool_queue then (* stop requested *)
      Mutex.unlock pool_lock
    else begin
      let r = Queue.peek pool_queue in
      Mutex.unlock pool_lock;
      help_region r;
      loop ()
    end
  in
  loop ()

let shutdown_pool () =
  Mutex.lock pool_lock;
  pool_stop := true;
  Condition.broadcast pool_cond;
  let handles = !pool_handles in
  pool_handles := [];
  Mutex.unlock pool_lock;
  List.iter Domain.join handles;
  Mutex.lock pool_lock;
  pool_stop := false;
  Atomic.set pool_spawned 0;
  Mutex.unlock pool_lock

let pool_size () = Atomic.get pool_spawned

(* The pool never exceeds the hardware: the submitting domain counts as
   one executor, so at most [recommended_domain_count - 1] workers. *)
let max_workers () = max 0 (Domain.recommended_domain_count () - 1)

let at_exit_registered = Atomic.make false

let ensure_workers wanted =
  let wanted = min wanted (max_workers ()) in
  if Atomic.get pool_spawned < wanted then begin
    Mutex.lock pool_lock;
    if not (Atomic.compare_and_set at_exit_registered false true) then ()
    else Stdlib.at_exit shutdown_pool;
    while Atomic.get pool_spawned < wanted do
      pool_handles := Domain.spawn worker_loop :: !pool_handles;
      Atomic.incr pool_spawned
    done;
    Mutex.unlock pool_lock
  end

(* ---------- core machinery ---------- *)

(* Balanced contiguous ranges: the first [n mod workers] chunks carry one
   extra element. Requires workers <= n, so no range is ever empty. *)
let chunk_ranges ~workers n =
  let base = n / workers and rem = n mod workers in
  Array.init workers (fun w ->
      let lo = (w * base) + min w rem in
      let len = base + if w < rem then 1 else 0 in
      (lo, len))

(* Apply [chunk_f lo len] to balanced ranges. Chunk results come back in
   range order. The chunk count depends only on [domains] and [n] —
   never on the hardware — so result shapes (and [chunked_map] output)
   are stable across machines; only the execution width adapts. Every
   chunk runs even if an earlier one raises; the first failure in chunk
   order is re-raised once the region is complete. *)
let run_chunks ~domains ~n chunk_f =
  if n = 0 then []
  else
    let chunks = max 1 (min domains n) in
    let serial () =
      let outcomes =
        Array.map
          (fun (lo, len) -> try Ok (chunk_f lo len) with e -> Error e)
          (chunk_ranges ~workers:chunks n)
      in
      Array.to_list (Array.map (function Ok v -> v | Error e -> raise e) outcomes)
    in
    if chunks = 1 || Domain.DLS.get in_task then serial ()
    else begin
      ensure_workers (chunks - 1);
      if pool_size () = 0 then serial ()
      else begin
        let ranges = chunk_ranges ~workers:chunks n in
        let outcomes = Array.make chunks None in
        let region =
          {
            n_chunks = chunks;
            next = Atomic.make 0;
            completed = Atomic.make 0;
            run_chunk =
              (fun i ->
                let lo, len = ranges.(i) in
                outcomes.(i) <- (try Some (Ok (chunk_f lo len)) with e -> Some (Error e)));
          }
        in
        Mutex.lock pool_lock;
        Queue.push region pool_queue;
        Condition.broadcast pool_cond;
        Mutex.unlock pool_lock;
        (* The submitter is an executor too: claim chunks alongside the
           workers, then wait out any straggler. *)
        help_region region;
        Mutex.lock pool_lock;
        while not (region_done region) do
          Condition.wait pool_cond pool_lock
        done;
        Mutex.unlock pool_lock;
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error e) -> raise e
               | None -> assert false (* region_done implies every slot is filled *))
             outcomes)
      end
    end

let timed ~label ~tasks f =
  let t0 = Unix.gettimeofday () in
  let finish () = record ~label ~tasks ~wall_s:(Unix.gettimeofday () -. t0) in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

(* ---------- public entry points ---------- *)

let map_array ?(label = "par.map") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len -> Array.init len (fun i -> f arr.(lo + i)))))

let mapi_array ?(label = "par.mapi") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len ->
             Array.init len (fun i -> f (lo + i) arr.(lo + i)))))

let iter_array ?(label = "par.iter") ?domains f (arr : 'a array) : unit =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      ignore
        (run_chunks ~domains ~n (fun lo len ->
             for i = lo to lo + len - 1 do
               f arr.(i)
             done)))

let chunked_map ?(label = "par.chunked") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.of_list (run_chunks ~domains ~n (fun lo len -> f (Array.sub arr lo len))))

let map_reduce ?(label = "par.map_reduce") ?domains ~map ~combine ~init (arr : 'a array) : 'b
    =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      let parts =
        run_chunks ~domains ~n (fun lo len ->
            let acc = ref (map arr.(lo)) in
            for i = lo + 1 to lo + len - 1 do
              acc := combine !acc (map arr.(i))
            done;
            !acc)
      in
      List.fold_left combine init parts)

(* ---------- deterministic parallel randomness ---------- *)

(* Streams are split off the parent serially, in index order, so the
   result depends only on the parent's state — never on worker count. *)
let split_rngs rng k =
  if k < 0 then invalid_arg "Par.split_rngs: negative count";
  let out = Array.make k rng in
  for i = 0 to k - 1 do
    out.(i) <- Rng.split rng
  done;
  out

let map_array_rng ?(label = "par.map_rng") ?domains ~rng f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  let rngs = split_rngs rng n in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len ->
             Array.init len (fun i -> f rngs.(lo + i) arr.(lo + i)))))
