(** Domain-based parallel execution for the clustering, reconstruction
    and simulation stages.

    The paper stresses that clustering and reconstruction must scale
    across cores (Section IX). This module fans balanced array chunks
    out to worker domains and is the single configuration point for the
    toolkit's parallelism:

    - chunk assignment is balanced (chunk sizes differ by at most one)
      and never produces an empty or negative range, so ragged shapes
      such as 5 items across 4 domains are safe;
    - a failing worker never orphans its siblings: every domain is
      joined before the first failure is re-raised;
    - [split_rngs] / [map_array_rng] give each task its own
      deterministic random stream, so stochastic stages produce the
      same output for every worker count;
    - every parallel region is counted (regions entered, tasks run,
      wall time) under a caller-supplied label, surfaced through
      [counters] and rendered by [Core.Report.par_counters].

    With [domains = 1] every entry point degrades to the plain serial
    loop, which tests use for bit-exact determinism. *)

let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* The process-wide default worker count, used whenever a [?domains]
   argument is omitted anywhere in the toolkit. Serial by default so
   that results are reproducible unless parallelism is asked for. *)
let default = Atomic.make 1

let set_default_domains n = Atomic.set default (max 1 n)
let default_domains () = Atomic.get default

(* ---------- counters ---------- *)

type counter = { label : string; regions : int; tasks : int; wall_s : float }

type counter_cell = {
  mutable c_regions : int;
  mutable c_tasks : int;
  mutable c_wall_s : float;
}

let counters_lock = Mutex.create ()
let counters_tbl : (string, counter_cell) Hashtbl.t = Hashtbl.create 16

let record ~label ~tasks ~wall_s =
  Mutex.lock counters_lock;
  let cell =
    match Hashtbl.find_opt counters_tbl label with
    | Some c -> c
    | None ->
        let c = { c_regions = 0; c_tasks = 0; c_wall_s = 0.0 } in
        Hashtbl.add counters_tbl label c;
        c
  in
  cell.c_regions <- cell.c_regions + 1;
  cell.c_tasks <- cell.c_tasks + tasks;
  cell.c_wall_s <- cell.c_wall_s +. wall_s;
  Mutex.unlock counters_lock

let counters () =
  Mutex.lock counters_lock;
  let out =
    Hashtbl.fold
      (fun label c acc ->
        { label; regions = c.c_regions; tasks = c.c_tasks; wall_s = c.c_wall_s } :: acc)
      counters_tbl []
  in
  Mutex.unlock counters_lock;
  List.sort (fun a b -> compare a.label b.label) out

let reset_counters () =
  Mutex.lock counters_lock;
  Hashtbl.reset counters_tbl;
  Mutex.unlock counters_lock

(* ---------- core machinery ---------- *)

(* Balanced contiguous ranges: the first [n mod workers] chunks carry one
   extra element. Requires workers <= n, so no range is ever empty. *)
let chunk_ranges ~workers n =
  let base = n / workers and rem = n mod workers in
  Array.init workers (fun w ->
      let lo = (w * base) + min w rem in
      let len = base + if w < rem then 1 else 0 in
      (lo, len))

(* Join every domain before re-raising, so a failing chunk never orphans
   its siblings; the first failure in submission order wins. *)
let join_all handles =
  let outcomes = List.map (fun h -> try Ok (Domain.join h) with e -> Error e) handles in
  List.map (function Ok v -> v | Error e -> raise e) outcomes

(* Apply [chunk_f lo len] to balanced ranges, in parallel when more than
   one worker is warranted. Chunk results come back in range order. *)
let run_chunks ~domains ~n chunk_f =
  if n = 0 then []
  else
    let workers = max 1 (min domains n) in
    if workers = 1 then [ chunk_f 0 n ]
    else
      chunk_ranges ~workers n
      |> Array.map (fun (lo, len) -> Domain.spawn (fun () -> chunk_f lo len))
      |> Array.to_list |> join_all

let timed ~label ~tasks f =
  let t0 = Unix.gettimeofday () in
  let finish () = record ~label ~tasks ~wall_s:(Unix.gettimeofday () -. t0) in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

(* ---------- public entry points ---------- *)

let map_array ?(label = "par.map") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len -> Array.init len (fun i -> f arr.(lo + i)))))

let mapi_array ?(label = "par.mapi") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len ->
             Array.init len (fun i -> f (lo + i) arr.(lo + i)))))

let iter_array ?(label = "par.iter") ?domains f (arr : 'a array) : unit =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      ignore
        (run_chunks ~domains ~n (fun lo len ->
             for i = lo to lo + len - 1 do
               f arr.(i)
             done)))

let chunked_map ?(label = "par.chunked") ?domains f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      Array.of_list (run_chunks ~domains ~n (fun lo len -> f (Array.sub arr lo len))))

let map_reduce ?(label = "par.map_reduce") ?domains ~map ~combine ~init (arr : 'a array) : 'b
    =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  timed ~label ~tasks:n (fun () ->
      let parts =
        run_chunks ~domains ~n (fun lo len ->
            let acc = ref (map arr.(lo)) in
            for i = lo + 1 to lo + len - 1 do
              acc := combine !acc (map arr.(i))
            done;
            !acc)
      in
      List.fold_left combine init parts)

(* ---------- deterministic parallel randomness ---------- *)

(* Streams are split off the parent serially, in index order, so the
   result depends only on the parent's state — never on worker count. *)
let split_rngs rng k =
  if k < 0 then invalid_arg "Par.split_rngs: negative count";
  let out = Array.make k rng in
  for i = 0 to k - 1 do
    out.(i) <- Rng.split rng
  done;
  out

let map_array_rng ?(label = "par.map_rng") ?domains ~rng f (arr : 'a array) : 'b array =
  let domains = match domains with Some d -> d | None -> default_domains () in
  let n = Array.length arr in
  let rngs = split_rngs rng n in
  timed ~label ~tasks:n (fun () ->
      Array.concat
        (run_chunks ~domains ~n (fun lo len ->
             Array.init len (fun i -> f rngs.(lo + i) arr.(lo + i)))))
