(** Needleman-Wunsch global pairwise alignment with traceback.

    Used in two places: to derive edit scripts between paired clean/noisy
    strands when training the data-driven simulators, and as the pairwise
    kernel of the trace-reconstruction consensus (every read of a cluster
    is aligned against the evolving reference). Unit costs (match 0,
    mismatch/gap 1) make the optimal score equal to the edit distance.

    Two kernels compute the alignment, selected per call or process-wide
    via {!backend} (mirroring [Distance]'s kernel dispatch):

    - [Full]: the classic O(la*lb) matrix, kept as the reference oracle;
    - [Banded] (and [Auto]): a Ukkonen band of half-width [band] around
      the main diagonal, O(la*band) cells. Banded results are exact: the
      unit-cost matrix satisfies D[i][j] >= |i-j| everywhere, so whenever
      the banded score is <= band every cell of an optimal path — and
      every cell the greedy traceback consults — carries its true value,
      making both the score and the script bit-identical to the full
      matrix's; when the banded score exceeds the band (the optimal path
      may have hit the band edge) the kernel falls back to a full-matrix
      recompute ({!banded_fallbacks} counts these).

    Both kernels run over a single flat [int array] drawn from a
    per-domain scratch arena (domain-local storage, in the same spirit as
    [Strand.eq_masks]' per-strand cache), so hot consensus loops — and
    the [Par.map_array] reconstruction workers — never reallocate DP
    state between calls: no [Array.make_matrix] boxed rows, no per-call
    garbage beyond the returned script. *)

type op =
  | Match of Nucleotide.t
  | Substitute of Nucleotide.t * Nucleotide.t  (** original base, read base *)
  | Delete of Nucleotide.t  (** base of [a] missing from [b] *)
  | Insert of Nucleotide.t  (** base of [b] absent from [a] *)

type t = {
  score : int;  (** total edit cost *)
  script : op list;  (** operations transforming [a] into [b], left to right *)
}

(* Gap character used in the padded rendering of an alignment. *)
let gap_char = '-'

(* ---------- Backend selection ---------- *)

type backend = Auto | Full | Banded

let backend_name = function Auto -> "auto" | Full -> "full" | Banded -> "banded"

let default_backend = Atomic.make Auto

let set_default_backend b = Atomic.set default_backend b

let current_default_backend () = Atomic.get default_backend

(* [Auto] resolves to the banded kernel: its fallback guard makes it
   exact, so the full matrix is only ever needed as an oracle or for
   benchmarking. *)
let use_banded = function
  | Some Full -> false
  | Some (Auto | Banded) -> true
  | None -> ( match Atomic.get default_backend with Full -> false | Auto | Banded -> true)

let default_band = 16

let fallbacks = Atomic.make 0

let banded_fallbacks () = Atomic.get fallbacks

let reset_banded_fallbacks () = Atomic.set fallbacks 0

(* ---------- Per-domain scratch arena ---------- *)

(* One arena per domain: the DP cells and both strands' integer codes.
   Buffers only grow; a reconstruction worker aligning thousands of reads
   against references of similar length reuses the same three arrays for
   its whole lifetime. Arrays handed out here must never escape a call. *)
type scratch = {
  mutable cells : int array;
  mutable codes_a : int array;
  mutable codes_b : int array;
  mutable ops : int array;
  mutable last_a : Strand.t;
      (* the strand whose codes currently sit in [codes_a]: consensus
         rounds align one reference against every read, so the reference
         fill is skipped on all but the first alignment of a round.
         Physical equality implies equal contents (strands are
         immutable), so a hit can never serve stale codes. *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { cells = [||]; codes_a = [||]; codes_b = [||]; ops = [||]; last_a = Strand.empty })

(* Capacity held by the calling domain's alignment arena, in array
   slots — lets allocation accounting (and tests) see that repeated
   aligns reuse buffers instead of growing them. *)
let scratch_capacity_words () =
  let s = Domain.DLS.get scratch_key in
  Array.length s.cells + Array.length s.codes_a + Array.length s.codes_b + Array.length s.ops

let ensure arr n = if Array.length arr >= n then arr else Array.make (max n (2 * Array.length arr)) 0

(* Branchless minimum: DP cell values depend on random base matches, so
   a compare-and-branch min mispredicts constantly on real reads (unlike
   a microbenchmark aligning one pair, where the predictor memorizes the
   whole matrix). [asr 62] smears the sign of [a - b] into a full mask,
   which is safe at any magnitude a DP cell can hold. *)
let[@inline] imin a b = b + ((a - b) land ((a - b) asr 62))

let fill_codes dst s len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst i (Strand.unsafe_get_code s i)
  done

(* ---------- Packed scripts ---------- *)

(* The tracebacks emit ops as packed ints into the arena's [ops] buffer:
   [(kind lsl 4) lor (xa lsl 2) lor xb], kinds 0=match, 1=substitute,
   2=delete, 3=insert (the diagonal kinds are exactly the move's cost).
   Hot consumers (the consensus profile) read the ints directly and
   never pay for an [op list]; the public {!align} decodes the buffer
   into the usual constructors in one pass. *)
type packed = {
  packed_score : int;
  ops : int array;
  off : int;  (** first op *)
  lim : int;  (** one past the last op *)
}

let packed_kind e = e lsr 4

let packed_a e = (e lsr 2) land 3

let packed_b e = e land 3

let op_of_packed e =
  match e lsr 4 with
  | 0 -> Match Nucleotide.all.(e land 3)
  | 1 -> Substitute (Nucleotide.all.((e lsr 2) land 3), Nucleotide.all.(e land 3))
  | 2 -> Delete Nucleotide.all.((e lsr 2) land 3)
  | _ -> Insert Nucleotide.all.(e land 3)

let script_of_packed p =
  let script = ref [] in
  for k = p.lim - 1 downto p.off do
    script := op_of_packed (Array.unsafe_get p.ops k) :: !script
  done;
  !script

(* ---------- Traceback ---------- *)

(* Iterative tracebacks (no recursion: 300nt+ strands stay off the call
   stack), preferring diagonal moves so scripts stay maximally aligned
   (fewer spurious indel pairs). One specialized copy per cell layout:
   the per-step cell reads are plain index arithmetic, not calls through
   a layout closure — at ~la steps per alignment the indirection was
   costing as much as the banded DP itself. Codes come from the
   prefilled arrays rather than per-step bounds-checked [Strand.get].
   The walk runs corner-to-origin, writing packed ops back-to-front
   starting at index [la + lb] (the longest possible script), so the
   finished script reads forward from the returned offset; the cell
   value in hand is carried from step to step (the chosen predecessor's
   value is always known: [diag] for a diagonal move, [here - 1] for a
   gap) instead of being reloaded. *)
let full_traceback cells ca cb la lb ops =
  let stride = lb + 1 in
  let k = ref (la + lb) in
  let i = ref la and j = ref lb in
  let here = ref (Array.unsafe_get cells ((la * stride) + lb)) in
  (* row base of (i - 1), kept incrementally: drops by [stride] on every
     vertical move instead of being remultiplied each step *)
  let prev_r = ref ((la - 1) * stride) in
  while !i > 0 && !j > 0 do
    let prev = !prev_r in
    let xa = Array.unsafe_get ca (!i - 1) and xb = Array.unsafe_get cb (!j - 1) in
    let diag = Array.unsafe_get cells (prev + !j - 1) in
    let cost = if xa = xb then 0 else 1 in
    decr k;
    if diag + cost = !here then begin
      Array.unsafe_set ops !k ((cost lsl 4) lor (xa lsl 2) lor xb);
      here := diag;
      decr i;
      decr j;
      prev_r := prev - stride
    end
    else if Array.unsafe_get cells (prev + !j) + 1 = !here then begin
      Array.unsafe_set ops !k ((2 lsl 4) lor (xa lsl 2));
      here := !here - 1;
      decr i;
      prev_r := prev - stride
    end
    else begin
      Array.unsafe_set ops !k ((3 lsl 4) lor xb);
      here := !here - 1;
      decr j
    end
  done;
  while !i > 0 do
    decr k;
    Array.unsafe_set ops !k ((2 lsl 4) lor (Array.unsafe_get ca (!i - 1) lsl 2));
    decr i
  done;
  while !j > 0 do
    decr k;
    Array.unsafe_set ops !k ((3 lsl 4) lor Array.unsafe_get cb (!j - 1));
    decr j
  done;
  !k

(* ---------- Full-matrix kernel (the oracle) ---------- *)

(* dp cell (i, j) at [i * (lb + 1) + j]: edit distance between a[0..i)
   and b[0..j). *)
let align_full s ca cb la lb =
  let stride = lb + 1 in
  let cells = ensure s.cells ((la + 1) * stride) in
  s.cells <- cells;
  for j = 0 to lb do
    Array.unsafe_set cells j j
  done;
  for i = 1 to la do
    let row = i * stride and prev = (i - 1) * stride in
    Array.unsafe_set cells row i;
    let c = Array.unsafe_get ca (i - 1) in
    for j = 1 to lb do
      let cost = if c = Array.unsafe_get cb (j - 1) then 0 else 1 in
      let d = Array.unsafe_get cells (prev + j - 1) + cost in
      let d =
        let v = Array.unsafe_get cells (row + j - 1) + 1 in
        if v < d then v else d
      in
      let d =
        let v = Array.unsafe_get cells (prev + j) + 1 in
        if v < d then v else d
      in
      Array.unsafe_set cells (row + j) d
    done
  done;
  let ops = ensure s.ops (la + lb) in
  s.ops <- ops;
  let off = full_traceback cells ca cb la lb ops in
  { packed_score = cells.((la * stride) + lb); ops; off; lim = la + lb }

(* ---------- Banded kernel ---------- *)

(* Cells with xlo <= j - i <= xhi (an asymmetric diagonal window,
   xlo <= -1 and xhi >= 1), stored at [i * w + (j - i - xlo)] with
   w = xhi - xlo + 1. The only cells missing a neighbor are the first of
   a row (no left when the window start is the band edge rather than
   column 0) and the last (no up when the window end is the band edge
   rather than [lb]); both are peeled out of the loop so the hot middle
   runs guard-free, reads every neighbor unconditionally, and needs no
   prefill. Returns the banded score, an upper bound on the true
   distance that is exact whenever every cell of an optimal path lies in
   the window (see the module header). *)
let banded_dp cells ca cb la lb xlo xhi =
  let w = xhi - xlo + 1 in
  for j = 0 to min lb xhi do
    Array.unsafe_set cells (j - xlo) j
  done;
  (* General row: handles windows clipped by column 0 (lo = 0) or by
     column lb (hi = lb). Only the few rows near the matrix corners need
     it; recomputing a row is idempotent, so overlap between the edge
     ranges below (possible on tiny matrices) is harmless. *)
  let general_row i =
    let lo = max 0 (i + xlo) and hi = min lb (i + xhi) in
    (* index of (i, j) = rb + j; of (i-1, j) = pb + j *)
    let rb = (i * w) - i - xlo and pb = ((i - 1) * w) - (i - 1) - xlo in
    let c = Array.unsafe_get ca (i - 1) in
    (* First cell of the row: column 0 is a gap run; a band-clipped
       window start has only its diagonal and up neighbors (both in row
       i-1's window, whose left edge is one column further left). *)
    let jstart =
      if lo = 0 then begin
        Array.unsafe_set cells rb i;
        1
      end
      else begin
        let cost = if c = Array.unsafe_get cb (lo - 1) then 0 else 1 in
        let d = Array.unsafe_get cells (pb + lo - 1) + cost in
        let d =
          let v = Array.unsafe_get cells (pb + lo) + 1 in
          if v < d then v else d
        in
        Array.unsafe_set cells (rb + lo) d;
        lo + 1
      end
    in
    (* Last cell: when the window end is the band edge (hi = i + xhi),
       cell (i-1, hi) is outside row i-1's window. *)
    let clipped = hi = i + xhi && hi >= jstart in
    let jend = if clipped then hi - 1 else hi in
    for j = jstart to jend do
      let cost = if c = Array.unsafe_get cb (j - 1) then 0 else 1 in
      let d = Array.unsafe_get cells (pb + j - 1) + cost in
      let d =
        let v = Array.unsafe_get cells (rb + j - 1) + 1 in
        if v < d then v else d
      in
      let d =
        let v = Array.unsafe_get cells (pb + j) + 1 in
        if v < d then v else d
      in
      Array.unsafe_set cells (rb + j) d
    done;
    if clipped then begin
      let cost = if c = Array.unsafe_get cb (hi - 1) then 0 else 1 in
      let d = Array.unsafe_get cells (pb + hi - 1) + cost in
      let d =
        let v = Array.unsafe_get cells (rb + hi - 1) + 1 in
        if v < d then v else d
      in
      Array.unsafe_set cells (rb + hi) d
    end
  in
  (* Interior rows — both window edges band-clipped (0 < lo, hi < lb) —
     are the bulk of the matrix and occupy exactly [i*w .. i*w + w) in
     storage, so they run with two counters bumped by constants instead
     of per-row max/min/multiply: [ib] the row base and [jb] the cb
     index of the row's first column. At narrow bands (the score-first
     window is ~d wide) the general row's edge logic costs as much as
     its cells, so this is where the banded kernel earns its keep. *)
  let mid_lo = max 1 (1 - xlo) and mid_hi = min la (lb - xhi) in
  for i = 1 to min la (mid_lo - 1) do
    general_row i
  done;
  let ib = ref (mid_lo * w) and jb = ref (mid_lo + xlo - 1) in
  for i = mid_lo to mid_hi do
    let ib0 = !ib and jb0 = !jb in
    let c = Array.unsafe_get ca (i - 1) in
    (* first cell (i, lo): diagonal and up only *)
    let cost = if c = Array.unsafe_get cb jb0 then 0 else 1 in
    let d = imin (Array.unsafe_get cells (ib0 - w) + cost) (Array.unsafe_get cells (ib0 - w + 1) + 1) in
    Array.unsafe_set cells ib0 d;
    (* The left neighbor is the cell the previous iteration just wrote:
       carry it in a register instead of reloading it. *)
    let prev = ref d in
    for t = 1 to w - 2 do
      let cost = if c = Array.unsafe_get cb (jb0 + t) then 0 else 1 in
      let dg = Array.unsafe_get cells (ib0 - w + t) + cost in
      let up = Array.unsafe_get cells (ib0 - w + t + 1) in
      let d = imin dg (imin !prev up + 1) in
      Array.unsafe_set cells (ib0 + t) d;
      prev := d
    done;
    (* last cell (i, hi): diagonal and left only *)
    let cost = if c = Array.unsafe_get cb (jb0 + w - 1) then 0 else 1 in
    let d = imin (Array.unsafe_get cells (ib0 - 1) + cost) (!prev + 1) in
    Array.unsafe_set cells (ib0 + w - 1) d;
    ib := ib0 + w;
    incr jb
  done;
  for i = max mid_lo (mid_hi + 1) to la do
    general_row i
  done;
  cells.((la * w) - la + lb - xlo)

(* Banded layout: cell (i, j) at [i*w + j - i - xlo]. Every cell the
   traceback visits is on an optimal path and hence in the window, as is
   its chosen predecessor; of the candidate reads, only the up neighbor
   (i-1, j) can fall outside (j - (i-1) > xhi), so that is the only
   window check needed — diag keeps the same offset and left moves it
   down, and a rejected out-of-window up can never be "equal" anyway
   because the insert move is then the one that holds. *)
let banded_traceback cells ca cb la lb xlo xhi ops =
  let w = xhi - xlo + 1 in
  let k = ref (la + lb) in
  let i = ref la and j = ref lb in
  let here = ref (Array.unsafe_get cells ((la * w) - la + lb - xlo)) in
  (* row base of (i - 1) minus the diagonal offset, kept incrementally:
     pbase = (i-1)*(w-1) - xlo drops by w-1 on every vertical move *)
  let pbase_r = ref (((la - 1) * (w - 1)) - xlo) in
  while !i > 0 && !j > 0 do
    let pbase = !pbase_r in
    let xa = Array.unsafe_get ca (!i - 1) and xb = Array.unsafe_get cb (!j - 1) in
    let diag = Array.unsafe_get cells (pbase + !j - 1) in
    let cost = if xa = xb then 0 else 1 in
    decr k;
    if diag + cost = !here then begin
      Array.unsafe_set ops !k ((cost lsl 4) lor (xa lsl 2) lor xb);
      here := diag;
      decr i;
      decr j;
      pbase_r := pbase - w + 1
    end
    else if !j - !i + 1 <= xhi && Array.unsafe_get cells (pbase + !j) + 1 = !here then begin
      Array.unsafe_set ops !k ((2 lsl 4) lor (xa lsl 2));
      here := !here - 1;
      decr i;
      pbase_r := pbase - w + 1
    end
    else begin
      Array.unsafe_set ops !k ((3 lsl 4) lor xb);
      here := !here - 1;
      decr j
    end
  done;
  while !i > 0 do
    decr k;
    Array.unsafe_set ops !k ((2 lsl 4) lor (Array.unsafe_get ca (!i - 1) lsl 2));
    decr i
  done;
  while !j > 0 do
    decr k;
    Array.unsafe_set ops !k ((3 lsl 4) lor Array.unsafe_get cb (!j - 1));
    decr j
  done;
  !k

let banded_run s ca cb la lb xlo xhi =
  let cells = ensure s.cells ((la + 1) * (xhi - xlo + 1)) in
  s.cells <- cells;
  banded_dp cells ca cb la lb xlo xhi

(* Fixed symmetric band with full-matrix fallback: the [?band]
   contract. Exact whenever the score is <= band: the unit-cost matrix
   satisfies D[i][j] >= |i - j|, so a path costing <= band never leaves
   the window. *)
let align_banded s ca cb la lb band =
  let score = banded_run s ca cb la lb (-band) band in
  if score > band then begin
    (* The optimal path may have left the band: recompute in full so the
       result stays exact (and identical to the oracle's). *)
    Atomic.incr fallbacks;
    align_full s ca cb la lb
  end
  else begin
    let ops = ensure s.ops (la + lb) in
    s.ops <- ops;
    let off = banded_traceback s.cells ca cb la lb (-band) band ops in
    { packed_score = score; ops; off; lim = la + lb }
  end

(* Score-first banding (edlib-style two-pass): with the exact distance d
   already pinned by the bit-parallel Myers kernel, every cell (i, j) of
   an optimal path satisfies both the prefix bound (cost so far
   >= |j - i|) and the suffix bound (cost to come >= |c - (j - i)| for
   c = lb - la), so |x| + |c - x| <= d for x = j - i: a window of width
   ~d+1, half the classic Ukkonen band's 2d+1. The corner score then
   equals d by construction; anything else would be a kernel bug, so it
   falls back to the oracle rather than returning a wrong script. *)
let align_scored s ca cb la lb d =
  let c = lb - la in
  let h = max 1 ((d - abs c) / 2) in
  let score = banded_run s ca cb la lb (min 0 c - h) (max 0 c + h) in
  if score <> d then begin
    Atomic.incr fallbacks;
    align_full s ca cb la lb
  end
  else begin
    let ops = ensure s.ops (la + lb) in
    s.ops <- ops;
    let off = banded_traceback s.cells ca cb la lb (min 0 c - h) (max 0 c + h) ops in
    { packed_score = score; ops; off; lim = la + lb }
  end

(* ---------- Entry points ---------- *)

let align_packed ?backend ?band (a : Strand.t) (b : Strand.t) : packed =
  let la = Strand.length a and lb = Strand.length b in
  let s = Domain.DLS.get scratch_key in
  let ca =
    if s.last_a == a then s.codes_a
    else begin
      let ca = ensure s.codes_a la in
      s.codes_a <- ca;
      fill_codes ca a la;
      s.last_a <- a;
      ca
    end
  in
  let cb = ensure s.codes_b lb in
  s.codes_b <- cb;
  fill_codes cb b lb;
  if use_banded backend then
    match band with
    | Some w ->
        let w = max 1 w in
        if abs (la - lb) > w then begin
          (* the band cannot even reach the corner: the same "band too
             narrow" signal as a score overflow, and counted as one *)
          Atomic.incr fallbacks;
          align_full s ca cb la lb
        end
        else align_banded s ca cb la lb w
    | None ->
        (* The bit-parallel Myers kernel pins the exact distance d in
           O(la) words; [align_scored] then needs a single pass over a
           ~d-wide window. Once that window covers most of the columns
           the plain full matrix is cheaper. *)
        let d = Distance.levenshtein a b in
        if d + 2 >= lb then align_full s ca cb la lb else align_scored s ca cb la lb d
  else align_full s ca cb la lb

let align ?backend ?band (a : Strand.t) (b : Strand.t) : t =
  let p = align_packed ?backend ?band a b in
  { score = p.packed_score; script = script_of_packed p }

(* Render both strands padded with '-' so that aligned positions line up. *)
let padded t =
  let buf_a = Buffer.create 64 and buf_b = Buffer.create 64 in
  List.iter
    (fun op ->
      match op with
      | Match x ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b (Nucleotide.to_char x)
      | Substitute (x, y) ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b (Nucleotide.to_char y)
      | Delete x ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b gap_char
      | Insert y ->
          Buffer.add_char buf_a gap_char;
          Buffer.add_char buf_b (Nucleotide.to_char y))
    t.script;
  (Buffer.contents buf_a, Buffer.contents buf_b)

(* Apply the script to recover [b] from [a]; sanity check used in tests. *)
let apply_script script =
  let buf = Buffer.create 64 in
  List.iter
    (fun op ->
      match op with
      | Match x -> Buffer.add_char buf (Nucleotide.to_char x)
      | Substitute (_, y) | Insert y -> Buffer.add_char buf (Nucleotide.to_char y)
      | Delete _ -> ())
    script;
  Strand.of_string (Buffer.contents buf)

type op_kind = Kmatch | Ksub | Kdel | Kins

let kind = function
  | Match _ -> Kmatch
  | Substitute _ -> Ksub
  | Delete _ -> Kdel
  | Insert _ -> Kins

(* Counts of each operation kind; the raw material of the learned channel. *)
let counts t =
  List.fold_left
    (fun (m, s, d, i) op ->
      match kind op with
      | Kmatch -> (m + 1, s, d, i)
      | Ksub -> (m, s + 1, d, i)
      | Kdel -> (m, s, d + 1, i)
      | Kins -> (m, s, d, i + 1))
    (0, 0, 0, 0) t.script
