(** Needleman-Wunsch global pairwise alignment with traceback.

    Used in two places: to derive edit scripts between paired clean/noisy
    strands when training the data-driven simulators, and as the pairwise
    kernel validated against [Distance.levenshtein] in tests. Unit costs
    (match 0, mismatch/gap 1) make the optimal score equal to the edit
    distance. *)

type op =
  | Match of Nucleotide.t
  | Substitute of Nucleotide.t * Nucleotide.t  (** original base, read base *)
  | Delete of Nucleotide.t  (** base of [a] missing from [b] *)
  | Insert of Nucleotide.t  (** base of [b] absent from [a] *)

type t = {
  score : int;  (** total edit cost *)
  script : op list;  (** operations transforming [a] into [b], left to right *)
}

(* Gap character used in the padded rendering of an alignment. *)
let gap_char = '-'

let align (a : Strand.t) (b : Strand.t) : t =
  let la = Strand.length a and lb = Strand.length b in
  (* dp.(i).(j): edit distance between a[0..i) and b[0..j). *)
  let dp = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    dp.(i).(0) <- i
  done;
  for j = 0 to lb do
    dp.(0).(j) <- j
  done;
  for i = 1 to la do
    let ca = Strand.unsafe_get_code a (i - 1) in
    for j = 1 to lb do
      let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
      dp.(i).(j) <-
        min (min (dp.(i - 1).(j) + 1) (dp.(i).(j - 1) + 1)) (dp.(i - 1).(j - 1) + cost)
    done
  done;
  (* Traceback, preferring diagonal moves so scripts stay maximally
     aligned (fewer spurious indel pairs). *)
  let rec back i j acc =
    if i = 0 && j = 0 then acc
    else if i > 0 && j > 0
            && dp.(i).(j)
               = dp.(i - 1).(j - 1)
                 + (if Strand.get_code a (i - 1) = Strand.get_code b (j - 1) then 0 else 1)
    then
      let xa = Strand.get a (i - 1) and xb = Strand.get b (j - 1) in
      let op = if Nucleotide.equal xa xb then Match xa else Substitute (xa, xb) in
      back (i - 1) (j - 1) (op :: acc)
    else if i > 0 && dp.(i).(j) = dp.(i - 1).(j) + 1 then
      back (i - 1) j (Delete (Strand.get a (i - 1)) :: acc)
    else back i (j - 1) (Insert (Strand.get b (j - 1)) :: acc)
  in
  { score = dp.(la).(lb); script = back la lb [] }

(* Render both strands padded with '-' so that aligned positions line up. *)
let padded t =
  let buf_a = Buffer.create 64 and buf_b = Buffer.create 64 in
  List.iter
    (fun op ->
      match op with
      | Match x ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b (Nucleotide.to_char x)
      | Substitute (x, y) ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b (Nucleotide.to_char y)
      | Delete x ->
          Buffer.add_char buf_a (Nucleotide.to_char x);
          Buffer.add_char buf_b gap_char
      | Insert y ->
          Buffer.add_char buf_a gap_char;
          Buffer.add_char buf_b (Nucleotide.to_char y))
    t.script;
  (Buffer.contents buf_a, Buffer.contents buf_b)

(* Apply the script to recover [b] from [a]; sanity check used in tests. *)
let apply_script script =
  let buf = Buffer.create 64 in
  List.iter
    (fun op ->
      match op with
      | Match x -> Buffer.add_char buf (Nucleotide.to_char x)
      | Substitute (_, y) | Insert y -> Buffer.add_char buf (Nucleotide.to_char y)
      | Delete _ -> ())
    script;
  Strand.of_string (Buffer.contents buf)

type op_kind = Kmatch | Ksub | Kdel | Kins

let kind = function
  | Match _ -> Kmatch
  | Substitute _ -> Ksub
  | Delete _ -> Kdel
  | Insert _ -> Kins

(* Counts of each operation kind; the raw material of the learned channel. *)
let counts t =
  List.fold_left
    (fun (m, s, d, i) op ->
      match kind op with
      | Kmatch -> (m + 1, s, d, i)
      | Ksub -> (m, s + 1, d, i)
      | Kdel -> (m, s, d + 1, i)
      | Kins -> (m, s, d, i + 1))
    (0, 0, 0, 0) t.script
