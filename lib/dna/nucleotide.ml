(** The four DNA bases. Encoded as 0..3 (A, C, G, T) when performance
    matters; this ordering makes complementation [3 - code]. *)

type t = A | C | G | T

let all = [| A; C; G; T |]

let to_char = function A -> 'A' | C -> 'C' | G -> 'G' | T -> 'T'

let of_char_opt = function
  | 'A' | 'a' -> Some A
  | 'C' | 'c' -> Some C
  | 'G' | 'g' -> Some G
  | 'T' | 't' -> Some T
  | _ -> None

let of_char c =
  match of_char_opt c with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Nucleotide.of_char: %C" c)

let to_code = function A -> 0 | C -> 1 | G -> 2 | T -> 3

let of_code = function
  | 0 -> A
  | 1 -> C
  | 2 -> G
  | 3 -> T
  | n -> invalid_arg (Printf.sprintf "Nucleotide.of_code: %d" n)

(* Watson-Crick complement: A<->T, C<->G. *)
let complement = function A -> T | C -> G | G -> C | T -> A

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let random rng = all.(Rng.int rng 4)

(* A random base different from [b]; used by substitution channels. *)
let random_other rng b =
  let shift = 1 + Rng.int rng 3 in
  of_code ((to_code b + shift) land 3)

let pp fmt b = Format.pp_print_char fmt (to_char b)
