(** Deterministic, splittable pseudo-random number generator
    (xoshiro256** seeded through splitmix64).

    Every stochastic component of the toolkit takes an explicit [t], so
    all experiments are reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val copy : t -> t
(** An independent duplicate of the current state. *)

val split : t -> t
(** Derive a statistically independent stream; advances the parent. *)

val next_int64 : t -> int64
(** The raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. Raises [Invalid_argument]
    when [bound <= 0]. *)

val float : t -> float
(** Uniform on [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success; support {1, 2, ...}. *)

val poisson : t -> float -> int
(** Poisson sample with the given mean (Knuth's method; intended for
    small means such as sequencing coverage). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** A uniform element; raises [Invalid_argument] on an empty array. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [k] distinct indices drawn uniformly from [\[0, n)]. *)
