(** Data randomization for unconstrained coding.

    XORs the payload with a keystream derived from a seed, so that long
    homopolymers occur with low probability and the average GC-content is
    balanced (Section II-D). The transform is an involution: applying it
    twice with the same seed recovers the input. *)

let keystream_byte state =
  (* One splitmix64 step per 8 bytes would be cheaper, but per-byte keeps
     the stream alignment-independent, which simplifies partial scrambles. *)
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0xffL)

let scramble ~seed (data : Bytes.t) : Bytes.t =
  let state = ref (Int64.of_int seed) in
  Bytes.map
    (fun c -> Char.chr (Char.code c lxor keystream_byte state))
    data

let unscramble ~seed data = scramble ~seed data
