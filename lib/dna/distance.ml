(** Sequence distances.

    Levenshtein (edit) distance is the similarity metric of the whole
    pipeline (Section II-E), and also its main computational cost, so three
    variants are provided: the plain two-row DP, a banded approximation for
    strands of similar length, and a thresholded version that exits early
    once the distance provably exceeds a bound (the workhorse of
    clustering's merge test). *)

let hamming a b =
  let n = Strand.length a in
  if n <> Strand.length b then invalid_arg "Distance.hamming: unequal lengths";
  let d = ref 0 in
  for i = 0 to n - 1 do
    if Strand.unsafe_get_code a i <> Strand.unsafe_get_code b i then incr d
  done;
  !d

let levenshtein a b =
  let la = Strand.length a and lb = Strand.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      let ca = Strand.unsafe_get_code a (i - 1) in
      for j = 1 to lb do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(* Ukkonen band of half-width [band] around the diagonal. Exact whenever
   the true distance is <= band; an upper bound otherwise. *)
let levenshtein_banded ~band a b =
  let la = Strand.length a and lb = Strand.length b in
  if abs (la - lb) > band then max la lb (* cheap upper bound; outside band *)
  else begin
    let inf = max_int / 2 in
    let prev = Array.make (lb + 1) inf in
    let cur = Array.make (lb + 1) inf in
    for j = 0 to min band lb do
      prev.(j) <- j
    done;
    for i = 1 to la do
      Array.fill cur 0 (lb + 1) inf;
      let lo = max 0 (i - band) and hi = min lb (i + band) in
      if lo = 0 then cur.(0) <- i;
      let ca = Strand.unsafe_get_code a (i - 1) in
      for j = max 1 lo to hi do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        let best = prev.(j - 1) + cost in
        let best = if cur.(j - 1) + 1 < best then cur.(j - 1) + 1 else best in
        let best = if prev.(j) + 1 < best then prev.(j) + 1 else best in
        cur.(j) <- best
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(* [levenshtein_leq ~bound a b] is [Some d] when the edit distance [d] is
   <= bound, [None] otherwise. Runs the DP inside a band of width
   2*bound+1 and abandons a row whose minimum already exceeds the bound. *)
let levenshtein_leq ~bound a b =
  let la = Strand.length a and lb = Strand.length b in
  if bound < 0 then None
  else if abs (la - lb) > bound then None
  else begin
    let inf = max_int / 2 in
    let prev = Array.make (lb + 1) inf in
    let cur = Array.make (lb + 1) inf in
    for j = 0 to min bound lb do
      prev.(j) <- j
    done;
    let exceeded = ref false in
    let i = ref 1 in
    while (not !exceeded) && !i <= la do
      Array.fill cur 0 (lb + 1) inf;
      let lo = max 0 (!i - bound) and hi = min lb (!i + bound) in
      if lo = 0 then cur.(0) <- !i;
      let ca = Strand.unsafe_get_code a (!i - 1) in
      let row_min = ref inf in
      for j = max 1 lo to hi do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        let best = prev.(j - 1) + cost in
        let best = if cur.(j - 1) + 1 < best then cur.(j - 1) + 1 else best in
        let best = if prev.(j) + 1 < best then prev.(j) + 1 else best in
        cur.(j) <- best;
        if best < !row_min then row_min := best
      done;
      if lo = 0 && cur.(0) < !row_min then row_min := cur.(0);
      if !row_min > bound then exceeded := true;
      Array.blit cur 0 prev 0 (lb + 1);
      incr i
    done;
    if !exceeded || prev.(lb) > bound then None else Some prev.(lb)
  end

(* L1 distance between integer vectors; used by w-gram signatures. *)
let l1 a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Distance.l1: unequal lengths";
  let d = ref 0 in
  for i = 0 to n - 1 do
    d := !d + abs (a.(i) - b.(i))
  done;
  !d
