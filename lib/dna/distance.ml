(** Sequence distances.

    Levenshtein (edit) distance is the similarity metric of the whole
    pipeline (Section II-E), and also its main computational cost. Two
    families of kernels compute it:

    - a plain two-row scalar dynamic program (the reference oracle), in
      full, banded and thresholded variants;
    - Myers' 1999 bit-parallel algorithm, which packs a whole DP column
      into machine words and advances it in O(ceil(m/63) * n) word
      operations: a single-word kernel for patterns up to 63 nt, a
      blocked multi-word kernel for longer strands, and a
      banded/thresholded variant with Hyyro's block cutoff that only
      advances the word-blocks the Ukkonen band can still reach — the
      workhorse behind clustering's merge test.

    [levenshtein], [levenshtein_banded] and [levenshtein_leq] dispatch
    between the families via the [backend] argument (default: the
    process-wide backend, initially [Auto] = bit-parallel), so call
    sites pick up the fast kernels without signature changes. The
    bit-parallel kernels read the pattern's packed per-base match masks
    off [Strand.eq_masks], built once per strand and reused across every
    comparison. *)

let hamming a b =
  let n = Strand.length a in
  if n <> Strand.length b then invalid_arg "Distance.hamming: unequal lengths";
  let d = ref 0 in
  for i = 0 to n - 1 do
    if Strand.unsafe_get_code a i <> Strand.unsafe_get_code b i then incr d
  done;
  !d

(* ---------- Backend selection ---------- *)

type backend = Auto | Scalar | Bitparallel

let backend_name = function Auto -> "auto" | Scalar -> "scalar" | Bitparallel -> "bitparallel"

let default_backend = Atomic.make Auto

let set_default_backend b = Atomic.set default_backend b

let current_default_backend () = Atomic.get default_backend

(* [Auto] resolves to the bit-parallel kernels: they are exact, so the
   scalar DP is only ever needed as an oracle or for benchmarking. *)
let use_bitparallel = function
  | Some Scalar -> false
  | Some (Auto | Bitparallel) -> true
  | None -> ( match Atomic.get default_backend with Scalar -> false | Auto | Bitparallel -> true)

(* ---------- Scalar reference kernels (two-row DP) ---------- *)

let scalar_levenshtein a b =
  let la = Strand.length a and lb = Strand.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = ref (Array.init (lb + 1) (fun j -> j)) in
    let cur = ref (Array.make (lb + 1) 0) in
    for i = 1 to la do
      let p = !prev and c = !cur in
      c.(0) <- i;
      let ca = Strand.unsafe_get_code a (i - 1) in
      for j = 1 to lb do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        c.(j) <- min (min (c.(j - 1) + 1) (p.(j) + 1)) (p.(j - 1) + cost)
      done;
      (* Swap the row refs instead of blitting: the finished row becomes
         [prev] and the stale one is overwritten next iteration. *)
      prev := c;
      cur := p
    done;
    !prev.(lb)
  end

(* Ukkonen band of half-width [band] around the diagonal. Exact whenever
   the true distance is <= band; an upper bound otherwise. *)
let scalar_levenshtein_banded ~band a b =
  let la = Strand.length a and lb = Strand.length b in
  if abs (la - lb) > band then max la lb (* cheap upper bound; outside band *)
  else begin
    let inf = max_int / 2 in
    let prev = ref (Array.make (lb + 1) inf) in
    let cur = ref (Array.make (lb + 1) inf) in
    for j = 0 to min band lb do
      !prev.(j) <- j
    done;
    for i = 1 to la do
      let p = !prev and c = !cur in
      Array.fill c 0 (lb + 1) inf;
      let lo = max 0 (i - band) and hi = min lb (i + band) in
      if lo = 0 then c.(0) <- i;
      let ca = Strand.unsafe_get_code a (i - 1) in
      for j = max 1 lo to hi do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        let best = p.(j - 1) + cost in
        let best = if c.(j - 1) + 1 < best then c.(j - 1) + 1 else best in
        let best = if p.(j) + 1 < best then p.(j) + 1 else best in
        c.(j) <- best
      done;
      prev := c;
      cur := p
    done;
    !prev.(lb)
  end

(* [scalar_levenshtein_leq ~bound a b] is [Some d] when the edit distance
   [d] is <= bound, [None] otherwise. Runs the DP inside a band of width
   2*bound+1 and abandons a row whose minimum already exceeds the bound. *)
let scalar_levenshtein_leq ~bound a b =
  let la = Strand.length a and lb = Strand.length b in
  if bound < 0 then None
  else if abs (la - lb) > bound then None
  else begin
    let inf = max_int / 2 in
    let prev = ref (Array.make (lb + 1) inf) in
    let cur = ref (Array.make (lb + 1) inf) in
    for j = 0 to min bound lb do
      !prev.(j) <- j
    done;
    let exceeded = ref false in
    let i = ref 1 in
    while (not !exceeded) && !i <= la do
      let p = !prev and c = !cur in
      Array.fill c 0 (lb + 1) inf;
      let lo = max 0 (!i - bound) and hi = min lb (!i + bound) in
      if lo = 0 then c.(0) <- !i;
      let ca = Strand.unsafe_get_code a (!i - 1) in
      let row_min = ref inf in
      for j = max 1 lo to hi do
        let cost = if ca = Strand.unsafe_get_code b (j - 1) then 0 else 1 in
        let best = p.(j - 1) + cost in
        let best = if c.(j - 1) + 1 < best then c.(j - 1) + 1 else best in
        let best = if p.(j) + 1 < best then p.(j) + 1 else best in
        c.(j) <- best;
        if best < !row_min then row_min := best
      done;
      if lo = 0 && c.(0) < !row_min then row_min := c.(0);
      if !row_min > bound then exceeded := true;
      prev := c;
      cur := p;
      incr i
    done;
    if !exceeded || !prev.(lb) > bound then None else Some !prev.(lb)
  end

(* ---------- Bit-parallel kernels (Myers 1999 / Hyyro 2003) ----------

   The DP matrix D[i][j] (i over the pattern, j over the text, D[i][0] =
   i, D[0][j] = j) is represented one text-column at a time by its
   vertical deltas D[i][j] - D[i-1][j], packed into word pairs Pv/Mv
   (bit i-1 set in Pv: delta +1; in Mv: delta -1). One column advances
   with a constant number of word operations given Eq, the pattern's
   match mask for the column's text character (cached per strand by
   [Strand.eq_masks]). OCaml's native int gives 63-bit words; arithmetic
   wraps mod 2^63, which is exactly the carry-discard the algorithm
   expects. The score is threaded along row m by the Ph/Mh bit at the
   pattern's last position (the [| 1] shifted into Ph each column is the
   +1 top boundary of the distance — as opposed to search — variant). *)

let word_bits = Strand.mask_bits
let top_bit = 1 lsl (word_bits - 1)

(* Single-word kernel: pattern of length 1 <= m <= 63 against text [b] of
   length [n]; [masks] is the pattern's 4-entry Eq table. Returns D[m][n]. *)
let myers_single masks m b n =
  let sbit = 1 lsl (m - 1) in
  let pv = ref (-1) and mv = ref 0 in
  let score = ref m in
  for j = 0 to n - 1 do
    let eq = Array.unsafe_get masks (Strand.unsafe_get_code b j) in
    let pv0 = !pv and mv0 = !mv in
    let xv = eq lor mv0 in
    let xh = (((eq land pv0) + pv0) lxor pv0) lor eq in
    let ph = mv0 lor lnot (xh lor pv0) in
    let mh = pv0 land xh in
    if ph land sbit <> 0 then incr score else if mh land sbit <> 0 then decr score;
    let ph = (ph lsl 1) lor 1 in
    pv := (mh lsl 1) lor lnot (xv lor ph);
    mv := ph land xv
  done;
  !score

(* Blocked multi-word kernel: pattern of length m > 63 split into [nw]
   63-bit blocks (low block first); the horizontal delta at each block's
   bottom row carries into the block below. Returns D[m][n]. *)
let myers_blocked masks nw m b n =
  let last = nw - 1 in
  let sbit = 1 lsl ((m - 1) mod word_bits) in
  let pv = Array.make nw (-1) and mv = Array.make nw 0 in
  let score = ref m in
  for j = 0 to n - 1 do
    let base = Strand.unsafe_get_code b j * nw in
    let hin = ref 1 in
    for w = 0 to last do
      let eq = Array.unsafe_get masks (base + w) in
      let pvw = Array.unsafe_get pv w and mvw = Array.unsafe_get mv w in
      let eq_in = if !hin < 0 then eq lor 1 else eq in
      let xv = eq lor mvw in
      let xh = (((eq_in land pvw) + pvw) lxor pvw) lor eq_in in
      let ph = mvw lor lnot (xh lor pvw) in
      let mh = pvw land xh in
      if w = last then
        if ph land sbit <> 0 then incr score else if mh land sbit <> 0 then decr score;
      let hout =
        (if ph land top_bit <> 0 then 1 else 0) - if mh land top_bit <> 0 then 1 else 0
      in
      let ph = (ph lsl 1) lor (if !hin > 0 then 1 else 0) in
      let mh = (mh lsl 1) lor (if !hin < 0 then 1 else 0) in
      Array.unsafe_set pv w (mh lor lnot (xv lor ph));
      Array.unsafe_set mv w (ph land xv);
      hin := hout
    done
  done;
  !score

(* Thresholded kernel with Hyyro's block cutoff. Only blocks whose rows
   the Ukkonen band (rows <= column + bound) has reached are advanced; a
   block entering the band is seeded with the all-[+1] column — an upper
   bound on the true values there, so the computed result is sandwiched
   between the true distance and the band-restricted DP and therefore
   exact whenever the true distance is <= bound. Returns [Some] of the
   computed D[m][n] when it is <= bound, [None] as soon as the distance
   provably exceeds the bound (the tracked row-m score can shed at most
   1 per remaining column). Callers must ensure |m - n| <= bound. *)
let myers_bounded masks nw m b n ~bound =
  let fb = nw - 1 (* final block: the one holding row m *) in
  let last_needed jj = (min m (jj + bound) - 1) / word_bits in
  let sbit = 1 lsl ((m - 1) mod word_bits) in
  let pv = Array.make nw (-1) and mv = Array.make nw 0 in
  (* scores.(w): value at block w's (padded) bottom row in the current
     column; only meaningful for active blocks. *)
  let scores = Array.init nw (fun w -> (w + 1) * word_bits) in
  let lastb = ref (last_needed 1) in
  let score_m = ref m (* D[m][.]; meaningful once the final block is active *) in
  let exceeded = ref false in
  let jj = ref 1 in
  while (not !exceeded) && !jj <= n do
    let base = Strand.unsafe_get_code b (!jj - 1) * nw in
    let hin = ref 1 in
    for w = 0 to !lastb do
      let eq = Array.unsafe_get masks (base + w) in
      let pvw = Array.unsafe_get pv w and mvw = Array.unsafe_get mv w in
      let eq_in = if !hin < 0 then eq lor 1 else eq in
      let xv = eq lor mvw in
      let xh = (((eq_in land pvw) + pvw) lxor pvw) lor eq_in in
      let ph = mvw lor lnot (xh lor pvw) in
      let mh = pvw land xh in
      if w = fb then
        if ph land sbit <> 0 then incr score_m else if mh land sbit <> 0 then decr score_m;
      let hout =
        (if ph land top_bit <> 0 then 1 else 0) - if mh land top_bit <> 0 then 1 else 0
      in
      let ph = (ph lsl 1) lor (if !hin > 0 then 1 else 0) in
      let mh = (mh lsl 1) lor (if !hin < 0 then 1 else 0) in
      Array.unsafe_set pv w (mh lor lnot (xv lor ph));
      Array.unsafe_set mv w (ph land xv);
      Array.unsafe_set scores w (Array.unsafe_get scores w + hout);
      hin := hout
    done;
    if !lastb = fb && !score_m - (n - !jj) > bound then exceeded := true
    else if !jj < n then begin
      let needed = last_needed (!jj + 1) in
      if needed > !lastb then begin
        (* Activate blocks entering the band, seeded as if the current
           column continued with +1 vertical deltas below the last
           active block — an upper bound on the uncomputed cells. *)
        for w = !lastb + 1 to needed do
          pv.(w) <- -1;
          mv.(w) <- 0;
          scores.(w) <- scores.(w - 1) + word_bits
        done;
        if needed = fb then score_m := scores.(fb - 1) + (m - (fb * word_bits));
        lastb := needed
      end
    end;
    incr jj
  done;
  if !exceeded then None else Some !score_m

(* ---------- Bit-parallel dispatch ---------- *)

(* The shorter strand becomes the pattern: fewest words, and its cached
   masks are the ones reused when one strand is compared against many. *)
let bit_levenshtein a b =
  let la = Strand.length a and lb = Strand.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let p, t, m, n = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let masks = Strand.eq_masks p in
    if m <= word_bits then myers_single masks m t n
    else myers_blocked masks ((m + word_bits - 1) / word_bits) m t n
  end

let bit_levenshtein_leq ~bound a b =
  let la = Strand.length a and lb = Strand.length b in
  if bound < 0 then None
  else if abs (la - lb) > bound then None
  else if la = 0 || lb = 0 then Some (max la lb) (* <= bound by the length check *)
  else begin
    let p, t, m, n = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let masks = Strand.eq_masks p in
    let nw = (m + word_bits - 1) / word_bits in
    match myers_bounded masks nw m t n ~bound with
    | Some d when d <= bound -> Some d
    | Some _ | None -> None
  end

(* ---------- Public entry points ---------- *)

let levenshtein ?backend a b =
  if use_bitparallel backend then bit_levenshtein a b else scalar_levenshtein a b

let levenshtein_banded ?backend ~band a b =
  if use_bitparallel backend then
    match bit_levenshtein_leq ~bound:band a b with
    | Some d -> d
    | None -> max (Strand.length a) (Strand.length b) (* upper bound; outside band *)
  else scalar_levenshtein_banded ~band a b

let levenshtein_leq ?backend ~bound a b =
  if use_bitparallel backend then bit_levenshtein_leq ~bound a b
  else scalar_levenshtein_leq ~bound a b

(* L1 distance between integer vectors; used by w-gram signatures. *)
let l1 a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Distance.l1: unequal lengths";
  let d = ref 0 in
  for i = 0 to n - 1 do
    d := !d + abs (a.(i) - b.(i))
  done;
  !d
