(** Data randomization for unconstrained coding: XOR with a
    seed-derived keystream, so long homopolymers occur with low
    probability and GC-content balances. An involution. *)

val scramble : seed:int -> Bytes.t -> Bytes.t
val unscramble : seed:int -> Bytes.t -> Bytes.t
(** [unscramble ~seed (scramble ~seed b) = b]. *)
