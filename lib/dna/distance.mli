(** Sequence distances. Levenshtein (edit) distance is the similarity
    metric of the whole pipeline and its main computational cost. *)

val hamming : Strand.t -> Strand.t -> int
(** Positions that differ; raises [Invalid_argument] on unequal
    lengths. *)

val levenshtein : Strand.t -> Strand.t -> int
(** Exact edit distance (two-row dynamic program). *)

val levenshtein_banded : band:int -> Strand.t -> Strand.t -> int
(** Ukkonen band of half-width [band]: exact whenever the true distance
    is at most [band], an upper bound otherwise. *)

val levenshtein_leq : bound:int -> Strand.t -> Strand.t -> int option
(** [Some d] when the edit distance [d] is at most [bound], [None]
    otherwise; abandons the computation as soon as the bound is provably
    exceeded. The workhorse of clustering's merge test. *)

val l1 : int array -> int array -> int
(** L1 norm between equal-length integer vectors (w-gram signatures). *)
