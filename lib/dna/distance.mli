(** Sequence distances. Levenshtein (edit) distance is the similarity
    metric of the whole pipeline and its main computational cost; it is
    served by two kernel families — Myers' bit-parallel algorithm
    (single-word, blocked, and thresholded-with-cutoff variants) and the
    two-row scalar dynamic program kept as the reference oracle —
    selected per call or process-wide via {!backend}. *)

type backend =
  | Auto  (** resolve to the bit-parallel kernels (they are exact) *)
  | Scalar  (** the two-row DP: the reference oracle, and a benchmark baseline *)
  | Bitparallel  (** Myers' bit-vector kernels over [Strand.eq_masks] *)

val backend_name : backend -> string
(** ["auto"], ["scalar"] or ["bitparallel"]; benchmark/report labels. *)

val set_default_backend : backend -> unit
(** Set the process-wide backend used when [?backend] is omitted. The
    initial default is [Auto]. *)

val current_default_backend : unit -> backend

val hamming : Strand.t -> Strand.t -> int
(** Positions that differ; raises [Invalid_argument] on unequal
    lengths. *)

val levenshtein : ?backend:backend -> Strand.t -> Strand.t -> int
(** Exact edit distance. Bit-parallel backends run Myers' single-word
    kernel when the shorter strand fits 63 nt and the blocked multi-word
    kernel otherwise; [~backend:Scalar] forces the two-row DP oracle. *)

val levenshtein_banded : ?backend:backend -> band:int -> Strand.t -> Strand.t -> int
(** Ukkonen band of half-width [band]: exact whenever the true distance
    is at most [band], an upper bound otherwise. (The two backends may
    return different — both valid — upper bounds outside the band.) *)

val levenshtein_leq : ?backend:backend -> bound:int -> Strand.t -> Strand.t -> int option
(** [Some d] when the edit distance [d] is at most [bound], [None]
    otherwise; abandons the computation as soon as the bound is provably
    exceeded. The workhorse of clustering's merge test — bit-parallel it
    advances only the 63-bit blocks the band has reached (Hyyro's
    cutoff). *)

val l1 : int array -> int array -> int
(** L1 norm between equal-length integer vectors (w-gram signatures). *)
