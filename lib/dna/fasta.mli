(** Minimal FASTA reading and writing. Sequence lines may wrap; records
    with bases outside A/C/G/T are reported as errors, not dropped
    silently. *)

type record = { id : string; seq : Strand.t }
type error = { line : int; message : string }

val parse_lines : string list -> record list * error list
val parse_string : string -> record list * error list
val read_file : string -> record list * error list
val to_string : record list -> string
val write_file : string -> record list -> unit
