(** Minimal FASTA reading and writing. Sequence lines may wrap; records
    with bases outside A/C/G/T are reported as errors, not dropped
    silently. *)

type record = { id : string; seq : Strand.t }
type error = { line : int; message : string }

val parse_lines : string list -> record list * error list
val parse_string : string -> record list * error list
val read_file : string -> record list * error list

val fold_channel : in_channel -> init:'a -> f:('a -> record -> 'a) -> 'a * error list
(** Stream records off a channel without building a line list or a
    record list: only the record being parsed is live. Errors are
    collected and returned as in [parse_lines]. *)

val fold_file : string -> init:'a -> f:('a -> record -> 'a) -> 'a * error list
(** [fold_channel] on an opened file. *)

val iter_file : string -> f:(record -> unit) -> unit
(** Streams like [fold_file] but discards errors (use [fold_file] to
    observe them). *)

val to_string : record list -> string
val write_file : string -> record list -> unit
