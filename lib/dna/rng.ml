(** Deterministic, splittable pseudo-random number generator.

    Implements xoshiro256** seeded through splitmix64. Every stochastic
    component of the toolkit takes an explicit [t] so that all experiments
    are reproducible from a single integer seed. [split] derives an
    independent stream, which lets parallel stages draw without sharing
    mutable state. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: used for seeding and for splitting. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (next_int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Rejection sampling over the 62 uniform bits (Random.int's trick):
   redraw when the value lands in the incomplete top bucket, so every
   residue class is equally likely. A plain [mod] would bias low
   residues for bounds that do not divide 2^62. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec draw () =
    let v = bits62 t in
    let r = v mod bound in
    if v - r > 0x3FFFFFFFFFFFFFFF - bound + 1 then draw () else r
  in
  draw ()

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Geometric distribution on {1, 2, ...}: number of Bernoulli(p) trials up
   to and including the first success. *)
let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0, 1]";
  if p = 1.0 then 1
  else
    let u = float t in
    1 + int_of_float (Float.of_int 0 +. floor (log1p (-.u) /. log1p (-.p)))

(* Knuth's method; adequate for the small means used as sequencing coverage. *)
let poisson t lambda =
  if lambda <= 0.0 then invalid_arg "Rng.poisson: lambda must be positive";
  let limit = exp (-.lambda) in
  let rec loop k p =
    let p = p *. float t in
    if p <= limit then k else loop (k + 1) p
  in
  loop 0 1.0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

(* Sample [k] distinct indices out of [n] (reservoir when k << n). *)
let sample_indices t ~n ~k =
  if k > n then invalid_arg "Rng.sample_indices: k > n";
  let chosen = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = chosen.(i) in
    chosen.(i) <- chosen.(j);
    chosen.(j) <- tmp
  done;
  Array.sub chosen 0 k
