(** An immutable DNA strand, stored 2-bit packed.

    Bases are 0..3 codes packed {!bases_per_word} to a word in a flat
    int array; a strand is a (words, offset, length) view, so [sub] is
    O(1) and copy-free. Integer-coded access ([get_code],
    [unsafe_get_code]) keeps distance and alignment kernels cheap, and
    [eq_masks] is derived directly from the packed words. All
    construction validates or generates bases. *)

type t

val empty : t
val length : t -> int

val bases_per_word : int
(** Bases packed per int word of the underlying buffer (16). *)

val unsafe_of_packed : int array -> off:int -> len:int -> t
(** View over an existing packed buffer: base [i] is the 2-bit code at
    bit [((off + i) mod bases_per_word) * 2] of word
    [(off + i) / bases_per_word]. No validation and no copy — the caller
    must guarantee the codes in range never change afterwards (see
    {!Strand_pool} for the write-once arena discipline). *)

val of_string : string -> t
(** Accepts the characters A C G T (either case is normalized by the
    FASTA/FASTQ parsers before reaching here; this function itself is
    strict). Raises [Invalid_argument] on any other character. *)

val of_string_opt : string -> t option
val to_string : t -> string

val get : t -> int -> Nucleotide.t
val get_code : t -> int -> int
(** Base at an index as its 0..3 code. *)

val unsafe_get_code : t -> int -> int
(** No bounds check; for inner loops only. *)

val mask_bits : int
(** Bits per match-mask word: 63, OCaml's native int width. *)

val eq_masks : t -> int array
(** Per-base match masks for the bit-parallel (Myers) distance kernels:
    [ceil (length t / mask_bits)] words per base code, laid out
    base-major ([code * words + w]); bit [i] of word [w] is set when
    base [w * mask_bits + i] of the strand has that code. Built once on
    first use and cached on the strand (safe to share across domains),
    so repeated pairwise comparisons against the same strand pay the
    packing cost only once. The empty strand has an empty mask array. *)

val char_of_code : char array
(** ['A'; 'C'; 'G'; 'T'], indexed by base code. *)

val code_of_char : char -> int

val init : int -> (int -> Nucleotide.t) -> t
val init_codes : int -> (int -> int) -> t
val make : int -> Nucleotide.t -> t
val of_codes : int array -> t
val to_codes : t -> int array
val of_nucleotides : Nucleotide.t list -> t

val sub : t -> pos:int -> len:int -> t
val concat : t list -> t
val append : t -> t -> t
val rev : t -> t

val complement : t -> t
val reverse_complement : t -> t
(** The strand as read from the opposite direction (3'->5' form). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val iter : (Nucleotide.t -> unit) -> t -> unit
val fold : ('a -> Nucleotide.t -> 'a) -> 'a -> t -> 'a
val count : t -> Nucleotide.t -> int

val gc_content : t -> float
(** Fraction of G and C bases; 0 on the empty strand. *)

val max_homopolymer : t -> int
(** Length of the longest run of one repeated base. *)

val random : Rng.t -> int -> t
(** A uniform strand of the given length. *)

val find : ?from:int -> t -> pattern:t -> int option
(** Position of the first occurrence of [pattern] at or after [from]. *)

val contains : t -> pattern:t -> bool

val pp : Format.formatter -> t -> unit
