(** Packing binary data into bases and back.

    Unconstrained coding maps two bits per nucleotide (Section II-D of the
    paper): byte [b] becomes four bases, most significant bit pair first.
    [Writer] and [Reader] additionally support arbitrary-width fields,
    used for index headers. *)

(* A byte yields 4 bases: bits 7-6, 5-4, 3-2, 1-0 in that order. *)
let strand_of_bytes (data : Bytes.t) : Strand.t =
  let n = Bytes.length data in
  Strand.init_codes (4 * n) (fun i ->
      let b = Char.code (Bytes.get data (i / 4)) in
      let shift = 6 - 2 * (i mod 4) in
      (b lsr shift) land 3)

let bytes_of_strand (s : Strand.t) : Bytes.t =
  let n = Strand.length s in
  if n mod 4 <> 0 then invalid_arg "Bitstream.bytes_of_strand: length not a multiple of 4";
  Bytes.init (n / 4) (fun i ->
      let b =
        (Strand.get_code s (4 * i) lsl 6)
        lor (Strand.get_code s ((4 * i) + 1) lsl 4)
        lor (Strand.get_code s ((4 * i) + 2) lsl 2)
        lor Strand.get_code s ((4 * i) + 3)
      in
      Char.chr b)

module Writer = struct
  type t = { mutable acc : int; mutable nbits : int; buf : Buffer.t }

  let create () = { acc = 0; nbits = 0; buf = Buffer.create 64 }

  (* Append the low [width] bits of [v], most significant first. *)
  let add t ~width v =
    if width < 0 || width > 30 then invalid_arg "Bitstream.Writer.add: width";
    if width > 0 && v lsr width <> 0 then invalid_arg "Bitstream.Writer.add: value too wide";
    t.acc <- (t.acc lsl width) lor v;
    t.nbits <- t.nbits + width;
    while t.nbits >= 8 do
      t.nbits <- t.nbits - 8;
      Buffer.add_char t.buf (Char.chr ((t.acc lsr t.nbits) land 0xff))
    done;
    t.acc <- t.acc land ((1 lsl t.nbits) - 1)

  (* Zero-pad the tail to a whole byte and return the contents. *)
  let to_bytes t =
    if t.nbits > 0 then add t ~width:(8 - t.nbits) 0;
    Buffer.to_bytes t.buf
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int (* bit offset *) }

  let create data = { data; pos = 0 }

  let read t ~width =
    if width < 0 || width > 30 then invalid_arg "Bitstream.Reader.read: width";
    if t.pos + width > 8 * Bytes.length t.data then failwith "Bitstream.Reader.read: out of data";
    let v = ref 0 in
    for _ = 1 to width do
      let byte = Char.code (Bytes.get t.data (t.pos / 8)) in
      let bit = (byte lsr (7 - (t.pos mod 8))) land 1 in
      v := (!v lsl 1) lor bit;
      t.pos <- t.pos + 1
    done;
    !v

  let remaining_bits t = (8 * Bytes.length t.data) - t.pos
end
