(** Partial-order alignment (POA) graphs, after Lee, Grasso & Sharlow
    (2002) and Lee (2003) — the pure-OCaml stand-in for spoa.

    Reads are folded one at a time into a DAG whose nodes carry a base and
    a support count. Each new read is globally aligned to the graph with
    unit edit costs (the Needleman-Wunsch recurrence generalized to a DAG)
    and fused: matches reinforce existing nodes, mismatches and insertions
    add nodes. The consensus is the maximum-weight start-to-sink path,
    which the reconstruction module trims using per-node support. *)

type node = {
  code : int;  (** base, 0..3 *)
  mutable weight : int;  (** number of reads supporting this node *)
  mutable preds : (int * int) list;  (** (node id, edge weight) *)
  mutable succs : (int * int) list;
  mutable aligned : int list;  (** other nodes occupying the same column *)
}

type t = { mutable nodes : node array; mutable size : int }

let create () = { nodes = [||]; size = 0 }

let node_count g = g.size

let add_node g code =
  if g.size = Array.length g.nodes then begin
    let cap = max 16 (2 * g.size) in
    let fresh =
      Array.init cap (fun i ->
          if i < g.size then g.nodes.(i)
          else { code = 0; weight = 0; preds = []; succs = []; aligned = [] })
    in
    g.nodes <- fresh
  end;
  let id = g.size in
  g.nodes.(id) <- { code; weight = 0; preds = []; succs = []; aligned = [] };
  g.size <- id + 1;
  id

let bump_edge g ~src ~dst =
  let a = g.nodes.(src) and b = g.nodes.(dst) in
  let rec bump = function
    | [] -> None
    | (id, w) :: rest when id = dst -> Some ((id, w + 1) :: rest)
    | e :: rest -> Option.map (fun r -> e :: r) (bump rest)
  in
  (match bump a.succs with
  | Some succs -> a.succs <- succs
  | None -> a.succs <- (dst, 1) :: a.succs);
  let rec bump_p = function
    | [] -> None
    | (id, w) :: rest when id = src -> Some ((id, w + 1) :: rest)
    | e :: rest -> Option.map (fun r -> e :: r) (bump_p rest)
  in
  match bump_p b.preds with
  | Some preds -> b.preds <- preds
  | None -> b.preds <- (src, 1) :: b.preds

(* Kahn's algorithm; the graph is a DAG by construction. *)
let topo_order g =
  let indeg = Array.make g.size 0 in
  for v = 0 to g.size - 1 do
    indeg.(v) <- List.length g.nodes.(v).preds
  done;
  let order = Array.make g.size 0 in
  let filled = ref 0 in
  let queue = Queue.create () in
  for v = 0 to g.size - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun (s, _) ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      g.nodes.(v).succs
  done;
  assert (!filled = g.size);
  order

(* Insert the first read as a simple chain. *)
let add_first g (s : Strand.t) =
  let prev = ref (-1) in
  for i = 0 to Strand.length s - 1 do
    let id = add_node g (Strand.get_code s i) in
    g.nodes.(id).weight <- 1;
    if !prev >= 0 then bump_edge g ~src:!prev ~dst:id;
    prev := id
  done

(* Fuse the base of column [v] (mismatching the read base [c]): reuse an
   aligned sibling carrying [c] if one exists, otherwise create one and
   link the alignment group. *)
let aligned_sibling g v c =
  let n = g.nodes.(v) in
  List.find_opt (fun u -> g.nodes.(u).code = c) n.aligned

let link_aligned g v u =
  (* Alignment groups are cliques: every member lists every other. *)
  let group = v :: g.nodes.(v).aligned in
  List.iter
    (fun m ->
      g.nodes.(m).aligned <- u :: g.nodes.(m).aligned;
      g.nodes.(u).aligned <- m :: g.nodes.(u).aligned)
    group

type trace_step =
  | To_node of int  (** read base placed on this (possibly fresh) node id *)

let add g (s : Strand.t) =
  if g.size = 0 then add_first g s
  else begin
    let m = Strand.length s in
    let order = topo_order g in
    let rank = Array.make g.size 0 in
    Array.iteri (fun r v -> rank.(v) <- r) order;
    let n = g.size in
    let inf = max_int / 2 in
    (* dp.(r + 1).(j): min cost aligning graph-prefix ending at node
       order.(r) against the first j read bases. Row 0 is the virtual
       start. *)
    let dp = Array.make_matrix (n + 1) (m + 1) inf in
    (* move.(r+1).(j): 0 = diag from pred p, 1 = del (skip node), 2 = ins;
       from.(r+1).(j): dp row index we came from (for diag/del). *)
    let move = Array.make_matrix (n + 1) (m + 1) (-1) in
    let from = Array.make_matrix (n + 1) (m + 1) 0 in
    for j = 0 to m do
      dp.(0).(j) <- j;
      if j > 0 then move.(0).(j) <- 2
    done;
    for r = 0 to n - 1 do
      let v = order.(r) in
      let node = g.nodes.(v) in
      (* Predecessor rows: rank+1 of each pred, or the virtual start row
         when the node has no predecessor. *)
      let pred_rows =
        match node.preds with
        | [] -> [ 0 ]
        | preds -> List.map (fun (p, _) -> rank.(p) + 1) preds
      in
      let row = dp.(r + 1) in
      List.iter
        (fun pr ->
          if dp.(pr).(0) + 1 < row.(0) then begin
            row.(0) <- dp.(pr).(0) + 1;
            move.(r + 1).(0) <- 1;
            from.(r + 1).(0) <- pr
          end)
        pred_rows;
      for j = 1 to m do
        let c = Strand.unsafe_get_code s (j - 1) in
        let cost = if c = node.code then 0 else 1 in
        List.iter
          (fun pr ->
            let diag = dp.(pr).(j - 1) + cost in
            if diag < row.(j) then begin
              row.(j) <- diag;
              move.(r + 1).(j) <- 0;
              from.(r + 1).(j) <- pr
            end;
            let del = dp.(pr).(j) + 1 in
            if del < row.(j) then begin
              row.(j) <- del;
              move.(r + 1).(j) <- 1;
              from.(r + 1).(j) <- pr
            end)
          pred_rows;
        let ins = row.(j - 1) + 1 in
        if ins < row.(j) then begin
          row.(j) <- ins;
          move.(r + 1).(j) <- 2
        end
      done
    done;
    (* Global alignment ends at any sink node (no successors) with j = m. *)
    let best_row = ref 0 in
    let best = ref dp.(0).(m) in
    for r = 0 to n - 1 do
      let v = order.(r) in
      if g.nodes.(v).succs = [] && dp.(r + 1).(m) < !best then begin
        best := dp.(r + 1).(m);
        best_row := r + 1
      end
    done;
    (* Traceback collecting, for each read base, the node it lands on. *)
    let steps = ref [] in
    let r = ref !best_row and j = ref m in
    while not (!r = 0 && !j = 0) do
      match move.(!r).(!j) with
      | 0 ->
          let v = order.(!r - 1) in
          let c = Strand.get_code s (!j - 1) in
          let target =
            if g.nodes.(v).code = c then v
            else begin
              match aligned_sibling g v c with
              | Some u -> u
              | None ->
                  let u = add_node g c in
                  link_aligned g v u;
                  u
            end
          in
          steps := To_node target :: !steps;
          let pr = from.(!r).(!j) in
          r := pr;
          decr j
      | 1 ->
          let pr = from.(!r).(!j) in
          r := pr
      | 2 ->
          (* Insertion: a fresh node carrying the read base, in its own
             column. *)
          let u = add_node g (Strand.get_code s (!j - 1)) in
          steps := To_node u :: !steps;
          decr j
      | _ -> assert false
    done;
    (* Thread the read through its nodes: bump weights and edges. *)
    let prev = ref (-1) in
    List.iter
      (fun (To_node v) ->
        g.nodes.(v).weight <- g.nodes.(v).weight + 1;
        if !prev >= 0 then bump_edge g ~src:!prev ~dst:v;
        prev := v)
      !steps
  end

(* Maximum-weight path, scoring each node by its support minus [penalty].
   With penalty 0 this is the heaviest full path; with penalty around half
   the read count, minority nodes (spurious insertions) cost score, so the
   path naturally sticks to majority-supported columns. Returns base codes
   and per-position support. *)
let consensus_with_support ?(penalty = 0) g =
  if g.size = 0 then ([||], [||])
  else begin
    let order = topo_order g in
    let score = Array.make g.size 0 in
    let back = Array.make g.size (-1) in
    Array.iter
      (fun v ->
        let node = g.nodes.(v) in
        let best_pred =
          List.fold_left
            (fun acc (p, _) ->
              match acc with
              | Some (_, s) when s >= score.(p) -> acc
              | _ -> Some (p, score.(p)))
            None node.preds
        in
        (match best_pred with Some (p, _) -> back.(v) <- p | None -> back.(v) <- -1);
        score.(v) <- node.weight - penalty + (match best_pred with Some (_, s) -> s | None -> 0))
      order;
    let best_end = ref order.(0) in
    for v = 0 to g.size - 1 do
      if score.(v) > score.(!best_end) then best_end := v
    done;
    let rec collect v acc = if v < 0 then acc else collect back.(v) (v :: acc) in
    let path = collect !best_end [] in
    let codes = Array.of_list (List.map (fun v -> g.nodes.(v).code) path) in
    let support = Array.of_list (List.map (fun v -> g.nodes.(v).weight) path) in
    (codes, support)
  end

let consensus g =
  let codes, _ = consensus_with_support g in
  Strand.of_codes codes

(* Column-wise consensus: alignment cliques are the columns of the
   multiple sequence alignment. Each column's support is the total
   number of reads placing a base there (the rest aligned a gap); the
   majority base wins. This is the paper's "majority vote at every
   index" over the NW alignment, and unlike the heaviest path it stays
   stable as coverage grows: extra reads only sharpen the majorities.
   Returns (majority codes, per-column support) in backbone order. *)
let consensus_columns ?(n_reads = 0) g =
  if g.size = 0 then ([||], [||])
  else begin
    let order = topo_order g in
    let rank = Array.make g.size 0 in
    Array.iteri (fun r v -> rank.(v) <- r) order;
    (* Column id = representative node = member with minimum rank. *)
    let column_of = Array.make g.size (-1) in
    for v = 0 to g.size - 1 do
      if column_of.(v) < 0 then begin
        let members = v :: g.nodes.(v).aligned in
        let repr =
          List.fold_left (fun best m -> if rank.(m) < rank.(best) then m else best) v members
        in
        List.iter (fun m -> column_of.(m) <- repr) members
      end
    done;
    (* Aggregate per column: total support and per-base support. *)
    let tbl = Hashtbl.create 64 in
    for v = 0 to g.size - 1 do
      let c = column_of.(v) in
      let counts =
        match Hashtbl.find_opt tbl c with
        | Some counts -> counts
        | None ->
            let counts = Array.make 4 0 in
            Hashtbl.add tbl c counts;
            counts
      in
      counts.(g.nodes.(v).code) <- counts.(g.nodes.(v).code) + g.nodes.(v).weight
    done;
    let columns =
      Hashtbl.fold (fun repr counts acc -> (rank.(repr), counts) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (* Keep columns where at least half the reads contributed a base;
       with unknown [n_reads] keep everything and let the caller trim. *)
    let majority_needed = if n_reads > 0 then (n_reads + 1) / 2 else 1 in
    let kept =
      List.filter_map
        (fun (_, counts) ->
          let total = Array.fold_left ( + ) 0 counts in
          if total < majority_needed then None
          else begin
            let best = ref 0 in
            Array.iteri (fun b c -> if c > counts.(!best) then best := b) counts;
            Some (!best, total)
          end)
        columns
    in
    (Array.of_list (List.map fst kept), Array.of_list (List.map snd kept))
  end

(* Convenience: build a graph from reads and return it. *)
let of_reads reads =
  let g = create () in
  List.iter (fun r -> add g r) reads;
  g
