(** Partial-order alignment (POA) graphs, after Lee, Grasso & Sharlow
    (2002) and Lee (2003) — the pure-OCaml stand-in for spoa.

    Reads are folded one at a time into a DAG whose nodes carry a base and
    a support count. Each new read is globally aligned to the graph with
    unit edit costs (the Needleman-Wunsch recurrence generalized to a DAG)
    and fused: matches reinforce existing nodes, mismatches and insertions
    add nodes. The consensus is the maximum-weight start-to-sink path,
    which the reconstruction module trims using per-node support.

    Alignment is band-limited in the style of spoa's banded POA: each
    graph node [v] only scores read positions within [band] of its
    possible path positions — the window
    [[sdepth v - band, depth v + band]], where [sdepth]/[depth] are the
    shortest/longest source-to-[v] path lengths. Any alignment of cost
    [d] keeps every DP cell [(v, j)] within
    [dist (j, [sdepth v, depth v]) <= d] of that interval, so whenever
    the banded best score is [<= band] the score, the traceback, and
    therefore the fused graph are bit-identical to the unpruned DP's;
    otherwise [add] falls back to a full recompute. DP state lives in
    flat per-domain scratch arrays (no [Array.make_matrix] boxed rows
    per read), and per-node in-degrees are maintained incrementally on
    the graph instead of being recounted from adjacency lists on every
    [add]. *)

type node = {
  code : int;  (** base, 0..3 *)
  mutable weight : int;  (** number of reads supporting this node *)
  mutable preds : (int * int) list;  (** (node id, edge weight) *)
  mutable succs : (int * int) list;
  mutable aligned : int list;  (** other nodes occupying the same column *)
}

type t = {
  mutable nodes : node array;
  mutable size : int;
  mutable indeg : int array;
      (* indeg.(v) = List.length nodes.(v).preds, maintained by
         [bump_edge] so topological sorts never walk adjacency lists to
         count. *)
}

let create () = { nodes = [||]; size = 0; indeg = [||] }

let node_count g = g.size

let add_node g code =
  if g.size = Array.length g.nodes then begin
    let cap = max 16 (2 * g.size) in
    let fresh =
      Array.init cap (fun i ->
          if i < g.size then g.nodes.(i)
          else { code = 0; weight = 0; preds = []; succs = []; aligned = [] })
    in
    g.nodes <- fresh;
    let indeg = Array.make cap 0 in
    Array.blit g.indeg 0 indeg 0 g.size;
    g.indeg <- indeg
  end;
  let id = g.size in
  g.nodes.(id) <- { code; weight = 0; preds = []; succs = []; aligned = [] };
  g.indeg.(id) <- 0;
  g.size <- id + 1;
  id

let bump_edge g ~src ~dst =
  let a = g.nodes.(src) and b = g.nodes.(dst) in
  let rec bump = function
    | [] -> None
    | (id, w) :: rest when id = dst -> Some ((id, w + 1) :: rest)
    | e :: rest -> Option.map (fun r -> e :: r) (bump rest)
  in
  (match bump a.succs with
  | Some succs -> a.succs <- succs
  | None -> a.succs <- (dst, 1) :: a.succs);
  let rec bump_p = function
    | [] -> None
    | (id, w) :: rest when id = src -> Some ((id, w + 1) :: rest)
    | e :: rest -> Option.map (fun r -> e :: r) (bump_p rest)
  in
  match bump_p b.preds with
  | Some preds -> b.preds <- preds
  | None ->
      b.preds <- (src, 1) :: b.preds;
      g.indeg.(dst) <- g.indeg.(dst) + 1

(* Kahn's algorithm over the incremental in-degree array; the [order]
   array doubles as the work queue. The graph is a DAG by construction. *)
let topo_order g =
  let indeg = Array.sub g.indeg 0 g.size in
  let order = Array.make g.size 0 in
  let filled = ref 0 in
  for v = 0 to g.size - 1 do
    if indeg.(v) = 0 then begin
      order.(!filled) <- v;
      incr filled
    end
  done;
  let head = ref 0 in
  while !head < !filled do
    let v = order.(!head) in
    incr head;
    List.iter
      (fun (s, _) ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then begin
          order.(!filled) <- s;
          incr filled
        end)
      g.nodes.(v).succs
  done;
  assert (!filled = g.size);
  order

(* Insert the first read as a simple chain. *)
let add_first g (s : Strand.t) =
  let prev = ref (-1) in
  for i = 0 to Strand.length s - 1 do
    let id = add_node g (Strand.get_code s i) in
    g.nodes.(id).weight <- 1;
    if !prev >= 0 then bump_edge g ~src:!prev ~dst:id;
    prev := id
  done

(* Fuse the base of column [v] (mismatching the read base [c]): reuse an
   aligned sibling carrying [c] if one exists, otherwise create one and
   link the alignment group. *)
let aligned_sibling g v c =
  let n = g.nodes.(v) in
  List.find_opt (fun u -> g.nodes.(u).code = c) n.aligned

let link_aligned g v u =
  (* Alignment groups are cliques: every member lists every other. *)
  let group = v :: g.nodes.(v).aligned in
  List.iter
    (fun m ->
      g.nodes.(m).aligned <- u :: g.nodes.(m).aligned;
      g.nodes.(u).aligned <- m :: g.nodes.(u).aligned)
    group

type trace_step =
  | To_node of int  (** read base placed on this (possibly fresh) node id *)

let inf = max_int / 4

(* Per-domain scratch arena for [add]: row geometry, node depths and the
   flat DP/move/from cells, reused across every read a worker folds in. *)
type scratch = {
  mutable rank : int array;  (* length >= size: rank.(v), sdepth.(v), depth.(v) *)
  mutable sdepth : int array;
  mutable depth : int array;
  mutable lo : int array;  (* length >= size + 1: per-row window and offset *)
  mutable hi : int array;
  mutable off : int array;
  mutable dp : int array;  (* flat cells, row r at off.(r) covering [lo.(r), hi.(r)] *)
  mutable move : int array;  (* 0 = diag from pred, 1 = del (skip node), 2 = ins *)
  mutable from : int array;  (* dp row index we came from (for diag/del) *)
  mutable codes : int array;  (* the read's base codes *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        rank = [||];
        sdepth = [||];
        depth = [||];
        lo = [||];
        hi = [||];
        off = [||];
        dp = [||];
        move = [||];
        from = [||];
        codes = [||];
      })

let ensure arr n = if Array.length arr >= n then arr else Array.make (max n (2 * Array.length arr)) 0

(* One banded DP + traceback + fusion pass at half-width [band]. Returns
   [true] when the result is certifiably exact (best score <= band) and
   the read was fused; [false] leaves the graph untouched so the caller
   can retry unbanded. *)
let add_banded g (s : Strand.t) order ~band =
  let m = Strand.length s in
  let n = g.size in
  let sc = Domain.DLS.get scratch_key in
  let rank = ensure sc.rank n in
  sc.rank <- rank;
  Array.iteri (fun r v -> rank.(v) <- r) order;
  let codes = ensure sc.codes m in
  sc.codes <- codes;
  for j = 0 to m - 1 do
    codes.(j) <- Strand.unsafe_get_code s j
  done;
  (* Shortest/longest source-to-node path lengths (counting the node),
     in topological order: the read positions a node can occupy. *)
  let sdepth = ensure sc.sdepth n and depth = ensure sc.depth n in
  sc.sdepth <- sdepth;
  sc.depth <- depth;
  Array.iter
    (fun v ->
      match g.nodes.(v).preds with
      | [] ->
          sdepth.(v) <- 1;
          depth.(v) <- 1
      | preds ->
          let smin = ref inf and smax = ref 0 in
          List.iter
            (fun (p, _) ->
              if sdepth.(p) < !smin then smin := sdepth.(p);
              if depth.(p) > !smax then smax := depth.(p))
            preds;
          sdepth.(v) <- !smin + 1;
          depth.(v) <- !smax + 1)
    order;
  (* Row windows: row 0 is the virtual start, row r+1 is order.(r). *)
  let lo = ensure sc.lo (n + 1) and hi = ensure sc.hi (n + 1) and off = ensure sc.off (n + 2) in
  sc.lo <- lo;
  sc.hi <- hi;
  sc.off <- off;
  lo.(0) <- 0;
  hi.(0) <- min m band;
  for r = 0 to n - 1 do
    let v = order.(r) in
    lo.(r + 1) <- max 0 (sdepth.(v) - band);
    hi.(r + 1) <- min m (depth.(v) + band)
  done;
  off.(0) <- 0;
  for row = 0 to n do
    off.(row + 1) <- off.(row) + (max 0 (hi.(row) - lo.(row)) + 1)
  done;
  let total = off.(n + 1) in
  let dp = ensure sc.dp total and move = ensure sc.move total and from = ensure sc.from total in
  sc.dp <- dp;
  sc.move <- move;
  sc.from <- from;
  Array.fill dp 0 total inf;
  (* dp cell (row, j): min cost aligning the graph prefix ending at the
     row's node against the first j read bases; [inf] outside the row's
     window. *)
  let get row j = if j < lo.(row) || j > hi.(row) then inf else dp.(off.(row) + j - lo.(row)) in
  for j = 0 to hi.(0) do
    dp.(j) <- j;
    if j > 0 then move.(j) <- 2
  done;
  for r = 0 to n - 1 do
    let v = order.(r) in
    let node = g.nodes.(v) in
    let row = r + 1 in
    let rlo = lo.(row) and rhi = hi.(row) and rof = off.(row) in
    let scan_preds f =
      (* Predecessor rows: rank+1 of each pred, or the virtual start row
         when the node has no predecessor. *)
      match node.preds with [] -> f 0 | preds -> List.iter (fun (p, _) -> f (rank.(p) + 1)) preds
    in
    if rlo = 0 then
      scan_preds (fun pr ->
          let v = get pr 0 + 1 in
          if v < dp.(rof) then begin
            dp.(rof) <- v;
            move.(rof) <- 1;
            from.(rof) <- pr
          end);
    for j = max 1 rlo to rhi do
      let c = codes.(j - 1) in
      let cost = if c = node.code then 0 else 1 in
      let cell = rof + j - rlo in
      scan_preds (fun pr ->
          let diag = get pr (j - 1) + cost in
          if diag < dp.(cell) then begin
            dp.(cell) <- diag;
            move.(cell) <- 0;
            from.(cell) <- pr
          end;
          let del = get pr j + 1 in
          if del < dp.(cell) then begin
            dp.(cell) <- del;
            move.(cell) <- 1;
            from.(cell) <- pr
          end);
      let ins = (if j - 1 >= rlo then dp.(cell - 1) else inf) + 1 in
      if ins < dp.(cell) then begin
        dp.(cell) <- ins;
        move.(cell) <- 2
      end
    done
  done;
  (* Global alignment ends at any sink node (no successors) with j = m. *)
  let best_row = ref 0 in
  let best = ref (get 0 m) in
  for r = 0 to n - 1 do
    let v = order.(r) in
    if g.nodes.(v).succs = [] && get (r + 1) m < !best then begin
      best := get (r + 1) m;
      best_row := r + 1
    end
  done;
  if !best > band then false
  else begin
    (* Traceback collecting, for each read base, the node it lands on. *)
    let steps = ref [] in
    let r = ref !best_row and j = ref m in
    while not (!r = 0 && !j = 0) do
      let cell = off.(!r) + !j - lo.(!r) in
      match move.(cell) with
      | 0 ->
          let v = order.(!r - 1) in
          let c = codes.(!j - 1) in
          let target =
            if g.nodes.(v).code = c then v
            else begin
              match aligned_sibling g v c with
              | Some u -> u
              | None ->
                  let u = add_node g c in
                  link_aligned g v u;
                  u
            end
          in
          steps := To_node target :: !steps;
          r := from.(cell);
          decr j
      | 1 -> r := from.(cell)
      | 2 ->
          (* Insertion: a fresh node carrying the read base, in its own
             column. *)
          let u = add_node g codes.(!j - 1) in
          steps := To_node u :: !steps;
          decr j
      | _ -> assert false
    done;
    (* Thread the read through its nodes: bump weights and edges. *)
    let prev = ref (-1) in
    List.iter
      (fun (To_node v) ->
        g.nodes.(v).weight <- g.nodes.(v).weight + 1;
        if !prev >= 0 then bump_edge g ~src:!prev ~dst:v;
        prev := v)
      !steps;
    true
  end

let add ?(band = Alignment.default_band) g (s : Strand.t) =
  if g.size = 0 then add_first g s
  else begin
    let order = topo_order g in
    let band = max 1 band in
    if not (add_banded g s order ~band) then
      (* The optimal alignment may have left the band: redo unpruned. A
         window of m + size covers every cell, so this pass cannot fail. *)
      ignore (add_banded g s order ~band:(Strand.length s + g.size))
  end

(* Maximum-weight path, scoring each node by its support minus [penalty].
   With penalty 0 this is the heaviest full path; with penalty around half
   the read count, minority nodes (spurious insertions) cost score, so the
   path naturally sticks to majority-supported columns. Returns base codes
   and per-position support. *)
let consensus_with_support ?(penalty = 0) g =
  if g.size = 0 then ([||], [||])
  else begin
    let order = topo_order g in
    let score = Array.make g.size 0 in
    let back = Array.make g.size (-1) in
    Array.iter
      (fun v ->
        let node = g.nodes.(v) in
        let best_pred =
          List.fold_left
            (fun acc (p, _) ->
              match acc with
              | Some (_, s) when s >= score.(p) -> acc
              | _ -> Some (p, score.(p)))
            None node.preds
        in
        (match best_pred with Some (p, _) -> back.(v) <- p | None -> back.(v) <- -1);
        score.(v) <- node.weight - penalty + (match best_pred with Some (_, s) -> s | None -> 0))
      order;
    let best_end = ref order.(0) in
    for v = 0 to g.size - 1 do
      if score.(v) > score.(!best_end) then best_end := v
    done;
    let rec collect v acc = if v < 0 then acc else collect back.(v) (v :: acc) in
    let path = collect !best_end [] in
    let codes = Array.of_list (List.map (fun v -> g.nodes.(v).code) path) in
    let support = Array.of_list (List.map (fun v -> g.nodes.(v).weight) path) in
    (codes, support)
  end

let consensus g =
  let codes, _ = consensus_with_support g in
  Strand.of_codes codes

(* Column-wise consensus: alignment cliques are the columns of the
   multiple sequence alignment. Each column's support is the total
   number of reads placing a base there (the rest aligned a gap); the
   majority base wins. This is the paper's "majority vote at every
   index" over the NW alignment, and unlike the heaviest path it stays
   stable as coverage grows: extra reads only sharpen the majorities.
   Returns (majority codes, per-column support) in backbone order. *)
let consensus_columns ?(n_reads = 0) g =
  if g.size = 0 then ([||], [||])
  else begin
    let order = topo_order g in
    let rank = Array.make g.size 0 in
    Array.iteri (fun r v -> rank.(v) <- r) order;
    (* Column id = representative node = member with minimum rank. *)
    let column_of = Array.make g.size (-1) in
    for v = 0 to g.size - 1 do
      if column_of.(v) < 0 then begin
        let members = v :: g.nodes.(v).aligned in
        let repr =
          List.fold_left (fun best m -> if rank.(m) < rank.(best) then m else best) v members
        in
        List.iter (fun m -> column_of.(m) <- repr) members
      end
    done;
    (* Aggregate per column: total support and per-base support. *)
    let tbl = Hashtbl.create 64 in
    for v = 0 to g.size - 1 do
      let c = column_of.(v) in
      let counts =
        match Hashtbl.find_opt tbl c with
        | Some counts -> counts
        | None ->
            let counts = Array.make 4 0 in
            Hashtbl.add tbl c counts;
            counts
      in
      counts.(g.nodes.(v).code) <- counts.(g.nodes.(v).code) + g.nodes.(v).weight
    done;
    let columns =
      Hashtbl.fold (fun repr counts acc -> (rank.(repr), counts) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (* Keep columns where at least half the reads contributed a base;
       with unknown [n_reads] keep everything and let the caller trim. *)
    let majority_needed = if n_reads > 0 then (n_reads + 1) / 2 else 1 in
    let kept =
      List.filter_map
        (fun (_, counts) ->
          let total = Array.fold_left ( + ) 0 counts in
          if total < majority_needed then None
          else begin
            let best = ref 0 in
            Array.iteri (fun b c -> if c > counts.(!best) then best := b) counts;
            Some (!best, total)
          end)
        columns
    in
    (Array.of_list (List.map fst kept), Array.of_list (List.map snd kept))
  end

(* Convenience: build a graph from reads and return it. *)
let of_reads ?band reads =
  let g = create () in
  List.iter (fun r -> add ?band g r) reads;
  g
