(** Needleman-Wunsch global pairwise alignment with traceback, at unit
    costs — the optimal score equals the edit distance. *)

type op =
  | Match of Nucleotide.t
  | Substitute of Nucleotide.t * Nucleotide.t  (** original base, read base *)
  | Delete of Nucleotide.t  (** base of the first strand missing from the second *)
  | Insert of Nucleotide.t  (** base of the second strand absent from the first *)

type t = {
  score : int;  (** total edit cost *)
  script : op list;  (** operations transforming the first strand into the second *)
}

val gap_char : char
(** '-', used by {!padded}. *)

val align : Strand.t -> Strand.t -> t
(** [align a b] computes an optimal global alignment, preferring
    diagonal moves on ties so scripts stay maximally aligned. *)

val padded : t -> string * string
(** Both strands rendered with gap characters so that aligned positions
    line up; the two strings have equal length. *)

val apply_script : op list -> Strand.t
(** Replay a script to recover the second strand. *)

type op_kind = Kmatch | Ksub | Kdel | Kins

val kind : op -> op_kind

val counts : t -> int * int * int * int
(** (matches, substitutions, deletions, insertions). *)
