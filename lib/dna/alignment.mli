(** Needleman-Wunsch global pairwise alignment with traceback, at unit
    costs — the optimal score equals the edit distance.

    Two kernels, selected per call or process-wide via {!backend}: the
    full O(la*lb) matrix (the reference oracle) and a Ukkonen-banded
    variant that computes O(la*band) cells and falls back to a full
    recompute whenever the optimal path may have hit the band edge, so
    scores and scripts are always exact and bit-identical to the
    oracle's. Both kernels run over flat scratch arrays drawn from a
    per-domain arena: parallel reconstruction workers never reallocate
    DP state between calls. *)

type op =
  | Match of Nucleotide.t
  | Substitute of Nucleotide.t * Nucleotide.t  (** original base, read base *)
  | Delete of Nucleotide.t  (** base of the first strand missing from the second *)
  | Insert of Nucleotide.t  (** base of the second strand absent from the first *)

type t = {
  score : int;  (** total edit cost *)
  script : op list;  (** operations transforming the first strand into the second *)
}

val gap_char : char
(** '-', used by {!padded}. *)

type backend =
  | Auto  (** resolve to the banded kernel (its fallback guard keeps it exact) *)
  | Full  (** the full DP matrix: the reference oracle, and a benchmark baseline *)
  | Banded  (** Ukkonen band with full-matrix fallback at the band edge *)

val backend_name : backend -> string
(** ["auto"], ["full"] or ["banded"]; benchmark/report labels. *)

val set_default_backend : backend -> unit
(** Set the process-wide backend used when [?backend] is omitted. The
    initial default is [Auto]. *)

val current_default_backend : unit -> backend

val default_band : int
(** Default half-width for band-limited consumers that want a fixed
    band (e.g. {!Poa.add}): 16, comfortably above the edit distance of
    sibling reads at realistic sequencing error rates. *)

val banded_fallbacks : unit -> int
(** Process-wide count of banded runs that fell back to the full matrix
    because their score exceeded the band. Only an explicit [?band] can
    trigger this (a high rate signals it is too narrow for the
    workload); the score-first default band never retries. *)

val reset_banded_fallbacks : unit -> unit

val scratch_capacity_words : unit -> int
(** Capacity currently held by the calling domain's alignment arena
    (DP cells, code buffers, op scripts), in array slots. Grow-only:
    steady under a fixed workload once the largest alignment has been
    seen — the invariant pool-native reconstruction leans on. *)

val align : ?backend:backend -> ?band:int -> Strand.t -> Strand.t -> t
(** [align a b] computes an optimal global alignment, preferring
    diagonal moves on ties so scripts stay maximally aligned. The result
    (score and script) is identical for every backend and band: a banded
    run is only accepted when its score is certifiably exact
    (score <= band). With an explicit [band] (clamped to at least 1, the
    half-width around the main diagonal), a failed attempt recomputes in
    full; when [band] is omitted the kernel first pins the exact
    distance d with the bit-parallel {!Distance.levenshtein} and runs a
    single banded pass at band d — the minimal exact band — taking the
    full matrix once that band covers half the columns. *)

(** {2 Packed scripts — the zero-allocation hot path}

    Consensus loops align thousands of reads and immediately fold each
    script into count tables; materializing an [op list] per alignment
    (two heap blocks per operation) was a measurable fraction of the
    whole reconstruction. [align_packed] returns the script as packed
    ints in an arena buffer instead. *)

type packed = {
  packed_score : int;  (** total edit cost, same as {!t.score} *)
  ops : int array;
      (** arena-owned — valid only until the next alignment on this
          domain; consume (or copy) before aligning again *)
  off : int;  (** index of the first op in [ops] *)
  lim : int;  (** one past the last op *)
}

val align_packed : ?backend:backend -> ?band:int -> Strand.t -> Strand.t -> packed
(** Exactly {!align} (same dispatch, same script, same exactness
    guarantees) without building the [op list]: ops are packed ints in
    [ops.(off .. lim - 1)], forward order, decoded by {!packed_kind} /
    {!packed_a} / {!packed_b}. *)

val packed_kind : int -> int
(** 0 = match, 1 = substitute, 2 = delete, 3 = insert. *)

val packed_a : int -> int
(** Code of the first strand's base (match / substitute / delete). *)

val packed_b : int -> int
(** Code of the second strand's base (match / substitute / insert). *)

val script_of_packed : packed -> op list
(** Decode into the ordinary constructors ([align] is [align_packed]
    followed by this). *)

val padded : t -> string * string
(** Both strands rendered with gap characters so that aligned positions
    line up; the two strings have equal length. *)

val apply_script : op list -> Strand.t
(** Replay a script to recover the second strand. *)

type op_kind = Kmatch | Ksub | Kdel | Kins

val kind : op -> op_kind

val counts : t -> int * int * int * int
(** (matches, substitutions, deletions, insertions). *)
