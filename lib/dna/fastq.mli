(** Minimal FASTQ reading and writing (Sanger quality offset 33).
    Malformed records are reported per record, since sequencers emit
    occasional junk. *)

type record = { id : string; seq : Strand.t; qual : int array }
type error = { line : int; message : string }

val phred_offset : int

val qual_of_string : string -> int array
(** Decode a Sanger quality string. Raises [Invalid_argument] on
    characters below ['!'] (they would decode to negative Phred
    scores). *)

val qual_of_string_opt : string -> int array option
(** [None] when any character sits below ['!']. *)

val qual_to_string : int array -> string

val parse_lines : string list -> record list * error list
val parse_string : string -> record list * error list
val read_file : string -> record list * error list

val fold_channel : in_channel -> init:'a -> f:('a -> record -> 'a) -> 'a * error list
(** Stream records off a channel without building a line list or a
    record list: only the record being parsed is live. Errors are
    collected and returned as in [parse_lines]. *)

val fold_file : string -> init:'a -> f:('a -> record -> 'a) -> 'a * error list
(** [fold_channel] on an opened file. *)

val iter_file : string -> f:(record -> unit) -> unit
(** Streams like [fold_file] but discards errors (use [fold_file] to
    observe them). *)

val to_string : record list -> string
val write_file : string -> record list -> unit

val with_uniform_quality : q:int -> Strand.t -> int array
(** A constant quality track for simulated reads. *)
