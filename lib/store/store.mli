(** A persistent, sharded, rewritable DNA object store.

    On disk a store is a directory: a crash-safe JSON manifest
    ([MANIFEST.json], always updated write-temp-then-rename) plus
    per-shard oligo pools serialized as FASTA under [shards/]. Objects
    are addressed by primer pairs; [overwrite] and [delete] retire pairs
    without touching molecules, and {!compact} re-synthesizes live
    objects into fresh shards, reclaiming the retired primer space.
    Reads run the full wetlab path (PCR selection, sequencing,
    clustering, reconstruction, decode) against only the object's shard,
    behind an LRU cache of decoded objects. *)

module Json : module type of Store_json
(** The hand-rolled JSON layer backing the manifest (exposed for tests
    and tools). *)

module Lru : module type of Lru
(** The decoded-object cache (exposed for tests). *)

type config = Manifest.config = {
  shard_target_strands : int;  (** open a new shard once the current one reaches this *)
  cache_objects : int;  (** LRU capacity for decoded objects *)
  error_rate : float;  (** per-base error rate of the sequencing channel *)
  coverage : int;  (** base sequencing depth; scaled per shard access *)
}

val default_config : config

val format_version : int
(** Version stamped into every manifest; [open_store] refuses others. *)

type error =
  | Key_not_found of string
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
  | Decode_failed of { key : string; reason : string }
  | Corrupt of string

val error_message : error -> string

type t

val init : ?config:config -> dir:string -> seed:int -> unit -> (t, error) result
(** Create a fresh store directory (made if missing); refuses a
    directory that already holds a manifest. *)

val open_store : dir:string -> (t, error) result
(** Reopen an existing store. The rng stream is re-derived from the
    seed and the manifest generation, so a reopened store does not
    replay the draws of its previous life. *)

val dir : t -> string
val config : t -> config
val generation : t -> int
val keys : t -> string list
val mem : t -> string -> bool

val put :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> t -> key:string -> Bytes.t ->
  (unit, error) result
(** Encode under a fresh primer pair and append to the open shard
    (shard file written before the manifest, so a crash never leaves the
    manifest pointing at missing molecules). If encoding raises, the
    reserved pair is released before the exception propagates. *)

val overwrite : t -> key:string -> Bytes.t -> (unit, error) result
(** Append a new version under a fresh pair (same codec parameters);
    the old version's pair is retired and its molecules become dead
    until {!compact}. *)

val delete : t -> key:string -> (unit, error) result
(** Drop the object from the directory and retire its pair; the
    molecules stay in their shard until {!compact}. *)

val get : ?use_cache:bool -> t -> key:string -> (Bytes.t, error) result

val get_batch :
  ?domains:int -> ?use_cache:bool -> ?recon_backend:Dna.Alignment.backend -> t -> string list ->
  (string * (Bytes.t, error) result) list
(** Serve many keys in one pass, in input order (duplicates allowed —
    a key requested twice decodes once and answers twice): cache hits
    answer immediately; misses are deduplicated and grouped so each
    shard is PCR-selected and sequenced once, then the whole per-object
    wetlab path (sequencing, demux, clustering, reconstruction, decode)
    fans out over the domain pool. Each object's stochastic draws come
    from a stream derived from (store seed, key, version), so the bytes
    a key decodes to are identical across [get], any batch composition
    and any [domains]. [recon_backend] selects the consensus alignment
    kernel (see {!Dna.Alignment.align}); decoded bytes are identical
    for every choice. *)

val sequencing_passes : t -> int
(** Wetlab sequencing passes run so far: a batched get counts one per
    shard touched, however many coalesced objects rode on it. The
    serving layer's coalescing tests and stats read this. *)

val object_shard : t -> key:string -> int option
(** The shard an object currently lives in (workload generators use it
    to build same-shard batches). *)

type compact_stats = {
  objects_rewritten : int;
  strands_before : int;
  strands_after : int;
  shards_before : int;
  shards_after : int;
  primer_pairs_reclaimed : int;
}

val compact : t -> (compact_stats, error) result
(** Re-synthesize every live object into fresh densely packed shards,
    drop dead molecules and release retired primer pairs. All-or-nothing:
    every live object is decoded before anything on disk changes, and a
    failure leaves the store untouched. *)

type stats = {
  n_objects : int;
  n_shards : int;
  n_strands : int;
  dead_strands : int;
  live_primer_pairs : int;
  retired_primer_pairs : int;
  cache_hits : int;
  cache_misses : int;
  generation : int;
}

val stats : t -> stats
val render_stats : t -> string

(**/**)

(* Introspection for tests and benchmarks. *)
val shard_files : t -> string list
val object_pair : t -> key:string -> Codec.Primer.pair option
val pair_reserved : t -> Codec.Primer.pair -> bool
