(** A persistent, sharded, rewritable DNA object store.

    On disk a store is a directory: a crash-safe JSON manifest
    ([MANIFEST.json], always updated write-temp-then-rename) plus
    per-shard oligo pools serialized as FASTA under [shards/]. Objects
    are addressed by primer pairs; [overwrite] and [delete] retire pairs
    without touching molecules, and {!compact} re-synthesizes live
    objects into fresh shards, reclaiming the retired primer space.
    Reads run the full wetlab path (PCR selection, sequencing,
    clustering, reconstruction, decode) against only the object's shard,
    behind an LRU cache of decoded objects.

    Durability is part of the contract, not an assumption: every byte to
    or from disk goes through a {!Store_io.t} (pluggable, fault
    injectable), the manifest records CRC-32 checksums for every shard
    pool and object payload, {!scrub} detects and self-repairs
    corruption, {!get_partial} serves degraded reads from whatever
    molecules survive, and opening a store reclaims the [.tmp]/orphan
    debris of an interrupted run. *)

module Json : module type of Store_json
(** The hand-rolled JSON layer backing the manifest (exposed for tests
    and tools). *)

module Lru : module type of Lru
(** The decoded-object cache (exposed for tests). *)

module Io : module type of Store_io
(** The filesystem boundary (exposed for the crash harness, tests and
    the CLI's fault flags). *)

type config = Manifest.config = {
  shard_target_strands : int;  (** open a new shard once the current one reaches this *)
  cache_objects : int;  (** LRU capacity for decoded objects *)
  error_rate : float;  (** per-base error rate of the sequencing channel *)
  coverage : int;  (** base sequencing depth; scaled per shard access *)
}

val default_config : config

val format_version : int
(** Version stamped into every manifest; [open_store] reads this and the
    previous (checksum-free) version, and refuses others. *)

type error =
  | Key_not_found of string
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
  | Decode_failed of { key : string; reason : string }
  | Corrupt of string  (** manifest-level damage *)
  | Corrupt_shard of { shard : int; reason : string }
      (** a shard pool is missing, unparsable, short of its recorded
          strand count, checksum-mismatched, or quarantined *)
  | Io_error of string
      (** a write failed (ENOSPC, failed rename); the store's on-disk
          state is unchanged or safely orphaned, never torn *)
  | Object_degraded of { key : string; recovered_fraction : float }
      (** scrub marked the object partially recoverable; normal reads
          refuse it — {!get_partial} serves the surviving bytes *)
  | Object_lost of string  (** scrub could not recover any unit *)

val error_message : error -> string

type t

val init : ?config:config -> ?io:Store_io.t -> dir:string -> seed:int -> unit -> (t, error) result
(** Create a fresh store directory (made if missing); refuses a
    directory that already holds a manifest. *)

val open_store : ?io:Store_io.t -> dir:string -> unit -> (t, error) result
(** Reopen an existing store. The rng stream is re-derived from the
    seed and the manifest generation, so a reopened store does not
    replay the draws of its previous life. Reclaims leftover [.tmp]
    files and unreferenced shard files (debris of an interrupted run —
    acked state never lives in either); the count lands in
    {!stats}. *)

val dir : t -> string
val config : t -> config
val generation : t -> int
val keys : t -> string list
val mem : t -> string -> bool

val put :
  ?params:Codec.Params.t -> ?layout:Codec.Layout.t -> t -> key:string -> Bytes.t ->
  (unit, error) result
(** Encode under a fresh primer pair and append to the open shard
    (shard file written before the manifest, so a crash never leaves the
    manifest pointing at missing molecules). If encoding raises, the
    reserved pair is released before the exception propagates; a
    simulated I/O failure returns [Io_error] with the pair released and
    nothing acked. *)

val overwrite : t -> key:string -> Bytes.t -> (unit, error) result
(** Append a new version under a fresh pair (same codec parameters);
    the old version's pair is retired and its molecules become dead
    until {!compact}. *)

val delete : t -> key:string -> (unit, error) result
(** Drop the object from the directory and retire its pair; the
    molecules stay in their shard until {!compact}. *)

val get : ?use_cache:bool -> t -> key:string -> (Bytes.t, error) result
(** Fails typed — never raises — on damage: [Corrupt_shard] when the
    object's pool is unreadable or checksum-mismatched, [Object_degraded]
    / [Object_lost] when scrub has classified the object. *)

val get_batch :
  ?domains:int -> ?use_cache:bool -> ?recon_backend:Dna.Alignment.backend -> ?recon_pool:bool ->
  t -> string list ->
  (string * (Bytes.t, error) result) list
(** Serve many keys in one pass, in input order (duplicates allowed —
    a key requested twice decodes once and answers twice): cache hits
    answer immediately; misses are deduplicated and grouped so each
    shard is PCR-selected and sequenced once, then the whole per-object
    wetlab path (sequencing, demux, clustering, reconstruction, decode)
    fans out over the domain pool. Each object's stochastic draws come
    from a stream derived from (store seed, key, version), so the bytes
    a key decodes to are identical across [get], any batch composition
    and any [domains]. [recon_backend] selects the consensus alignment
    kernel (see {!Dna.Alignment.align}); decoded bytes are identical
    for every choice. [recon_pool] (default [true]) keeps each object's
    demuxed core arena pool-native through clustering and consensus
    (index slices + per-domain scratch, no boxed strand per read);
    [false] routes through the historical boxed path. *)

type partial_read = {
  bytes : Bytes.t;  (** best-effort reconstruction, length = original size *)
  recovered_fraction : float;
  recovered_ranges : (int * int) list;
      (** maximal [start, stop) intervals of [bytes] whose codewords
          all decoded *)
  exact : bool;
      (** every unit decoded and the payload checksum matches: [bytes]
          is bit-identical to what was stored *)
}

val get_partial : ?use_cache:bool -> t -> key:string -> (partial_read, error) result
(** The degraded-read path: serve whatever survives. Healthy objects
    answer exactly like {!get} (with [exact = true]); if their shard
    fails verification mid-read, or scrub has marked the object
    Degraded, the read falls back to a lenient decode over the surviving
    molecules and maps the recovered byte ranges. [Object_lost] only
    when nothing is selectable or scrub marked the object Lost. *)

type health = Manifest.health =
  | Healthy
  | Degraded of { recovered_fraction : float; ranges : (int * int) list }
  | Lost

val health_name : health -> string

val object_health : t -> key:string -> health option
(** Scrub's verdict for an object ([Healthy] until a scrub says
    otherwise); [None] for unknown keys. *)

val sequencing_passes : t -> int
(** Wetlab sequencing passes run so far: a batched get counts one per
    shard touched, however many coalesced objects rode on it. The
    serving layer's coalescing tests and stats read this. *)

val object_shard : t -> key:string -> int option
(** The shard an object currently lives in (workload generators use it
    to build same-shard batches). *)

type compact_stats = {
  objects_rewritten : int;
  objects_dropped : int;  (** Lost objects removed from the directory *)
  strands_before : int;
  strands_after : int;
  shards_before : int;
  shards_after : int;
  primer_pairs_reclaimed : int;
  unlink_failures : int;  (** old shard files left behind by a failed unlink *)
}

val compact : t -> (compact_stats, error) result
(** Re-synthesize every healthy object into fresh densely packed shards,
    drop dead molecules and release retired primer pairs. All-or-nothing
    for healthy objects: each is decoded before anything on disk
    changes, and a failure leaves the store untouched. Degraded objects
    keep their quarantined shard (the surviving molecules are all they
    have); Lost objects are dropped and their pairs reclaimed. *)

type scrub_report = {
  shards_checked : int;
  shards_corrupt : int;  (** failed verification on this pass *)
  shards_quarantined : int;  (** left damaged in place, still referenced *)
  shards_dropped : int;  (** damaged and no longer referenced: unlinked *)
  objects_checked : int;
  objects_repaired : int;  (** re-synthesized bit-identically into fresh shards *)
  objects_degraded : int;
  objects_lost : int;
  checksums_backfilled : int;  (** version-1 shards that gained a checksum *)
}

val scrub : t -> (scrub_report, error) result
(** Verify every shard pool against its manifest record (presence,
    parse, strand count, prefix CRC-32), then attempt recovery of every
    object on a damaged shard: a full, checksum-verified decode is
    re-synthesized into a fresh shard (repair — bit-identical by
    construction); a partial decode marks the object [Degraded] with its
    recovered ranges; anything else is [Lost]. Damaged shards are
    quarantined while degraded/lost objects still reference them and
    unlinked once nothing does. Recovery attempts replay the object's
    deterministic access stream, so a scrub of the same directory is
    reproducible. Also backfills checksums into version-1 manifests. *)

type stats = {
  n_objects : int;
  n_shards : int;
  n_strands : int;
  dead_strands : int;
  live_primer_pairs : int;
  retired_primer_pairs : int;
  cache_hits : int;
  cache_misses : int;
  generation : int;
  degraded_objects : int;
  lost_objects : int;
  quarantined_shards : int;
  orphans_reclaimed : int;  (** debris removed when this handle opened the store *)
}

val stats : t -> stats
val render_stats : t -> string

(**/**)

(* Introspection for tests, the crash harness and benchmarks. *)
val shards_dir : string
val shard_files : t -> string list
val shard_path : t -> shard:int -> string option
val object_pair : t -> key:string -> Codec.Primer.pair option
val pair_reserved : t -> Codec.Primer.pair -> bool
