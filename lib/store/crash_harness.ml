(* Sweep a simulated kill across every fault point of a scripted store
   workload and assert that reopening recovers a consistent prefix:
   acked writes intact, acked deletes still deleted, the in-flight
   operation atomic, no .tmp or orphan shard debris. *)

type failure = { crash_at : int; point : string; detail : string }
type outcome = { total_points : int; runs : int; failures : failure list }

(* What the workload had committed (acked) when the kill landed, plus
   the one operation in flight. Only acked operations update the model,
   so the model IS the durability contract. *)
type inflight =
  | Idle
  | Initializing
  | Putting of string * Bytes.t
  | Overwriting of string * Bytes.t * Bytes.t  (* key, old, new *)
  | Deleting of string * Bytes.t
  | Compacting

type model = {
  mutable init_acked : bool;
  mutable present : (string * Bytes.t) list;  (* key -> acked bytes *)
  mutable deleted : string list;
  mutable inflight : inflight;
}

let fresh_model () = { init_acked = false; present = []; deleted = []; inflight = Idle }

let default_params =
  { Codec.Params.payload_nt = 60; rs_data = 6; rs_parity = 3; scramble_seed = 0x5eed }

let default_config =
  { Store.shard_target_strands = 20; cache_objects = 4; error_rate = 0.01; coverage = 10 }

(* Deterministic per-key payload bytes. *)
let payload seed tag n =
  let rng = Dna.Rng.create (seed lxor Store.Io.crc32 tag) in
  Bytes.init n (fun _ -> Char.chr (Dna.Rng.int rng 256))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* The scripted history: two shards' worth of puts, an overwrite, a
   delete, a compaction that rewrites the survivors, one more put.
   Raises Store.Io.Crashed when the kill lands; returns Error only on a
   genuine workload failure (which the recording run must not have). *)
let run_workload ~io ~dir ~seed ~config ~params (model : model) : (unit, string) result =
  model.inflight <- Initializing;
  match Store.init ~config ~io ~dir ~seed () with
  | Error e -> Error ("init: " ^ Store.error_message e)
  | Ok store ->
      model.init_acked <- true;
      model.inflight <- Idle;
      let ( let* ) = Result.bind in
      let op name inflight action commit =
        model.inflight <- inflight;
        match action () with
        | Error e -> Error (name ^ ": " ^ Store.error_message e)
        | Ok () ->
            commit ();
            model.inflight <- Idle;
            Ok ()
      in
      let put key bytes =
        op ("put " ^ key)
          (Putting (key, bytes))
          (fun () -> Store.put ~params store ~key bytes)
          (fun () -> model.present <- (key, bytes) :: List.remove_assoc key model.present)
      in
      let overwrite key bytes =
        let old = List.assoc key model.present in
        op ("overwrite " ^ key)
          (Overwriting (key, old, bytes))
          (fun () -> Store.overwrite store ~key bytes)
          (fun () -> model.present <- (key, bytes) :: List.remove_assoc key model.present)
      in
      let delete key =
        let old = List.assoc key model.present in
        op ("delete " ^ key)
          (Deleting (key, old))
          (fun () -> Store.delete store ~key)
          (fun () ->
            model.present <- List.remove_assoc key model.present;
            model.deleted <- key :: model.deleted)
      in
      let compact () =
        op "compact" Compacting (fun () -> Result.map ignore (Store.compact store)) (fun () -> ())
      in
      let* () = put "k1" (payload seed "k1.v1" 40) in
      let* () = put "k2" (payload seed "k2.v1" 70) in
      let* () = overwrite "k1" (payload seed "k1.v2" 55) in
      let* () = delete "k2" in
      let* () = put "k3" (payload seed "k3.v1" 30) in
      let* () = compact () in
      put "k4" (payload seed "k4.v1" 45)

(* Reopen with the real filesystem and check every invariant. *)
let verify ~dir (model : model) : (unit, string) result =
  match Store.open_store ~dir () with
  | Error e ->
      if model.init_acked then Error ("reopen failed: " ^ Store.error_message e)
      else Ok () (* the store was never acked into existence *)
  | Ok store ->
      let problems = ref [] in
      let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      let check_exact what key bytes =
        match Store.get store ~key with
        | Ok b when Bytes.equal b bytes -> ()
        | Ok _ -> problem "%s: key %s decoded to different bytes" what key
        | Error e -> problem "%s: key %s unreadable: %s" what key (Store.error_message e)
      in
      let inflight_key =
        match model.inflight with
        | Putting (k, _) | Overwriting (k, _, _) | Deleting (k, _) -> Some k
        | Idle | Initializing | Compacting -> None
      in
      List.iter
        (fun (k, b) -> if inflight_key <> Some k then check_exact "acked write" k b)
        model.present;
      List.iter
        (fun k ->
          if inflight_key <> Some k && Store.mem store k then
            problem "acked delete: key %s reappeared" k)
        model.deleted;
      (* The in-flight operation must be atomic: old state or new state,
         nothing else. *)
      (match model.inflight with
      | Idle | Initializing | Compacting -> ()
      | Putting (k, b) -> if Store.mem store k then check_exact "in-flight put" k b
      | Overwriting (k, old_b, new_b) -> (
          match Store.get store ~key:k with
          | Ok b when Bytes.equal b old_b || Bytes.equal b new_b -> ()
          | Ok _ -> problem "in-flight overwrite: key %s is neither old nor new" k
          | Error e -> problem "in-flight overwrite: key %s unreadable: %s" k (Store.error_message e))
      | Deleting (k, old_b) -> if Store.mem store k then check_exact "in-flight delete" k old_b);
      (* Debris: reopen must have reclaimed every temp and orphan file. *)
      let referenced =
        List.map Filename.basename (Store.shard_files store)
      in
      Array.iter
        (fun name -> if Filename.check_suffix name ".tmp" then problem "temp file %s survived reopen" name)
        (try Sys.readdir dir with Sys_error _ -> [||]);
      let sdir = Filename.concat dir Store.shards_dir in
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".tmp" then
            problem "temp file %s/%s survived reopen" Store.shards_dir name
          else if Filename.check_suffix name ".fasta" && not (List.mem name referenced) then
            problem "orphan shard file %s/%s survived reopen" Store.shards_dir name)
        (try Sys.readdir sdir with Sys_error _ -> [||]);
      if !problems = [] then Ok () else Error (String.concat "; " (List.rev !problems))

let run ?(config = default_config) ?(params = default_params) ~seed ~dir () : outcome =
  (* Recording run: no faults, count the points, and insist the whole
     workload (and its final state) is clean — otherwise the sweep would
     chase decode flakes instead of crash bugs. *)
  rm_rf dir;
  let io = Store.Io.faulty (Store.Io.no_faults ~seed) in
  let model = fresh_model () in
  (match run_workload ~io ~dir ~seed ~config ~params model with
  | Ok () -> ()
  | Error msg -> invalid_arg ("crash harness recording run failed: " ^ msg));
  (match verify ~dir model with
  | Ok () -> ()
  | Error msg -> invalid_arg ("crash harness recording state unreadable: " ^ msg));
  let total = Store.Io.points_hit io in
  let failures = ref [] in
  for k = 1 to total do
    rm_rf dir;
    let io = Store.Io.faulty { (Store.Io.no_faults ~seed) with crash_at = Some k } in
    let model = fresh_model () in
    let point, workload_problem =
      match run_workload ~io ~dir ~seed ~config ~params model with
      | Ok () -> ("(none: workload completed)", None)
      | Error msg -> ("(none)", Some ("workload failed without crashing: " ^ msg))
      | exception Store.Io.Crashed { point; _ } -> (point, None)
    in
    (match workload_problem with
    | Some detail -> failures := { crash_at = k; point; detail } :: !failures
    | None -> (
        match verify ~dir model with
        | Ok () -> ()
        | Error detail -> failures := { crash_at = k; point; detail } :: !failures))
  done;
  rm_rf dir;
  { total_points = total; runs = total; failures = List.rev !failures }

let render (o : outcome) =
  let b = Buffer.create 256 in
  Printf.bprintf b "crash matrix: %d fault points swept, %d failure(s)\n" o.runs
    (List.length o.failures);
  List.iter
    (fun f -> Printf.bprintf b "  crash_at=%d [%s]: %s\n" f.crash_at f.point f.detail)
    o.failures;
  Buffer.contents b
