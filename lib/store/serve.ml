(* Multi-tenant serving front end: bounded admission queue, windowed
   scheduling with read coalescing through [Store.get_batch], writes
   applied in arrival order after the round's reads. See serve.mli for
   the linearizability argument. *)

type request =
  | Get of { key : string }
  | Put of { key : string; data : Bytes.t }
  | Overwrite of { key : string; data : Bytes.t }

type response =
  | Value of Bytes.t
  | Ack
  | Partial of {
      bytes : Bytes.t;
      recovered_fraction : float;
      recovered_ranges : (int * int) list;
    }

type error =
  | Overloaded of { queue_depth : int; max_queue : int }
  | Timed_out of { waited_s : float; deadline_s : float }
  | Store of Store.error

let error_message = function
  | Overloaded { queue_depth; max_queue } ->
      Printf.sprintf "overloaded: %d requests queued (limit %d)" queue_depth max_queue
  | Timed_out { waited_s; deadline_s } ->
      Printf.sprintf "timed out: waited %.3fs past a %.3fs deadline" waited_s deadline_s
  | Store e -> Store.error_message e

type config = {
  window : int;
  max_queue : int;
  domains : int;
  use_cache : bool;
  deadline_s : float option;
  degraded_reads : bool;
  recon_pool : bool;
}

let default_config =
  {
    window = 32;
    max_queue = 256;
    domains = 1;
    use_cache = true;
    deadline_s = None;
    degraded_reads = false;
    recon_pool = true;
  }

type completion = {
  ticket : int;
  client : int;
  request : request;
  result : (response, error) result;
  submitted_s : float;
  completed_s : float;
}

type stats = {
  served : int;
  rejected : int;
  rounds : int;
  reads : int;
  writes : int;
  coalesced_reads : int;
  timed_out : int;
  degraded : int;
}

type pending = { p_ticket : int; p_client : int; p_request : request; p_submitted_s : float }

type t = {
  store : Store.t;
  cfg : config;
  queue : pending Queue.t;
  mutable next_ticket : int;
  mutable st : stats;
}

let create ?(config = default_config) store =
  {
    store;
    cfg = config;
    queue = Queue.create ();
    next_ticket = 0;
    st =
      {
        served = 0;
        rejected = 0;
        rounds = 0;
        reads = 0;
        writes = 0;
        coalesced_reads = 0;
        timed_out = 0;
        degraded = 0;
      };
  }

let store t = t.store
let queue_depth t = Queue.length t.queue

let submit t ~client request =
  let depth = Queue.length t.queue in
  if depth >= t.cfg.max_queue then begin
    t.st <- { t.st with rejected = t.st.rejected + 1 };
    Error (Overloaded { queue_depth = depth; max_queue = t.cfg.max_queue })
  end
  else begin
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    Queue.add
      { p_ticket = ticket; p_client = client; p_request = request; p_submitted_s = Unix.gettimeofday () }
      t.queue;
    Ok ticket
  end

let step t : completion list =
  if Queue.is_empty t.queue then []
  else begin
    (* Dequeue the round: up to [window] requests in admission order. *)
    let round = ref [] in
    while (not (Queue.is_empty t.queue)) && List.length !round < t.cfg.window do
      round := Queue.pop t.queue :: !round
    done;
    let round = List.rev !round in
    (* Deadlines are judged once, at round start: a request that has
       already waited past its deadline is answered [Timed_out] and
       costs no wetlab work. *)
    let round_start = Unix.gettimeofday () in
    let deadline_verdict p =
      match t.cfg.deadline_s with
      | None -> None
      | Some d ->
          let waited = round_start -. p.p_submitted_s in
          if waited > d then Some (Error (Timed_out { waited_s = waited; deadline_s = d }))
          else None
    in
    let live p = deadline_verdict p = None in
    (* Round reads: one coalesced batch against the round-start state.
       [get_batch] dedupes repeated keys and shares one PCR + sequencing
       pass among same-shard gets, which is the serving layer's whole
       reason to window. *)
    let get_keys =
      List.filter_map
        (fun p -> match p.p_request with Get { key } when live p -> Some key | _ -> None)
        round
    in
    let passes_before = Store.sequencing_passes t.store in
    let answers : (string, (Bytes.t, Store.error) result) Hashtbl.t =
      Hashtbl.create (List.length get_keys)
    in
    if get_keys <> [] then
      List.iter
        (fun (key, r) -> Hashtbl.replace answers key r)
        (Store.get_batch ~domains:t.cfg.domains ~use_cache:t.cfg.use_cache
           ~recon_pool:t.cfg.recon_pool t.store get_keys);
    let passes = Store.sequencing_passes t.store - passes_before in
    (* Degraded reads (opt-in): when the coalesced get comes back with
       shard damage or a scrub-marked Degraded object, answer with the
       surviving bytes instead of failing the request. *)
    let n_degraded = ref 0 in
    let serve_get key =
      match Hashtbl.find_opt answers key with
      | Some (Ok bytes) -> Ok (Value bytes)
      | Some (Error e) ->
          let salvageable =
            match e with
            | Store.Object_degraded _ | Store.Corrupt_shard _ -> true
            | _ -> false
          in
          if t.cfg.degraded_reads && salvageable then
            match Store.get_partial ~use_cache:t.cfg.use_cache t.store ~key with
            | Ok pr ->
                incr n_degraded;
                Ok
                  (Partial
                     {
                       bytes = pr.Store.bytes;
                       recovered_fraction = pr.Store.recovered_fraction;
                       recovered_ranges = pr.Store.recovered_ranges;
                     })
            | Error _ -> Error (Store e)
          else Error (Store e)
      | None -> Error (Store (Store.Corrupt ("round lost the answer for " ^ key)))
    in
    (* Then the round's writes, in arrival order. *)
    let n_timed_out = ref 0 in
    let completions =
      List.map
        (fun p ->
          let result =
            match deadline_verdict p with
            | Some r ->
                incr n_timed_out;
                r
            | None -> (
                match p.p_request with
                | Get { key } -> serve_get key
                | Put { key; data } -> (
                    match Store.put t.store ~key data with
                    | Ok () -> Ok Ack
                    | Error e -> Error (Store e))
                | Overwrite { key; data } -> (
                    match Store.overwrite t.store ~key data with
                    | Ok () -> Ok Ack
                    | Error e -> Error (Store e)))
          in
          {
            ticket = p.p_ticket;
            client = p.p_client;
            request = p.p_request;
            result;
            submitted_s = p.p_submitted_s;
            completed_s = Unix.gettimeofday ();
          })
        round
    in
    let reads = List.length get_keys in
    let writes = List.length round - reads - !n_timed_out in
    t.st <-
      {
        t.st with
        served = t.st.served + List.length round;
        rounds = t.st.rounds + 1;
        reads = t.st.reads + reads;
        writes = t.st.writes + writes;
        coalesced_reads = t.st.coalesced_reads + max 0 (reads - passes);
        timed_out = t.st.timed_out + !n_timed_out;
        degraded = t.st.degraded + !n_degraded;
      };
    completions
  end

let drain t =
  let rec go acc = match step t with [] -> List.rev acc | cs -> go (List.rev_append cs acc) in
  go []

let stats t = t.st

let render_stats t =
  let s = t.st in
  Printf.sprintf
    "serve: %d served (%d reads, %d writes) in %d rounds, %d rejected, %d coalesced reads, %d \
     timed out, %d degraded, queue depth %d\n"
    s.served s.reads s.writes s.rounds s.rejected s.coalesced_reads s.timed_out s.degraded
    (Queue.length t.queue)

module Workload = struct
  type mix = { label : string; read_pct : float }

  type summary = {
    label : string;
    ops : int;
    wall_s : float;
    throughput_ops_s : float;
    p50_ms : float;
    p95_ms : float;
    p99_ms : float;
    reads : int;
    writes : int;
    rejected : int;
    retries : int;
    gave_up : int;
    timed_out : int;
    degraded : int;
    coalesced_reads : int;
    sequencing_passes : int;
    cache_hits : int;
    cache_misses : int;
  }

  (* Zipf over ranks 0..n-1: P(rank k) proportional to 1/(k+1)^s,
     precomputed as a CDF so draws are a binary search. *)
  let zipf_cdf ~n ~s =
    let weights = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let acc = ref 0.0 in
    Array.map
      (fun w ->
        acc := !acc +. (w /. total);
        !acc)
      weights

  let zipf_draw cdf rng =
    let u = Dna.Rng.float rng in
    let lo = ref 0 and hi = ref (Array.length cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

  let run ?(config = default_config) ?(max_retries = 8) ~mix ~n_clients ~n_ops ~zipf_s ~seed ~keys
      store_t =
    let keys = Array.of_list keys in
    if Array.length keys = 0 then invalid_arg "Serve.Workload.run: no keys";
    let serve = create ~config store_t in
    let rng = Dna.Rng.create seed in
    let cdf = zipf_cdf ~n:(Array.length keys) ~s:zipf_s in
    let next_op i =
      let key = keys.(zipf_draw cdf rng) in
      if Dna.Rng.float rng < mix.read_pct then Get { key }
      else begin
        (* Overwrites keep the population stable; vary the payload so
           lost updates would be visible to the tests. *)
        let n = 64 + Dna.Rng.int rng 64 in
        let data = Bytes.init n (fun j -> Char.chr ((i + j + Dna.Rng.int rng 251) land 0xFF)) in
        Overwrite { key; data }
      end
    in
    let ops = Array.init n_ops next_op in
    let completions = ref [] in
    let submitted = ref 0 in
    let retries = ref 0 in
    let gave_up = ref 0 in
    let t0 = Unix.gettimeofday () in
    (* Closed loop: each scheduling turn, every client puts its next
       operation in flight (one apiece), then the scheduler runs a
       round. A rejected submission backs off exponentially — the head
       operation waits a jittered number of scheduler rounds that
       doubles with each consecutive rejection — and is abandoned after
       [max_retries] rejections. The jitter comes from a seeded rng, so
       the whole retry schedule replays with the run. *)
    let backoff_rng = Dna.Rng.create (seed lxor 0x5e12e) in
    let attempts = ref 0 in
    let round_no = ref 0 in
    let retry_at = ref 0 in
    while !submitted < n_ops || queue_depth serve > 0 do
      let burst = ref 0 in
      let stalled = ref false in
      while
        !submitted < n_ops && !burst < n_clients && (not !stalled) && !round_no >= !retry_at
      do
        let client = !submitted mod n_clients in
        match submit serve ~client ops.(!submitted) with
        | Ok _ ->
            incr submitted;
            incr burst;
            attempts := 0
        | Error (Overloaded _) ->
            if !attempts >= max_retries then begin
              (* Budget exhausted: drop the operation rather than spin. *)
              incr gave_up;
              incr submitted;
              attempts := 0
            end
            else begin
              incr retries;
              incr attempts;
              let ceiling = 1 lsl min !attempts 4 in
              retry_at := !round_no + 1 + Dna.Rng.int backoff_rng ceiling;
              stalled := true
            end
        | Error _ -> incr submitted
      done;
      completions := List.rev_append (step serve) !completions;
      incr round_no
    done;
    let completions = List.rev !completions in
    let wall_s = Unix.gettimeofday () -. t0 in
    let lat_ms =
      Array.of_list (List.map (fun c -> 1000.0 *. (c.completed_s -. c.submitted_s)) completions)
    in
    Array.sort compare lat_ms;
    let pct q = Dnastore.Pipeline.percentile lat_ms q in
    let st = stats serve in
    let store_stats = Store.stats store_t in
    ( {
        label = mix.label;
        ops = st.served;
        wall_s;
        throughput_ops_s = (if wall_s > 0.0 then float_of_int st.served /. wall_s else 0.0);
        p50_ms = pct 0.50;
        p95_ms = pct 0.95;
        p99_ms = pct 0.99;
        reads = st.reads;
        writes = st.writes;
        rejected = st.rejected;
        retries = !retries;
        gave_up = !gave_up;
        timed_out = st.timed_out;
        degraded = st.degraded;
        coalesced_reads = st.coalesced_reads;
        sequencing_passes = Store.sequencing_passes store_t;
        cache_hits = store_stats.Store.cache_hits;
        cache_misses = store_stats.Store.cache_misses;
      },
      completions )

  let summary_json (s : summary) : Store.Json.t =
    Store.Json.Obj
      [
        ("label", Store.Json.String s.label);
        ("ops", Store.Json.Int s.ops);
        ("wall_s", Store.Json.Float s.wall_s);
        ("throughput_ops_s", Store.Json.Float s.throughput_ops_s);
        ("p50_ms", Store.Json.Float s.p50_ms);
        ("p95_ms", Store.Json.Float s.p95_ms);
        ("p99_ms", Store.Json.Float s.p99_ms);
        ("reads", Store.Json.Int s.reads);
        ("writes", Store.Json.Int s.writes);
        ("rejected", Store.Json.Int s.rejected);
        ("retries", Store.Json.Int s.retries);
        ("gave_up", Store.Json.Int s.gave_up);
        ("timed_out", Store.Json.Int s.timed_out);
        ("degraded", Store.Json.Int s.degraded);
        ("coalesced_reads", Store.Json.Int s.coalesced_reads);
        ("sequencing_passes", Store.Json.Int s.sequencing_passes);
        ("cache_hits", Store.Json.Int s.cache_hits);
        ("cache_misses", Store.Json.Int s.cache_misses);
      ]

  let render (s : summary) =
    Dnastore.Report.latency_summary ~label:s.label ~n:s.ops ~wall_s:s.wall_s ~p50_ms:s.p50_ms
      ~p95_ms:s.p95_ms ~p99_ms:s.p99_ms
    ^ Printf.sprintf "  %d reads (%d coalesced) / %d writes, %d sequencing passes\n" s.reads
        s.coalesced_reads s.writes s.sequencing_passes
    ^ Dnastore.Report.resilience_counters ~rejected:s.rejected ~retries:s.retries
        ~gave_up:s.gave_up ~timed_out:s.timed_out ~degraded:s.degraded
end
