(* The store's filesystem boundary. [real] passes through to the OS;
   [faulty] wraps the same operations in a deterministic seeded fault
   layer (torn writes, failed renames, ENOSPC, read bit-rot, and a
   simulated kill at any fault point) so the crash-consistency harness
   can sweep a crash across every distinct on-disk state. *)

exception Crashed of { point : string; index : int }
exception Io_failure of string

type plan = {
  seed : int;
  crash_at : int option;
  fail_rename_at : int option;
  enospc_at : int option;
  bit_rot : float;
}

let no_faults ~seed = { seed; crash_at = None; fail_rename_at = None; enospc_at = None; bit_rot = 0.0 }

type state = {
  plan : plan;
  mutable points : int;  (** fault points traversed *)
  mutable renames : int;  (** renames attempted (for [fail_rename_at]) *)
  mutable data_writes : int;  (** data writes attempted (for [enospc_at]) *)
}

type t = Real | Faulty of state

let real = Real
let faulty plan = Faulty { plan; points = 0; renames = 0; data_writes = 0 }
let points_hit = function Real -> 0 | Faulty s -> s.points

(* ---------- CRC-32 (IEEE 802.3) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8)) s;
  !crc lxor 0xFFFFFFFF

(* ---------- fault machinery ---------- *)

(* Advance the global fault-point counter; a crash lands exactly here.
   Returns the point's 1-based index so write faults can derive a
   deterministic torn-prefix length from it. *)
let point s name =
  s.points <- s.points + 1;
  (match s.plan.crash_at with
  | Some k when k = s.points -> raise (Crashed { point = name; index = s.points })
  | _ -> ());
  s.points

(* A crash or ENOSPC inside a data write leaves a seeded prefix of the
   content behind — a torn write. *)
let torn_prefix plan ~index content =
  let rng = Dna.Rng.create (plan.seed + (7919 * index)) in
  let n = String.length content in
  String.sub content 0 (Dna.Rng.int rng (max 1 n))

let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc)

let rot_bases = [| 'A'; 'C'; 'G'; 'T' |]

let apply_bit_rot plan path content =
  if plan.bit_rot <= 0.0 || not (Filename.check_suffix path ".fasta") then content
  else begin
    let rng = Dna.Rng.create (plan.seed lxor crc32 path) in
    String.map
      (fun c ->
        if Dna.Rng.float rng < plan.bit_rot then rot_bases.(Dna.Rng.int rng 4) else c)
      content
  end

(* ---------- operations ---------- *)

let read_file_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file t path =
  match t with
  | Real -> read_file_raw path
  | Faulty s -> apply_bit_rot s.plan path (read_file_raw path)

let write_file_atomic t ~dir ~name content =
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let dst = Filename.concat dir name in
  match t with
  | Real ->
      write_raw tmp content;
      Sys.rename tmp dst
  | Faulty s ->
      let _ = point s ("write.tmp:" ^ name) in
      (* The data write is its own fault point: a crash that lands here
         leaves a torn temp file, never a torn destination. *)
      (try
         let index = point s ("write.data:" ^ name) in
         s.data_writes <- s.data_writes + 1;
         (match s.plan.enospc_at with
         | Some k when k = s.data_writes ->
             write_raw tmp (torn_prefix s.plan ~index content);
             raise (Io_failure (Printf.sprintf "no space writing %s" tmp))
         | _ -> ());
         write_raw tmp content
       with Crashed { point = p; index } ->
         write_raw tmp (torn_prefix s.plan ~index content);
         raise (Crashed { point = p; index }));
      let _ = point s ("write.rename:" ^ name) in
      s.renames <- s.renames + 1;
      (match s.plan.fail_rename_at with
      | Some k when k = s.renames ->
          raise (Io_failure (Printf.sprintf "rename of %s failed" tmp))
      | _ -> ());
      Sys.rename tmp dst;
      ignore (point s ("write.done:" ^ name))

let remove t path =
  match t with
  | Real -> Sys.remove path
  | Faulty s ->
      ignore (point s ("remove:" ^ path));
      Sys.remove path

let exists _ path = Sys.file_exists path

let mkdir_p _ path =
  let rec make p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      (try Sys.mkdir p 0o755 with Sys_error _ when Sys.file_exists p -> ())
    end
  in
  make path

let list_dir _ path =
  if Sys.file_exists path && Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort compare entries;
    entries
  end
  else [||]
