(** The crash-consistency harness: proof that the store's write
    ordering (temp-then-rename, shard-before-manifest) actually delivers
    durability.

    A scripted workload — init, puts, an overwrite, a delete, a
    compaction, a final put — first runs against a fault-counting
    backend with no faults enabled, which records how many fault points
    the whole history traverses. The sweep then replays the workload
    from scratch once per point with a simulated kill ({!Store.Io.plan}
    [crash_at]) landing exactly there, reopens the directory with the
    real filesystem, and asserts the invariants a storage system owes
    its callers:

    - every write acked before the kill reads back bit-identically;
    - every acked delete stays deleted;
    - the one operation in flight is atomic: its key reads as either
      the old state or the new, never garbage;
    - reopening reclaims all [.tmp] and orphan shard files.

    Everything derives from the seed, so a sweep replays exactly. *)

type failure = {
  crash_at : int;  (** the fault point the kill landed on (1-based) *)
  point : string;  (** its name, e.g. ["write.rename:MANIFEST.json"] *)
  detail : string;  (** which invariant broke, and how *)
}

type outcome = {
  total_points : int;  (** fault points the full workload traverses *)
  runs : int;  (** crash runs executed (= [total_points]) *)
  failures : failure list;  (** empty iff the store is crash-consistent *)
}

val run :
  ?config:Store.config -> ?params:Codec.Params.t -> seed:int -> dir:string -> unit -> outcome
(** Run the full sweep under [dir] (which is deleted and recreated for
    every crash run). The defaults use a small codec (60 nt payload,
    6+3 RS) and a low-noise channel so the sweep stays fast while still
    spanning multiple shards and a compaction. *)

val render : outcome -> string
(** Human-readable summary, one line per failure. *)
