(** A small bounded LRU keyed by strings, with hit/miss counters — the
    store's cache of decoded objects. A capacity of 0 disables caching
    (every [find] is a miss, [add] is a no-op). *)

type 'a t

val create : capacity:int -> 'a t
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Counts a hit (refreshing recency) or a miss. *)

val mem : 'a t -> string -> bool
(** Membership without touching the counters or recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; evicts the least recently used entry beyond
    capacity. *)

val remove : 'a t -> string -> unit
val clear : 'a t -> unit
(** Drops entries; counters persist. *)

val hits : 'a t -> int
val misses : 'a t -> int
