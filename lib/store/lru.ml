(** A small bounded LRU keyed by strings, with hit/miss counters.

    The store caches decoded objects here so repeated gets skip the
    whole wetlab path (PCR, sequencing, clustering, reconstruction,
    decode). Capacities are tens of entries, so the recency list is a
    plain list — simplicity over asymptotics at this size. *)

type 'a t = {
  capacity : int;
  tbl : (string, 'a) Hashtbl.t;
  mutable recency : string list;  (** most recently used first *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  { capacity = max 0 capacity; tbl = Hashtbl.create 16; recency = []; hits = 0; misses = 0 }

let length t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses

let touch t key = t.recency <- key :: List.filter (fun k -> k <> key) t.recency

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some v ->
      t.hits <- t.hits + 1;
      touch t key;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.tbl key

let remove t key =
  if Hashtbl.mem t.tbl key then begin
    Hashtbl.remove t.tbl key;
    t.recency <- List.filter (fun k -> k <> key) t.recency
  end

let add t key v =
  if t.capacity > 0 then begin
    remove t key;
    Hashtbl.replace t.tbl key v;
    touch t key;
    if Hashtbl.length t.tbl > t.capacity then begin
      match List.rev t.recency with
      | oldest :: _ -> remove t oldest
      | [] -> ()
    end
  end

let clear t =
  Hashtbl.reset t.tbl;
  t.recency <- []
