(** The store's on-disk catalog: a versioned JSON document describing
    shards, live objects (primer pair, codec parameters, location) and
    retired primer pairs awaiting compaction. [save] is crash-safe
    (write-temp-then-rename). Format version 2 adds shard/object CRC-32
    checksums, object health marks and shard quarantine flags; version-1
    manifests still load (the metadata comes back absent). *)

val format_version : int
val manifest_name : string
val shards_dir : string

val shard_file : int -> string
(** Relative path of a shard's oligo pool, e.g. [shards/shard_00003.fasta]. *)

type config = {
  shard_target_strands : int;  (** open a new shard once the current one reaches this *)
  cache_objects : int;  (** LRU capacity for decoded objects *)
  error_rate : float;  (** per-base error rate of the sequencing channel *)
  coverage : int;  (** base sequencing depth; scaled per shard access *)
}

val default_config : config

type shard_meta = {
  shard_id : int;
  file : string;  (** relative to the store directory *)
  n_strands : int;
  dead_strands : int;  (** molecules of deleted/overwritten objects, reclaimed by compaction *)
  checksum : int option;
      (** CRC-32 of the canonical FASTA serialization of the first
          [n_strands] records (orphan molecules beyond the recorded
          prefix do not disturb it); [None] in version-1 manifests *)
  quarantined : bool;
      (** scrub found this shard damaged and left it in place because
          degraded or lost objects still reference it *)
}

type health =
  | Healthy
  | Degraded of { recovered_fraction : float; ranges : (int * int) list }
      (** scrub could only partially re-decode the object; [ranges] are
          the recovered byte intervals (inclusive start, exclusive end) *)
  | Lost  (** scrub could not recover any unit *)

type object_meta = {
  key : string;
  version : int;  (** bumped by every overwrite *)
  shard : int;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
  checksum : int option;  (** CRC-32 of the payload; [None] in version-1 manifests *)
  health : health;
}

type t = {
  version : int;
  seed : int;
  generation : int;  (** bumped by every manifest write *)
  next_shard_id : int;
  config : config;
  shards : shard_meta list;
  objects : object_meta list;  (** insertion order *)
  retired : Codec.Primer.pair list;
      (** pairs whose molecules are still physically present; reclaimed
          by compaction *)
}

val empty : seed:int -> config:config -> t

val health_name : health -> string
(** ["healthy"], ["degraded"] or ["lost"]. *)

val to_json : t -> Store_json.t
val of_json : Store_json.t -> (t, string) result
(** Rejects unknown format versions and malformed fields. *)

val write_file_atomic : ?io:Store_io.t -> dir:string -> name:string -> string -> unit
(** Write-temp-then-rename within [dir]; used for the manifest and the
    shard pools. Defaults to the real filesystem. *)

val save : ?io:Store_io.t -> dir:string -> t -> unit
val load : ?io:Store_io.t -> dir:string -> unit -> (t, string) result
