(** A multi-tenant serving front end for the persistent store.

    The scheduler accepts a stream of put/get/overwrite requests from
    many simulated clients, admits them into a bounded queue (rejecting
    with {!Overloaded} once the queue is full), and serves them in
    scheduling windows ("rounds"). Within a round every admitted get is
    answered by one {!Store.get_batch} call against the round-start
    state — so gets that land on the same shard inside the window share
    a single PCR selection and sequencing pass ("read coalescing") —
    and writes then apply in arrival order. All requests in a round are
    concurrently pending, so this order is a valid linearization:
    per-key outcomes always correspond to some sequential execution and
    no acknowledged write is ever lost.

    The scheduler itself is single-threaded and deterministic;
    parallelism lives below it, in the domain-pool fan-out of
    {!Store.get_batch}. *)

type request =
  | Get of { key : string }
  | Put of { key : string; data : Bytes.t }
  | Overwrite of { key : string; data : Bytes.t }

type response =
  | Value of Bytes.t  (** a served get *)
  | Ack  (** a durable write *)
  | Partial of {
      bytes : Bytes.t;
      recovered_fraction : float;
      recovered_ranges : (int * int) list;
    }
      (** a degraded read (only with [config.degraded_reads]): the
          object's shard is damaged or scrub marked it Degraded, and
          these are the surviving bytes — see {!Store.get_partial} for
          the range semantics *)

type error =
  | Overloaded of { queue_depth : int; max_queue : int }
      (** Rejected at admission: the queue was full when the request
          arrived. Nothing was enqueued; the client may retry later. *)
  | Timed_out of { waited_s : float; deadline_s : float }
      (** The request waited in the queue past [config.deadline_s];
          judged at the start of the round that dequeued it, before any
          wetlab work is spent on it. *)
  | Store of Store.error  (** The store failed the admitted request. *)

val error_message : error -> string

type config = {
  window : int;  (** max requests served per round; the coalescing window *)
  max_queue : int;  (** admission bound; beyond it requests get {!Overloaded} *)
  domains : int;  (** worker budget handed to {!Store.get_batch} *)
  use_cache : bool;  (** serve gets through the store's decoded-object LRU *)
  deadline_s : float option;  (** per-request queueing deadline; [None] = never time out *)
  degraded_reads : bool;
      (** answer damaged gets with {!Partial} instead of an error when
          the store can salvage part of the object *)
  recon_pool : bool;
      (** pool-native reconstruction inside {!Store.get_batch}
          (see its [recon_pool]); bytes identical either way *)
}

val default_config : config
(** [{ window = 32; max_queue = 256; domains = 1; use_cache = true;
       deadline_s = None; degraded_reads = false; recon_pool = true }] *)

type completion = {
  ticket : int;  (** admission order, dense from 0 *)
  client : int;
  request : request;
  result : (response, error) result;
  submitted_s : float;  (** wall clock at admission *)
  completed_s : float;  (** wall clock when the round serving it finished *)
}

type stats = {
  served : int;  (** completions emitted (ok or store error) *)
  rejected : int;  (** admissions refused with {!Overloaded} *)
  rounds : int;  (** scheduling windows run *)
  reads : int;  (** gets among the served *)
  writes : int;  (** puts + overwrites among the served *)
  coalesced_reads : int;
      (** gets answered without a sequencing pass of their own — they
          shared a same-shard pass with another get in the round, were
          duplicates, or hit the decoded-object cache *)
  timed_out : int;  (** requests answered {!Timed_out} at dequeue *)
  degraded : int;  (** gets answered {!Partial} via the degraded-read path *)
}

type t

val create : ?config:config -> Store.t -> t
val store : t -> Store.t
val queue_depth : t -> int

val submit : t -> client:int -> request -> (int, error) result
(** Admit a request, returning its ticket, or reject with
    {!Overloaded} when [max_queue] requests are already waiting. *)

val step : t -> completion list
(** Serve one round: dequeue up to [window] requests, answer the gets
    in one coalesced batch against the round-start state, then apply
    the writes in arrival order. Completions come back in admission
    order. Empty queue: no round runs, [[]]. *)

val drain : t -> completion list
(** Run rounds until the queue is empty. *)

val stats : t -> stats
val render_stats : t -> string

(** A closed-loop YCSB-style workload: [n_clients] clients each keep
    one request in flight, keys drawn zipfian (popular keys hot, tail
    cold), operations drawn read/write by [read_pct]. Rejected requests
    retry under bounded exponential backoff with seeded jitter, so a
    saturated scheduler sheds load instead of spinning. Fixed [seed]
    makes a run reproducible end to end. *)
module Workload : sig
  type mix = {
    label : string;
    read_pct : float;  (** fraction of operations that are gets, in [0,1] *)
  }

  type summary = {
    label : string;
    ops : int;
    wall_s : float;
    throughput_ops_s : float;
    p50_ms : float;
    p95_ms : float;
    p99_ms : float;
    reads : int;
    writes : int;
    rejected : int;  (** admission rejections *)
    retries : int;  (** resubmissions after {!Overloaded}, across all ops *)
    gave_up : int;  (** ops abandoned after [max_retries] rejections *)
    timed_out : int;
    degraded : int;
    coalesced_reads : int;
    sequencing_passes : int;  (** wetlab passes the whole run cost *)
    cache_hits : int;
    cache_misses : int;
  }

  val zipf_cdf : n:int -> s:float -> float array
  (** Cumulative distribution of a zipf(s) law over ranks [0..n-1]
      (rank 0 most popular). [s = 0.] degrades to uniform. *)

  val zipf_draw : float array -> Dna.Rng.t -> int
  (** Sample a rank by binary search over a {!zipf_cdf}. *)

  val run :
    ?config:config ->
    ?max_retries:int ->
    mix:mix ->
    n_clients:int ->
    n_ops:int ->
    zipf_s:float ->
    seed:int ->
    keys:string list ->
    Store.t ->
    summary * completion list
  (** Drive [n_ops] operations against [keys] (which must already be in
      the store) and summarize. Writes are overwrites of existing keys,
      so the object population is stable across the run. An
      {!Overloaded} rejection backs the operation off a jittered,
      exponentially growing number of scheduler rounds (seeded — the
      schedule replays), and after [max_retries] (default 8) consecutive
      rejections the operation is dropped and counted in
      [summary.gave_up]. *)

  val summary_json : summary -> Store.Json.t
  val render : summary -> string
end
