(** The store's on-disk catalog: a versioned JSON document describing
    every shard file and every live object (its primer pair — the DNA
    "key" — codec parameters and location), plus the retired primer
    pairs whose molecules still sit in shards awaiting compaction.

    Updates are crash-safe: [save] writes the full document to a
    temporary file in the store directory and renames it over
    [MANIFEST.json], so a reader sees either the old or the new
    manifest, never a torn one. *)

let format_version = 1
let manifest_name = "MANIFEST.json"
let shards_dir = "shards"
let shard_file shard_id = Filename.concat shards_dir (Printf.sprintf "shard_%05d.fasta" shard_id)

type config = {
  shard_target_strands : int;  (** open a new shard once the current one reaches this *)
  cache_objects : int;  (** LRU capacity for decoded objects *)
  error_rate : float;  (** per-base error rate of the sequencing channel *)
  coverage : int;  (** base sequencing depth; scaled per shard access *)
}

let default_config =
  { shard_target_strands = 512; cache_objects = 16; error_rate = 0.06; coverage = 10 }

type shard_meta = {
  shard_id : int;
  file : string;  (** relative to the store directory *)
  n_strands : int;  (** molecules recorded in the manifest (orphans of an interrupted put may exceed this) *)
  dead_strands : int;  (** molecules of deleted/overwritten objects, reclaimed by compaction *)
}

type object_meta = {
  key : string;
  version : int;  (** bumped by every overwrite *)
  shard : int;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
}

type t = {
  version : int;
  seed : int;
  generation : int;  (** bumped by every manifest write *)
  next_shard_id : int;
  config : config;
  shards : shard_meta list;
  objects : object_meta list;  (** insertion order *)
  retired : Codec.Primer.pair list;
      (** pairs of deleted/overwritten objects; their molecules are
          still physically present, so the pairs stay unavailable until
          compaction clears them *)
}

let empty ~seed ~config =
  {
    version = format_version;
    seed;
    generation = 0;
    next_shard_id = 0;
    config;
    shards = [];
    objects = [];
    retired = [];
  }

(* ---------- JSON encoding ---------- *)

module J = Store_json

let json_of_pair (pair : Codec.Primer.pair) =
  J.Obj
    [
      ("forward", J.String (Dna.Strand.to_string pair.Codec.Primer.forward));
      ("reverse", J.String (Dna.Strand.to_string pair.Codec.Primer.reverse));
    ]

let json_of_shard (s : shard_meta) =
  J.Obj
    [
      ("id", J.Int s.shard_id);
      ("file", J.String s.file);
      ("n_strands", J.Int s.n_strands);
      ("dead_strands", J.Int s.dead_strands);
    ]

let json_of_object (o : object_meta) =
  J.Obj
    [
      ("key", J.String o.key);
      ("version", J.Int o.version);
      ("shard", J.Int o.shard);
      ("pair", json_of_pair o.pair);
      ("n_units", J.Int o.n_units);
      ("payload_nt", J.Int o.params.Codec.Params.payload_nt);
      ("rs_data", J.Int o.params.Codec.Params.rs_data);
      ("rs_parity", J.Int o.params.Codec.Params.rs_parity);
      ("scramble_seed", J.Int o.params.Codec.Params.scramble_seed);
      ("layout", J.String (Codec.Layout.name o.layout));
      ("original_size", J.Int o.original_size);
    ]

let to_json (t : t) =
  J.Obj
    [
      ("format_version", J.Int t.version);
      ("seed", J.Int t.seed);
      ("generation", J.Int t.generation);
      ("next_shard_id", J.Int t.next_shard_id);
      ( "config",
        J.Obj
          [
            ("shard_target_strands", J.Int t.config.shard_target_strands);
            ("cache_objects", J.Int t.config.cache_objects);
            ("error_rate", J.Float t.config.error_rate);
            ("coverage", J.Int t.config.coverage);
          ] );
      ("shards", J.List (List.map json_of_shard t.shards));
      ("objects", J.List (List.map json_of_object t.objects));
      ("retired", J.List (List.map json_of_pair t.retired));
    ]

(* ---------- JSON decoding ---------- *)

let ( let* ) = Result.bind

let strand_field v k =
  let* s = J.string_field v k in
  match Dna.Strand.of_string_opt s with
  | Some strand -> Ok strand
  | None -> Error (Printf.sprintf "field %S is not a DNA strand" k)

let pair_of_json v =
  let* forward = strand_field v "forward" in
  let* reverse = strand_field v "reverse" in
  Ok { Codec.Primer.forward; reverse }

let shard_of_json v =
  let* shard_id = J.int_field v "id" in
  let* file = J.string_field v "file" in
  let* n_strands = J.int_field v "n_strands" in
  let* dead_strands = J.int_field v "dead_strands" in
  Ok { shard_id; file; n_strands; dead_strands }

let object_of_json v =
  let* key = J.string_field v "key" in
  let* version = J.int_field v "version" in
  let* shard = J.int_field v "shard" in
  let* pair = Result.bind (J.field v "pair") pair_of_json in
  let* n_units = J.int_field v "n_units" in
  let* payload_nt = J.int_field v "payload_nt" in
  let* rs_data = J.int_field v "rs_data" in
  let* rs_parity = J.int_field v "rs_parity" in
  let* scramble_seed = J.int_field v "scramble_seed" in
  let* layout_name = J.string_field v "layout" in
  let* original_size = J.int_field v "original_size" in
  let* layout =
    match List.find_opt (fun l -> Codec.Layout.name l = layout_name) Codec.Layout.all with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "unknown layout %S" layout_name)
  in
  Ok
    {
      key;
      version;
      shard;
      pair;
      n_units;
      params = { Codec.Params.payload_nt; rs_data; rs_parity; scramble_seed };
      layout;
      original_size;
    }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json v : (t, string) result =
  let* version = J.int_field v "format_version" in
  if version <> format_version then
    Error
      (Printf.sprintf "manifest format version %d, this build reads version %d" version
         format_version)
  else
    let* seed = J.int_field v "seed" in
    let* generation = J.int_field v "generation" in
    let* next_shard_id = J.int_field v "next_shard_id" in
    let* cfg = J.field v "config" in
    let* shard_target_strands = J.int_field cfg "shard_target_strands" in
    let* cache_objects = J.int_field cfg "cache_objects" in
    let* error_rate = J.float_field cfg "error_rate" in
    let* coverage = J.int_field cfg "coverage" in
    let* shards = Result.bind (J.list_field v "shards") (map_result shard_of_json) in
    let* objects = Result.bind (J.list_field v "objects") (map_result object_of_json) in
    let* retired = Result.bind (J.list_field v "retired") (map_result pair_of_json) in
    Ok
      {
        version;
        seed;
        generation;
        next_shard_id;
        config = { shard_target_strands; cache_objects; error_rate; coverage };
        shards;
        objects;
        retired;
      }

(* ---------- disk ---------- *)

let write_file_atomic ~dir ~name content =
  (* Write-temp-then-rename: the visible file is either the old or the
     new content, never a torn write. *)
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc);
  Sys.rename tmp (Filename.concat dir name)

let save ~dir (t : t) = write_file_atomic ~dir ~name:manifest_name (J.to_string (to_json t))

let load ~dir : (t, string) result =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then Error (Printf.sprintf "no manifest at %s" path)
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.of_string content with
    | Error msg -> Error (Printf.sprintf "manifest unreadable: %s" msg)
    | Ok v -> of_json v
  end
