(** The store's on-disk catalog: a versioned JSON document describing
    every shard file and every live object (its primer pair — the DNA
    "key" — codec parameters and location), plus the retired primer
    pairs whose molecules still sit in shards awaiting compaction.

    Format version 2 adds integrity metadata: a CRC-32 per shard (over
    the canonical serialization of the manifest-recorded strand prefix,
    so orphan molecules appended by an interrupted put do not disturb
    it), a CRC-32 per object (over the original payload, the ground
    truth scrub repairs against), an object health mark
    (healthy/degraded/lost, written by {!Store.scrub}) and a shard
    quarantine flag. Version-1 manifests load with the metadata absent.

    Updates are crash-safe: [save] writes the full document to a
    temporary file in the store directory and renames it over
    [MANIFEST.json], so a reader sees either the old or the new
    manifest, never a torn one. All disk traffic goes through a
    {!Store_io.t}, so every write and rename is a fault-injection
    point. *)

let format_version = 2
let manifest_name = "MANIFEST.json"
let shards_dir = "shards"
let shard_file shard_id = Filename.concat shards_dir (Printf.sprintf "shard_%05d.fasta" shard_id)

type config = {
  shard_target_strands : int;  (** open a new shard once the current one reaches this *)
  cache_objects : int;  (** LRU capacity for decoded objects *)
  error_rate : float;  (** per-base error rate of the sequencing channel *)
  coverage : int;  (** base sequencing depth; scaled per shard access *)
}

let default_config =
  { shard_target_strands = 512; cache_objects = 16; error_rate = 0.06; coverage = 10 }

type shard_meta = {
  shard_id : int;
  file : string;  (** relative to the store directory *)
  n_strands : int;  (** molecules recorded in the manifest (orphans of an interrupted put may exceed this) *)
  dead_strands : int;  (** molecules of deleted/overwritten objects, reclaimed by compaction *)
  checksum : int option;
      (** CRC-32 of the canonical FASTA serialization of the first
          [n_strands] records; [None] in version-1 manifests *)
  quarantined : bool;
      (** scrub found this shard damaged and left it in place because
          degraded or lost objects still reference it *)
}

type health =
  | Healthy
  | Degraded of { recovered_fraction : float; ranges : (int * int) list }
  | Lost

type object_meta = {
  key : string;
  version : int;  (** bumped by every overwrite *)
  shard : int;
  pair : Codec.Primer.pair;
  n_units : int;
  params : Codec.Params.t;
  layout : Codec.Layout.t;
  original_size : int;
  checksum : int option;  (** CRC-32 of the payload; [None] in version-1 manifests *)
  health : health;
}

type t = {
  version : int;
  seed : int;
  generation : int;  (** bumped by every manifest write *)
  next_shard_id : int;
  config : config;
  shards : shard_meta list;
  objects : object_meta list;  (** insertion order *)
  retired : Codec.Primer.pair list;
      (** pairs of deleted/overwritten objects; their molecules are
          still physically present, so the pairs stay unavailable until
          compaction clears them *)
}

let empty ~seed ~config =
  {
    version = format_version;
    seed;
    generation = 0;
    next_shard_id = 0;
    config;
    shards = [];
    objects = [];
    retired = [];
  }

(* ---------- JSON encoding ---------- *)

module J = Store_json

let json_of_pair (pair : Codec.Primer.pair) =
  J.Obj
    [
      ("forward", J.String (Dna.Strand.to_string pair.Codec.Primer.forward));
      ("reverse", J.String (Dna.Strand.to_string pair.Codec.Primer.reverse));
    ]

let json_of_shard (s : shard_meta) =
  J.Obj
    ([
       ("id", J.Int s.shard_id);
       ("file", J.String s.file);
       ("n_strands", J.Int s.n_strands);
       ("dead_strands", J.Int s.dead_strands);
     ]
    @ (match s.checksum with None -> [] | Some c -> [ ("checksum", J.Int c) ])
    @ if s.quarantined then [ ("quarantined", J.Bool true) ] else [])

let health_name = function Healthy -> "healthy" | Degraded _ -> "degraded" | Lost -> "lost"

let json_of_health = function
  | Healthy -> [ ("health", J.String "healthy") ]
  | Lost -> [ ("health", J.String "lost") ]
  | Degraded { recovered_fraction; ranges } ->
      [
        ("health", J.String "degraded");
        ("recovered_fraction", J.Float recovered_fraction);
        ( "recovered_ranges",
          J.List (List.map (fun (a, b) -> J.List [ J.Int a; J.Int b ]) ranges) );
      ]

let json_of_object (o : object_meta) =
  J.Obj
    ([
       ("key", J.String o.key);
       ("version", J.Int o.version);
       ("shard", J.Int o.shard);
       ("pair", json_of_pair o.pair);
       ("n_units", J.Int o.n_units);
       ("payload_nt", J.Int o.params.Codec.Params.payload_nt);
       ("rs_data", J.Int o.params.Codec.Params.rs_data);
       ("rs_parity", J.Int o.params.Codec.Params.rs_parity);
       ("scramble_seed", J.Int o.params.Codec.Params.scramble_seed);
       ("layout", J.String (Codec.Layout.name o.layout));
       ("original_size", J.Int o.original_size);
     ]
    @ (match o.checksum with None -> [] | Some c -> [ ("checksum", J.Int c) ])
    @ json_of_health o.health)

let to_json (t : t) =
  J.Obj
    [
      ("format_version", J.Int format_version);
      ("seed", J.Int t.seed);
      ("generation", J.Int t.generation);
      ("next_shard_id", J.Int t.next_shard_id);
      ( "config",
        J.Obj
          [
            ("shard_target_strands", J.Int t.config.shard_target_strands);
            ("cache_objects", J.Int t.config.cache_objects);
            ("error_rate", J.Float t.config.error_rate);
            ("coverage", J.Int t.config.coverage);
          ] );
      ("shards", J.List (List.map json_of_shard t.shards));
      ("objects", J.List (List.map json_of_object t.objects));
      ("retired", J.List (List.map json_of_pair t.retired));
    ]

(* ---------- JSON decoding ---------- *)

let ( let* ) = Result.bind

let opt_int_field v k =
  match J.member k v with
  | None -> Ok None
  | Some f -> Result.map Option.some (J.as_int f)

let opt_bool_field v k =
  match J.member k v with
  | None -> Ok false
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a bool" k)

let strand_field v k =
  let* s = J.string_field v k in
  match Dna.Strand.of_string_opt s with
  | Some strand -> Ok strand
  | None -> Error (Printf.sprintf "field %S is not a DNA strand" k)

let pair_of_json v =
  let* forward = strand_field v "forward" in
  let* reverse = strand_field v "reverse" in
  Ok { Codec.Primer.forward; reverse }

let shard_of_json v =
  let* shard_id = J.int_field v "id" in
  let* file = J.string_field v "file" in
  let* n_strands = J.int_field v "n_strands" in
  let* dead_strands = J.int_field v "dead_strands" in
  let* checksum = opt_int_field v "checksum" in
  let* quarantined = opt_bool_field v "quarantined" in
  Ok { shard_id; file; n_strands; dead_strands; checksum; quarantined }

let range_of_json = function
  | J.List [ J.Int a; J.Int b ] -> Ok (a, b)
  | _ -> Error "malformed recovered range (want [start, stop])"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let health_of_json v =
  match J.member "health" v with
  | None -> Ok Healthy (* version-1 objects carry no health mark *)
  | Some (J.String "healthy") -> Ok Healthy
  | Some (J.String "lost") -> Ok Lost
  | Some (J.String "degraded") ->
      let* recovered_fraction = J.float_field v "recovered_fraction" in
      let* ranges = Result.bind (J.list_field v "recovered_ranges") (map_result range_of_json) in
      Ok (Degraded { recovered_fraction; ranges })
  | Some _ -> Error "unknown health mark"

let object_of_json v =
  let* key = J.string_field v "key" in
  let* version = J.int_field v "version" in
  let* shard = J.int_field v "shard" in
  let* pair = Result.bind (J.field v "pair") pair_of_json in
  let* n_units = J.int_field v "n_units" in
  let* payload_nt = J.int_field v "payload_nt" in
  let* rs_data = J.int_field v "rs_data" in
  let* rs_parity = J.int_field v "rs_parity" in
  let* scramble_seed = J.int_field v "scramble_seed" in
  let* layout_name = J.string_field v "layout" in
  let* original_size = J.int_field v "original_size" in
  let* checksum = opt_int_field v "checksum" in
  let* health = health_of_json v in
  let* layout =
    match List.find_opt (fun l -> Codec.Layout.name l = layout_name) Codec.Layout.all with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "unknown layout %S" layout_name)
  in
  Ok
    {
      key;
      version;
      shard;
      pair;
      n_units;
      params = { Codec.Params.payload_nt; rs_data; rs_parity; scramble_seed };
      layout;
      original_size;
      checksum;
      health;
    }

let readable_versions = [ 1; 2 ]

let of_json v : (t, string) result =
  let* version = J.int_field v "format_version" in
  if not (List.mem version readable_versions) then
    Error
      (Printf.sprintf "manifest format version %d, this build reads versions %s" version
         (String.concat "/" (List.map string_of_int readable_versions)))
  else
    let* seed = J.int_field v "seed" in
    let* generation = J.int_field v "generation" in
    let* next_shard_id = J.int_field v "next_shard_id" in
    let* cfg = J.field v "config" in
    let* shard_target_strands = J.int_field cfg "shard_target_strands" in
    let* cache_objects = J.int_field cfg "cache_objects" in
    let* error_rate = J.float_field cfg "error_rate" in
    let* coverage = J.int_field cfg "coverage" in
    let* shards = Result.bind (J.list_field v "shards") (map_result shard_of_json) in
    let* objects = Result.bind (J.list_field v "objects") (map_result object_of_json) in
    let* retired = Result.bind (J.list_field v "retired") (map_result pair_of_json) in
    Ok
      {
        version;
        seed;
        generation;
        next_shard_id;
        config = { shard_target_strands; cache_objects; error_rate; coverage };
        shards;
        objects;
        retired;
      }

(* ---------- disk ---------- *)

let write_file_atomic ?(io = Store_io.real) ~dir ~name content =
  Store_io.write_file_atomic io ~dir ~name content

let save ?(io = Store_io.real) ~dir (t : t) =
  Store_io.write_file_atomic io ~dir ~name:manifest_name (J.to_string (to_json t))

let load ?(io = Store_io.real) ~dir () : (t, string) result =
  let path = Filename.concat dir manifest_name in
  if not (Store_io.exists io path) then Error (Printf.sprintf "no manifest at %s" path)
  else begin
    match Store_io.read_file io path with
    | exception Sys_error msg -> Error (Printf.sprintf "manifest unreadable: %s" msg)
    | content -> (
        match J.of_string content with
        | Error msg -> Error (Printf.sprintf "manifest unreadable: %s" msg)
        | Ok v -> of_json v)
  end
