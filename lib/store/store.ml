(** The persistent, sharded, rewritable DNA object store.

    Layered over the toolkit's codec/simulator/clustering stages, the
    store keeps a pool of synthesized molecules on disk — a JSON
    manifest ([MANIFEST.json], written temp-then-rename so a crash never
    tears it) plus per-shard oligo pools serialized as FASTA — and
    serves primer-addressed random access in the style of Yazdi et al.'s
    rewritable DNA storage system:

    - [put] encodes an object, reserves a fresh primer pair (the DNA
      "key") and appends the tagged molecules to the open shard;
    - [get] runs the wetlab read path against only the object's shard:
      indexed PCR selection, sequencing at a depth scaled to the
      selection ({!Simulator.Sequencer.shard_depth}), primer
      demultiplexing, clustering, reconstruction, decoding;
    - [overwrite] appends a new version under a fresh pair and retires
      the old one; [delete] retires the object's pair outright — in both
      cases the stale molecules stay in their shard until
    - [compact] re-synthesizes every live object into fresh shards,
      drops the dead molecules and releases the retired primer pairs
      back into circulation.

    Decoded objects are cached in a small LRU so repeated gets skip the
    wetlab path entirely; batched gets fan the heavy stages out over the
    domain pool. *)

module Json = Store_json
module Lru = Lru
module Io = Store_io

type config = Manifest.config = {
  shard_target_strands : int;
  cache_objects : int;
  error_rate : float;
  coverage : int;
}

let default_config = Manifest.default_config
let format_version = Manifest.format_version

type error =
  | Key_not_found of string
  | Duplicate_key of string
  | Primer_space_exhausted of { attempts : int }
  | Decode_failed of { key : string; reason : string }
  | Corrupt of string
  | Corrupt_shard of { shard : int; reason : string }
  | Io_error of string
  | Object_degraded of { key : string; recovered_fraction : float }
  | Object_lost of string

let error_message = function
  | Key_not_found key -> Printf.sprintf "Store: key %s not found" key
  | Duplicate_key key -> Printf.sprintf "Store: duplicate key %s" key
  | Primer_space_exhausted { attempts } ->
      Printf.sprintf "Store: primer space exhausted after %d attempts" attempts
  | Decode_failed { key; reason } -> Printf.sprintf "Store: decoding %s failed: %s" key reason
  | Corrupt reason -> Printf.sprintf "Store: corrupt store: %s" reason
  | Corrupt_shard { shard; reason } -> Printf.sprintf "Store: shard %d corrupt: %s" shard reason
  | Io_error msg -> Printf.sprintf "Store: I/O failure: %s" msg
  | Object_degraded { key; recovered_fraction } ->
      Printf.sprintf "Store: object %s is degraded (%.0f%% recovered); use a degraded read" key
        (100. *. recovered_fraction)
  | Object_lost key -> Printf.sprintf "Store: object %s is lost" key

type pool = {
  strands : Dna.Strand.t array;
  index : Dnastore.Primer_index.t;  (** live pairs of the shard -> strand indices *)
}

type t = {
  dir : string;
  io : Store_io.t;  (** every byte to or from disk goes through this *)
  rng : Dna.Rng.t;  (** put/primer draws only: gets never touch it *)
  mutable manifest : Manifest.t;
  registry : Codec.Primer.Registry.t;  (** live + retired pairs *)
  pools : (int, pool) Hashtbl.t;  (** shard id -> loaded pool *)
  cache : Bytes.t Lru.t;
  mutable sequencing_passes : int;
      (** wetlab sequencing passes run so far; a batched get counts one
          per shard touched however many objects it coalesces *)
  mutable orphans_reclaimed : int;
      (** leftover [.tmp] and unreferenced shard files removed when this
          store was opened (debris of an interrupted run) *)
}

let dir t = t.dir
let keys t = List.map (fun (o : Manifest.object_meta) -> o.key) t.manifest.Manifest.objects
let config t = t.manifest.Manifest.config
let generation t = t.manifest.Manifest.generation

let find_object t key =
  List.find_opt (fun (o : Manifest.object_meta) -> o.key = key) t.manifest.Manifest.objects

let mem t key = find_object t key <> None
let object_pair t ~key = Option.map (fun (o : Manifest.object_meta) -> o.pair) (find_object t key)
let pair_reserved t pair = Codec.Primer.Registry.is_reserved t.registry pair

let shard_files t =
  List.map
    (fun (s : Manifest.shard_meta) -> Filename.concat t.dir s.file)
    t.manifest.Manifest.shards

let shard_path t ~shard =
  List.find_map
    (fun (s : Manifest.shard_meta) ->
      if s.shard_id = shard then Some (Filename.concat t.dir s.file) else None)
    t.manifest.Manifest.shards

(* ---------- lifecycle ---------- *)

let rng_of_manifest (m : Manifest.t) =
  (* Mix the generation in so every reopened store continues on a fresh
     stream instead of replaying the original one. *)
  Dna.Rng.create (m.Manifest.seed + (1000003 * m.Manifest.generation))

let of_manifest ~io ~dir ~orphans (m : Manifest.t) =
  let live = List.map (fun (o : Manifest.object_meta) -> o.pair) m.Manifest.objects in
  {
    dir;
    io;
    rng = rng_of_manifest m;
    manifest = m;
    registry = Codec.Primer.Registry.of_pairs (live @ m.Manifest.retired);
    pools = Hashtbl.create 8;
    cache = Lru.create ~capacity:m.Manifest.config.cache_objects;
    sequencing_passes = 0;
    orphans_reclaimed = orphans;
  }

let init ?(config = default_config) ?(io = Store_io.real) ~dir ~seed () : (t, error) result =
  if Store_io.exists io (Filename.concat dir Manifest.manifest_name) then
    Error (Corrupt (Printf.sprintf "%s is already an initialized store" dir))
  else begin
    Store_io.mkdir_p io (Filename.concat dir Manifest.shards_dir);
    let m = Manifest.empty ~seed ~config in
    match Manifest.save ~io ~dir m with
    | exception Store_io.Io_failure msg -> Error (Io_error msg)
    | () -> Ok (of_manifest ~io ~dir ~orphans:0 m)
  end

(* Sweep the debris an interrupted run can leave behind: torn or
   unrenamed [.tmp] files anywhere in the store, and shard files the
   manifest does not reference (written by a put or compaction that
   crashed before its manifest landed). Acked state never lives in
   either, so removal is always safe. *)
let reclaim_orphans ~io ~dir (m : Manifest.t) =
  let referenced = Hashtbl.create 8 in
  List.iter
    (fun (s : Manifest.shard_meta) -> Hashtbl.replace referenced (Filename.basename s.file) ())
    m.Manifest.shards;
  let removed = ref 0 in
  let try_remove path =
    match Store_io.remove io path with () -> incr removed | exception Sys_error _ -> ()
  in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then try_remove (Filename.concat dir name))
    (Store_io.list_dir io dir);
  let sdir = Filename.concat dir Manifest.shards_dir in
  Array.iter
    (fun name ->
      let path = Filename.concat sdir name in
      if Filename.check_suffix name ".tmp" then try_remove path
      else if
        Filename.check_suffix name ".fasta"
        && String.length name >= 6
        && String.sub name 0 6 = "shard_"
        && not (Hashtbl.mem referenced name)
      then try_remove path)
    (Store_io.list_dir io sdir);
  !removed

let open_store ?(io = Store_io.real) ~dir () : (t, error) result =
  match Manifest.load ~io ~dir () with
  | Error msg -> Error (Corrupt msg)
  | Ok m ->
      let orphans = reclaim_orphans ~io ~dir m in
      Ok (of_manifest ~io ~dir ~orphans m)

(* Persist a new manifest state (generation bumped) and adopt it. Only
   adopts after the save lands, so an I/O failure leaves the in-memory
   view on the old, still-true state. *)
let save_manifest t (m : Manifest.t) =
  let m = { m with Manifest.generation = m.Manifest.generation + 1 } in
  Manifest.save ~io:t.io ~dir:t.dir m;
  t.manifest <- m

(* ---------- shard pools ---------- *)

let shard_meta t shard_id =
  List.find_opt (fun (s : Manifest.shard_meta) -> s.shard_id = shard_id) t.manifest.Manifest.shards

let live_pairs_of_shard t shard_id =
  List.filter_map
    (fun (o : Manifest.object_meta) -> if o.shard = shard_id then Some o.pair else None)
    t.manifest.Manifest.objects

(* Read and parse a shard file and verify it against its manifest
   record: file present, parseable, at least the recorded strand count,
   and — when the manifest carries one — a matching CRC-32 over the
   canonical serialization of the recorded prefix. Orphan records beyond
   the prefix (an interrupted put) do not disturb the checksum. [`Ok]
   carries the computed prefix checksum (scrub backfills it into
   version-1 manifests) and the parsed records. Never raises: any
   parser or I/O exception becomes [`Corrupt]. *)
let check_shard t (smeta : Manifest.shard_meta) :
    [ `Ok of int * Dna.Fasta.record list | `Corrupt of string ] =
  let path = Filename.concat t.dir smeta.file in
  if not (Store_io.exists t.io path) then
    `Corrupt (Printf.sprintf "shard file %s is missing" smeta.file)
  else
    match
      let content = Store_io.read_file t.io path in
      Dna.Fasta.parse_string content
    with
    | exception (Store_io.Crashed _ as e) -> raise e
    | exception Sys_error msg -> `Corrupt msg
    | exception e -> `Corrupt (Printexc.to_string e)
    | records, errors ->
        if errors <> [] then
          `Corrupt (Printf.sprintf "%d unparsable FASTA records" (List.length errors))
        else if List.length records < smeta.n_strands then
          `Corrupt
            (Printf.sprintf "shard %s holds %d strands, manifest records %d" smeta.file
               (List.length records) smeta.n_strands)
        else begin
          let prefix = List.filteri (fun i _ -> i < smeta.n_strands) records in
          let crc = Store_io.crc32 (Dna.Fasta.to_string prefix) in
          match smeta.checksum with
          | Some expect when expect <> crc ->
              `Corrupt
                (Printf.sprintf "shard %s checksum mismatch (recorded %d, computed %d)"
                   smeta.file expect crc)
          | _ -> `Ok (crc, records)
        end

let load_pool t shard_id : (pool, error) result =
  match Hashtbl.find_opt t.pools shard_id with
  | Some p -> Ok p
  | None -> (
      match shard_meta t shard_id with
      | None -> Error (Corrupt (Printf.sprintf "shard %d is not in the manifest" shard_id))
      | Some smeta ->
          if smeta.quarantined then
            Error
              (Corrupt_shard
                 { shard = shard_id; reason = "quarantined: scrub found unrepaired damage" })
          else (
            match check_shard t smeta with
            | `Corrupt reason -> Error (Corrupt_shard { shard = shard_id; reason })
            | `Ok (_, records) ->
                let strands = Array.of_list (List.map (fun r -> r.Dna.Fasta.seq) records) in
                (* Strands beyond the manifest count are orphans of an
                   interrupted put; their pair is unreserved, so they are
                   unselectable and [build] leaves them unindexed. *)
                let index =
                  Dnastore.Primer_index.build ~pairs:(live_pairs_of_shard t shard_id) strands
                in
                let p = { strands; index } in
                Hashtbl.replace t.pools shard_id p;
                Ok p))

(* Load whatever still parses from a (possibly damaged or quarantined)
   shard, skipping count and checksum verification: scrub and degraded
   reads work with the surviving molecules. Never cached in [t.pools],
   so verified readers cannot pick it up by accident. *)
let load_pool_lenient t shard_id : (pool, error) result =
  match shard_meta t shard_id with
  | None -> Error (Corrupt (Printf.sprintf "shard %d is not in the manifest" shard_id))
  | Some smeta -> (
      let path = Filename.concat t.dir smeta.file in
      if not (Store_io.exists t.io path) then
        Error (Corrupt_shard { shard = shard_id; reason = "shard file is missing" })
      else
        match
          let content = Store_io.read_file t.io path in
          Dna.Fasta.parse_string content
        with
        | exception (Store_io.Crashed _ as e) -> raise e
        | exception Sys_error msg -> Error (Corrupt_shard { shard = shard_id; reason = msg })
        | exception e ->
            Error (Corrupt_shard { shard = shard_id; reason = Printexc.to_string e })
        | records, _errors ->
            let strands = Array.of_list (List.map (fun r -> r.Dna.Fasta.seq) records) in
            let index =
              Dnastore.Primer_index.build ~pairs:(live_pairs_of_shard t shard_id) strands
            in
            Ok { strands; index })

(* Write a shard pool atomically and return the CRC-32 of its canonical
   serialization — the checksum the manifest records for the file. *)
let write_shard_file t ~file (strands : Dna.Strand.t array) =
  let records =
    Array.to_list (Array.mapi (fun i s -> { Dna.Fasta.id = Printf.sprintf "m_%d" i; seq = s }) strands)
  in
  let content = Dna.Fasta.to_string records in
  Manifest.write_file_atomic ~io:t.io ~dir:t.dir ~name:file content;
  Store_io.crc32 content

(* ---------- put / overwrite ---------- *)

let object_strand_count (o : Manifest.object_meta) = Codec.Params.columns o.params * o.n_units

(* Append a freshly encoded object to the open shard (or a new one) and
   install the new manifest. [prev] is the overwritten version, if any:
   its molecules become dead and its pair retires. *)
let append_object t ~key ~(prev : Manifest.object_meta option) ?(params = Codec.Params.default)
    ?(layout = Codec.Layout.Baseline) (data : Bytes.t) : (unit, error) result =
  let m = t.manifest in
  (* The open shard is the youngest one, until it reaches the target. *)
  let open_shard =
    List.fold_left
      (fun acc (s : Manifest.shard_meta) ->
        if s.quarantined then acc (* never append to a damaged pool *)
        else
          match acc with
          | Some (a : Manifest.shard_meta) when a.shard_id >= s.shard_id -> acc
          | _ -> Some s)
      None m.Manifest.shards
  in
  let open_shard =
    match open_shard with
    | Some s when s.n_strands < m.Manifest.config.shard_target_strands -> Some s
    | _ -> None
  in
  let existing =
    match open_shard with
    | None -> Ok [||]
    | Some s -> Result.map (fun p -> p.strands) (load_pool t s.shard_id)
  in
  match existing with
  | Error e -> Error e
  | Ok existing -> (
      match Codec.Primer.Registry.fresh ~max_attempts:1000 t.registry t.rng with
      | Error (Codec.Primer.Constraints_unsatisfiable { attempts; _ }) ->
          Error (Primer_space_exhausted { attempts })
      | Ok pair -> (
          match Codec.File_codec.encode ~layout ~params data with
          | exception e ->
              (* Do not leak primer space when encoding rejects the input. *)
              Codec.Primer.Registry.release t.registry pair;
              raise e
          | encoded ->
              let tagged =
                Array.map (Codec.Primer.attach pair) encoded.Codec.File_codec.strands
              in
              let shard_id, file =
                match open_shard with
                | Some s -> (s.shard_id, s.file)
                | None -> (m.Manifest.next_shard_id, Manifest.shard_file m.Manifest.next_shard_id)
              in
              let strands = Array.append existing tagged in
              match
                (* Shard first, manifest second: a crash in between leaves
                   orphan molecules behind an old manifest, never a
                   manifest pointing at missing data. *)
                write_shard_file t ~file strands
              with
              | exception Store_io.Io_failure msg ->
                  (* The write never landed (or only its temp file did):
                     nothing was acked, so release the pair and report.
                     Any stale temp file is reclaimed on the next open. *)
                  Codec.Primer.Registry.release t.registry pair;
                  Error (Io_error msg)
              | shard_checksum ->
              let smeta =
                {
                  Manifest.shard_id;
                  file;
                  n_strands = Array.length strands;
                  dead_strands =
                    (match open_shard with Some s -> s.dead_strands | None -> 0);
                  checksum = Some shard_checksum;
                  quarantined = false;
                }
              in
              let meta =
                {
                  Manifest.key;
                  version = (match prev with Some p -> p.version + 1 | None -> 1);
                  shard = shard_id;
                  pair;
                  n_units = encoded.Codec.File_codec.n_units;
                  params;
                  layout;
                  original_size = Bytes.length data;
                  checksum = Some (Store_io.crc32 (Bytes.to_string data));
                  health = Manifest.Healthy;
                }
              in
              let shards =
                smeta
                :: List.filter_map
                     (fun (s : Manifest.shard_meta) ->
                       if s.shard_id = shard_id then None
                       else
                         match prev with
                         | Some p when p.shard = s.shard_id ->
                             Some
                               {
                                 s with
                                 Manifest.dead_strands =
                                   s.dead_strands + object_strand_count p;
                               }
                         | _ -> Some s)
                     m.Manifest.shards
              in
              let shards =
                (* Overwriting an object that lives in the open shard:
                   its dead molecules are in [smeta] itself. *)
                match prev with
                | Some p when p.shard = shard_id ->
                    List.map
                      (fun (s : Manifest.shard_meta) ->
                        if s.shard_id = shard_id then
                          { s with Manifest.dead_strands = s.dead_strands + object_strand_count p }
                        else s)
                      shards
                | _ -> shards
              in
              let objects =
                match prev with
                | None -> m.Manifest.objects @ [ meta ]
                | Some _ ->
                    List.map
                      (fun (o : Manifest.object_meta) -> if o.key = key then meta else o)
                      m.Manifest.objects
              in
              let retired =
                match prev with
                | None -> m.Manifest.retired
                | Some p -> p.pair :: m.Manifest.retired
              in
              match
                save_manifest t
                  {
                    m with
                    Manifest.shards;
                    objects;
                    retired;
                    next_shard_id = max m.Manifest.next_shard_id (shard_id + 1);
                  }
              with
              | exception Store_io.Io_failure msg ->
                  (* The shard file landed but the manifest did not: the
                     new molecules are unselectable orphans, exactly as
                     after a crash between the two writes. Nothing was
                     acked; drop the stale cached pool and release the
                     pair. *)
                  Codec.Primer.Registry.release t.registry pair;
                  Hashtbl.remove t.pools shard_id;
                  Error (Io_error msg)
              | () ->
              (* Keep the loaded pool in step with the file. *)
              let index =
                match Hashtbl.find_opt t.pools shard_id with
                | Some p when Array.length existing > 0 -> p.index
                | _ -> Dnastore.Primer_index.build ~pairs:(live_pairs_of_shard t shard_id) strands
              in
              if Array.length existing > 0 then
                Dnastore.Primer_index.add_range index pair ~first:(Array.length existing)
                  ~len:(Array.length tagged);
              Hashtbl.replace t.pools shard_id { strands; index };
              Lru.remove t.cache key;
              Ok ()))

let put ?params ?layout t ~key data =
  if mem t key then Error (Duplicate_key key)
  else append_object t ~key ~prev:None ?params ?layout data

let overwrite t ~key data =
  match find_object t key with
  | None -> Error (Key_not_found key)
  | Some prev ->
      append_object t ~key ~prev:(Some prev) ~params:prev.params ~layout:prev.layout data

(* ---------- delete ---------- *)

let delete t ~key : (unit, error) result =
  match find_object t key with
  | None -> Error (Key_not_found key)
  | Some o ->
      let m = t.manifest in
      let shards =
        List.map
          (fun (s : Manifest.shard_meta) ->
            if s.shard_id = o.shard then
              { s with Manifest.dead_strands = s.dead_strands + object_strand_count o }
            else s)
          m.Manifest.shards
      in
      match
        save_manifest t
          {
            m with
            Manifest.shards;
            objects =
              List.filter (fun (x : Manifest.object_meta) -> x.key <> key) m.Manifest.objects;
            retired = o.pair :: m.Manifest.retired;
          }
      with
      | exception Store_io.Io_failure msg -> Error (Io_error msg)
      | () ->
          (* The molecules stay in the shard and the pair stays reserved
             (retired) until compaction physically removes them. *)
          (match Hashtbl.find_opt t.pools o.shard with
          | Some p -> Dnastore.Primer_index.remove_pair p.index o.pair
          | None -> ());
          Lru.remove t.cache key;
          Ok ()

(* ---------- get / batched get ---------- *)

let sequencing_passes t = t.sequencing_passes
let object_shard t ~key = Option.map (fun (o : Manifest.object_meta) -> o.shard) (find_object t key)

(* The read stream of one object access: a 64-bit FNV-1a fold of the
   store seed, the key and the version. A key's sequencing and
   clustering draws therefore depend only on (store, key, version) —
   never on [t.rng], on which other keys missed in the same batch, or
   on how many batches ran before — so [get] and any [get_batch]
   containing the key replay the same wetlab noise, and gets leave the
   store's put/primer stream untouched. *)
let access_rng t (o : Manifest.object_meta) =
  let h = ref 0xCBF29CE484222325L in
  let fold i = h := Int64.mul (Int64.logxor !h (Int64.of_int (i land 0xFF))) 0x100000001B3L in
  let fold_int i = List.iter (fun s -> fold (i lsr s)) [ 0; 8; 16; 24; 32; 40; 48; 56 ] in
  fold_int t.manifest.Manifest.seed;
  fold_int o.version;
  String.iter (fun c -> fold (Char.code c)) o.key;
  Dna.Rng.create (Int64.to_int (Int64.shift_right_logical !h 1))

(* One object's access, after the serial PCR-selection phase: selected
   molecules in, decoded bytes out. [depth] is the per-strand sequencing
   depth of the shard pass the access rode on. Pure given the access
   rng, so the whole wetlab read path fans out over the domain pool. *)
type access_task = {
  tk_obj : Manifest.object_meta;
  tk_selected : Dna.Strand.t array;
  tk_depth : int;
}

(* Cluster, reconstruct and decode one object's cores; pure given its
   rng, so it can run on any domain. Returns the decode stats alongside
   the bytes so partial (degraded) readers can map recovered ranges. *)
let decode_consensus (o : Manifest.object_meta) consensus :
    (Bytes.t * Codec.File_codec.decode_stats, error) result =
  match Codec.File_codec.decode ~layout:o.layout ~params:o.params ~n_units:o.n_units consensus with
  | Ok (bytes, stats) -> Ok (bytes, stats)
  | Error e -> Error (Decode_failed { key = o.key; reason = Codec.File_codec.error_message e })

let decode_task ?recon_backend rng (o : Manifest.object_meta) (cores : Dna.Strand.t array) :
    (Bytes.t * Codec.File_codec.decode_stats, error) result =
  let clusters = Dnastore.Pipeline.cluster_default ~domains:1 () rng cores in
  let cluster_arr = Array.of_list (List.map Array.of_list clusters) in
  Dnastore.Pipeline.sort_clusters cluster_arr;
  let target_len = Codec.Params.strand_nt o.params in
  let consensus =
    Array.to_list cluster_arr
    |> List.filter_map (fun reads ->
           if Array.length reads = 0 then None
           else Some (Dnastore.Pipeline.reconstruct_nw ?backend:recon_backend ~target_len reads))
  in
  decode_consensus o consensus

(* Pool-native decode: the demuxed core arena goes straight to scaled
   clustering (index slices) and arena-backed consensus — no boxed
   strand per read between sequencing and the decoder. *)
let decode_task_pool ?recon_backend rng (o : Manifest.object_meta) (cores : Dna.Strand_pool.t) :
    (Bytes.t * Codec.File_codec.decode_stats, error) result =
  let slices = Dnastore.Pipeline.cluster_pool_default ~domains:1 () rng cores in
  let slice_arr = Array.of_list slices in
  Dnastore.Pipeline.sort_cluster_slices cores slice_arr;
  let target_len = Codec.Params.strand_nt o.params in
  let consensus =
    Array.to_list slice_arr
    |> List.filter_map (fun idxs ->
           if Array.length idxs = 0 then None
           else
             Some (Dnastore.Pipeline.reconstruct_nw_pool ?backend:recon_backend ~target_len cores idxs))
  in
  decode_consensus o consensus

(* Sequence, demultiplex, cluster, reconstruct, decode one object. *)
let run_access_task ?recon_backend ?(recon_pool = true) t (tk : access_task) :
    (Bytes.t * Codec.File_codec.decode_stats, error) result =
  let o = tk.tk_obj in
  let cfg = t.manifest.Manifest.config in
  let rng = access_rng t o in
  let seq_rng = Dna.Rng.split rng in
  let decode_rng = Dna.Rng.split rng in
  let sequencing =
    {
      (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed tk.tk_depth)) with
      Simulator.Sequencer.p_reverse = 0.5;
    }
  in
  let channel = Simulator.Iid_channel.create_rate ~error_rate:cfg.error_rate in
  (* Pooled wetlab path: reads stream channel -> arena -> per-pair core
     arena with zero-copy primer stripping; no boxed strand or FASTQ
     record per read. Draw-for-draw identical to the boxed
     [sequence ~domains:1] path, so results match the historical ones. *)
  let pool = Dna.Strand_pool.create () in
  ignore (Simulator.Sequencer.sequence_pool sequencing channel seq_rng tk.tk_selected ~pool);
  let ingested = Dnastore.Wetlab_io.ingest_pool [ o.pair ] pool in
  if recon_pool then
    (* Keep the arena all the way down: index-slice clustering and
       arena-backed consensus, no boxed strand per read. *)
    let cores =
      match ingested.Dnastore.Wetlab_io.pools_by_pair with
      | [ (_, cores) ] -> cores
      | _ -> Dna.Strand_pool.create ()
    in
    decode_task_pool ?recon_backend decode_rng o cores
  else
    let cores =
      match ingested.Dnastore.Wetlab_io.pools_by_pair with
      | [ (_, cores) ] -> Dna.Strand_pool.to_array cores
      | _ -> [||]
    in
    decode_task ?recon_backend decode_rng o cores

let get_batch ?(domains = Dna.Par.default_domains ()) ?(use_cache = true) ?recon_backend
    ?recon_pool t
    (keys : string list) : (string * (Bytes.t, error) result) list =
  (* Resolve keys against a hashed view of the directory: cache hits
     answer immediately; misses are deduplicated (a key requested twice
     decodes once) and grouped by shard so each shard is PCR-selected
     and sequenced in one pass. *)
  let by_key : (string, Manifest.object_meta) Hashtbl.t =
    Hashtbl.create (List.length t.manifest.Manifest.objects)
  in
  List.iter
    (fun (o : Manifest.object_meta) -> Hashtbl.replace by_key o.key o)
    t.manifest.Manifest.objects;
  let resolved =
    List.map
      (fun key ->
        match Hashtbl.find_opt by_key key with
        | None -> (key, `Err (Key_not_found key))
        | Some (o : Manifest.object_meta) -> (
            (* Health gate: scrub-marked objects never enter the normal
               decode path (their shard may be quarantined); callers opt
               into partial bytes via [get_partial]. *)
            match o.health with
            | Manifest.Lost -> (key, `Err (Object_lost key))
            | Manifest.Degraded { recovered_fraction; _ } ->
                (key, `Err (Object_degraded { key; recovered_fraction }))
            | Manifest.Healthy -> (
                match if use_cache then Lru.find t.cache key else None with
                | Some bytes -> (key, `Hit bytes)
                | None -> (key, `Miss o))))
      keys
  in
  let miss_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let misses =
    List.filter_map
      (function
        | key, `Miss (o : Manifest.object_meta) when not (Hashtbl.mem miss_seen key) ->
            Hashtbl.add miss_seen key ();
            Some o
        | _ -> None)
      resolved
  in
  (* Group misses by shard, first appearance first. *)
  let shard_groups : (int, Manifest.object_meta list ref) Hashtbl.t = Hashtbl.create 8 in
  let shard_order = ref [] in
  List.iter
    (fun (o : Manifest.object_meta) ->
      match Hashtbl.find_opt shard_groups o.shard with
      | Some group -> group := o :: !group
      | None ->
          Hashtbl.add shard_groups o.shard (ref [ o ]);
          shard_order := o.shard :: !shard_order)
    misses;
  (* Serial phase: per shard, load the pool and run one indexed PCR
     selection covering every coalesced object. The pass's read budget
     spreads over the whole selection ({!Simulator.Sequencer.shard_depth}),
     so coalesced objects sequence shallower — and cheaper — than the
     same keys fetched one by one. Everything downstream of selection
     runs inside the parallel tasks. *)
  let pool_errors : (string, error) Hashtbl.t = Hashtbl.create 4 in
  let tasks = ref [] in
  let cfg = t.manifest.Manifest.config in
  List.iter
    (fun shard_id ->
      let objs = List.rev !(Hashtbl.find shard_groups shard_id) in
      match load_pool t shard_id with
      | Error e ->
          List.iter
            (fun (o : Manifest.object_meta) -> Hashtbl.replace pool_errors o.key e)
            objs
      | Ok pool ->
          t.sequencing_passes <- t.sequencing_passes + 1;
          let selected =
            List.map
              (fun (o : Manifest.object_meta) ->
                Dnastore.Primer_index.select pool.index pool.strands o.pair)
              objs
          in
          let n_union = List.fold_left (fun a s -> a + Array.length s) 0 selected in
          let depth =
            Simulator.Sequencer.shard_depth ~base:cfg.coverage ~n_selected:n_union
              ~n_shard:(Array.length pool.strands)
          in
          List.iter2
            (fun o sel -> tasks := { tk_obj = o; tk_selected = sel; tk_depth = depth } :: !tasks)
            objs selected)
    (List.rev !shard_order);
  let tasks = Array.of_list (List.rev !tasks) in
  let outcome_arr =
    Dna.Par.map_array ~label:"store.get_batch" ~domains
      (fun tk ->
        (tk.tk_obj.Manifest.key, Result.map fst (run_access_task ?recon_backend ?recon_pool t tk)))
      tasks
  in
  let outcomes : (string, (Bytes.t, error) result) Hashtbl.t =
    Hashtbl.create (Array.length outcome_arr)
  in
  Array.iter (fun (key, r) -> Hashtbl.replace outcomes key r) outcome_arr;
  if use_cache then
    Array.iter
      (function key, Ok bytes -> Lru.add t.cache key bytes | _, Error _ -> ())
      outcome_arr;
  List.map
    (fun (key, r) ->
      match r with
      | `Err e -> (key, Error e)
      | `Hit bytes -> (key, Ok bytes)
      | `Miss _ -> (
          match Hashtbl.find_opt pool_errors key with
          | Some e -> (key, Error e)
          | None -> (
              match Hashtbl.find_opt outcomes key with
              | Some outcome -> (key, outcome)
              | None -> (key, Error (Corrupt ("no outcome for key " ^ key))))))
    resolved

let get ?(use_cache = true) t ~key : (Bytes.t, error) result =
  match get_batch ~domains:1 ~use_cache t [ key ] with
  | [ (_, r) ] -> r
  | _ -> Error (Corrupt "single-key batch returned a different shape")

type health = Manifest.health =
  | Healthy
  | Degraded of { recovered_fraction : float; ranges : (int * int) list }
  | Lost

let health_name = Manifest.health_name
let shards_dir = Manifest.shards_dir

let object_health t ~key =
  Option.map (fun (o : Manifest.object_meta) -> o.health) (find_object t key)

(* ---------- degraded reads ---------- *)

type partial_read = {
  bytes : Bytes.t;
  recovered_fraction : float;
  recovered_ranges : (int * int) list;
  exact : bool;
}

(* Best-effort read against whatever molecules survive in the object's
   (possibly damaged) shard: lenient pool load, then the ordinary wetlab
   path, mapping the decode stats onto recovered byte ranges. *)
let partial_attempt t (o : Manifest.object_meta) : (partial_read, error) result =
  match load_pool_lenient t o.shard with
  | Error e -> Error e
  | Ok pool -> (
      let selected = Dnastore.Primer_index.select pool.index pool.strands o.pair in
      if Array.length selected = 0 then Error (Object_lost o.key)
      else begin
        t.sequencing_passes <- t.sequencing_passes + 1;
        let cfg = t.manifest.Manifest.config in
        let depth =
          Simulator.Sequencer.shard_depth ~base:cfg.coverage ~n_selected:(Array.length selected)
            ~n_shard:(Array.length pool.strands)
        in
        match run_access_task t { tk_obj = o; tk_selected = selected; tk_depth = depth } with
        | Error e -> Error e
        | Ok (bytes, stats) ->
            let p = Codec.File_codec.partial ~params:o.params ~file_len:(Bytes.length bytes) stats in
            let exact =
              Codec.File_codec.fully_recovered stats
              && (match o.checksum with
                 | Some c -> Store_io.crc32 (Bytes.to_string bytes) = c
                 | None -> true)
            in
            Ok
              {
                bytes;
                recovered_fraction = p.Codec.File_codec.recovered_fraction;
                recovered_ranges = p.Codec.File_codec.recovered_ranges;
                exact;
              }
      end)

let get_partial ?(use_cache = true) t ~key : (partial_read, error) result =
  match find_object t key with
  | None -> Error (Key_not_found key)
  | Some o -> (
      match o.Manifest.health with
      | Manifest.Lost -> Error (Object_lost key)
      | Manifest.Degraded _ -> partial_attempt t o
      | Manifest.Healthy -> (
          match get ~use_cache t ~key with
          | Ok bytes ->
              let n = Bytes.length bytes in
              Ok
                {
                  bytes;
                  recovered_fraction = 1.0;
                  recovered_ranges = (if n = 0 then [] else [ (0, n) ]);
                  exact = true;
                }
          | Error (Corrupt_shard _) ->
              (* Damage scrub has not classified yet: fall back to the
                 surviving molecules rather than failing the read. *)
              partial_attempt t o
          | Error e -> Error e))

(* ---------- compaction ---------- *)

type compact_stats = {
  objects_rewritten : int;
  objects_dropped : int;  (** Lost objects removed from the directory *)
  strands_before : int;
  strands_after : int;
  shards_before : int;
  shards_after : int;
  primer_pairs_reclaimed : int;
  unlink_failures : int;  (** old shard files left behind by a failed unlink *)
}

(* Re-encode decoded objects into fresh, densely packed shards under
   their existing primer pairs, in input order. Writes the shard files
   (checksummed); returns their metas, the refreshed object metas and
   the next unused shard id. Shared by compaction and scrub repair. *)
let pack_objects t ~next_id ~target (items : (Manifest.object_meta * Bytes.t) list) =
  let next = ref next_id in
  let shards = ref [] and objects = ref [] and current = ref [] and current_n = ref 0 in
  let flush () =
    if !current <> [] then begin
      let strands = Array.concat (List.rev !current) in
      let file = Manifest.shard_file !next in
      let checksum = write_shard_file t ~file strands in
      shards :=
        {
          Manifest.shard_id = !next;
          file;
          n_strands = Array.length strands;
          dead_strands = 0;
          checksum = Some checksum;
          quarantined = false;
        }
        :: !shards;
      incr next;
      current := [];
      current_n := 0
    end
  in
  List.iter
    (fun ((o : Manifest.object_meta), bytes) ->
      let encoded = Codec.File_codec.encode ~layout:o.layout ~params:o.params bytes in
      let tagged = Array.map (Codec.Primer.attach o.pair) encoded.Codec.File_codec.strands in
      if !current_n > 0 && !current_n >= target then flush ();
      objects :=
        {
          o with
          Manifest.shard = !next;
          n_units = encoded.Codec.File_codec.n_units;
          checksum = Some (Store_io.crc32 (Bytes.to_string bytes));
          health = Manifest.Healthy;
        }
        :: !objects;
      current := tagged :: !current;
      current_n := !current_n + Array.length tagged)
    items;
  flush ();
  (List.rev !shards, List.rev !objects, !next)

let compact t : (compact_stats, error) result =
  let m = t.manifest in
  (* Healthy objects are rewritten; Degraded ones keep their quarantined
     shard (the surviving molecules are all they have); Lost ones are
     dropped and their pairs reclaimed. *)
  let healthy, unhealthy =
    List.partition
      (fun (o : Manifest.object_meta) -> o.health = Manifest.Healthy)
      m.Manifest.objects
  in
  let degraded =
    List.filter
      (fun (o : Manifest.object_meta) ->
        match o.health with Manifest.Degraded _ -> true | _ -> false)
      unhealthy
  in
  let lost =
    List.filter (fun (o : Manifest.object_meta) -> o.health = Manifest.Lost) unhealthy
  in
  (* All-or-nothing: every healthy object must decode before anything on
     disk changes, so a failed compaction never loses data. *)
  let decoded =
    List.map (fun (o : Manifest.object_meta) -> (o, get ~use_cache:true t ~key:o.key)) healthy
  in
  match List.find_opt (fun (_, r) -> Result.is_error r) decoded with
  | Some (_, Error e) -> Error e
  | Some (_, Ok _) -> assert false
  | None -> (
      try
        let strands_before =
          List.fold_left (fun a (s : Manifest.shard_meta) -> a + s.n_strands) 0 m.Manifest.shards
        in
        let items =
          List.map
            (fun (o, r) -> (o, match r with Ok b -> b | Error _ -> assert false))
            decoded
        in
        let new_shards, new_objects, next_id =
          pack_objects t ~next_id:m.Manifest.next_shard_id
            ~target:m.Manifest.config.shard_target_strands items
        in
        (* Shards still referenced by degraded objects survive as-is. *)
        let keep = Hashtbl.create 4 in
        List.iter (fun (o : Manifest.object_meta) -> Hashtbl.replace keep o.shard ()) degraded;
        let kept_shards =
          List.filter (fun (s : Manifest.shard_meta) -> Hashtbl.mem keep s.shard_id) m.Manifest.shards
        in
        let old_files =
          List.filter_map
            (fun (s : Manifest.shard_meta) ->
              if Hashtbl.mem keep s.shard_id then None
              else Some (Filename.concat t.dir s.file))
            m.Manifest.shards
        in
        (* Rebuild the directory in the original insertion order. *)
        let fresh = Hashtbl.create 8 in
        List.iter (fun (o : Manifest.object_meta) -> Hashtbl.replace fresh o.key o) new_objects;
        let objects =
          List.filter_map
            (fun (o : Manifest.object_meta) ->
              match o.health with
              | Manifest.Lost -> None
              | Manifest.Degraded _ -> Some o
              | Manifest.Healthy -> Hashtbl.find_opt fresh o.key)
            m.Manifest.objects
        in
        let reclaimed =
          m.Manifest.retired @ List.map (fun (o : Manifest.object_meta) -> o.pair) lost
        in
        save_manifest t
          {
            m with
            Manifest.shards = new_shards @ kept_shards;
            objects;
            retired = [];
            next_shard_id = next_id;
          };
        (* Only after the manifest points at the new shards: reclaim the
           retired primer pairs and drop the old shard files. A crash
           before the removals merely leaves unreferenced files behind
           (reclaimed on the next open); a failed unlink is counted and
           surfaced, not swallowed. *)
        List.iter (fun pair -> Codec.Primer.Registry.release t.registry pair) reclaimed;
        let unlink_failures = ref 0 in
        List.iter
          (fun path ->
            try Store_io.remove t.io path with Sys_error _ -> incr unlink_failures)
          old_files;
        Hashtbl.reset t.pools;
        List.iter (fun (o : Manifest.object_meta) -> Lru.remove t.cache o.key) lost;
        let strands_after =
          List.fold_left
            (fun a (s : Manifest.shard_meta) -> a + s.n_strands)
            0 t.manifest.Manifest.shards
        in
        Ok
          {
            objects_rewritten = List.length healthy;
            objects_dropped = List.length lost;
            strands_before;
            strands_after;
            shards_before = List.length m.Manifest.shards;
            shards_after = List.length t.manifest.Manifest.shards;
            primer_pairs_reclaimed = List.length reclaimed;
            unlink_failures = !unlink_failures;
          }
      with Store_io.Io_failure msg ->
        (* New shard files written so far are unreferenced (the manifest
           never moved) and reclaimed on the next open. *)
        Hashtbl.reset t.pools;
        Error (Io_error msg))

(* ---------- scrub & self-repair ---------- *)

type scrub_report = {
  shards_checked : int;
  shards_corrupt : int;  (** failed verification on this pass *)
  shards_quarantined : int;  (** left damaged in place, still referenced *)
  shards_dropped : int;  (** damaged and no longer referenced: unlinked *)
  objects_checked : int;
  objects_repaired : int;  (** re-synthesized bit-identically into fresh shards *)
  objects_degraded : int;
  objects_lost : int;
  checksums_backfilled : int;  (** version-1 shards that gained a checksum *)
}

let scrub t : (scrub_report, error) result =
  let m = t.manifest in
  (* Verify from disk, not from cached pools. *)
  Hashtbl.reset t.pools;
  try
    let backfilled = ref 0 in
    let corrupt : (int, string) Hashtbl.t = Hashtbl.create 4 in
    let fresh_checksum : (int, int) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (s : Manifest.shard_meta) ->
        match check_shard t s with
        | `Corrupt reason -> Hashtbl.replace corrupt s.shard_id reason
        | `Ok (crc, _) ->
            if s.checksum = None then incr backfilled;
            Hashtbl.replace fresh_checksum s.shard_id crc)
      m.Manifest.shards;
    (* Objects on a damaged shard — plus any the last scrub already
       marked — get a recovery attempt from whatever molecules survive.
       Access streams hash from (seed, key, version), so the attempt
       replays deterministically. *)
    let needs_attention (o : Manifest.object_meta) =
      Hashtbl.mem corrupt o.shard || o.health <> Manifest.Healthy
    in
    let evaluate (o : Manifest.object_meta) =
      match load_pool_lenient t o.shard with
      | Error _ -> `Lost
      | Ok pool -> (
          let selected = Dnastore.Primer_index.select pool.index pool.strands o.pair in
          if Array.length selected = 0 then `Lost
          else begin
            t.sequencing_passes <- t.sequencing_passes + 1;
            let depth =
              Simulator.Sequencer.shard_depth ~base:m.Manifest.config.coverage
                ~n_selected:(Array.length selected) ~n_shard:(Array.length pool.strands)
            in
            match run_access_task t { tk_obj = o; tk_selected = selected; tk_depth = depth } with
            | Error _ -> `Lost
            | Ok (bytes, stats) ->
                let crc_ok =
                  match o.checksum with
                  | Some c -> Store_io.crc32 (Bytes.to_string bytes) = c
                  | None -> true
                in
                if Codec.File_codec.fully_recovered stats && crc_ok then `Repair bytes
                else begin
                  let p =
                    Codec.File_codec.partial ~params:o.params ~file_len:(Bytes.length bytes) stats
                  in
                  if p.Codec.File_codec.recovered_fraction > 0.0 then
                    `Degraded
                      (p.Codec.File_codec.recovered_fraction, p.Codec.File_codec.recovered_ranges)
                  else `Lost
                end
          end)
    in
    let outcomes =
      List.map
        (fun (o : Manifest.object_meta) ->
          if needs_attention o then (o, evaluate o) else (o, `Keep))
        m.Manifest.objects
    in
    let repairs =
      List.filter_map (function o, `Repair b -> Some (o, b) | _ -> None) outcomes
    in
    let new_shards, repaired_objs, next_id =
      pack_objects t ~next_id:m.Manifest.next_shard_id
        ~target:m.Manifest.config.shard_target_strands repairs
    in
    let repaired_by_key = Hashtbl.create 8 in
    List.iter
      (fun (o : Manifest.object_meta) -> Hashtbl.replace repaired_by_key o.key o)
      repaired_objs;
    let objects =
      List.map
        (fun ((o : Manifest.object_meta), verdict) ->
          match verdict with
          | `Keep -> o
          | `Repair _ -> Hashtbl.find repaired_by_key o.key
          | `Degraded (recovered_fraction, ranges) ->
              { o with Manifest.health = Manifest.Degraded { recovered_fraction; ranges } }
          | `Lost -> { o with Manifest.health = Manifest.Lost })
        outcomes
    in
    (* A damaged shard survives — quarantined — only while degraded or
       lost objects still point into it; once everything it held has
       been repaired elsewhere, drop it. *)
    let still_referenced = Hashtbl.create 8 in
    List.iter (fun (o : Manifest.object_meta) -> Hashtbl.replace still_referenced o.shard ()) objects;
    let kept, dropped =
      List.partition
        (fun (s : Manifest.shard_meta) ->
          (not (Hashtbl.mem corrupt s.shard_id)) || Hashtbl.mem still_referenced s.shard_id)
        m.Manifest.shards
    in
    let kept =
      List.map
        (fun (s : Manifest.shard_meta) ->
          if Hashtbl.mem corrupt s.shard_id then { s with Manifest.quarantined = true }
          else
            match (s.checksum, Hashtbl.find_opt fresh_checksum s.shard_id) with
            | None, Some crc -> { s with Manifest.checksum = Some crc }
            | _ -> s)
        kept
    in
    save_manifest t
      { m with Manifest.shards = kept @ new_shards; objects; next_shard_id = next_id };
    List.iter
      (fun (s : Manifest.shard_meta) ->
        try Store_io.remove t.io (Filename.concat t.dir s.file) with Sys_error _ -> ())
      dropped;
    List.iter
      (fun ((o : Manifest.object_meta), verdict) ->
        match verdict with
        | `Repair bytes -> Lru.add t.cache o.key bytes
        | `Degraded _ | `Lost -> Lru.remove t.cache o.key
        | `Keep -> ())
      outcomes;
    Hashtbl.reset t.pools;
    let count f l = List.length (List.filter f l) in
    Ok
      {
        shards_checked = List.length m.Manifest.shards;
        shards_corrupt = Hashtbl.length corrupt;
        shards_quarantined = count (fun (s : Manifest.shard_meta) -> s.quarantined) kept;
        shards_dropped = List.length dropped;
        objects_checked = List.length m.Manifest.objects;
        objects_repaired = List.length repairs;
        objects_degraded = count (function _, `Degraded _ -> true | _ -> false) outcomes;
        objects_lost = count (function _, `Lost -> true | _ -> false) outcomes;
        checksums_backfilled = !backfilled;
      }
  with Store_io.Io_failure msg ->
    Hashtbl.reset t.pools;
    Error (Io_error msg)

(* ---------- stats ---------- *)

type stats = {
  n_objects : int;
  n_shards : int;
  n_strands : int;
  dead_strands : int;
  live_primer_pairs : int;
  retired_primer_pairs : int;
  cache_hits : int;
  cache_misses : int;
  generation : int;
  degraded_objects : int;
  lost_objects : int;
  quarantined_shards : int;
  orphans_reclaimed : int;
}

let stats t =
  let m = t.manifest in
  {
    n_objects = List.length m.Manifest.objects;
    n_shards = List.length m.Manifest.shards;
    n_strands =
      List.fold_left (fun a (s : Manifest.shard_meta) -> a + s.n_strands) 0 m.Manifest.shards;
    dead_strands =
      List.fold_left (fun a (s : Manifest.shard_meta) -> a + s.dead_strands) 0 m.Manifest.shards;
    live_primer_pairs = List.length m.Manifest.objects;
    retired_primer_pairs = List.length m.Manifest.retired;
    cache_hits = Lru.hits t.cache;
    cache_misses = Lru.misses t.cache;
    generation = m.Manifest.generation;
    degraded_objects =
      List.length
        (List.filter
           (fun (o : Manifest.object_meta) ->
             match o.health with Manifest.Degraded _ -> true | _ -> false)
           m.Manifest.objects);
    lost_objects =
      List.length
        (List.filter
           (fun (o : Manifest.object_meta) -> o.health = Manifest.Lost)
           m.Manifest.objects);
    quarantined_shards =
      List.length
        (List.filter (fun (s : Manifest.shard_meta) -> s.quarantined) m.Manifest.shards);
    orphans_reclaimed = t.orphans_reclaimed;
  }

let render_stats t =
  let s = stats t in
  let m = t.manifest in
  Dnastore.Report.table
    ([ "shard"; "file"; "strands"; "dead"; "state" ]
    :: List.map
         (fun (sh : Manifest.shard_meta) ->
           [
             string_of_int sh.shard_id;
             sh.file;
             string_of_int sh.n_strands;
             string_of_int sh.dead_strands;
             (if sh.quarantined then "quarantined"
              else match sh.checksum with Some _ -> "ok" | None -> "unchecked");
           ])
         m.Manifest.shards)
  ^ Printf.sprintf "objects: %d  shards: %d  strands: %d (%d dead)  generation: %d\n" s.n_objects
      s.n_shards s.n_strands s.dead_strands s.generation
  ^ Printf.sprintf "primer pairs: %d live, %d retired (await compaction)\n" s.live_primer_pairs
      s.retired_primer_pairs
  ^ (if s.degraded_objects + s.lost_objects + s.quarantined_shards + s.orphans_reclaimed = 0 then ""
     else
       Printf.sprintf
         "health: %d degraded, %d lost objects; %d quarantined shards; %d orphans reclaimed\n"
         s.degraded_objects s.lost_objects s.quarantined_shards s.orphans_reclaimed)
  ^ Dnastore.Report.cache_counters ~label:"store" ~hits:s.cache_hits ~misses:s.cache_misses
