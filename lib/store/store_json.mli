(** Minimal JSON for the store manifest: the subset the manifest needs
    (objects, arrays, strings with full escaping, ints, floats, bools,
    null), parsed strictly — a half-readable manifest must never be
    half-trusted. No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline;
    strings are fully escaped (control characters as [\uXXXX]). *)

val max_depth : int
(** Container-nesting bound enforced by {!of_string} (adversarial
    ["[[[[…"] input fails typed instead of overflowing the stack). *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value: trailing garbage, unterminated
    literals, malformed escapes, duplicate object keys and nesting
    beyond {!max_depth} are errors — never exceptions. [\uXXXX]
    escapes decode to UTF-8. *)

val member : string -> t -> t option

(** Result-typed field accessors used by the manifest decoder; the
    error is a human-readable reason. *)

val field : t -> string -> (t, string) result
val as_int : t -> (int, string) result
val as_float : t -> (float, string) result
val as_string : t -> (string, string) result
val as_list : t -> (t list, string) result
val int_field : t -> string -> (int, string) result
val float_field : t -> string -> (float, string) result
val string_field : t -> string -> (string, string) result
val list_field : t -> string -> (t list, string) result
