(** The store's filesystem boundary, made pluggable so durability can be
    proven, not assumed.

    Every byte the store reads or writes goes through a {!t}: the
    {!real} backend passes straight to the OS, while {!faulty} wraps it
    in a deterministic, seeded fault layer — torn and short writes,
    failed renames, simulated ENOSPC, read bit-rot, and a process kill
    at any chosen {e fault point}. Fault points are the instants where a
    crash could leave the disk in a distinct state (before a temp file
    is written, mid-write, before and after the rename, before an
    unlink); the crash-consistency harness sweeps a kill across every
    one of them and asserts the store reopens consistently.

    All faults derive from the plan's seed alone, so a faulty run
    replays bit-identically. *)

exception Crashed of { point : string; index : int }
(** The simulated kill: raised by a faulty backend when the global
    fault-point counter reaches the plan's [crash_at]. Nothing below the
    raise executed — exactly like power loss. Only the crash harness
    should catch it. *)

exception Io_failure of string
(** A simulated I/O error the store is expected to survive gracefully
    (ENOSPC, EIO on rename). The store maps it to a typed error; it must
    never escape a store operation as an exception. *)

type plan = {
  seed : int;
  crash_at : int option;
      (** kill the process at the Nth fault point (1-based); a write
          fault point crashed mid-data leaves a torn (seeded prefix)
          temp file behind *)
  fail_rename_at : int option;
      (** the Nth rename raises {!Io_failure}, leaving the temp file *)
  enospc_at : int option;
      (** the Nth data write raises {!Io_failure} after a seeded
          partial write *)
  bit_rot : float;
      (** per-byte probability that a read of a [.fasta] file returns a
          corrupted base (deterministic per path and seed) *)
}

val no_faults : seed:int -> plan
(** All fault knobs off: behaves like {!real} but still counts fault
    points, so a recording run can size a crash sweep. *)

type t

val real : t
(** Pass-through to the OS. *)

val faulty : plan -> t
(** A fresh fault-injecting backend (counters start at zero). *)

val points_hit : t -> int
(** Fault points traversed so far ([0] for {!real}). *)

val crc32 : string -> int
(** Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a string, as
    a non-negative int. The store's shard and object checksums. *)

(** {2 Operations} *)

val read_file : t -> string -> string
(** Whole-file read. Raises [Sys_error] if unreadable; a faulty backend
    may additionally apply bit-rot to [.fasta] content. *)

val write_file_atomic : t -> dir:string -> name:string -> string -> unit
(** Write [dir/name.tmp], then rename over [dir/name]. Fault points:
    before the temp write, mid-data, before the rename, after it. *)

val remove : t -> string -> unit
(** Unlink, with a fault point before it. Raises [Sys_error] if the
    file does not exist (callers decide whether that matters). *)

val exists : t -> string -> bool
val mkdir_p : t -> string -> unit

val list_dir : t -> string -> string array
(** Directory entries, sorted (so fault injection is order-stable);
    [||] if the directory does not exist. *)
