(** A minimal JSON reader/writer for the store manifest.

    The toolkit deliberately carries no external JSON dependency; this
    module implements the subset the manifest needs (objects, arrays,
    strings with full escaping, ints, floats, bools, null) with strict
    parsing — trailing garbage, unterminated literals and malformed
    escapes are errors, because a half-readable manifest must never be
    half-trusted. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  (* Shortest representation that round-trips. *)
  let s = Printf.sprintf "%.12g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0"

let rec write buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          escape_string buf k;
          Buffer.add_string buf ": ";
          write buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

let max_depth = 512
(* Nesting bound for containers: adversarial input like ["[[[[..."]
   must come back as a typed error, not blow the OCaml stack. *)

let of_string (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | None -> fail "malformed \\u escape"
    | Some v ->
        pos := !pos + 4;
        v
  in
  let add_utf8 buf code =
    (* Encode a BMP code point as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' -> add_utf8 buf (hex4 ())
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("malformed number " ^ lit))
  in
  let rec parse_value depth =
    if depth > max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            if List.mem_assoc k !fields then fail (Printf.sprintf "duplicate key %S" k);
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let field v k =
  match member k v with Some f -> Ok f | None -> Error (Printf.sprintf "missing field %S" k)

let as_int = function Int i -> Ok i | _ -> Error "expected an integer"

let as_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let as_string = function String s -> Ok s | _ -> Error "expected a string"
let as_list = function List l -> Ok l | _ -> Error "expected an array"

let int_field v k = Result.bind (field v k) as_int
let float_field v k = Result.bind (field v k) as_float
let string_field v k = Result.bind (field v k) as_string
let list_field v k = Result.bind (field v k) as_list
