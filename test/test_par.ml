(* The hardened parallel execution layer: balanced chunking across
   ragged shapes, exception-safe joins, deterministic per-task RNG
   splitting, and the instrumentation counters. *)

let test_ragged_regression () =
  (* 5 items across 4 domains: ceil-division chunking used to hand
     worker 3 the range lo=6 > n and crash on Array.init (-1). *)
  let arr = [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int))
    "n=5 domains=4" [| 2; 4; 6; 8; 10 |]
    (Dna.Par.map_array ~domains:4 (fun x -> 2 * x) arr)

let test_matches_sequential_all_shapes () =
  let f x = (x * x) - (3 * x) + 1 in
  for n = 0 to 64 do
    let arr = Array.init n (fun i -> (i * 7) - 11) in
    let expected = Array.map f arr in
    for domains = 1 to 8 do
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d domains=%d" n domains)
        expected
        (Dna.Par.map_array ~domains f arr)
    done
  done

let test_mapi_matches_sequential () =
  let arr = Array.init 23 (fun i -> i * 5) in
  let expected = Array.mapi (fun i x -> x - i) arr in
  for domains = 1 to 8 do
    Alcotest.(check (array int))
      (Printf.sprintf "domains=%d" domains)
      expected
      (Dna.Par.mapi_array ~domains (fun i x -> x - i) arr)
  done

let test_iter_array_visits_everything () =
  let n = 37 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Dna.Par.iter_array ~domains:5 (fun i -> Atomic.incr hits.(i)) (Array.init n Fun.id);
  Array.iteri
    (fun i a -> Alcotest.(check int) (Printf.sprintf "element %d visited once" i) 1 (Atomic.get a))
    hits

let test_chunked_map_reassembles () =
  let arr = Array.init 13 (fun i -> i) in
  for domains = 1 to 8 do
    let chunks = Dna.Par.chunked_map ~domains Fun.id arr in
    Alcotest.(check int)
      (Printf.sprintf "chunk count domains=%d" domains)
      (min domains 13) (Array.length chunks);
    Array.iter
      (fun c -> Alcotest.(check bool) "no empty chunk" true (Array.length c > 0))
      chunks;
    Alcotest.(check (array int))
      (Printf.sprintf "concat domains=%d" domains)
      arr (Array.concat (Array.to_list chunks))
  done;
  Alcotest.(check int) "empty input" 0 (Array.length (Dna.Par.chunked_map ~domains:4 Fun.id [||]))

let test_map_reduce_matches_fold () =
  let arr = Array.init 29 (fun i -> i + 1) in
  let expected = Array.fold_left (fun acc x -> acc + (x * x)) 0 arr in
  for domains = 1 to 8 do
    Alcotest.(check int)
      (Printf.sprintf "sum of squares domains=%d" domains)
      expected
      (Dna.Par.map_reduce ~domains ~map:(fun x -> x * x) ~combine:( + ) ~init:0 arr)
  done;
  (* An associative but non-commutative combine keeps submission order. *)
  let words = [| "a"; "b"; "c"; "d"; "e"; "f"; "g" |] in
  for domains = 1 to 8 do
    Alcotest.(check string)
      (Printf.sprintf "order preserved domains=%d" domains)
      "abcdefg"
      (Dna.Par.map_reduce ~domains ~map:Fun.id ~combine:( ^ ) ~init:"" words)
  done

let test_exception_joins_all_siblings () =
  (* One task per worker; worker 3 fails. Every sibling must still be
     joined (and hence have run) before the failure is re-raised. *)
  let completed = Atomic.make 0 in
  let f i =
    if i = 3 then failwith "boom"
    else begin
      Atomic.incr completed;
      i
    end
  in
  (try
     ignore (Dna.Par.map_array ~domains:8 f (Array.init 8 Fun.id));
     Alcotest.fail "expected the worker exception to propagate"
   with Failure msg -> Alcotest.(check string) "original payload" "boom" msg);
  Alcotest.(check int) "all siblings completed" 7 (Atomic.get completed);
  (* The layer stays usable after a failed region. *)
  Alcotest.(check (array int))
    "still functional" [| 0; 2; 4 |]
    (Dna.Par.map_array ~domains:4 (fun x -> 2 * x) [| 0; 1; 2 |])

let test_nested_region_serializes () =
  (* A region entered from inside a task must run serially rather than
     recursively claiming pool workers: the inner map still produces
     correct, ordered results and the whole nest terminates. *)
  let outer =
    Dna.Par.map_array ~domains:4
      (fun i ->
        Dna.Par.map_array ~domains:4 (fun j -> (10 * i) + j) (Array.init 3 Fun.id))
      (Array.init 8 Fun.id)
  in
  Array.iteri
    (fun i inner ->
      Alcotest.(check (array int))
        (Printf.sprintf "inner region %d" i)
        [| 10 * i; (10 * i) + 1; (10 * i) + 2 |]
        inner)
    outer

let test_pool_lifecycle () =
  (* The pool never exceeds the hardware (workers <= cores - 1), and a
     shutdown is clean: later regions still work, respawning workers if
     the hardware allows any. *)
  ignore (Dna.Par.map_array ~domains:8 Fun.id (Array.init 32 Fun.id));
  let hw_cap = max 0 (Domain.recommended_domain_count () - 1) in
  Alcotest.(check bool) "pool clamped to hardware" true (Dna.Par.pool_size () <= hw_cap);
  Dna.Par.shutdown_pool ();
  Alcotest.(check int) "shutdown empties pool" 0 (Dna.Par.pool_size ());
  Dna.Par.shutdown_pool ();
  (* idempotent *)
  Alcotest.(check (array int))
    "region after shutdown" [| 0; 2; 4; 6 |]
    (Dna.Par.map_array ~domains:4 (fun x -> 2 * x) [| 0; 1; 2; 3 |]);
  Alcotest.(check bool) "pool respawned within cap" true (Dna.Par.pool_size () <= hw_cap)

let test_split_rngs_deterministic () =
  let draws seed =
    Dna.Par.split_rngs (Dna.Rng.create seed) 6
    |> Array.map (fun r -> Dna.Rng.int r 1_000_000)
  in
  Alcotest.(check (array int)) "same seed, same streams" (draws 7) (draws 7);
  Alcotest.(check bool) "streams differ from each other" true
    (let d = draws 7 in
     Array.exists (fun x -> x <> d.(0)) d)

let test_map_array_rng_domain_independent () =
  let run domains =
    let rng = Dna.Rng.create 123 in
    Dna.Par.map_array_rng ~domains ~rng
      (fun r x -> x + Dna.Rng.int r 1_000_000)
      (Array.init 33 Fun.id)
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d matches serial" domains)
        serial (run domains))
    [ 2; 4; 7 ]

let test_counters_and_report () =
  Dna.Par.reset_counters ();
  ignore (Dna.Par.map_array ~label:"test.stage" ~domains:3 Fun.id (Array.init 10 Fun.id));
  ignore (Dna.Par.map_array ~label:"test.stage" ~domains:1 Fun.id (Array.init 5 Fun.id));
  let c =
    List.find (fun c -> c.Dna.Par.label = "test.stage") (Dna.Par.counters ())
  in
  Alcotest.(check int) "regions" 2 c.Dna.Par.regions;
  Alcotest.(check int) "tasks" 15 c.Dna.Par.tasks;
  Alcotest.(check bool) "wall time recorded" true (c.Dna.Par.wall_s >= 0.0);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let rendered = Dnastore.Report.par_counters (Dna.Par.counters ()) in
  Alcotest.(check bool) "rendered table names the stage" true (contains rendered "test.stage");
  Dna.Par.reset_counters ();
  Alcotest.(check (list string)) "reset clears" []
    (List.map (fun c -> c.Dna.Par.label) (Dna.Par.counters ()))

let test_default_domains_knob () =
  let before = Dna.Par.default_domains () in
  Fun.protect
    ~finally:(fun () -> Dna.Par.set_default_domains before)
    (fun () ->
      Dna.Par.set_default_domains 4;
      Alcotest.(check int) "set" 4 (Dna.Par.default_domains ());
      Dna.Par.set_default_domains 0;
      Alcotest.(check int) "clamped to 1" 1 (Dna.Par.default_domains ());
      Alcotest.(check bool) "recommended at least 1" true (Dna.Par.recommended_domains () >= 1))

let () =
  Alcotest.run "par"
    [
      ( "chunking",
        [
          Alcotest.test_case "ragged n=5 domains=4 regression" `Quick test_ragged_regression;
          Alcotest.test_case "matches Array.map for n in 0..64, domains in 1..8" `Slow
            test_matches_sequential_all_shapes;
          Alcotest.test_case "mapi" `Quick test_mapi_matches_sequential;
          Alcotest.test_case "iter visits everything once" `Quick test_iter_array_visits_everything;
          Alcotest.test_case "chunked_map reassembles" `Quick test_chunked_map_reassembles;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce_matches_fold;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "worker exception joins all siblings" `Quick
            test_exception_joins_all_siblings;
          Alcotest.test_case "nested region serializes" `Quick test_nested_region_serializes;
          Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "split_rngs deterministic" `Quick test_split_rngs_deterministic;
          Alcotest.test_case "map_array_rng independent of domains" `Quick
            test_map_array_rng_domain_independent;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "counters and report" `Quick test_counters_and_report;
          Alcotest.test_case "default domains knob" `Quick test_default_domains_knob;
        ] );
    ]
