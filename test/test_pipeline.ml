(* Integration tests: the full pipeline, the key-value store, wetlab
   FASTQ ingestion, and report rendering. *)

let rng () = Dna.Rng.create 5050

let random_file r n = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256))

(* ---------- pipeline ---------- *)

let test_pipeline_end_to_end_exact () =
  let r = rng () in
  let file = random_file r 1200 in
  let out = Dnastore.Pipeline.run r file in
  Alcotest.(check bool) "exact recovery" true out.Dnastore.Pipeline.exact;
  (match out.Dnastore.Pipeline.file with
  | Some bytes -> Alcotest.(check bytes) "bytes equal" file bytes
  | None -> Alcotest.fail "no file decoded");
  Alcotest.(check bool) "reads = strands x coverage" true
    (out.Dnastore.Pipeline.n_reads = 10 * out.Dnastore.Pipeline.n_strands)

let test_pipeline_every_stage_combination () =
  (* Swap reconstruction and signature stages; all combinations must
     recover the file at the default setting (the paper's modularity
     claim, Section IX: alter one component at a time). *)
  let file = random_file (rng ()) 700 in
  List.iter
    (fun kind ->
      List.iter
        (fun (rname, recon) ->
          let r = Dna.Rng.create 17 in
          let stages =
            {
              (Dnastore.Pipeline.default_stages ()) with
              Dnastore.Pipeline.cluster = Dnastore.Pipeline.cluster_default ~kind ();
              reconstruct = recon;
            }
          in
          let out = Dnastore.Pipeline.run ~stages r file in
          Alcotest.(check bool)
            (Printf.sprintf "%s + %s exact"
               (match kind with Clustering.Signature.Qgram -> "qgram" | _ -> "wgram")
               rname)
            true out.Dnastore.Pipeline.exact)
        [
          ("bma", Dnastore.Pipeline.reconstruct_bma);
          ("dbma", Dnastore.Pipeline.reconstruct_dbma);
          ("nw", fun ~target_len reads -> Dnastore.Pipeline.reconstruct_nw ~target_len reads);
        ])
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let test_pipeline_gini_layout () =
  let r = rng () in
  let file = random_file r 900 in
  let out = Dnastore.Pipeline.run ~layout:Codec.Layout.Gini r file in
  Alcotest.(check bool) "gini exact" true out.Dnastore.Pipeline.exact

let test_pipeline_noiseless_channel () =
  let r = rng () in
  let file = random_file r 400 in
  let stages =
    { (Dnastore.Pipeline.default_stages ()) with Dnastore.Pipeline.channel = Simulator.Channel.noiseless }
  in
  let out = Dnastore.Pipeline.run ~stages r file in
  Alcotest.(check bool) "noiseless exact" true out.Dnastore.Pipeline.exact

let test_pipeline_timings_positive () =
  let r = rng () in
  let file = random_file r 500 in
  let out = Dnastore.Pipeline.run r file in
  let t = out.Dnastore.Pipeline.timings in
  Alcotest.(check bool) "all stages timed" true
    (t.Dnastore.Pipeline.encode_s >= 0.0 && t.simulate_s >= 0.0 && t.cluster_s > 0.0
   && t.reconstruct_s > 0.0 && t.decode_s >= 0.0);
  Alcotest.(check bool) "total is the sum" true
    (abs_float (Dnastore.Pipeline.total_s t
                -. (t.Dnastore.Pipeline.encode_s +. t.simulate_s +. t.cluster_s
                    +. t.reconstruct_s +. t.decode_s))
    < 1e-9)

let test_pipeline_parallel_domains () =
  let r = rng () in
  let file = random_file r 800 in
  let out = Dnastore.Pipeline.run ~domains:2 r file in
  Alcotest.(check bool) "parallel exact" true out.Dnastore.Pipeline.exact

let test_pipeline_parallel_counters_visible () =
  (* Every parallel stage must leave a labeled counter behind,
     renderable through Core.Report — on both spines. The pooled
     default sequences serially into the arena (no synthesis region)
     and clusters through the sharded index; the boxed spine keeps the
     historical labels. *)
  let check_labels ~spine expected run =
    Dna.Par.reset_counters ();
    let out = run () in
    Alcotest.(check bool) (spine ^ " ran") true (out.Dnastore.Pipeline.n_reads > 0);
    let labels = List.map (fun c -> c.Dna.Par.label) (Dna.Par.counters ()) in
    List.iter
      (fun label ->
        Alcotest.(check bool) (spine ^ " " ^ label ^ " counted") true (List.mem label labels))
      expected;
    List.iter
      (fun c ->
        Alcotest.(check bool) (c.Dna.Par.label ^ " ran tasks") true (c.Dna.Par.tasks > 0);
        Alcotest.(check bool) (c.Dna.Par.label ^ " wall >= 0") true (c.Dna.Par.wall_s >= 0.0))
      (Dna.Par.counters ());
    let rendered = Dnastore.Report.par_counters (Dna.Par.counters ()) in
    Alcotest.(check bool) (spine ^ " report nonempty") true (String.length rendered > 0);
    Dna.Par.reset_counters ()
  in
  check_labels ~spine:"pooled"
    [ "cluster.index"; "cluster.buckets"; "pipeline.reconstruct" ]
    (fun () -> Dnastore.Pipeline.run ~domains:2 (rng ()) (random_file (rng ()) 500));
  check_labels ~spine:"boxed"
    [ "simulate.synthesis"; "cluster.signatures"; "cluster.buckets"; "pipeline.reconstruct" ]
    (fun () ->
      Dnastore.Pipeline.run ~recon_pool:Dnastore.Pipeline.Pool_off ~domains:2 (rng ())
        (random_file (rng ()) 500))

(* ---------- pooled vs boxed spine ---------- *)

(* Same seed, same scaled clustering engine: the pooled spine and the
   boxed spine must decode byte-identical files. *)
let test_pipeline_spines_byte_identical () =
  let file = random_file (rng ()) 1100 in
  let pooled =
    Dnastore.Pipeline.run ~recon_pool:Dnastore.Pipeline.Pool_on ~domains:1
      (Dna.Rng.create 77) file
  in
  let stages =
    {
      (Dnastore.Pipeline.default_stages ()) with
      Dnastore.Pipeline.cluster = Dnastore.Pipeline.cluster_scaled_default ~domains:1 ();
    }
  in
  let boxed =
    Dnastore.Pipeline.run ~stages ~recon_pool:Dnastore.Pipeline.Pool_off ~domains:1
      (Dna.Rng.create 77) file
  in
  Alcotest.(check bool) "pooled exact" true pooled.Dnastore.Pipeline.exact;
  Alcotest.(check bool) "boxed exact" true boxed.Dnastore.Pipeline.exact;
  (match (pooled.Dnastore.Pipeline.file, boxed.Dnastore.Pipeline.file) with
  | Some a, Some b -> Alcotest.(check bytes) "bytes identical" a b
  | _ -> Alcotest.fail "a spine decoded nothing");
  Alcotest.(check int) "same reads" boxed.Dnastore.Pipeline.n_reads
    pooled.Dnastore.Pipeline.n_reads;
  Alcotest.(check int) "same clusters" boxed.Dnastore.Pipeline.n_clusters
    pooled.Dnastore.Pipeline.n_clusters

(* Custom boxed stages without an explicit mode pin the boxed spine
   (their closures speak boxed types); Pool_auto with defaults is
   pooled. The words counter tells the two apart. *)
let test_pipeline_pool_auto_spine_choice () =
  let file = random_file (rng ()) 500 in
  Dna.Par.reset_counters ();
  let out = Dnastore.Pipeline.run ~stages:(Dnastore.Pipeline.default_stages ()) (rng ()) file in
  let labels = List.map (fun c -> c.Dna.Par.label) (Dna.Par.counters ()) in
  Alcotest.(check bool) "custom stages stay boxed" true
    (List.mem "cluster.signatures" labels && not (List.mem "cluster.index" labels));
  Alcotest.(check bool) "boxed run exact" true out.Dnastore.Pipeline.exact;
  Dna.Par.reset_counters ();
  let out = Dnastore.Pipeline.run (rng ()) file in
  let labels = List.map (fun c -> c.Dna.Par.label) (Dna.Par.counters ()) in
  Alcotest.(check bool) "default run pooled" true (List.mem "cluster.index" labels);
  Alcotest.(check bool) "pooled run exact" true out.Dnastore.Pipeline.exact;
  Dna.Par.reset_counters ()

(* The per-cluster timing percentiles must be populated and ordered on
   the pooled spine (they regressed to zero once when the pooled tasks
   stopped reporting wall times), and the allocation counter must show
   the pooled spine allocating strictly less than the boxed one. *)
let test_pipeline_pooled_timings_and_words () =
  let file = random_file (rng ()) 1100 in
  let pooled =
    Dnastore.Pipeline.run ~recon_pool:Dnastore.Pipeline.Pool_on ~domains:1
      (Dna.Rng.create 99) file
  in
  let t = pooled.Dnastore.Pipeline.timings in
  Alcotest.(check bool) "p50 positive" true (t.Dnastore.Pipeline.reconstruct_p50_s > 0.0);
  Alcotest.(check bool) "percentiles monotone" true
    (t.Dnastore.Pipeline.reconstruct_p50_s <= t.Dnastore.Pipeline.reconstruct_p95_s
    && t.Dnastore.Pipeline.reconstruct_p95_s <= t.Dnastore.Pipeline.reconstruct_s);
  let boxed =
    Dnastore.Pipeline.run ~recon_pool:Dnastore.Pipeline.Pool_off ~domains:1
      (Dna.Rng.create 99) file
  in
  let wp = pooled.Dnastore.Pipeline.reconstruct_words_per_cluster
  and wb = boxed.Dnastore.Pipeline.reconstruct_words_per_cluster in
  Alcotest.(check bool) "boxed words counted" true (wb > 0.0);
  Alcotest.(check bool) "pooled words counted" true (wp > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "pooled allocates less (%.0f < %.0f)" wp wb)
    true (wp < wb);
  let rendered =
    Dnastore.Report.recon_alloc ~pooled:true ~n_clusters:pooled.Dnastore.Pipeline.n_clusters
      ~words_per_cluster:wp
  in
  Alcotest.(check bool) "alloc report nonempty" true (String.length rendered > 0)

let test_pipeline_dropout_within_parity () =
  let r = rng () in
  let file = random_file r 600 in
  let stages =
    {
      (Dnastore.Pipeline.default_stages ()) with
      Dnastore.Pipeline.sequencing =
        {
          (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 10)) with
          Simulator.Sequencer.dropout = 0.05;
        };
    }
  in
  let out = Dnastore.Pipeline.run ~stages r file in
  Alcotest.(check bool) "survives molecule dropout" true out.Dnastore.Pipeline.exact

(* ---------- kv store ---------- *)

let test_kv_put_get_multiple_files () =
  let store = Dnastore.Kv_store.create ~seed:11 in
  let contents =
    [ ("a", "first file contents"); ("b", "second, longer file contents right here"); ("c", "third") ]
  in
  List.iter (fun (k, c) -> Dnastore.Kv_store.put_exn store ~key:k (Bytes.of_string c)) contents;
  Alcotest.(check int) "three keys" 3 (List.length (Dnastore.Kv_store.keys store));
  List.iter
    (fun (k, c) ->
      match Dnastore.Kv_store.get store ~key:k with
      | Ok (bytes, _) -> Alcotest.(check string) ("get " ^ k) c (Bytes.to_string bytes)
      | Error _ -> Alcotest.fail ("get failed for " ^ k))
    contents

let test_kv_missing_key () =
  let store = Dnastore.Kv_store.create ~seed:12 in
  Dnastore.Kv_store.put_exn store ~key:"x" (Bytes.of_string "data");
  match Dnastore.Kv_store.get store ~key:"y" with
  | Error Dnastore.Kv_store.Key_not_found -> ()
  | Ok _ | Error (Decode_failed _) -> Alcotest.fail "expected Key_not_found"

let test_kv_duplicate_key_rejected () =
  let store = Dnastore.Kv_store.create ~seed:13 in
  Dnastore.Kv_store.put_exn store ~key:"x" (Bytes.of_string "data");
  match Dnastore.Kv_store.put store ~key:"x" (Bytes.of_string "other") with
  | Error (Dnastore.Kv_store.Duplicate_key "x") -> ()
  | Error e -> Alcotest.fail (Dnastore.Kv_store.put_error_message e)
  | Ok () -> Alcotest.fail "duplicate key accepted"

let test_kv_pcr_selects_only_target () =
  let store = Dnastore.Kv_store.create ~seed:14 in
  Dnastore.Kv_store.put_exn store ~key:"a" (Bytes.of_string (String.make 400 'a'));
  Dnastore.Kv_store.put_exn store ~key:"b" (Bytes.of_string (String.make 700 'b'));
  let entry_a =
    List.find (fun e -> e.Dnastore.Kv_store.key = "a") store.Dnastore.Kv_store.directory
  in
  let selected = Dnastore.Kv_store.pcr_select store entry_a.Dnastore.Kv_store.pair in
  (* 400 bytes + header fits in 1 unit = 26 molecules *)
  Alcotest.(check int) "only file a's molecules" (26 * entry_a.Dnastore.Kv_store.n_units)
    (Array.length selected)

let test_kv_put_failure_releases_pair () =
  (* A put that dies mid-encode must hand its reserved primer pair
     back, or aborted puts would leak primer space forever. *)
  let store = Dnastore.Kv_store.create ~seed:16 in
  Dnastore.Kv_store.put_exn store ~key:"ok" (Bytes.of_string "payload");
  let reserved_before = Codec.Primer.Registry.size store.Dnastore.Kv_store.primers in
  let bad_params = { Codec.Params.default with Codec.Params.payload_nt = 121 } in
  (match Dnastore.Kv_store.put ~params:bad_params store ~key:"bad" (Bytes.of_string "x") with
  | exception Invalid_argument _ -> ()
  | Ok () -> Alcotest.fail "encode accepted invalid params"
  | Error e -> Alcotest.fail (Dnastore.Kv_store.put_error_message e));
  Alcotest.(check int) "reserved pair released" reserved_before
    (Codec.Primer.Registry.size store.Dnastore.Kv_store.primers);
  Alcotest.(check bool) "failed key not recorded" false (Dnastore.Kv_store.mem store "bad");
  (* The key (and the primer space) stay usable after the failure. *)
  Dnastore.Kv_store.put_exn store ~key:"bad" (Bytes.of_string "now valid");
  match Dnastore.Kv_store.get store ~key:"bad" with
  | Ok (bytes, _) -> Alcotest.(check string) "retry decodes" "now valid" (Bytes.to_string bytes)
  | Error _ -> Alcotest.fail "retry after failed put did not decode"

let test_kv_indexed_select_matches_scan () =
  let store = Dnastore.Kv_store.create ~seed:17 in
  Dnastore.Kv_store.put_exn store ~key:"a" (Bytes.of_string (String.make 300 'a'));
  Dnastore.Kv_store.put_exn store ~key:"b" (Bytes.of_string (String.make 500 'b'));
  List.iter
    (fun (e : Dnastore.Kv_store.entry) ->
      let indexed = Dnastore.Kv_store.pcr_select store e.Dnastore.Kv_store.pair in
      let scanned =
        Dnastore.Primer_index.scan_select store.Dnastore.Kv_store.pool e.Dnastore.Kv_store.pair
      in
      Alcotest.(check bool)
        ("indexed select = full scan for " ^ e.Dnastore.Kv_store.key)
        true (indexed = scanned))
    store.Dnastore.Kv_store.directory

let test_kv_get_repeatable () =
  (* Each get is a fresh PCR + sequencing run; both must succeed. *)
  let store = Dnastore.Kv_store.create ~seed:15 in
  Dnastore.Kv_store.put_exn store ~key:"x" (Bytes.of_string "read me twice");
  let get () =
    match Dnastore.Kv_store.get store ~key:"x" with
    | Ok (bytes, _) -> Bytes.to_string bytes
    | Error _ -> Alcotest.fail "get failed"
  in
  Alcotest.(check string) "first read" "read me twice" (get ());
  Alcotest.(check string) "second read" "read me twice" (get ())

(* ---------- wetlab io ---------- *)

let test_wetlab_ingest_roundtrip () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  let cores = Array.init 12 (fun _ -> Dna.Strand.random r 100) in
  let tagged = Array.map (Codec.Primer.attach pair) cores in
  (* Mix orientations, export as FASTQ text, ingest. *)
  let reads =
    Array.map
      (fun s -> if Dna.Rng.bool r then Dna.Strand.reverse_complement s else s)
      tagged
  in
  let text = Dnastore.Wetlab_io.export_fastq reads in
  let ingested = Dnastore.Wetlab_io.ingest_string [ pair ] text in
  let stats = ingested.Dnastore.Wetlab_io.stats in
  Alcotest.(check int) "all records parsed" 12 stats.Dnastore.Wetlab_io.total_records;
  Alcotest.(check int) "no unmatched" 0 stats.Dnastore.Wetlab_io.no_primer_match;
  match ingested.Dnastore.Wetlab_io.by_pair with
  | [ (_, got) ] ->
      Alcotest.(check int) "all cores recovered" 12 (Array.length got);
      let sort a = List.sort compare (Array.to_list (Array.map Dna.Strand.to_string a)) in
      Alcotest.(check (list string)) "cores identical" (sort cores) (sort got)
  | _ -> Alcotest.fail "expected one primer bucket"

let test_wetlab_ingest_multiple_pairs () =
  let r = rng () in
  let pairs = Array.to_list (Codec.Primer.generate_pairs_exn r 2) in
  let mk pair n = Array.init n (fun _ -> Codec.Primer.attach pair (Dna.Strand.random r 80)) in
  let reads = Array.append (mk (List.nth pairs 0) 5) (mk (List.nth pairs 1) 7) in
  let text = Dnastore.Wetlab_io.export_fastq reads in
  let ingested = Dnastore.Wetlab_io.ingest_string pairs text in
  let by_size =
    List.sort compare (List.map (fun (_, cores) -> Array.length cores) ingested.Dnastore.Wetlab_io.by_pair)
  in
  Alcotest.(check (list int)) "grouped by pair" [ 5; 7 ] by_size

let test_wetlab_ingest_garbage_fastq () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  let text = "@ok\n" ^ Dna.Strand.to_string (Codec.Primer.attach pair (Dna.Strand.random r 50))
             ^ "\n+\n" ^ String.make 90 'I' ^ "\nnot a fastq line\n" in
  let ingested = Dnastore.Wetlab_io.ingest_string [ pair ] text in
  Alcotest.(check bool) "parse errors counted" true
    (ingested.Dnastore.Wetlab_io.stats.Dnastore.Wetlab_io.parse_errors >= 1)

let test_wetlab_fastq_quality_roundtrip () =
  let r = rng () in
  let reads = Array.init 3 (fun _ -> Dna.Strand.random r 40) in
  let text = Dnastore.Wetlab_io.export_fastq ~quality:25 reads in
  let records, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) "no parse errors" 0 (List.length errors);
  List.iter
    (fun rec_ ->
      Array.iter (fun q -> Alcotest.(check int) "quality 25" 25 q) rec_.Dna.Fastq.qual)
    records

(* ---------- par ---------- *)

let test_par_map_matches_sequential () =
  let arr = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f arr)
    (Dna.Par.map_array ~domains:3 f arr);
  Alcotest.(check (array int)) "empty" [||] (Dna.Par.map_array ~domains:3 f [||])

let test_par_mapi () =
  let arr = [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "index aware" [| 10; 21; 32 |]
    (Dna.Par.mapi_array ~domains:2 (fun i x -> x + i) arr)

(* ---------- report ---------- *)

let test_report_table_alignment () =
  let t = Dnastore.Report.table [ [ "a"; "bb" ]; [ "ccc"; "d" ] ] in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check bool) "has header + rule + row" true (List.length lines >= 3);
  Alcotest.(check bool) "columns aligned" true
    (String.length (List.nth lines 0) = String.length (List.nth lines 0))

let test_report_ascii_profile () =
  let p = Dnastore.Report.ascii_profile ~height:4 ~buckets:10 (Array.init 50 (fun i -> float_of_int i)) in
  Alcotest.(check bool) "nonempty" true (String.length p > 0);
  Alcotest.(check bool) "contains bars" true (String.contains p '#')

let () =
  Alcotest.run "pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "end to end exact" `Quick test_pipeline_end_to_end_exact;
          Alcotest.test_case "stage combinations" `Slow test_pipeline_every_stage_combination;
          Alcotest.test_case "gini layout" `Quick test_pipeline_gini_layout;
          Alcotest.test_case "noiseless channel" `Quick test_pipeline_noiseless_channel;
          Alcotest.test_case "timings" `Quick test_pipeline_timings_positive;
          Alcotest.test_case "parallel domains" `Quick test_pipeline_parallel_domains;
          Alcotest.test_case "parallel counters visible" `Quick
            test_pipeline_parallel_counters_visible;
          Alcotest.test_case "dropout tolerated" `Quick test_pipeline_dropout_within_parity;
          Alcotest.test_case "spines byte-identical" `Quick test_pipeline_spines_byte_identical;
          Alcotest.test_case "pool auto spine choice" `Quick test_pipeline_pool_auto_spine_choice;
          Alcotest.test_case "pooled timings and words" `Quick
            test_pipeline_pooled_timings_and_words;
        ] );
      ( "kv-store",
        [
          Alcotest.test_case "put/get multiple" `Slow test_kv_put_get_multiple_files;
          Alcotest.test_case "missing key" `Quick test_kv_missing_key;
          Alcotest.test_case "duplicate rejected" `Quick test_kv_duplicate_key_rejected;
          Alcotest.test_case "pcr selects target" `Quick test_kv_pcr_selects_only_target;
          Alcotest.test_case "failed put releases pair" `Quick test_kv_put_failure_releases_pair;
          Alcotest.test_case "indexed select = scan" `Quick test_kv_indexed_select_matches_scan;
          Alcotest.test_case "get repeatable" `Quick test_kv_get_repeatable;
        ] );
      ( "wetlab-io",
        [
          Alcotest.test_case "ingest roundtrip" `Quick test_wetlab_ingest_roundtrip;
          Alcotest.test_case "multiple pairs" `Quick test_wetlab_ingest_multiple_pairs;
          Alcotest.test_case "garbage fastq" `Quick test_wetlab_ingest_garbage_fastq;
          Alcotest.test_case "fastq quality" `Quick test_wetlab_fastq_quality_roundtrip;
        ] );
      ( "par",
        [
          Alcotest.test_case "matches sequential" `Quick test_par_map_matches_sequential;
          Alcotest.test_case "mapi" `Quick test_par_mapi;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table_alignment;
          Alcotest.test_case "ascii profile" `Quick test_report_ascii_profile;
        ] );
    ]
