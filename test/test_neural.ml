(* Tests for the neural substrate: autodiff correctness (against finite
   differences), GRU/attention shapes, Adam behaviour, and seq2seq
   training on tiny problems. *)

let rng () = Dna.Rng.create 4242

(* Finite-difference gradient check for a scalar-valued function built
   from autodiff ops over one parameter vector. *)
let grad_check ?(eps = 1e-5) ?(tol = 1e-3) ~size build =
  let r = rng () in
  let store = Neural.Params.create () in
  let p = Neural.Params.add store ~name:"p" ~size ~init:(fun _ -> Dna.Rng.float r -. 0.5) in
  let loss () =
    let tape = Neural.Autodiff.create_tape () in
    let leaf = Neural.Autodiff.leaf tape ~data:p.Neural.Params.data ~grad:p.Neural.Params.grad in
    (build tape leaf).Neural.Autodiff.data.(0)
  in
  Neural.Params.zero_grads store;
  let tape = Neural.Autodiff.create_tape () in
  let leaf = Neural.Autodiff.leaf tape ~data:p.Neural.Params.data ~grad:p.Neural.Params.grad in
  let out = build tape leaf in
  Neural.Autodiff.backward tape out;
  for i = 0 to size - 1 do
    let orig = p.Neural.Params.data.(i) in
    p.Neural.Params.data.(i) <- orig +. eps;
    let lp = loss () in
    p.Neural.Params.data.(i) <- orig -. eps;
    let lm = loss () in
    p.Neural.Params.data.(i) <- orig;
    let fd = (lp -. lm) /. (2.0 *. eps) in
    let an = p.Neural.Params.grad.(i) in
    let denom = max 1e-4 (abs_float fd +. abs_float an) in
    if abs_float (fd -. an) /. denom > tol then
      Alcotest.failf "grad mismatch at %d: fd=%.6f analytic=%.6f" i fd an
  done

let test_grad_dot () =
  grad_check ~size:6 (fun tape p ->
      let c = Neural.Autodiff.const tape [| 1.0; -2.0; 0.5; 3.0; 0.0; 1.5 |] in
      Neural.Autodiff.dot tape p c)

let test_grad_tanh_sigmoid () =
  grad_check ~size:4 (fun tape p ->
      let open Neural.Autodiff in
      let t = tanh tape p in
      let s = sigmoid tape p in
      let m = mul tape t s in
      dot tape m m)

let test_grad_matvec () =
  grad_check ~size:12 (fun tape p ->
      (* p as a 3x4 matrix applied to a constant vector. *)
      let open Neural.Autodiff in
      let x = const tape [| 0.3; -0.7; 1.1; 0.2 |] in
      let y = matvec tape p ~rows:3 ~cols:4 x in
      dot tape y y)

let test_grad_softmax_weighted_sum () =
  grad_check ~size:3 (fun tape p ->
      let open Neural.Autodiff in
      let w = softmax tape p in
      let vs =
        [ const tape [| 1.0; 0.0 |]; const tape [| 0.0; 1.0 |]; const tape [| 1.0; 1.0 |] ]
      in
      let ctx = weighted_sum tape w vs in
      dot tape ctx ctx)

let test_grad_cross_entropy () =
  grad_check ~size:5 (fun tape p -> Neural.Autodiff.cross_entropy tape p ~target:2)

let test_grad_concat_sub () =
  grad_check ~size:4 (fun tape p ->
      let open Neural.Autodiff in
      let c = const tape [| 0.5; -0.5 |] in
      let cat = concat tape p c in
      let twice = add tape cat cat in
      let diff = sub tape twice cat in
      dot tape diff diff)

let test_grad_stack () =
  grad_check ~size:3 (fun tape p ->
      let open Neural.Autodiff in
      let s1 = dot tape p p in
      let s2 = dot tape p (const tape [| 1.0; 2.0; 3.0 |]) in
      let stacked = stack tape [ s1; s2 ] in
      dot tape stacked stacked)

(* ---------- GRU ---------- *)

let test_gru_step_shapes () =
  let r = rng () in
  let store = Neural.Params.create () in
  let cell = Neural.Gru.create store r ~prefix:"g" ~input:5 ~hidden:7 in
  let tape = Neural.Autodiff.create_tape () in
  let h = Neural.Gru.zero_state cell tape in
  let x = Neural.Autodiff.const tape (Array.make 5 0.3) in
  let h' = Neural.Gru.step cell tape ~h ~x in
  Alcotest.(check int) "hidden size" 7 (Neural.Autodiff.length h')

let test_gru_state_bounded () =
  (* GRU state is a convex combination of tanh outputs: always in (-1,1). *)
  let r = rng () in
  let store = Neural.Params.create () in
  let cell = Neural.Gru.create store r ~prefix:"g" ~input:4 ~hidden:6 in
  let tape = Neural.Autodiff.create_tape () in
  let h = ref (Neural.Gru.zero_state cell tape) in
  for _ = 1 to 20 do
    let x = Neural.Autodiff.const tape (Array.init 4 (fun _ -> Dna.Rng.float r *. 2.0 -. 1.0)) in
    h := Neural.Gru.step cell tape ~h:!h ~x
  done;
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (v > -1.0 && v < 1.0))
    !h.Neural.Autodiff.data

let test_gru_grad () =
  (* End-to-end gradient through a one-step GRU. *)
  let r = rng () in
  let store = Neural.Params.create () in
  let cell = Neural.Gru.create store r ~prefix:"g" ~input:3 ~hidden:4 in
  let loss () =
    let tape = Neural.Autodiff.create_tape () in
    let h = Neural.Gru.zero_state cell tape in
    let x = Neural.Autodiff.const tape [| 0.2; -0.4; 0.9 |] in
    let h' = Neural.Gru.step cell tape ~h ~x in
    let l = Neural.Autodiff.dot tape h' h' in
    (tape, l)
  in
  Neural.Params.zero_grads store;
  let tape, l = loss () in
  Neural.Autodiff.backward tape l;
  (* spot check one weight of wz *)
  let p = List.hd (Neural.Params.in_order store) in
  let i = 2 in
  let orig = p.Neural.Params.data.(i) in
  let eps = 1e-5 in
  p.Neural.Params.data.(i) <- orig +. eps;
  let _, lp = loss () in
  let lp = lp.Neural.Autodiff.data.(0) in
  p.Neural.Params.data.(i) <- orig -. eps;
  let _, lm = loss () in
  let lm = lm.Neural.Autodiff.data.(0) in
  p.Neural.Params.data.(i) <- orig;
  let fd = (lp -. lm) /. (2.0 *. eps) in
  let an = p.Neural.Params.grad.(i) in
  Alcotest.(check bool) "gru grad matches fd" true
    (abs_float (fd -. an) /. max 1e-4 (abs_float fd +. abs_float an) < 1e-3)

(* ---------- Params / Adam ---------- *)

let test_params_flat_roundtrip () =
  let r = rng () in
  let store = Neural.Params.create () in
  let _ = Neural.Params.add_matrix store r ~name:"m" ~rows:3 ~cols:4 in
  let _ = Neural.Params.add_vector store ~name:"v" ~size:5 in
  let flat = Neural.Params.to_flat store in
  Alcotest.(check int) "total size" 17 (Array.length flat);
  let mutated = Array.map (fun x -> x +. 1.0) flat in
  Neural.Params.of_flat store mutated;
  Alcotest.(check (array (float 1e-12))) "of_flat applied" mutated (Neural.Params.to_flat store)

let test_params_duplicate_name () =
  let store = Neural.Params.create () in
  let _ = Neural.Params.add_vector store ~name:"x" ~size:2 in
  Alcotest.check_raises "duplicate" (Invalid_argument "Params.add: duplicate name x") (fun () ->
      ignore (Neural.Params.add_vector store ~name:"x" ~size:2))

let test_clip_grads () =
  let store = Neural.Params.create () in
  let p = Neural.Params.add_vector store ~name:"x" ~size:4 in
  Array.blit [| 3.0; 4.0; 0.0; 0.0 |] 0 p.Neural.Params.grad 0 4;
  Neural.Params.clip_grads store ~max_norm:1.0;
  let norm = Neural.Params.grad_norm store in
  Alcotest.(check (float 1e-6)) "clipped to max_norm" 1.0 norm

let test_adam_minimizes_quadratic () =
  (* Minimize ||p - target||^2 with Adam; must converge close. *)
  let store = Neural.Params.create () in
  let p = Neural.Params.add store ~name:"p" ~size:3 ~init:(fun _ -> 0.0) in
  let target = [| 1.0; -2.0; 0.5 |] in
  let opt = Neural.Adam.create ~lr:0.05 store in
  for _ = 1 to 500 do
    let tape = Neural.Autodiff.create_tape () in
    let leaf = Neural.Autodiff.leaf tape ~data:p.Neural.Params.data ~grad:p.Neural.Params.grad in
    let t = Neural.Autodiff.const tape target in
    let d = Neural.Autodiff.sub tape leaf t in
    let l = Neural.Autodiff.dot tape d d in
    Neural.Autodiff.backward tape l;
    Neural.Adam.update opt
  done;
  Array.iteri
    (fun i t ->
      Alcotest.(check bool) "converged" true (abs_float (p.Neural.Params.data.(i) -. t) < 0.01))
    target

(* ---------- Seq2seq ---------- *)

let test_seq2seq_loss_finite () =
  let r = rng () in
  let model = Neural.Seq2seq.create ~hidden:8 r in
  let clean = Array.init 15 (fun _ -> Dna.Rng.int r 4) in
  let noisy = Array.init 14 (fun _ -> Dna.Rng.int r 4) in
  let l = Neural.Seq2seq.eval_pair model ~clean ~noisy in
  Alcotest.(check bool) "finite positive" true (Float.is_finite l && l > 0.0);
  (* an untrained model sits near the uniform loss ln 5 *)
  Alcotest.(check bool) "near ln 5" true (abs_float (l -. log 5.0) < 0.7)

let test_seq2seq_sample_tokens_valid () =
  let r = rng () in
  let model = Neural.Seq2seq.create ~hidden:8 r in
  let clean = Array.init 12 (fun _ -> Dna.Rng.int r 4) in
  let out = Neural.Seq2seq.sample model ~mode:(Neural.Seq2seq.Stochastic r) clean in
  Array.iter (fun t -> Alcotest.(check bool) "base token" true (t >= 0 && t < 4)) out;
  Alcotest.(check bool) "bounded length" true
    (Array.length out <= int_of_float (1.6 *. 12.0) + 8)

let test_seq2seq_learns_identity () =
  (* Tiny task: noiseless channel, short strands. The model must beat
     the uniform baseline clearly after a few epochs. *)
  let r = rng () in
  let model = Neural.Seq2seq.create ~hidden:12 r in
  let opt = Neural.Adam.create ~lr:5e-3 model.Neural.Seq2seq.store in
  let pairs =
    Array.init 80 (fun _ ->
        let s = Array.init 8 (fun _ -> Dna.Rng.int r 4) in
        (s, Array.copy s))
  in
  let final = ref infinity in
  for _ = 1 to 8 do
    let total = ref 0.0 in
    Array.iter
      (fun (clean, noisy) -> total := !total +. Neural.Seq2seq.train_pair model opt ~clean ~noisy)
      pairs;
    final := !total /. 80.0
  done;
  Alcotest.(check bool)
    (Printf.sprintf "loss dropped (%.3f < 1.0)" !final)
    true (!final < 1.0)

let test_seq2seq_save_load () =
  let r = rng () in
  let model = Neural.Seq2seq.create ~hidden:8 r in
  let clean = Array.init 10 (fun _ -> Dna.Rng.int r 4) in
  let noisy = Array.init 10 (fun _ -> Dna.Rng.int r 4) in
  let l0 = Neural.Seq2seq.eval_pair model ~clean ~noisy in
  let path = Filename.temp_file "seq2seq" ".ckpt" in
  Neural.Seq2seq.save model path;
  (* clobber weights, reload, loss restored *)
  let zeros = Array.make (Array.length (Neural.Params.to_flat model.Neural.Seq2seq.store)) 0.0 in
  Neural.Params.of_flat model.Neural.Seq2seq.store zeros;
  Alcotest.(check bool) "weights clobbered" true
    (abs_float (Neural.Seq2seq.eval_pair model ~clean ~noisy -. l0) > 1e-9);
  Neural.Seq2seq.load model path;
  Alcotest.(check (float 1e-9)) "loss restored" l0 (Neural.Seq2seq.eval_pair model ~clean ~noisy);
  Sys.remove path

let () =
  Alcotest.run "neural"
    [
      ( "autodiff-grad",
        [
          Alcotest.test_case "dot" `Quick test_grad_dot;
          Alcotest.test_case "tanh*sigmoid" `Quick test_grad_tanh_sigmoid;
          Alcotest.test_case "matvec" `Quick test_grad_matvec;
          Alcotest.test_case "softmax+weighted_sum" `Quick test_grad_softmax_weighted_sum;
          Alcotest.test_case "cross entropy" `Quick test_grad_cross_entropy;
          Alcotest.test_case "concat/sub" `Quick test_grad_concat_sub;
          Alcotest.test_case "stack" `Quick test_grad_stack;
        ] );
      ( "gru",
        [
          Alcotest.test_case "step shapes" `Quick test_gru_step_shapes;
          Alcotest.test_case "state bounded" `Quick test_gru_state_bounded;
          Alcotest.test_case "gradient" `Quick test_gru_grad;
        ] );
      ( "params-adam",
        [
          Alcotest.test_case "flat roundtrip" `Quick test_params_flat_roundtrip;
          Alcotest.test_case "duplicate name" `Quick test_params_duplicate_name;
          Alcotest.test_case "clip grads" `Quick test_clip_grads;
          Alcotest.test_case "adam minimizes" `Quick test_adam_minimizes_quadratic;
        ] );
      ( "seq2seq",
        [
          Alcotest.test_case "loss finite" `Quick test_seq2seq_loss_finite;
          Alcotest.test_case "sample tokens valid" `Quick test_seq2seq_sample_tokens_valid;
          Alcotest.test_case "learns identity" `Slow test_seq2seq_learns_identity;
          Alcotest.test_case "save/load" `Quick test_seq2seq_save_load;
        ] );
    ]
