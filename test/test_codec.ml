(* Tests for the codec library: index, primers, layouts, matrix codec,
   file codec and DNAMapper. *)

let rng () = Dna.Rng.create 8128

let strand = Alcotest.testable Dna.Strand.pp Dna.Strand.equal

(* ---------- index ---------- *)

let test_index_roundtrip () =
  let r = rng () in
  for _ = 1 to 200 do
    let idx =
      { Codec.Index.unit_id = Dna.Rng.int r (Codec.Index.max_unit + 1);
        column = Dna.Rng.int r (Codec.Index.max_column + 1) }
    in
    let s = Codec.Index.encode idx in
    Alcotest.(check int) "fixed length" Codec.Index.nt_length (Dna.Strand.length s);
    match Codec.Index.decode s with
    | Ok idx' -> Alcotest.(check bool) "roundtrip" true (Codec.Index.equal idx idx')
    | Error e -> Alcotest.fail ("clean index rejected: " ^ Codec.Index.error_message e)
  done

let test_index_checksum_rejects_corruption () =
  let r = rng () in
  let rejected = ref 0 and misplaced = ref 0 and trials = 300 in
  for _ = 1 to trials do
    let idx = { Codec.Index.unit_id = Dna.Rng.int r 100; column = Dna.Rng.int r 26 } in
    let s = Codec.Index.encode idx in
    (* Corrupt one base. *)
    let codes = Dna.Strand.to_codes s in
    let p = Dna.Rng.int r (Array.length codes) in
    codes.(p) <- (codes.(p) + 1 + Dna.Rng.int r 3) land 3;
    match Codec.Index.decode (Dna.Strand.of_codes codes) with
    | Error _ -> incr rejected
    | Ok idx' -> if not (Codec.Index.equal idx idx') then incr misplaced
  done;
  (* Checksum must catch the vast majority of single-base corruptions. *)
  Alcotest.(check bool)
    (Printf.sprintf "rejected %d, misplaced %d" !rejected !misplaced)
    true
    (!rejected >= trials - 5 && !misplaced <= 5)

let test_index_avoids_homopolymers () =
  (* The mask must prevent small ids from emitting long A-runs. *)
  let s = Codec.Index.encode { Codec.Index.unit_id = 0; column = 0 } in
  Alcotest.(check bool) "no long homopolymer" true (Dna.Strand.max_homopolymer s <= 5)

let test_index_range_validation () =
  Alcotest.check_raises "unit out of range"
    (Invalid_argument "Index.encode: unit_id out of range") (fun () ->
      ignore (Codec.Index.encode { Codec.Index.unit_id = -1; column = 0 }))

(* ---------- primers ---------- *)

let test_primer_generation_constraints () =
  let r = rng () in
  let primers =
    match Codec.Primer.generate ~min_distance:8 r 12 with
    | Ok primers -> primers
    | Error e -> Alcotest.fail (Codec.Primer.error_message e)
  in
  Array.iter
    (fun p ->
      Alcotest.(check int) "length 20" Codec.Primer.primer_length (Dna.Strand.length p);
      let gc = Dna.Strand.gc_content p in
      Alcotest.(check bool) "gc balanced" true (gc >= 0.4 && gc <= 0.6);
      Alcotest.(check bool) "homopolymer <= 3" true (Dna.Strand.max_homopolymer p <= 3))
    primers;
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q ->
          if i < j then
            Alcotest.(check bool) "pairwise distance" true (Dna.Distance.hamming p q >= 8))
        primers)
    primers

let test_primer_attach_strip_clean () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  for _ = 1 to 30 do
    let core = Dna.Strand.random r 100 in
    let tagged = Codec.Primer.attach pair core in
    Alcotest.(check int) "tagged length" 140 (Dna.Strand.length tagged);
    match Codec.Primer.strip pair tagged with
    | Some stripped -> Alcotest.check strand "strip recovers core" core stripped
    | None -> Alcotest.fail "strip failed on clean molecule"
  done

let test_primer_strip_with_noise () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  let ok = ref 0 and trials = 100 in
  for _ = 1 to trials do
    let core = Dna.Strand.random r 100 in
    let tagged = Codec.Primer.attach pair core in
    let noisy = Simulator.Channel.transmit ch r tagged in
    match Codec.Primer.strip pair noisy with
    | Some stripped ->
        (* allow the boundary to drift a little under noise *)
        if abs (Dna.Strand.length stripped - 100) <= 8 then incr ok
    | None -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "stripped %d/%d" !ok trials) true (!ok >= 92)

let test_primer_orientation_detection () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  let core = Dna.Strand.random r 80 in
  let tagged = Codec.Primer.attach pair core in
  (match Codec.Primer.orient pair tagged with
  | Some (oriented, Codec.Primer.Forward) -> Alcotest.check strand "forward unchanged" tagged oriented
  | _ -> Alcotest.fail "forward read misdetected");
  let rc = Dna.Strand.reverse_complement tagged in
  match Codec.Primer.orient pair rc with
  | Some (oriented, Codec.Primer.Reverse) -> Alcotest.check strand "reverse normalized" tagged oriented
  | _ -> Alcotest.fail "reverse read misdetected"

let test_primer_foreign_molecule_rejected () =
  let r = rng () in
  let pairs = Codec.Primer.generate_pairs_exn r 2 in
  let core = Dna.Strand.random r 80 in
  let tagged = Codec.Primer.attach pairs.(0) core in
  Alcotest.(check bool) "other pair does not match" true
    (Codec.Primer.normalize pairs.(1) tagged = None)

let test_primer_normalize_reverse_noisy () =
  let r = rng () in
  let pair = (Codec.Primer.generate_pairs_exn r 1).(0) in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.05 in
  let ok = ref 0 and trials = 80 in
  for _ = 1 to trials do
    let core = Dna.Strand.random r 100 in
    let noisy = Simulator.Channel.transmit ch r (Codec.Primer.attach pair core) in
    let read = Dna.Strand.reverse_complement noisy in
    match Codec.Primer.normalize pair read with
    | Some stripped when abs (Dna.Strand.length stripped - 100) <= 8 -> incr ok
    | Some _ | None -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "normalized %d/%d" !ok trials) true (!ok >= 72)

(* ---------- layouts ---------- *)

let test_layout_baseline_rows () =
  for cw = 0 to 9 do
    for c = 0 to 9 do
      Alcotest.(check int) "baseline row = codeword" cw
        (Codec.Layout.row_of Codec.Layout.Baseline ~rows:10 ~codeword:cw ~position:c)
    done
  done

let test_layout_gini_covers_all_rows () =
  (* Each Gini codeword must touch every row exactly once per [rows]
     consecutive positions. *)
  let rows = 10 in
  for cw = 0 to rows - 1 do
    let seen = Array.make rows 0 in
    for c = 0 to rows - 1 do
      let row = Codec.Layout.row_of Codec.Layout.Gini ~rows ~codeword:cw ~position:c in
      seen.(row) <- seen.(row) + 1
    done;
    Array.iter (fun n -> Alcotest.(check int) "each row once" 1 n) seen
  done

let test_layout_gini_no_cell_collision () =
  (* Distinct codewords never claim the same (row, col) cell. *)
  let rows = 8 and cols = 12 in
  let owner = Hashtbl.create 128 in
  for cw = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let row = Codec.Layout.row_of Codec.Layout.Gini ~rows ~codeword:cw ~position:c in
      let key = (row, c) in
      Alcotest.(check bool) "cell unclaimed" false (Hashtbl.mem owner key);
      Hashtbl.add owner key cw
    done
  done

(* ---------- matrix codec ---------- *)

let params = Codec.Params.default

let decode_unit_exn params ~layout columns =
  match Codec.Matrix_codec.decode_unit params ~layout columns with
  | Ok r -> r
  | Error e -> Alcotest.fail (Codec.Matrix_codec.error_message e)

let test_matrix_roundtrip_clean () =
  let r = rng () in
  List.iter (fun layout ->
    let data = Bytes.init (Codec.Params.unit_data_bytes params) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let strands = Codec.Matrix_codec.encode_unit params ~layout ~unit_id:3 data in
    Alcotest.(check int) "column count" (Codec.Params.columns params) (Array.length strands);
    let columns =
      Array.map
        (fun s ->
          match Codec.Matrix_codec.parse_strand params s with
          | Some (_, payload) -> Some payload
          | None -> Alcotest.fail "clean strand unparsable")
        strands
    in
    let decoded, stats = decode_unit_exn params ~layout columns in
    Alcotest.(check bytes) "roundtrip" data decoded;
    Alcotest.(check (list int)) "no failures" [] stats.Codec.Matrix_codec.failed_codewords)
    Codec.Layout.all

let test_matrix_erasure_tolerance () =
  let r = rng () in
  List.iter
    (fun layout ->
      let data = Bytes.init (Codec.Params.unit_data_bytes params) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
      let strands = Codec.Matrix_codec.encode_unit params ~layout ~unit_id:0 data in
      let columns =
        Array.mapi
          (fun i s ->
            (* Drop rs_parity columns: still decodable via erasures. *)
            if i mod 5 = 2 && i < 5 * params.Codec.Params.rs_parity then None
            else
              match Codec.Matrix_codec.parse_strand params s with
              | Some (_, payload) -> Some payload
              | None -> None)
          strands
      in
      let n_dropped = Array.length (Array.of_list (List.filter (fun c -> c = None) (Array.to_list columns))) in
      Alcotest.(check bool) "dropped within parity" true (n_dropped <= params.Codec.Params.rs_parity);
      let decoded, stats = decode_unit_exn params ~layout columns in
      Alcotest.(check bytes) "erasures recovered" data decoded;
      Alcotest.(check (list int)) "no failed codewords" [] stats.Codec.Matrix_codec.failed_codewords)
    Codec.Layout.all

let test_matrix_error_tolerance () =
  let r = rng () in
  List.iter
    (fun layout ->
      let data = Bytes.init (Codec.Params.unit_data_bytes params) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
      let strands = Codec.Matrix_codec.encode_unit params ~layout ~unit_id:0 data in
      (* Corrupt whole payloads of 3 columns: each codeword sees 3 byte
         errors, correctable with parity 6. *)
      let columns =
        Array.mapi
          (fun i s ->
            match Codec.Matrix_codec.parse_strand params s with
            | Some (_, payload) ->
                if i = 1 || i = 7 || i = 13 then
                  Some (Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5a)) payload)
                else Some payload
            | None -> None)
          strands
      in
      let decoded, stats = decode_unit_exn params ~layout columns in
      Alcotest.(check bytes) "errors corrected" data decoded;
      Alcotest.(check (list int)) "no failures" [] stats.Codec.Matrix_codec.failed_codewords;
      Alcotest.(check bool) "corrections reported" true (stats.Codec.Matrix_codec.corrected_bytes > 0))
    Codec.Layout.all

let test_matrix_indel_shows_as_substitutions () =
  (* The paper's observation: a deletion inside one molecule surfaces as
     substitution errors in the codewords, which RS then corrects. *)
  let r = rng () in
  let data = Bytes.init (Codec.Params.unit_data_bytes params) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let strands = Codec.Matrix_codec.encode_unit params ~layout:Codec.Layout.Baseline ~unit_id:0 data in
  (* Reconstruct column 4 with a single-base slip: delete one payload
     base, then pad at the end to keep the length. *)
  let columns =
    Array.mapi
      (fun i s ->
        if i = 4 then begin
          let codes = Dna.Strand.to_codes s in
          let slipped =
            Array.init (Array.length codes) (fun j ->
                if j < 40 then codes.(j)
                else if j < Array.length codes - 1 then codes.(j + 1)
                else 0)
          in
          match Codec.Matrix_codec.parse_strand params (Dna.Strand.of_codes slipped) with
          | Some (_, payload) -> Some payload
          | None -> None (* index corrupted by the slip: becomes an erasure *)
        end
        else
          match Codec.Matrix_codec.parse_strand params s with
          | Some (_, payload) -> Some payload
          | None -> None)
      strands
  in
  let decoded, _ = decode_unit_exn params ~layout:Codec.Layout.Baseline columns in
  Alcotest.(check bytes) "slip corrected" data decoded

(* ---------- file codec ---------- *)

let test_file_roundtrip_sizes () =
  let r = rng () in
  List.iter
    (fun size ->
      let file = Bytes.init size (fun _ -> Char.chr (Dna.Rng.int r 256)) in
      List.iter
        (fun layout ->
          let encoded = Codec.File_codec.encode ~layout file in
          let strands = Array.to_list encoded.Codec.File_codec.strands in
          match Codec.File_codec.decode ~layout ~n_units:encoded.Codec.File_codec.n_units strands with
          | Ok (decoded, stats) ->
              Alcotest.(check bytes) (Printf.sprintf "size %d" size) file decoded;
              Alcotest.(check bool) "fully recovered" true (Codec.File_codec.fully_recovered stats)
          | Error e -> Alcotest.fail (Codec.File_codec.error_message e))
        Codec.Layout.all)
    [ 0; 1; 13; 100; 600; 601; 2000 ]

let test_file_strands_shuffled_and_duplicated () =
  let r = rng () in
  let file = Bytes.init 900 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let encoded = Codec.File_codec.encode file in
  let strands = Array.copy encoded.Codec.File_codec.strands in
  Dna.Rng.shuffle_in_place r strands;
  let with_dups = Array.to_list strands @ Array.to_list (Array.sub strands 0 10) in
  match Codec.File_codec.decode ~n_units:encoded.Codec.File_codec.n_units with_dups with
  | Ok (decoded, _) -> Alcotest.(check bytes) "order independent" file decoded
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_file_missing_strands_within_parity () =
  let r = rng () in
  let file = Bytes.init 500 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let encoded = Codec.File_codec.encode file in
  let strands = Array.to_list encoded.Codec.File_codec.strands in
  (* Drop every 9th molecule (at most parity-many per unit). *)
  let survivors = List.filteri (fun i _ -> i mod 9 <> 0) strands in
  match Codec.File_codec.decode ~n_units:encoded.Codec.File_codec.n_units survivors with
  | Ok (decoded, stats) ->
      Alcotest.(check bytes) "recovered with missing molecules" file decoded;
      Alcotest.(check bool) "missing reported" true (stats.Codec.File_codec.missing_strands > 0)
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_file_garbage_strands_ignored () =
  let r = rng () in
  let file = Bytes.init 300 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let encoded = Codec.File_codec.encode file in
  let garbage = List.init 20 (fun _ -> Dna.Strand.random r (Codec.Params.strand_nt Codec.Params.default)) in
  let strands = Array.to_list encoded.Codec.File_codec.strands @ garbage in
  match Codec.File_codec.decode ~n_units:encoded.Codec.File_codec.n_units strands with
  | Ok (decoded, _) -> Alcotest.(check bytes) "garbage tolerated" file decoded
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_file_wrong_length_strands_ignored () =
  let r = rng () in
  let file = Bytes.init 300 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let encoded = Codec.File_codec.encode file in
  let junk = List.init 5 (fun i -> Dna.Strand.random r (50 + i)) in
  let strands = junk @ Array.to_list encoded.Codec.File_codec.strands in
  match Codec.File_codec.decode ~n_units:encoded.Codec.File_codec.n_units strands with
  | Ok (decoded, stats) ->
      Alcotest.(check bytes) "recovered" file decoded;
      Alcotest.(check bool) "junk counted" true (stats.Codec.File_codec.unparsable_strands >= 5)
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_file_header_survives_one_bad_column () =
  let r = rng () in
  let file = Bytes.init 400 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let encoded = Codec.File_codec.encode file in
  (* Sabotage the strands of column 0 of unit 0 (first strand), replacing
     its payload with garbage while keeping a valid index: decode should
     still find the length via the other header copies + RS. *)
  let strands = Array.copy encoded.Codec.File_codec.strands in
  let bad_payload = Dna.Strand.random r Codec.Params.default.Codec.Params.payload_nt in
  strands.(0) <-
    Dna.Strand.append
      (Dna.Strand.sub strands.(0) ~pos:0 ~len:Codec.Index.nt_length)
      bad_payload;
  match Codec.File_codec.decode ~n_units:encoded.Codec.File_codec.n_units (Array.to_list strands) with
  | Ok (decoded, _) -> Alcotest.(check bytes) "header survived" file decoded
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_file_scrambling_avoids_homopolymers () =
  (* A pathological all-zero file must still produce synthesizable
     strands (bounded homopolymers) thanks to the randomizer. *)
  let file = Bytes.make 1200 '\000' in
  let encoded = Codec.File_codec.encode file in
  Array.iter
    (fun s -> Alcotest.(check bool) "homopolymer bounded" true (Dna.Strand.max_homopolymer s <= 12))
    encoded.Codec.File_codec.strands

(* ---------- dnamapper ---------- *)

let test_dnamapper_roundtrip () =
  let r = rng () in
  let rows = 30 in
  for _ = 1 to 20 do
    let t1 = Bytes.init (50 + Dna.Rng.int r 200) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let t2 = Bytes.init (50 + Dna.Rng.int r 200) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let t3 = Bytes.init (Dna.Rng.int r 100) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let reliability = Array.init rows (fun i -> Dna.Rng.float r +. float_of_int i *. 0.0) in
    let arranged, plan = Codec.Dnamapper.arrange ~rows ~reliability [ t1; t2; t3 ] in
    match Codec.Dnamapper.extract plan arranged with
    | [ t1'; t2'; t3' ] ->
        Alcotest.(check bytes) "tier1" t1 t1';
        Alcotest.(check bytes) "tier2" t2 t2';
        Alcotest.(check bytes) "tier3" t3 t3'
    | _ -> Alcotest.fail "tier count"
  done

let test_dnamapper_roundtrip_with_offset () =
  let r = rng () in
  let rows = 12 in
  let t1 = Bytes.init 100 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let t2 = Bytes.init 80 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let reliability = Codec.Dnamapper.dbma_profile ~rows in
  let arranged, plan = Codec.Dnamapper.arrange ~offset:5 ~rows ~reliability [ t1; t2 ] in
  match Codec.Dnamapper.extract plan arranged with
  | [ t1'; t2' ] ->
      Alcotest.(check bytes) "tier1 with offset" t1 t1';
      Alcotest.(check bytes) "tier2 with offset" t2 t2'
  | _ -> Alcotest.fail "tier count"

let test_dnamapper_priority_placement () =
  (* Tier 0 bytes must land on the most reliable rows. *)
  let rows = 6 in
  let reliability = [| 0.9; 0.1; 0.5; 0.2; 0.8; 0.3 |] in
  (* most reliable = row 1 (lowest error) *)
  let t0 = Bytes.make 4 'H' and t1 = Bytes.make 20 'L' in
  let arranged, _ = Codec.Dnamapper.arrange ~rows ~reliability [ t0; t1 ] in
  (* The four H bytes occupy row 1 = positions 1, 7, 13, 19. *)
  List.iter
    (fun p -> Alcotest.(check char) (Printf.sprintf "H at %d" p) 'H' (Bytes.get arranged p))
    [ 1; 7; 13; 19 ]

let test_dnamapper_rank_rows () =
  let rank = Codec.Dnamapper.rank_rows [| 0.5; 0.1; 0.9; 0.2 |] in
  Alcotest.(check (array int)) "ranked by reliability" [| 1; 3; 0; 2 |] rank

let test_dbma_profile_shape () =
  let p = Codec.Dnamapper.dbma_profile ~rows:11 in
  Alcotest.(check bool) "peaks in middle" true (p.(5) > p.(0) && p.(5) > p.(10))

(* ---------- QCheck ---------- *)

let prop_file_roundtrip =
  QCheck.Test.make ~name:"file codec roundtrip" ~count:40
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 1500)) (QCheck.make (QCheck.Gen.oneofl Codec.Layout.all)))
    (fun (content, layout) ->
      let file = Bytes.of_string content in
      let encoded = Codec.File_codec.encode ~layout file in
      match
        Codec.File_codec.decode ~layout ~n_units:encoded.Codec.File_codec.n_units
          (Array.to_list encoded.Codec.File_codec.strands)
      with
      | Ok (decoded, _) -> Bytes.equal decoded file
      | Error _ -> false)

let prop_index_roundtrip =
  QCheck.Test.make ~name:"index roundtrip" ~count:200
    QCheck.(pair (int_bound Codec.Index.max_unit) (int_bound Codec.Index.max_column))
    (fun (unit_id, column) ->
      match Codec.Index.decode (Codec.Index.encode { Codec.Index.unit_id; column }) with
      | Ok idx -> idx.Codec.Index.unit_id = unit_id && idx.Codec.Index.column = column
      | Error _ -> false)

let prop_dnamapper_roundtrip =
  QCheck.Test.make ~name:"dnamapper arrange/extract" ~count:60
    QCheck.(triple (int_range 8 40) (list_of_size (QCheck.Gen.int_range 1 4) (string_of_size (QCheck.Gen.int_range 0 120))) (int_bound 20))
    (fun (rows, tiers, offset) ->
      let tiers = List.map Bytes.of_string tiers in
      let reliability = Array.init rows (fun i -> float_of_int ((i * 7) mod rows)) in
      let arranged, plan = Codec.Dnamapper.arrange ~offset ~rows ~reliability tiers in
      let extracted = Codec.Dnamapper.extract plan arranged in
      List.length extracted = List.length tiers
      && List.for_all2 Bytes.equal tiers extracted)

let () =
  Alcotest.run "codec"
    [
      ( "index",
        [
          Alcotest.test_case "roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "checksum rejects corruption" `Quick test_index_checksum_rejects_corruption;
          Alcotest.test_case "avoids homopolymers" `Quick test_index_avoids_homopolymers;
          Alcotest.test_case "range validation" `Quick test_index_range_validation;
        ] );
      ( "primer",
        [
          Alcotest.test_case "generation constraints" `Quick test_primer_generation_constraints;
          Alcotest.test_case "attach/strip clean" `Quick test_primer_attach_strip_clean;
          Alcotest.test_case "strip with noise" `Quick test_primer_strip_with_noise;
          Alcotest.test_case "orientation detection" `Quick test_primer_orientation_detection;
          Alcotest.test_case "foreign rejected" `Quick test_primer_foreign_molecule_rejected;
          Alcotest.test_case "normalize reverse noisy" `Quick test_primer_normalize_reverse_noisy;
        ] );
      ( "layout",
        [
          Alcotest.test_case "baseline rows" `Quick test_layout_baseline_rows;
          Alcotest.test_case "gini covers all rows" `Quick test_layout_gini_covers_all_rows;
          Alcotest.test_case "gini no collision" `Quick test_layout_gini_no_cell_collision;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "roundtrip clean" `Quick test_matrix_roundtrip_clean;
          Alcotest.test_case "erasure tolerance" `Quick test_matrix_erasure_tolerance;
          Alcotest.test_case "error tolerance" `Quick test_matrix_error_tolerance;
          Alcotest.test_case "indel as substitutions" `Quick test_matrix_indel_shows_as_substitutions;
        ] );
      ( "file",
        [
          Alcotest.test_case "roundtrip sizes" `Quick test_file_roundtrip_sizes;
          Alcotest.test_case "shuffled + duplicated" `Quick test_file_strands_shuffled_and_duplicated;
          Alcotest.test_case "missing within parity" `Quick test_file_missing_strands_within_parity;
          Alcotest.test_case "garbage ignored" `Quick test_file_garbage_strands_ignored;
          Alcotest.test_case "wrong length ignored" `Quick test_file_wrong_length_strands_ignored;
          Alcotest.test_case "header survives bad column" `Quick test_file_header_survives_one_bad_column;
          Alcotest.test_case "scrambling homopolymers" `Quick test_file_scrambling_avoids_homopolymers;
        ] );
      ( "dnamapper",
        [
          Alcotest.test_case "roundtrip" `Quick test_dnamapper_roundtrip;
          Alcotest.test_case "roundtrip with offset" `Quick test_dnamapper_roundtrip_with_offset;
          Alcotest.test_case "priority placement" `Quick test_dnamapper_priority_placement;
          Alcotest.test_case "rank rows" `Quick test_dnamapper_rank_rows;
          Alcotest.test_case "dbma profile shape" `Quick test_dbma_profile_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_file_roundtrip; prop_index_roundtrip; prop_dnamapper_roundtrip ] );
    ]
